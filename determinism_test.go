package stabledispatch

// The cost-plane worker pool is a pure throughput knob: every worker
// writes a disjoint preallocated row whose values depend only on the
// frame's inputs, so the dispatch schedule cannot depend on scheduling.
// This table test pins that contract end to end — a seeded Boston day
// slice must produce byte-identical lifecycle events, KPI rows, and
// outcome records for every worker count, across the paper's stable
// dispatchers, the sharing dispatcher, and a baseline.

import (
	"bytes"
	"fmt"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/exp"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

// deterministicSeries are the KPI columns whose values are functions of
// the simulation state alone. frame_ns and allocs measure the host and
// are excluded; cache_hit_rate is excluded because under a capacity-
// bound road cache the hit/miss split can legitimately vary with the
// interleaving of parallel fills (the distances themselves cannot).
var deterministicSeries = []string{
	"delay_mean", "delay_p95", "pass_diss_mean", "taxi_diss_mean",
	"served", "queued", "expired", "shared_rides", "degraded_frames",
	"stability_violations",
}

// runFingerprint executes one simulation and serialises everything the
// worker count must not change: the JSONL event stream, the
// deterministic KPI columns, and the full outcome records.
func runFingerprint(t *testing.T, d sim.Dispatcher, workers int) []byte {
	t.Helper()
	o := exp.QuickOptions()
	o.Frames = 60
	o.VolumeScale = 0.05
	reqs, taxis, err := exp.Workload(trace.Boston(), 13500, 200, o)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	var events bytes.Buffer
	kpi := tseries.New(tseries.Config{Capacity: 4 * o.Frames})
	s, err := sim.New(sim.Config{
		Params:         pref.DefaultParams(),
		Dispatcher:     d,
		PatienceFrames: o.PatienceMinutes,
		Events:         sim.NewJSONLSink(&events),
		KPI:            kpi,
		Workers:        workers,
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var out bytes.Buffer
	out.Write(events.Bytes())
	if err := tseries.WriteCSV(&out, kpi.Snapshot(), deterministicSeries); err != nil {
		t.Fatalf("kpi csv: %v", err)
	}
	fmt.Fprintf(&out, "requests %+v\n", rep.Requests)
	fmt.Fprintf(&out, "episodes %+v\n", rep.Episodes)
	fmt.Fprintf(&out, "assignments %+v\n", rep.Assignments)
	return out.Bytes()
}

func TestWorkerCountDeterminism(t *testing.T) {
	packCfg := share.PackConfig{Theta: 5, MaxGroupSize: 3, PairRadius: 10}
	algos := []struct {
		name string
		make func() sim.Dispatcher
	}{
		{"NSTD-P", func() sim.Dispatcher { return dispatch.NewNSTDP() }},
		{"NSTD-T", func() sim.Dispatcher { return dispatch.NewNSTDT() }},
		{"STD-P", func() sim.Dispatcher { return dispatch.NewSTDP(packCfg) }},
		{"Greedy", func() sim.Dispatcher { return dispatch.NewGreedy() }},
	}
	for _, algo := range algos {
		t.Run(algo.name, func(t *testing.T) {
			want := runFingerprint(t, algo.make(), 1)
			if len(want) == 0 {
				t.Fatal("serial run produced an empty fingerprint")
			}
			for _, workers := range []int{4, 16} {
				got := runFingerprint(t, algo.make(), workers)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d diverged from workers=1: fingerprints differ (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
		})
	}
}
