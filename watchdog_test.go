package stabledispatch

// End-to-end watchdog pipeline: a pathologically slow primary
// dispatcher forces the Resilient wrapper to degrade every frame, the
// degraded frames show up in the KPI stream, the SLO engine transitions
// to breach, and the flight recorder writes exactly one rate-limited
// bundle whose manifest names the first trigger.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// molasses stalls past any sane frame deadline before delegating, so a
// 1 ms Resilient deadline degrades every dispatched frame.
type molasses struct{ inner Dispatcher }

func (d molasses) Name() string { return "molasses" }

func (d molasses) Dispatch(f *Frame) ([]Assignment, error) {
	time.Sleep(25 * time.Millisecond)
	return d.inner.Dispatch(f)
}

func TestWatchdogDegradeBreachBundle(t *testing.T) {
	dir := t.TempDir()
	// A cooldown longer than the run: only the first trigger bundles,
	// everything after is suppressed.
	rec, err := ConfigureFlightRecorder(FlightRecorderConfig{
		Dir:            dir,
		CooldownFrames: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer DisableFlightRecorder()

	sloPath := filepath.Join(dir, "watchdog.slo")
	// clear is huge so the breach state survives to the end of the run.
	sloText := "# every degraded frame is a violation\n" +
		"no_degrades: degraded_frames == 0 fast=2 slow=4 clear=100000\n"
	if err := os.WriteFile(sloPath, []byte(sloText), 0o600); err != nil {
		t.Fatal(err)
	}
	defs, err := ParseSLOFile(sloPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewSLOEngine(defs)
	if err != nil {
		t.Fatal(err)
	}

	city := Boston()
	reqs, err := GenerateTrace(BostonConfig(15, 3))
	if err != nil {
		t.Fatal(err)
	}
	taxis, err := GenerateTaxis(city, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	kpi := NewKPIRecorder(KPIRecorderConfig{Capacity: 256})
	s, err := NewSimulator(SimConfig{
		Dispatcher: ResilientDispatcher(molasses{GreedyDispatcher()}, nil, time.Millisecond),
		Params:     DefaultParams(),
		KPI:        kpi,
		SLO:        eng,
	}, taxis, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Degraded frames reached the KPI stream.
	samples := kpi.Snapshot()
	if len(samples) == 0 {
		t.Fatal("no KPI samples recorded")
	}
	if last := samples[len(samples)-1]; last.DegradedFrames == 0 {
		t.Errorf("final sample DegradedFrames = 0, want > 0")
	}

	// The SLO transitioned to breach and stayed there (clear is huge).
	if _, ever := eng.Breached(); !ever {
		t.Errorf("engine never breached: %s", eng.Report())
	}
	sts := eng.Status()
	if len(sts) != 1 || sts[0].Name != "no_degrades" {
		t.Fatalf("Status = %+v", sts)
	}
	if sts[0].State != "breach" || sts[0].Breaches < 1 {
		t.Errorf("objective state = %q (breaches %d), want breach ≥ 1: %s",
			sts[0].State, sts[0].Breaches, eng.Report())
	}

	// Exactly one bundle: the first degrade triggers, the cooldown
	// suppresses every later degrade and the SLO breach.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) != 1 {
		t.Fatalf("bundle dirs = %v, want exactly 1", bundles)
	}
	if rec.Suppressed() == 0 {
		t.Error("no triggers were suppressed; cooldown is not rate-limiting")
	}

	// The manifest names the first trigger: a degraded frame.
	m, err := ReadBundleManifest(filepath.Join(dir, bundles[0]))
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Trigger.Reason) != "degraded_frame" {
		t.Errorf("manifest trigger reason = %q, want degraded_frame", m.Trigger.Reason)
	}
	if !strings.Contains(m.Trigger.Detail, "degraded to") {
		t.Errorf("manifest trigger detail %q does not describe the degrade", m.Trigger.Detail)
	}
}
