// Rushhour: a fleet-sizing study. How many taxis does Boston need so
// that rush-hour passengers are dispatched within two minutes — and what
// does each fleet size cost the drivers? This is the §VI-C trade-off
// (Figs. 6 and 7) as an operational question.
//
//	go run ./examples/rushhour
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"stabledispatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	city := stabledispatch.Boston()

	// The evening rush: 5pm-8pm. Frames are minutes of the day.
	cfg := stabledispatch.BostonConfig(20*60 /* through 8pm */, 7)
	all, err := stabledispatch.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	var rush []stabledispatch.Request
	for _, r := range all {
		if r.Frame >= 17*60 { // keep 5pm onward
			r.Frame -= 17 * 60
			rush = append(rush, r)
		}
	}
	fmt.Printf("evening rush: %d requests over 3 hours\n\n", len(rush))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "taxis\tserved\tmean delay (min)\tp95 delay\tdriver diss (km)")
	for _, fleetSize := range []int{100, 150, 200, 250, 300} {
		taxis, err := stabledispatch.GenerateTaxis(city, fleetSize, 11)
		if err != nil {
			return err
		}
		sim, err := stabledispatch.NewSimulator(stabledispatch.SimConfig{
			Dispatcher: stabledispatch.NSTDP(),
			Params:     stabledispatch.DefaultParams(),
		}, taxis, rush)
		if err != nil {
			return err
		}
		report, err := sim.Run()
		if err != nil {
			return err
		}
		delays := report.DispatchDelays()
		fmt.Fprintf(w, "%d\t%d/%d\t%.2f\t%.1f\t%.3f\n",
			fleetSize, report.ServedCount(), len(rush),
			mean(delays), percentile(delays, 0.95),
			mean(report.TaxiDissatisfactions()))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nwith fewer taxis, delays and passenger dissatisfaction grow,")
	fmt.Println("but drivers get to pick better rides — exactly Fig. 6's shape.")
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
