// Platform: the O2O operations loop. A live simulator plays the role of
// the dispatch platform: ride requests arrive minute by minute (as they
// would over the dispatchd HTTP API), each tick runs one stable-matching
// dispatch round, and the console shows fleet utilisation and per-ride
// outcomes as they happen.
//
//	go run ./examples/platform
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stabledispatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	city := stabledispatch.Boston()
	taxis, err := stabledispatch.GenerateTaxis(city, 25, 31)
	if err != nil {
		return err
	}
	// Start with an empty request book, exactly like the daemon does.
	sim, err := stabledispatch.NewSimulator(stabledispatch.SimConfig{
		Dispatcher: stabledispatch.NSTDP(),
		Params:     stabledispatch.DefaultParams(),
	}, taxis, nil)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(32))
	center := city.Bounds.Center()
	nextID := 0
	newRequest := func() stabledispatch.Request {
		r := stabledispatch.Request{
			ID: nextID,
			Pickup: stabledispatch.Point{
				X: center.X + rng.NormFloat64()*2,
				Y: center.Y + rng.NormFloat64()*2,
			},
			Dropoff: stabledispatch.Point{
				X: center.X + rng.NormFloat64()*4,
				Y: center.Y + rng.NormFloat64()*4,
			},
		}
		nextID++
		return r
	}

	fmt.Println("minute  new  idle  busy  served  riding")
	for minute := 0; minute < 30; minute++ {
		arrivals := rng.Intn(5)
		for i := 0; i < arrivals; i++ {
			if err := sim.Inject(newRequest()); err != nil {
				return err
			}
		}
		if err := sim.Step(); err != nil {
			return err
		}

		idle, busy := 0, 0
		for _, v := range sim.TaxiViews() {
			if v.Idle {
				idle++
			} else {
				busy++
			}
		}
		snap := sim.Snapshot()
		riding := 0
		for _, o := range snap.Requests {
			if o.PickupFrame >= 0 && o.DropoffFrame < 0 {
				riding++
			}
		}
		fmt.Printf("%6d  %3d  %4d  %4d  %6d  %6d\n",
			minute, arrivals, idle, busy, snap.ServedCount(), riding)
	}

	final := sim.Snapshot()
	fmt.Printf("\nafter 30 minutes: %d requests, %d served, %d completed episodes\n",
		len(final.Requests), final.ServedCount(), len(final.Episodes))
	fmt.Println("run `go run ./cmd/dispatchd` for the same loop behind an HTTP API.")
	return nil
}
