// Ridesharing: Algorithm 3 end to end. Pack one frame of requests into
// shared rides (maximum set packing under the detour bound θ), inspect
// the groups and their optimal shared routes, then run a full sharing
// simulation comparing STD-P against the SARP insertion baseline.
//
//	go run ./examples/ridesharing
package main

import (
	"fmt"
	"log"

	"stabledispatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	city := stabledispatch.Boston()
	cfg := stabledispatch.BostonConfig(120, 21)
	requests, err := stabledispatch.GenerateTrace(cfg)
	if err != nil {
		return err
	}

	// Stage 1 on the first frame's batch: pack compatible itineraries.
	var batch []stabledispatch.Request
	for _, r := range requests {
		if r.Frame < 3 {
			batch = append(batch, r)
		}
	}
	packCfg := stabledispatch.DefaultPackConfig() // θ = 5 km, |group| ≤ 3
	result, err := stabledispatch.PackRequests(batch, stabledispatch.EuclidMetric, packCfg)
	if err != nil {
		return err
	}
	fmt.Printf("batch of %d requests -> %d shared groups, %d riding alone\n\n",
		len(batch), len(result.Groups), len(result.Singles))
	for _, g := range result.Groups {
		fmt.Printf("  group %v: route %.2f km", g.Members, g.Plan.Length)
		for gi, idx := range g.Members {
			solo := batch[idx].TripDistance(stabledispatch.EuclidMetric)
			fmt.Printf("  rider %d detour %.2f km", batch[idx].ID, g.Plan.Detour(gi, solo))
		}
		fmt.Println()
	}

	// Full simulation: stable sharing dispatch vs insertion baseline.
	taxis, err := stabledispatch.GenerateTaxis(city, 60, 22)
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulating %d requests on a deliberately tight fleet of %d taxis\n\n",
		len(requests), len(taxis))
	for _, dispatcher := range []stabledispatch.Dispatcher{
		stabledispatch.STDP(packCfg),
		stabledispatch.SARPDispatcher(stabledispatch.DefaultCarpoolConfig()),
	} {
		sim, err := stabledispatch.NewSimulator(stabledispatch.SimConfig{
			Dispatcher: dispatcher,
			Params:     stabledispatch.DefaultParams(),
		}, taxis, requests)
		if err != nil {
			return err
		}
		report, err := sim.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-6s served %4d/%d  shared rides %3d  mean delay %5.2f min  taxi diss %7.3f km\n",
			report.Algorithm, report.ServedCount(), len(requests),
			report.SharedRideCount(), mean(report.DispatchDelays()),
			mean(report.TaxiDissatisfactions()))
	}
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
