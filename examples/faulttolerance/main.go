// Faulttolerance: inject taxi outages into a dispatch day and watch the
// stable dispatcher degrade gracefully. A third of the fleet goes dark
// during the evening rush; drivers finish their current fare before going
// offline, waiting passengers spill over to the remaining taxis, and
// service recovers when the outage lifts.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"stabledispatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	city := stabledispatch.Boston()
	cfg := stabledispatch.BostonConfig(180, 77)
	requests, err := stabledispatch.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	taxis, err := stabledispatch.GenerateTaxis(city, 60, 78)
	if err != nil {
		return err
	}

	// A third of the fleet fails between minute 60 and minute 120.
	var outages []stabledispatch.Outage
	for i := 0; i < len(taxis)/3; i++ {
		outages = append(outages, stabledispatch.Outage{
			TaxiID: taxis[i].ID, From: 60, To: 120,
		})
	}

	run := func(label string, out []stabledispatch.Outage) (*stabledispatch.Report, error) {
		sim, err := stabledispatch.NewSimulator(stabledispatch.SimConfig{
			Dispatcher:     stabledispatch.NSTDP(),
			Params:         stabledispatch.DefaultParams(),
			Outages:        out,
			PatienceFrames: 45,
		}, taxis, requests)
		if err != nil {
			return nil, err
		}
		report, err := sim.Run()
		if err != nil {
			return nil, err
		}
		fmt.Printf("%-12s served %4d/%d  abandoned %3d  mean delay %5.2f min\n",
			label, report.ServedCount(), len(requests),
			report.AbandonedCount(), mean(report.DispatchDelays()))
		return report, nil
	}

	fmt.Printf("%d requests, %d taxis; outage hits %d taxis during minutes 60-120\n\n",
		len(requests), len(taxis), len(outages))
	healthy, err := run("healthy", nil)
	if err != nil {
		return err
	}
	degraded, err := run("with outage", outages)
	if err != nil {
		return err
	}

	// Per-30-minute delay profile shows the dip and the recovery.
	fmt.Println("\nmean delay by half hour (healthy vs outage):")
	for bucket := 0; bucket < 6; bucket++ {
		lo, hi := bucket*30, (bucket+1)*30
		h := bucketDelay(healthy, lo, hi)
		d := bucketDelay(degraded, lo, hi)
		marker := ""
		if lo >= 60 && lo < 120 {
			marker = "  <- outage window"
		}
		fmt.Printf("  %3d-%3d min: %6.2f vs %6.2f%s\n", lo, hi, h, d, marker)
	}
	return nil
}

func bucketDelay(rep *stabledispatch.Report, lo, hi int) float64 {
	var sum float64
	var n int
	for _, o := range rep.Requests {
		if !o.Served || o.ArrivalFrame < lo || o.ArrivalFrame >= hi {
			continue
		}
		sum += float64(o.AssignFrame - o.ArrivalFrame)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
