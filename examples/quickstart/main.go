// Quickstart: dispatch a morning of Boston taxi traffic with the paper's
// passenger-optimal stable matching (NSTD-P) and compare it against the
// greedy nearest-taxi baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stabledispatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A synthetic Boston morning over 240 one-minute frames, with a
	// deliberately tight fleet so taxis actually compete for rides —
	// the regime the paper's stability argument is about.
	city := stabledispatch.Boston()
	traceCfg := stabledispatch.BostonConfig(240 /* frames */, 1 /* seed */)
	requests, err := stabledispatch.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	taxis, err := stabledispatch.GenerateTaxis(city, 80, 2)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d requests, %d taxis, %d minutes\n\n",
		len(requests), len(taxis), traceCfg.Frames)

	for _, dispatcher := range []stabledispatch.Dispatcher{
		stabledispatch.NSTDP(),
		stabledispatch.GreedyDispatcher(),
	} {
		sim, err := stabledispatch.NewSimulator(stabledispatch.SimConfig{
			Dispatcher: dispatcher,
			Params:     stabledispatch.DefaultParams(),
		}, taxis, requests)
		if err != nil {
			return err
		}
		report, err := sim.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s served %4d/%d  mean delay %5.2f min  "+
			"passenger diss %6.3f km  taxi diss %7.3f km\n",
			report.Algorithm, report.ServedCount(), len(requests),
			mean(report.DispatchDelays()),
			mean(report.PassengerDissatisfactions()),
			mean(report.TaxiDissatisfactions()))
	}
	fmt.Println("\nNSTD-P trades a little delay for much happier drivers —")
	fmt.Println("the paper's headline result.")
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
