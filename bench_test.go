package stabledispatch

// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per figure, §VI), plus micro-benchmarks for the core
// algorithms. Figure benches run the shrunken Quick configuration so the
// default `go test -bench=.` pass stays tractable; `cmd/benchfig`
// regenerates the figures at paper scale.

import (
	"fmt"
	"testing"
	"time"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/exp"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/match"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/roadnet"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stable"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

func benchOptions() exp.Options {
	o := exp.QuickOptions()
	o.Frames = 60
	o.VolumeScale = 0.05
	o.TaxiScale = 0.05
	return o
}

func benchmarkFigure(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	run := exp.Figures()[id]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := run(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Panels) != 3 {
			b.Fatalf("%s produced %d panels", id, len(fig.Panels))
		}
	}
}

// BenchmarkFig4NonSharingNewYork regenerates Fig. 4: non-sharing CDFs on
// the New York workload.
func BenchmarkFig4NonSharingNewYork(b *testing.B) { benchmarkFigure(b, "fig4") }

// BenchmarkFig5NonSharingBoston regenerates Fig. 5: non-sharing CDFs on
// the Boston workload.
func BenchmarkFig5NonSharingBoston(b *testing.B) { benchmarkFigure(b, "fig5") }

// BenchmarkFig6TaxiCountSweep regenerates Fig. 6: metric averages vs
// fleet size.
func BenchmarkFig6TaxiCountSweep(b *testing.B) { benchmarkFigure(b, "fig6") }

// BenchmarkFig7ClockTimeSweep regenerates Fig. 7: metric averages vs
// clock time.
func BenchmarkFig7ClockTimeSweep(b *testing.B) { benchmarkFigure(b, "fig7") }

// BenchmarkFig8SharingNewYork regenerates Fig. 8: sharing CDFs on the
// New York workload.
func BenchmarkFig8SharingNewYork(b *testing.B) { benchmarkFigure(b, "fig8") }

// BenchmarkFig9SharingBoston regenerates Fig. 9: sharing CDFs on the
// Boston workload.
func BenchmarkFig9SharingBoston(b *testing.B) { benchmarkFigure(b, "fig9") }

// benchWorld builds one dispatch frame's worth of requests and taxis.
func benchWorld(b *testing.B, nReqs, nTaxis int) ([]fleet.Request, []fleet.Taxi) {
	b.Helper()
	city := trace.Boston()
	cfg := trace.Config{City: city, Frames: 60, RequestsPerDay: nReqs * 24, Seats: 3, Seed: 9}
	reqs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(reqs) > nReqs {
		reqs = reqs[:nReqs]
	}
	taxis, err := trace.Taxis(city, nTaxis, 10)
	if err != nil {
		b.Fatal(err)
	}
	return reqs, taxis
}

// BenchmarkAlgorithm1 measures one passenger-optimal stable matching on
// a frame-sized market (Algorithm 1).
func BenchmarkAlgorithm1(b *testing.B) {
	for _, size := range []struct{ r, t int }{{50, 100}, {100, 400}, {200, 700}} {
		b.Run(fmt.Sprintf("%dx%d", size.r, size.t), func(b *testing.B) {
			reqs, taxis := benchWorld(b, size.r, size.t)
			inst, err := pref.NewInstance(reqs, taxis, geo.EuclidMetric, pref.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := stable.PassengerOptimal(&inst.Market)
				if len(m.ReqPartner) != len(reqs) {
					b.Fatal("bad matching")
				}
			}
		})
	}
}

// BenchmarkAlgorithm2 measures the all-stable-matchings enumeration.
func BenchmarkAlgorithm2(b *testing.B) {
	reqs, taxis := benchWorld(b, 60, 120)
	inst, err := pref.NewInstance(reqs, taxis, geo.EuclidMetric, pref.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := stable.AllStableMatchings(&inst.Market, 64)
		if len(all) == 0 {
			b.Fatal("no matchings")
		}
	}
}

// BenchmarkHungarian measures the MinCost baseline's assignment solver.
func BenchmarkHungarian(b *testing.B) {
	reqs, taxis := benchWorld(b, 100, 400)
	cost := make([][]float64, len(reqs))
	for j, r := range reqs {
		cost[j] = make([]float64, len(taxis))
		for i, t := range taxis {
			cost[j][i] = geo.Euclid(t.Pos, r.Pickup)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := match.MinCost(cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBottleneck measures the bottleneck-matching baseline.
func BenchmarkBottleneck(b *testing.B) {
	reqs, taxis := benchWorld(b, 100, 400)
	cost := make([][]float64, len(reqs))
	for j, r := range reqs {
		cost[j] = make([]float64, len(taxis))
		for i, t := range taxis {
			cost[j][i] = geo.Euclid(t.Pos, r.Pickup)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := match.Bottleneck(cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackRequests measures Algorithm 3's packing stage (feasible
// groups + maximum set packing).
func BenchmarkPackRequests(b *testing.B) {
	reqs, _ := benchWorld(b, 60, 1)
	cfg := share.PackConfig{Theta: 5, MaxGroupSize: 3, PairRadius: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := share.Pack(reqs, geo.EuclidMetric, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedRoute measures the exhaustive three-rider route search.
func BenchmarkSharedRoute(b *testing.B) {
	reqs, _ := benchWorld(b, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := share.BestRoute(reqs, geo.EuclidMetric); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFrame builds one NSTD-P-sized dispatch frame with an all-idle
// fleet, for measuring the full per-frame dispatch path.
func benchFrame(b *testing.B, nReqs, nTaxis int) *sim.Frame {
	b.Helper()
	reqs, taxis := benchWorld(b, nReqs, nTaxis)
	f := &sim.Frame{
		Requests: reqs,
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
	for _, t := range taxis {
		f.Taxis = append(f.Taxis, sim.TaxiView{ID: t.ID, Pos: t.Pos, Seats: t.Seats, Idle: true})
	}
	return f
}

func benchmarkDispatchFrame(b *testing.B, instrumented, traced bool) {
	was := obs.Enabled()
	obs.SetEnabled(instrumented)
	defer obs.SetEnabled(was)
	wasTracing := dtrace.Enabled()
	dtrace.SetEnabled(traced)
	defer func() {
		dtrace.SetEnabled(wasTracing)
		dtrace.Default().Reset()
	}()
	f := benchFrame(b, 100, 400)
	d := dispatch.NewNSTDP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Dispatch(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no assignments")
		}
	}
}

// BenchmarkDispatchFrame measures an NSTD-P frame with the obs registry
// and decision tracing both disabled: the uninstrumented baseline.
func BenchmarkDispatchFrame(b *testing.B) { benchmarkDispatchFrame(b, false, false) }

// BenchmarkDispatchFrameInstrumented measures the identical frame with
// metrics enabled; compare against BenchmarkDispatchFrame to bound the
// instrumentation overhead (budget: <2%).
func BenchmarkDispatchFrameInstrumented(b *testing.B) { benchmarkDispatchFrame(b, true, false) }

// BenchmarkDispatchFrameTraced measures the identical frame with
// decision tracing recording every proposal; compare against
// BenchmarkDispatchFrame for the traced-path cost. The kill-switch-off
// budget is ≤5% (BenchmarkDispatchFrame itself exercises that path: each
// instrumentation site is one atomic load when disabled).
func BenchmarkDispatchFrameTraced(b *testing.B) { benchmarkDispatchFrame(b, false, true) }

// BenchmarkDispatchFrameRecorded measures the identical frame with a
// per-frame KPI sample recorded into a tseries ring after each dispatch,
// the way an instrumented Simulator.Step records one; compare against
// BenchmarkDispatchFrame to bound the recorder overhead (budget: ≤5% —
// one mutex acquisition plus a fixed-width struct copy per frame).
func BenchmarkDispatchFrameRecorded(b *testing.B) {
	was := obs.Enabled()
	obs.SetEnabled(false)
	defer obs.SetEnabled(was)
	f := benchFrame(b, 100, 400)
	d := dispatch.NewNSTDP()
	rec := tseries.New(tseries.Config{Capacity: 1024, Downsample: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := d.Dispatch(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no assignments")
		}
		rec.Record(tseries.Sample{Frame: int64(i), Served: int64(len(out))})
	}
}

// BenchmarkDispatchFrameProfiled measures the identical frame with the
// frame-budget ledger active on top of the obs registry, the way a
// profiled Simulator.Step runs one: BeginFrame/EndFrame bracket the
// dispatch and every stage span records into the ledger. Compare
// against BenchmarkDispatchFrameInstrumented to bound the profiler
// overhead (budget: ≤5% — per stage one monotonic clock read and a few
// array stores, per frame one ring slot write, all allocation-free).
func BenchmarkDispatchFrameProfiled(b *testing.B) {
	was := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(was)
	ld := prof.Configure(prof.Config{TopN: 8})
	defer prof.Disable()
	f := benchFrame(b, 100, 400)
	d := dispatch.NewNSTDP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld.BeginFrame(int64(i))
		start := time.Now()
		out, err := d.Dispatch(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no assignments")
		}
		ld.EndFrame(int64(i), time.Since(start).Nanoseconds(), 0)
	}
}

// BenchmarkAblationMaxNet regenerates the taxi-threshold ablation sweep.
func BenchmarkAblationMaxNet(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationMaxNet(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTheta regenerates the sharing detour-bound sweep.
func BenchmarkAblationTheta(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationTheta(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStableVariant compares the four stable selections.
func BenchmarkAblationStableVariant(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationStableVariant(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostPlane measures one frame's shared distance-plane build —
// the pruned configuration every stable dispatcher requests — serially
// and with the default worker pool. The road variant rebuilds the
// shortest-path cache each iteration so the pool is measured against
// cold Dijkstra fills, not cache hits; note on a single-core runner the
// parallel rows match the serial ones.
func BenchmarkCostPlane(b *testing.B) {
	reqs, taxis := benchWorld(b, 100, 400)
	cfg := costplane.Config{PruneRadius: pref.DefaultParams().MaxPickup}
	g, err := roadnet.NewGrid(roadnet.GridConfig{Rows: 24, Cols: 24, Spacing: 1, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 0}} {
		cfg := cfg
		cfg.Workers = workers.n
		b.Run("euclid/"+workers.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl := costplane.Build(reqs, taxis, geo.EuclidMetric, cfg)
				if pl.Cells() != len(reqs)*len(taxis) {
					b.Fatal("bad plane")
				}
			}
		})
		b.Run("road/"+workers.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl := costplane.Build(reqs, taxis, roadnet.NewMetric(g, 256), cfg)
				if pl.Cells() != len(reqs)*len(taxis) {
					b.Fatal("bad plane")
				}
			}
		})
	}
}
