package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) != NaN")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean([]float64{-4}); got != -4 {
		t.Errorf("Mean = %v, want -4", got)
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty must be NaN")
	}
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 10},
		{p: 100, want: 50},
		{p: 50, want: 30},
		{p: 25, want: 20},
		{p: 110, want: 50},
		{p: -5, want: 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) != NaN")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	points := []float64{0, 1, 2, 2.5, 3, 10}
	want := []float64{0, 0.25, 0.75, 0.75, 1, 1}
	got := CDF(xs, points)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF at %v = %v, want %v", points[i], got[i], want[i])
		}
	}
	empty := CDF(nil, points)
	for i, v := range empty {
		if v != 0 {
			t.Errorf("CDF(nil) at %v = %v, want 0", points[i], v)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		points := Linspace(-60, 60, 25)
		cdf := CDF(xs, points)
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return cdf[len(cdf)-1] == 1
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCDFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.Float64()*10) / 2 // induce ties
		}
		points := Linspace(0, 5, 11)
		got := CDF(xs, points)
		for i, p := range points {
			count := 0
			for _, x := range xs {
				if x <= p {
					count++
				}
			}
			want := float64(count) / float64(n)
			if math.Abs(got[i]-want) > 1e-9 {
				sort.Float64s(xs)
				t.Fatalf("trial %d: CDF(%v) = %v, want %v (xs %v)", trial, p, got[i], want, xs)
			}
		}
	}
}

func TestLinspace(t *testing.T) {
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0 = %v", got)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
	got := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Linspace = %v, want %v", got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "Fig. X",
		Columns: []string{"alg", "delay"},
	}
	tb.AddRow("NSTD-P", F(1.25))
	tb.AddRow("Greedy", F(math.NaN()))
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. X", "alg", "delay", "NSTD-P", "1.250", "Greedy", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestF(t *testing.T) {
	if got := F(1.23456); got != "1.235" {
		t.Errorf("F = %q", got)
	}
	if got := F(math.NaN()); got != "-" {
		t.Errorf("F(NaN) = %q", got)
	}
}

func TestPlotRender(t *testing.T) {
	p := Plot{
		Title:  "delay CDF",
		XLabel: "minutes",
		X:      Linspace(0, 10, 11),
		Series: []PlotSeries{
			{Name: "NSTD-P", Y: Linspace(0, 1, 11)},
			{Name: "Greedy", Y: Linspace(0.5, 0.9, 11)},
		},
		Height: 8,
		Width:  40,
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"delay CDF", "NSTD-P", "Greedy", "minutes", "*", "o", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + 8 rows + axis + x labels + legend.
	if len(lines) != 12 {
		t.Errorf("plot has %d lines, want 12:\n%s", len(lines), out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	p := Plot{Title: "empty"}
	if err := p.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot = %q", sb.String())
	}

	sb.Reset()
	nan := Plot{Title: "nan", X: []float64{0, 1}, Series: []PlotSeries{{Name: "a", Y: []float64{math.NaN(), math.NaN()}}}}
	if err := nan.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("nan plot = %q", sb.String())
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var sb strings.Builder
	p := Plot{
		Title:  "flat",
		X:      []float64{0, 1, 2},
		Series: []PlotSeries{{Name: "c", Y: []float64{5, 5, 5}}},
	}
	if err := p.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("flat series not drawn")
	}
}
