// Package stats provides the summary statistics and text rendering the
// experiment harness uses to regenerate the paper's figures: CDFs
// (Figs. 4, 5, 8, 9), averages (Figs. 6, 7), and aligned text tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation, or NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF evaluates the empirical distribution at the given points: the
// fraction of samples <= each point. An empty sample yields all zeros.
func CDF(xs, points []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(points))
	for i, p := range points {
		if len(sorted) == 0 {
			continue
		}
		// Count of samples <= p via binary search for the first
		// sample > p.
		n := sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))
		out[i] = float64(n) / float64(len(sorted))
	}
	return out
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Table is an aligned text table for figure output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float for table cells with three significant decimals.
func F(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.3f", x)
}
