package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotSeries is one line of an ASCII chart.
type PlotSeries struct {
	Name string
	Y    []float64
}

// Plot renders aligned series as a terminal line chart — good enough to
// eyeball the CDF shapes the paper plots without leaving the shell.
type Plot struct {
	Title  string
	XLabel string
	X      []float64
	Series []PlotSeries
	// Height is the number of chart rows (default 16).
	Height int
	// Width is the number of chart columns (default 64); x points are
	// resampled onto it.
	Width int
}

// plotMarks assigns one rune per series, cycling if there are many.
var plotMarks = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (p *Plot) Render(w io.Writer) error {
	height := p.Height
	if height <= 0 {
		height = 16
	}
	width := p.Width
	if width <= 0 {
		width = 64
	}
	if len(p.X) == 0 || len(p.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s (no data)\n", p.Title)
		return err
	}

	// Value range across all series (NaNs skipped).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		_, err := fmt.Fprintf(w, "%s (no data)\n", p.Title)
		return err
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	xMin, xMax := p.X[0], p.X[len(p.X)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}
	for si, s := range p.Series {
		mark := plotMarks[si%len(plotMarks)]
		for i, v := range s.Y {
			if i >= len(p.X) || math.IsNaN(v) {
				continue
			}
			col := int((p.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			row := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	if p.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", p.Title); err != nil {
			return err
		}
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.2f", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.2f", (hi+lo)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-10.2f%*s%.2f  (%s)\n",
		strings.Repeat(" ", 8), xMin, width-22, "", xMax, p.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", plotMarks[si%len(plotMarks)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	return err
}
