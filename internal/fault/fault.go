// Package fault generates deterministic, seeded fault schedules for the
// simulator: mid-route taxi breakdowns, driver cancellations after
// assignment, and passenger cancellations before pickup.
//
// The O2O setting the paper targets is defined by churn — privately
// owned taxis go dark mid-shift, drivers reject fares they already
// accepted, passengers give up before pickup — yet the dispatch model
// assumes every accepted assignment completes. A Schedule closes that
// gap for experiments: it is a pure function of (Seed, entity IDs), so
// a run with a fixed seed replays the exact same fault sequence
// regardless of wall-clock, goroutine scheduling, or map iteration
// order, which makes chaos experiments diffable and regressions
// bisectable.
//
// A Schedule is composed into a run through sim.Config.Faults:
//
//	sched, _ := fault.New(fault.Config{Seed: 7, BreakdownRate: 0.01})
//	cfg := sim.Config{Dispatcher: d, Faults: sched}
//
// The decision functions are stateless and safe for concurrent use.
package fault

import "fmt"

// Config parameterises a fault schedule. The zero value injects no
// faults.
type Config struct {
	// Seed keys every decision; two schedules with the same seed and
	// rates make identical decisions.
	Seed int64
	// BreakdownRate is the per-frame hazard that a busy taxi breaks
	// down mid-route (0 disables breakdowns). With rate h, the chance a
	// taxi survives an n-frame trip is (1-h)^n.
	BreakdownRate float64
	// DriverCancelRate is the probability that a driver abandons an
	// assignment they accepted, before pickup (0 disables).
	DriverCancelRate float64
	// PassengerCancelRate is the probability that a passenger cancels
	// their request before pickup (0 disables).
	PassengerCancelRate float64
	// RepairFrames is how long a broken-down taxi stays out of service.
	// Defaults to DefaultRepairFrames.
	RepairFrames int
	// MaxCancelDelayFrames bounds how many frames after arrival (for
	// passengers) or assignment (for drivers) a cancellation fires; the
	// actual delay is uniform in [1, MaxCancelDelayFrames]. Defaults to
	// DefaultMaxCancelDelay.
	MaxCancelDelayFrames int
}

// Defaults for the optional Config durations.
const (
	DefaultRepairFrames   = 30
	DefaultMaxCancelDelay = 8
)

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"BreakdownRate", c.BreakdownRate},
		{"DriverCancelRate", c.DriverCancelRate},
		{"PassengerCancelRate", c.PassengerCancelRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.RepairFrames < 0 {
		return fmt.Errorf("fault: RepairFrames %d is negative", c.RepairFrames)
	}
	if c.MaxCancelDelayFrames < 0 {
		return fmt.Errorf("fault: MaxCancelDelayFrames %d is negative", c.MaxCancelDelayFrames)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RepairFrames == 0 {
		c.RepairFrames = DefaultRepairFrames
	}
	if c.MaxCancelDelayFrames == 0 {
		c.MaxCancelDelayFrames = DefaultMaxCancelDelay
	}
	return c
}

// Schedule is a deterministic fault oracle. It implements the
// simulator's FaultInjector interface.
type Schedule struct {
	cfg Config
}

// New builds a schedule from the config.
func New(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Schedule{cfg: cfg}, nil
}

// Config returns the (default-filled) configuration in force.
func (s *Schedule) Config() Config { return s.cfg }

// Domain-separation salts so the three fault classes draw independent
// decisions even for coinciding IDs.
const (
	saltPassenger uint64 = 0xa5a5_0001
	saltDriver    uint64 = 0xa5a5_0002
	saltBreakdown uint64 = 0xa5a5_0003
	saltDelay     uint64 = 0xa5a5_0004
)

// PassengerCancelAfter reports whether the passenger of the given
// request cancels before pickup, and if so how many frames after
// arrival the cancellation fires (≥ 1).
func (s *Schedule) PassengerCancelAfter(requestID int) (int, bool) {
	if s.cfg.PassengerCancelRate <= 0 {
		return 0, false
	}
	h := s.hash(saltPassenger, uint64(int64(requestID)), 0)
	if toUnit(h) >= s.cfg.PassengerCancelRate {
		return 0, false
	}
	return s.delay(saltPassenger, uint64(int64(requestID)), 0), true
}

// DriverCancelAfter reports whether the driver of taxiID abandons the
// assignment of requestID made at assignFrame, and if so how many
// frames after assignment the cancellation fires (≥ 1). A cancellation
// only takes effect if the passenger has not been picked up by then.
func (s *Schedule) DriverCancelAfter(taxiID, requestID, assignFrame int) (int, bool) {
	if s.cfg.DriverCancelRate <= 0 {
		return 0, false
	}
	a := uint64(int64(taxiID))<<32 ^ uint64(int64(requestID))
	h := s.hash(saltDriver, a, uint64(int64(assignFrame)))
	if toUnit(h) >= s.cfg.DriverCancelRate {
		return 0, false
	}
	return s.delay(saltDriver, a, uint64(int64(assignFrame))), true
}

// Breakdown reports whether the (busy) taxi breaks down at the given
// frame, and if so how long the repair keeps it out of service.
func (s *Schedule) Breakdown(taxiID, frame int) (int, bool) {
	if s.cfg.BreakdownRate <= 0 {
		return 0, false
	}
	h := s.hash(saltBreakdown, uint64(int64(taxiID)), uint64(int64(frame)))
	if toUnit(h) >= s.cfg.BreakdownRate {
		return 0, false
	}
	return s.cfg.RepairFrames, true
}

// delay derives a uniform cancellation delay in [1, MaxCancelDelay]
// from an independent hash stream.
func (s *Schedule) delay(salt, a, b uint64) int {
	h := s.hash(salt^saltDelay, a, b)
	return 1 + int(h%uint64(s.cfg.MaxCancelDelayFrames))
}

// hash chains the seed, a domain salt, and two operands through
// splitmix64 finalisers.
func (s *Schedule) hash(salt, a, b uint64) uint64 {
	h := mix64(uint64(s.cfg.Seed) ^ salt)
	h = mix64(h ^ a)
	return mix64(h ^ b)
}

// mix64 is the splitmix64 finaliser: a cheap, well-distributed 64-bit
// permutation.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// toUnit maps a hash to the unit interval [0, 1).
func toUnit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
