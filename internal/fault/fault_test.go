package fault_test

import (
	"testing"

	"stabledispatch/internal/fault"
	"stabledispatch/internal/sim"
)

// The schedule must satisfy the simulator's injector interface.
var _ sim.FaultInjector = (*fault.Schedule)(nil)

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := []fault.Config{
		{BreakdownRate: -0.1},
		{BreakdownRate: 1.5},
		{DriverCancelRate: 2},
		{PassengerCancelRate: -1},
		{RepairFrames: -3},
		{MaxCancelDelayFrames: -1},
	}
	for _, cfg := range bad {
		if _, err := fault.New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := fault.New(fault.Config{}); err != nil {
		t.Errorf("New rejected the zero config: %v", err)
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	s, err := fault.New(fault.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 1000; id++ {
		if _, ok := s.PassengerCancelAfter(id); ok {
			t.Fatalf("passenger cancel injected at rate 0 (request %d)", id)
		}
		if _, ok := s.DriverCancelAfter(id, id+1, id+2); ok {
			t.Fatalf("driver cancel injected at rate 0 (taxi %d)", id)
		}
		if _, ok := s.Breakdown(id, id); ok {
			t.Fatalf("breakdown injected at rate 0 (taxi %d)", id)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	cfg := fault.Config{
		Seed:                42,
		BreakdownRate:       0.2,
		DriverCancelRate:    0.3,
		PassengerCancelRate: 0.25,
	}
	a, _ := fault.New(cfg)
	b, _ := fault.New(cfg)
	for id := 0; id < 500; id++ {
		ad, aok := a.PassengerCancelAfter(id)
		bd, bok := b.PassengerCancelAfter(id)
		if ad != bd || aok != bok {
			t.Fatalf("passenger decision diverged for request %d: (%d,%v) vs (%d,%v)", id, ad, aok, bd, bok)
		}
		ad, aok = a.DriverCancelAfter(id, id*7, id%13)
		bd, bok = b.DriverCancelAfter(id, id*7, id%13)
		if ad != bd || aok != bok {
			t.Fatalf("driver decision diverged for taxi %d", id)
		}
		ad, aok = a.Breakdown(id, id*3)
		bd, bok = b.Breakdown(id, id*3)
		if ad != bd || aok != bok {
			t.Fatalf("breakdown decision diverged for taxi %d", id)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *fault.Schedule {
		s, err := fault.New(fault.Config{Seed: seed, PassengerCancelRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(1), mk(2)
	diverged := false
	for id := 0; id < 200; id++ {
		_, aok := a.PassengerCancelAfter(id)
		_, bok := b.PassengerCancelAfter(id)
		if aok != bok {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seeds 1 and 2 made identical decisions over 200 requests")
	}
}

func TestRatesApproximatelyRespected(t *testing.T) {
	const n = 20000
	s, err := fault.New(fault.Config{Seed: 9, PassengerCancelRate: 0.3, BreakdownRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cancels := 0
	for id := 0; id < n; id++ {
		if _, ok := s.PassengerCancelAfter(id); ok {
			cancels++
		}
	}
	if got := float64(cancels) / n; got < 0.27 || got > 0.33 {
		t.Errorf("passenger cancel rate = %.3f, want ≈ 0.30", got)
	}
	breaks := 0
	for i := 0; i < n; i++ {
		if _, ok := s.Breakdown(i%100, i/100); ok {
			breaks++
		}
	}
	if got := float64(breaks) / n; got < 0.08 || got > 0.12 {
		t.Errorf("breakdown rate = %.3f, want ≈ 0.10", got)
	}
}

func TestDelaysWithinBounds(t *testing.T) {
	s, err := fault.New(fault.Config{Seed: 5, PassengerCancelRate: 1, MaxCancelDelayFrames: 6})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for id := 0; id < 2000; id++ {
		d, ok := s.PassengerCancelAfter(id)
		if !ok {
			t.Fatalf("rate 1 skipped request %d", id)
		}
		if d < 1 || d > 6 {
			t.Fatalf("delay %d outside [1, 6]", d)
		}
		seen[d] = true
	}
	if len(seen) != 6 {
		t.Errorf("delays drew %d distinct values of 6", len(seen))
	}
}

func TestRepairFramesDefaulted(t *testing.T) {
	s, err := fault.New(fault.Config{Seed: 3, BreakdownRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	repair, ok := s.Breakdown(0, 0)
	if !ok || repair != fault.DefaultRepairFrames {
		t.Errorf("Breakdown = (%d, %v), want (%d, true)", repair, ok, fault.DefaultRepairFrames)
	}
	if got := s.Config().MaxCancelDelayFrames; got != fault.DefaultMaxCancelDelay {
		t.Errorf("MaxCancelDelayFrames defaulted to %d, want %d", got, fault.DefaultMaxCancelDelay)
	}
}
