package share

import (
	"fmt"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
)

// Decision tracing for Algorithm 3's packing stage. Group decisions are
// recorded on every member's trace (a passenger asking "why did I ride
// alone" needs the rejection of the groups they were considered for),
// keyed by fleet request ID. All helpers are no-ops unless the caller
// passed a live recorder.

// memberIDs maps request indices into fleet request IDs.
func memberIDs(reqs []fleet.Request, members []int) []int {
	ids := make([]int, len(members))
	for g, idx := range members {
		ids[g] = reqs[idx].ID
	}
	return ids
}

// traceGroup records one feasible-group decision (formation or
// rejection) on every member's trace.
func traceGroup(rec *dtrace.Recorder, reqs []fleet.Request, members []int, kind dtrace.Kind, outcome, detail string) {
	if rec == nil {
		return
	}
	ids := memberIDs(reqs, members)
	for _, id := range ids {
		e := dtrace.Ev(kind)
		e.Members = ids
		e.Outcome = outcome
		e.Detail = detail
		rec.Record(id, e)
	}
}

// tracePacking reports the set-packing outcome: a pack_pick event per
// chosen group and, for the local-search solver, a pack_swap event per
// accepted exchange move (wired through setpack.Observer by Pack).
func tracePick(rec *dtrace.Recorder, reqs []fleet.Request, g Group, theta float64) {
	if rec == nil {
		return
	}
	detail := fmt.Sprintf("group packed: shared route %.2f km within θ=%.2f km, %d riders share one taxi",
		g.Plan.Length, theta, len(g.Members))
	traceGroup(rec, reqs, g.Members, dtrace.KindPackPick, "packed", detail)
}

// packObserver adapts setpack's move callbacks into pack_swap events on
// the affected members' traces.
func packObserver(rec *dtrace.Recorder, reqs []fleet.Request, groups []Group) func(move string, removed, added []int) {
	if rec == nil {
		return nil
	}
	return func(move string, removed, added []int) {
		for _, k := range removed {
			traceGroup(rec, reqs, groups[k].Members, dtrace.KindPackSwap, "swapped_out",
				fmt.Sprintf("set packing %s move replaced this group with %d disjoint group(s)", move, len(added)))
		}
		for _, k := range added {
			out := "swapped_in"
			if move == "add" {
				out = "added"
			}
			traceGroup(rec, reqs, groups[k].Members, dtrace.KindPackSwap, out,
				fmt.Sprintf("set packing %s move brought this group into the packing", move))
		}
	}
}
