package share

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

func randomRequests(rng *rand.Rand, n int) []fleet.Request {
	reqs := make([]fleet.Request, n)
	for i := range reqs {
		reqs[i] = fleet.Request{
			ID:      i,
			Pickup:  geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Dropoff: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		}
	}
	return reqs
}

// bruteBestLength enumerates all stop orders explicitly (no pruning) and
// returns the minimum length.
func bruteBestLength(start *geo.Point, reqs []fleet.Request, m geo.Metric) float64 {
	n := len(reqs)
	best := math.Inf(1)
	picked := make([]bool, n)
	dropped := make([]bool, n)
	var order []geo.Point

	var rec func()
	rec = func() {
		if len(order) == 2*n {
			length := 0.0
			prev := order[0]
			from := 1
			if start != nil {
				length = m.Distance(*start, order[0])
			}
			for _, p := range order[from:] {
				length += m.Distance(prev, p)
				prev = p
			}
			if length < best {
				best = length
			}
			return
		}
		for g := 0; g < n; g++ {
			if !picked[g] {
				picked[g] = true
				order = append(order, reqs[g].Pickup)
				rec()
				order = order[:len(order)-1]
				picked[g] = false
			} else if !dropped[g] {
				dropped[g] = true
				order = append(order, reqs[g].Dropoff)
				rec()
				order = order[:len(order)-1]
				dropped[g] = false
			}
		}
	}
	rec()
	return best
}

func TestBestRouteErrors(t *testing.T) {
	if _, err := BestRoute(nil, geo.EuclidMetric); !errors.Is(err, ErrNoRequests) {
		t.Errorf("BestRoute(nil) err = %v, want ErrNoRequests", err)
	}
	if _, err := BestRoute(randomRequests(rand.New(rand.NewSource(1)), 4), geo.EuclidMetric); err == nil {
		t.Error("BestRoute accepted a group of 4")
	}
}

func TestBestRouteSingle(t *testing.T) {
	r := fleet.Request{ID: 7, Pickup: geo.Point{}, Dropoff: geo.Point{X: 3, Y: 4}}
	plan, err := BestRoute([]fleet.Request{r}, geo.EuclidMetric)
	if err != nil {
		t.Fatalf("BestRoute: %v", err)
	}
	if plan.Length != 5 {
		t.Errorf("Length = %v, want 5", plan.Length)
	}
	if plan.PickupOffset[0] != 0 || plan.OnBoard[0] != 5 {
		t.Errorf("offsets = %v / %v, want 0 / 5", plan.PickupOffset[0], plan.OnBoard[0])
	}
	if plan.MaxLoad != 1 {
		t.Errorf("MaxLoad = %d, want 1", plan.MaxLoad)
	}
	if len(plan.Stops) != 2 || plan.Stops[0].Kind != fleet.StopPickup {
		t.Errorf("Stops = %v", plan.Stops)
	}
}

func TestBestRoutePickupBeforeDropoff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		reqs := randomRequests(rng, 1+rng.Intn(3))
		plan, err := BestRoute(reqs, geo.EuclidMetric)
		if err != nil {
			t.Fatalf("BestRoute: %v", err)
		}
		a := fleet.Assignment{TaxiID: 0, Requests: idsOf(reqs), Route: plan.Stops}
		if err := a.Validate(); err != nil {
			t.Fatalf("trial %d: invalid route: %v", trial, err)
		}
	}
}

func indexByID(reqs []fleet.Request, id int) int {
	for i, r := range reqs {
		if r.ID == id {
			return i
		}
	}
	return -1
}

func idsOf(reqs []fleet.Request) []int {
	ids := make([]int, len(reqs))
	for i, r := range reqs {
		ids[i] = r.ID
	}
	return ids
}

func TestBestRouteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		reqs := randomRequests(rng, 1+rng.Intn(3))
		plan, err := BestRoute(reqs, geo.EuclidMetric)
		if err != nil {
			t.Fatalf("BestRoute: %v", err)
		}
		want := bruteBestLength(nil, reqs, geo.EuclidMetric)
		if math.Abs(plan.Length-want) > 1e-9 {
			t.Fatalf("trial %d: Length = %v, brute force = %v", trial, plan.Length, want)
		}
	}
}

func TestBestRouteFromMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		reqs := randomRequests(rng, 1+rng.Intn(3))
		start := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		plan, err := BestRouteFrom(start, reqs, geo.EuclidMetric)
		if err != nil {
			t.Fatalf("BestRouteFrom: %v", err)
		}
		want := bruteBestLength(&start, reqs, geo.EuclidMetric)
		if math.Abs(plan.Length-want) > 1e-9 {
			t.Fatalf("trial %d: Length = %v, brute force = %v", trial, plan.Length, want)
		}
	}
}

func TestRouteOffsetsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		reqs := randomRequests(rng, 2+rng.Intn(2))
		plan, err := BestRoute(reqs, geo.EuclidMetric)
		if err != nil {
			t.Fatalf("BestRoute: %v", err)
		}
		// Walk the route manually and cross-check every offset.
		dist := 0.0
		pickupAt := make(map[int]float64)
		for i, stop := range plan.Stops {
			if i > 0 {
				dist += geo.Euclid(plan.Stops[i-1].Pos, stop.Pos)
			}
			g := indexByID(reqs, stop.RequestID)
			if stop.Kind == fleet.StopPickup {
				if math.Abs(plan.PickupOffset[g]-dist) > 1e-9 {
					t.Fatalf("trial %d: PickupOffset[%d] = %v, walked %v", trial, g, plan.PickupOffset[g], dist)
				}
				pickupAt[g] = dist
			} else {
				onBoard := dist - pickupAt[g]
				if math.Abs(plan.OnBoard[g]-onBoard) > 1e-9 {
					t.Fatalf("trial %d: OnBoard[%d] = %v, walked %v", trial, g, plan.OnBoard[g], onBoard)
				}
			}
		}
		if math.Abs(plan.Length-dist) > 1e-9 {
			t.Fatalf("trial %d: Length = %v, walked %v", trial, plan.Length, dist)
		}
	}
}

func TestOnBoardNeverShorterThanSolo(t *testing.T) {
	// The shared on-board distance can never beat the direct trip
	// under a metric satisfying the triangle inequality.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		reqs := randomRequests(rng, 2+rng.Intn(2))
		plan, err := BestRoute(reqs, geo.EuclidMetric)
		if err != nil {
			t.Fatalf("BestRoute: %v", err)
		}
		for g, r := range reqs {
			if plan.OnBoard[g] < r.TripDistance(geo.EuclidMetric)-1e-9 {
				t.Fatalf("trial %d: OnBoard[%d] = %v beats solo %v",
					trial, g, plan.OnBoard[g], r.TripDistance(geo.EuclidMetric))
			}
		}
	}
}

func TestMaxLoadWithSeats(t *testing.T) {
	// Two overlapping riders with 2 seats each: max load 4. Disjoint
	// trips along a line: max load 2.
	overlap := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 10}, Seats: 2},
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 9}, Seats: 2},
	}
	plan, err := BestRoute(overlap, geo.EuclidMetric)
	if err != nil {
		t.Fatalf("BestRoute: %v", err)
	}
	if plan.MaxLoad != 4 {
		t.Errorf("overlapping MaxLoad = %d, want 4", plan.MaxLoad)
	}

	disjoint := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 1}, Seats: 2},
		{ID: 1, Pickup: geo.Point{X: 5}, Dropoff: geo.Point{X: 6}, Seats: 2},
	}
	plan, err = BestRoute(disjoint, geo.EuclidMetric)
	if err != nil {
		t.Fatalf("BestRoute: %v", err)
	}
	if plan.MaxLoad != 2 {
		t.Errorf("disjoint MaxLoad = %d, want 2", plan.MaxLoad)
	}
}

func TestDetour(t *testing.T) {
	plan := RoutePlan{OnBoard: []float64{7, 3}}
	if got := plan.Detour(0, 5); got != 2 {
		t.Errorf("Detour = %v, want 2", got)
	}
	if got := plan.Detour(1, 3); got != 0 {
		t.Errorf("Detour = %v, want 0", got)
	}
}
