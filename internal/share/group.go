package share

import (
	"fmt"
	"sort"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/setpack"
)

// Packing-stage telemetry: how many feasible share groups line 1 of
// Algorithm 3 generates per frame, and how many groups/requests the set
// packing actually commits.
var (
	obsFeasibleGroups = obs.GetOrCreateCounter("share_feasible_groups_total")
	obsPackedGroups   = obs.GetOrCreateCounter("share_packed_groups_total")
	obsPackedRequests = obs.GetOrCreateCounter("share_packed_requests_total")
)

// Group is a feasible subset c_k of requests that can share one taxi:
// every member's detour stays within θ on the group's optimal route.
type Group struct {
	// Members are indices into the request slice the group was built
	// from, in ascending order.
	Members []int
	// Plan is the group's optimal shared route.
	Plan RoutePlan
}

// PackConfig controls feasible-group generation and packing.
type PackConfig struct {
	// Theta is the paper's θ: the maximum extra on-board distance (km)
	// any member may suffer relative to riding alone. The evaluation
	// uses θ = 5.
	Theta float64
	// MaxGroupSize caps |c_k|; the paper uses 3. Values outside
	// [2, MaxGroupSize] are rejected.
	MaxGroupSize int
	// PairRadius optionally prunes the O(R³) exhaustive search: only
	// requests whose pickups are within PairRadius of each other are
	// considered for sharing. Zero disables pruning (the paper's exact
	// exhaustive search). Pruning is safe for the packing objective —
	// a group of mutually distant pickups always violates θ anyway
	// once PairRadius ≥ 2θ.
	PairRadius float64
	// ExactPacking solves the maximum set packing stage exactly by
	// branch-and-bound (with ExactNodeBudget) instead of the (k+2)/3
	// local-search approximation. Feasible-group sets at frame scale
	// are small enough that the exact solve usually completes; past the
	// budget the incumbent (at least as good as local search) is used.
	ExactPacking bool
	// ExactNodeBudget caps the branch-and-bound search when
	// ExactPacking is set; 0 means 200000 nodes.
	ExactNodeBudget int
	// AllowChaining admits groups whose optimal route is a sequential
	// chain (one rider alights before the next boards). Chains satisfy
	// the paper's θ constraint trivially — the on-board detour is
	// zero — but save no driving and make the feasible-group graph
	// dense. By default a group is feasible only when its shared route
	// is strictly shorter than the members' solo trips combined, i.e.
	// when sharing actually saves distance.
	AllowChaining bool
}

// DefaultPackConfig returns the paper's evaluation settings: θ = 5 km,
// groups of at most 3, with pruning at 2θ.
func DefaultPackConfig() PackConfig {
	return PackConfig{Theta: 5, MaxGroupSize: 3, PairRadius: 10}
}

// Validate reports configuration errors.
func (c PackConfig) Validate() error {
	switch {
	case c.Theta < 0:
		return fmt.Errorf("share: theta must be non-negative, got %v", c.Theta)
	case c.MaxGroupSize < 2 || c.MaxGroupSize > MaxGroupSize:
		return fmt.Errorf("share: max group size must be in [2, %d], got %d", MaxGroupSize, c.MaxGroupSize)
	case c.PairRadius < 0:
		return fmt.Errorf("share: pair radius must be non-negative, got %v", c.PairRadius)
	}
	return nil
}

// FeasibleGroups computes the set C of all feasible subsets of requests
// that can share a taxi (Algorithm 3, line 1): for each subset of size 2
// to cfg.MaxGroupSize, the optimal shared route must keep every member's
// detour within θ. Singletons are never emitted — they do not help the
// packing objective and are dispatched individually afterwards.
//
// Triples are only explored when all three member pairs are themselves
// feasible (adding a rider to a route almost never shortens the others'
// on-board legs); combined with the PairRadius prefilter this keeps
// line 1 tractable when rush-hour queues grow, at the cost of a
// vanishingly rare missed triple — well within the algorithm's
// approximation regime.
func FeasibleGroups(reqs []fleet.Request, m geo.Metric, cfg PackConfig) ([]Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	near := func(a, b int) bool {
		if cfg.PairRadius <= 0 {
			return true
		}
		return m.Distance(reqs[a].Pickup, reqs[b].Pickup) <= cfg.PairRadius
	}
	solo := func(idx int) float64 { return reqs[idx].TripDistance(m) }
	return feasibleGroups(reqs, m, cfg, near, solo), nil
}

// FeasibleGroupsPlane is FeasibleGroups reading pickup-pair distances
// and solo trips from a per-frame cost plane instead of querying the
// metric. It considers the first n of the plane's requests (the packing
// batch is a prefix of the frame queue, so plane indices align). The
// result is identical to FeasibleGroups: a pair-pruned plane cell reads
// +Inf, which fails the PairRadius prefilter exactly like its true
// distance would. Route search still uses the plane's metric — route
// permutations visit point pairs no frame-wide matrix can hold.
func FeasibleGroupsPlane(n int, pl *costplane.Plane, cfg PackConfig) ([]Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// With fewer than two batched requests no pair is ever consulted, so
	// a plane without the pair matrix is fine (dispatchers skip building
	// it for singleton batches).
	if cfg.PairRadius > 0 && n >= 2 && !pl.HasPairs() {
		return nil, fmt.Errorf("share: pair-radius pruning needs a plane built with Pairs")
	}
	reqs := pl.Requests[:n]
	near := func(a, b int) bool {
		if cfg.PairRadius <= 0 {
			return true
		}
		return pl.PairDist(a, b) <= cfg.PairRadius
	}
	return feasibleGroups(reqs, pl.Metric(), cfg, near, pl.Trip), nil
}

// feasibleGroups is the shared enumeration core: near prunes candidate
// pairs, solo returns a request's solo trip distance.
func feasibleGroups(reqs []fleet.Request, m geo.Metric, cfg PackConfig, near func(a, b int) bool, solo func(idx int) float64) []Group {
	var groups []Group
	rec := dtrace.Active()

	tryGroup := func(members []int) (Group, bool) {
		sub := make([]fleet.Request, len(members))
		for g, idx := range members {
			sub[g] = reqs[idx]
		}
		plan, err := BestRoute(sub, m)
		if err != nil {
			traceGroup(rec, reqs, members, dtrace.KindGroupRejected, "route_error",
				fmt.Sprintf("no feasible shared route: %v", err))
			return Group{}, false
		}
		soloSum := 0.0
		for g, idx := range members {
			soloTrip := solo(idx)
			if d := plan.Detour(g, soloTrip); d > cfg.Theta {
				traceGroup(rec, reqs, members, dtrace.KindGroupRejected, "detour_exceeded",
					fmt.Sprintf("rider r%d detour %.2f km exceeds θ=%.2f km on the best shared route", reqs[idx].ID, d, cfg.Theta))
				return Group{}, false
			}
			soloSum += soloTrip
		}
		if !cfg.AllowChaining && plan.Length >= soloSum-1e-9 {
			// The "shared" route saves nothing over driving the
			// trips one after another: a chain, not a share.
			traceGroup(rec, reqs, members, dtrace.KindGroupRejected, "no_savings",
				fmt.Sprintf("shared route %.2f km saves nothing over %.2f km of solo trips (chain)", plan.Length, soloSum))
			return Group{}, false
		}
		traceGroup(rec, reqs, members, dtrace.KindGroupFormed, "feasible",
			fmt.Sprintf("shared route %.2f km keeps every detour within θ=%.2f km, saving %.2f km vs solo trips",
				plan.Length, cfg.Theta, soloSum-plan.Length))
		return Group{Members: append([]int(nil), members...), Plan: plan}, true
	}

	// Pairs, and the pair feasibility matrix reused to prune triples: a
	// triple is only explored when all three pickups are mutually near.
	pairOK := make(map[[2]int]bool)
	for a := 0; a < len(reqs); a++ {
		for b := a + 1; b < len(reqs); b++ {
			if !near(a, b) {
				continue
			}
			if g, ok := tryGroup([]int{a, b}); ok {
				groups = append(groups, g)
				pairOK[[2]int{a, b}] = true
			}
		}
	}
	if cfg.MaxGroupSize >= 3 {
		// Triples are grown from feasible pairs: adding a rider can
		// only lengthen the others' on-board legs, so a triple whose
		// pairs already violate θ cannot become feasible. This turns
		// the O(R³) scan into a triangle enumeration of the feasible-
		// pair graph, which is what keeps Algorithm 3 frame-rate under
		// rush-hour queue build-up.
		neighbors := make(map[int][]int)
		for key := range pairOK {
			neighbors[key[0]] = append(neighbors[key[0]], key[1])
		}
		for a := 0; a < len(reqs); a++ {
			na := neighbors[a]
			for bi := 0; bi < len(na); bi++ {
				for ci := bi + 1; ci < len(na); ci++ {
					b, c := na[bi], na[ci]
					if b > c {
						b, c = c, b
					}
					if !pairOK[[2]int{b, c}] {
						continue
					}
					if g, ok := tryGroup([]int{a, b, c}); ok {
						groups = append(groups, g)
					}
				}
			}
		}
	}
	return groups
}

// PackResult is the outcome of the packing stage: the chosen disjoint
// groups and the requests left to ride alone.
type PackResult struct {
	Groups []Group
	// Singles are the request indices not packed into any chosen group.
	Singles []int
}

// Pack runs Algorithm 3's first stage: enumerate feasible groups, then
// solve the maximum set packing problem with the local-search
// approximation. Every request appears in exactly one chosen group or in
// Singles.
func Pack(reqs []fleet.Request, m geo.Metric, cfg PackConfig) (PackResult, error) {
	groups, err := FeasibleGroups(reqs, m, cfg)
	if err != nil {
		return PackResult{}, err
	}
	return pack(reqs, groups, cfg), nil
}

// PackPlane is Pack reading distances from a per-frame cost plane; it
// packs the first n of the plane's requests.
func PackPlane(n int, pl *costplane.Plane, cfg PackConfig) (PackResult, error) {
	groups, err := FeasibleGroupsPlane(n, pl, cfg)
	if err != nil {
		return PackResult{}, err
	}
	return pack(pl.Requests[:n], groups, cfg), nil
}

// pack solves the maximum set packing over the enumerated groups.
func pack(reqs []fleet.Request, groups []Group, cfg PackConfig) PackResult {
	problem := setpack.Problem{N: len(reqs), Sets: make([][]int, len(groups))}
	for k, g := range groups {
		problem.Sets[k] = g.Members
	}
	rec := dtrace.Active()
	var chosen []int
	if cfg.ExactPacking {
		budget := cfg.ExactNodeBudget
		if budget <= 0 {
			budget = 200000
		}
		chosen, _ = setpack.Exact(problem, budget)
	} else {
		chosen = setpack.LocalSearchObserved(problem, packObserver(rec, reqs, groups))
	}

	res := PackResult{Groups: make([]Group, 0, len(chosen))}
	packed := make([]bool, len(reqs))
	packedReqs := 0
	for _, k := range chosen {
		res.Groups = append(res.Groups, groups[k])
		tracePick(rec, reqs, groups[k], cfg.Theta)
		for _, idx := range groups[k].Members {
			packed[idx] = true
			packedReqs++
		}
	}
	obsFeasibleGroups.Add(uint64(len(groups)))
	obsPackedGroups.Add(uint64(len(chosen)))
	obsPackedRequests.Add(uint64(packedReqs))
	for idx := range reqs {
		if !packed[idx] {
			res.Singles = append(res.Singles, idx)
		}
	}
	sort.Slice(res.Groups, func(a, b int) bool {
		return res.Groups[a].Members[0] < res.Groups[b].Members[0]
	})
	return res
}
