package share

import (
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/stable"
)

func TestPackConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     PackConfig
		wantErr bool
	}{
		{name: "defaults", cfg: DefaultPackConfig()},
		{name: "negative theta", cfg: PackConfig{Theta: -1, MaxGroupSize: 3}, wantErr: true},
		{name: "group too small", cfg: PackConfig{Theta: 1, MaxGroupSize: 1}, wantErr: true},
		{name: "group too big", cfg: PackConfig{Theta: 1, MaxGroupSize: 4}, wantErr: true},
		{name: "negative radius", cfg: PackConfig{Theta: 1, MaxGroupSize: 2, PairRadius: -3}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFeasibleGroupsRespectTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reqs := randomRequests(rng, 10)
	cfg := PackConfig{Theta: 2, MaxGroupSize: 3}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, cfg)
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	for _, g := range groups {
		if len(g.Members) < 2 || len(g.Members) > 3 {
			t.Fatalf("group size %d out of range", len(g.Members))
		}
		for gi, idx := range g.Members {
			solo := reqs[idx].TripDistance(geo.EuclidMetric)
			if d := g.Plan.Detour(gi, solo); d > cfg.Theta+1e-9 {
				t.Fatalf("group %v member %d detour %v exceeds theta", g.Members, idx, d)
			}
		}
	}
}

func TestFeasibleGroupsParallelRiders(t *testing.T) {
	// Two requests with identical itineraries must form a feasible pair
	// with zero detour.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 5}},
		{ID: 1, Pickup: geo.Point{X: 0, Y: 0.1}, Dropoff: geo.Point{X: 5, Y: 0.1}},
	}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 1, MaxGroupSize: 2})
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
}

func TestFeasibleGroupsOppositeRidersChain(t *testing.T) {
	// Opposite directions: the optimal shared route chains the two
	// trips back-to-back, so neither rider's ON-BOARD distance grows.
	// Under the paper's pure θ constraint (AllowChaining) the pair is
	// feasible; under the default savings requirement it is not, since
	// the chain saves no driving.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 10}},
		{ID: 1, Pickup: geo.Point{X: 10}, Dropoff: geo.Point{X: 0}},
	}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 0.5, MaxGroupSize: 2})
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	if len(groups) != 0 {
		t.Fatalf("got %d groups, want 0 (chains save nothing)", len(groups))
	}

	chained, err := FeasibleGroups(reqs, geo.EuclidMetric,
		PackConfig{Theta: 0.5, MaxGroupSize: 2, AllowChaining: true})
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	if len(chained) != 1 {
		t.Fatalf("got %d groups with AllowChaining, want 1 (zero detour)", len(chained))
	}
	// The chained rider waits the whole first trip before pickup.
	g := chained[0]
	if g.Plan.PickupOffset[0]+g.Plan.PickupOffset[1] < 10-1e-9 {
		t.Errorf("pickup offsets = %v; one rider must wait out the first trip", g.Plan.PickupOffset)
	}
}

func TestFeasibleGroupsDivergentDestinations(t *testing.T) {
	// Shared origin, divergent destinations: every stop order forces a
	// detour on someone, so a tight theta rejects the pair.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{}, Dropoff: geo.Point{X: 20}},
		{ID: 1, Pickup: geo.Point{}, Dropoff: geo.Point{Y: 3}},
	}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 0.5, MaxGroupSize: 2})
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	if len(groups) != 0 {
		t.Fatalf("got %d groups, want 0", len(groups))
	}
}

func TestPairRadiusPruningIsConsistent(t *testing.T) {
	// With a generous radius the pruned search must find the same
	// packing size as the exhaustive one.
	rng := rand.New(rand.NewSource(12))
	reqs := randomRequests(rng, 12)
	exhaustive, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 3, MaxGroupSize: 3})
	if err != nil {
		t.Fatalf("FeasibleGroups: %v", err)
	}
	pruned, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 3, MaxGroupSize: 3, PairRadius: 50})
	if err != nil {
		t.Fatalf("FeasibleGroups pruned: %v", err)
	}
	if len(exhaustive) != len(pruned) {
		t.Errorf("pruned search found %d groups, exhaustive %d (radius covers the city)",
			len(pruned), len(exhaustive))
	}
}

func TestPackPartitionsRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		reqs := randomRequests(rng, 3+rng.Intn(12))
		res, err := Pack(reqs, geo.EuclidMetric, PackConfig{Theta: 4, MaxGroupSize: 3})
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		seen := make(map[int]int)
		for _, g := range res.Groups {
			for _, idx := range g.Members {
				seen[idx]++
			}
		}
		for _, idx := range res.Singles {
			seen[idx]++
		}
		if len(seen) != len(reqs) {
			t.Fatalf("trial %d: %d requests accounted for, want %d", trial, len(seen), len(reqs))
		}
		for idx, count := range seen {
			if count != 1 {
				t.Fatalf("trial %d: request %d appears %d times", trial, idx, count)
			}
		}
	}
}

func TestPackInvalidConfig(t *testing.T) {
	if _, err := Pack(nil, geo.EuclidMetric, PackConfig{Theta: -1, MaxGroupSize: 2}); err == nil {
		t.Error("Pack accepted invalid config")
	}
}

func TestSingleUnitReducesToNonSharing(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 8}},
	}
	u := SingleUnit(0, reqs, geo.EuclidMetric)
	taxiPos := geo.Point{}
	lead := geo.Euclid(taxiPos, reqs[0].Pickup)

	// §V-A: with one member the sharing formulas reduce to the
	// non-sharing ones.
	pc := u.PassengerCost(lead, reqs, geo.EuclidMetric, 1)
	if math.Abs(pc-2) > 1e-12 {
		t.Errorf("PassengerCost = %v, want 2 = D(t, r^s)", pc)
	}
	tc := u.TaxiCost(lead, reqs, geo.EuclidMetric, 1)
	if math.Abs(tc-(2-6)) > 1e-12 {
		t.Errorf("TaxiCost = %v, want -4 = D - alpha*trip", tc)
	}
	diss := u.MemberDissatisfactions(taxiPos, reqs, geo.EuclidMetric, 1)
	if len(diss) != 1 || math.Abs(diss[0]-2) > 1e-12 {
		t.Errorf("MemberDissatisfactions = %v, want [2]", diss)
	}
}

func TestUnitsOrderedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	reqs := randomRequests(rng, 9)
	res, err := Pack(reqs, geo.EuclidMetric, PackConfig{Theta: 5, MaxGroupSize: 3})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	units := res.Units(reqs, geo.EuclidMetric)
	total := 0
	prevFirst := -1
	for _, u := range units {
		total += len(u.Members)
		if u.Members[0] <= prevFirst {
			t.Errorf("units not ordered by first member: %d after %d", u.Members[0], prevFirst)
		}
		prevFirst = u.Members[0]
	}
	if total != len(reqs) {
		t.Errorf("units cover %d requests, want %d", total, len(reqs))
	}
}

func TestUnitAssignmentValid(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 10, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 5}},
		{ID: 11, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 6}},
	}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 5, MaxGroupSize: 2})
	if err != nil || len(groups) != 1 {
		t.Fatalf("FeasibleGroups = %v, %v", groups, err)
	}
	u := Unit{Members: groups[0].Members, Plan: groups[0].Plan}
	a := u.Assignment(3, reqs)
	if err := a.Validate(); err != nil {
		t.Fatalf("Assignment invalid: %v", err)
	}
	if a.TaxiID != 3 || len(a.Requests) != 2 {
		t.Errorf("Assignment = %+v", a)
	}
}

func TestBuildMarketStableMatchable(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	reqs := randomRequests(rng, 8)
	taxis := make([]fleet.Taxi, 4)
	for i := range taxis {
		taxis[i] = fleet.Taxi{ID: i, Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}}
	}
	res, err := Pack(reqs, geo.EuclidMetric, PackConfig{Theta: 5, MaxGroupSize: 3})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	units := res.Units(reqs, geo.EuclidMetric)
	mk, err := BuildMarket(units, reqs, taxis, geo.EuclidMetric, pref.Unbounded())
	if err != nil {
		t.Fatalf("BuildMarket: %v", err)
	}
	if err := mk.Validate(); err != nil {
		t.Fatalf("market invalid: %v", err)
	}
	m := stable.PassengerOptimal(mk)
	if err := stable.IsStable(mk, m); err != nil {
		t.Fatalf("second-stage matching unstable: %v", err)
	}
}

func TestBuildMarketCapacity(t *testing.T) {
	// A group needing 3 seats cannot go to a 2-seat taxi.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 5}, Seats: 2},
		{ID: 1, Pickup: geo.Point{X: 0.5}, Dropoff: geo.Point{X: 5.5}, Seats: 1},
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{}, Seats: 2},
		{ID: 1, Pos: geo.Point{}, Seats: 4},
	}
	groups, err := FeasibleGroups(reqs, geo.EuclidMetric, PackConfig{Theta: 5, MaxGroupSize: 2})
	if err != nil || len(groups) != 1 {
		t.Fatalf("FeasibleGroups = %v, %v", groups, err)
	}
	units := []Unit{{Members: groups[0].Members, Plan: groups[0].Plan}}
	mk, err := BuildMarket(units, reqs, taxis, geo.EuclidMetric, pref.Unbounded())
	if err != nil {
		t.Fatalf("BuildMarket: %v", err)
	}
	if mk.ReqOK[0][0] || mk.TaxiOK[0][0] {
		t.Error("3-seat group acceptable to 2-seat taxi")
	}
	if !mk.ReqOK[0][1] || !mk.TaxiOK[1][0] {
		t.Error("3-seat group rejected by 4-seat taxi")
	}
}

func TestBuildMarketRejectsEmptyUnit(t *testing.T) {
	if _, err := BuildMarket([]Unit{{}}, nil, nil, geo.EuclidMetric, pref.Unbounded()); err == nil {
		t.Error("BuildMarket accepted an empty unit")
	}
}

func TestBuildMarketRejectsBadParams(t *testing.T) {
	if _, err := BuildMarket(nil, nil, nil, geo.EuclidMetric, pref.Params{Alpha: -1}); err == nil {
		t.Error("BuildMarket accepted invalid params")
	}
}

func TestPackExactNeverWorseThanApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		reqs := randomRequests(rng, 4+rng.Intn(10))
		approx, err := Pack(reqs, geo.EuclidMetric, PackConfig{Theta: 4, MaxGroupSize: 3})
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		exact, err := Pack(reqs, geo.EuclidMetric, PackConfig{
			Theta: 4, MaxGroupSize: 3, ExactPacking: true,
		})
		if err != nil {
			t.Fatalf("Pack exact: %v", err)
		}
		if len(exact.Groups) < len(approx.Groups) {
			t.Fatalf("trial %d: exact packed %d groups, approx %d",
				trial, len(exact.Groups), len(approx.Groups))
		}
		// Exact result must still be a partition.
		seen := make(map[int]int)
		for _, g := range exact.Groups {
			for _, idx := range g.Members {
				seen[idx]++
			}
		}
		for _, idx := range exact.Singles {
			seen[idx]++
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: request %d appears %d times", trial, idx, n)
			}
		}
	}
}
