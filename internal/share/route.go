// Package share implements the sharing taxi dispatch of §V: exhaustive
// shared-route planning (the general problem is NP-hard by Theorem 5, but
// groups have at most three requests, so at most 6!/2³ = 90 stop orders
// exist), feasible-group generation under the detour bound θ, the maximum
// set packing stage (Eqs. 1–3, via package setpack), and the refined
// interest models that turn packed groups into a pref.Market for
// Algorithm 1.
package share

import (
	"errors"
	"fmt"
	"math"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// MaxGroupSize is the largest shareable group the paper considers
// practical ("the number of passenger requests for a taxi sharing is
// usually no greater than three").
const MaxGroupSize = 3

// ErrNoRequests is returned when planning a route for an empty group.
var ErrNoRequests = errors.New("share: no requests to route")

// RoutePlan is the optimal shared route for a group of requests: the
// stop order minimising total travel distance subject to every pickup
// preceding its drop-off.
type RoutePlan struct {
	// Stops is the optimal stop sequence. The first stop is always a
	// pickup.
	Stops []fleet.Stop
	// Length is the distance along Stops, measured from the first stop
	// (the taxi-to-first-stop leg is not included; it is unknown until
	// a taxi is matched).
	Length float64
	// PickupOffset[g] is the distance along the route from the first
	// stop to member g's pickup. D_ck(t_i, r_j^s) is then the taxi's
	// lead-in distance plus this offset.
	PickupOffset []float64
	// OnBoard[g] is D_ck(r_j^s, r_j^d): the distance member g spends
	// on board, along the shared route.
	OnBoard []float64
	// MaxLoad is the maximum number of occupied seats at any point on
	// the route, used against taxi capacity.
	MaxLoad int
}

// Detour returns member g's extra on-board distance relative to riding
// alone: D_ck(r^s, r^d) − D(r^s, r^d).
func (p RoutePlan) Detour(g int, soloTrip float64) float64 {
	return p.OnBoard[g] - soloTrip
}

// BestRoute exhaustively searches all pickup-before-drop-off stop orders
// for the group and returns the shortest, as Algorithm 3 prescribes. The
// route starts at the first pickup of the winning order. Groups larger
// than MaxGroupSize are rejected — the search is factorial.
func BestRoute(reqs []fleet.Request, m geo.Metric) (RoutePlan, error) {
	return bestRoute(nil, reqs, m)
}

// BestRouteFrom is BestRoute with a known taxi start position: the leg
// from start to the first stop counts toward the route length, so orders
// are compared from the taxi's perspective. The carpool baselines (which
// pick a taxi before routing) use this variant.
func BestRouteFrom(start geo.Point, reqs []fleet.Request, m geo.Metric) (RoutePlan, error) {
	return bestRoute(&start, reqs, m)
}

func bestRoute(start *geo.Point, reqs []fleet.Request, m geo.Metric) (RoutePlan, error) {
	k := len(reqs)
	if k == 0 {
		return RoutePlan{}, ErrNoRequests
	}
	if k > MaxGroupSize {
		return RoutePlan{}, fmt.Errorf("share: group of %d exceeds the exhaustive-search limit %d", k, MaxGroupSize)
	}

	s := &routeSearch{
		reqs:    reqs,
		metric:  m,
		start:   start,
		order:   make([]fleet.Stop, 0, 2*k),
		picked:  make([]bool, k),
		dropped: make([]bool, k),
		best:    RoutePlan{Length: math.Inf(1)},
	}
	s.extend(0)
	if math.IsInf(s.best.Length, 1) {
		return RoutePlan{}, fmt.Errorf("share: no feasible stop order for %d requests", k)
	}
	return s.best, nil
}

// routeSearch enumerates stop orders depth-first with branch-and-bound on
// the accumulated distance.
type routeSearch struct {
	reqs    []fleet.Request
	metric  geo.Metric
	start   *geo.Point
	order   []fleet.Stop
	picked  []bool
	dropped []bool
	best    RoutePlan
}

func (s *routeSearch) extend(lengthSoFar float64) {
	if lengthSoFar >= s.best.Length {
		return // bound: already no better than the incumbent
	}
	if len(s.order) == 2*len(s.reqs) {
		s.record(lengthSoFar)
		return
	}
	for g := range s.reqs {
		if !s.picked[g] {
			s.visit(g, fleet.StopPickup, s.reqs[g].Pickup, lengthSoFar)
		} else if !s.dropped[g] {
			s.visit(g, fleet.StopDropoff, s.reqs[g].Dropoff, lengthSoFar)
		}
	}
}

func (s *routeSearch) visit(g int, kind fleet.StopKind, pos geo.Point, lengthSoFar float64) {
	leg := 0.0
	if len(s.order) == 0 {
		if s.start != nil {
			leg = s.metric.Distance(*s.start, pos)
		}
	} else {
		leg = s.metric.Distance(s.order[len(s.order)-1].Pos, pos)
	}
	s.order = append(s.order, fleet.Stop{RequestID: s.reqs[g].ID, Kind: kind, Pos: pos})
	if kind == fleet.StopPickup {
		s.picked[g] = true
	} else {
		s.dropped[g] = true
	}

	s.extend(lengthSoFar + leg)

	s.order = s.order[:len(s.order)-1]
	if kind == fleet.StopPickup {
		s.picked[g] = false
	} else {
		s.dropped[g] = false
	}
}

// record captures the current complete order as the incumbent best plan.
func (s *routeSearch) record(length float64) {
	plan := RoutePlan{
		Stops:        append([]fleet.Stop(nil), s.order...),
		Length:       length,
		PickupOffset: make([]float64, len(s.reqs)),
		OnBoard:      make([]float64, len(s.reqs)),
	}
	idByGroup := make(map[int]int, len(s.reqs))
	for g, r := range s.reqs {
		idByGroup[r.ID] = g
	}

	// Walk the route accumulating distance from the first stop; the
	// optional taxi lead-in is excluded from offsets by construction.
	dist := 0.0
	load, maxLoad := 0, 0
	var pickupAt = make([]float64, len(s.reqs))
	for i, stop := range plan.Stops {
		if i > 0 {
			dist += s.metric.Distance(plan.Stops[i-1].Pos, stop.Pos)
		}
		g := idByGroup[stop.RequestID]
		if stop.Kind == fleet.StopPickup {
			plan.PickupOffset[g] = dist
			pickupAt[g] = dist
			load += s.reqs[g].SeatCount()
			if load > maxLoad {
				maxLoad = load
			}
		} else {
			plan.OnBoard[g] = dist - pickupAt[g]
			load -= s.reqs[g].SeatCount()
		}
	}
	plan.MaxLoad = maxLoad
	s.best = plan
}
