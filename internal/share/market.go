package share

import (
	"fmt"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
)

// Unit is one dispatch unit of Algorithm 3's second stage: a packed
// group, or a single request that stayed unpacked. Each unit is
// "regarded as an independent request" and matched to a taxi by
// Algorithm 1 under the refined §V-A interest model.
type Unit struct {
	// Members are indices into the frame's request slice.
	Members []int
	// Plan is the unit's shared route (trivial for singles).
	Plan RoutePlan
}

// SingleUnit builds the trivial unit for request idx riding alone.
func SingleUnit(idx int, reqs []fleet.Request, m geo.Metric) Unit {
	return singleUnit(reqs[idx], idx, reqs[idx].TripDistance(m))
}

// SingleUnitPlane is SingleUnit reading the trip distance from a
// per-frame cost plane.
func SingleUnitPlane(idx int, pl *costplane.Plane) Unit {
	return singleUnit(pl.Requests[idx], idx, pl.Trip(idx))
}

func singleUnit(r fleet.Request, idx int, trip float64) Unit {
	return Unit{
		Members: []int{idx},
		Plan: RoutePlan{
			Stops: []fleet.Stop{
				{RequestID: r.ID, Kind: fleet.StopPickup, Pos: r.Pickup},
				{RequestID: r.ID, Kind: fleet.StopDropoff, Pos: r.Dropoff},
			},
			Length:       trip,
			PickupOffset: []float64{0},
			OnBoard:      []float64{trip},
			MaxLoad:      r.SeatCount(),
		},
	}
}

// Units flattens the packing result into dispatch units ordered by their
// first member index, which keeps the second-stage matching
// deterministic.
func (r PackResult) Units(reqs []fleet.Request, m geo.Metric) []Unit {
	return r.units(func(idx int) Unit { return SingleUnit(idx, reqs, m) })
}

// UnitsPlane is Units reading trip distances from a per-frame cost
// plane.
func (r PackResult) UnitsPlane(pl *costplane.Plane) []Unit {
	return r.units(func(idx int) Unit { return SingleUnitPlane(idx, pl) })
}

func (r PackResult) units(single func(idx int) Unit) []Unit {
	units := make([]Unit, 0, len(r.Groups)+len(r.Singles))
	for _, g := range r.Groups {
		units = append(units, Unit{Members: g.Members, Plan: g.Plan})
	}
	for _, idx := range r.Singles {
		units = append(units, single(idx))
	}
	// Insertion sort by first member keeps the common case (already
	// mostly ordered) cheap and avoids an import for one call.
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j].Members[0] < units[j-1].Members[0]; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
	return units
}

// Start returns the route's first stop position (the shared route's
// anchor; the taxi drives here first).
func (u Unit) Start() geo.Point {
	return u.Plan.Stops[0].Pos
}

// RequestIDs returns the fleet request IDs of the unit's members.
func (u Unit) RequestIDs(reqs []fleet.Request) []int {
	ids := make([]int, len(u.Members))
	for g, idx := range u.Members {
		ids[g] = reqs[idx].ID
	}
	return ids
}

// Assignment converts the unit into a dispatchable fleet.Assignment for
// the given taxi.
func (u Unit) Assignment(taxiID int, reqs []fleet.Request) fleet.Assignment {
	return fleet.Assignment{
		TaxiID:   taxiID,
		Requests: u.RequestIDs(reqs),
		Route:    append([]fleet.Stop(nil), u.Plan.Stops...),
	}
}

// PassengerCost returns the unit's preference value for a taxi with the
// given lead-in distance to the route start: the average over members of
// D_ck(t, r^s) + β·[D_ck(r^s, r^d) − D(r^s, r^d)]. Lower is better; for
// a single rider this reduces to D(t, r^s), the non-sharing value.
func (u Unit) PassengerCost(lead float64, reqs []fleet.Request, m geo.Metric, beta float64) float64 {
	return u.passengerCost(lead, func(idx int) float64 { return reqs[idx].TripDistance(m) }, beta)
}

func (u Unit) passengerCost(lead float64, solo func(idx int) float64, beta float64) float64 {
	total := 0.0
	for g, idx := range u.Members {
		total += lead + u.Plan.PickupOffset[g] + beta*u.Plan.Detour(g, solo(idx))
	}
	return total / float64(len(u.Members))
}

// TaxiCost returns the driver's preference value for serving the unit
// with the given lead-in distance: D_ck(t) − (α+1)·Σ D(r^s, r^d), where
// D_ck(t) is the total driving distance (lead-in plus route). For a
// single rider this reduces to D(t, r^s) − α·D(r^s, r^d).
func (u Unit) TaxiCost(lead float64, reqs []fleet.Request, m geo.Metric, alpha float64) float64 {
	return u.taxiCost(lead, func(idx int) float64 { return reqs[idx].TripDistance(m) }, alpha)
}

func (u Unit) taxiCost(lead float64, solo func(idx int) float64, alpha float64) float64 {
	totalTrip := 0.0
	for _, idx := range u.Members {
		totalTrip += solo(idx)
	}
	return lead + u.Plan.Length - (alpha+1)*totalTrip
}

// MemberDissatisfactions returns each member's passenger-dissatisfaction
// metric for a taxi dispatched from pos:
// D_ck(t, r^s) + β·[D_ck(r^s, r^d) − D(r^s, r^d)].
func (u Unit) MemberDissatisfactions(pos geo.Point, reqs []fleet.Request, m geo.Metric, beta float64) []float64 {
	lead := m.Distance(pos, u.Start())
	out := make([]float64, len(u.Members))
	for g, idx := range u.Members {
		solo := reqs[idx].TripDistance(m)
		out[g] = lead + u.Plan.PickupOffset[g] + beta*u.Plan.Detour(g, solo)
	}
	return out
}

// BuildMarket computes the second-stage matching market between units and
// taxis under the §V-A interest model. Acceptability mirrors the
// non-sharing dummies: a unit accepts taxis whose preference value stays
// within params.MaxPickup, a taxi accepts units within params.MaxNet, and
// both sides reject pairs the taxi lacks seats for.
func BuildMarket(units []Unit, reqs []fleet.Request, taxis []fleet.Taxi, m geo.Metric, params pref.Params) (*pref.Market, error) {
	starts := make([]geo.Point, len(units))
	for k, u := range units {
		if len(u.Members) == 0 || len(u.Plan.Stops) == 0 {
			return nil, fmt.Errorf("share: unit with no members or empty plan")
		}
		starts[k] = u.Start()
	}
	solo := func(idx int) float64 { return reqs[idx].TripDistance(m) }
	lead := func(i, k int) float64 { return m.Distance(taxis[i].Pos, starts[k]) }
	return buildMarket(units, taxis, params, solo, lead)
}

// BuildMarketPlane is BuildMarket reading every distance from a
// per-frame cost plane: the lead-in is the plane's taxi→pickup cell of
// the unit's first stop (always a member's pickup), and the unit
// constants use the plane's solo trips. A plane pruned at
// params.MaxPickup yields the same matching market: a pruned lead reads
// +Inf, and since the unit constants are non-negative under the
// triangle inequality, the true passenger cost also exceeds the
// threshold — the pair sits behind the dummy either way.
func BuildMarketPlane(units []Unit, taxis []fleet.Taxi, pl *costplane.Plane, params pref.Params) (*pref.Market, error) {
	startIdx := make([]int, len(units))
	for k, u := range units {
		if len(u.Members) == 0 || len(u.Plan.Stops) == 0 {
			return nil, fmt.Errorf("share: unit with no members or empty plan")
		}
		startIdx[k] = -1
		startID := u.Plan.Stops[0].RequestID
		for _, idx := range u.Members {
			if pl.Requests[idx].ID == startID {
				startIdx[k] = idx
				break
			}
		}
		if startIdx[k] < 0 {
			return nil, fmt.Errorf("share: unit %d starts at request %d, not a member", k, startID)
		}
	}
	lead := func(i, k int) float64 { return pl.PickupDist(i, startIdx[k]) }
	return buildMarket(units, taxis, params, pl.Trip, lead)
}

// buildMarket is the shared market core: solo returns a member's solo
// trip distance, lead the taxi→unit-start distance.
func buildMarket(units []Unit, taxis []fleet.Taxi, params pref.Params, solo func(idx int) float64, lead func(i, k int) float64) (*pref.Market, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	nu, nt := len(units), len(taxis)
	market := pref.MakeMarket(nu, nt)
	mk := &market
	// Both interest formulas decompose as lead-in distance plus a
	// taxi-independent unit constant, so precompute the constants once
	// per unit and spend exactly one distance lookup per (unit, taxi)
	// pair — this is the per-frame hot loop of the sharing dispatchers.
	consts := make([]float64, 2*nu)
	passengerConst, taxiConst := consts[:nu:nu], consts[nu:]
	for k, u := range units {
		passengerConst[k] = u.passengerCost(0, solo, params.Beta)
		taxiConst[k] = u.taxiCost(0, solo, params.Alpha)
	}
	for i, taxi := range taxis {
		for k, u := range units {
			l := lead(i, k)
			pc := l + passengerConst[k]
			tc := l + taxiConst[k]
			seatsOK := taxi.Capacity() >= u.Plan.MaxLoad

			mk.ReqCost[k][i] = pc
			mk.TaxiCost[i][k] = tc
			mk.ReqOK[k][i] = seatsOK && pc <= params.MaxPickup
			mk.TaxiOK[i][k] = seatsOK && tc <= params.MaxNet
		}
	}
	return mk, nil
}
