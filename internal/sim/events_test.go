package sim

import (
	"bytes"
	"strings"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

func TestEventLifecycle(t *testing.T) {
	reqs := []fleet.Request{{
		ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}, Frame: 0,
	}}
	var events []Event
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Events = EventSinkFunc(func(e Event) { events = append(events, e) })
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantKinds := []EventKind{EventRequest, EventAssign, EventPickup, EventDropoff}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(wantKinds))
	}
	prevFrame := -1
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.RequestID != 1 {
			t.Errorf("event %d request = %d", i, e.RequestID)
		}
		if e.Frame < prevFrame {
			t.Errorf("events out of order: %v", events)
		}
		prevFrame = e.Frame
	}
	if events[0].TaxiID != -1 || events[1].TaxiID != 0 {
		t.Errorf("taxi IDs = %d, %d", events[0].TaxiID, events[1].TaxiID)
	}
	if events[3].Pos != (geo.Point{X: 5}) {
		t.Errorf("dropoff pos = %v", events[3].Pos)
	}
}

func TestEventAbandon(t *testing.T) {
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	var events []Event
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 2
	cfg.DrainFrames = 10
	cfg.Events = EventSinkFunc(func(e Event) { events = append(events, e) })
	s, err := New(cfg, nil /* no taxis */, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) != 2 || events[1].Kind != EventAbandon {
		t.Fatalf("events = %v, want request then abandon", events)
	}
	if events[1].Frame != 2 {
		t.Errorf("abandon frame = %d, want 2", events[1].Frame)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []Event{
		{Frame: 0, Kind: EventRequest, RequestID: 1, TaxiID: -1, Pos: geo.Point{X: 1}},
		{Frame: 3, Kind: EventAssign, RequestID: 1, TaxiID: 7, Pos: geo.Point{X: 1}},
	}
	for _, e := range want {
		sink.Record(e)
	}
	if sink.Err() != nil {
		t.Fatalf("sink error: %v", sink.Err())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip %d -> %d events", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failingWriter{})
	sink.Record(Event{Kind: EventRequest})
	if sink.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Later records must not panic or clear the error.
	sink.Record(Event{Kind: EventAssign})
	if sink.Err() == nil {
		t.Fatal("error cleared")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Error("accepted broken JSONL")
	}
}

func TestFullSimulationEventStream(t *testing.T) {
	// Every served request must produce exactly request, assign,
	// pickup, dropoff; abandoned ones request + abandon.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 3}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 4}, Frame: 1},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Events = sink
	s, err := New(cfg, []fleet.Taxi{{ID: 0}, {ID: 1, Pos: geo.Point{X: 1}}}, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	perKind := make(map[EventKind]int)
	for _, e := range events {
		perKind[e.Kind]++
	}
	served := rep.ServedCount()
	if perKind[EventRequest] != 2 || perKind[EventAssign] != served ||
		perKind[EventPickup] != served || perKind[EventDropoff] != served {
		t.Errorf("event counts = %v for %d served", perKind, served)
	}
}

func TestRunSurfacesEventSinkError(t *testing.T) {
	reqs := []fleet.Request{{
		ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}, Frame: 0,
	}}
	sink := NewJSONLSink(failingWriter{})
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Events = sink
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.EventSinkErr == nil {
		t.Fatal("Report.EventSinkErr = nil, want the sink's sticky error")
	}
	if !strings.Contains(rep.EventSinkErr.Error(), "disk full") {
		t.Errorf("EventSinkErr = %v, want the underlying write error", rep.EventSinkErr)
	}
	// A healthy sink reports no error.
	var buf bytes.Buffer
	cfg.Events = NewJSONLSink(&buf)
	s2, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep2, err := s2.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep2.EventSinkErr != nil {
		t.Errorf("healthy sink EventSinkErr = %v, want nil", rep2.EventSinkErr)
	}
}

// TestMultiSink pins the fan-out order, nil-skipping, and the collapse
// to nil/single-sink fast paths.
func TestMultiSink(t *testing.T) {
	var order []string
	a := EventSinkFunc(func(Event) { order = append(order, "a") })
	b := EventSinkFunc(func(Event) { order = append(order, "b") })
	m := MultiSink(nil, a, nil, b)
	m.Record(Event{})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("fan-out order = %v, want [a b]", order)
	}
	if MultiSink(nil, nil) != nil {
		t.Error("MultiSink of nils != nil")
	}
	if got := MultiSink(nil, a); got == nil {
		t.Error("MultiSink collapsed a live sink to nil")
	} else {
		order = order[:0]
		got.Record(Event{})
		if len(order) != 1 || order[0] != "a" {
			t.Errorf("single-sink collapse recorded %v", order)
		}
	}
}
