package sim

// RequestOutcome records one request's trip through the system.
type RequestOutcome struct {
	ID           int
	ArrivalFrame int
	// AssignFrame is the frame a taxi was dispatched, or -1 if never.
	AssignFrame int
	// PickupFrame is the frame the passenger boarded, or -1.
	PickupFrame int
	// DropoffFrame is the frame the passenger alighted, or -1.
	DropoffFrame int
	// TaxiID is the serving taxi, or -1.
	TaxiID int
	// PassengerDiss is the paper's passenger-dissatisfaction metric,
	// recorded at assignment time (km).
	PassengerDiss float64
	// Served reports whether the request was ever assigned a taxi.
	Served bool
	// Abandoned reports whether the passenger gave up waiting (the
	// simulator's patience bound expired before any dispatch).
	Abandoned bool
	// Cancelled reports whether the request was withdrawn before pickup
	// (by the passenger, via the cancellation API, or by an injected
	// fault).
	Cancelled bool
	// Rescued reports whether the rider was orphaned by a mid-route
	// breakdown and re-injected as a rescue request.
	Rescued bool
	// Requeues counts how many times the request re-entered the pending
	// queue after a revoked assignment or a rescue.
	Requeues int
}

// DispatchDelay returns the paper's dispatch-delay metric in frames
// (minutes), and false for unserved requests.
func (o RequestOutcome) DispatchDelay() (float64, bool) {
	if !o.Served {
		return 0, false
	}
	return float64(o.AssignFrame - o.ArrivalFrame), true
}

// EpisodeOutcome records one taxi busy period (idle → busy → idle) and
// its taxi-dissatisfaction metric.
type EpisodeOutcome struct {
	TaxiID     int
	StartFrame int
	EndFrame   int
	// Requests is how many requests the episode served.
	Requests int
	// Dissatisfaction is D_ck(t) − (α+1)·Σ D(r^s, r^d) (km); for a
	// solo ride it equals D(t, r^s) − α·D(r^s, r^d).
	Dissatisfaction float64
}

// Report is the outcome of a simulation run.
type Report struct {
	Algorithm   string
	Frames      int
	Requests    []RequestOutcome
	Episodes    []EpisodeOutcome
	Assignments []AssignmentOutcome
	// EventSinkErr is the sticky error of the configured event sink, if
	// the sink exposes Err() error (JSONLSink does) and it failed
	// mid-run. The simulation itself still completed; only the emitted
	// event stream is incomplete.
	EventSinkErr error
}

// DispatchDelays returns the delay (minutes) of every served request.
func (r *Report) DispatchDelays() []float64 {
	var out []float64
	for _, o := range r.Requests {
		if d, ok := o.DispatchDelay(); ok {
			out = append(out, d)
		}
	}
	return out
}

// PassengerDissatisfactions returns the passenger metric of every served
// request (km).
func (r *Report) PassengerDissatisfactions() []float64 {
	var out []float64
	for _, o := range r.Requests {
		if o.Served {
			out = append(out, o.PassengerDiss)
		}
	}
	return out
}

// TaxiDissatisfactions returns the taxi metric of every dispatch
// decision (km), per the paper's §IV-A/§V-A formulas.
func (r *Report) TaxiDissatisfactions() []float64 {
	var out []float64
	for _, a := range r.Assignments {
		out = append(out, a.Dissatisfaction)
	}
	return out
}

// ServedCount returns how many requests were assigned a taxi.
func (r *Report) ServedCount() int {
	n := 0
	for _, o := range r.Requests {
		if o.Served {
			n++
		}
	}
	return n
}

// UnservedCount returns how many requests never got a taxi.
func (r *Report) UnservedCount() int {
	return len(r.Requests) - r.ServedCount()
}

// AbandonedCount returns how many passengers gave up waiting.
func (r *Report) AbandonedCount() int {
	n := 0
	for _, o := range r.Requests {
		if o.Abandoned {
			n++
		}
	}
	return n
}

// CancelledCount returns how many requests were withdrawn before
// pickup.
func (r *Report) CancelledCount() int {
	n := 0
	for _, o := range r.Requests {
		if o.Cancelled {
			n++
		}
	}
	return n
}

// RescuedCount returns how many riders were orphaned by a breakdown and
// re-injected as rescue requests.
func (r *Report) RescuedCount() int {
	n := 0
	for _, o := range r.Requests {
		if o.Rescued {
			n++
		}
	}
	return n
}

// RequeueCount returns the total number of re-dispatch attempts across
// all requests (requeues after driver cancellations and rescues).
func (r *Report) RequeueCount() int {
	n := 0
	for _, o := range r.Requests {
		n += o.Requeues
	}
	return n
}

// SharedRideCount returns how many episodes carried more than one
// request.
func (r *Report) SharedRideCount() int {
	n := 0
	for _, e := range r.Episodes {
		if e.Requests > 1 {
			n++
		}
	}
	return n
}

// AssignmentOutcome records one dispatch decision and its
// taxi-dissatisfaction metric.
type AssignmentOutcome struct {
	TaxiID int
	Frame  int
	// Requests is how many new requests this decision assigned.
	Requests int
	// Shared reports whether the taxi carries more than one request
	// after this decision.
	Shared bool
	// Dissatisfaction is the added driving minus (α+1)·added trips
	// (km): D(t, r^s) − α·D(r^s, r^d) for a solo dispatch from idle,
	// D_ck(t) − (α+1)·Σ D(r^s, r^d) for a shared group, the marginal
	// equivalent for an insertion into a busy taxi.
	Dissatisfaction float64
}
