// Package sim is the discrete-time fleet simulator the paper's
// evaluation runs on: time is cut into one-minute frames, idle taxis are
// dispatched to the pending passenger requests of the current frame by a
// pluggable Dispatcher, and taxis drive their routes at a fixed speed
// (20 km/h in the paper, following [24]).
//
// The engine records the paper's three evaluation metrics as it runs:
// dispatch delay (frames from request arrival to assignment), passenger
// dissatisfaction, and taxi dissatisfaction, using the §IV-A/§V-A
// formulas uniformly for every dispatcher.
package sim

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/tseries"
)

// Dispatcher produces assignments for one frame. Implementations live in
// internal/dispatch (the paper's algorithms and non-sharing baselines)
// and internal/carpool (sharing baselines).
type Dispatcher interface {
	// Name identifies the algorithm in reports ("NSTD-P", "Greedy", …).
	Name() string
	// Dispatch inspects the frame and returns the assignments to apply.
	// Returning a request or taxi not present in the frame is an error.
	Dispatch(f *Frame) ([]fleet.Assignment, error)
}

// Frame is the dispatcher's read-only view of one time step.
type Frame struct {
	// Number is the current frame index (minutes since simulation
	// start).
	Number int
	// Requests are the pending, unassigned requests in arrival order.
	Requests []fleet.Request
	// Taxis holds the runtime state of every taxi in the fleet.
	Taxis []TaxiView
	// Metric measures travel distances.
	Metric geo.Metric
	// Params are the interest-model coefficients in force.
	Params pref.Params
	// Workers bounds the cost-plane construction pool; ≤ 0 means
	// runtime.GOMAXPROCS(0). Assignments are bit-identical for every
	// value.
	Workers int

	// planes memoises cost planes by content key, so a frame visited by
	// several consumers (a resilient primary and its fallback, or the
	// preference build and a baseline's cost matrix) computes each
	// distance at most once. A frame sees at most a couple of distinct
	// configurations, so a tiny linear list beats a map here. Guarded by
	// planeMu: dispatch.Resilient may run its fallback while a timed-out
	// primary still holds the frame.
	planeMu sync.Mutex
	planes  []framePlane
}

// framePlane is one memoised (configuration, plane) pair of a frame.
type framePlane struct {
	key costplane.Key
	pl  *costplane.Plane
}

// CostPlane returns the frame's distance plane for the given
// configuration, building it on first use and memoising it by
// cfg.Key(). taxis must be the frame's idle fleet (every dispatcher
// derives the same slice from the frame, so concurrent callers agree).
// A memoised hit counts the plane's cells as reused.
func (f *Frame) CostPlane(taxis []fleet.Taxi, cfg costplane.Config) *costplane.Plane {
	if cfg.Workers == 0 {
		cfg.Workers = f.Workers
	}
	key := cfg.Key()
	f.planeMu.Lock()
	defer f.planeMu.Unlock()
	for _, e := range f.planes {
		if e.key == key {
			e.pl.MarkReuse()
			return e.pl
		}
	}
	pl := costplane.Build(f.Requests, taxis, f.Metric, cfg)
	f.planes = append(f.planes, framePlane{key: key, pl: pl})
	return pl
}

// IdleTaxis returns the idle subset of the fleet, preserving order.
func (f *Frame) IdleTaxis() []TaxiView {
	var idle []TaxiView
	for _, t := range f.Taxis {
		if t.Idle {
			idle = append(idle, t)
		}
	}
	return idle
}

// TaxiView is the dispatcher-visible state of one taxi.
type TaxiView struct {
	ID    int
	Pos   geo.Point
	Seats int
	Idle  bool
	// Load is the number of seats currently occupied.
	Load int
	// Offline reports an injected outage: the taxi accepts no new
	// assignments this frame. Offline taxis are never Idle.
	Offline bool
	// Route is a copy of the taxi's remaining stop sequence.
	Route []fleet.Stop
	// Onboard lists request IDs currently riding.
	Onboard []int
	// Assigned lists request IDs assigned but not yet picked up.
	Assigned []int
	// SeatsByRequest maps every request on the route (onboard or
	// assigned) to its seat count, so dispatchers can compute load
	// profiles for insertions.
	SeatsByRequest map[int]int
}

// Capacity returns the taxi's seat capacity (default 4).
func (v TaxiView) Capacity() int {
	if v.Seats < 1 {
		return 4
	}
	return v.Seats
}

// Config parameterises a simulation run.
type Config struct {
	// Metric measures all distances. Defaults to geo.EuclidMetric.
	Metric geo.Metric
	// SpeedKmH is the taxi cruising speed; the paper uses 20 km/h.
	SpeedKmH float64
	// FrameMinutes is the batching interval; the paper uses 1 minute.
	FrameMinutes float64
	// Params are the interest-model coefficients used for metric
	// reporting (and by dispatchers that read them off the frame).
	Params pref.Params
	// Dispatcher decides the assignments.
	Dispatcher Dispatcher
	// DrainFrames bounds how long the engine keeps running after the
	// last request arrives, waiting for pending requests and routes to
	// finish. Defaults to 240 frames.
	DrainFrames int
	// PatienceFrames, when positive, is how long a passenger waits for
	// a dispatch before abandoning the request. Zero means passengers
	// wait forever (the paper's setting); the experiment harness uses a
	// finite patience both as a realistic churn model and to bound the
	// pending queue when stable dispatchers refuse unservable requests.
	PatienceFrames int
	// Outages injects taxi failures: during an outage window the taxi
	// accepts no new work (a busy taxi still finishes its current
	// route — the driver completes the fare, then goes dark).
	Outages []Outage
	// Events, when non-nil, receives every lifecycle event (request,
	// assign, pickup, dropoff, abandon, cancel, breakdown, requeue,
	// rescue) as it happens.
	Events EventSink
	// Faults, when non-nil, injects unscheduled churn — passenger
	// cancellations, driver cancellations, mid-route breakdowns — into
	// the run. internal/fault provides a seeded deterministic
	// implementation.
	Faults FaultInjector
	// KPI, when non-nil, receives one fixed-width sample per frame with
	// the paper's §VI quantities and the frame's runtime cost; see
	// internal/tseries. Nil disables per-frame recording entirely (the
	// frame loop then pays nothing for it).
	KPI *tseries.Recorder
	// SLO, when non-nil, evaluates each frame's KPI sample against the
	// engine's objectives (breach transitions fire the flight
	// recorder). Requires KPI: without a recorder there is no sample to
	// evaluate, so a nil KPI leaves the engine untouched.
	SLO *slo.Engine
	// Workers bounds the per-frame cost-plane worker pool; ≤ 0 means
	// runtime.GOMAXPROCS(0). Purely a throughput knob: simulation
	// output is bit-identical for every value.
	Workers int
}

// Outage takes one taxi out of service for the frame interval
// [From, To).
type Outage struct {
	TaxiID int
	From   int
	To     int
}

func (c *Config) applyDefaults() {
	if c.Metric == nil {
		c.Metric = geo.EuclidMetric
	}
	if c.SpeedKmH <= 0 {
		c.SpeedKmH = 20
	}
	if c.FrameMinutes <= 0 {
		c.FrameMinutes = 1
	}
	if c.DrainFrames <= 0 {
		c.DrainFrames = 240
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dispatcher == nil {
		return fmt.Errorf("sim: config requires a dispatcher")
	}
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, o := range c.Outages {
		if o.From >= o.To {
			return fmt.Errorf("sim: outage for taxi %d has empty window [%d,%d)", o.TaxiID, o.From, o.To)
		}
	}
	return nil
}

// taxiState is the engine-internal mutable state of one taxi.
type taxiState struct {
	taxi    fleet.Taxi
	pos     geo.Point
	route   []fleet.Stop
	onboard map[int]bool
	pending map[int]bool // assigned, not yet picked up

	// Episode bookkeeping: an episode spans idle→busy→idle and carries
	// the taxi-dissatisfaction metric.
	episodeActive  bool
	episodeStart   int
	episodeDriven  float64 // distance driven since the episode began
	episodeTripSum float64 // Σ solo trip distances of episode requests
	episodeReqs    []int
}

func (t *taxiState) idle() bool { return len(t.route) == 0 }

func (t *taxiState) load(reqs map[int]*requestState) int {
	load := 0
	for id := range t.onboard {
		load += reqs[id].req.SeatCount()
	}
	return load
}

// requestState tracks one request through its lifecycle.
type requestState struct {
	req           fleet.Request
	assignFrame   int
	pickupFrame   int
	dropoffFrame  int
	taxiID        int
	passengerDiss float64
	assigned      bool
	pickedUp      bool
	done          bool
	abandoned     bool
	released      bool // entered the pending queue
	cancelled     bool // withdrawn by passenger or failed terminally
	rescued       bool // orphaned by a breakdown and re-injected
	requeues      int  // times the request re-entered the queue
	// waitSince is the frame the patience clock last (re)started:
	// arrival, or the latest requeue/rescue.
	waitSince int
}

func newRequestState(r fleet.Request) *requestState {
	return &requestState{
		req:          r,
		assignFrame:  -1,
		pickupFrame:  -1,
		dropoffFrame: -1,
		taxiID:       -1,
		waitSince:    r.Frame,
	}
}

// Simulator runs a trace of requests against a fleet.
type Simulator struct {
	cfg     Config
	frame   int
	arrival []fleet.Request // all requests sorted by arrival frame
	nextArr int             // index of the next unreleased arrival
	pending []int           // request IDs awaiting assignment
	reqs    map[int]*requestState
	taxis   []*taxiState
	byID    map[int]*taxiState

	assignments []AssignmentOutcome
	episodes    []EpisodeOutcome

	// kpi holds the running per-frame KPI aggregates; only updated when
	// cfg.KPI is configured.
	kpi kpiState

	// Fault machinery: scheduled cancellations keyed by due frame, and
	// the outage book (configured + dynamically injected) maintained as
	// an O(1) active set per frame.
	cancelDue    map[int][]int             // frame → passenger cancels due
	driverDue    map[int][]driverCancelDue // frame → driver cancels due
	outageStart  map[int][]Outage          // frame → outages opening then
	activeOutage map[int]int               // taxiID → outage end (exclusive)
}

// New builds a simulator over the given fleet and request trace. Request
// IDs must be unique; taxi IDs must be unique.
func New(cfg Config, taxis []fleet.Taxi, requests []fleet.Request) (*Simulator, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:          cfg,
		reqs:         make(map[int]*requestState, len(requests)),
		byID:         make(map[int]*taxiState, len(taxis)),
		cancelDue:    make(map[int][]int),
		driverDue:    make(map[int][]driverCancelDue),
		outageStart:  make(map[int][]Outage),
		activeOutage: make(map[int]int),
	}
	s.arrival = append(s.arrival, requests...)
	sort.SliceStable(s.arrival, func(a, b int) bool {
		return s.arrival[a].Frame < s.arrival[b].Frame
	})
	for _, r := range s.arrival {
		if _, dup := s.reqs[r.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate request ID %d", r.ID)
		}
		s.reqs[r.ID] = newRequestState(r)
	}
	for _, t := range taxis {
		if _, dup := s.byID[t.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate taxi ID %d", t.ID)
		}
		st := &taxiState{
			taxi:    t,
			pos:     t.Pos,
			onboard: make(map[int]bool),
			pending: make(map[int]bool),
		}
		s.taxis = append(s.taxis, st)
		s.byID[t.ID] = st
	}
	for _, o := range cfg.Outages {
		if _, ok := s.byID[o.TaxiID]; !ok {
			return nil, fmt.Errorf("sim: outage names unknown taxi %d", o.TaxiID)
		}
		start := max(o.From, 0)
		if o.To <= start {
			continue
		}
		s.outageStart[start] = append(s.outageStart[start], o)
	}
	s.refreshOutages()
	return s, nil
}

// Frame returns the current frame number.
func (s *Simulator) Frame() int { return s.frame }

// Inject adds a request to a running simulation; the dispatch daemon
// uses this to feed live requests in. Requests dated before the current
// frame are released immediately. The ID must be new.
func (s *Simulator) Inject(r fleet.Request) error {
	if _, dup := s.reqs[r.ID]; dup {
		return fmt.Errorf("sim: duplicate request ID %d", r.ID)
	}
	if r.Frame < s.frame {
		r.Frame = s.frame
	}
	s.reqs[r.ID] = newRequestState(r)
	// Keep the unreleased tail of the arrival stream sorted.
	pos := s.nextArr
	for pos < len(s.arrival) && s.arrival[pos].Frame <= r.Frame {
		pos++
	}
	s.arrival = append(s.arrival, fleet.Request{})
	copy(s.arrival[pos+1:], s.arrival[pos:])
	s.arrival[pos] = r
	return nil
}

// Snapshot builds a report of everything observed so far without ending
// the run. Episodes still in progress are not included.
func (s *Simulator) Snapshot() *Report { return s.buildReport() }

// TaxiViews returns the current dispatcher-visible state of the fleet.
func (s *Simulator) TaxiViews() []TaxiView { return s.view().Taxis }

// Done reports whether the simulation has nothing left to do: all
// arrivals released, no pending requests, and all taxis idle.
func (s *Simulator) Done() bool {
	if s.nextArr < len(s.arrival) || len(s.pending) > 0 {
		return false
	}
	for _, t := range s.taxis {
		if !t.idle() {
			return false
		}
	}
	return true
}

// Step advances the simulation one frame: refresh the outage set,
// release arrivals, apply injected faults, expire impatient requests,
// dispatch, then move taxis. Faults run before dispatch so the
// dispatcher always sees the post-fault world and never assigns a
// just-broken taxi. With a KPI recorder configured, the frame's
// wall-clock cost and allocation count bracket the whole step and the
// finished frame is appended to the ring.
func (s *Simulator) Step() error {
	rec := s.cfg.KPI
	ld := prof.Active()
	if rec == nil && ld == nil {
		return s.step()
	}
	frame := s.frame
	allocs0 := s.kpi.readAllocs()
	if ld != nil {
		ld.BeginFrame(int64(frame))
	}
	start := time.Now()
	if err := s.step(); err != nil {
		return err
	}
	wall := time.Since(start)
	allocs := s.kpi.readAllocs() - allocs0
	if rec != nil {
		sample := s.recordKPI(rec, frame, wall, allocs)
		s.watchFrame(sample)
	}
	if ld != nil {
		// Sealed after the KPI sample is recorded and watched, so an
		// overrun capture's flight-recorder bundle already holds the
		// overrun frame itself. The wall/allocs handed to the ledger are
		// the exact values recorded as the sample's FrameNs/Allocs.
		ld.EndFrame(int64(frame), wall.Nanoseconds(), int64(allocs))
	}
	return nil
}

// step is the uninstrumented frame advance.
func (s *Simulator) step() error {
	if rec := dtrace.Active(); rec != nil {
		rec.SetFrame(s.frame)
	}
	s.refreshOutages()
	s.releaseArrivals()
	s.applyFaults()
	s.expireImpatient()
	tm := obs.StartTimer(obsDispatchSeconds)
	err := s.dispatch()
	tm.ObserveDuration()
	if err != nil {
		return err
	}
	obsPendingDepth.Set(float64(len(s.pending)))
	s.moveTaxis()
	s.frame++
	obsFrames.Inc()
	return nil
}

// offline reports whether the taxi has an active injected outage (from
// the configuration, a chaos injection, or a breakdown repair window).
func (s *Simulator) offline(taxiID int) bool {
	to, ok := s.activeOutage[taxiID]
	return ok && s.frame < to
}

// expireImpatient drops pending requests older than the patience bound.
func (s *Simulator) expireImpatient() {
	if s.cfg.PatienceFrames <= 0 {
		return
	}
	kept := s.pending[:0]
	for _, id := range s.pending {
		rs := s.reqs[id]
		if s.frame-rs.waitSince >= s.cfg.PatienceFrames {
			rs.abandoned = true
			obsExpired.Inc()
			if s.cfg.KPI != nil {
				s.kpi.expired++
			}
			s.emit(Event{Frame: s.frame, Kind: EventAbandon, RequestID: id, TaxiID: -1, Pos: rs.req.Pickup})
			continue
		}
		kept = append(kept, id)
	}
	s.pending = kept
	obsPendingDepth.Set(float64(len(s.pending)))
}

// Run steps the simulation until done (plus the drain bound) and returns
// the report. Requests still pending when the drain budget runs out are
// reported as unserved.
func (s *Simulator) Run() (*Report, error) {
	lastArrival := 0
	if n := len(s.arrival); n > 0 {
		lastArrival = s.arrival[n-1].Frame
	}
	deadline := lastArrival + s.cfg.DrainFrames
	for !s.Done() && s.frame <= deadline {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	for _, id := range s.pending {
		s.reqs[id].abandoned = true
	}
	// Close any still-open episodes at the deadline.
	for _, t := range s.taxis {
		if t.episodeActive {
			s.closeEpisode(t)
		}
	}
	rep := s.buildReport()
	// A sticky event-sink failure must not pass silently: the replay
	// stream is incomplete even though the run itself succeeded.
	if rep.EventSinkErr != nil {
		slog.Warn("sim: event sink failed, replay stream incomplete",
			"dispatcher", s.cfg.Dispatcher.Name(), "err", rep.EventSinkErr)
	}
	return rep, nil
}

func (s *Simulator) releaseArrivals() {
	for s.nextArr < len(s.arrival) && s.arrival[s.nextArr].Frame <= s.frame {
		r := s.arrival[s.nextArr]
		s.nextArr++
		rs := s.reqs[r.ID]
		rs.released = true
		// A request cancelled before release (CancelRequest on a
		// future-dated injection) never enters the queue.
		if rs.cancelled {
			continue
		}
		s.pending = append(s.pending, r.ID)
		s.emit(Event{Frame: s.frame, Kind: EventRequest, RequestID: r.ID, TaxiID: -1, Pos: r.Pickup})
		s.scheduleFaultsOnArrival(r.ID)
	}
}

func (s *Simulator) view() *Frame {
	f := &Frame{
		Number:  s.frame,
		Metric:  s.cfg.Metric,
		Params:  s.cfg.Params,
		Workers: s.cfg.Workers,
	}
	for _, id := range s.pending {
		f.Requests = append(f.Requests, s.reqs[id].req)
	}
	for _, t := range s.taxis {
		offline := s.offline(t.taxi.ID)
		v := TaxiView{
			ID:      t.taxi.ID,
			Pos:     t.pos,
			Seats:   t.taxi.Seats,
			Idle:    t.idle() && !offline,
			Offline: offline,
			Load:    t.load(s.reqs),
			Route:   append([]fleet.Stop(nil), t.route...),
		}
		v.SeatsByRequest = make(map[int]int, len(t.onboard)+len(t.pending))
		for id := range t.onboard {
			v.Onboard = append(v.Onboard, id)
			v.SeatsByRequest[id] = s.reqs[id].req.SeatCount()
		}
		for id := range t.pending {
			v.Assigned = append(v.Assigned, id)
			v.SeatsByRequest[id] = s.reqs[id].req.SeatCount()
		}
		sort.Ints(v.Onboard)
		sort.Ints(v.Assigned)
		f.Taxis = append(f.Taxis, v)
	}
	return f
}

func (s *Simulator) dispatch() error {
	if len(s.pending) == 0 {
		if rec := dtrace.Active(); rec != nil {
			rec.PutCertificate(dtrace.Trivial(s.frame, 0, len(s.taxis), "no pending requests: nothing to match, vacuously stable"))
		}
		return nil
	}
	frame := s.view()
	assignments, err := s.cfg.Dispatcher.Dispatch(frame)
	if err != nil {
		return fmt.Errorf("sim: dispatcher %s frame %d: %w", s.cfg.Dispatcher.Name(), s.frame, err)
	}
	// Frame commit: install the assignments, then audit the realized
	// matching for stability while the pre-dispatch view is still in
	// hand. The commit stage closes the pipeline in the stage ledger.
	tm := obs.StartTimer(obsCommitSeconds)
	sp := prof.Begin(prof.StageCommit)
	seenTaxi := make(map[int]bool, len(assignments))
	for _, a := range assignments {
		if err := s.apply(a, seenTaxi); err != nil {
			tm.ObserveDuration()
			sp.End()
			return fmt.Errorf("sim: dispatcher %s frame %d: %w", s.cfg.Dispatcher.Name(), s.frame, err)
		}
	}
	if rec := dtrace.Active(); rec != nil {
		s.certifyFrame(rec, frame, assignments)
	}
	tm.ObserveDuration()
	sp.End()
	return nil
}

// apply validates and installs one assignment.
func (s *Simulator) apply(a fleet.Assignment, seenTaxi map[int]bool) error {
	t, ok := s.byID[a.TaxiID]
	if !ok {
		return fmt.Errorf("assignment names unknown taxi %d", a.TaxiID)
	}
	if s.offline(a.TaxiID) {
		return fmt.Errorf("taxi %d is offline (injected outage)", a.TaxiID)
	}
	if seenTaxi[a.TaxiID] {
		return fmt.Errorf("taxi %d assigned twice in one frame", a.TaxiID)
	}
	seenTaxi[a.TaxiID] = true
	if len(a.Requests) == 0 {
		return fmt.Errorf("taxi %d assignment has no requests", a.TaxiID)
	}

	// Every named request must be pending.
	newReqs := make([]*requestState, 0, len(a.Requests))
	for _, id := range a.Requests {
		rs, ok := s.reqs[id]
		if !ok {
			return fmt.Errorf("assignment names unknown request %d", id)
		}
		if rs.assigned || rs.done || rs.abandoned || rs.cancelled {
			return fmt.Errorf("request %d is not pending", id)
		}
		newReqs = append(newReqs, rs)
	}
	if err := s.checkRoute(t, a); err != nil {
		return err
	}

	// Taxi dissatisfaction, recorded per dispatch decision: the added
	// driving minus (α+1) times the added paid trips. For a dispatch
	// from idle this is exactly the paper's formulas — D(t, r^s) −
	// α·D(r^s, r^d) for a solo ride, D_ck(t) − (α+1)·Σ D(r^s, r^d) for
	// a shared group; for an insertion into a busy taxi it is the
	// marginal equivalent.
	oldLen := fleet.RouteLength(t.pos, t.route, s.cfg.Metric)
	newLen := fleet.RouteLength(t.pos, a.Route, s.cfg.Metric)
	newTrips := 0.0
	for _, rs := range newReqs {
		newTrips += rs.req.TripDistance(s.cfg.Metric)
	}
	outcome := AssignmentOutcome{
		TaxiID:          a.TaxiID,
		Frame:           s.frame,
		Requests:        len(newReqs),
		Shared:          len(newReqs) > 1 || len(t.onboard)+len(t.pending) > 0,
		Dissatisfaction: newLen - oldLen - (s.cfg.Params.Alpha+1)*newTrips,
	}
	s.assignments = append(s.assignments, outcome)
	if s.cfg.KPI != nil {
		s.kpi.assignDecision(outcome)
	}

	// Install the new route.
	wasIdle := t.idle()
	t.route = append([]fleet.Stop(nil), a.Route...)
	for _, rs := range newReqs {
		rs.assigned = true
		rs.assignFrame = s.frame
		rs.taxiID = a.TaxiID
		rs.passengerDiss = s.passengerDiss(t, a, rs)
		if s.cfg.KPI != nil {
			s.kpi.assignRequest(s.frame-rs.req.Frame, rs.passengerDiss)
		}
		t.pending[rs.req.ID] = true
		s.removePending(rs.req.ID)
		s.emit(Event{Frame: s.frame, Kind: EventAssign, RequestID: rs.req.ID, TaxiID: a.TaxiID, Pos: rs.req.Pickup})
		s.scheduleFaultsOnAssign(a.TaxiID, rs.req.ID)
	}

	// Episode bookkeeping.
	if wasIdle {
		t.episodeActive = true
		t.episodeStart = s.frame
		t.episodeDriven = 0
		t.episodeTripSum = 0
		t.episodeReqs = nil
	}
	for _, rs := range newReqs {
		t.episodeTripSum += rs.req.TripDistance(s.cfg.Metric)
		t.episodeReqs = append(t.episodeReqs, rs.req.ID)
	}
	return nil
}

// checkRoute verifies the proposed route serves exactly the taxi's
// onboard requests (drop-offs only), its already-assigned pickups, and
// the newly assigned requests, with pickups preceding drop-offs and the
// load never exceeding capacity.
func (s *Simulator) checkRoute(t *taxiState, a fleet.Assignment) error {
	expectPickup := make(map[int]bool)
	expectDrop := make(map[int]bool)
	for id := range t.onboard {
		expectDrop[id] = true
	}
	for id := range t.pending {
		expectPickup[id] = true
		expectDrop[id] = true
	}
	for _, id := range a.Requests {
		expectPickup[id] = true
		expectDrop[id] = true
	}

	load := t.load(s.reqs)
	maxLoad := load
	seenPickup := make(map[int]bool)
	seenDrop := make(map[int]bool)
	for _, stop := range a.Route {
		rs, ok := s.reqs[stop.RequestID]
		if !ok {
			return fmt.Errorf("route visits unknown request %d", stop.RequestID)
		}
		switch stop.Kind {
		case fleet.StopPickup:
			if !expectPickup[stop.RequestID] || seenPickup[stop.RequestID] {
				return fmt.Errorf("route has unexpected pickup for request %d", stop.RequestID)
			}
			seenPickup[stop.RequestID] = true
			load += rs.req.SeatCount()
			if load > maxLoad {
				maxLoad = load
			}
		case fleet.StopDropoff:
			if !expectDrop[stop.RequestID] || seenDrop[stop.RequestID] {
				return fmt.Errorf("route has unexpected drop-off for request %d", stop.RequestID)
			}
			if expectPickup[stop.RequestID] && !seenPickup[stop.RequestID] {
				return fmt.Errorf("route drops request %d before pickup", stop.RequestID)
			}
			seenDrop[stop.RequestID] = true
			load -= rs.req.SeatCount()
		default:
			return fmt.Errorf("route stop has invalid kind %v", stop.Kind)
		}
	}
	for id := range expectPickup {
		if !seenPickup[id] {
			return fmt.Errorf("route misses pickup of request %d", id)
		}
	}
	for id := range expectDrop {
		if !seenDrop[id] {
			return fmt.Errorf("route misses drop-off of request %d", id)
		}
	}
	if maxLoad > t.taxi.Capacity() {
		return fmt.Errorf("route load %d exceeds taxi %d capacity %d", maxLoad, t.taxi.ID, t.taxi.Capacity())
	}
	return nil
}

// passengerDiss computes the paper's passenger-dissatisfaction metric for
// a newly assigned request from the taxi's current position along the new
// route: D_ck(t, r^s) + β·[D_ck(r^s, r^d) − D(r^s, r^d)]. For a solo ride
// this is exactly D(t, r^s).
func (s *Simulator) passengerDiss(t *taxiState, a fleet.Assignment, rs *requestState) float64 {
	dist := 0.0
	cur := t.pos
	var toPickup, onBoard float64
	picked := false
	for _, stop := range a.Route {
		dist += s.cfg.Metric.Distance(cur, stop.Pos)
		cur = stop.Pos
		if stop.RequestID != rs.req.ID {
			continue
		}
		if stop.Kind == fleet.StopPickup {
			toPickup = dist
			picked = true
		} else if picked {
			onBoard = dist - toPickup
		}
	}
	solo := rs.req.TripDistance(s.cfg.Metric)
	return toPickup + s.cfg.Params.Beta*(onBoard-solo)
}

func (s *Simulator) removePending(id int) {
	for i, p := range s.pending {
		if p == id {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// moveTaxis advances every busy taxi along its route by one frame's
// driving budget, executing pickups and drop-offs it reaches.
func (s *Simulator) moveTaxis() {
	budget := s.cfg.SpeedKmH * s.cfg.FrameMinutes / 60
	for _, t := range s.taxis {
		if t.idle() {
			continue
		}
		remaining := budget
		for remaining > 0 && len(t.route) > 0 {
			target := t.route[0]
			before := t.pos
			next, leftover := geo.Toward(t.pos, target.Pos, remaining)
			t.pos = next
			t.episodeDriven += geo.Euclid(before, next)
			remaining = leftover
			if next != target.Pos {
				break
			}
			// Arrived at the stop.
			t.route = t.route[1:]
			rs := s.reqs[target.RequestID]
			if target.Kind == fleet.StopPickup {
				delete(t.pending, target.RequestID)
				t.onboard[target.RequestID] = true
				rs.pickedUp = true
				rs.pickupFrame = s.frame
				s.emit(Event{Frame: s.frame, Kind: EventPickup, RequestID: target.RequestID, TaxiID: t.taxi.ID, Pos: target.Pos})
			} else {
				delete(t.onboard, target.RequestID)
				rs.done = true
				rs.dropoffFrame = s.frame
				s.emit(Event{Frame: s.frame, Kind: EventDropoff, RequestID: target.RequestID, TaxiID: t.taxi.ID, Pos: target.Pos})
			}
		}
		if t.idle() && t.episodeActive {
			s.closeEpisode(t)
		}
	}
}

// closeEpisode finalises the taxi-dissatisfaction metric for a completed
// busy period: D_ck(t) − (α+1)·Σ D(r^s, r^d) in the sharing model, which
// reduces to D(t, r^s) − α·D(r^s, r^d) for a solo ride.
func (s *Simulator) closeEpisode(t *taxiState) {
	driven := t.episodeDriven
	// Distance still to drive if the episode was cut off by the drain
	// deadline.
	driven += fleet.RouteLength(t.pos, t.route, s.cfg.Metric)
	s.episodes = append(s.episodes, EpisodeOutcome{
		TaxiID:          t.taxi.ID,
		StartFrame:      t.episodeStart,
		EndFrame:        s.frame,
		Requests:        len(t.episodeReqs),
		Dissatisfaction: driven - (s.cfg.Params.Alpha+1)*t.episodeTripSum,
	})
	t.episodeActive = false
}

func (s *Simulator) buildReport() *Report {
	rep := &Report{
		Algorithm:   s.cfg.Dispatcher.Name(),
		Frames:      s.frame,
		Episodes:    s.episodes,
		Assignments: s.assignments,
	}
	// Surface a sticky sink failure (JSONLSink and friends) so broken
	// event streams are visible instead of silently truncated.
	if es, ok := s.cfg.Events.(interface{ Err() error }); ok {
		rep.EventSinkErr = es.Err()
	}
	for _, r := range s.arrival {
		rep.Requests = append(rep.Requests, s.outcome(s.reqs[r.ID]))
	}
	return rep
}

// outcome snapshots one request's lifecycle record.
func (s *Simulator) outcome(rs *requestState) RequestOutcome {
	return RequestOutcome{
		ID:            rs.req.ID,
		ArrivalFrame:  rs.req.Frame,
		AssignFrame:   rs.assignFrame,
		PickupFrame:   rs.pickupFrame,
		DropoffFrame:  rs.dropoffFrame,
		TaxiID:        rs.taxiID,
		PassengerDiss: rs.passengerDiss,
		Served:        rs.assigned,
		Abandoned:     rs.abandoned,
		Cancelled:     rs.cancelled,
		Rescued:       rs.rescued,
		Requeues:      rs.requeues,
	}
}

// RequestOutcome returns the current lifecycle record of one request
// without building a full report, or false if the ID is unknown. The
// dispatch daemon's per-request status endpoint uses this.
func (s *Simulator) RequestOutcome(id int) (RequestOutcome, bool) {
	rs, ok := s.reqs[id]
	if !ok {
		return RequestOutcome{}, false
	}
	return s.outcome(rs), true
}
