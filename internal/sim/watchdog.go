package sim

import (
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fault"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/tseries"
)

// Watchdog glue: after every recorded frame, the finished sample is
// pushed into the flight recorder's context ring (with the frame's
// certificate summary and the fault-injection state) and handed to the
// SLO engine for evaluation. Both are gated — an unconfigured flight
// recorder costs one atomic load, a nil SLO engine one pointer check —
// and neither runs at all when KPI recording is off, since there is no
// sample to evaluate.

// watchFrame feeds one completed frame's sample to the flight recorder
// and the SLO engine. Ring push precedes evaluation so a breach bundle
// contains the frame that tripped it.
func (s *Simulator) watchFrame(sample tseries.Sample) {
	if fr := flightrec.Active(); fr != nil {
		fr.ObserveFrame(s.frameContext(sample))
	}
	if s.cfg.SLO != nil {
		s.cfg.SLO.Observe(sample)
	}
	// Live telemetry: one kpi message per recorded frame. Gated on an
	// interested subscriber so the batch runners (no hub) and an idle
	// daemon (no /v1/stream connection) pay one atomic load.
	if stream.Wants(stream.TopicKPI) {
		stream.Publish(stream.TopicKPI, sample.Frame, sample)
	}
}

// frameContext assembles the flight recorder's per-frame rich context.
func (s *Simulator) frameContext(sample tseries.Sample) flightrec.FrameContext {
	fc := flightrec.FrameContext{Frame: sample.Frame, KPI: sample}
	if rec := dtrace.Active(); rec != nil {
		if c, ok := rec.Certificate(int(sample.Frame)); ok {
			fc.Cert = &flightrec.CertSummary{
				Stable:     c.Stable,
				Violations: c.ViolationsTotal,
				Matched:    c.Matched,
				Requests:   c.Requests,
				Taxis:      c.Taxis,
			}
		}
	}
	if s.cfg.Faults != nil {
		fi := &flightrec.FaultInfo{}
		if cfgd, ok := s.cfg.Faults.(interface{ Config() fault.Config }); ok {
			c := cfgd.Config()
			fi.Seed = c.Seed
			fi.BreakdownRate = c.BreakdownRate
			fi.DriverCancelRate = c.DriverCancelRate
			fi.PassengerCancelRate = c.PassengerCancelRate
		}
		for id := range s.activeOutage {
			if s.offline(id) {
				fi.ActiveOutages++
			}
		}
		fc.Fault = fi
	}
	return fc
}
