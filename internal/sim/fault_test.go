package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"stabledispatch/internal/fault"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// stubInjector forces specific faults at specific points. Driver
// cancellations fire once per map entry (the entry is consumed), so a
// reassignment after the cancel is not cancelled again.
type stubInjector struct {
	passenger map[int]int    // requestID → delay after arrival
	driver    map[[2]int]int // {taxiID, requestID} → delay after assignment
	breakdown map[[2]int]int // {taxiID, frame} → repair frames
}

func (s *stubInjector) PassengerCancelAfter(id int) (int, bool) {
	d, ok := s.passenger[id]
	return d, ok
}

func (s *stubInjector) DriverCancelAfter(taxiID, requestID, _ int) (int, bool) {
	k := [2]int{taxiID, requestID}
	d, ok := s.driver[k]
	if ok {
		delete(s.driver, k)
	}
	return d, ok
}

func (s *stubInjector) Breakdown(taxiID, frame int) (int, bool) {
	d, ok := s.breakdown[[2]int{taxiID, frame}]
	return d, ok
}

// collectEvents attaches a recording sink to the config.
func collectEvents(cfg *Config) *[]Event {
	var events []Event
	cfg.Events = EventSinkFunc(func(e Event) { events = append(events, e) })
	return &events
}

func countKind(events []Event, kind EventKind, requestID int) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind && (requestID < 0 || e.RequestID == requestID) {
			n++
		}
	}
	return n
}

func TestPassengerCancelPending(t *testing.T) {
	// No dispatcher ever assigns, so the request sits pending until the
	// injected cancellation fires two frames after arrival.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0}}
	cfg := simpleConfig(&scriptedDispatcher{})
	cfg.Faults = &stubInjector{passenger: map[int]int{1: 2}}
	events := collectEvents(&cfg)
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	out, ok := s.RequestOutcome(1)
	if !ok || !out.Cancelled || out.Served {
		t.Fatalf("outcome = %+v, want cancelled and unserved", out)
	}
	if got := countKind(*events, EventCancel, 1); got != 1 {
		t.Errorf("cancel events = %d, want 1", got)
	}
	if len(s.pending) != 0 {
		t.Errorf("pending = %v, want empty", s.pending)
	}
	if s.Snapshot().CancelledCount() != 1 {
		t.Error("report does not count the cancellation")
	}
}

func TestPassengerCancelUnwindsAssignment(t *testing.T) {
	// Pickup is 5 km out (5 frames at 1 km/min); the cancellation fires
	// at frame 1 while the taxi is still en route, freeing it.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 5}, Dropoff: geo.Point{X: 6}, Frame: 0}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Faults = &stubInjector{passenger: map[int]int{1: 1}}
	events := collectEvents(&cfg)
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	out, _ := s.RequestOutcome(1)
	if !out.Cancelled || out.Served || out.PickupFrame >= 0 {
		t.Fatalf("outcome = %+v, want cancelled before pickup", out)
	}
	// The cancel event names the taxi whose assignment was unwound.
	var cancel *Event
	for i := range *events {
		if (*events)[i].Kind == EventCancel {
			cancel = &(*events)[i]
		}
	}
	if cancel == nil || cancel.TaxiID != 0 {
		t.Fatalf("cancel event = %+v, want TaxiID 0", cancel)
	}
	if !s.byID[0].idle() {
		t.Error("taxi still busy after its only assignment was cancelled")
	}
	if len(s.byID[0].pending) != 0 {
		t.Error("taxi still holds the cancelled request")
	}
}

func TestDriverCancelRequeuesAndRedispatches(t *testing.T) {
	// The driver abandons the fare two frames after assignment; the
	// passenger is requeued with their original arrival frame and
	// served by the next dispatch.
	reqs := []fleet.Request{{ID: 7, Pickup: geo.Point{X: 8}, Dropoff: geo.Point{X: 9}, Frame: 0}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.DrainFrames = 60
	cfg.Faults = &stubInjector{driver: map[[2]int]int{{0, 7}: 2}}
	events := collectEvents(&cfg)
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := rep.Requests[0]
	if !out.Served || out.DropoffFrame < 0 {
		t.Fatalf("outcome = %+v, want served to completion", out)
	}
	if out.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", out.Requeues)
	}
	// Reassigned at frame 2 (the cancel frame): the delay metric stays
	// anchored at the original arrival frame.
	if out.AssignFrame != 2 || out.ArrivalFrame != 0 {
		t.Errorf("assign/arrival = %d/%d, want 2/0", out.AssignFrame, out.ArrivalFrame)
	}
	if d, ok := out.DispatchDelay(); !ok || d != 2 {
		t.Errorf("dispatch delay = %v, want 2 (honest against original arrival)", d)
	}
	if got := countKind(*events, EventCancel, 7); got != 1 {
		t.Errorf("cancel events = %d, want 1", got)
	}
	if got := countKind(*events, EventRequeue, 7); got != 1 {
		t.Errorf("requeue events = %d, want 1", got)
	}
	if got := countKind(*events, EventAssign, 7); got != 2 {
		t.Errorf("assign events = %d, want 2 (original + re-dispatch)", got)
	}
}

func TestBreakdownRescuesOnboardRider(t *testing.T) {
	// Taxi 0 picks the rider up and breaks down mid-trip at frame 4;
	// the rider becomes a rescue request at the breakdown position and
	// taxi 1 finishes the trip.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 10}, Frame: 0}}
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{}}, {ID: 1, Pos: geo.Point{X: 20}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.DrainFrames = 120
	cfg.Faults = &stubInjector{breakdown: map[[2]int]int{{0, 4}: 1000}}
	events := collectEvents(&cfg)
	s, err := New(cfg, taxis, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := rep.Requests[0]
	if !out.Rescued {
		t.Fatalf("outcome = %+v, want rescued", out)
	}
	if out.DropoffFrame < 0 || out.TaxiID != 1 {
		t.Fatalf("outcome = %+v, want completed by taxi 1", out)
	}
	if got := countKind(*events, EventBreakdown, -1); got != 1 {
		t.Errorf("breakdown events = %d, want 1", got)
	}
	if got := countKind(*events, EventRescue, 1); got != 1 {
		t.Errorf("rescue events = %d, want 1", got)
	}
	if got := countKind(*events, EventPickup, 1); got != 2 {
		t.Errorf("pickup events = %d, want 2 (original + rescue)", got)
	}
	if got := countKind(*events, EventDropoff, 1); got != 1 {
		t.Errorf("dropoff events = %d, want exactly 1", got)
	}
	// The rescue pickup happens where the taxi died, partway to x=10.
	var rescue Event
	for _, e := range *events {
		if e.Kind == EventRescue {
			rescue = e
		}
	}
	if rescue.Pos.X <= 1 || rescue.Pos.X >= 10 {
		t.Errorf("rescue position %v not strictly between pickup and dropoff", rescue.Pos)
	}
	if rescue.TaxiID != 0 {
		t.Errorf("rescue names taxi %d, want the broken taxi 0", rescue.TaxiID)
	}
}

func TestBreakdownRequeuesAssignedNotPickedUp(t *testing.T) {
	// The taxi breaks down while still driving to the pickup: the
	// passenger is requeued (not rescued) with the original pickup.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 9}, Dropoff: geo.Point{X: 10}, Frame: 0}}
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{}}, {ID: 1, Pos: geo.Point{X: 30}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.DrainFrames = 120
	cfg.Faults = &stubInjector{breakdown: map[[2]int]int{{0, 2}: 1000}}
	events := collectEvents(&cfg)
	s, err := New(cfg, taxis, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := rep.Requests[0]
	if out.Rescued {
		t.Error("not-yet-picked-up passenger reported as rescued")
	}
	if !out.Served || out.DropoffFrame < 0 || out.TaxiID != 1 {
		t.Fatalf("outcome = %+v, want completed by taxi 1", out)
	}
	if got := countKind(*events, EventRequeue, 1); got != 1 {
		t.Errorf("requeue events = %d, want 1", got)
	}
	if got := countKind(*events, EventRescue, 1); got != 0 {
		t.Errorf("rescue events = %d, want 0", got)
	}
}

func TestCancelRequestAPI(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 50}, Dropoff: geo.Point{X: 60}, Frame: 0},
	}
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{}}, {ID: 9, Pos: geo.Point{X: 40}}}
	cfg := simpleConfig(nearestDispatcher{})
	s, err := New(cfg, taxis, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.CancelRequest(404); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("cancel unknown = %v, want ErrUnknownRequest", err)
	}
	// Frame 0 assigns both; frame 1: request 1 is picked up (1 km out),
	// request 2 still en route.
	for i := 0; i < 2; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := s.CancelRequest(1); !errors.Is(err, ErrNotCancellable) {
		t.Errorf("cancel riding = %v, want ErrNotCancellable", err)
	}
	if err := s.CancelRequest(2); err != nil {
		t.Errorf("cancel assigned = %v, want nil", err)
	}
	if err := s.CancelRequest(2); !errors.Is(err, ErrNotCancellable) {
		t.Errorf("double cancel = %v, want ErrNotCancellable", err)
	}
	out, _ := s.RequestOutcome(2)
	if !out.Cancelled {
		t.Fatalf("outcome = %+v, want cancelled", out)
	}
	if !s.byID[9].idle() {
		t.Error("taxi 9 still busy after its assignment was cancelled")
	}
}

func TestOutageValidation(t *testing.T) {
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Outages = []Outage{{TaxiID: 0, From: 5, To: 5}}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted an empty outage window")
	}
	cfg.Outages = []Outage{{TaxiID: 0, From: 7, To: 3}}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted an inverted outage window")
	}
	cfg.Outages = []Outage{{TaxiID: 42, From: 0, To: 5}}
	if _, err := New(cfg, singleTaxi(geo.Point{}), nil); err == nil {
		t.Error("New accepted an outage naming an unknown taxi")
	}
	cfg.Outages = []Outage{{TaxiID: 0, From: 0, To: 5}}
	if _, err := New(cfg, singleTaxi(geo.Point{}), nil); err != nil {
		t.Errorf("New rejected a valid outage: %v", err)
	}
}

func TestInjectOutageAndBreakdownValidation(t *testing.T) {
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.InjectOutage(42, 0, 5); err == nil {
		t.Error("InjectOutage accepted an unknown taxi")
	}
	if err := s.InjectOutage(0, 5, 5); err == nil {
		t.Error("InjectOutage accepted an empty window")
	}
	if err := s.InjectBreakdown(42, 5); err == nil {
		t.Error("InjectBreakdown accepted an unknown taxi")
	}
	if err := s.InjectOutage(0, 0, 5); err != nil {
		t.Errorf("InjectOutage rejected a valid window: %v", err)
	}
	if !s.offline(0) {
		t.Error("taxi not offline after immediate injected outage")
	}
}

// TestPatienceOutageInterplay exercises the satellite requirement:
// under an outage with finite patience, every abandoned request emits
// EventAbandon exactly once, abandoned requests never resurrect after a
// requeue, and report counts stay consistent.
func TestPatienceOutageInterplay(t *testing.T) {
	// One taxi dark for [0, 10) with patience 3: the early requests all
	// abandon before the outage lifts; a late request is served.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 3}, Frame: 1},
		{ID: 3, Pickup: geo.Point{X: 3}, Dropoff: geo.Point{X: 4}, Frame: 12},
	}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 3
	cfg.Outages = []Outage{{TaxiID: 0, From: 0, To: 10}}
	cfg.DrainFrames = 60
	events := collectEvents(&cfg)
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, id := range []int{1, 2} {
		if got := countKind(*events, EventAbandon, id); got != 1 {
			t.Errorf("request %d: abandon events = %d, want exactly 1", id, got)
		}
		// No lifecycle event may follow the abandon.
		abandoned := false
		for _, e := range *events {
			if e.RequestID != id {
				continue
			}
			if abandoned {
				t.Errorf("request %d: event %s after abandon", id, e.Kind)
			}
			if e.Kind == EventAbandon {
				abandoned = true
			}
		}
	}
	if rep.AbandonedCount() != 2 || rep.ServedCount() != 1 {
		t.Errorf("abandoned/served = %d/%d, want 2/1", rep.AbandonedCount(), rep.ServedCount())
	}
	if got := len(rep.Requests); got != 3 {
		t.Errorf("report requests = %d, want 3", got)
	}
}

// TestRequeueRestartsPatience pins the requeue ↔ patience contract: a
// driver cancellation restarts the patience clock (the passenger waits
// anew) and an abandoned request never resurrects.
func TestRequeueRestartsPatience(t *testing.T) {
	reqs := []fleet.Request{{ID: 5, Pickup: geo.Point{X: 20}, Dropoff: geo.Point{X: 21}, Frame: 0}}
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 4
	cfg.DrainFrames = 80
	// Driver abandons 3 frames after the frame-0 assignment; the taxi
	// then sits in a long outage so the requeued passenger expires.
	cfg.Faults = &stubInjector{driver: map[[2]int]int{{0, 5}: 3}}
	events := collectEvents(&cfg)
	s, err := New(cfg, taxis, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	// Frame 3 applies the driver cancel; block re-dispatch from then on.
	if err := s.InjectOutage(0, 3, 1000); err != nil {
		t.Fatalf("InjectOutage: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := rep.Requests[0]
	if !out.Abandoned || out.Served {
		t.Fatalf("outcome = %+v, want abandoned after requeue", out)
	}
	// Requeued at frame 3 with patience 4: abandon at frame 7, not at
	// frame 4 (patience restarted, not resumed).
	var abandonFrame = -1
	for _, e := range *events {
		if e.Kind == EventAbandon && e.RequestID == 5 {
			if abandonFrame >= 0 {
				t.Fatal("second abandon event for request 5")
			}
			abandonFrame = e.Frame
		}
	}
	if abandonFrame != 7 {
		t.Errorf("abandon frame = %d, want 7 (patience restarts at requeue frame 3)", abandonFrame)
	}
	if got := countKind(*events, EventRequeue, 5); got != 1 {
		t.Errorf("requeue events = %d, want 1", got)
	}
}

// chaosRun executes one seeded chaos soak and returns its events and
// report.
func chaosRun(t *testing.T, seed int64) ([]Event, *Report) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var reqs []fleet.Request
	for i := 0; i < 250; i++ {
		reqs = append(reqs, fleet.Request{
			ID:      i,
			Pickup:  geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Dropoff: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Frame:   rng.Intn(100),
		})
	}
	var taxis []fleet.Taxi
	for i := 0; i < 20; i++ {
		taxis = append(taxis, fleet.Taxi{ID: i, Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}})
	}
	sched, err := fault.New(fault.Config{
		Seed:                seed,
		BreakdownRate:       0.10,
		PassengerCancelRate: 0.15,
		DriverCancelRate:    0.10,
		RepairFrames:        10,
	})
	if err != nil {
		t.Fatalf("fault.New: %v", err)
	}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 25
	cfg.DrainFrames = 500
	cfg.Faults = sched
	// A scheduled outage on top of the random breakdowns.
	cfg.Outages = []Outage{{TaxiID: 0, From: 20, To: 60}, {TaxiID: 1, From: 30, To: 50}}
	events := collectEvents(&cfg)
	s, err := New(cfg, taxis, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	return *events, rep
}

// TestChaosSoakInvariants is the acceptance soak: under a seeded
// schedule with ≥10% breakdown and cancellation rates and finite
// patience, every request reaches exactly one terminal state, no
// assignment ever references an offline or broken taxi, orphaned riders
// are rescued or abandoned — never silently dropped — and the whole run
// is deterministic for a fixed seed.
func TestChaosSoakInvariants(t *testing.T) {
	events, rep := chaosRun(t, 7)

	// The fault mix actually fired: the soak is vacuous otherwise.
	if countKind(events, EventBreakdown, -1) == 0 {
		t.Fatal("soak injected no breakdowns")
	}
	if countKind(events, EventCancel, -1) == 0 {
		t.Fatal("soak injected no cancellations")
	}
	if countKind(events, EventRescue, -1) == 0 {
		t.Fatal("soak produced no rescues")
	}

	// No assignment may name a taxi inside a breakdown repair window or
	// a configured outage.
	brokenUntil := make(map[int]int)
	outage := map[int][2]int{0: {20, 60}, 1: {30, 50}}
	for _, e := range events {
		switch e.Kind {
		case EventBreakdown:
			brokenUntil[e.TaxiID] = e.Frame + 10 // RepairFrames above
		case EventAssign:
			if until, ok := brokenUntil[e.TaxiID]; ok && e.Frame < until {
				t.Fatalf("frame %d: assignment to taxi %d broken until %d", e.Frame, e.TaxiID, until)
			}
			if w, ok := outage[e.TaxiID]; ok && e.Frame >= w[0] && e.Frame < w[1] {
				t.Fatalf("frame %d: assignment to taxi %d during outage %v", e.Frame, e.TaxiID, w)
			}
		}
	}

	// Terminal accounting: exactly one of completed / abandoned /
	// cancelled per request; completed means exactly one dropoff.
	var completed, abandoned, cancelled int
	for _, o := range rep.Requests {
		states := 0
		if o.DropoffFrame >= 0 {
			states++
			completed++
		}
		if o.Abandoned {
			states++
			abandoned++
		}
		if o.Cancelled {
			states++
			cancelled++
		}
		if states != 1 {
			t.Fatalf("request %d has %d terminal states (%+v) — silently dropped or double-counted", o.ID, states, o)
		}
		if drops := countKind(events, EventDropoff, o.ID); (o.DropoffFrame >= 0) != (drops == 1) || drops > 1 {
			t.Fatalf("request %d: %d dropoff events, outcome %+v", o.ID, drops, o)
		}
		if got := countKind(events, EventAbandon, o.ID); got != b2i(o.Abandoned) {
			t.Fatalf("request %d: %d abandon events, abandoned=%v", o.ID, got, o.Abandoned)
		}
	}
	if completed+abandoned+cancelled != len(rep.Requests) {
		t.Fatalf("terminal states %d+%d+%d ≠ %d requests", completed, abandoned, cancelled, len(rep.Requests))
	}
	if completed == 0 || abandoned == 0 || cancelled == 0 {
		t.Fatalf("soak not exercising all outcomes: completed=%d abandoned=%d cancelled=%d", completed, abandoned, cancelled)
	}

	// Every rescued rider is accounted for: completed or abandoned,
	// with the report carrying the rescue flag.
	for _, e := range events {
		if e.Kind != EventRescue {
			continue
		}
		var out *RequestOutcome
		for i := range rep.Requests {
			if rep.Requests[i].ID == e.RequestID {
				out = &rep.Requests[i]
			}
		}
		if out == nil || !out.Rescued {
			t.Fatalf("rescued request %d missing from report or unflagged", e.RequestID)
		}
	}

	// Requeue bookkeeping agrees between events and report.
	requeueEvents := countKind(events, EventRequeue, -1) + countKind(events, EventRescue, -1)
	if got := rep.RequeueCount(); got != requeueEvents {
		t.Errorf("report requeues %d ≠ %d requeue+rescue events", got, requeueEvents)
	}

	// Determinism: an identical seed replays the identical run.
	events2, rep2 := chaosRun(t, 7)
	if !reflect.DeepEqual(events, events2) {
		t.Fatal("event streams differ between identical seeded runs")
	}
	if !reflect.DeepEqual(rep.Requests, rep2.Requests) {
		t.Fatal("request outcomes differ between identical seeded runs")
	}
	// And a different seed produces a different run.
	events3, _ := chaosRun(t, 8)
	if reflect.DeepEqual(events, events3) {
		t.Fatal("different fault seeds produced identical runs")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
