package sim

import (
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/tseries"
)

// TestKPISeriesRecordsEveryFrame runs a small scripted simulation with a
// recorder attached and checks the per-frame trajectory: one sample per
// frame, monotone frame numbers, served/queued transitions at the frames
// the script dictates, and positive runtime series.
func TestKPISeriesRecordsEveryFrame(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 3}, Dropoff: geo.Point{X: 4}, Frame: 1},
	}
	rec := tseries.New(tseries.Config{Capacity: 64})
	cfg := simpleConfig(nearestDispatcher{})
	cfg.KPI = rec
	s, err := New(cfg, []fleet.Taxi{{ID: 0}, {ID: 7, Pos: geo.Point{X: 3}}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServedCount() != 2 {
		t.Fatalf("served %d, want 2", rep.ServedCount())
	}
	samples := s.KPISeries()
	if len(samples) != rep.Frames {
		t.Fatalf("recorded %d samples over %d frames", len(samples), rep.Frames)
	}
	for i, smp := range samples {
		if smp.Frame != int64(i) {
			t.Errorf("sample %d has frame %d", i, smp.Frame)
		}
		if smp.FrameNs <= 0 {
			t.Errorf("frame %d has non-positive wall-clock %d", i, smp.FrameNs)
		}
	}
	// Frame 0 dispatches request 1 instantly; frame 1 dispatches request
	// 2; from then on served stays 2 and the queue stays empty.
	if samples[0].Served != 1 || samples[0].Queued != 0 {
		t.Errorf("frame 0 served/queued = %d/%d, want 1/0", samples[0].Served, samples[0].Queued)
	}
	last := samples[len(samples)-1]
	if last.Served != 2 || last.Queued != 0 {
		t.Errorf("final served/queued = %d/%d, want 2/0", last.Served, last.Queued)
	}
	if last.DelayMean != 0 || last.DelayP95 != 0 {
		t.Errorf("instant dispatches should have zero delay, got mean %v p95 %v", last.DelayMean, last.DelayP95)
	}
	// Both pickups are 0 km away (taxi co-located? no: taxi 0 at origin,
	// pickup at x=1) — passenger dissatisfaction is the pickup distance.
	if last.PassDissMean <= 0 {
		t.Errorf("passenger dissatisfaction mean = %v, want > 0", last.PassDissMean)
	}
	// Windowed query matches the snapshot's slice.
	win := s.KPIWindow(1, -1, 1)
	if len(win) != len(samples)-1 || win[0].Frame != 1 {
		t.Fatalf("KPIWindow(1,-1,1) = %d samples, want %d from frame 1", len(win), len(samples)-1)
	}
}

// TestKPIExpiredAndDelay checks the expired counter and the nonzero
// delay series: one lone taxi, two requests, finite patience.
func TestKPIExpiredAndDelay(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 30}, Frame: 0},
		// Far away while the taxi is busy; expires after patience.
		{ID: 2, Pickup: geo.Point{X: 200}, Dropoff: geo.Point{X: 201}, Frame: 0},
	}
	rec := tseries.New(tseries.Config{Capacity: 256})
	cfg := simpleConfig(nearestDispatcher{})
	cfg.KPI = rec
	cfg.PatienceFrames = 3
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	last, ok := rec.Last()
	if !ok {
		t.Fatal("no samples recorded")
	}
	if last.Expired != 1 {
		t.Errorf("expired = %d, want 1 (request 2 outlives patience)", last.Expired)
	}
	if last.Served != 1 {
		t.Errorf("served = %d, want 1", last.Served)
	}
}

// TestKPIDisabled keeps the nil-recorder path inert: no samples, empty
// non-nil query results.
func TestKPIDisabled(t *testing.T) {
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}),
		[]fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.KPIRecorder() != nil {
		t.Error("KPIRecorder non-nil without configuration")
	}
	if got := s.KPISeries(); got == nil || len(got) != 0 {
		t.Errorf("KPISeries = %#v, want empty non-nil", got)
	}
	if got := s.KPIWindow(0, -1, 1); got == nil || len(got) != 0 {
		t.Errorf("KPIWindow = %#v, want empty non-nil", got)
	}
}

// TestDelayDistQuantile pins the integer delay histogram's quantiles.
func TestDelayDistQuantile(t *testing.T) {
	var d delayDist
	if got := d.quantile(0.95); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// 100 observations: 95 zeros, 5 tens → p95 = 0 boundary, p99 = 10.
	for i := 0; i < 95; i++ {
		d.add(0)
	}
	for i := 0; i < 5; i++ {
		d.add(10)
	}
	if got := d.quantile(0.95); got != 0 {
		t.Errorf("p95 = %v, want 0", got)
	}
	if got := d.quantile(0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	d.add(delayBuckets + 500) // overflow clamps
	if got := d.quantile(1); got != delayBuckets {
		t.Errorf("max = %v, want %v", got, delayBuckets)
	}
}
