package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
)

// scriptedDispatcher returns canned assignments per frame number.
type scriptedDispatcher struct {
	name  string
	plans map[int][]fleet.Assignment
	calls int
}

func (d *scriptedDispatcher) Name() string {
	if d.name == "" {
		return "scripted"
	}
	return d.name
}

func (d *scriptedDispatcher) Dispatch(f *Frame) ([]fleet.Assignment, error) {
	d.calls++
	return d.plans[f.Number], nil
}

// nearestDispatcher assigns every pending request to the closest idle
// taxi, one per frame at most.
type nearestDispatcher struct{}

func (nearestDispatcher) Name() string { return "nearest" }

func (nearestDispatcher) Dispatch(f *Frame) ([]fleet.Assignment, error) {
	var out []fleet.Assignment
	used := make(map[int]bool)
	for _, r := range f.Requests {
		best, bestDist := -1, math.Inf(1)
		for i, v := range f.Taxis {
			if !v.Idle || used[i] {
				continue
			}
			if d := f.Metric.Distance(v.Pos, r.Pickup); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, fleet.SingleRide(f.Taxis[best].ID, r))
		}
	}
	return out, nil
}

func singleTaxi(pos geo.Point) []fleet.Taxi {
	return []fleet.Taxi{{ID: 0, Pos: pos}}
}

func simpleConfig(d Dispatcher) Config {
	return Config{
		Dispatcher: d,
		Params:     pref.Unbounded(),
		SpeedKmH:   60, // 1 km per minute: easy arithmetic
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Error("New accepted a config without dispatcher")
	}
	cfg := simpleConfig(nearestDispatcher{})
	if _, err := New(cfg, []fleet.Taxi{{ID: 1}, {ID: 1}}, nil); err == nil {
		t.Error("New accepted duplicate taxi IDs")
	}
	reqs := []fleet.Request{{ID: 5}, {ID: 5}}
	if _, err := New(cfg, singleTaxi(geo.Point{}), reqs); err == nil {
		t.Error("New accepted duplicate request IDs")
	}
	bad := cfg
	bad.Params = pref.Params{Alpha: -1}
	if _, err := New(bad, nil, nil); err == nil {
		t.Error("New accepted invalid params")
	}
}

func TestSingleRideLifecycle(t *testing.T) {
	// Taxi at origin, request 2 km away travelling 3 km; 1 km/frame.
	reqs := []fleet.Request{{
		ID:      1,
		Pickup:  geo.Point{X: 2},
		Dropoff: geo.Point{X: 5},
		Frame:   0,
	}}
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Requests) != 1 {
		t.Fatalf("got %d request outcomes", len(rep.Requests))
	}
	o := rep.Requests[0]
	if !o.Served {
		t.Fatal("request not served")
	}
	if o.AssignFrame != 0 {
		t.Errorf("AssignFrame = %d, want 0", o.AssignFrame)
	}
	// 2 km at 1 km/frame: arrives during frame 1 (moves at end of
	// frames 0 and 1).
	if o.PickupFrame != 1 {
		t.Errorf("PickupFrame = %d, want 1", o.PickupFrame)
	}
	// 3 more km: drop-off during frame 4.
	if o.DropoffFrame != 4 {
		t.Errorf("DropoffFrame = %d, want 4", o.DropoffFrame)
	}
	if math.Abs(o.PassengerDiss-2) > 1e-9 {
		t.Errorf("PassengerDiss = %v, want 2", o.PassengerDiss)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("got %d episodes", len(rep.Episodes))
	}
	// Taxi dissatisfaction: D - alpha*trip = 2 - 3 = -1.
	if math.Abs(rep.Episodes[0].Dissatisfaction-(-1)) > 1e-9 {
		t.Errorf("taxi dissatisfaction = %v, want -1", rep.Episodes[0].Dissatisfaction)
	}
	if delay, ok := o.DispatchDelay(); !ok || delay != 0 {
		t.Errorf("DispatchDelay = %v, %v", delay, ok)
	}
}

func TestDispatchDelayAccumulates(t *testing.T) {
	// One taxi, two requests arriving together: the second waits until
	// the taxi finishes the first ride.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 3}, Frame: 0},
	}
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 2 {
		t.Fatalf("served %d, want 2", rep.ServedCount())
	}
	first, second := rep.Requests[0], rep.Requests[1]
	if first.AssignFrame != 0 {
		t.Errorf("first AssignFrame = %d, want 0", first.AssignFrame)
	}
	if second.AssignFrame <= first.DropoffFrame-1 {
		t.Errorf("second assigned at %d, before taxi freed (~%d)", second.AssignFrame, first.DropoffFrame)
	}
	delays := rep.DispatchDelays()
	if len(delays) != 2 || delays[1] <= 0 {
		t.Errorf("delays = %v, want the second positive", delays)
	}
}

func TestUnservedRequestsReported(t *testing.T) {
	// No taxis at all: requests are never served.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.DrainFrames = 5
	s, err := New(cfg, nil, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.UnservedCount() != 1 || rep.ServedCount() != 0 {
		t.Errorf("served/unserved = %d/%d", rep.ServedCount(), rep.UnservedCount())
	}
	if _, ok := rep.Requests[0].DispatchDelay(); ok {
		t.Error("unserved request reported a dispatch delay")
	}
}

func TestLateArrivalsHeldBack(t *testing.T) {
	// A request arriving at frame 3 must not be dispatched earlier.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 3}}
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests[0].AssignFrame != 3 {
		t.Errorf("AssignFrame = %d, want 3", rep.Requests[0].AssignFrame)
	}
}

func TestSharedRideLifecycle(t *testing.T) {
	// Scripted shared assignment: pickup both riders, drop both.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 4}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}, Frame: 0},
	}
	route := []fleet.Stop{
		{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup},
		{RequestID: 2, Kind: fleet.StopPickup, Pos: reqs[1].Pickup},
		{RequestID: 1, Kind: fleet.StopDropoff, Pos: reqs[0].Dropoff},
		{RequestID: 2, Kind: fleet.StopDropoff, Pos: reqs[1].Dropoff},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {{TaxiID: 0, Requests: []int{1, 2}, Route: route}},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 2 {
		t.Fatalf("served %d, want 2", rep.ServedCount())
	}
	if rep.SharedRideCount() != 1 {
		t.Errorf("SharedRideCount = %d, want 1", rep.SharedRideCount())
	}
	if len(rep.Episodes) != 1 || rep.Episodes[0].Requests != 2 {
		t.Fatalf("episodes = %+v", rep.Episodes)
	}
	// Episode: total drive 5 km, trips 3+3=6; diss = 5 - 2*6 = -7 with
	// alpha=1.
	if math.Abs(rep.Episodes[0].Dissatisfaction-(-7)) > 1e-9 {
		t.Errorf("episode dissatisfaction = %v, want -7", rep.Episodes[0].Dissatisfaction)
	}
	// Rider 1: wait 1 km, onboard 3 (1->2->4), solo 3, detour 0 => 1.
	if math.Abs(rep.Requests[0].PassengerDiss-1) > 1e-9 {
		t.Errorf("rider 1 diss = %v, want 1", rep.Requests[0].PassengerDiss)
	}
	// Rider 2: wait 2 km, onboard 3 (2->4->5), solo 3 => 2.
	if math.Abs(rep.Requests[1].PassengerDiss-2) > 1e-9 {
		t.Errorf("rider 2 diss = %v, want 2", rep.Requests[1].PassengerDiss)
	}
}

func TestInsertionIntoBusyTaxi(t *testing.T) {
	// Frame 0: taxi gets rider 1. Frame 1: rider 2 spliced into the
	// route while the taxi is en route.
	// At 1 km/frame the taxi is at x=1 when frame 1 dispatch runs, so
	// rider 1 (pickup x=2) is still awaiting pickup and stays in the
	// replacement route.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 9}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 3}, Dropoff: geo.Point{X: 8}, Frame: 1},
	}
	insertedRoute := []fleet.Stop{
		{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup},
		{RequestID: 2, Kind: fleet.StopPickup, Pos: reqs[1].Pickup},
		{RequestID: 2, Kind: fleet.StopDropoff, Pos: reqs[1].Dropoff},
		{RequestID: 1, Kind: fleet.StopDropoff, Pos: reqs[0].Dropoff},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {fleet.SingleRide(0, reqs[0])},
		1: {{TaxiID: 0, Requests: []int{2}, Route: insertedRoute}},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 2 {
		t.Fatalf("served %d, want 2", rep.ServedCount())
	}
	if len(rep.Episodes) != 1 || rep.Episodes[0].Requests != 2 {
		t.Fatalf("episodes = %+v, want one shared episode", rep.Episodes)
	}
	if rep.Requests[1].PickupFrame < 0 || rep.Requests[1].DropoffFrame < 0 {
		t.Error("inserted rider never completed")
	}
	// Rider 1 must still be dropped at x=9.
	if rep.Requests[0].DropoffFrame < rep.Requests[1].DropoffFrame {
		t.Error("rider 1 dropped before rider 2 despite the inserted route order")
	}
}

func TestApplyRejectsInvalidAssignments(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
	}
	tests := []struct {
		name    string
		plan    fleet.Assignment
		wantErr string
	}{
		{
			name:    "unknown taxi",
			plan:    fleet.SingleRide(99, reqs[0]),
			wantErr: "unknown taxi",
		},
		{
			name:    "unknown request",
			plan:    fleet.SingleRide(0, fleet.Request{ID: 42, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}),
			wantErr: "unknown request",
		},
		{
			name: "no requests",
			plan: fleet.Assignment{TaxiID: 0},

			wantErr: "no requests",
		},
		{
			name: "missing dropoff",
			plan: fleet.Assignment{
				TaxiID:   0,
				Requests: []int{1},
				Route:    []fleet.Stop{{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup}},
			},
			wantErr: "misses drop-off",
		},
		{
			name: "dropoff before pickup",
			plan: fleet.Assignment{
				TaxiID:   0,
				Requests: []int{1},
				Route: []fleet.Stop{
					{RequestID: 1, Kind: fleet.StopDropoff, Pos: reqs[0].Dropoff},
					{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup},
				},
			},
			wantErr: "before pickup",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{0: {tt.plan}}}
			s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			_, err = s.Run()
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Run err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestApplyRejectsDoubleTaxiUse(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 3}, Frame: 0},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {fleet.SingleRide(0, reqs[0]), fleet.SingleRide(0, reqs[1])},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "assigned twice") {
		t.Errorf("Run err = %v, want 'assigned twice'", err)
	}
}

func TestApplyRejectsOverCapacity(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0, Seats: 5},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {fleet.SingleRide(0, reqs[0])},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("Run err = %v, want capacity error", err)
	}
}

func TestFrameViewConsistency(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 3}, Frame: 0, Seats: 2},
	}
	var captured []*Frame
	d := &capturingDispatcher{inner: nearestDispatcher{}, frames: &captured}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(captured) == 0 {
		t.Fatal("dispatcher never called")
	}
	f0 := captured[0]
	if len(f0.Requests) != 1 || f0.Requests[0].ID != 1 {
		t.Errorf("frame 0 requests = %v", f0.Requests)
	}
	if len(f0.Taxis) != 1 || !f0.Taxis[0].Idle {
		t.Errorf("frame 0 taxis = %+v", f0.Taxis)
	}
	// After the assignment the taxi is busy; subsequent frames (if any)
	// must reflect the seats map for the assigned request.
	for _, f := range captured[1:] {
		for _, v := range f.Taxis {
			if v.Idle {
				continue
			}
			if got := v.SeatsByRequest[1]; got != 2 {
				t.Errorf("SeatsByRequest[1] = %d, want 2", got)
			}
		}
	}
}

type capturingDispatcher struct {
	inner  Dispatcher
	frames *[]*Frame
}

func (d *capturingDispatcher) Name() string { return "capturing" }

func (d *capturingDispatcher) Dispatch(f *Frame) ([]fleet.Assignment, error) {
	*d.frames = append(*d.frames, f)
	return d.inner.Dispatch(f)
}

func TestDispatcherErrorPropagates(t *testing.T) {
	wantErr := errors.New("boom")
	d := &errorDispatcher{err: wantErr}
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); !errors.Is(err, wantErr) {
		t.Errorf("Run err = %v, want wrapped boom", err)
	}
}

type errorDispatcher struct{ err error }

func (d *errorDispatcher) Name() string { return "error" }

func (d *errorDispatcher) Dispatch(*Frame) ([]fleet.Assignment, error) { return nil, d.err }

func TestNoDispatchCallWithoutPendingRequests(t *testing.T) {
	d := &scriptedDispatcher{plans: nil}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.calls != 0 {
		t.Errorf("dispatcher called %d times with no requests", d.calls)
	}
}

func TestDrainDeadlineStopsRun(t *testing.T) {
	// A dispatcher that never assigns: the run must still end.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	d := &scriptedDispatcher{plans: nil}
	cfg := simpleConfig(d)
	cfg.DrainFrames = 3
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Frames > 5 {
		t.Errorf("ran %d frames, want <= 5", rep.Frames)
	}
	if rep.UnservedCount() != 1 {
		t.Errorf("unserved = %d, want 1", rep.UnservedCount())
	}
}

func TestIdleTaxisHelper(t *testing.T) {
	f := &Frame{Taxis: []TaxiView{
		{ID: 0, Idle: true},
		{ID: 1, Idle: false},
		{ID: 2, Idle: true},
	}}
	idle := f.IdleTaxis()
	if len(idle) != 2 || idle[0].ID != 0 || idle[1].ID != 2 {
		t.Errorf("IdleTaxis = %+v", idle)
	}
}

func TestTaxiViewCapacity(t *testing.T) {
	if got := (TaxiView{}).Capacity(); got != 4 {
		t.Errorf("default capacity = %d", got)
	}
	if got := (TaxiView{Seats: 2}).Capacity(); got != 2 {
		t.Errorf("capacity = %d, want 2", got)
	}
}

func TestAssignmentDissatisfactionMatchesPaperFormulas(t *testing.T) {
	// Solo dispatch from idle: diss = D(t, r^s) - alpha*D(r^s, r^d).
	reqs := []fleet.Request{{
		ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}, Frame: 0,
	}}
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Assignments) != 1 {
		t.Fatalf("assignments = %d, want 1", len(rep.Assignments))
	}
	a := rep.Assignments[0]
	if math.Abs(a.Dissatisfaction-(2-3)) > 1e-9 {
		t.Errorf("solo assignment diss = %v, want -1", a.Dissatisfaction)
	}
	if a.Shared || a.Requests != 1 || a.Frame != 0 || a.TaxiID != 0 {
		t.Errorf("assignment outcome = %+v", a)
	}
	got := rep.TaxiDissatisfactions()
	if len(got) != 1 || math.Abs(got[0]-(-1)) > 1e-9 {
		t.Errorf("TaxiDissatisfactions = %v", got)
	}
}

func TestSharedAssignmentDissatisfaction(t *testing.T) {
	// Fresh shared group: diss = D_ck(t) - (alpha+1) * sum trips.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 4}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}, Frame: 0},
	}
	route := []fleet.Stop{
		{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup},
		{RequestID: 2, Kind: fleet.StopPickup, Pos: reqs[1].Pickup},
		{RequestID: 1, Kind: fleet.StopDropoff, Pos: reqs[0].Dropoff},
		{RequestID: 2, Kind: fleet.StopDropoff, Pos: reqs[1].Dropoff},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {{TaxiID: 0, Requests: []int{1, 2}, Route: route}},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Assignments) != 1 {
		t.Fatalf("assignments = %d, want 1", len(rep.Assignments))
	}
	a := rep.Assignments[0]
	// Total drive 5 km, trips 3 + 3: 5 - 2*6 = -7.
	if math.Abs(a.Dissatisfaction-(-7)) > 1e-9 {
		t.Errorf("shared assignment diss = %v, want -7", a.Dissatisfaction)
	}
	if !a.Shared || a.Requests != 2 {
		t.Errorf("assignment outcome = %+v", a)
	}
}

func TestInsertionAssignmentIsMarginal(t *testing.T) {
	// Insertion into a busy taxi must record the marginal added
	// distance, not the whole route again.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 9}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 3}, Dropoff: geo.Point{X: 8}, Frame: 1},
	}
	insertedRoute := []fleet.Stop{
		{RequestID: 1, Kind: fleet.StopPickup, Pos: reqs[0].Pickup},
		{RequestID: 2, Kind: fleet.StopPickup, Pos: reqs[1].Pickup},
		{RequestID: 2, Kind: fleet.StopDropoff, Pos: reqs[1].Dropoff},
		{RequestID: 1, Kind: fleet.StopDropoff, Pos: reqs[0].Dropoff},
	}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {fleet.SingleRide(0, reqs[0])},
		1: {{TaxiID: 0, Requests: []int{2}, Route: insertedRoute}},
	}}
	s, err := New(simpleConfig(d), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Assignments) != 2 {
		t.Fatalf("assignments = %d, want 2", len(rep.Assignments))
	}
	// First: from (0,0), D=2, trip 7: 2 - 7 = -5.
	if math.Abs(rep.Assignments[0].Dissatisfaction-(-5)) > 1e-9 {
		t.Errorf("first diss = %v, want -5", rep.Assignments[0].Dissatisfaction)
	}
	// Second, from x=1: old remaining route length 8 (to pickup 2,
	// dropoff 9); new route length 1+1+5+1 = 8; added 0; trip 5:
	// 0 - 2*5 = -10.
	second := rep.Assignments[1]
	if math.Abs(second.Dissatisfaction-(-10)) > 1e-9 {
		t.Errorf("insertion diss = %v, want -10", second.Dissatisfaction)
	}
	if !second.Shared {
		t.Error("insertion not flagged as shared")
	}
}

func TestPatienceExpiresRequests(t *testing.T) {
	// No taxis: with a 3-frame patience the request abandons quickly
	// instead of waiting out the drain window.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 3
	cfg.DrainFrames = 30
	s, err := New(cfg, nil, reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 0 || rep.AbandonedCount() != 1 {
		t.Errorf("served/abandoned = %d/%d, want 0/1", rep.ServedCount(), rep.AbandonedCount())
	}
	if !rep.Requests[0].Abandoned {
		t.Error("outcome not flagged abandoned")
	}
}

func TestPatienceDoesNotExpireFreshRequests(t *testing.T) {
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.PatienceFrames = 10
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 1 || rep.AbandonedCount() != 0 {
		t.Errorf("served/abandoned = %d/%d, want 1/0", rep.ServedCount(), rep.AbandonedCount())
	}
}

func TestOutageBlocksDispatch(t *testing.T) {
	// One taxi, offline for frames [0, 5): the request must wait until
	// the outage lifts.
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0}}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Outages = []Outage{{TaxiID: 0, From: 0, To: 5}}
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Requests[0].Served {
		t.Fatal("request never served after outage lifted")
	}
	if rep.Requests[0].AssignFrame != 5 {
		t.Errorf("AssignFrame = %d, want 5 (first frame after outage)", rep.Requests[0].AssignFrame)
	}
}

func TestOutageRejectsExplicitAssignment(t *testing.T) {
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0}}
	d := &scriptedDispatcher{plans: map[int][]fleet.Assignment{
		0: {fleet.SingleRide(0, reqs[0])},
	}}
	cfg := simpleConfig(d)
	cfg.Outages = []Outage{{TaxiID: 0, From: 0, To: 3}}
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "offline") {
		t.Errorf("Run err = %v, want offline rejection", err)
	}
}

func TestOutageBusyTaxiFinishesRoute(t *testing.T) {
	// The taxi is dispatched at frame 0, then an outage starts at frame
	// 1: the passenger still reaches their destination.
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 3}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 2},
	}
	cfg := simpleConfig(nearestDispatcher{})
	cfg.Outages = []Outage{{TaxiID: 0, From: 1, To: 100}}
	cfg.DrainFrames = 150
	s, err := New(cfg, singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Requests[0].DropoffFrame < 0 {
		t.Error("first rider stranded mid-route by the outage")
	}
	// The second request arrives during the outage and must wait for
	// frame 100.
	if rep.Requests[1].Served && rep.Requests[1].AssignFrame < 100 {
		t.Errorf("second request assigned at %d during outage", rep.Requests[1].AssignFrame)
	}
}
