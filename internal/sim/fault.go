package sim

import (
	"errors"
	"fmt"
	"sort"
)

// FaultInjector decides which faults strike a run. Implementations must
// be deterministic pure functions of their arguments (internal/fault's
// seeded Schedule is the standard one) so a run replays identically for
// a fixed seed; the engine consults the injector at well-defined points
// of each frame.
type FaultInjector interface {
	// PassengerCancelAfter reports whether the passenger of requestID
	// cancels before pickup and how many frames after arrival the
	// cancellation fires (≥ 1).
	PassengerCancelAfter(requestID int) (frames int, ok bool)
	// DriverCancelAfter reports whether the driver of taxiID abandons
	// the assignment of requestID made at assignFrame, and how many
	// frames after assignment it fires (≥ 1). It only takes effect if
	// the passenger has not been picked up by then.
	DriverCancelAfter(taxiID, requestID, assignFrame int) (frames int, ok bool)
	// Breakdown reports whether the busy taxi breaks down at the frame
	// and how many frames the repair keeps it out of service.
	Breakdown(taxiID, frame int) (repairFrames int, ok bool)
}

// Sentinel errors for request cancellation, so API layers can map them
// to precise status codes.
var (
	// ErrUnknownRequest reports a request ID the simulator has never
	// seen.
	ErrUnknownRequest = errors.New("sim: unknown request")
	// ErrNotCancellable reports a request past the point of
	// cancellation: already riding, completed, abandoned, or cancelled.
	ErrNotCancellable = errors.New("sim: request not cancellable")
)

// DefaultRepairFrames is how long InjectBreakdown keeps a taxi out of
// service when no duration is given.
const DefaultRepairFrames = 30

// driverCancelDue keys one scheduled driver cancellation; the taxi ID
// guards against the request having been revoked and reassigned in the
// meantime.
type driverCancelDue struct {
	requestID int
	taxiID    int
}

// refreshOutages maintains the per-frame active-outage set: outages
// whose window opens this frame are activated, expired ones dropped.
// offline() is then an O(1) map probe instead of a scan over every
// configured outage per taxi per frame.
func (s *Simulator) refreshOutages() {
	for _, o := range s.outageStart[s.frame] {
		if o.To > s.frame && o.To > s.activeOutage[o.TaxiID] {
			s.activeOutage[o.TaxiID] = o.To
		}
	}
	delete(s.outageStart, s.frame)
	for id, to := range s.activeOutage {
		if to <= s.frame {
			delete(s.activeOutage, id)
		}
	}
}

// InjectOutage takes a taxi out of service for the frame window
// [from, to); a from in the past is clamped to the current frame. The
// dispatch daemon's chaos endpoint uses this to inject outages into a
// live simulation.
func (s *Simulator) InjectOutage(taxiID, from, to int) error {
	if _, ok := s.byID[taxiID]; !ok {
		return fmt.Errorf("sim: outage names unknown taxi %d", taxiID)
	}
	if from < s.frame {
		from = s.frame
	}
	if to <= from {
		return fmt.Errorf("sim: outage window [%d,%d) for taxi %d is empty", from, to, taxiID)
	}
	if from == s.frame {
		if to > s.activeOutage[taxiID] {
			s.activeOutage[taxiID] = to
		}
		return nil
	}
	s.outageStart[from] = append(s.outageStart[from], Outage{TaxiID: taxiID, From: from, To: to})
	return nil
}

// InjectBreakdown breaks a taxi immediately: its route is unwound,
// assigned passengers are requeued, onboard riders become rescue
// requests at the taxi's current position, and the taxi stays out of
// service for repairFrames (DefaultRepairFrames if non-positive).
func (s *Simulator) InjectBreakdown(taxiID, repairFrames int) error {
	t, ok := s.byID[taxiID]
	if !ok {
		return fmt.Errorf("sim: breakdown names unknown taxi %d", taxiID)
	}
	if repairFrames <= 0 {
		repairFrames = DefaultRepairFrames
	}
	s.breakdown(t, repairFrames)
	return nil
}

// CancelRequest withdraws a request before pickup (the passenger
// changed their mind): a pending request leaves the queue, an assigned
// one has its assignment unwound and the taxi freed. Riding, completed,
// abandoned, and already-cancelled requests return ErrNotCancellable.
func (s *Simulator) CancelRequest(id int) error {
	rs, ok := s.reqs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, id)
	}
	switch {
	case rs.done:
		return fmt.Errorf("%w: request %d already completed", ErrNotCancellable, id)
	case rs.pickedUp:
		return fmt.Errorf("%w: request %d already riding", ErrNotCancellable, id)
	case rs.abandoned:
		return fmt.Errorf("%w: request %d already abandoned", ErrNotCancellable, id)
	case rs.cancelled:
		return fmt.Errorf("%w: request %d already cancelled", ErrNotCancellable, id)
	}
	s.passengerCancel(rs)
	return nil
}

// applyFaults runs the frame's injected faults in a fixed order —
// passenger cancellations, driver cancellations, breakdowns — before
// dispatch, so the dispatcher sees the post-fault world.
func (s *Simulator) applyFaults() {
	for _, id := range s.cancelDue[s.frame] {
		rs := s.reqs[id]
		if rs == nil || rs.done || rs.pickedUp || rs.abandoned || rs.cancelled {
			continue
		}
		s.passengerCancel(rs)
	}
	delete(s.cancelDue, s.frame)

	for _, dc := range s.driverDue[s.frame] {
		rs := s.reqs[dc.requestID]
		if rs == nil || !rs.assigned || rs.pickedUp || rs.done || rs.taxiID != dc.taxiID {
			continue
		}
		s.driverCancel(rs)
	}
	delete(s.driverDue, s.frame)

	if s.cfg.Faults == nil {
		return
	}
	for _, t := range s.taxis {
		if t.idle() || s.offline(t.taxi.ID) {
			continue
		}
		if repair, ok := s.cfg.Faults.Breakdown(t.taxi.ID, s.frame); ok {
			s.breakdown(t, max(1, repair))
		}
	}
}

// passengerCancel terminates a request before pickup, unwinding its
// assignment if it has one.
func (s *Simulator) passengerCancel(rs *requestState) {
	taxiID := -1
	if rs.assigned {
		taxiID = rs.taxiID
		s.unassign(rs)
	} else {
		s.removePending(rs.req.ID)
	}
	rs.cancelled = true
	obsFaults["passenger_cancel"].Inc()
	s.emit(Event{Frame: s.frame, Kind: EventCancel, RequestID: rs.req.ID, TaxiID: taxiID, Pos: rs.req.Pickup})
}

// driverCancel unwinds an assignment the driver abandoned and requeues
// the passenger at their original arrival position in the queue.
func (s *Simulator) driverCancel(rs *requestState) {
	taxiID := rs.taxiID
	s.unassign(rs)
	obsFaults["driver_cancel"].Inc()
	s.emit(Event{Frame: s.frame, Kind: EventCancel, RequestID: rs.req.ID, TaxiID: taxiID, Pos: rs.req.Pickup})
	s.requeue(rs, EventRequeue, taxiID)
}

// breakdown takes a busy taxi out mid-route: assigned passengers are
// requeued, onboard riders become rescue requests picked up again from
// the breakdown position, the remaining route is dropped where the taxi
// stands, and the taxi goes dark for repair frames.
func (s *Simulator) breakdown(t *taxiState, repair int) {
	obsFaults["breakdown"].Inc()
	s.emit(Event{Frame: s.frame, Kind: EventBreakdown, RequestID: -1, TaxiID: t.taxi.ID, Pos: t.pos})
	if to := s.frame + repair; to > s.activeOutage[t.taxi.ID] {
		s.activeOutage[t.taxi.ID] = to
	}

	// Assigned, not yet picked up: revoke and requeue. Map keys are
	// sorted so the emitted event order is deterministic.
	for _, id := range sortedKeys(t.pending) {
		rs := s.reqs[id]
		s.unassign(rs)
		s.requeue(rs, EventRequeue, t.taxi.ID)
	}

	// Onboard riders are orphaned where the taxi stands: they become
	// rescue requests from the breakdown position to their original
	// destination, preserving the original arrival frame so the
	// dispatch-delay metric stays honest.
	for _, id := range sortedKeys(t.onboard) {
		rs := s.reqs[id]
		delete(t.onboard, id)
		t.episodeTripSum -= rs.req.TripDistance(s.cfg.Metric)
		removeID(&t.episodeReqs, id)
		rs.req.Pickup = t.pos
		rs.assigned = false
		rs.pickedUp = false
		rs.assignFrame = -1
		rs.pickupFrame = -1
		rs.taxiID = -1
		rs.passengerDiss = 0
		rs.rescued = true
		if s.cfg.KPI != nil {
			s.kpi.unassign()
		}
		s.requeue(rs, EventRescue, t.taxi.ID)
	}

	// The truncated route is abandoned in place: unlike a drain-deadline
	// episode close, the taxi does not get credit for distance it never
	// drove, so the route must be empty before closeEpisode runs.
	t.route = nil
	if t.episodeActive {
		s.closeEpisode(t)
	}
}

// unassign revokes a not-yet-picked-up assignment: the request's stops
// leave the taxi's route, the episode bookkeeping stops crediting the
// revoked trip, and the request state rolls back to unassigned.
func (s *Simulator) unassign(rs *requestState) {
	t := s.byID[rs.taxiID]
	kept := t.route[:0]
	for _, stop := range t.route {
		if stop.RequestID != rs.req.ID {
			kept = append(kept, stop)
		}
	}
	t.route = kept
	delete(t.pending, rs.req.ID)
	t.episodeTripSum -= rs.req.TripDistance(s.cfg.Metric)
	removeID(&t.episodeReqs, rs.req.ID)
	rs.assigned = false
	rs.assignFrame = -1
	rs.taxiID = -1
	rs.passengerDiss = 0
	if s.cfg.KPI != nil {
		s.kpi.unassign()
	}
	if t.idle() && t.episodeActive {
		s.closeEpisode(t)
	}
}

// requeue re-inserts a revoked request into the pending queue at its
// original arrival-order position, so re-dispatch competes fairly with
// requests that arrived later. The patience clock restarts (the
// passenger is notified and waits anew) but the arrival frame — and
// with it the dispatch-delay metric — is preserved.
func (s *Simulator) requeue(rs *requestState, kind EventKind, taxiID int) {
	id := rs.req.ID
	rs.requeues++
	rs.waitSince = s.frame
	pos := len(s.pending)
	for i, pid := range s.pending {
		pr := s.reqs[pid].req
		if pr.Frame > rs.req.Frame || (pr.Frame == rs.req.Frame && pr.ID > id) {
			pos = i
			break
		}
	}
	s.pending = append(s.pending, 0)
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = id
	obsRedispatch.Inc()
	s.emit(Event{Frame: s.frame, Kind: kind, RequestID: id, TaxiID: taxiID, Pos: rs.req.Pickup})
}

// scheduleFaultsOnArrival asks the injector whether this just-released
// request will be passenger-cancelled, and books the cancellation.
func (s *Simulator) scheduleFaultsOnArrival(id int) {
	if s.cfg.Faults == nil {
		return
	}
	if d, ok := s.cfg.Faults.PassengerCancelAfter(id); ok {
		at := s.frame + max(1, d)
		s.cancelDue[at] = append(s.cancelDue[at], id)
	}
}

// scheduleFaultsOnAssign asks the injector whether the driver will
// abandon this fresh assignment, and books the cancellation.
func (s *Simulator) scheduleFaultsOnAssign(taxiID, requestID int) {
	if s.cfg.Faults == nil {
		return
	}
	if d, ok := s.cfg.Faults.DriverCancelAfter(taxiID, requestID, s.frame); ok {
		at := s.frame + max(1, d)
		s.driverDue[at] = append(s.driverDue[at], driverCancelDue{requestID: requestID, taxiID: taxiID})
	}
}

// sortedKeys returns the map's keys in ascending order, for
// deterministic iteration.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// removeID deletes the first occurrence of id from the slice in place.
func removeID(ids *[]int, id int) {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return
		}
	}
}
