package sim

import (
	"fmt"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/pref"
)

// Decision-trace wiring for the engine: lifecycle events land on each
// request's trace, and every dispatched frame gets a stability
// certificate at commit — a blocking-pair scan of the realized matching
// against the §IV-A interest model the frame was dispatched under. All
// of it is gated on dtrace.Active(), so an untraced run pays one atomic
// load per frame plus one per event.

// traceEvent forwards one lifecycle event to the decision-trace layer.
// Breakdowns carry no request (RequestID −1) and become a frame note on
// the certificate instead of a trace event.
func (s *Simulator) traceEvent(rec *dtrace.Recorder, e Event) {
	if e.RequestID < 0 {
		if e.Kind == EventBreakdown {
			rec.AddFrameNote(e.Frame, fmt.Sprintf("taxi %d broke down mid-route; its assignments were revoked", e.TaxiID))
		}
		return
	}
	var detail string
	switch e.Kind {
	case EventRequest:
		detail = "entered the pending queue"
	case EventAssign:
		detail = fmt.Sprintf("dispatched: taxi %d committed to this request", e.TaxiID)
	case EventPickup:
		detail = fmt.Sprintf("boarded taxi %d", e.TaxiID)
	case EventDropoff:
		detail = fmt.Sprintf("dropped off by taxi %d", e.TaxiID)
	case EventAbandon:
		detail = "gave up waiting (patience exceeded)"
	case EventCancel:
		detail = "assignment or request withdrawn before pickup"
	case EventRequeue:
		detail = "assignment revoked; re-entered the pending queue"
	case EventRescue:
		detail = "orphaned by a breakdown; re-entered the queue from the breakdown position"
	}
	rec.Lifecycle(e.RequestID, e.Frame, e.TaxiID, dtrace.Kind(e.Kind), detail)
}

// certifyFrame audits the frame's realized matching at commit: the
// pre-dispatch frame view pins the participants (pending requests ×
// idle taxis), the applied assignments pin the matching, and
// dtrace.Certify runs the Definition 1 blocking-pair scan under the
// §IV-A single-ride interest model. Shared-group and busy-taxi
// (insertion) assignments are evaluated under the same single-ride
// lens — deliberate: the certificate answers "would any passenger-taxi
// pair rather elope", which §V's refined model only re-weights — and
// the certificate carries a note whenever that lens was stretched.
func (s *Simulator) certifyFrame(rec *dtrace.Recorder, f *Frame, applied []fleet.Assignment) {
	idle := f.IdleTaxis()
	if len(f.Requests) == 0 || len(idle) == 0 {
		note := "no pending requests"
		if len(f.Requests) > 0 {
			note = "no idle taxis"
		}
		rec.PutCertificate(dtrace.Trivial(f.Number, len(f.Requests), len(idle), note+": nothing to match, vacuously stable"))
		return
	}
	taxis := make([]fleet.Taxi, len(idle))
	taxiIDs := make([]int, len(idle))
	taxiIdx := make(map[int]int, len(idle))
	for i, v := range idle {
		taxis[i] = fleet.Taxi{ID: v.ID, Pos: v.Pos, Seats: v.Seats, Status: fleet.TaxiIdle}
		taxiIDs[i] = v.ID
		taxiIdx[v.ID] = i
	}
	inst, err := pref.NewInstance(f.Requests, taxis, f.Metric, f.Params)
	if err != nil {
		rec.AddFrameNote(f.Number, "stability certificate unavailable: "+err.Error())
		return
	}
	reqIDs := make([]int, len(f.Requests))
	reqIdx := make(map[int]int, len(f.Requests))
	for j, r := range f.Requests {
		reqIDs[j] = r.ID
		reqIdx[r.ID] = j
	}
	reqPartner := make([]int, len(f.Requests))
	for j := range reqPartner {
		reqPartner[j] = -1
	}
	sharedLens := false
	for _, a := range applied {
		i, ok := taxiIdx[a.TaxiID]
		if !ok {
			// Insertion into a busy taxi (carpool baselines): outside
			// the idle-fleet market, so outside the scan.
			sharedLens = true
			continue
		}
		if len(a.Requests) > 1 {
			sharedLens = true
		}
		for _, id := range a.Requests {
			if j, ok := reqIdx[id]; ok {
				reqPartner[j] = i
			}
		}
	}
	c := dtrace.Certify(f.Number, &inst.Market, reqPartner, reqIDs, taxiIDs)
	if sharedLens {
		c.Notes = append(c.Notes,
			"frame contains shared or insertion assignments; certificate evaluates them under the single-ride (§IV-A) interest model")
	}
	rec.PutCertificate(c)
	if c.ViolationsTotal > 0 {
		s.kpi.violations += int64(c.ViolationsTotal)
		flightrec.TriggerActive(int64(f.Number), flightrec.ReasonStability,
			fmt.Sprintf("frame %d certificate found %d blocking pair(s) over %d requests × %d idle taxis",
				f.Number, c.ViolationsTotal, c.Requests, c.Taxis))
	}
}

// Counts is a cheap occupancy snapshot for health surfaces.
type Counts struct {
	// Frame is the current frame number.
	Frame int `json:"frame"`
	// Pending counts requests awaiting assignment.
	Pending int `json:"pendingRequests"`
	// Active counts requests assigned or riding but not yet dropped off.
	Active int `json:"activeRequests"`
	// Taxis is the fleet size; TaxisIdle and TaxisOffline partition the
	// dispatchable states.
	Taxis        int `json:"taxis"`
	TaxisIdle    int `json:"taxisIdle"`
	TaxisOffline int `json:"taxisOffline"`
}

// Counts returns the engine's current occupancy.
func (s *Simulator) Counts() Counts {
	c := Counts{Frame: s.frame, Pending: len(s.pending), Taxis: len(s.taxis)}
	for _, t := range s.taxis {
		if s.offline(t.taxi.ID) {
			c.TaxisOffline++
		} else if t.idle() {
			c.TaxisIdle++
		}
		c.Active += len(t.pending) + len(t.onboard)
	}
	return c
}
