package sim

import (
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/tseries"
)

// TestProfLedgerMatchesTSeries pins the contract between the
// frame-budget ledger and the KPI ring: both views of a frame are fed
// the same wall-clock and allocation measurements, so a ledger frame's
// WallNs/Allocs equal the tseries sample's FrameNs/Allocs exactly, and
// the attributed stage time never exceeds the frame wall-clock.
func TestProfLedgerMatchesTSeries(t *testing.T) {
	ld := prof.Configure(prof.Config{TopN: 256})
	defer prof.Disable()
	rec := tseries.New(tseries.Config{Capacity: 256})
	cfg := simpleConfig(nearestDispatcher{})
	cfg.KPI = rec
	reqs := []fleet.Request{
		{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0},
		{ID: 2, Pickup: geo.Point{X: 3}, Dropoff: geo.Point{X: 4}, Frame: 1},
		{ID: 3, Pickup: geo.Point{X: 5}, Dropoff: geo.Point{X: 9}, Frame: 2},
	}
	s, err := New(cfg, []fleet.Taxi{{ID: 0}, {ID: 7, Pos: geo.Point{X: 3}}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	samples := s.KPISeries()
	if len(samples) == 0 {
		t.Fatal("no KPI samples recorded")
	}
	byFrame := make(map[int64]tseries.Sample, len(samples))
	for _, smp := range samples {
		byFrame[smp.Frame] = smp
	}

	// TopN exceeds the run length, so the ring retains every frame.
	top := ld.TopFrames()
	if len(top) != len(samples) {
		t.Fatalf("ledger retained %d frames, tseries %d", len(top), len(samples))
	}
	commitSeen := false
	for _, fr := range top {
		smp, ok := byFrame[fr.Frame]
		if !ok {
			t.Fatalf("ledger frame %d missing from tseries", fr.Frame)
		}
		if fr.WallNs != smp.FrameNs {
			t.Errorf("frame %d: ledger wall %dns != tseries frameNs %dns", fr.Frame, fr.WallNs, smp.FrameNs)
		}
		if fr.Allocs != smp.Allocs {
			t.Errorf("frame %d: ledger allocs %d != tseries allocs %d", fr.Frame, fr.Allocs, smp.Allocs)
		}
		if fr.StageSumNs > fr.WallNs {
			t.Errorf("frame %d: stage sum %dns exceeds frame wall %dns", fr.Frame, fr.StageSumNs, fr.WallNs)
		}
		for _, sc := range fr.Stages {
			if sc.Stage == "commit" && sc.Calls > 0 {
				commitSeen = true
			}
		}
	}
	if !commitSeen {
		t.Error("no frame attributed commit-stage time despite assignments")
	}
	if sum := ld.Summary(); sum.Frames != int64(len(samples)) {
		t.Errorf("summary frames = %d, want %d", sum.Frames, len(samples))
	}
}

// TestProfLedgerWithoutKPI checks the ledger alone is enough to turn on
// frame accounting — the daemon can profile without a KPI recorder.
func TestProfLedgerWithoutKPI(t *testing.T) {
	ld := prof.Configure(prof.Config{})
	defer prof.Disable()
	reqs := []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Frame: 0}}
	s, err := New(simpleConfig(nearestDispatcher{}), singleTaxi(geo.Point{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sum := ld.Summary()
	if sum.Frames == 0 {
		t.Fatal("ledger saw no frames without a KPI recorder")
	}
	if sum.AvgWallNs <= 0 {
		t.Fatalf("avg wall = %d, want > 0", sum.AvgWallNs)
	}
}
