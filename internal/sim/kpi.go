package sim

import (
	"runtime/metrics"
	"time"

	"stabledispatch/internal/obs"
	"stabledispatch/internal/tseries"
)

// Per-frame KPI recording: when Config.KPI carries a tseries.Recorder,
// every Step finishes by appending one fixed-width sample with the
// paper's §VI quantities — resolved as running statistics over the
// dispatch decisions so far — plus the frame's wall-clock cost, heap
// allocations (runtime/metrics, no stop-the-world), and the process-wide
// Dijkstra cache hit rate and degraded-frame count read from the obs
// registry. The aggregates live on the engine and are updated inline at
// the points the outcomes are already in hand, so recording adds O(1)
// work per assignment and one ring write per frame.
//
// Semantics: delay/dissatisfaction series are per *dispatch decision* —
// a request revoked by a fault and re-dispatched contributes one
// observation per dispatch. Served is the net assigned count (revocations
// subtract), matching what Counts and the live report show.

// delayBuckets caps the exact dispatch-delay distribution at 1024
// frames; longer delays land in the overflow bucket and quantiles there
// are a lower bound. Delays are whole frames, so integer-indexed counts
// give exact quantiles below the cap.
const delayBuckets = 1024

// delayDist is an exact integer histogram of dispatch delays in frames.
type delayDist struct {
	counts [delayBuckets + 1]uint32
	total  int64
}

func (d *delayDist) add(frames int) {
	if frames < 0 {
		frames = 0
	}
	if frames > delayBuckets {
		frames = delayBuckets
	}
	d.counts[frames]++
	d.total++
}

// quantile returns the q-quantile delay in frames (0 with no data).
func (d *delayDist) quantile(q float64) float64 {
	if d.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.total)
	cum := 0.0
	for i, c := range d.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= rank {
			return float64(i)
		}
	}
	return delayBuckets
}

// kpiState is the engine's running KPI aggregate set.
type kpiState struct {
	served      int64 // net assigned requests (revocations subtract)
	assignedObs int64 // dispatch-decision request observations
	delaySum    float64
	delays      delayDist
	passDissSum float64
	decisions   int64
	taxiDissSum float64
	shared      int64
	expired     int64
	violations  int64 // blocking-pair violations from the dtrace certificates

	memSamples [1]metrics.Sample
}

// readAllocs returns the process's cumulative heap-object allocation
// count via runtime/metrics (cheap: no stop-the-world, no allocation).
func (k *kpiState) readAllocs() uint64 {
	if k.memSamples[0].Name == "" {
		k.memSamples[0].Name = "/gc/heap/allocs:objects"
	}
	metrics.Read(k.memSamples[:])
	if v := k.memSamples[0].Value; v.Kind() == metrics.KindUint64 {
		return v.Uint64()
	}
	return 0
}

// assignRequest folds one newly dispatched request into the running
// delay and passenger-dissatisfaction series.
func (k *kpiState) assignRequest(delayFrames int, passDiss float64) {
	k.served++
	k.assignedObs++
	k.delaySum += float64(delayFrames)
	k.delays.add(delayFrames)
	k.passDissSum += passDiss
}

// assignDecision folds one dispatch decision into the taxi-side series.
func (k *kpiState) assignDecision(o AssignmentOutcome) {
	k.decisions++
	k.taxiDissSum += o.Dissatisfaction
	if o.Shared {
		k.shared++
	}
}

// unassign reverses one revoked assignment's served count. The delay and
// dissatisfaction observations stand: they were real decisions.
func (k *kpiState) unassign() { k.served-- }

// recordKPI appends the completed frame's sample to the ring and
// returns it for the SLO/flight-recorder pipeline.
func (s *Simulator) recordKPI(rec *tseries.Recorder, frame int, wall time.Duration, allocs uint64) tseries.Sample {
	k := &s.kpi
	sample := tseries.Sample{
		Frame:               int64(frame),
		DelayP95:            k.delays.quantile(0.95),
		Served:              k.served,
		Queued:              int64(len(s.pending)),
		Expired:             k.expired,
		SharedRides:         k.shared,
		DegradedFrames:      int64(obs.SumCounters("dispatch_degraded_frames_total")),
		StabilityViolations: k.violations,
		FrameNs:             wall.Nanoseconds(),
		Allocs:              int64(allocs),
		// Admission front-door series, read from the process-wide
		// registry like the degraded-frame count: zero in batch runs,
		// live when the daemon's internal/admission controller is in
		// front of this simulator.
		Accepted:       int64(obs.CounterValue("admission_accepted_total")),
		Shed:           int64(obs.SumCounters("admission_shed_total")),
		AdmissionQueue: int64(obs.GaugeValue("admission_queue_depth")),
	}
	if k.assignedObs > 0 {
		sample.DelayMean = k.delaySum / float64(k.assignedObs)
		sample.PassDissMean = k.passDissSum / float64(k.assignedObs)
	}
	if k.decisions > 0 {
		sample.TaxiDissMean = k.taxiDissSum / float64(k.decisions)
	}
	hits := obs.CounterValue("roadnet_cache_hits_total")
	misses := obs.CounterValue("roadnet_cache_misses_total")
	if lookups := hits + misses; lookups > 0 {
		sample.CacheHitRate = float64(hits) / float64(lookups)
	}
	rec.Record(sample)
	return sample
}

// KPIRecorder returns the configured per-frame KPI recorder, or nil when
// KPI recording is disabled.
func (s *Simulator) KPIRecorder() *tseries.Recorder { return s.cfg.KPI }

// KPISeries snapshots every retained per-frame KPI sample in
// chronological order. The result is empty (never nil) when KPI
// recording is disabled. Safe to call concurrently with Step: the ring
// carries its own lock.
func (s *Simulator) KPISeries() []tseries.Sample {
	if s.cfg.KPI == nil {
		return []tseries.Sample{}
	}
	return s.cfg.KPI.Snapshot()
}

// KPIWindow returns the retained samples with frame in [from, to]
// (negative to means "through the latest"), thinned to every step-th.
// Empty (never nil) when recording is disabled or the window is empty.
func (s *Simulator) KPIWindow(from, to int64, step int) []tseries.Sample {
	if s.cfg.KPI == nil {
		return []tseries.Sample{}
	}
	return s.cfg.KPI.Window(from, to, step)
}
