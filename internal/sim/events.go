package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/stream"
)

// EventKind labels one simulator event.
type EventKind string

// Event kinds emitted by the engine, in lifecycle order.
const (
	EventRequest EventKind = "request" // a request entered the pending queue
	EventAssign  EventKind = "assign"  // a taxi was dispatched
	EventPickup  EventKind = "pickup"  // the passenger boarded
	EventDropoff EventKind = "dropoff" // the passenger alighted
	EventAbandon EventKind = "abandon" // the passenger gave up waiting

	// Fault-lifecycle kinds. A driver cancellation emits cancel followed
	// by requeue for the same request; a passenger cancellation emits
	// cancel alone; a breakdown emits breakdown for the taxi, then
	// requeue for each revoked assignment and rescue for each orphaned
	// rider.
	EventCancel    EventKind = "cancel"    // an assignment or request was withdrawn before pickup
	EventBreakdown EventKind = "breakdown" // a taxi broke down mid-route (RequestID is -1)
	EventRequeue   EventKind = "requeue"   // a revoked request re-entered the pending queue
	EventRescue    EventKind = "rescue"    // an orphaned rider re-entered the queue from the breakdown position
)

// Event is one step of a request's lifecycle, suitable for JSONL replay
// and visualisation tooling.
type Event struct {
	Frame     int       `json:"frame"`
	Kind      EventKind `json:"kind"`
	RequestID int       `json:"requestId"`
	// TaxiID is set from assignment onward (-1 before).
	TaxiID int `json:"taxiId"`
	// Pos is where the event happened: the pickup location for request
	// and assign events, the taxi's stop position for pickup/dropoff.
	Pos geo.Point `json:"pos"`
}

// EventSink receives engine events as they happen. Record is called
// synchronously from Step, so implementations should be fast; the
// JSONL writer below buffers through the provided io.Writer.
type EventSink interface {
	Record(Event)
}

// EventSinkFunc adapts a function to the EventSink interface.
type EventSinkFunc func(Event)

// Record implements EventSink.
func (f EventSinkFunc) Record(e Event) { f(e) }

var _ EventSink = EventSinkFunc(nil)

// MultiSink fans one event stream out to several sinks, calling them in
// argument order. Nil sinks are skipped, so callers can compose optional
// sinks without branching; with zero or one live sink the composition
// collapses to nil or the sink itself.
func MultiSink(sinks ...EventSink) EventSink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiSink []EventSink

// Record implements EventSink.
func (m multiSink) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// JSONLSink streams events as JSON lines. Errors are sticky: the first
// write failure is kept and reported by Err, and later events are
// dropped — a broken sink must not take the simulation down.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

var _ EventSink = (*JSONLSink)(nil)

// NewJSONLSink returns a sink writing one JSON object per line to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Record implements EventSink.
func (s *JSONLSink) Record(e Event) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = fmt.Errorf("sim: event sink: %w", err)
		obsEventSinkErrors.Inc()
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// ReadJSONL parses a JSONL event stream back into events (the inverse of
// JSONLSink, for replay tooling and tests).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("sim: read events: %w", err)
		}
		events = append(events, e)
	}
	return events, nil
}

// emit counts an event and forwards it to the configured sink, the
// decision-trace layer, and the live telemetry stream, if active.
func (s *Simulator) emit(e Event) {
	if c := obsEvents[e.Kind]; c != nil {
		c.Inc()
	}
	if s.cfg.Events != nil {
		s.cfg.Events.Record(e)
	}
	if rec := dtrace.Active(); rec != nil {
		s.traceEvent(rec, e)
	}
	if fr := flightrec.Active(); fr != nil {
		fr.RecordEvent(int64(e.Frame), e)
	}
	// Live telemetry: every lifecycle event on the events topic, and a
	// breakdown additionally as an operator notice. Both gated on an
	// interested subscriber (one atomic load otherwise), and the hub
	// never blocks — a wedged stream consumer drops its own entries
	// instead of slowing this frame.
	if stream.Wants(stream.TopicEvents) {
		stream.Publish(stream.TopicEvents, int64(e.Frame), e)
	}
	if e.Kind == EventBreakdown && stream.Wants(stream.TopicNotices) {
		stream.Publish(stream.TopicNotices, int64(e.Frame), stream.Notice{
			Kind:   "breakdown",
			Frame:  int64(e.Frame),
			Detail: fmt.Sprintf("taxi %d broke down mid-route", e.TaxiID),
		})
	}
}
