package sim

import "stabledispatch/internal/obs"

// Engine telemetry: per-frame dispatch latency (the Dispatcher call
// plus assignment validation, the tunable part of a frame), pending-
// queue depth after dispatch, and lifecycle event counts.
var (
	obsFrames          = obs.GetOrCreateCounter("sim_frames_total")
	obsDispatchSeconds = obs.GetOrCreateHistogram("sim_dispatch_frame_seconds")
	obsPendingDepth    = obs.GetOrCreateGauge("sim_pending_requests")
	obsEventSinkErrors = obs.GetOrCreateCounter("sim_event_sink_errors_total")

	obsEvents = map[EventKind]*obs.Counter{
		EventRequest: obs.GetOrCreateCounter(`sim_events_total{kind="request"}`),
		EventAssign:  obs.GetOrCreateCounter(`sim_events_total{kind="assign"}`),
		EventPickup:  obs.GetOrCreateCounter(`sim_events_total{kind="pickup"}`),
		EventDropoff: obs.GetOrCreateCounter(`sim_events_total{kind="dropoff"}`),
		EventAbandon: obs.GetOrCreateCounter(`sim_events_total{kind="abandon"}`),
	}
)
