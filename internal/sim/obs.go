package sim

import "stabledispatch/internal/obs"

// Engine telemetry: per-frame dispatch latency (the Dispatcher call
// plus assignment validation, the tunable part of a frame), pending-
// queue depth after dispatch, and lifecycle event counts.
var (
	obsFrames          = obs.GetOrCreateCounter("sim_frames_total")
	obsDispatchSeconds = obs.GetOrCreateHistogram("sim_dispatch_frame_seconds")
	// obsCommitSeconds closes the stage family from the engine side:
	// assignment installation plus the stability audit, the part of a
	// dispatch the pluggable Dispatcher doesn't own.
	obsCommitSeconds = obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="commit"}`)
	obsPendingDepth  = obs.GetOrCreateGauge("sim_pending_requests")
	// obsExpired counts patience-exceeded abandonments: requests the
	// engine dropped because no dispatch arrived within the patience
	// bound. The abandon event counter below tracks the same lifecycle
	// step; this dedicated counter keeps the expiry rate scrapeable even
	// when event counting is filtered.
	obsExpired         = obs.GetOrCreateCounter("sim_requests_expired_total")
	obsEventSinkErrors = obs.GetOrCreateCounter("sim_event_sink_errors_total")

	obsEvents = map[EventKind]*obs.Counter{
		EventRequest:   obs.GetOrCreateCounter(`sim_events_total{kind="request"}`),
		EventAssign:    obs.GetOrCreateCounter(`sim_events_total{kind="assign"}`),
		EventPickup:    obs.GetOrCreateCounter(`sim_events_total{kind="pickup"}`),
		EventDropoff:   obs.GetOrCreateCounter(`sim_events_total{kind="dropoff"}`),
		EventAbandon:   obs.GetOrCreateCounter(`sim_events_total{kind="abandon"}`),
		EventCancel:    obs.GetOrCreateCounter(`sim_events_total{kind="cancel"}`),
		EventBreakdown: obs.GetOrCreateCounter(`sim_events_total{kind="breakdown"}`),
		EventRequeue:   obs.GetOrCreateCounter(`sim_events_total{kind="requeue"}`),
		EventRescue:    obs.GetOrCreateCounter(`sim_events_total{kind="rescue"}`),
	}

	// Fault-class counters and the re-dispatch counter: how often each
	// fault struck and how many revoked requests re-entered the queue.
	obsFaults = map[string]*obs.Counter{
		"breakdown":        obs.GetOrCreateCounter(`sim_faults_total{kind="breakdown"}`),
		"driver_cancel":    obs.GetOrCreateCounter(`sim_faults_total{kind="driver_cancel"}`),
		"passenger_cancel": obs.GetOrCreateCounter(`sim_faults_total{kind="passenger_cancel"}`),
	}
	obsRedispatch = obs.GetOrCreateCounter("sim_redispatch_total")
)
