// Package setpack solves the Maximum Set Packing Problem (MSPP) of
// Algorithm 3 (Eqs. 1–3): given feasible subsets of passenger requests,
// pick a maximum number of pairwise-disjoint subsets.
//
// Three solvers are provided:
//
//   - Greedy: a maximal packing, scanning sets in a deterministic order.
//   - LocalSearch: greedy followed by (0,1)- and (1,2)-exchange
//     improvements. This is the local-improvement approximation the
//     paper cites ([21]), with guarantee (max_k |c_k| + 2)/3 — for the
//     paper's |c_k| ≤ 3 that is a 5/3-approximation, which the paper
//     deems acceptable.
//   - Exact: branch-and-bound with a node budget, used by tests to
//     validate approximation quality and by the ILP carpool baseline.
//
// Elements are request indices 0..N-1; sets never contain duplicates.
package setpack

import (
	"fmt"
	"sort"

	"stabledispatch/internal/obs"
)

// Local-search telemetry: passes are full improvement sweeps until the
// fixed point, moves are accepted (0,1)-additions and (1,2)-exchanges.
// Counts are accumulated locally and published once per solve.
var (
	obsLSPasses = obs.GetOrCreateCounter("setpack_localsearch_passes_total")
	obsLSMoves  = obs.GetOrCreateCounter("setpack_localsearch_moves_total")
)

// Problem is an MSPP instance over the universe {0, …, N-1}.
type Problem struct {
	N    int
	Sets [][]int
}

// Validate reports malformed instances: out-of-range or duplicate
// elements within a set.
func (p Problem) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("setpack: negative universe size %d", p.N)
	}
	for k, s := range p.Sets {
		seen := make(map[int]bool, len(s))
		for _, e := range s {
			if e < 0 || e >= p.N {
				return fmt.Errorf("setpack: set %d contains out-of-range element %d", k, e)
			}
			if seen[e] {
				return fmt.Errorf("setpack: set %d contains duplicate element %d", k, e)
			}
			seen[e] = true
		}
	}
	return nil
}

// MaxSetSize returns max_k |c_k| (0 for an empty instance).
func (p Problem) MaxSetSize() int {
	m := 0
	for _, s := range p.Sets {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// IsPacking reports whether the chosen set indices form a valid packing
// (pairwise disjoint, each index valid and distinct).
func (p Problem) IsPacking(chosen []int) error {
	usedSet := make(map[int]bool, len(chosen))
	usedElem := make(map[int]int, len(chosen)*3)
	for _, k := range chosen {
		if k < 0 || k >= len(p.Sets) {
			return fmt.Errorf("setpack: chosen index %d out of range", k)
		}
		if usedSet[k] {
			return fmt.Errorf("setpack: set %d chosen twice", k)
		}
		usedSet[k] = true
		for _, e := range p.Sets[k] {
			if prev, clash := usedElem[e]; clash {
				return fmt.Errorf("setpack: element %d in both set %d and set %d", e, prev, k)
			}
			usedElem[e] = k
		}
	}
	return nil
}

// Greedy returns a maximal packing: sets are scanned smallest-first
// (ties by index) and taken whenever disjoint from everything chosen so
// far. Smallest-first blocks the fewest elements per chosen set, which
// for MSPP's cardinality objective (Eq. 1) is the natural greedy order.
func Greedy(p Problem) []int {
	order := make([]int, len(p.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := p.Sets[order[a]], p.Sets[order[b]]
		if len(sa) != len(sb) {
			return len(sa) < len(sb)
		}
		return order[a] < order[b]
	})
	used := make([]bool, p.N)
	var chosen []int
	for _, k := range order {
		if disjointFromUsed(p.Sets[k], used) {
			chosen = append(chosen, k)
			mark(p.Sets[k], used, true)
		}
	}
	sort.Ints(chosen)
	return chosen
}

// Observer receives each accepted local-search move for decision
// tracing: move is "add" for a (0,1)-addition or "swap" for a
// (1,2)-exchange; removed and added hold the set indices leaving and
// entering the packing. Callbacks run inside the search loop and must be
// cheap; a nil Observer is free.
type Observer func(move string, removed, added []int)

// LocalSearch improves a greedy packing with exchange moves until a fixed
// point: (0,1)-moves add any set disjoint from the packing; (1,2)-moves
// remove one chosen set and add two disjoint sets that only conflicted
// with it. The result is a packing of size at least 3/(max|c_k|+2) times
// the optimum.
func LocalSearch(p Problem) []int {
	return LocalSearchObserved(p, nil)
}

// LocalSearchObserved is LocalSearch reporting each accepted exchange
// move to o (which may be nil).
func LocalSearchObserved(p Problem, o Observer) []int {
	chosen := Greedy(p)
	inPacking := make([]bool, len(p.Sets))
	used := make([]int, p.N) // chosen set index occupying the element, or -1
	for i := range used {
		used[i] = -1
	}
	for _, k := range chosen {
		inPacking[k] = true
		for _, e := range p.Sets[k] {
			used[e] = k
		}
	}

	passes, moves := uint64(0), uint64(0)
	defer func() {
		obsLSPasses.Add(passes)
		obsLSMoves.Add(moves)
	}()
	improved := true
	for improved {
		improved = false
		passes++

		// conflictsOf returns the distinct chosen sets overlapping s.
		conflictsOf := func(s []int) []int {
			var out []int
			for _, e := range s {
				if k := used[e]; k != -1 && !contains(out, k) {
					out = append(out, k)
				}
			}
			return out
		}

		// (0,1)-moves: free additions.
		for k := range p.Sets {
			if inPacking[k] || len(conflictsOf(p.Sets[k])) != 0 {
				continue
			}
			inPacking[k] = true
			for _, e := range p.Sets[k] {
				used[e] = k
			}
			improved = true
			moves++
			if o != nil {
				o("add", nil, []int{k})
			}
		}

		// (1,2)-moves: for each chosen set c, collect candidate sets
		// whose only conflict is c, then look for a disjoint pair.
		// Candidates are gathered per chosen set in index order so the
		// search stays deterministic.
		candidatesByChosen := make(map[int][]int)
		var chosenOrder []int
		for k := range p.Sets {
			if inPacking[k] {
				continue
			}
			conf := conflictsOf(p.Sets[k])
			if len(conf) == 1 {
				c := conf[0]
				if _, seen := candidatesByChosen[c]; !seen {
					chosenOrder = append(chosenOrder, c)
				}
				candidatesByChosen[c] = append(candidatesByChosen[c], k)
			}
		}
		sort.Ints(chosenOrder)
		for _, c := range chosenOrder {
			if !inPacking[c] {
				continue // already swapped out this pass
			}
			// Earlier swaps in this pass may have added sets that now
			// conflict with a candidate; keep only candidates whose
			// sole conflict is still c.
			var cands []int
			for _, k := range candidatesByChosen[c] {
				if inPacking[k] {
					continue
				}
				conf := conflictsOf(p.Sets[k])
				if len(conf) == 1 && conf[0] == c {
					cands = append(cands, k)
				}
			}
			a, b, ok := findDisjointPair(p, cands)
			if !ok {
				continue
			}
			inPacking[c] = false
			for _, e := range p.Sets[c] {
				used[e] = -1
			}
			for _, k := range [2]int{a, b} {
				inPacking[k] = true
				for _, e := range p.Sets[k] {
					used[e] = k
				}
			}
			improved = true
			moves++
			if o != nil {
				o("swap", []int{c}, []int{a, b})
			}
		}
	}

	var out []int
	for k, in := range inPacking {
		if in {
			out = append(out, k)
		}
	}
	return out
}

// Exact solves MSPP by branch-and-bound. It explores at most maxNodes
// search nodes (0 means unlimited) and reports whether the returned
// packing is provably optimal.
func Exact(p Problem, maxNodes int) (chosen []int, optimal bool) {
	if maxNodes <= 0 {
		maxNodes = int(^uint(0) >> 1)
	}
	// Seed the incumbent with local search so pruning bites early.
	best := LocalSearch(p)
	used := make([]bool, p.N)
	nodes := 0
	exhausted := true
	var cur []int

	// Order sets by size so small sets (cheap, low-conflict) come
	// first; the simple bound below is count-based.
	order := make([]int, len(p.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := p.Sets[order[a]], p.Sets[order[b]]
		if len(sa) != len(sb) {
			return len(sa) < len(sb)
		}
		return order[a] < order[b]
	})

	var rec func(pos int)
	rec = func(pos int) {
		nodes++
		if nodes > maxNodes {
			exhausted = false
			return
		}
		// Bound: even taking every remaining set cannot beat best.
		if len(cur)+(len(order)-pos) <= len(best) {
			return
		}
		if pos == len(order) {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		k := order[pos]
		if disjointFromUsed(p.Sets[k], used) {
			mark(p.Sets[k], used, true)
			cur = append(cur, k)
			rec(pos + 1)
			cur = cur[:len(cur)-1]
			mark(p.Sets[k], used, false)
		}
		rec(pos + 1)
	}
	rec(0)
	sort.Ints(best)
	return best, exhausted
}

func disjointFromUsed(s []int, used []bool) bool {
	for _, e := range s {
		if used[e] {
			return false
		}
	}
	return true
}

func mark(s []int, used []bool, v bool) {
	for _, e := range s {
		used[e] = v
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func findDisjointPair(p Problem, cands []int) (int, int, bool) {
	for ai := 0; ai < len(cands); ai++ {
		for bi := ai + 1; bi < len(cands); bi++ {
			if setsDisjoint(p.Sets[cands[ai]], p.Sets[cands[bi]]) {
				return cands[ai], cands[bi], true
			}
		}
	}
	return 0, 0, false
}

func setsDisjoint(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}
