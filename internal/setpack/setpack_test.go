package setpack

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Problem
		wantErr bool
	}{
		{name: "empty", p: Problem{}},
		{name: "valid", p: Problem{N: 4, Sets: [][]int{{0, 1}, {2, 3}}}},
		{name: "negative universe", p: Problem{N: -1}, wantErr: true},
		{name: "out of range", p: Problem{N: 2, Sets: [][]int{{0, 5}}}, wantErr: true},
		{name: "duplicate element", p: Problem{N: 3, Sets: [][]int{{1, 1}}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestIsPacking(t *testing.T) {
	p := Problem{N: 5, Sets: [][]int{{0, 1}, {1, 2}, {3, 4}}}
	if err := p.IsPacking([]int{0, 2}); err != nil {
		t.Errorf("valid packing rejected: %v", err)
	}
	if err := p.IsPacking([]int{0, 1}); err == nil {
		t.Error("overlapping packing accepted")
	}
	if err := p.IsPacking([]int{0, 0}); err == nil {
		t.Error("duplicate set accepted")
	}
	if err := p.IsPacking([]int{9}); err == nil {
		t.Error("out-of-range set accepted")
	}
}

func TestGreedyMaximal(t *testing.T) {
	p := Problem{N: 6, Sets: [][]int{{0, 1, 2}, {0, 3}, {4, 5}, {1, 4}}}
	chosen := Greedy(p)
	if err := p.IsPacking(chosen); err != nil {
		t.Fatalf("greedy produced invalid packing: %v", err)
	}
	// Maximality: no remaining set is disjoint from the packing.
	used := make([]bool, p.N)
	inPacking := make(map[int]bool)
	for _, k := range chosen {
		inPacking[k] = true
		for _, e := range p.Sets[k] {
			used[e] = true
		}
	}
	for k, s := range p.Sets {
		if inPacking[k] {
			continue
		}
		if disjointFromUsed(s, used) {
			t.Errorf("greedy is not maximal: set %d could be added", k)
		}
	}
}

func TestExactKnown(t *testing.T) {
	// Optimal is {0,3} and {1,2} and {4,5}: 3 sets; the big set blocks
	// two of them.
	p := Problem{N: 6, Sets: [][]int{
		{0, 1, 2, 3},
		{0, 3},
		{1, 2},
		{4, 5},
	}}
	chosen, optimal := Exact(p, 0)
	if !optimal {
		t.Fatal("Exact did not prove optimality on a tiny instance")
	}
	if len(chosen) != 3 {
		t.Errorf("Exact chose %d sets (%v), want 3", len(chosen), chosen)
	}
	if err := p.IsPacking(chosen); err != nil {
		t.Errorf("Exact packing invalid: %v", err)
	}
}

func TestLocalSearchImprovesGreedy(t *testing.T) {
	// Greedy (smallest-first, then index) takes {1,2} first and blocks
	// both {0,1} and {2,3}; local search swaps it out for the pair.
	p := Problem{N: 4, Sets: [][]int{{1, 2}, {0, 1}, {2, 3}}}
	greedy := Greedy(p)
	if len(greedy) != 1 {
		t.Fatalf("test premise broken: greedy = %v", greedy)
	}
	ls := LocalSearch(p)
	if err := p.IsPacking(ls); err != nil {
		t.Fatalf("local search invalid: %v", err)
	}
	if len(ls) != 2 {
		t.Errorf("local search chose %d sets (%v), want 2", len(ls), ls)
	}
}

func randomProblem(rng *rand.Rand, n, numSets, maxSize int) Problem {
	p := Problem{N: n}
	for k := 0; k < numSets; k++ {
		size := 2 + rng.Intn(maxSize-1)
		perm := rng.Perm(n)
		set := append([]int(nil), perm[:size]...)
		p.Sets = append(p.Sets, set)
	}
	return p
}

func TestLocalSearchRatioAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(9)
		p := randomProblem(rng, n, 2+rng.Intn(14), 3)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator bug: %v", err)
		}

		ls := LocalSearch(p)
		if err := p.IsPacking(ls); err != nil {
			t.Fatalf("trial %d: invalid local-search packing: %v", trial, err)
		}
		opt, optimal := Exact(p, 0)
		if !optimal {
			t.Fatalf("trial %d: exact did not finish", trial)
		}
		// Guarantee: |LS| >= 3/(k+2) * OPT with k = 3.
		if 5*len(ls) < 3*len(opt) {
			t.Fatalf("trial %d: local search %d vs optimum %d violates 3/5 bound",
				trial, len(ls), len(opt))
		}
	}
}

func TestExactMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		p := randomProblem(rng, n, 1+rng.Intn(8), 3)
		opt, optimal := Exact(p, 0)
		if !optimal {
			t.Fatalf("trial %d: exact did not finish", trial)
		}
		want := bruteForceOptimum(p)
		if len(opt) != want {
			t.Fatalf("trial %d: exact = %d, brute force = %d (sets %v)",
				trial, len(opt), want, p.Sets)
		}
	}
}

// bruteForceOptimum enumerates all subsets of sets.
func bruteForceOptimum(p Problem) int {
	best := 0
	var rec func(k int, used []bool, count int)
	rec = func(k int, used []bool, count int) {
		if count > best {
			best = count
		}
		if k == len(p.Sets) {
			return
		}
		rec(k+1, used, count)
		if disjointFromUsed(p.Sets[k], used) {
			mark(p.Sets[k], used, true)
			rec(k+1, used, count+1)
			mark(p.Sets[k], used, false)
		}
	}
	rec(0, make([]bool, p.N), 0)
	return best
}

func TestExactNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := randomProblem(rng, 30, 60, 3)
	chosen, optimal := Exact(p, 5)
	if optimal {
		t.Error("Exact claimed optimality with a 5-node budget on a large instance")
	}
	if err := p.IsPacking(chosen); err != nil {
		t.Errorf("budgeted Exact returned invalid packing: %v", err)
	}
	// Budgeted result is still at least the local-search incumbent.
	if len(chosen) < len(LocalSearch(p)) {
		t.Error("budgeted Exact returned worse than its local-search seed")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := Problem{N: 0}
	if got := Greedy(p); len(got) != 0 {
		t.Errorf("Greedy(empty) = %v", got)
	}
	if got := LocalSearch(p); len(got) != 0 {
		t.Errorf("LocalSearch(empty) = %v", got)
	}
	got, optimal := Exact(p, 0)
	if len(got) != 0 || !optimal {
		t.Errorf("Exact(empty) = %v, %v", got, optimal)
	}
}

func TestMaxSetSize(t *testing.T) {
	if got := (Problem{}).MaxSetSize(); got != 0 {
		t.Errorf("MaxSetSize(empty) = %d", got)
	}
	p := Problem{N: 5, Sets: [][]int{{0}, {1, 2, 3}, {0, 4}}}
	if got := p.MaxSetSize(); got != 3 {
		t.Errorf("MaxSetSize = %d, want 3", got)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := randomProblem(rng, 12, 20, 3)
	a := LocalSearch(p)
	b := LocalSearch(p)
	if len(a) != len(b) {
		t.Fatal("LocalSearch not deterministic in size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LocalSearch not deterministic in selection")
		}
	}
}
