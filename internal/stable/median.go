package stable

import (
	"sort"

	"stabledispatch/internal/pref"
)

// MedianStable returns the median stable matching: for every request,
// sort its partners across all stable matchings by its own preference and
// take the middle one. By the lattice structure of stable matchings
// (Teo & Sethuraman; the paper cites this line of work as [13]) the
// induced assignment is itself a stable matching, sitting halfway between
// the passenger-optimal and taxi-optimal extremes — a natural fairness
// compromise for the platform.
//
// The guarantee requires the full lattice: the enumeration is capped at
// limit matchings (0 = unlimited), and if the cap truncated the set (or
// numeric ties produced an inconsistent selection) the per-request median
// may not be stable, in which case the middle enumerated matching is
// returned instead — always a genuine stable matching.
func MedianStable(mk *pref.Market, limit int) Matching {
	all := AllStableMatchings(mk, limit)
	if len(all) == 1 {
		return all[0]
	}
	r := mk.NumRequests()
	t := mk.NumTaxis()
	median := NewMatching(r, t)
	for j := 0; j < r; j++ {
		partners := make([]int, len(all))
		for k, m := range all {
			partners[k] = m.ReqPartner[j]
		}
		// Sort by request j's preference; by the rural-hospitals
		// property a request unmatched in one stable matching is
		// unmatched in all, so Unmatched never mixes with real
		// partners here.
		sort.Slice(partners, func(a, b int) bool {
			pa, pb := partners[a], partners[b]
			if pa == Unmatched || pb == Unmatched {
				return pb == Unmatched && pa != Unmatched
			}
			return mk.ReqPrefers(j, pa, pb)
		})
		median.ReqPartner[j] = partners[(len(partners)-1)/2]
	}
	collision := false
	for j, i := range median.ReqPartner {
		if i == Unmatched {
			continue
		}
		if median.TaxiPartner[i] != Unmatched {
			collision = true
			break
		}
		median.TaxiPartner[i] = j
	}
	if collision || IsStable(mk, median) != nil {
		return all[(len(all)-1)/2]
	}
	return median
}
