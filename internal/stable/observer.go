package stable

import "stabledispatch/internal/pref"

// Observer receives the causal decisions of one deferred-acceptance run.
// It exists for decision-provenance tracing (internal/dtrace): package
// stable works on market indices and knows nothing about fleet IDs, so
// the dispatcher layer supplies callbacks that translate and record.
//
// Callbacks run synchronously inside the matching loop; they must be
// cheap and must not call back into the matching. A nil *Observer (or a
// nil callback field) is silently skipped, keeping the untraced path
// allocation-free.
type Observer struct {
	// Proposal is invoked once per proposal. proposer is the proposing-
	// side index (a request under Algorithm 1, a taxi under the
	// taxi-proposing mirror), target the receiving-side index, and rival
	// the receiver's tentative partner before the proposal (Unmatched if
	// it was free). outcome is "accepted" (free receiver), "displaced"
	// (accepted, evicting rival), or "refused" (receiver kept rival).
	Proposal func(proposer, target, rival int, outcome string)
	// Exhausted is invoked when a proposer runs off the end of its
	// preference list and settles for its dummy partner (stays
	// unmatched this run).
	Exhausted func(proposer int)
}

// proposal reports one proposal to the observer if set.
func (o *Observer) proposal(proposer, target, rival int, outcome string) {
	if o != nil && o.Proposal != nil {
		o.Proposal(proposer, target, rival, outcome)
	}
}

// exhausted reports a proposer reaching its dummy if set.
func (o *Observer) exhausted(proposer int) {
	if o != nil && o.Exhausted != nil {
		o.Exhausted(proposer)
	}
}

// PassengerOptimalObserved is PassengerOptimal with per-decision
// callbacks; a nil observer makes it identical to PassengerOptimal.
func PassengerOptimalObserved(mk *pref.Market, o *Observer) Matching {
	state, _ := passengerOptimalState(mk, nil, o)
	obsMatchings.Inc()
	return state.match
}

// TaxiOptimalObserved is TaxiOptimal with per-decision callbacks; the
// proposing side is the taxis, so Observer.Proposal receives taxi
// indices as proposer and request indices as target.
func TaxiOptimalObserved(mk *pref.Market, o *Observer) Matching {
	return taxiOptimal(mk, o)
}
