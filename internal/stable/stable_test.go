package stable

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"stabledispatch/internal/pref"
)

// marketFromCosts builds a fully acceptable market from explicit cost
// matrices: reqCost[j][i] and taxiCost[i][j].
func marketFromCosts(reqCost, taxiCost [][]float64) *pref.Market {
	r := len(reqCost)
	t := len(taxiCost)
	m := &pref.Market{
		ReqCost:  reqCost,
		TaxiCost: taxiCost,
		ReqOK:    make([][]bool, r),
		TaxiOK:   make([][]bool, t),
	}
	for j := 0; j < r; j++ {
		m.ReqOK[j] = make([]bool, t)
		for i := range m.ReqOK[j] {
			m.ReqOK[j][i] = true
		}
	}
	for i := 0; i < t; i++ {
		m.TaxiOK[i] = make([]bool, r)
		for j := range m.TaxiOK[i] {
			m.TaxiOK[i][j] = true
		}
	}
	return m
}

// randomMarket generates a market with integer-ish costs (to exercise
// tie-breaking) and random acceptability.
func randomMarket(rng *rand.Rand, r, t int, acceptProb float64) *pref.Market {
	m := &pref.Market{
		ReqCost:  make([][]float64, r),
		TaxiCost: make([][]float64, t),
		ReqOK:    make([][]bool, r),
		TaxiOK:   make([][]bool, t),
	}
	for j := 0; j < r; j++ {
		m.ReqCost[j] = make([]float64, t)
		m.ReqOK[j] = make([]bool, t)
		for i := 0; i < t; i++ {
			m.ReqCost[j][i] = float64(rng.Intn(6))
			m.ReqOK[j][i] = rng.Float64() < acceptProb
		}
	}
	for i := 0; i < t; i++ {
		m.TaxiCost[i] = make([]float64, r)
		m.TaxiOK[i] = make([]bool, r)
		for j := 0; j < r; j++ {
			m.TaxiCost[i][j] = float64(rng.Intn(6))
			m.TaxiOK[i][j] = rng.Float64() < acceptProb
		}
	}
	return m
}

// TestAlgorithm1PaperExample encodes the worked example of the paper's
// Fig. 2: the first request is accepted by its top choice, the second is
// refused everywhere acceptable and ends unserved, and the third
// displaces the first, which then settles for its second choice.
func TestAlgorithm1PaperExample(t *testing.T) {
	inf := math.Inf(1)
	// Request costs: r0 ranks t0 < t1; r1 accepts only t0; r2 accepts
	// only t0.
	reqCost := [][]float64{
		{1, 2, inf},
		{1, inf, inf},
		{1, inf, inf},
	}
	// Taxi t0 ranks r2 < r0 < r1.
	taxiCost := [][]float64{
		{2, 3, 1},
		{1, 1, 1},
		{1, 1, 1},
	}
	mk := marketFromCosts(reqCost, taxiCost)
	// Encode the "inf" entries as behind the dummy.
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if math.IsInf(reqCost[j][i], 1) {
				mk.ReqOK[j][i] = false
			}
		}
	}

	m := PassengerOptimal(mk)
	if err := IsStable(mk, m); err != nil {
		t.Fatalf("IsStable: %v", err)
	}
	want := []int{1, Unmatched, 0} // r0->t1, r1 unserved, r2->t0
	for j, w := range want {
		if m.ReqPartner[j] != w {
			t.Errorf("ReqPartner[%d] = %d, want %d (full: %v)", j, m.ReqPartner[j], w, m.ReqPartner)
		}
	}
}

// TestAlgorithm2PaperExample mirrors the Fig. 3 walk-through: from the
// passenger-optimal matching exactly one further stable matching is
// reachable, and it is the taxi-optimal one.
func TestAlgorithm2PaperExample(t *testing.T) {
	// Crossed preferences: two stable matchings.
	reqCost := [][]float64{
		{1, 2}, // r0: t0 then t1
		{2, 1}, // r1: t1 then t0
	}
	taxiCost := [][]float64{
		{2, 1}, // t0: r1 then r0
		{1, 2}, // t1: r0 then r1
	}
	mk := marketFromCosts(reqCost, taxiCost)

	all := AllStableMatchings(mk, 0)
	if len(all) != 2 {
		t.Fatalf("AllStableMatchings returned %d matchings, want 2: %v", len(all), all)
	}
	po := all[0]
	if po.ReqPartner[0] != 0 || po.ReqPartner[1] != 1 {
		t.Errorf("passenger-optimal = %v, want [0 1]", po.ReqPartner)
	}
	to := all[1]
	if to.ReqPartner[0] != 1 || to.ReqPartner[1] != 0 {
		t.Errorf("second matching = %v, want taxi-optimal [1 0]", to.ReqPartner)
	}
	if got := TaxiOptimal(mk); !got.Equal(to) {
		t.Errorf("TaxiOptimal = %v, want %v", got.ReqPartner, to.ReqPartner)
	}
}

func TestPassengerOptimalEmpty(t *testing.T) {
	mk := marketFromCosts(nil, nil)
	m := PassengerOptimal(mk)
	if len(m.ReqPartner) != 0 || len(m.TaxiPartner) != 0 {
		t.Errorf("empty market matching = %v", m)
	}
	all := AllStableMatchings(mk, 0)
	if len(all) != 1 {
		t.Errorf("empty market has %d stable matchings, want 1 (the empty one)", len(all))
	}
}

func TestNoAcceptablePairs(t *testing.T) {
	mk := randomMarket(rand.New(rand.NewSource(1)), 4, 3, 0 /* nothing acceptable */)
	m := PassengerOptimal(mk)
	if m.Size() != 0 {
		t.Errorf("Size = %d, want 0", m.Size())
	}
	if err := IsStable(mk, m); err != nil {
		t.Errorf("IsStable: %v", err)
	}
}

func TestUnequalSides(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ r, t int }{{5, 2}, {2, 5}, {1, 7}, {7, 1}, {6, 6}}
	for _, sh := range shapes {
		mk := randomMarket(rng, sh.r, sh.t, 0.9)
		m := PassengerOptimal(mk)
		if err := IsStable(mk, m); err != nil {
			t.Errorf("%dx%d passenger-optimal unstable: %v", sh.r, sh.t, err)
		}
		mt := TaxiOptimal(mk)
		if err := IsStable(mk, mt); err != nil {
			t.Errorf("%dx%d taxi-optimal unstable: %v", sh.r, sh.t, err)
		}
	}
}

func TestPassengerOptimalStableRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		r, tt := 1+rng.Intn(7), 1+rng.Intn(7)
		mk := randomMarket(rng, r, tt, 0.3+rng.Float64()*0.7)
		m := PassengerOptimal(mk)
		if err := IsStable(mk, m); err != nil {
			t.Fatalf("trial %d (%dx%d): %v\nmatching: %v", trial, r, tt, err, m.ReqPartner)
		}
	}
}

func TestEnumerationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.4+rng.Float64()*0.6)

		want, err := BruteForceAll(mk, 8)
		if err != nil {
			t.Fatalf("BruteForceAll: %v", err)
		}
		got := AllStableMatchings(mk, 0)

		wantKeys := make(map[string]bool, len(want))
		for _, m := range want {
			wantKeys[m.Key()] = true
		}
		gotKeys := make(map[string]bool, len(got))
		for _, m := range got {
			if gotKeys[m.Key()] {
				t.Fatalf("trial %d: duplicate matching %v (Theorem 4 violated)", trial, m.ReqPartner)
			}
			gotKeys[m.Key()] = true
		}
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d (%dx%d): enumeration found %d stable matchings, brute force %d",
				trial, r, tt, len(gotKeys), len(wantKeys))
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Fatalf("trial %d: matching %s missing from enumeration", trial, k)
			}
		}
	}
}

func TestPassengerOptimality(t *testing.T) {
	// Property 2: in Algorithm 1's output every request has its best
	// partner across all stable matchings, and every taxi its worst.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.5+rng.Float64()*0.5)
		all, err := BruteForceAll(mk, 8)
		if err != nil {
			t.Fatalf("BruteForceAll: %v", err)
		}
		po := PassengerOptimal(mk)
		to := TaxiOptimal(mk)
		for _, m := range all {
			for j := 0; j < r; j++ {
				if worseForReq(mk, j, po.ReqPartner[j], m.ReqPartner[j]) {
					t.Fatalf("trial %d: request %d does better in %v than in passenger-optimal %v",
						trial, j, m.ReqPartner, po.ReqPartner)
				}
			}
			for i := 0; i < tt; i++ {
				if worseForTaxi(mk, i, to.TaxiPartner[i], m.TaxiPartner[i]) {
					t.Fatalf("trial %d: taxi %d does better in %v than in taxi-optimal",
						trial, i, m.ReqPartner)
				}
			}
		}
	}
}

// worseForReq reports whether partner got is strictly worse for request j
// than alternative alt (dummies are worst among acceptable options).
func worseForReq(mk *pref.Market, j, got, alt int) bool {
	if got == alt {
		return false
	}
	if got == Unmatched {
		return alt != Unmatched
	}
	if alt == Unmatched {
		return false
	}
	return mk.ReqPrefers(j, alt, got)
}

func worseForTaxi(mk *pref.Market, i, got, alt int) bool {
	if got == alt {
		return false
	}
	if got == Unmatched {
		return alt != Unmatched
	}
	if alt == Unmatched {
		return false
	}
	return mk.TaxiPrefers(i, alt, got)
}

func TestRuralHospitalsProperty(t *testing.T) {
	// Theorem 2 and its mirror: the set of served requests (and of
	// dispatched taxis) is identical across all stable matchings.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.5)
		all := AllStableMatchings(mk, 0)
		base := all[0]
		for _, m := range all[1:] {
			for j := 0; j < r; j++ {
				if (base.ReqPartner[j] == Unmatched) != (m.ReqPartner[j] == Unmatched) {
					t.Fatalf("trial %d: request %d served in one stable matching but not another", trial, j)
				}
			}
			for i := 0; i < tt; i++ {
				if (base.TaxiPartner[i] == Unmatched) != (m.TaxiPartner[i] == Unmatched) {
					t.Fatalf("trial %d: taxi %d dispatched in one stable matching but not another", trial, i)
				}
			}
		}
	}
}

func TestTaxiOptimalMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.6)
		all := AllStableMatchings(mk, 0)
		to := TaxiOptimal(mk)
		if err := IsStable(mk, to); err != nil {
			t.Fatalf("trial %d: taxi-optimal unstable: %v", trial, err)
		}
		// The taxi-proposing matching must be in the enumerated set
		// and weakly best for every taxi.
		found := false
		for _, m := range all {
			if m.Equal(to) {
				found = true
			}
			for i := 0; i < tt; i++ {
				if worseForTaxi(mk, i, to.TaxiPartner[i], m.TaxiPartner[i]) {
					t.Fatalf("trial %d: taxi %d prefers enumerated matching over TaxiOptimal", trial, i)
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: TaxiOptimal %v not among %d enumerated stable matchings",
				trial, to.ReqPartner, len(all))
		}
	}
}

func TestAllStableMatchingsLimit(t *testing.T) {
	// Interleaved crossed preferences yield multiple stable matchings;
	// the limit must cap the result length.
	reqCost := [][]float64{
		{1, 2, 3, 4},
		{2, 1, 4, 3},
		{3, 4, 1, 2},
		{4, 3, 2, 1},
	}
	taxiCost := [][]float64{
		{4, 3, 2, 1},
		{3, 4, 1, 2},
		{2, 1, 4, 3},
		{1, 2, 3, 4},
	}
	mk := marketFromCosts(reqCost, taxiCost)
	all := AllStableMatchings(mk, 0)
	if len(all) < 3 {
		t.Fatalf("expected a rich instance, got %d stable matchings", len(all))
	}
	capped := AllStableMatchings(mk, 2)
	if len(capped) != 2 {
		t.Errorf("limit 2 returned %d matchings", len(capped))
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mk := randomMarket(rng, 6, 6, 0.7)
	m1 := PassengerOptimal(mk)
	m2 := PassengerOptimal(mk)
	if !m1.Equal(m2) {
		t.Error("PassengerOptimal is not deterministic")
	}
	a1 := AllStableMatchings(mk, 0)
	a2 := AllStableMatchings(mk, 0)
	if len(a1) != len(a2) {
		t.Fatal("AllStableMatchings is not deterministic")
	}
	for i := range a1 {
		if !a1[i].Equal(a2[i]) {
			t.Fatal("AllStableMatchings order is not deterministic")
		}
	}
}

func TestIsStableDetectsViolations(t *testing.T) {
	reqCost := [][]float64{
		{1, 2},
		{2, 1},
	}
	taxiCost := [][]float64{
		{1, 2},
		{2, 1},
	}
	mk := marketFromCosts(reqCost, taxiCost)

	// Unique stable matching pairs r0-t0, r1-t1. The swap is blocked.
	bad := NewMatching(2, 2)
	bad.ReqPartner[0], bad.TaxiPartner[1] = 1, 0
	bad.ReqPartner[1], bad.TaxiPartner[0] = 0, 1
	if err := IsStable(mk, bad); err == nil {
		t.Error("IsStable accepted a matching with a blocking pair")
	}

	// Leaving everyone unmatched is also blocked (dummies prefer
	// non-dummies).
	empty := NewMatching(2, 2)
	if err := IsStable(mk, empty); err == nil {
		t.Error("IsStable accepted the empty matching despite mutual acceptability")
	}

	// Inconsistent pairing must be rejected.
	broken := NewMatching(2, 2)
	broken.ReqPartner[0] = 1 // taxi 1 does not point back
	if err := IsStable(mk, broken); err == nil {
		t.Error("IsStable accepted an inconsistent matching")
	}

	// Matching behind a dummy must be rejected.
	mk.ReqOK[0][0] = false
	irr := NewMatching(2, 2)
	irr.ReqPartner[0], irr.TaxiPartner[0] = 0, 0
	if err := IsStable(mk, irr); err == nil {
		t.Error("IsStable accepted an individually irrational pair")
	}
}

func TestCompanyOptimal(t *testing.T) {
	// Two stable matchings; the objective prefers the taxi-optimal one.
	reqCost := [][]float64{
		{1, 2},
		{2, 1},
	}
	taxiCost := [][]float64{
		{2, 1},
		{1, 2},
	}
	mk := marketFromCosts(reqCost, taxiCost)
	objective := func(m Matching) float64 {
		// Score by summed request cost; the taxi-optimal matching
		// has the larger value, so negate to make it win.
		total := 0.0
		for j, i := range m.ReqPartner {
			if i != Unmatched {
				total += mk.ReqCost[j][i]
			}
		}
		return -total
	}
	best := CompanyOptimal(mk, objective, 0)
	if best.ReqPartner[0] != 1 || best.ReqPartner[1] != 0 {
		t.Errorf("CompanyOptimal = %v, want the taxi-optimal matching", best.ReqPartner)
	}
	if err := IsStable(mk, best); err != nil {
		t.Errorf("CompanyOptimal result unstable: %v", err)
	}
}

func TestMatchingHelpers(t *testing.T) {
	m := NewMatching(3, 2)
	if m.Size() != 0 {
		t.Errorf("empty Size = %d", m.Size())
	}
	m.ReqPartner[1] = 0
	m.TaxiPartner[0] = 1
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1", m.Size())
	}
	c := m.Clone()
	c.ReqPartner[1] = Unmatched
	if m.ReqPartner[1] != 0 {
		t.Error("Clone aliases the original")
	}
	if m.Equal(c) {
		t.Error("Equal = true for different matchings")
	}
	if m.Key() == c.Key() {
		t.Error("Key collision for different matchings")
	}
	other := NewMatching(2, 2)
	if m.Equal(other) {
		t.Error("Equal = true for different sizes")
	}
}

func TestBruteForceRefusesLargeInstances(t *testing.T) {
	mk := randomMarket(rand.New(rand.NewSource(9)), 10, 3, 0.5)
	if _, err := BruteForceAll(mk, 8); err == nil {
		t.Error("BruteForceAll accepted an oversized instance")
	}
}

func TestBlockingPairsAgreesWithIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.5)

		// A stable matching has no blocking pairs.
		po := PassengerOptimal(mk)
		if pairs := BlockingPairs(mk, po); len(pairs) != 0 {
			t.Fatalf("trial %d: stable matching has blocking pairs %v", trial, pairs)
		}

		// A random (possibly unstable) matching: BlockingPairs is
		// empty exactly when IsStable passes.
		random := NewMatching(r, tt)
		for j := 0; j < r; j++ {
			if rng.Float64() < 0.5 {
				i := rng.Intn(tt)
				if random.TaxiPartner[i] == Unmatched {
					random.ReqPartner[j] = i
					random.TaxiPartner[i] = j
				}
			}
		}
		pairs := BlockingPairs(mk, random)
		stableErr := IsStable(mk, random)
		if (len(pairs) == 0) != (stableErr == nil) {
			t.Fatalf("trial %d: %d blocking pairs but IsStable = %v", trial, len(pairs), stableErr)
		}
	}
}

func TestBlockingPairsDescribesViolation(t *testing.T) {
	reqCost := [][]float64{
		{1, 2},
		{2, 1},
	}
	taxiCost := [][]float64{
		{1, 2},
		{2, 1},
	}
	mk := marketFromCosts(reqCost, taxiCost)
	// Swap against everyone's preference: r0-t1, r1-t0 makes (0,0) and
	// (1,1) blocking.
	bad := NewMatching(2, 2)
	bad.ReqPartner[0], bad.TaxiPartner[1] = 1, 0
	bad.ReqPartner[1], bad.TaxiPartner[0] = 0, 1
	pairs := BlockingPairs(mk, bad)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2", pairs)
	}
	if pairs[0].Request != 0 || pairs[0].Taxi != 0 {
		t.Errorf("first pair = %+v", pairs[0])
	}
	if s := pairs[0].String(); !strings.Contains(s, "r0") || !strings.Contains(s, "t0") {
		t.Errorf("String = %q", s)
	}

	// An irrational pairing is reported too.
	mk.ReqOK[0][1] = false
	pairs = BlockingPairs(mk, bad)
	found := false
	for _, p := range pairs {
		if p.Request == 0 && p.Taxi == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("irrational pair not reported: %v", pairs)
	}

	// Unmatched partners render as dummy.
	empty := NewMatching(2, 2)
	mk2 := marketFromCosts(reqCost, taxiCost)
	pairs = BlockingPairs(mk2, empty)
	if len(pairs) == 0 || !strings.Contains(pairs[0].String(), "dummy") {
		t.Errorf("dummy rendering missing: %v", pairs)
	}
}
