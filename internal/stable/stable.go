// Package stable implements the paper's matching core: Algorithm 1
// (non-sharing taxi dispatch via passenger-proposing deferred acceptance
// with dummy partners), Algorithm 2 (enumerating all stable matchings via
// BreakDispatch under Rules 1–3), the taxi-optimal matching, and
// company-side selection among the stable matchings.
//
// Terminology follows the paper: passengers play the proposing side of
// the Gale–Shapley procedure, so Algorithm 1 yields the passenger-optimal
// stable matching (Property 2). Dummy partners (Theorem 1) are encoded by
// the acceptability bits of pref.Market — a pair behind either dummy is
// simply never proposed to and never accepted.
package stable

import (
	"fmt"

	"stabledispatch/internal/pref"
)

// Unmatched marks a request or taxi with a dummy partner (no dispatch).
const Unmatched = -1

// Matching is a taxi dispatch schedule S: a partial matching between
// requests and taxis.
type Matching struct {
	// ReqPartner[j] is the taxi dispatched to request j, or Unmatched.
	ReqPartner []int
	// TaxiPartner[i] is the request taxi i serves, or Unmatched.
	TaxiPartner []int
}

// NewMatching returns an empty matching for r requests and t taxis.
func NewMatching(r, t int) Matching {
	m := Matching{
		ReqPartner:  make([]int, r),
		TaxiPartner: make([]int, t),
	}
	for j := range m.ReqPartner {
		m.ReqPartner[j] = Unmatched
	}
	for i := range m.TaxiPartner {
		m.TaxiPartner[i] = Unmatched
	}
	return m
}

// Clone returns a deep copy of the matching.
func (m Matching) Clone() Matching {
	c := Matching{
		ReqPartner:  make([]int, len(m.ReqPartner)),
		TaxiPartner: make([]int, len(m.TaxiPartner)),
	}
	copy(c.ReqPartner, m.ReqPartner)
	copy(c.TaxiPartner, m.TaxiPartner)
	return c
}

// Size returns the number of matched request-taxi pairs.
func (m Matching) Size() int {
	n := 0
	for _, p := range m.ReqPartner {
		if p != Unmatched {
			n++
		}
	}
	return n
}

// Equal reports whether two matchings pair everyone identically.
func (m Matching) Equal(o Matching) bool {
	if len(m.ReqPartner) != len(o.ReqPartner) {
		return false
	}
	for j := range m.ReqPartner {
		if m.ReqPartner[j] != o.ReqPartner[j] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity for deduplication in tests.
func (m Matching) Key() string {
	return fmt.Sprint(m.ReqPartner)
}

// market state shared by Algorithm 1, Algorithm 2, and the verifier.
// prefs[j] is request j's mutually acceptable taxi list, most preferred
// first; next[j] is the index of the entry request j will propose to
// next (entries before it have already refused j or been left by j).
type gsState struct {
	match Matching
	next  []int
}

func (s gsState) clone() gsState {
	c := gsState{
		match: s.match.Clone(),
		next:  make([]int, len(s.next)),
	}
	copy(c.next, s.next)
	return c
}

// PassengerOptimal runs Algorithm 1 (Non-Sharing Taxi Dispatch) and
// returns the passenger-optimal stable matching: every request gets its
// best partner among all stable matchings, every taxi its worst
// (Property 2). Requests and taxis whose preference order starts with the
// dummy are never dispatched (Property 1).
func PassengerOptimal(mk *pref.Market) Matching {
	state, _ := passengerOptimalState(mk, nil, nil)
	obsMatchings.Inc()
	return state.match
}

// passengerOptimalState runs Algorithm 1 and returns the full proposal
// state, which Algorithm 2 continues from. prefs may be nil, in which
// case the preference lists are computed here; otherwise it must be the
// market's request preference lists. o may be nil.
func passengerOptimalState(mk *pref.Market, prefs [][]int, o *Observer) (gsState, [][]int) {
	r, t := mk.NumRequests(), mk.NumTaxis()
	if prefs == nil {
		prefs = make([][]int, r)
		for j := 0; j < r; j++ {
			prefs[j] = mk.ReqPrefList(j)
		}
	}
	state := gsState{
		match: NewMatching(r, t),
		next:  make([]int, r),
	}
	for j := 0; j < r; j++ {
		propose(mk, prefs, &state, j, o)
	}
	return state, prefs
}

// propose is the paper's Proposal/Refusal pair: request j proposes down
// its preference list; a displaced request immediately re-proposes
// (iteratively rather than recursively). o may be nil.
func propose(mk *pref.Market, prefs [][]int, s *gsState, j int, o *Observer) {
	proposals, displacements := uint64(0), uint64(0)
	defer func() {
		obsProposals.Add(proposals)
		obsDisplacements.Add(displacements)
	}()
	active := j
	for {
		if s.next[active] >= len(prefs[active]) {
			// Next entry is the dummy: active stays unserved.
			s.match.ReqPartner[active] = Unmatched
			o.exhausted(active)
			return
		}
		i := prefs[active][s.next[active]]
		s.next[active]++
		proposals++

		cur := s.match.TaxiPartner[i]
		if cur == Unmatched {
			// Refusal, lines 10-11: an undispatched taxi accepts
			// any request ahead of its dummy (the pref list
			// already guarantees mutual acceptability).
			s.match.TaxiPartner[i] = active
			s.match.ReqPartner[active] = i
			o.proposal(active, i, Unmatched, "accepted")
			return
		}
		if mk.TaxiPrefers(i, active, cur) {
			// Refusal, lines 12-14: the taxi upgrades and the
			// displaced request goes back to proposing.
			s.match.TaxiPartner[i] = active
			s.match.ReqPartner[active] = i
			s.match.ReqPartner[cur] = Unmatched
			displacements++
			o.proposal(active, i, cur, "displaced")
			active = cur
			continue
		}
		// Refusal, line 16: taxi keeps its partner; active proposes
		// to its next entry.
		o.proposal(active, i, cur, "refused")
	}
}

// TaxiOptimal returns the taxi-optimal stable matching: among all stable
// matchings every taxi gets its best partner and every request its worst.
// It runs the mirror-image of Algorithm 1 with taxis proposing, which by
// the lattice structure of stable matchings (and confirmed against the
// Algorithm 2 enumeration in tests) is exactly the matching the paper
// calls NSTD-T.
func TaxiOptimal(mk *pref.Market) Matching {
	return taxiOptimal(mk, nil)
}

// taxiOptimal is the taxi-proposing deferred acceptance with optional
// per-decision callbacks (o may be nil).
func taxiOptimal(mk *pref.Market, o *Observer) Matching {
	r, t := mk.NumRequests(), mk.NumTaxis()
	prefs := make([][]int, t)
	for i := 0; i < t; i++ {
		prefs[i] = mk.TaxiPrefList(i)
	}
	match := NewMatching(r, t)
	next := make([]int, t)
	proposals, displacements := uint64(0), uint64(0)
	for i := 0; i < t; i++ {
		active := i
		for {
			if next[active] >= len(prefs[active]) {
				match.TaxiPartner[active] = Unmatched
				o.exhausted(active)
				break
			}
			j := prefs[active][next[active]]
			next[active]++
			proposals++

			cur := match.ReqPartner[j]
			if cur == Unmatched {
				match.ReqPartner[j] = active
				match.TaxiPartner[active] = j
				o.proposal(active, j, Unmatched, "accepted")
				break
			}
			if mk.ReqPrefers(j, active, cur) {
				match.ReqPartner[j] = active
				match.TaxiPartner[active] = j
				match.TaxiPartner[cur] = Unmatched
				displacements++
				o.proposal(active, j, cur, "displaced")
				active = cur
				continue
			}
			o.proposal(active, j, cur, "refused")
		}
	}
	obsProposals.Add(proposals)
	obsDisplacements.Add(displacements)
	obsMatchings.Inc()
	return match
}

// IsStable reports whether the matching is stable under Definition 1,
// returning a descriptive error naming the first violation found:
// either an individually irrational pair (someone matched behind their
// dummy) or a blocking pair — a request and taxi that both prefer each
// other over their current partners, where dummies prefer any acceptable
// non-dummy.
func IsStable(mk *pref.Market, m Matching) error {
	r, t := mk.NumRequests(), mk.NumTaxis()
	if len(m.ReqPartner) != r || len(m.TaxiPartner) != t {
		return fmt.Errorf("stable: matching sized %dx%d, want %dx%d",
			len(m.ReqPartner), len(m.TaxiPartner), r, t)
	}
	for j := 0; j < r; j++ {
		i := m.ReqPartner[j]
		if i == Unmatched {
			continue
		}
		if i < 0 || i >= t {
			return fmt.Errorf("stable: request %d matched to invalid taxi %d", j, i)
		}
		if m.TaxiPartner[i] != j {
			return fmt.Errorf("stable: request %d and taxi %d disagree on pairing", j, i)
		}
		if !mk.MutualOK(j, i) {
			return fmt.Errorf("stable: pair (r%d, t%d) is behind a dummy (individually irrational)", j, i)
		}
	}
	for j := 0; j < r; j++ {
		for i := 0; i < t; i++ {
			if m.ReqPartner[j] == i || !mk.MutualOK(j, i) {
				continue
			}
			// Request side: prefers i over its current partner,
			// where the dummy loses to any acceptable taxi.
			jWants := m.ReqPartner[j] == Unmatched || mk.ReqPrefers(j, i, m.ReqPartner[j])
			if !jWants {
				continue
			}
			iWants := m.TaxiPartner[i] == Unmatched || mk.TaxiPrefers(i, j, m.TaxiPartner[i])
			if iWants {
				return fmt.Errorf("stable: (r%d, t%d) is a blocking pair", j, i)
			}
		}
	}
	return nil
}
