package stable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedianStableIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.4+rng.Float64()*0.6)
		m := MedianStable(mk, 0)
		if err := IsStable(mk, m); err != nil {
			t.Fatalf("trial %d: median unstable: %v", trial, err)
		}
	}
}

func TestMedianStableBetweenExtremes(t *testing.T) {
	// For every request the median partner is weakly worse than the
	// passenger-optimal partner and weakly better than the
	// taxi-optimal partner.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := randomMarket(rng, r, tt, 0.6)
		med := MedianStable(mk, 0)
		po := PassengerOptimal(mk)
		to := TaxiOptimal(mk)
		for j := 0; j < r; j++ {
			if worseForReq(mk, j, po.ReqPartner[j], med.ReqPartner[j]) {
				t.Fatalf("trial %d: request %d does better under median than passenger-optimal", trial, j)
			}
			if worseForReq(mk, j, med.ReqPartner[j], to.ReqPartner[j]) {
				t.Fatalf("trial %d: request %d does worse under median than taxi-optimal", trial, j)
			}
		}
	}
}

func TestMedianStableFourRotations(t *testing.T) {
	// The 4-matching lattice from TestAllStableMatchingsLimit: the
	// median must be one of the middle matchings, not an extreme.
	reqCost := [][]float64{
		{1, 2, 3, 4},
		{2, 1, 4, 3},
		{3, 4, 1, 2},
		{4, 3, 2, 1},
	}
	taxiCost := [][]float64{
		{4, 3, 2, 1},
		{3, 4, 1, 2},
		{2, 1, 4, 3},
		{1, 2, 3, 4},
	}
	mk := marketFromCosts(reqCost, taxiCost)
	all := AllStableMatchings(mk, 0)
	if len(all) < 3 {
		t.Fatalf("premise: want >= 3 stable matchings, got %d", len(all))
	}
	med := MedianStable(mk, 0)
	if err := IsStable(mk, med); err != nil {
		t.Fatalf("median unstable: %v", err)
	}
	found := false
	for _, m := range all {
		if m.Equal(med) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("median %v not among the %d stable matchings", med.ReqPartner, len(all))
	}
}

func TestMedianStableTruncatedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		mk := randomMarket(rng, 5, 5, 0.8)
		// A cap of 2 truncates richer lattices; the result must still
		// be stable.
		m := MedianStable(mk, 2)
		if err := IsStable(mk, m); err != nil {
			t.Fatalf("trial %d: truncated median unstable: %v", trial, err)
		}
	}
}

// TestStableQuickProperties drives the core invariants through
// testing/quick: for any random market, Algorithm 1 is stable, idempotent
// and passenger-side rural-hospitals-consistent with the taxi-proposing
// mirror.
func TestStableQuickProperties(t *testing.T) {
	property := func(seed int64, rRaw, tRaw uint8, acceptRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + int(rRaw%7)
		tt := 1 + int(tRaw%7)
		accept := 0.2 + float64(acceptRaw%80)/100
		mk := randomMarket(rng, r, tt, accept)

		po := PassengerOptimal(mk)
		if IsStable(mk, po) != nil {
			return false
		}
		if !po.Equal(PassengerOptimal(mk)) {
			return false
		}
		to := TaxiOptimal(mk)
		if IsStable(mk, to) != nil {
			return false
		}
		// Rural hospitals across the two extremes.
		if po.Size() != to.Size() {
			return false
		}
		for j := 0; j < r; j++ {
			if (po.ReqPartner[j] == Unmatched) != (to.ReqPartner[j] == Unmatched) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompanyOptimalIsStableQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := randomMarket(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.3+rng.Float64()*0.7)
		objective := func(m Matching) float64 {
			total := 0.0
			for j, i := range m.ReqPartner {
				if i != Unmatched {
					total += mk.ReqCost[j][i] * mk.TaxiCost[i][j]
				}
			}
			return total
		}
		best := CompanyOptimal(mk, objective, 0)
		if IsStable(mk, best) != nil {
			return false
		}
		// The selected matching must indeed minimise the objective
		// over the enumerated set.
		for _, m := range AllStableMatchings(mk, 0) {
			if objective(m) < objective(best)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
