package stable

import (
	"math"

	"stabledispatch/internal/pref"
)

// AllStableMatchings implements Algorithm 2 (Non-Sharing Taxi Dispatch,
// All Schedules): starting from the passenger-optimal stable matching it
// recursively applies BreakDispatch under Rules 1–3, producing every
// stable matching exactly once (Theorems 3 and 4). The passenger-optimal
// matching is always first in the result.
//
// The number of stable matchings can be exponential in adversarial
// instances; limit caps how many are returned (0 or negative means no
// cap). Real dispatch frames have few stable matchings because distances
// rarely align, so the cap exists only as a safety valve.
func AllStableMatchings(mk *pref.Market, limit int) []Matching {
	if limit <= 0 {
		limit = math.MaxInt
	}
	state, prefs := passengerOptimalState(mk, nil, nil)
	e := &enumerator{mk: mk, prefs: prefs, limit: limit}
	e.results = append(e.results, state.match.Clone())
	e.explore(state, 0)
	return e.results
}

type enumerator struct {
	mk      *pref.Market
	prefs   [][]int
	results []Matching
	limit   int
}

// explore recursively breaks dispatches with non-decreasing request
// index, which is what makes each stable matching appear exactly once
// (Theorem 4): two different break sequences first diverge at some
// request, and Rule 2 stops the later sequence from re-routing the
// earlier request.
func (e *enumerator) explore(s gsState, minJ int) {
	if len(e.results) >= e.limit {
		return
	}
	for j := minJ; j < e.mk.NumRequests(); j++ {
		// Rule 3: breaking an unserved request can never succeed
		// (Theorem 2 — a request unserved in the passenger-optimal
		// matching is unserved in every stable matching).
		if s.match.ReqPartner[j] == Unmatched {
			continue
		}
		if next, ok := e.breakDispatch(s, j); ok {
			e.results = append(e.results, next.match.Clone())
			if len(e.results) >= e.limit {
				return
			}
			e.explore(next, j)
		}
	}
}

// breakDispatch is the paper's BreakDispatch sub-algorithm: it frees the
// pair (r_j, t) where t = S(r_j) and re-runs the proposal cascade with
// r_j proposing to its next entry. Per Rule 1 the freed taxi t only
// accepts a request it strictly prefers over r_j — accepting anyone worse
// would leave (r_j, t) blocking — and the operation succeeds exactly when
// t is re-matched this way. Per Rule 2 the cascade fails if it would
// displace a request with index < j. The cascade also fails if any
// request falls off the end of its preference list (re-matched to a
// dummy; the freed taxi would stay undispatched and block).
func (e *enumerator) breakDispatch(s gsState, j int) (gsState, bool) {
	t := s.match.ReqPartner[j]
	ns := s.clone()
	ns.match.ReqPartner[j] = Unmatched
	ns.match.TaxiPartner[t] = Unmatched

	active := j
	for {
		if ns.next[active] >= len(e.prefs[active]) {
			// active reached its dummy entry: no stable matching
			// down this branch (the freed taxi stays single).
			return gsState{}, false
		}
		i := e.prefs[active][ns.next[active]]
		ns.next[active]++

		if i == t {
			// Rule 1: the freed taxi holds out for a strictly
			// better request than the one it lost.
			if e.mk.TaxiPrefers(i, active, j) {
				ns.match.TaxiPartner[i] = active
				ns.match.ReqPartner[active] = i
				return ns, true
			}
			continue
		}
		cur := ns.match.TaxiPartner[i]
		if cur == Unmatched {
			// A taxi unmatched in the current stable matching is
			// unmatched in all of them (the taxi-side mirror of
			// Theorem 2); letting it absorb the cascade would
			// strand the freed taxi, so this branch is dead.
			return gsState{}, false
		}
		if e.mk.TaxiPrefers(i, active, cur) {
			if cur < j {
				// Rule 2: requests before r_j may not be moved.
				return gsState{}, false
			}
			ns.match.TaxiPartner[i] = active
			ns.match.ReqPartner[active] = i
			ns.match.ReqPartner[cur] = Unmatched
			active = cur
			continue
		}
	}
}

// CompanyObjective scores a stable matching from the platform's
// perspective; lower is better.
type CompanyObjective func(Matching) float64

// TotalPickupDistance returns a CompanyObjective that sums D(t_i, r_j^s)
// over matched pairs. By the rural-hospitals property (Theorem 2 and its
// taxi-side mirror) every stable matching serves the same requests with
// the same taxis, so per-ride commission revenue is identical across
// them; the company's remaining lever is fleet efficiency — idle
// kilometres burned before pickups — which this objective captures.
func TotalPickupDistance(inst *pref.Instance) CompanyObjective {
	return func(m Matching) float64 {
		total := 0.0
		for j, i := range m.ReqPartner {
			if i != Unmatched {
				total += inst.PickupDist[i][j]
			}
		}
		return total
	}
}

// CompanyOptimal enumerates the stable matchings (capped at limit) and
// returns the one minimising the objective. Ties go to the earliest
// matching found, so the passenger-optimal matching wins exact ties.
func CompanyOptimal(mk *pref.Market, objective CompanyObjective, limit int) Matching {
	all := AllStableMatchings(mk, limit)
	best := all[0]
	bestScore := objective(best)
	for _, m := range all[1:] {
		if score := objective(m); score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}
