package stable

import "stabledispatch/internal/obs"

// Gale–Shapley telemetry. Proposals are pref-list entries consumed
// (each is one Proposal/Refusal round of Algorithm 1 or its taxi-
// proposing mirror); displacements are the refusals that bump an
// already-matched partner back into the proposing pool. The hot loops
// accumulate locally and publish once per call, so the counters cost a
// couple of atomic adds per matching rather than per proposal.
var (
	obsProposals     = obs.GetOrCreateCounter("stable_gs_proposals_total")
	obsDisplacements = obs.GetOrCreateCounter("stable_gs_displacements_total")
	obsMatchings     = obs.GetOrCreateCounter("stable_gs_matchings_total")
)
