package stable

import (
	"fmt"

	"stabledispatch/internal/pref"
)

// BlockingPair is one stability violation: a request and taxi that both
// prefer each other over their partners in the matching.
type BlockingPair struct {
	Request int
	Taxi    int
	// ReqPartner and TaxiPartner are the violating parties' current
	// partners (Unmatched for a dummy).
	ReqPartner  int
	TaxiPartner int
}

// String implements fmt.Stringer.
func (b BlockingPair) String() string {
	return fmt.Sprintf("(r%d, t%d) blocks: r%d has %s, t%d has %s",
		b.Request, b.Taxi,
		b.Request, partnerName(b.ReqPartner, "t"),
		b.Taxi, partnerName(b.TaxiPartner, "r"))
}

func partnerName(p int, side string) string {
	if p == Unmatched {
		return "dummy"
	}
	return fmt.Sprintf("%s%d", side, p)
}

// BlockingPairs returns every stability violation of the matching, in
// (request, taxi) index order — the full diagnostic behind IsStable,
// which stops at the first. Individually irrational pairings (someone
// matched behind their dummy) are reported as a pair blocking with the
// dummy itself: (j, i) with both partners set to the offending match.
func BlockingPairs(mk *pref.Market, m Matching) []BlockingPair {
	var out []BlockingPair
	r, t := mk.NumRequests(), mk.NumTaxis()
	if len(m.ReqPartner) != r || len(m.TaxiPartner) != t {
		return nil
	}
	for j := 0; j < r; j++ {
		if i := m.ReqPartner[j]; i != Unmatched && !mk.MutualOK(j, i) {
			out = append(out, BlockingPair{
				Request: j, Taxi: i, ReqPartner: i, TaxiPartner: j,
			})
		}
	}
	for j := 0; j < r; j++ {
		for i := 0; i < t; i++ {
			if m.ReqPartner[j] == i || !mk.MutualOK(j, i) {
				continue
			}
			jWants := m.ReqPartner[j] == Unmatched || mk.ReqPrefers(j, i, m.ReqPartner[j])
			if !jWants {
				continue
			}
			iWants := m.TaxiPartner[i] == Unmatched || mk.TaxiPrefers(i, j, m.TaxiPartner[i])
			if iWants {
				out = append(out, BlockingPair{
					Request:     j,
					Taxi:        i,
					ReqPartner:  m.ReqPartner[j],
					TaxiPartner: m.TaxiPartner[i],
				})
			}
		}
	}
	return out
}
