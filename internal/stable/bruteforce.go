package stable

import (
	"fmt"

	"stabledispatch/internal/pref"
)

// BruteForceAll enumerates every stable matching by exhaustively trying
// all partial matchings and filtering with IsStable. It exists to
// validate Algorithms 1 and 2 on small instances (tests, diagnostics);
// its running time is factorial, so it refuses markets with more than
// maxRequests requests.
func BruteForceAll(mk *pref.Market, maxRequests int) ([]Matching, error) {
	r, t := mk.NumRequests(), mk.NumTaxis()
	if r > maxRequests {
		return nil, fmt.Errorf("stable: brute force limited to %d requests, got %d", maxRequests, r)
	}
	var results []Matching
	m := NewMatching(r, t)

	var rec func(j int)
	rec = func(j int) {
		if j == r {
			if IsStable(mk, m) == nil {
				results = append(results, m.Clone())
			}
			return
		}
		// Option 1: request j stays with its dummy.
		rec(j + 1)
		// Option 2: request j takes any free, mutually acceptable taxi.
		for i := 0; i < t; i++ {
			if m.TaxiPartner[i] != Unmatched || !mk.MutualOK(j, i) {
				continue
			}
			m.ReqPartner[j] = i
			m.TaxiPartner[i] = j
			rec(j + 1)
			m.ReqPartner[j] = Unmatched
			m.TaxiPartner[i] = Unmatched
		}
	}
	rec(0)
	return results, nil
}
