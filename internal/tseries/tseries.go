// Package tseries is the per-frame KPI time-series layer: a bounded,
// allocation-conscious recorder the simulator feeds once per dispatch
// frame with the paper's §VI quantities (dispatch delay, passenger and
// taxi dissatisfaction, served/queued/expired counts, shared rides,
// degraded frames) plus runtime series (frame wall-clock, allocations,
// Dijkstra cache hit rate).
//
// The recorder is a ring of fixed-width Sample values. Memory is bounded
// by Capacity·sizeof(Sample) and allocated once at construction; Record
// never allocates. Two retention policies are available once the ring
// fills:
//
//   - evict (Downsample=false, the daemon's default): the oldest sample
//     is overwritten, keeping a sliding window of the most recent frames.
//   - downsample (Downsample=true, the batch runners' default): the ring
//     is compacted in place keeping every second sample and the recording
//     stride doubles, so the whole run's trajectory survives at halving
//     time resolution — a day-long run fits any capacity.
//
// Snapshots and windowed queries copy out under the same mutex Record
// takes, so readers (the /v1/timeseries handler, the -kpi-out exporter)
// are safe against a concurrently stepping simulator.
package tseries

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"unsafe"
)

// Sample is one frame's KPI snapshot. All fields are fixed-width scalars
// so a ring of Samples is a single flat allocation.
//
// Count fields are cumulative over the run (monotone), depth fields are
// point-in-time, and the delay/dissatisfaction aggregates are running
// statistics over everything served so far — the same quantities the
// end-of-run Report computes, resolved per frame.
type Sample struct {
	// Frame is the simulation frame the sample describes.
	Frame int64 `json:"frame"`
	// DelayMean is the mean dispatch delay (frames) over served requests.
	DelayMean float64 `json:"delayMean"`
	// DelayP95 is the 95th-percentile dispatch delay (frames).
	DelayP95 float64 `json:"delayP95"`
	// PassDissMean is the mean passenger dissatisfaction (km).
	PassDissMean float64 `json:"passDissMean"`
	// TaxiDissMean is the mean taxi dissatisfaction per decision (km).
	TaxiDissMean float64 `json:"taxiDissMean"`
	// Served counts requests assigned a taxi so far.
	Served int64 `json:"served"`
	// Queued is the pending-queue depth after this frame's dispatch.
	Queued int64 `json:"queued"`
	// Expired counts patience-exceeded abandonments so far.
	Expired int64 `json:"expired"`
	// SharedRides counts dispatch decisions that produced or extended a
	// shared ride.
	SharedRides int64 `json:"sharedRides"`
	// DegradedFrames counts frames the Resilient wrapper degraded to its
	// fallback dispatcher.
	DegradedFrames int64 `json:"degradedFrames"`
	// StabilityViolations counts blocking-pair violations found by the
	// per-frame stability certificates so far (0 when decision tracing
	// is off: the certificate scan only runs under dtrace).
	StabilityViolations int64 `json:"stabilityViolations"`
	// FrameNs is this frame's wall-clock cost in nanoseconds.
	FrameNs int64 `json:"frameNs"`
	// Allocs is the number of heap objects allocated during the frame.
	Allocs int64 `json:"allocs"`
	// CacheHitRate is the cumulative Dijkstra-cache hit rate in [0,1]
	// (zero when no road-network metric is in play).
	CacheHitRate float64 `json:"cacheHitRate"`
	// Accepted counts requests admitted through the serving front door
	// so far (0 in batch runs: only the dispatch daemon admits).
	Accepted int64 `json:"accepted"`
	// Shed counts requests the admission controller rejected so far,
	// summed over every shed reason.
	Shed int64 `json:"shed"`
	// AdmissionQueue is the intake-queue depth when the frame was
	// recorded (admitted requests awaiting frame injection).
	AdmissionQueue int64 `json:"admissionQueue"`
}

// sampleBytes is the in-memory width of one Sample.
const sampleBytes = int(unsafe.Sizeof(Sample{}))

// SeriesNames lists every extractable per-sample series, in the column
// order WriteCSV emits.
var SeriesNames = []string{
	"delay_mean", "delay_p95", "pass_diss_mean", "taxi_diss_mean",
	"served", "queued", "expired", "shared_rides", "degraded_frames",
	"stability_violations", "frame_ns", "allocs", "cache_hit_rate",
	"accepted", "shed", "admission_queue",
}

// Value extracts one named series value from the sample; ok is false for
// unknown names.
func (s Sample) Value(name string) (v float64, ok bool) {
	switch name {
	case "delay_mean":
		return s.DelayMean, true
	case "delay_p95":
		return s.DelayP95, true
	case "pass_diss_mean":
		return s.PassDissMean, true
	case "taxi_diss_mean":
		return s.TaxiDissMean, true
	case "served":
		return float64(s.Served), true
	case "queued":
		return float64(s.Queued), true
	case "expired":
		return float64(s.Expired), true
	case "shared_rides":
		return float64(s.SharedRides), true
	case "degraded_frames":
		return float64(s.DegradedFrames), true
	case "stability_violations":
		return float64(s.StabilityViolations), true
	case "frame_ns":
		return float64(s.FrameNs), true
	case "allocs":
		return float64(s.Allocs), true
	case "cache_hit_rate":
		return s.CacheHitRate, true
	case "accepted":
		return float64(s.Accepted), true
	case "shed":
		return float64(s.Shed), true
	case "admission_queue":
		return float64(s.AdmissionQueue), true
	}
	return 0, false
}

// ValidSeries reports whether name is a known series.
func ValidSeries(name string) bool {
	_, ok := Sample{}.Value(name)
	return ok
}

// DefaultCapacity bounds the ring when Config.Capacity is not positive:
// enough for a simulated day at one sample per frame.
const DefaultCapacity = 1440

// Config parameterises a Recorder.
type Config struct {
	// Capacity is the maximum number of retained samples (default
	// DefaultCapacity). The ring's memory is Capacity·sizeof(Sample),
	// allocated once.
	Capacity int
	// Downsample selects the full-ring policy: false evicts the oldest
	// sample (sliding window), true compacts the ring keeping every
	// second sample and doubles the recording stride, preserving the
	// whole run at halving resolution.
	Downsample bool
}

// Recorder is the bounded per-frame KPI ring. Safe for concurrent use.
type Recorder struct {
	mu         sync.Mutex
	buf        []Sample
	head       int // index of the oldest sample
	n          int // live sample count
	stride     int // record every stride-th offered sample (downsampling)
	skip       int // offers left to skip before the next record
	offered    int64
	dropped    int64
	downsample bool
}

// New builds a recorder; the ring is allocated up front.
func New(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	// A downsampling compaction keeps ceil(n/2) samples and then appends
	// one more, so the ring must hold at least two.
	if cfg.Capacity < 2 {
		cfg.Capacity = 2
	}
	return &Recorder{
		buf:        make([]Sample, cfg.Capacity),
		stride:     1,
		downsample: cfg.Downsample,
	}
}

// Record offers one frame's sample to the ring. O(1) amortised, no
// allocations; under downsampling, samples between strides are dropped
// and a full ring compacts in place.
func (r *Recorder) Record(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++
	if r.skip > 0 {
		r.skip--
		r.dropped++
		return
	}
	r.skip = r.stride - 1
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	if !r.downsample {
		// Evict the oldest: overwrite it and advance the head.
		r.buf[r.head] = s
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
		return
	}
	// Compact: keep every second sample (the even offsets), halving the
	// occupancy, then double the stride so future offers arrive at the
	// new resolution.
	kept := 0
	for i := 0; i < r.n; i += 2 {
		r.buf[kept] = r.buf[(r.head+i)%len(r.buf)]
		kept++
	}
	r.dropped += int64(r.n - kept)
	r.head = 0
	r.n = kept
	r.stride *= 2
	// skip was charged against the old stride above; re-charge it so the
	// next retained sample lands stride-aligned with the survivors.
	r.skip = r.stride - 1
	r.buf[r.n] = s
	r.n++
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Stride returns the current recording stride: 1 until the first
// downsampling compaction, doubling at each.
func (r *Recorder) Stride() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stride
}

// Offered returns how many samples were offered to Record.
func (r *Recorder) Offered() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered
}

// Dropped returns how many offered samples are no longer retained
// (stride skips, evictions, and compactions).
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// MemoryBytes returns the fixed ring memory bound in bytes.
func (r *Recorder) MemoryBytes() int { return len(r.buf) * sampleBytes }

// Snapshot copies out every retained sample in chronological order. The
// result is never nil.
func (r *Recorder) Snapshot() []Sample {
	return r.Window(0, -1, 1)
}

// Window copies out the retained samples with Frame in [from, to],
// keeping every step-th (step < 1 is treated as 1). A negative to means
// "through the latest frame". An empty window yields an empty, non-nil
// slice.
func (r *Recorder) Window(from, to int64, step int) []Sample {
	if step < 1 {
		step = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []Sample{}
	kept := 0
	for i := 0; i < r.n; i++ {
		s := r.buf[(r.head+i)%len(r.buf)]
		if s.Frame < from || (to >= 0 && s.Frame > to) {
			continue
		}
		if kept%step == 0 {
			out = append(out, s)
		}
		kept++
	}
	return out
}

// LastN copies out the newest n retained samples in chronological
// order (all of them when n exceeds the retained count). The result is
// never nil. The live-stream snapshot uses it to seed a new subscriber
// with the recent KPI trajectory.
func (r *Recorder) LastN(n int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		n = r.n
	}
	if n < 0 {
		n = 0
	}
	out := make([]Sample, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Last returns the most recent sample, or ok=false on an empty ring.
func (r *Recorder) Last() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return Sample{}, false
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)], true
}

// Reset empties the ring and restores the initial stride.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.head, r.n, r.stride, r.skip = 0, 0, 1, 0
	r.offered, r.dropped = 0, 0
}

// WriteCSV renders samples as a CSV table: a frame column followed by
// the requested series (all of SeriesNames when series is empty).
func WriteCSV(w io.Writer, samples []Sample, series []string) error {
	if len(series) == 0 {
		series = SeriesNames
	}
	for _, name := range series {
		if !ValidSeries(name) {
			return fmt.Errorf("tseries: unknown series %q", name)
		}
	}
	var b strings.Builder
	b.WriteString("frame")
	for _, name := range series {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for _, s := range samples {
		b.WriteString(strconv.FormatInt(s.Frame, 10))
		for _, name := range series {
			v, _ := s.Value(name)
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
