package tseries

import (
	"strings"
	"sync"
	"testing"
)

func sampleAt(frame int64) Sample {
	return Sample{Frame: frame, DelayMean: float64(frame) / 2, Served: frame}
}

// TestEvictKeepsSlidingWindow fills a non-downsampling ring past
// capacity and checks the oldest samples fall off in order.
func TestEvictKeepsSlidingWindow(t *testing.T) {
	r := New(Config{Capacity: 4})
	for f := int64(0); f < 10; f++ {
		r.Record(sampleAt(f))
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		if want := int64(6 + i); s.Frame != want {
			t.Errorf("sample %d has frame %d, want %d", i, s.Frame, want)
		}
	}
	if r.Stride() != 1 {
		t.Errorf("evict policy changed stride to %d", r.Stride())
	}
	if r.Offered() != 10 || r.Dropped() != 6 {
		t.Errorf("offered/dropped = %d/%d, want 10/6", r.Offered(), r.Dropped())
	}
}

// TestDownsampleDoublesStride checks the compaction policy: a full ring
// halves occupancy, doubles the stride, and retains an evenly strided
// prefix-to-present trajectory covering the whole run.
func TestDownsampleDoublesStride(t *testing.T) {
	r := New(Config{Capacity: 8, Downsample: true})
	for f := int64(0); f < 64; f++ {
		r.Record(sampleAt(f))
	}
	if got := r.Stride(); got != 8 {
		t.Fatalf("stride = %d, want 8 after compactions", got)
	}
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d samples, want 8 (frames 0,8,...,56)", len(got))
	}
	// The run's start survives downsampling, and retained frames stay
	// evenly strided: 0, 8, 16, ..., 56.
	for i, s := range got {
		if want := int64(i * 8); s.Frame != want {
			t.Errorf("retained sample %d has frame %d, want %d", i, s.Frame, want)
		}
	}
	if r.Offered() != 64 {
		t.Errorf("offered = %d, want 64", r.Offered())
	}
	if int64(len(got))+r.Dropped() != r.Offered() {
		t.Errorf("retained %d + dropped %d != offered %d", len(got), r.Dropped(), r.Offered())
	}
}

// TestWindowQueries covers from/to/step filtering and the well-formed
// empty result.
func TestWindowQueries(t *testing.T) {
	r := New(Config{Capacity: 100})
	for f := int64(0); f < 50; f++ {
		r.Record(sampleAt(f))
	}
	got := r.Window(10, 19, 1)
	if len(got) != 10 || got[0].Frame != 10 || got[9].Frame != 19 {
		t.Fatalf("window [10,19] returned %d samples (%v..%v)", len(got), got[0].Frame, got[len(got)-1].Frame)
	}
	stepped := r.Window(0, -1, 10)
	if len(stepped) != 5 {
		t.Fatalf("step 10 over 50 samples returned %d, want 5", len(stepped))
	}
	for i, s := range stepped {
		if want := int64(i * 10); s.Frame != want {
			t.Errorf("stepped sample %d has frame %d, want %d", i, s.Frame, want)
		}
	}
	// Empty window: non-nil, zero length, no panic.
	empty := r.Window(1000, 2000, 1)
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty window = %#v, want non-nil empty slice", empty)
	}
	// Empty recorder behaves the same.
	fresh := New(Config{})
	if s := fresh.Snapshot(); s == nil || len(s) != 0 {
		t.Fatalf("empty recorder snapshot = %#v, want non-nil empty slice", s)
	}
	if _, ok := fresh.Last(); ok {
		t.Error("Last on empty recorder reported ok")
	}
}

// TestConcurrentWriteSnapshot races writers against snapshot readers;
// meaningful under -race.
func TestConcurrentWriteSnapshot(t *testing.T) {
	r := New(Config{Capacity: 64, Downsample: true})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f := int64(0); f < 5000; f++ {
			r.Record(sampleAt(f))
		}
		close(stop)
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Snapshot() {
					_ = s.Frame
				}
				r.Window(100, 4000, 7)
				r.Last()
				r.Len()
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got == 0 {
		t.Fatal("no samples retained after concurrent run")
	}
}

// TestValueAndSeriesNames keeps the extractor and the name table in sync.
func TestValueAndSeriesNames(t *testing.T) {
	s := Sample{
		Frame: 3, DelayMean: 1.5, DelayP95: 4, PassDissMean: 2.5, TaxiDissMean: -0.5,
		Served: 10, Queued: 2, Expired: 1, SharedRides: 4, DegradedFrames: 1,
		StabilityViolations: 2, FrameNs: 12345, Allocs: 99, CacheHitRate: 0.75,
		Accepted: 50, Shed: 7, AdmissionQueue: 5,
	}
	want := map[string]float64{
		"delay_mean": 1.5, "delay_p95": 4, "pass_diss_mean": 2.5, "taxi_diss_mean": -0.5,
		"served": 10, "queued": 2, "expired": 1, "shared_rides": 4, "degraded_frames": 1,
		"stability_violations": 2, "frame_ns": 12345, "allocs": 99, "cache_hit_rate": 0.75,
		"accepted": 50, "shed": 7, "admission_queue": 5,
	}
	if len(SeriesNames) != len(want) {
		t.Fatalf("SeriesNames has %d entries, want %d", len(SeriesNames), len(want))
	}
	for _, name := range SeriesNames {
		v, ok := s.Value(name)
		if !ok {
			t.Fatalf("Value(%q) not ok", name)
		}
		if v != want[name] {
			t.Errorf("Value(%q) = %v, want %v", name, v, want[name])
		}
	}
	if _, ok := s.Value("bogus"); ok {
		t.Error("Value accepted unknown series")
	}
	if ValidSeries("bogus") {
		t.Error("ValidSeries accepted unknown series")
	}
}

// TestWriteCSV checks the header, row shape, and unknown-series error.
func TestWriteCSV(t *testing.T) {
	r := New(Config{Capacity: 8})
	r.Record(Sample{Frame: 0, DelayMean: 1, Queued: 3})
	r.Record(Sample{Frame: 1, DelayMean: 2, Queued: 1})
	var b strings.Builder
	if err := WriteCSV(&b, r.Snapshot(), []string{"delay_mean", "queued"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), b.String())
	}
	if lines[0] != "frame,delay_mean,queued" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,3" || lines[2] != "1,2,1" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
	if err := WriteCSV(&b, r.Snapshot(), []string{"nope"}); err == nil {
		t.Error("WriteCSV accepted unknown series")
	}
	// Empty series list means every known series.
	b.Reset()
	if err := WriteCSV(&b, r.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(strings.Split(b.String(), "\n")[0], ","); got != len(SeriesNames) {
		t.Errorf("full header has %d commas, want %d", got, len(SeriesNames))
	}
}

// TestRecordNoAllocs proves the hot path allocates nothing after
// construction.
func TestRecordNoAllocs(t *testing.T) {
	r := New(Config{Capacity: 256, Downsample: true})
	var f int64
	avg := testing.AllocsPerRun(2000, func() {
		r.Record(sampleAt(f))
		f++
	})
	if avg != 0 {
		t.Errorf("Record allocates %v objects/op, want 0", avg)
	}
}

func TestMemoryBound(t *testing.T) {
	r := New(Config{Capacity: 100})
	if got, want := r.MemoryBytes(), 100*sampleBytes; got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
	for f := int64(0); f < 100000; f++ {
		r.Record(sampleAt(f))
	}
	if got := r.Len(); got > 100 {
		t.Errorf("ring grew to %d samples past its capacity", got)
	}
}
