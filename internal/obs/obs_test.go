package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.GetOrCreateCounter("requests_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	if again := r.GetOrCreateCounter("requests_total"); again != c {
		t.Error("GetOrCreateCounter returned a different instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.GetOrCreateGauge("queue_depth")
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("Value = %v, want 7", got)
	}
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Errorf("Value after Add = %v, want 4.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.GetOrCreateHistogram("lat_seconds", 0.001, 0.01, 0.1, 1)
	// 90 fast observations, 10 slow: p50 in the first bucket, p95+ in
	// the last finite one.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if want := 90*0.0005 + 10*0.5; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	if p50 := h.Quantile(0.50); p50 > 0.001 {
		t.Errorf("p50 = %v, want ≤ 0.001", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want in (0.1, 1]", p99)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewRegistry().GetOrCreateHistogram("empty_seconds")
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty histogram = %v, want 0", got)
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewRegistry().GetOrCreateHistogram("ext_seconds", 0.1, 1, 10)
	h.Observe(0.05) // first bucket
	h.Observe(5)    // third bucket
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 = %v, want lower edge 0", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("q=1 = %v, want upper edge 10", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if lo, hi := h.Quantile(-3), h.Quantile(7); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Errorf("clamped quantiles = %v, %v", lo, hi)
	}
}

func TestHistogramQuantileNaN(t *testing.T) {
	h := NewRegistry().GetOrCreateHistogram("nan_seconds", 0.1, 1)
	h.Observe(0.5)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0 (not the top bound)", got)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	// Every observation past the last finite bound: all quantiles are
	// the documented lower-bound estimate, the highest finite bound.
	h := NewRegistry().GetOrCreateHistogram("inf_seconds", 0.1, 1)
	for i := 0; i < 5; i++ {
		h.Observe(50)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %v, want 1", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewRegistry().GetOrCreateHistogram("over_seconds", 0.1, 1)
	h.Observe(100) // lands in +Inf
	if got := h.Quantile(0.99); got != 1 {
		t.Errorf("tail quantile = %v, want capped at highest bound 1", got)
	}
}

func TestTimer(t *testing.T) {
	h := NewRegistry().GetOrCreateHistogram("span_seconds")
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	if d := tm.ObserveDuration(); d <= 0 {
		t.Errorf("ObserveDuration = %v, want > 0", d)
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
	if nop := StartTimer(nil).ObserveDuration(); nop != 0 {
		t.Errorf("nil-histogram timer recorded %v", nop)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateCounter("dual_use")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.GetOrCreateGauge("dual_use")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{
		"", "1bad", "sp ace", "unterminated{a=\"b\"", `x{=""}`,
		`x{a=b}`, `x{a="b` + "\n" + `"}`, "dash-ed",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for name %q", name)
				}
			}()
			NewRegistry().GetOrCreateCounter(name)
		}()
	}
}

func TestLabelValue(t *testing.T) {
	name := `stage_seconds{stage="matching",algo="nstd-p"}`
	if got := LabelValue(name, "stage"); got != "matching" {
		t.Errorf("stage = %q", got)
	}
	if got := LabelValue(name, "algo"); got != "nstd-p" {
		t.Errorf("algo = %q", got)
	}
	if got := LabelValue(name, "nope"); got != "" {
		t.Errorf("absent label = %q, want empty", got)
	}
	if got := LabelValue("plain_total", "stage"); got != "" {
		t.Errorf("unlabelled name = %q, want empty", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateCounter("hits_total").Add(3)
	r.GetOrCreateGauge("depth").Set(2.5)
	h := r.GetOrCreateHistogram(`stage_seconds{stage="matching"}`, 0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hits_total counter\nhits_total 3\n",
		"# TYPE depth gauge\ndepth 2.5\n",
		"# TYPE stage_seconds histogram\n",
		`stage_seconds_bucket{stage="matching",le="0.01"} 1`,
		`stage_seconds_bucket{stage="matching",le="0.1"} 2`,
		`stage_seconds_bucket{stage="matching",le="+Inf"} 3`,
		`stage_seconds_sum{stage="matching"} 5.055`,
		`stage_seconds_count{stage="matching"} 3`,
		"# TYPE stage_seconds_p50 gauge\n",
		"# TYPE stage_seconds_p95 gauge\n",
		"# TYPE stage_seconds_p99 gauge\n",
		`stage_seconds_p50{stage="matching"} `,
		`stage_seconds_p95{stage="matching"} `,
		`stage_seconds_p99{stage="matching"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The derived quantile gauges carry the interpolated values.
	if got := lineValue(t, out, `stage_seconds_p50{stage="matching"}`); got > 0.1 {
		t.Errorf("p50 gauge = %v, want ≤ 0.1", got)
	}
}

// lineValue extracts the sample value of one exposition line.
func lineValue(t *testing.T, out, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in output:\n%s", series, out)
	return 0
}

// TestWritePrometheusQuantileFamilies checks derived families group all
// labelled series of a base under one TYPE header and skip
// never-observed histograms.
func TestWritePrometheusQuantileFamilies(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateHistogram(`stage_seconds{stage="a"}`, 0.01, 0.1).Observe(0.005)
	r.GetOrCreateHistogram(`stage_seconds{stage="b"}`, 0.01, 0.1).Observe(0.05)
	r.GetOrCreateHistogram("idle_seconds") // never observed
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE stage_seconds_p95 gauge"); got != 1 {
		t.Errorf("p95 TYPE header written %d times, want 1:\n%s", got, out)
	}
	for _, want := range []string{
		`stage_seconds_p95{stage="a"} `,
		`stage_seconds_p95{stage="b"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "idle_seconds_p50") {
		t.Errorf("never-observed histogram got quantile gauges:\n%s", out)
	}
}

func TestWritePrometheusGroupsTypeHeaders(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateCounter(`req_total{code="200"}`).Inc()
	r.GetOrCreateCounter(`req_total{code="404"}`).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "# TYPE req_total counter"); got != 1 {
		t.Errorf("TYPE header written %d times, want 1:\n%s", got, sb.String())
	}
}

func TestHistogramSummaries(t *testing.T) {
	r := NewRegistry()
	a := r.GetOrCreateHistogram(`stage_seconds{stage="a"}`, 0.01, 0.1)
	b := r.GetOrCreateHistogram(`stage_seconds{stage="b"}`, 0.01, 0.1)
	r.GetOrCreateHistogram(`stage_seconds{stage="idle"}`) // never observed
	r.GetOrCreateHistogram("other_seconds").Observe(1)
	a.Observe(0.005)
	a.Observe(0.005)
	b.Observe(0.05)

	got := r.HistogramSummaries("stage_seconds")
	if len(got) != 2 {
		t.Fatalf("got %d summaries, want 2: %+v", len(got), got)
	}
	if got[0].Label("stage") != "a" || got[0].Count != 2 {
		t.Errorf("first summary = %+v", got[0])
	}
	if got[1].Label("stage") != "b" || got[1].Count != 1 {
		t.Errorf("second summary = %+v", got[1])
	}
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.GetOrCreateCounter("gated_total")
	g := r.GetOrCreateGauge("gated_depth")
	h := r.GetOrCreateHistogram("gated_seconds")
	SetEnabled(false)
	c.Inc()
	g.Set(9)
	h.Observe(1)
	StartTimer(h).ObserveDuration()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled recording still wrote: c=%d g=%v h=%d",
			c.Value(), g.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestGaugeValueLookup(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateGauge("depth").Set(7.5)
	if got := r.GaugeValue("depth"); got != 7.5 {
		t.Errorf("GaugeValue = %v, want 7.5", got)
	}
	if got := r.GaugeValue("missing"); got != 0 {
		t.Errorf("GaugeValue(missing) = %v, want 0", got)
	}
	r.GetOrCreateCounter("count").Inc()
	if got := r.GaugeValue("count"); got != 0 {
		t.Errorf("GaugeValue over a counter = %v, want 0", got)
	}
}
