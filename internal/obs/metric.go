package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for
// concurrent use. Increments are single atomic adds; hot loops should
// still accumulate locally and Add once per call for the last few
// percent (the stable-matching core does).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is a no-op while recording is disabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time float64 value (queue depth, cache size),
// safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. It is a no-op while recording is disabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge. It is a no-op while recording is
// disabled.
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one to the gauge — the idiom for occupancy gauges
// (subscriber counts, open connections) that move by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
