package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentWritersAndExporter hammers one registry from parallel
// counter/gauge/histogram writers while a reader exports and summarises
// concurrently; `go test -race ./internal/obs` is the real assertion.
func TestConcurrentWritersAndExporter(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every writer resolves its own metric handles to exercise
			// the registration race path too.
			c := r.GetOrCreateCounter("race_total")
			g := r.GetOrCreateGauge("race_depth")
			h := r.GetOrCreateHistogram(`race_seconds{stage="x"}`, 0.001, 0.01, 0.1)
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Set(float64(i))
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.HistogramSummaries("race_seconds")
		}
	}()
	wg.Wait()

	if got := r.GetOrCreateCounter("race_total").Value(); got != writers*rounds {
		t.Errorf("counter = %d, want %d", got, writers*rounds)
	}
	if got := r.GetOrCreateHistogram(`race_seconds{stage="x"}`).Count(); got != writers*rounds {
		t.Errorf("histogram count = %d, want %d", got, writers*rounds)
	}
}
