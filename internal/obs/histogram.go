package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds:
// 10 µs to 10 s, a decade-and-halves ladder wide enough for both a
// single Gale–Shapley stage and a whole paper-scale dispatch frame.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution, safe for concurrent use.
// Observations land in the first bucket whose upper bound is ≥ the
// value; values above every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64       // finite upper bounds, ascending
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. It is a no-op while recording is disabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank. Values in
// the +Inf bucket are attributed to the highest finite bound, so tail
// quantiles are a lower-bound estimate there. Returns 0 with no
// observations or a NaN q.
func (h *Histogram) Quantile(q float64) float64 {
	// NaN would sail through both clamps below (every comparison with
	// NaN is false), make the target rank NaN, and fall out of the scan
	// to report the top bound as if the data were all slow.
	if math.IsNaN(q) {
		return 0
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			hi := h.bounds[len(h.bounds)-1]
			lo := 0.0
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if lo > hi {
				lo = hi
			}
			frac := 1.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns a consistent-enough copy of the cumulative bucket
// counts for export (per-bucket loads; concurrent writers may skew the
// totals by in-flight observations, which Prometheus tolerates).
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		cumulative[i] = cum
	}
	return h.bounds, cumulative, h.count.Load(), h.Sum()
}

// Timer measures one span into a histogram, in seconds:
//
//	defer obs.StartTimer(h).ObserveDuration()
//
// A timer started while recording is disabled (or with a nil histogram)
// costs nothing and records nothing.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing a span against h.
func StartTimer(h *Histogram) Timer {
	if h == nil || !enabled.Load() {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time and returns it.
func (t Timer) ObserveDuration() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
