package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseName splits a full metric name into its base name and the inner
// label string (without braces), validating both. Accepted forms:
//
//	requests_total
//	requests_total{code="200"}
//	stage_seconds{stage="matching",algo="nstd-p"}
//
// Label values may not contain quotes, backslashes, or newlines — the
// exporter writes them verbatim.
func parseName(full string) (base, labels string, err error) {
	base = full
	if i := strings.IndexByte(full, '{'); i >= 0 {
		if !strings.HasSuffix(full, "}") {
			return "", "", fmt.Errorf("unterminated label block")
		}
		base, labels = full[:i], full[i+1:len(full)-1]
	}
	if !validBase(base) {
		return "", "", fmt.Errorf("invalid base name %q", base)
	}
	if labels != "" {
		for _, pair := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validBase(k) {
				return "", "", fmt.Errorf("invalid label pair %q", pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", fmt.Errorf("label value in %q must be quoted", pair)
			}
			if strings.ContainsAny(v[1:len(v)-1], "\"\\\n") {
				return "", "", fmt.Errorf("label value in %q contains unsupported characters", pair)
			}
		}
	}
	return base, labels, nil
}

func validBase(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// LabelValue extracts the value of one label from a full metric name,
// or "" when the label is absent.
func LabelValue(full, key string) string {
	_, labels, err := parseName(full)
	if err != nil {
		return ""
	}
	for _, pair := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// seriesName renders a base name with an optional label set, appending
// extra as a final label when non-empty.
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every registered metric of the default
// registry in the Prometheus text exposition format.
func WritePrometheus(w io.Writer) error { return defaultRegistry.WritePrometheus(w) }

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum and _count.
// Series sharing a base name are grouped under one # TYPE header by the
// sorted iteration order. Each observed histogram additionally exports
// interpolated-quantile gauge families (<base>_p50, _p95, _p99) so
// dashboards can plot tail latency without histogram_quantile();
// never-observed series are skipped there.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastTyped := ""
	type histSeries struct {
		base, labels string
		h            *Histogram
	}
	var hists []histSeries
	r.Each(func(name string, metric any) {
		base, labels, err := parseName(name)
		if err != nil {
			return // unreachable: names are validated at registration
		}
		kind := ""
		switch metric.(type) {
		case *Counter:
			kind = "counter"
		case *Gauge:
			kind = "gauge"
		case *Histogram:
			kind = "histogram"
		}
		if base != lastTyped {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
			lastTyped = base
		}
		switch m := metric.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s %d\n", name, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(m.Value()))
		case *Histogram:
			bounds, cumulative, count, sum := m.snapshot()
			for i, bound := range bounds {
				le := `le="` + formatFloat(bound) + `"`
				fmt.Fprintf(&b, "%s %d\n", seriesName(base+"_bucket", labels, le), cumulative[i])
			}
			fmt.Fprintf(&b, "%s %d\n", seriesName(base+"_bucket", labels, `le="+Inf"`), cumulative[len(cumulative)-1])
			fmt.Fprintf(&b, "%s %s\n", seriesName(base+"_sum", labels, ""), formatFloat(sum))
			fmt.Fprintf(&b, "%s %d\n", seriesName(base+"_count", labels, ""), count)
			if count > 0 {
				hists = append(hists, histSeries{base, labels, m})
			}
		}
	})
	// Interpolated quantiles as derived gauge families (<base>_p50/…),
	// after the real metrics so histogram families stay contiguous. Each
	// family groups every labelled series of one base under one TYPE
	// header; Each iterates in name order, so bases are contiguous.
	quantiles := []struct {
		suffix string
		q      float64
	}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}
	for i := 0; i < len(hists); {
		j := i
		for j < len(hists) && hists[j].base == hists[i].base {
			j++
		}
		for _, qt := range quantiles {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", hists[i].base+qt.suffix)
			for _, hs := range hists[i:j] {
				fmt.Fprintf(&b, "%s %s\n",
					seriesName(hs.base+qt.suffix, hs.labels, ""), formatFloat(hs.h.Quantile(qt.q)))
			}
		}
		i = j
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSummary condenses one histogram series for report payloads:
// observation count, total, and interpolated quantiles (all in the
// histogram's native unit — seconds for the stage timers).
type HistogramSummary struct {
	Name  string // full series name, labels included
	Count uint64
	Sum   float64
	P50   float64
	P95   float64
	P99   float64
}

// Label returns the value of one label of the summarised series.
func (s HistogramSummary) Label(key string) string { return LabelValue(s.Name, key) }

// HistogramSummaries summarises every histogram of the default registry
// whose full name starts with prefix, in name order.
func HistogramSummaries(prefix string) []HistogramSummary {
	return defaultRegistry.HistogramSummaries(prefix)
}

// HistogramSummaries summarises every histogram whose full name starts
// with prefix, in name order. Series with no observations are skipped.
func (r *Registry) HistogramSummaries(prefix string) []HistogramSummary {
	var out []HistogramSummary
	r.Each(func(name string, metric any) {
		h, ok := metric.(*Histogram)
		if !ok || !strings.HasPrefix(name, prefix) {
			return
		}
		count := h.Count()
		if count == 0 {
			return
		}
		out = append(out, HistogramSummary{
			Name:  name,
			Count: count,
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	})
	return out
}
