// Package obs is the dispatch pipeline's observability substrate: a
// dependency-free, concurrency-safe metrics registry with atomic
// counters, gauges, and fixed-bucket latency histograms, plus a
// Prometheus-text-format exporter. Every hot-path package (the sim
// engine, the dispatchers, the stable-matching core, the set packer,
// the road-network cache) registers its metrics here, and cmd/dispatchd
// serves the whole registry at GET /v1/metrics.
//
// Metric names follow the Prometheus convention and may carry a fixed
// label set inline, VictoriaMetrics-style:
//
//	obs.GetOrCreateCounter("roadnet_cache_hits_total")
//	obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="matching"}`)
//
// The full string (base name plus optional {labels}) identifies one time
// series; two calls with the same name return the same metric, so
// packages can register at init time and increment lock-free afterwards.
//
// SetEnabled(false) turns every Inc/Add/Set/Observe into a no-op; the
// benchmark suite uses it to prove the instrumentation overhead is
// negligible, and operators can use it as a kill switch.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the global recording switch. Metrics are registered either
// way; only the write paths are gated.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches metric recording on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Most code uses the process-wide Default registry through
// the package-level GetOrCreate helpers.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any // full name → *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented
// packages register into and cmd/dispatchd exports.
func Default() *Registry { return defaultRegistry }

// GetOrCreateCounter returns the counter registered under name in the
// default registry, creating it on first use.
func GetOrCreateCounter(name string) *Counter {
	return defaultRegistry.GetOrCreateCounter(name)
}

// GetOrCreateGauge returns the gauge registered under name in the
// default registry, creating it on first use.
func GetOrCreateGauge(name string) *Gauge {
	return defaultRegistry.GetOrCreateGauge(name)
}

// GetOrCreateHistogram returns the histogram registered under name in
// the default registry, creating it with the given bucket upper bounds
// (DefBuckets when omitted) on first use.
func GetOrCreateHistogram(name string, buckets ...float64) *Histogram {
	return defaultRegistry.GetOrCreateHistogram(name, buckets...)
}

// GetOrCreateCounter returns the counter registered under name,
// creating it on first use. It panics if the name is malformed or
// already registered as a different metric kind — both are programming
// errors at instrumentation sites.
func (r *Registry) GetOrCreateCounter(name string) *Counter {
	return getOrCreate(r, name, func() *Counter { return &Counter{} })
}

// GetOrCreateGauge returns the gauge registered under name, creating it
// on first use. Panics on malformed names and kind mismatches.
func (r *Registry) GetOrCreateGauge(name string) *Gauge {
	return getOrCreate(r, name, func() *Gauge { return &Gauge{} })
}

// GetOrCreateHistogram returns the histogram registered under name,
// creating it with the given bucket upper bounds (DefBuckets when
// omitted) on first use. Buckets must be sorted ascending; the +Inf
// bucket is implicit. Panics on malformed names and kind mismatches.
func (r *Registry) GetOrCreateHistogram(name string, buckets ...float64) *Histogram {
	return getOrCreate(r, name, func() *Histogram { return newHistogram(buckets) })
}

// getOrCreate resolves name to a metric of type T, registering a fresh
// one on first use.
func getOrCreate[T any](r *Registry, name string, make func() *T) *T {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		return mustKind[T](name, m)
	}
	if _, _, err := parseName(name); err != nil {
		panic(fmt.Sprintf("obs: invalid metric name %q: %v", name, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok { // lost the registration race
		return mustKind[T](name, m)
	}
	v := make()
	r.metrics[name] = v
	return v
}

func mustKind[T any](name string, m any) *T {
	v, ok := m.(*T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return v
}

// CounterValue returns the current value of one counter of the default
// registry, or 0 when the name is unregistered (or not a counter).
func CounterValue(name string) uint64 { return defaultRegistry.CounterValue(name) }

// CounterValue returns the current value of the named counter, or 0
// when the name is unregistered (or registered as another kind).
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	c, ok := m.(*Counter)
	if !ok {
		return 0
	}
	return c.Value()
}

// GaugeValue returns the current value of one gauge of the default
// registry, or 0 when the name is unregistered (or not a gauge).
func GaugeValue(name string) float64 { return defaultRegistry.GaugeValue(name) }

// GaugeValue returns the current value of the named gauge, or 0 when
// the name is unregistered (or registered as another kind).
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	g, ok := m.(*Gauge)
	if !ok {
		return 0
	}
	return g.Value()
}

// SumCounters sums every counter of the default registry whose full
// name starts with prefix — the read-side companion of labelled counter
// families like dispatch_degraded_frames_total{reason=...}.
func SumCounters(prefix string) uint64 { return defaultRegistry.SumCounters(prefix) }

// SumCounters sums every counter whose full name starts with prefix.
// Summation is order-independent, so it reads the live map under the
// lock instead of taking Each's sorted snapshot — this runs once per
// simulation frame and must not allocate.
func (r *Registry) SumCounters(prefix string) uint64 {
	var total uint64
	r.mu.RLock()
	for name, metric := range r.metrics {
		if c, ok := metric.(*Counter); ok && strings.HasPrefix(name, prefix) {
			total += c.Value()
		}
	}
	r.mu.RUnlock()
	return total
}

// Each calls fn for every registered metric in lexicographic name
// order. The metric is one of *Counter, *Gauge, *Histogram.
func (r *Registry) Each(fn func(name string, metric any)) {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	metrics := make(map[string]any, len(names))
	for name := range r.metrics {
		metrics[name] = r.metrics[name]
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		fn(name, metrics[name])
	}
}
