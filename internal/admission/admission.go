// Package admission is the dispatch daemon's front door under load: a
// bounded intake queue that decouples accepting a ride request from the
// frame loop that dispatches it, plus the admission control that sheds
// excess traffic instead of letting it pile up in goroutines blocked on
// the simulator lock.
//
// The contract with the serving layer:
//
//   - Admit allocates the request ID and appends the request to the
//     queue under one lock acquisition, so queue order IS arrival order.
//     It never blocks on the simulator: a POST handler holding only the
//     controller's mutex returns in microseconds even while a
//     paper-scale dispatch frame is solving.
//   - TakeBatch removes everything queued, in admission order. The
//     serving layer calls it at each frame boundary and injects the
//     batch into the simulator before stepping, so every admitted
//     request joins the pending queue of the next frame exactly as if
//     it had been injected synchronously — dispatch output is unchanged,
//     only the lock coupling is gone (see DESIGN.md for the
//     arrival-order-preservation argument).
//   - Load shedding is fail-fast: when the queue is at capacity or the
//     in-flight ledger is at its cap, Admit returns a *ShedError the
//     handler maps to 429 Too Many Requests with a Retry-After hint.
//     Once BeginDrain is called (shutdown), every Admit sheds with
//     ReasonDraining (503) while the already-admitted tail flushes.
//
// The in-flight ledger tracks every admitted request until it reaches a
// terminal lifecycle state (drop-off, abandonment, cancellation), fed by
// the simulator's event stream. It bounds the total work the daemon will
// hold — queued plus dispatched-but-unfinished — and carries the
// enqueue→assignment latency histogram.
//
// Exported obs series: admission_accepted_total,
// admission_shed_total{reason=...}, admission_queue_depth, and
// admission_wait_seconds (enqueue to assignment).
package admission

import (
	"fmt"
	"sync"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/stream"
)

// Defaults for Config zero values.
const (
	// DefaultQueueCap bounds the intake queue: one frame's worth of
	// arrivals at well beyond paper scale (the New York trace peaks
	// around 100 requests/minute; 4096 queued is a 40× burst).
	DefaultQueueCap = 4096
	// DefaultRetryAfter is the shed hint when the config leaves it zero.
	DefaultRetryAfter = time.Second
)

// Reason classifies why a request was shed.
type Reason string

// Shed reasons, exported as admission_shed_total{reason=...} labels.
const (
	ReasonQueueFull Reason = "queue_full"   // intake queue at capacity
	ReasonInflight  Reason = "inflight_cap" // in-flight ledger at capacity
	ReasonDraining  Reason = "draining"     // shutdown in progress
)

// ShedError reports a load-shedding decision. Handlers map it to 429
// (503 for ReasonDraining) and surface RetryAfter as the Retry-After
// header.
type ShedError struct {
	Reason     Reason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: request shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Config parameterises a Controller.
type Config struct {
	// QueueCap bounds the intake queue (requests accepted but not yet
	// injected into a frame). ≤ 0 means DefaultQueueCap.
	QueueCap int
	// MaxInflight bounds admitted requests that have not yet reached a
	// terminal lifecycle state (queued + pending + assigned + riding).
	// 0 means unlimited.
	MaxInflight int
	// RetryAfter is the hint returned with every shed. The serving
	// layer sets it to its frame cadence when auto-ticking: the queue
	// cannot drain before the next frame boundary, so retrying sooner
	// is wasted work. ≤ 0 means DefaultRetryAfter.
	RetryAfter time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

// entry is the in-flight ledger record of one admitted request.
type entry struct {
	enqueuedAt time.Time
	assigned   bool // enqueue→assignment latency already observed
}

// Controller is the admission front door. All methods are safe for
// concurrent use; none of them ever blocks on anything but the
// controller's own mutex, which is held only for O(1) work (TakeBatch
// hands the queue over by swapping slices).
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	queue    []fleet.Request
	nextID   int
	inflight int
	entries  map[int]*entry
	draining bool

	accepted    *obs.Counter
	shed        map[Reason]*obs.Counter
	depth       *obs.Gauge
	wait        *obs.Histogram
	injectFails *obs.Counter
}

// New builds a Controller. The obs series are process-wide: two
// controllers in one process share them (the daemon runs exactly one).
func New(cfg Config) *Controller {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Controller{
		cfg:      cfg,
		entries:  make(map[int]*entry),
		accepted: obs.GetOrCreateCounter("admission_accepted_total"),
		shed: map[Reason]*obs.Counter{
			ReasonQueueFull: obs.GetOrCreateCounter(`admission_shed_total{reason="queue_full"}`),
			ReasonInflight:  obs.GetOrCreateCounter(`admission_shed_total{reason="inflight_cap"}`),
			ReasonDraining:  obs.GetOrCreateCounter(`admission_shed_total{reason="draining"}`),
		},
		depth:       obs.GetOrCreateGauge("admission_queue_depth"),
		wait:        obs.GetOrCreateHistogram("admission_wait_seconds"),
		injectFails: obs.GetOrCreateCounter("admission_inject_failures_total"),
	}
	c.depth.Set(0)
	return c
}

// Decision is the live-stream payload of one front-door outcome,
// published on the admission topic: per-request accept/shed decisions
// and per-frame intake summaries, each carrying the queue and ledger
// gauges at decision time.
type Decision struct {
	Kind string `json:"kind"` // "accepted", "shed", or "intake"
	// ID is the accepted request's ID (-1 for shed and intake).
	ID int `json:"id"`
	// Reason is the shed reason ("" otherwise).
	Reason Reason `json:"reason,omitempty"`
	// Batch is the intake summary's injected-batch size (0 otherwise).
	Batch      int `json:"batch,omitempty"`
	QueueDepth int `json:"queueDepth"`
	Inflight   int `json:"inflight"`
}

// publish emits one front-door decision on the live stream. Called
// outside c.mu: the hub has its own locks and must never nest inside
// the controller's (and a publish must never extend the admission
// critical section).
func (c *Controller) publish(d Decision) {
	if stream.Wants(stream.TopicAdmission) {
		stream.Publish(stream.TopicAdmission, -1, d)
	}
}

// Admit runs admission control on r and, if accepted, allocates its ID,
// stamps it into r, and enqueues it for the next frame boundary. The
// returned ID is the request's identity for the rest of its life. On
// shed the error is a *ShedError and no state changes.
func (c *Controller) Admit(r fleet.Request) (int, error) {
	c.mu.Lock()
	if c.draining {
		c.shed[ReasonDraining].Inc()
		depth, inflight := len(c.queue), c.inflight
		c.mu.Unlock()
		c.publish(Decision{Kind: "shed", ID: -1, Reason: ReasonDraining, QueueDepth: depth, Inflight: inflight})
		return 0, &ShedError{Reason: ReasonDraining, RetryAfter: c.cfg.RetryAfter}
	}
	if len(c.queue) >= c.cfg.QueueCap {
		c.shed[ReasonQueueFull].Inc()
		depth, inflight := len(c.queue), c.inflight
		c.mu.Unlock()
		c.publish(Decision{Kind: "shed", ID: -1, Reason: ReasonQueueFull, QueueDepth: depth, Inflight: inflight})
		return 0, &ShedError{Reason: ReasonQueueFull, RetryAfter: c.cfg.RetryAfter}
	}
	if c.cfg.MaxInflight > 0 && c.inflight >= c.cfg.MaxInflight {
		c.shed[ReasonInflight].Inc()
		depth, inflight := len(c.queue), c.inflight
		c.mu.Unlock()
		c.publish(Decision{Kind: "shed", ID: -1, Reason: ReasonInflight, QueueDepth: depth, Inflight: inflight})
		return 0, &ShedError{Reason: ReasonInflight, RetryAfter: c.cfg.RetryAfter}
	}
	id := c.nextID
	c.nextID++
	r.ID = id
	c.queue = append(c.queue, r)
	c.entries[id] = &entry{enqueuedAt: c.cfg.now()}
	c.inflight++
	c.accepted.Inc()
	depth, inflight := len(c.queue), c.inflight
	c.depth.Set(float64(depth))
	c.mu.Unlock()
	c.publish(Decision{Kind: "accepted", ID: id, QueueDepth: depth, Inflight: inflight})
	return id, nil
}

// TakeBatch removes and returns every queued request in admission
// order. The serving layer calls it at each frame boundary, injects the
// batch, then steps the frame. A non-empty take publishes one intake
// summary on the admission stream topic.
func (c *Controller) TakeBatch() []fleet.Request {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return nil
	}
	batch := c.queue
	c.queue = nil
	c.depth.Set(0)
	inflight := c.inflight
	c.mu.Unlock()
	c.publish(Decision{Kind: "intake", ID: -1, Batch: len(batch), Inflight: inflight})
	return batch
}

// BeginDrain stops admission permanently: every later Admit sheds with
// ReasonDraining. Already-queued requests stay queued for the final
// flush; the in-flight ledger keeps settling as events arrive.
func (c *Controller) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// QueueDepth returns the number of admitted requests awaiting frame
// injection.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Inflight returns the number of admitted requests that have not yet
// reached a terminal lifecycle state.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Accepted returns the number of requests admitted so far.
func (c *Controller) Accepted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextID
}

// NoteAssigned records a dispatch for an admitted request: the first
// assignment observes the enqueue→assignment latency; a re-dispatch
// after a fault revocation observes the requeue→reassignment latency
// (NoteRequeued resets the clock). Unknown IDs are ignored.
func (c *Controller) NoteAssigned(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.assigned {
		return
	}
	e.assigned = true
	c.wait.Observe(c.cfg.now().Sub(e.enqueuedAt).Seconds())
}

// NoteTerminal settles an admitted request that reached a terminal
// lifecycle state (drop-off, abandonment, cancellation), releasing its
// in-flight slot. Unknown IDs are ignored, so sinks can forward every
// event unconditionally.
func (c *Controller) NoteTerminal(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; !ok {
		return
	}
	delete(c.entries, id)
	c.inflight--
}

// NoteRequeued re-activates a request the fault machinery put back in
// the pending queue (driver cancellation, breakdown requeue or rescue).
// A driver cancellation emits cancel (settling the entry) immediately
// followed by requeue for the same ID, so re-creating a missing entry
// here keeps the ledger balanced; the clock restarts so the next
// NoteAssigned observes the redispatch latency.
func (c *Controller) NoteRequeued(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		e.assigned = false
		e.enqueuedAt = c.cfg.now()
		return
	}
	c.entries[id] = &entry{enqueuedAt: c.cfg.now()}
	c.inflight++
}

// NoteInjectFailure releases the in-flight slot of a request the
// serving layer failed to inject into the simulator. The controller is
// the sole ID allocator so this cannot happen in practice, but a bug
// there must not leak in-flight capacity forever.
func (c *Controller) NoteInjectFailure(id int) {
	c.injectFails.Inc()
	c.NoteTerminal(id)
}
