package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
)

// fakeClock is a hand-advanced clock for latency assertions.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func req(x float64) fleet.Request {
	return fleet.Request{Pickup: geo.Point{X: x}, Dropoff: geo.Point{X: x + 1}}
}

func TestAdmitAllocatesSequentialIDsInOrder(t *testing.T) {
	c := New(Config{QueueCap: 8})
	for i := 0; i < 5; i++ {
		id, err := c.Admit(req(float64(i)))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if id != i {
			t.Errorf("id = %d, want %d", id, i)
		}
	}
	batch := c.TakeBatch()
	if len(batch) != 5 {
		t.Fatalf("batch len = %d", len(batch))
	}
	for i, r := range batch {
		if r.ID != i || r.Pickup.X != float64(i) {
			t.Errorf("batch[%d] = %+v, out of admission order", i, r)
		}
	}
	if c.QueueDepth() != 0 {
		t.Errorf("queue depth after TakeBatch = %d", c.QueueDepth())
	}
	if c.Inflight() != 5 {
		t.Errorf("inflight = %d, want 5 (batch taken but not terminal)", c.Inflight())
	}
}

func TestQueueFullSheds(t *testing.T) {
	shed0 := obs.CounterValue(`admission_shed_total{reason="queue_full"}`)
	c := New(Config{QueueCap: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.Admit(req(0)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	_, err := c.Admit(req(0))
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != ReasonQueueFull {
		t.Errorf("reason = %s", shed.Reason)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("retry-after = %v", shed.RetryAfter)
	}
	if got := obs.CounterValue(`admission_shed_total{reason="queue_full"}`) - shed0; got != 1 {
		t.Errorf("shed counter delta = %d", got)
	}
	// Draining the queue reopens admission.
	c.TakeBatch()
	if _, err := c.Admit(req(0)); err != nil {
		t.Errorf("admit after drain: %v", err)
	}
}

func TestInflightCapShedsUntilTerminal(t *testing.T) {
	c := New(Config{QueueCap: 16, MaxInflight: 2})
	a, _ := c.Admit(req(0))
	b, _ := c.Admit(req(1))
	c.TakeBatch()
	_, err := c.Admit(req(2))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonInflight {
		t.Fatalf("err = %v, want inflight shed", err)
	}
	c.NoteTerminal(a)
	if _, err := c.Admit(req(3)); err != nil {
		t.Errorf("admit after terminal: %v", err)
	}
	c.NoteTerminal(b)
	if got := c.Inflight(); got != 1 {
		t.Errorf("inflight = %d, want 1 (only the queued request remains)", got)
	}
}

func TestDrainShedsWithDrainingReason(t *testing.T) {
	c := New(Config{QueueCap: 4})
	if _, err := c.Admit(req(0)); err != nil {
		t.Fatal(err)
	}
	c.BeginDrain()
	if !c.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
	_, err := c.Admit(req(1))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDraining {
		t.Fatalf("err = %v, want draining shed", err)
	}
	// The admitted tail survives the drain flag.
	if got := len(c.TakeBatch()); got != 1 {
		t.Errorf("drained batch len = %d, want 1", got)
	}
}

func TestAssignmentLatencyObservedOncePerDispatch(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	wait := obs.GetOrCreateHistogram("admission_wait_seconds")
	count0 := wait.Count()
	c := New(Config{QueueCap: 4, now: clock.now})
	id, _ := c.Admit(req(0))
	c.TakeBatch()
	clock.advance(2 * time.Second)
	c.NoteAssigned(id)
	c.NoteAssigned(id) // duplicate assign events must not double-observe
	if got := wait.Count() - count0; got != 1 {
		t.Fatalf("wait observations = %d, want 1", got)
	}
	// A requeue restarts the clock; the re-dispatch observes again.
	c.NoteRequeued(id)
	clock.advance(time.Second)
	c.NoteAssigned(id)
	if got := wait.Count() - count0; got != 2 {
		t.Errorf("wait observations after requeue = %d, want 2", got)
	}
}

func TestRequeueRebalancesLedgerAfterCancel(t *testing.T) {
	c := New(Config{QueueCap: 4})
	id, _ := c.Admit(req(0))
	c.TakeBatch()
	// Driver cancellation: cancel settles the entry, the immediately
	// following requeue must re-activate it.
	c.NoteTerminal(id)
	if c.Inflight() != 0 {
		t.Fatalf("inflight after cancel = %d", c.Inflight())
	}
	c.NoteRequeued(id)
	if c.Inflight() != 1 {
		t.Fatalf("inflight after requeue = %d, want 1", c.Inflight())
	}
	c.NoteTerminal(id)
	if c.Inflight() != 0 {
		t.Errorf("inflight after final terminal = %d", c.Inflight())
	}
	// Unknown IDs are ignored everywhere.
	c.NoteTerminal(999)
	c.NoteAssigned(999)
	if c.Inflight() != 0 {
		t.Errorf("inflight disturbed by unknown id: %d", c.Inflight())
	}
}

func TestQueueDepthGaugeTracksQueue(t *testing.T) {
	g := obs.GetOrCreateGauge("admission_queue_depth")
	c := New(Config{QueueCap: 8})
	if g.Value() != 0 {
		t.Fatalf("initial gauge = %v", g.Value())
	}
	c.Admit(req(0))
	c.Admit(req(1))
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
	c.TakeBatch()
	if g.Value() != 0 {
		t.Errorf("gauge after TakeBatch = %v, want 0", g.Value())
	}
}

func TestConcurrentAdmitKeepsIDsUniqueAndBounded(t *testing.T) {
	const workers, perWorker = 8, 200
	c := New(Config{QueueCap: workers * perWorker})
	var wg sync.WaitGroup
	ids := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if id, err := c.Admit(req(0)); err == nil {
					ids[w] = append(ids[w], id)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[int]bool)
	total := 0
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != workers*perWorker {
		t.Errorf("admitted %d, want %d", total, workers*perWorker)
	}
	if got := len(c.TakeBatch()); got != total {
		t.Errorf("batch len = %d, want %d", got, total)
	}
}

func TestInjectFailureReleasesInflight(t *testing.T) {
	c := New(Config{QueueCap: 4, MaxInflight: 1})
	id, _ := c.Admit(req(0))
	c.TakeBatch()
	c.NoteInjectFailure(id)
	if c.Inflight() != 0 {
		t.Errorf("inflight = %d after inject failure", c.Inflight())
	}
	if _, err := c.Admit(req(1)); err != nil {
		t.Errorf("admit after released slot: %v", err)
	}
}
