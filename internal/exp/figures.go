package exp

import (
	"fmt"

	"stabledispatch/internal/sim"
	"stabledispatch/internal/stats"
	"stabledispatch/internal/trace"
)

// Fig4 reproduces Fig. 4: CDFs of dispatch delay, passenger
// dissatisfaction, and taxi dissatisfaction for non-sharing dispatch on
// the New York trace (700 taxis).
func Fig4(o Options) (Figure, error) {
	return cdfFigure("fig4", "Non-sharing taxi dispatches, New York trace",
		trace.NewYork(), 46600, 700, nonSharingDispatchers, o)
}

// Fig5 reproduces Fig. 5: the same CDFs on the Boston trace (200 taxis).
func Fig5(o Options) (Figure, error) {
	return cdfFigure("fig5", "Non-sharing taxi dispatches, Boston trace",
		trace.Boston(), 13500, 200, nonSharingDispatchers, o)
}

// Fig8 reproduces Fig. 8: sharing-dispatch CDFs on the New York trace.
func Fig8(o Options) (Figure, error) {
	return cdfFigure("fig8", "Sharing taxi dispatches, New York trace",
		trace.NewYork(), 46600, 700,
		func() []sim.Dispatcher { return sharingDispatchers(o.Theta) }, o)
}

// Fig9 reproduces Fig. 9: sharing-dispatch CDFs on the Boston trace.
func Fig9(o Options) (Figure, error) {
	return cdfFigure("fig9", "Sharing taxi dispatches, Boston trace",
		trace.Boston(), 13500, 200,
		func() []sim.Dispatcher { return sharingDispatchers(o.Theta) }, o)
}

// cdfFigure runs every dispatcher over one workload and evaluates the
// three metric CDFs on shared grids.
func cdfFigure(id, title string, city trace.City, volume, fleetSize int,
	dispatchers func() []sim.Dispatcher, o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	// One pooled sample set per algorithm, across replicas. Dispatcher
	// order is fixed, so index i is the same algorithm in every
	// replica.
	var names []string
	for _, d := range dispatchers() {
		names = append(names, d.Name())
	}
	pools := make([]*samplePool, len(names))
	for i := range pools {
		pools[i] = &samplePool{}
	}
	for rep := 0; rep < o.replicas(); rep++ {
		ro := o.replica(rep)
		reqs, taxis, err := Workload(city, volume, fleetSize, ro)
		if err != nil {
			return Figure{}, err
		}
		ds := dispatchers()
		for i, d := range ds {
			report, err := runReport(d, taxis, reqs, ro)
			if err != nil {
				return Figure{}, fmt.Errorf("exp: %s: %w", id, err)
			}
			pools[i].add(report)
		}
	}

	delayX := stats.Linspace(0, 50, 26)
	passX := poolGrid(pools, func(p *samplePool) []float64 { return p.passenger })
	taxiX := poolGrid(pools, func(p *samplePool) []float64 { return p.taxi })

	fig := Figure{ID: id, Title: title}
	fig.Panels = append(fig.Panels,
		poolPanel("dispatch delay CDF", "minutes", delayX, names, pools,
			func(p *samplePool) []float64 { return p.delays }),
		poolPanel("passenger dissatisfaction CDF", "km", passX, names, pools,
			func(p *samplePool) []float64 { return p.passenger }),
		poolPanel("taxi dissatisfaction CDF", "km", taxiX, names, pools,
			func(p *samplePool) []float64 { return p.taxi }),
	)
	return fig, nil
}

// samplePool accumulates one algorithm's metric samples across replicas.
type samplePool struct {
	delays    []float64
	passenger []float64
	taxi      []float64
}

func (p *samplePool) add(rep *sim.Report) {
	p.delays = append(p.delays, rep.DispatchDelays()...)
	p.passenger = append(p.passenger, rep.PassengerDissatisfactions()...)
	p.taxi = append(p.taxi, rep.TaxiDissatisfactions()...)
}

func poolGrid(pools []*samplePool, values func(*samplePool) []float64) []float64 {
	lo, hi := 0.0, 1.0
	first := true
	for _, p := range pools {
		for _, v := range values(p) {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return stats.Linspace(lo, hi, 21)
}

func poolPanel(metric, xlabel string, x []float64, names []string, pools []*samplePool,
	values func(*samplePool) []float64) Panel {
	p := Panel{Metric: metric, XLabel: xlabel, X: x}
	for i, pool := range pools {
		p.Series = append(p.Series, Series{
			Name: names[i],
			Y:    stats.CDF(values(pool), x),
		})
	}
	return p
}

// Fig6 reproduces Fig. 6: average metrics on the Boston trace as the
// fleet is swept from 100 to 300 taxis.
func Fig6(o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	counts := []int{100, 150, 200, 250, 300}
	x := make([]float64, len(counts))
	for i, c := range counts {
		x[i] = float64(scaleCount(c, o.TaxiScale))
	}

	algs := nonSharingDispatchers()
	delays := make([][]float64, len(algs))
	passes := make([][]float64, len(algs))
	taxisDiss := make([][]float64, len(algs))

	for _, count := range counts {
		// Average each metric mean across replicas.
		sumDelay := make([]float64, len(algs))
		sumPass := make([]float64, len(algs))
		sumTaxi := make([]float64, len(algs))
		for rep := 0; rep < o.replicas(); rep++ {
			ro := o.replica(rep)
			reqs, taxis, err := Workload(trace.Boston(), 13500, count, ro)
			if err != nil {
				return Figure{}, err
			}
			for ai := range algs {
				report, err := runReport(nonSharingDispatchers()[ai], taxis, reqs, ro)
				if err != nil {
					return Figure{}, fmt.Errorf("exp: fig6 count %d: %w", count, err)
				}
				sumDelay[ai] += stats.Mean(report.DispatchDelays())
				sumPass[ai] += stats.Mean(report.PassengerDissatisfactions())
				sumTaxi[ai] += stats.Mean(report.TaxiDissatisfactions())
			}
		}
		n := float64(o.replicas())
		for ai := range algs {
			delays[ai] = append(delays[ai], sumDelay[ai]/n)
			passes[ai] = append(passes[ai], sumPass[ai]/n)
			taxisDiss[ai] = append(taxisDiss[ai], sumTaxi[ai]/n)
		}
	}

	fig := Figure{ID: "fig6", Title: "Non-sharing dispatches, Boston trace, fleet-size sweep"}
	fig.Panels = append(fig.Panels,
		meanPanel("average dispatch delay", "number of taxis", x, algs, delays),
		meanPanel("average passenger dissatisfaction", "number of taxis", x, algs, passes),
		meanPanel("average taxi dissatisfaction", "number of taxis", x, algs, taxisDiss),
	)
	return fig, nil
}

// Fig7 reproduces Fig. 7: average metrics on the Boston trace bucketed
// by clock time (3-hour buckets from 12am).
func Fig7(o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	const bucketHours = 3
	buckets := 24 / bucketHours
	x := make([]float64, buckets)
	for i := range x {
		x[i] = float64(i * bucketHours)
	}

	algs := nonSharingDispatchers()
	delays := make([][]float64, len(algs))
	passes := make([][]float64, len(algs))
	taxisDiss := make([][]float64, len(algs))
	for ai := range algs {
		// Pool per-bucket samples across replicas, then average.
		delayBuckets := make([][]float64, buckets)
		passBuckets := make([][]float64, buckets)
		taxiBuckets := make([][]float64, buckets)
		for rep := 0; rep < o.replicas(); rep++ {
			ro := o.replica(rep)
			reqs, taxis, err := Workload(trace.Boston(), 13500, 200, ro)
			if err != nil {
				return Figure{}, err
			}
			report, err := runReport(nonSharingDispatchers()[ai], taxis, reqs, ro)
			if err != nil {
				return Figure{}, fmt.Errorf("exp: fig7: %w", err)
			}
			for _, out := range report.Requests {
				if !out.Served {
					continue
				}
				b := hourBucket(out.ArrivalFrame, bucketHours)
				if d, ok := out.DispatchDelay(); ok {
					delayBuckets[b] = append(delayBuckets[b], d)
				}
				passBuckets[b] = append(passBuckets[b], out.PassengerDiss)
			}
			for _, a := range report.Assignments {
				b := hourBucket(a.Frame, bucketHours)
				taxiBuckets[b] = append(taxiBuckets[b], a.Dissatisfaction)
			}
		}
		for b := 0; b < buckets; b++ {
			delays[ai] = append(delays[ai], stats.Mean(delayBuckets[b]))
			passes[ai] = append(passes[ai], stats.Mean(passBuckets[b]))
			taxisDiss[ai] = append(taxisDiss[ai], stats.Mean(taxiBuckets[b]))
		}
	}

	fig := Figure{ID: "fig7", Title: "Non-sharing dispatches, Boston trace, by clock time"}
	fig.Panels = append(fig.Panels,
		meanPanel("average dispatch delay", "clock hour", x, algs, delays),
		meanPanel("average passenger dissatisfaction", "clock hour", x, algs, passes),
		meanPanel("average taxi dissatisfaction", "clock hour", x, algs, taxisDiss),
	)
	return fig, nil
}

func hourBucket(frame, bucketHours int) int {
	minute := ((frame % 1440) + 1440) % 1440
	return minute / 60 / bucketHours
}

func meanPanel(metric, xlabel string, x []float64, algs []sim.Dispatcher, ys [][]float64) Panel {
	p := Panel{Metric: metric, XLabel: xlabel, X: x}
	for i, d := range algs {
		p.Series = append(p.Series, Series{Name: d.Name(), Y: ys[i]})
	}
	return p
}

// Runner produces one figure.
type Runner func(Options) (Figure, error)

// Figures indexes every reproduction by its paper figure ID.
func Figures() map[string]Runner {
	return map[string]Runner{
		"fig4": Fig4,
		"fig5": Fig5,
		"fig6": Fig6,
		"fig7": Fig7,
		"fig8": Fig8,
		"fig9": Fig9,
	}
}

// FigureIDs returns the figure IDs in presentation order.
func FigureIDs() []string {
	return []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}
