package exp

import (
	"strings"
	"testing"
)

func tinyOptions() Options {
	o := QuickOptions()
	o.Frames = 45
	o.VolumeScale = 0.05
	o.TaxiScale = 0.05
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
	if err := QuickOptions().Validate(); err != nil {
		t.Errorf("QuickOptions invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.Frames = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero frames")
	}
	bad = DefaultOptions()
	bad.VolumeScale = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero volume scale")
	}
	bad = DefaultOptions()
	bad.Theta = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative theta")
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	figs := Figures()
	ids := FigureIDs()
	if len(figs) != len(ids) {
		t.Fatalf("registry has %d figures, IDs list %d", len(figs), len(ids))
	}
	for _, id := range ids {
		if figs[id] == nil {
			t.Errorf("figure %s missing from registry", id)
		}
	}
}

func checkFigure(t *testing.T, f Figure, wantSeries int) {
	t.Helper()
	if len(f.Panels) != 3 {
		t.Fatalf("%s has %d panels, want 3", f.ID, len(f.Panels))
	}
	for _, p := range f.Panels {
		if len(p.Series) != wantSeries {
			t.Fatalf("%s panel %q has %d series, want %d", f.ID, p.Metric, len(p.Series), wantSeries)
		}
		if len(p.X) == 0 {
			t.Fatalf("%s panel %q has empty x grid", f.ID, p.Metric)
		}
		for _, s := range p.Series {
			if len(s.Y) != len(p.X) {
				t.Fatalf("%s series %q has %d values for %d x points",
					f.ID, s.Name, len(s.Y), len(p.X))
			}
		}
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, f.ID) || !strings.Contains(out, "NSTD") && !strings.Contains(out, "STD") {
		t.Errorf("rendered figure looks wrong:\n%s", out)
	}
}

func TestFig5Quick(t *testing.T) {
	f, err := Fig5(tinyOptions())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	checkFigure(t, f, 5)
	// CDFs must be monotone and end at 1 (if any samples).
	for _, p := range f.Panels {
		for _, s := range p.Series {
			prev := 0.0
			for _, y := range s.Y {
				if y < prev-1e-12 {
					t.Fatalf("%s series %s not monotone", p.Metric, s.Name)
				}
				prev = y
			}
		}
	}
}

func TestFig6Quick(t *testing.T) {
	o := tinyOptions()
	f, err := Fig6(o)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	checkFigure(t, f, 5)
	if len(f.Panels[0].X) != 5 {
		t.Errorf("fig6 sweeps %d counts, want 5", len(f.Panels[0].X))
	}
}

func TestFig7Quick(t *testing.T) {
	o := tinyOptions()
	o.Frames = 90
	f, err := Fig7(o)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	checkFigure(t, f, 5)
	if len(f.Panels[0].X) != 8 {
		t.Errorf("fig7 has %d clock buckets, want 8", len(f.Panels[0].X))
	}
}

func TestFig9Quick(t *testing.T) {
	f, err := Fig9(tinyOptions())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	checkFigure(t, f, 5)
}

func TestInvalidOptionsRejected(t *testing.T) {
	bad := DefaultOptions()
	bad.Frames = -1
	for id, run := range Figures() {
		if _, err := run(bad); err == nil {
			t.Errorf("%s accepted invalid options", id)
		}
	}
}

func TestScaleCount(t *testing.T) {
	if got := scaleCount(700, 0.1); got != 70 {
		t.Errorf("scaleCount = %d, want 70", got)
	}
	if got := scaleCount(3, 0.01); got != 1 {
		t.Errorf("scaleCount floor = %d, want 1", got)
	}
}

func TestAblationsQuick(t *testing.T) {
	o := tinyOptions()
	for id, run := range Extras() {
		t.Run(id, func(t *testing.T) {
			fig, err := run(o)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if fig.ID != id {
				t.Errorf("figure ID = %q, want %q", fig.ID, id)
			}
			if len(fig.Panels) < 3 {
				t.Errorf("%s has %d panels", id, len(fig.Panels))
			}
			var sb strings.Builder
			if err := fig.Render(&sb); err != nil {
				t.Fatalf("Render: %v", err)
			}
		})
	}
}

func TestAblationsRejectInvalidOptions(t *testing.T) {
	bad := DefaultOptions()
	bad.VolumeScale = -1
	for id, run := range Extras() {
		if _, err := run(bad); err == nil {
			t.Errorf("%s accepted invalid options", id)
		}
	}
}

func TestReplicasPoolSamples(t *testing.T) {
	o := tinyOptions()
	single, err := Fig5(o)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	o.Replicas = 2
	pooled, err := Fig5(o)
	if err != nil {
		t.Fatalf("Fig5 replicated: %v", err)
	}
	checkFigure(t, pooled, 5)
	// Replication must not change the panel structure, and the pooled
	// CDFs generally differ from the single run (different workloads).
	if len(pooled.Panels) != len(single.Panels) {
		t.Fatalf("panel count changed under replication")
	}
}

func TestReplicasOnSweepFigure(t *testing.T) {
	o := tinyOptions()
	o.Replicas = 2
	fig, err := Fig6(o)
	if err != nil {
		t.Fatalf("Fig6 replicated: %v", err)
	}
	checkFigure(t, fig, 5)
}

func TestNegativeReplicasRejected(t *testing.T) {
	o := DefaultOptions()
	o.Replicas = -1
	if err := o.Validate(); err == nil {
		t.Error("accepted negative replicas")
	}
}
