// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§VI): Figs. 4–5 (non-sharing CDFs on
// the New York and Boston traces), Fig. 6 (metric averages vs fleet
// size), Fig. 7 (metric averages vs clock time), and Figs. 8–9 (sharing
// CDFs). Each runner prints the same series the paper plots.
package exp

import (
	"fmt"
	"io"

	"stabledispatch/internal/carpool"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stats"
	"stabledispatch/internal/trace"
)

// Options scales an experiment. The zero value is not valid; start from
// DefaultOptions (paper scale: one simulated day at full volume) or
// QuickOptions (a fast, shrunken configuration for tests and CI
// benchmarks).
type Options struct {
	// Frames is the simulated horizon in minutes.
	Frames int
	// VolumeScale multiplies the calibrated requests-per-day.
	VolumeScale float64
	// TaxiScale multiplies the paper's fleet sizes (700 NYC, 200
	// Boston).
	TaxiScale float64
	// Seed drives all generators.
	Seed int64
	// Params are the interest-model coefficients (paper: α = β = 1).
	Params pref.Params
	// Theta is the sharing detour bound (paper: 5 km).
	Theta float64
	// PatienceMinutes is how long simulated passengers wait for a
	// dispatch before giving up. The paper does not model abandonment;
	// a finite patience keeps refused requests from queueing without
	// bound and matches real passenger churn.
	PatienceMinutes int
	// Replicas repeats each experiment with derived seeds and pools
	// the samples (CDF figures) or averages the means (sweep figures).
	// Zero or one means a single run.
	Replicas int
	// Metric measures distances; nil means Euclidean.
	Metric geo.Metric
	// Workers bounds each frame's cost-plane worker pool; ≤ 0 means
	// runtime.GOMAXPROCS(0). Purely a throughput knob: every figure is
	// bit-identical for every value.
	Workers int
}

// DefaultOptions reproduces the paper's setting over one simulated day.
func DefaultOptions() Options {
	return Options{
		Frames:          1440,
		VolumeScale:     1,
		TaxiScale:       1,
		Seed:            42,
		Params:          pref.DefaultParams(),
		Theta:           5,
		PatienceMinutes: 60,
	}
}

// QuickOptions is a shrunken configuration: two simulated hours at a
// tenth of the volume, meant for tests and quick benchmarks.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Frames = 120
	o.VolumeScale = 0.1
	o.TaxiScale = 0.1
	return o
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Frames <= 0:
		return fmt.Errorf("exp: frames must be positive, got %d", o.Frames)
	case o.VolumeScale <= 0:
		return fmt.Errorf("exp: volume scale must be positive, got %v", o.VolumeScale)
	case o.TaxiScale <= 0:
		return fmt.Errorf("exp: taxi scale must be positive, got %v", o.TaxiScale)
	case o.Theta < 0:
		return fmt.Errorf("exp: theta must be non-negative, got %v", o.Theta)
	case o.PatienceMinutes < 0:
		return fmt.Errorf("exp: patience must be non-negative, got %d", o.PatienceMinutes)
	case o.Replicas < 0:
		return fmt.Errorf("exp: replicas must be non-negative, got %d", o.Replicas)
	}
	return o.Params.Validate()
}

// replicas returns the run count (at least 1).
func (o Options) replicas() int {
	if o.Replicas < 1 {
		return 1
	}
	return o.Replicas
}

// replica derives the options for one replica run: a distinct seed per
// replica, same everything else.
func (o Options) replica(r int) Options {
	out := o
	out.Seed = o.Seed + int64(r)*100003 // large prime stride
	return out
}

func (o Options) metric() geo.Metric {
	if o.Metric == nil {
		return geo.EuclidMetric
	}
	return o.Metric
}

// Series is one plotted line: an algorithm's y-values over shared
// x-coordinates.
type Series struct {
	Name string    `json:"name"`
	Y    []float64 `json:"y"`
}

// Panel is one sub-figure (e.g. Fig. 4(a)): a metric with an x-axis and
// one series per algorithm.
type Panel struct {
	// Metric names the y quantity ("dispatch delay CDF", …).
	Metric string `json:"metric"`
	// XLabel names the x quantity ("minutes", "number of taxis", …).
	XLabel string    `json:"xLabel"`
	X      []float64 `json:"x"`
	Series []Series  `json:"series"`
}

// Figure is the reproduction of one paper figure.
type Figure struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Panels []Panel `json:"panels"`
}

// Render writes the figure as aligned text tables, one per panel.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, p := range f.Panels {
		tb := stats.Table{
			Title:   fmt.Sprintf("-- %s --", p.Metric),
			Columns: append([]string{p.XLabel}, seriesNames(p.Series)...),
		}
		for i, x := range p.X {
			row := []string{stats.F(x)}
			for _, s := range p.Series {
				if i < len(s.Y) {
					row = append(row, stats.F(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// nonSharingDispatchers returns fresh instances of the five §VI-C
// algorithms, NSTD first.
func nonSharingDispatchers() []sim.Dispatcher {
	return []sim.Dispatcher{
		dispatch.NewNSTDP(),
		dispatch.NewNSTDT(),
		dispatch.NewGreedy(),
		dispatch.NewMinCost(),
		dispatch.NewBottleneck(),
	}
}

// sharingDispatchers returns fresh instances of the five §VI-D
// algorithms.
func sharingDispatchers(theta float64) []sim.Dispatcher {
	packCfg := share.PackConfig{Theta: theta, MaxGroupSize: 3, PairRadius: 2 * theta}
	carpoolCfg := carpool.Config{Theta: theta, MaxAdded: 2 * theta, SearchRadius: 2 * theta}
	return []sim.Dispatcher{
		dispatch.NewSTDP(packCfg),
		dispatch.NewSTDT(packCfg),
		carpool.NewRAII(carpoolCfg),
		carpool.NewSARP(carpoolCfg),
		carpool.NewILP(packCfg),
	}
}

// Workload builds the scaled trace and fleet for a city: the request
// volume and fleet size pass through scaleCount with the options'
// VolumeScale/TaxiScale before generation. Exported so external
// harnesses (cmd/perfbench) run exactly the workloads the experiment
// runners use.
func Workload(city trace.City, volumePerDay, fleetSize int, o Options) ([]fleet.Request, []fleet.Taxi, error) {
	cfg := trace.Config{
		City:           city,
		Frames:         o.Frames,
		RequestsPerDay: scaleCount(volumePerDay, o.VolumeScale),
		Seats:          3,
		Seed:           o.Seed,
	}
	reqs, err := trace.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	taxis, err := trace.Taxis(city, scaleCount(fleetSize, o.TaxiScale), o.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	return reqs, taxis, nil
}

func scaleCount(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// runReport simulates one dispatcher over the workload.
func runReport(d sim.Dispatcher, taxis []fleet.Taxi, reqs []fleet.Request, o Options) (*sim.Report, error) {
	s, err := sim.New(sim.Config{
		Metric:         o.metric(),
		Params:         o.Params,
		Dispatcher:     d,
		PatienceFrames: o.PatienceMinutes,
		Workers:        o.Workers,
	}, taxis, reqs)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RenderPlots writes the figure as ASCII line charts, one per panel —
// closer to how the paper presents the curves than the tables are.
func (f Figure) RenderPlots(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, p := range f.Panels {
		plot := stats.Plot{
			Title:  fmt.Sprintf("-- %s --", p.Metric),
			XLabel: p.XLabel,
			X:      p.X,
		}
		for _, s := range p.Series {
			plot.Series = append(plot.Series, stats.PlotSeries{Name: s.Name, Y: s.Y})
		}
		if err := plot.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
