package exp

import (
	"fmt"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stats"
	"stabledispatch/internal/trace"
)

// AblationMaxNet sweeps the taxi-side dummy threshold on the Boston
// workload with NSTD-P: the knob that trades dispatch delay (taxis refuse
// more rides) against taxi dissatisfaction (every accepted ride is
// better). DESIGN.md calls this design choice out; this experiment
// quantifies it.
func AblationMaxNet(o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	reqs, taxis, err := Workload(trace.Boston(), 13500, 200, o)
	if err != nil {
		return Figure{}, err
	}
	thresholds := []float64{0, 0.5, 1, 2, 4, 8}
	x := make([]float64, len(thresholds))
	var delays, passes, taxisDiss, served []float64
	for i, maxNet := range thresholds {
		x[i] = maxNet
		opt := o
		opt.Params.MaxNet = maxNet
		rep, err := runReport(dispatch.NewNSTDP(), taxis, reqs, opt)
		if err != nil {
			return Figure{}, fmt.Errorf("exp: ablation-maxnet %v: %w", maxNet, err)
		}
		delays = append(delays, stats.Mean(rep.DispatchDelays()))
		passes = append(passes, stats.Mean(rep.PassengerDissatisfactions()))
		taxisDiss = append(taxisDiss, stats.Mean(rep.TaxiDissatisfactions()))
		served = append(served, float64(rep.ServedCount())/float64(len(reqs)))
	}
	one := func(metric string, y []float64) Panel {
		return Panel{
			Metric: metric, XLabel: "taxi threshold MaxNet (km)", X: x,
			Series: []Series{{Name: "NSTD-P", Y: y}},
		}
	}
	return Figure{
		ID:    "ablation-maxnet",
		Title: "Taxi-side dummy threshold sweep, NSTD-P, Boston trace",
		Panels: []Panel{
			one("average dispatch delay (min)", delays),
			one("average passenger dissatisfaction (km)", passes),
			one("average taxi dissatisfaction (km)", taxisDiss),
			one("served fraction", served),
		},
	}, nil
}

// AblationTheta sweeps the sharing detour bound θ with STD-P: small θ
// packs almost nothing (sharing degenerates to non-sharing), large θ
// packs aggressively at the cost of passenger detours.
func AblationTheta(o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	reqs, taxis, err := Workload(trace.Boston(), 13500, 200, o)
	if err != nil {
		return Figure{}, err
	}
	thetas := []float64{0.5, 1, 2, 5, 10}
	x := make([]float64, len(thetas))
	var passes, taxisDiss, shared []float64
	for i, theta := range thetas {
		x[i] = theta
		cfg := share.PackConfig{Theta: theta, MaxGroupSize: 3, PairRadius: 2 * theta}
		rep, err := runReport(dispatch.NewSTDP(cfg), taxis, reqs, o)
		if err != nil {
			return Figure{}, fmt.Errorf("exp: ablation-theta %v: %w", theta, err)
		}
		passes = append(passes, stats.Mean(rep.PassengerDissatisfactions()))
		taxisDiss = append(taxisDiss, stats.Mean(rep.TaxiDissatisfactions()))
		shared = append(shared, float64(rep.SharedRideCount()))
	}
	one := func(metric string, y []float64) Panel {
		return Panel{
			Metric: metric, XLabel: "theta (km)", X: x,
			Series: []Series{{Name: "STD-P", Y: y}},
		}
	}
	return Figure{
		ID:    "ablation-theta",
		Title: "Sharing detour bound sweep, STD-P, Boston trace",
		Panels: []Panel{
			one("average passenger dissatisfaction (km)", passes),
			one("average taxi dissatisfaction (km)", taxisDiss),
			one("shared rides", shared),
		},
	}, nil
}

// AblationStableVariant compares the four stable selections (passenger-
// optimal, taxi-optimal, company-optimal, median) on one workload: all
// serve the same requests (rural hospitals), so only the dissatisfaction
// split between the sides moves.
func AblationStableVariant(o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	reqs, taxis, err := Workload(trace.Boston(), 13500, 200, o)
	if err != nil {
		return Figure{}, err
	}
	variants := []sim.Dispatcher{
		dispatch.NewNSTDP(),
		dispatch.NewNSTDT(),
		dispatch.NewNSTDC(),
		dispatch.NewNSTDM(),
	}
	x := []float64{0, 1, 2, 3}
	var delays, passes, taxisDiss []float64
	names := make([]string, len(variants))
	for i, d := range variants {
		names[i] = d.Name()
		rep, err := runReport(d, taxis, reqs, o)
		if err != nil {
			return Figure{}, fmt.Errorf("exp: ablation-variant %s: %w", d.Name(), err)
		}
		delays = append(delays, stats.Mean(rep.DispatchDelays()))
		passes = append(passes, stats.Mean(rep.PassengerDissatisfactions()))
		taxisDiss = append(taxisDiss, stats.Mean(rep.TaxiDissatisfactions()))
	}
	xlabel := fmt.Sprintf("variant index (%v)", names)
	fig := Figure{
		ID:    "ablation-variant",
		Title: "Stable-matching selection variants, Boston trace",
	}
	fig.Panels = append(fig.Panels,
		Panel{Metric: "average dispatch delay (min)", XLabel: xlabel, X: x,
			Series: []Series{{Name: "mean", Y: delays}}},
		Panel{Metric: "average passenger dissatisfaction (km)", XLabel: xlabel, X: x,
			Series: []Series{{Name: "mean", Y: passes}}},
		Panel{Metric: "average taxi dissatisfaction (km)", XLabel: xlabel, X: x,
			Series: []Series{{Name: "mean", Y: taxisDiss}}},
	)
	return fig, nil
}

// Extras indexes the ablation experiments beyond the paper's figures.
func Extras() map[string]Runner {
	return map[string]Runner{
		"ablation-maxnet":  AblationMaxNet,
		"ablation-theta":   AblationTheta,
		"ablation-variant": AblationStableVariant,
	}
}
