// Package pref builds the passenger and taxi-driver interest models of
// the paper (§IV-A for non-sharing, §V-A for sharing) and exposes them as
// a generic two-sided matching Market consumed by package stable.
//
// A passenger request r_j prefers taxi t_i over t_i' iff
// D(t_i, r_j^s) < D(t_i', r_j^s): passengers only care about wait time. A
// taxi driver t_i prefers request r_j over r_j' iff
// D(t_i, r_j^s) − α·D(r_j^s, r_j^d) < D(t_i, r_j'^s) − α·D(r_j'^s, r_j'^d):
// the idle drive is an expense and the trip is the pay-off.
//
// Dummy partners (the paper's "no dispatch" / "no service" entries) are
// realised as acceptability thresholds: entries whose cost exceeds the
// threshold sit behind the dummy and can never be stably matched.
package pref

import (
	"fmt"
	"math"
	"sort"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// Params holds the interest-model coefficients from the paper.
type Params struct {
	// Alpha combines a taxi's expense (idle drive) with its pay-off
	// (trip distance). The paper's experiments use α = 1.
	Alpha float64
	// Beta combines a sharing passenger's wait with the extra detour
	// distance. The paper's experiments use β = 1.
	Beta float64
	// MaxPickup is the passenger-side dummy threshold: a taxi farther
	// than this from the pickup sits behind the passenger's dummy
	// entry. +Inf disables the threshold.
	MaxPickup float64
	// MaxNet is the taxi-side dummy threshold on
	// D(t,r^s) − α·D(r^s,r^d): requests with a larger (worse) value sit
	// behind the taxi's dummy entry. +Inf disables the threshold.
	MaxNet float64
}

// DefaultParams returns the coefficients used in the paper's evaluation:
// α = β = 1, a 10 km pickup threshold on the passenger side, and a taxi
// threshold of 2 km — a driver tolerates an idle drive of up to 2 km
// beyond α times the paid trip before preferring no dispatch.
func DefaultParams() Params {
	return Params{
		Alpha:     1,
		Beta:      1,
		MaxPickup: 10,
		MaxNet:    2,
	}
}

// Unbounded reports Params with both dummy thresholds disabled; every
// passenger-taxi pair is mutually acceptable, recovering the classic
// stable-marriage setting.
func Unbounded() Params {
	return Params{
		Alpha:     1,
		Beta:      1,
		MaxPickup: math.Inf(1),
		MaxNet:    math.Inf(1),
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.Alpha) || p.Alpha < 0:
		return fmt.Errorf("pref: alpha must be non-negative, got %v", p.Alpha)
	case math.IsNaN(p.Beta) || p.Beta < 0:
		return fmt.Errorf("pref: beta must be non-negative, got %v", p.Beta)
	case math.IsNaN(p.MaxPickup):
		return fmt.Errorf("pref: max pickup threshold is NaN")
	case math.IsNaN(p.MaxNet):
		return fmt.Errorf("pref: max net threshold is NaN")
	}
	return nil
}

// Market is a two-sided matching instance: R requests and T taxis, each
// side holding a cost it assigns to every counterparty (lower is better)
// and an acceptability bit (false means the counterparty sits behind the
// dummy entry). Preference orders are strict: cost ties are broken by the
// counterparty's index, which keeps every algorithm in package stable
// deterministic.
type Market struct {
	// ReqCost[j][i] is the cost request j assigns taxi i; for the
	// non-sharing model this is D(t_i, r_j^s), which is also the
	// passenger-dissatisfaction metric of the paper.
	ReqCost [][]float64
	// TaxiCost[i][j] is the cost taxi i assigns request j; for the
	// non-sharing model this is D(t_i, r_j^s) − α·D(r_j^s, r_j^d), the
	// taxi-dissatisfaction metric.
	TaxiCost [][]float64
	// ReqOK[j][i] reports whether taxi i is ahead of request j's dummy.
	ReqOK [][]bool
	// TaxiOK[i][j] reports whether request j is ahead of taxi i's dummy.
	TaxiOK [][]bool
}

// MakeMarket returns a Market with all four matrices carved from two
// backing slabs (one float64, one bool). Markets are rebuilt every
// frame, so a row-per-allocation layout would dominate the frame's
// allocation profile; the slab layout costs six allocations regardless
// of size.
func MakeMarket(nReq, nTaxi int) Market {
	m := Market{
		ReqCost:  make([][]float64, nReq),
		TaxiCost: make([][]float64, nTaxi),
		ReqOK:    make([][]bool, nReq),
		TaxiOK:   make([][]bool, nTaxi),
	}
	floats := make([]float64, 2*nReq*nTaxi)
	bools := make([]bool, 2*nReq*nTaxi)
	for j := 0; j < nReq; j++ {
		m.ReqCost[j] = floats[j*nTaxi : (j+1)*nTaxi : (j+1)*nTaxi]
		m.ReqOK[j] = bools[j*nTaxi : (j+1)*nTaxi : (j+1)*nTaxi]
	}
	base := nReq * nTaxi
	for i := 0; i < nTaxi; i++ {
		m.TaxiCost[i] = floats[base+i*nReq : base+(i+1)*nReq : base+(i+1)*nReq]
		m.TaxiOK[i] = bools[base+i*nReq : base+(i+1)*nReq : base+(i+1)*nReq]
	}
	return m
}

// NumRequests returns R.
func (m *Market) NumRequests() int { return len(m.ReqCost) }

// NumTaxis returns T.
func (m *Market) NumTaxis() int { return len(m.TaxiCost) }

// Validate checks that all matrices are consistently sized.
func (m *Market) Validate() error {
	r, t := m.NumRequests(), m.NumTaxis()
	if len(m.ReqOK) != r || len(m.TaxiOK) != t {
		return fmt.Errorf("pref: acceptability matrices sized %dx%d, want %dx%d",
			len(m.ReqOK), len(m.TaxiOK), r, t)
	}
	for j := 0; j < r; j++ {
		if len(m.ReqCost[j]) != t || len(m.ReqOK[j]) != t {
			return fmt.Errorf("pref: request %d has %d costs / %d accept bits, want %d",
				j, len(m.ReqCost[j]), len(m.ReqOK[j]), t)
		}
		for i := 0; i < t; i++ {
			if math.IsNaN(m.ReqCost[j][i]) {
				return fmt.Errorf("pref: request %d cost for taxi %d is NaN", j, i)
			}
		}
	}
	for i := 0; i < t; i++ {
		if len(m.TaxiCost[i]) != r || len(m.TaxiOK[i]) != r {
			return fmt.Errorf("pref: taxi %d has %d costs / %d accept bits, want %d",
				i, len(m.TaxiCost[i]), len(m.TaxiOK[i]), r)
		}
		for j := 0; j < r; j++ {
			if math.IsNaN(m.TaxiCost[i][j]) {
				return fmt.Errorf("pref: taxi %d cost for request %d is NaN", i, j)
			}
		}
	}
	return nil
}

// MutualOK reports whether request j and taxi i are each ahead of the
// other's dummy entry; only such pairs can appear in a stable matching.
func (m *Market) MutualOK(j, i int) bool {
	return m.ReqOK[j][i] && m.TaxiOK[i][j]
}

// ReqPrefers reports whether request j strictly prefers taxi i1 over i2.
func (m *Market) ReqPrefers(j, i1, i2 int) bool {
	c1, c2 := m.ReqCost[j][i1], m.ReqCost[j][i2]
	if c1 != c2 {
		return c1 < c2
	}
	return i1 < i2
}

// TaxiPrefers reports whether taxi i strictly prefers request j1 over j2.
func (m *Market) TaxiPrefers(i, j1, j2 int) bool {
	c1, c2 := m.TaxiCost[i][j1], m.TaxiCost[i][j2]
	if c1 != c2 {
		return c1 < c2
	}
	return j1 < j2
}

// ReqPrefList returns request j's preference list: the mutually
// acceptable taxis sorted from most to least preferred. Taxis behind
// either dummy are omitted (they can never be stably matched to j).
func (m *Market) ReqPrefList(j int) []int {
	var list []int
	for i := 0; i < m.NumTaxis(); i++ {
		if m.MutualOK(j, i) {
			list = append(list, i)
		}
	}
	sort.Slice(list, func(a, b int) bool {
		return m.ReqPrefers(j, list[a], list[b])
	})
	return list
}

// TaxiPrefList returns taxi i's preference list: the mutually acceptable
// requests sorted from most to least preferred.
func (m *Market) TaxiPrefList(i int) []int {
	var list []int
	for j := 0; j < m.NumRequests(); j++ {
		if m.MutualOK(j, i) {
			list = append(list, j)
		}
	}
	sort.Slice(list, func(a, b int) bool {
		return m.TaxiPrefers(i, list[a], list[b])
	})
	return list
}

// Instance is a non-sharing dispatch instance: the market derived from
// the paper's §IV-A interest model, plus the raw distances the simulator
// needs for metric reporting.
type Instance struct {
	Market

	Requests []fleet.Request
	Taxis    []fleet.Taxi
	// PickupDist[i][j] = D(t_i, r_j^s).
	PickupDist [][]float64
	// TripDist[j] = D(r_j^s, r_j^d).
	TripDist []float64
	Params   Params
}

// NewInstance computes the non-sharing market for the given requests and
// taxis under metric and params. A pair is mutually acceptable iff the
// pickup distance is within params.MaxPickup, the taxi's net cost is
// within params.MaxNet, and the taxi has enough seats (the paper pushes
// seat-infeasible pairs behind both dummies).
//
// The full (unpruned) distance plane is built serially; dispatchers on
// the per-frame hot path instead build a pruned plane once via
// sim.Frame.CostPlane and call FromPlane.
func NewInstance(reqs []fleet.Request, taxis []fleet.Taxi, metric geo.Metric, params Params) (*Instance, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return FromPlane(costplane.Build(reqs, taxis, metric, costplane.Config{Workers: 1}), params)
}

// FromPlane builds the non-sharing instance from an already-computed
// distance plane. The instance aliases the plane's matrices (planes are
// immutable after Build). A plane pruned at params.MaxPickup yields the
// same market as an unpruned one: a pruned cell reads +Inf, which fails
// the pickup threshold exactly like its true distance (the prune radius
// lower-bounds it) — the pair sits behind the passenger's dummy either
// way, so preference lists are unchanged.
func FromPlane(pl *costplane.Plane, params Params) (*Instance, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	inst := &Instance{
		Requests:   pl.Requests,
		Taxis:      pl.Taxis,
		PickupDist: pl.PickupMatrix(),
		TripDist:   pl.Trips(),
		Params:     params,
	}
	inst.Market = buildNonSharingMarket(inst)
	return inst, nil
}

func buildNonSharingMarket(inst *Instance) Market {
	r, t := len(inst.Requests), len(inst.Taxis)
	m := MakeMarket(r, t)
	for i, taxi := range inst.Taxis {
		for j, req := range inst.Requests {
			pickup := inst.PickupDist[i][j]
			net := pickup - inst.Params.Alpha*inst.TripDist[j]
			seatsOK := taxi.Capacity() >= req.SeatCount()

			m.ReqCost[j][i] = pickup
			m.TaxiCost[i][j] = net
			m.ReqOK[j][i] = seatsOK && pickup <= inst.Params.MaxPickup
			m.TaxiOK[i][j] = seatsOK && net <= inst.Params.MaxNet
		}
	}
	return m
}

// PassengerDissatisfaction returns the paper's non-sharing passenger
// metric for dispatching the taxi at pos to request r: D(t, r^s).
func PassengerDissatisfaction(pos geo.Point, r fleet.Request, metric geo.Metric) float64 {
	return metric.Distance(pos, r.Pickup)
}

// TaxiDissatisfaction returns the paper's non-sharing taxi metric:
// D(t, r^s) − α·D(r^s, r^d).
func TaxiDissatisfaction(pos geo.Point, r fleet.Request, metric geo.Metric, alpha float64) float64 {
	return metric.Distance(pos, r.Pickup) - alpha*r.TripDistance(metric)
}

// SplitOversized divides requests whose party exceeds maxSeats into
// multiple requests at the same locations, each needing at most maxSeats
// — the paper's §IV-A handling for parties no single taxi can carry
// ("r_j can be divided into multiple requests, each of which asks for a
// taxi with fewer seats"). New requests take IDs from nextID upward; the
// caller guarantees those are unused. Requests within the limit pass
// through unchanged.
func SplitOversized(reqs []fleet.Request, maxSeats int, nextID int) []fleet.Request {
	if maxSeats < 1 {
		maxSeats = 1
	}
	out := make([]fleet.Request, 0, len(reqs))
	for _, r := range reqs {
		seats := r.SeatCount()
		if seats <= maxSeats {
			out = append(out, r)
			continue
		}
		first := true
		for seats > 0 {
			part := r
			part.Seats = seats
			if part.Seats > maxSeats {
				part.Seats = maxSeats
			}
			if first {
				first = false
			} else {
				part.ID = nextID
				nextID++
			}
			out = append(out, part)
			seats -= part.Seats
		}
	}
	return out
}
