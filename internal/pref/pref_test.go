package pref

import (
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

func simpleInstance(t *testing.T, params Params) *Instance {
	t.Helper()
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0, Y: 0}, Dropoff: geo.Point{X: 4, Y: 0}},
		{ID: 1, Pickup: geo.Point{X: 10, Y: 0}, Dropoff: geo.Point{X: 10, Y: 1}},
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 1, Y: 0}},
		{ID: 1, Pos: geo.Point{X: 9, Y: 0}},
	}
	inst, err := NewInstance(reqs, taxis, geo.EuclidMetric, params)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		wantErr bool
	}{
		{name: "defaults", params: DefaultParams()},
		{name: "unbounded", params: Unbounded()},
		{name: "negative alpha", params: Params{Alpha: -1}, wantErr: true},
		{name: "negative beta", params: Params{Beta: -0.5}, wantErr: true},
		{name: "nan threshold", params: Params{MaxPickup: math.NaN()}, wantErr: true},
		{name: "nan net", params: Params{MaxNet: math.NaN()}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewInstanceRejectsBadParams(t *testing.T) {
	if _, err := NewInstance(nil, nil, geo.EuclidMetric, Params{Alpha: -1}); err == nil {
		t.Error("NewInstance accepted invalid params")
	}
}

func TestInstanceDistances(t *testing.T) {
	inst := simpleInstance(t, Unbounded())
	if got := inst.TripDist[0]; got != 4 {
		t.Errorf("TripDist[0] = %v, want 4", got)
	}
	if got := inst.TripDist[1]; got != 1 {
		t.Errorf("TripDist[1] = %v, want 1", got)
	}
	if got := inst.PickupDist[0][0]; got != 1 {
		t.Errorf("PickupDist[0][0] = %v, want 1", got)
	}
	if got := inst.PickupDist[1][0]; got != 9 {
		t.Errorf("PickupDist[1][0] = %v, want 9", got)
	}
}

func TestInterestModelCosts(t *testing.T) {
	params := Unbounded()
	params.Alpha = 2
	inst := simpleInstance(t, params)

	// Passenger cost is the pickup distance.
	if got := inst.ReqCost[0][0]; got != 1 {
		t.Errorf("ReqCost[0][0] = %v, want 1", got)
	}
	// Taxi cost is pickup - alpha * trip: 1 - 2*4 = -7.
	if got := inst.TaxiCost[0][0]; got != -7 {
		t.Errorf("TaxiCost[0][0] = %v, want -7", got)
	}
	// Taxi 1 serving request 0: 9 - 2*4 = 1.
	if got := inst.TaxiCost[1][0]; got != 1 {
		t.Errorf("TaxiCost[1][0] = %v, want 1", got)
	}
}

func TestDummyThresholds(t *testing.T) {
	params := Params{Alpha: 1, Beta: 1, MaxPickup: 2, MaxNet: 0}
	inst := simpleInstance(t, params)

	// Taxi 1 is 9 km from request 0's pickup: behind the passenger
	// dummy.
	if inst.ReqOK[0][1] {
		t.Error("ReqOK[0][1] = true, want false (beyond MaxPickup)")
	}
	// Taxi 0 is 1 km away: acceptable.
	if !inst.ReqOK[0][0] {
		t.Error("ReqOK[0][0] = false, want true")
	}
	// Taxi 0 on request 0 nets 1 - 4 = -3 <= 0: acceptable to taxi.
	if !inst.TaxiOK[0][0] {
		t.Error("TaxiOK[0][0] = false, want true")
	}
	// Taxi 1 on request 1 nets 1 - 1 = 0 <= 0: acceptable.
	if !inst.TaxiOK[1][1] {
		t.Error("TaxiOK[1][1] = false, want true")
	}
	// Taxi 0 on request 1 nets 9 - 1 = 8 > 0: behind the taxi dummy.
	if inst.TaxiOK[0][1] {
		t.Error("TaxiOK[0][1] = true, want false (beyond MaxNet)")
	}
}

func TestSeatInfeasiblePairsBehindDummies(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{}, Dropoff: geo.Point{X: 1}, Seats: 5},
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 0.1}, Seats: 4},
		{ID: 1, Pos: geo.Point{X: 0.2}, Seats: 6},
	}
	inst, err := NewInstance(reqs, taxis, geo.EuclidMetric, Unbounded())
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if inst.ReqOK[0][0] || inst.TaxiOK[0][0] {
		t.Error("seat-infeasible pair (r0, t0) must be behind both dummies")
	}
	if !inst.ReqOK[0][1] || !inst.TaxiOK[1][0] {
		t.Error("seat-feasible pair (r0, t1) must be acceptable")
	}
}

func TestMarketValidate(t *testing.T) {
	inst := simpleInstance(t, DefaultParams())
	if err := inst.Market.Validate(); err != nil {
		t.Errorf("Validate on well-formed market: %v", err)
	}

	bad := inst.Market
	bad.ReqCost = bad.ReqCost[:1]
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted inconsistent matrix sizes")
	}

	nan := simpleInstance(t, DefaultParams()).Market
	nan.TaxiCost[0][0] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("Validate accepted NaN cost")
	}
}

func TestPreferenceOrdering(t *testing.T) {
	inst := simpleInstance(t, Unbounded())
	// Request 0: taxi 0 at distance 1 beats taxi 1 at distance 9.
	if !inst.ReqPrefers(0, 0, 1) {
		t.Error("ReqPrefers(0, 0, 1) = false")
	}
	if inst.ReqPrefers(0, 1, 0) {
		t.Error("ReqPrefers(0, 1, 0) = true")
	}
	list := inst.ReqPrefList(0)
	if len(list) != 2 || list[0] != 0 || list[1] != 1 {
		t.Errorf("ReqPrefList(0) = %v, want [0 1]", list)
	}
}

func TestTieBreakByIndex(t *testing.T) {
	reqCost := [][]float64{{5, 5}}
	taxiCost := [][]float64{{3}, {3}}
	m := Market{
		ReqCost:  reqCost,
		TaxiCost: taxiCost,
		ReqOK:    [][]bool{{true, true}},
		TaxiOK:   [][]bool{{true}, {true}},
	}
	if !m.ReqPrefers(0, 0, 1) || m.ReqPrefers(0, 1, 0) {
		t.Error("request tie must break toward the lower taxi index")
	}
	if !m.TaxiPrefers(0, 0, 0) == false {
		// Self-comparison is never a strict preference.
		t.Error("TaxiPrefers(i, j, j) must be false")
	}
}

func TestTaxiPrefList(t *testing.T) {
	inst := simpleInstance(t, Unbounded())
	// Taxi 0 costs: r0 = 1-4 = -3, r1 = 10-1 = 9. So r0 first.
	list := inst.TaxiPrefList(0)
	if len(list) != 2 || list[0] != 0 || list[1] != 1 {
		t.Errorf("TaxiPrefList(0) = %v, want [0 1]", list)
	}
}

func TestPrefListExcludesNonMutual(t *testing.T) {
	inst := simpleInstance(t, DefaultParams())
	// With MaxNet = 0, taxi 0 rejects request 1 (net 8 > 0), so taxi 0
	// must not appear in request 1's list even though the passenger
	// side accepts it (9 km < 10 km MaxPickup).
	for _, i := range inst.ReqPrefList(1) {
		if i == 0 {
			t.Error("ReqPrefList(1) contains taxi 0 despite taxi-side rejection")
		}
	}
}

func TestDissatisfactionHelpers(t *testing.T) {
	r := fleet.Request{Pickup: geo.Point{X: 3, Y: 4}, Dropoff: geo.Point{X: 3, Y: 10}}
	pos := geo.Point{}
	if got := PassengerDissatisfaction(pos, r, geo.EuclidMetric); got != 5 {
		t.Errorf("PassengerDissatisfaction = %v, want 5", got)
	}
	// 5 - 2*6 = -7.
	if got := TaxiDissatisfaction(pos, r, geo.EuclidMetric, 2); got != -7 {
		t.Errorf("TaxiDissatisfaction = %v, want -7", got)
	}
}

func TestCostsMatchDissatisfactionMetrics(t *testing.T) {
	// The market costs must be exactly the paper's dissatisfaction
	// metrics, for any instance.
	rng := rand.New(rand.NewSource(10))
	var reqs []fleet.Request
	var taxis []fleet.Taxi
	for j := 0; j < 8; j++ {
		reqs = append(reqs, fleet.Request{
			ID:      j,
			Pickup:  geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Dropoff: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		})
	}
	for i := 0; i < 5; i++ {
		taxis = append(taxis, fleet.Taxi{
			ID:  i,
			Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		})
	}
	params := DefaultParams()
	inst, err := NewInstance(reqs, taxis, geo.EuclidMetric, params)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	for i, taxi := range taxis {
		for j, req := range reqs {
			wantP := PassengerDissatisfaction(taxi.Pos, req, geo.EuclidMetric)
			if got := inst.ReqCost[j][i]; math.Abs(got-wantP) > 1e-12 {
				t.Fatalf("ReqCost[%d][%d] = %v, want %v", j, i, got, wantP)
			}
			wantT := TaxiDissatisfaction(taxi.Pos, req, geo.EuclidMetric, params.Alpha)
			if got := inst.TaxiCost[i][j]; math.Abs(got-wantT) > 1e-12 {
				t.Fatalf("TaxiCost[%d][%d] = %v, want %v", i, j, got, wantT)
			}
		}
	}
}

func TestSplitOversized(t *testing.T) {
	reqs := []fleet.Request{
		{ID: 0, Seats: 2},
		{ID: 1, Seats: 9},
		{ID: 2, Seats: 4},
	}
	got := SplitOversized(reqs, 4, 100)
	// 9 seats splits into 4 + 4 + 1.
	if len(got) != 5 {
		t.Fatalf("got %d requests, want 5: %+v", len(got), got)
	}
	totalSeats := 0
	ids := make(map[int]bool)
	for _, r := range got {
		if r.SeatCount() > 4 {
			t.Errorf("request %d still oversized: %d seats", r.ID, r.SeatCount())
		}
		if ids[r.ID] {
			t.Errorf("duplicate ID %d", r.ID)
		}
		ids[r.ID] = true
		totalSeats += r.SeatCount()
	}
	if totalSeats != 2+9+4 {
		t.Errorf("total seats = %d, want 15", totalSeats)
	}
	// The oversized request keeps its original ID for the first part.
	if !ids[1] || !ids[100] || !ids[101] {
		t.Errorf("ids = %v, want 1, 100, 101 present", ids)
	}
}

func TestSplitOversizedPassThrough(t *testing.T) {
	reqs := []fleet.Request{{ID: 0, Seats: 3}, {ID: 1}}
	got := SplitOversized(reqs, 4, 50)
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Errorf("pass-through changed requests: %+v", got)
	}
	// Degenerate maxSeats clamps to 1.
	got = SplitOversized([]fleet.Request{{ID: 0, Seats: 2}}, 0, 10)
	if len(got) != 2 {
		t.Errorf("maxSeats=0: got %d requests, want 2", len(got))
	}
}
