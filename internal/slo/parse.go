package slo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The SLO file is line-oriented, one objective per line:
//
//	name: [agg(]series[, series2][)] op threshold [fast=N] [slow=N] [clear=N]
//
// Blank lines and #-comments are skipped. The threshold accepts a %
// suffix (1% == 0.01). Examples:
//
//	delay_p95:  max(delay_p95) < 3            fast=5 slow=60
//	expired:    frac(expired, served) < 1%    fast=5 slow=60 clear=20
//	degraded:   delta(degraded_frames) == 0
//	stability:  stability_violations == 0
//	throughput: rate(served) > 0.5

// ParseLine parses one objective line (without comments).
func ParseLine(line string) (Def, error) {
	var d Def
	name, rest, ok := strings.Cut(line, ":")
	if !ok {
		return d, fmt.Errorf("slo: missing \"name:\" in %q", line)
	}
	d.Name = strings.TrimSpace(name)
	if d.Name == "" || strings.ContainsAny(d.Name, " \t") {
		return d, fmt.Errorf("slo: bad objective name %q", name)
	}

	fields := strings.Fields(rest)
	// Re-join so "frac(expired, served)" survives field splitting, then
	// re-split on the operator.
	expr := strings.Join(fields, " ")
	opIdx := -1
	var op Op
	for _, cand := range []Op{OpLE, OpGE, OpEQ, OpNE, OpLT, OpGT} { // two-char ops first
		if i := strings.Index(expr, " "+string(cand)+" "); i >= 0 {
			opIdx, op = i, cand
			break
		}
	}
	if opIdx < 0 {
		return d, fmt.Errorf("slo %s: no comparison operator in %q", d.Name, expr)
	}
	d.Op = op
	lhs := strings.TrimSpace(expr[:opIdx])
	rhs := strings.Fields(expr[opIdx+len(op)+2:])
	if len(rhs) == 0 {
		return d, fmt.Errorf("slo %s: missing threshold", d.Name)
	}

	// LHS: bare series, or agg(series[, series2]).
	if open := strings.IndexByte(lhs, '('); open >= 0 {
		if !strings.HasSuffix(lhs, ")") {
			return d, fmt.Errorf("slo %s: unbalanced parens in %q", d.Name, lhs)
		}
		d.Agg = Agg(strings.TrimSpace(lhs[:open]))
		args := strings.Split(lhs[open+1:len(lhs)-1], ",")
		d.Series = strings.TrimSpace(args[0])
		if len(args) > 1 {
			d.Series2 = strings.TrimSpace(args[1])
		}
		if len(args) > 2 {
			return d, fmt.Errorf("slo %s: too many series in %q", d.Name, lhs)
		}
	} else {
		d.Agg = AggLast
		d.Series = lhs
	}

	// Threshold, with % shorthand.
	tok := rhs[0]
	pct := strings.HasSuffix(tok, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(tok, "%"), 64)
	if err != nil {
		return d, fmt.Errorf("slo %s: bad threshold %q", d.Name, tok)
	}
	if pct {
		v /= 100
	}
	d.Threshold = v

	// Optional key=val window settings.
	for _, kv := range rhs[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return d, fmt.Errorf("slo %s: bad option %q", d.Name, kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return d, fmt.Errorf("slo %s: bad %s value %q", d.Name, key, val)
		}
		switch key {
		case "fast":
			d.FastWindow = n
		case "slow":
			d.SlowWindow = n
		case "clear":
			d.ClearFrames = n
		default:
			return d, fmt.Errorf("slo %s: unknown option %q", d.Name, key)
		}
	}
	// Validate eagerly so file errors carry line context.
	return d.withDefaults()
}

// Parse reads a whole SLO file.
func Parse(r io.Reader) ([]Def, error) {
	var defs []Def
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		d, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		defs = append(defs, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return defs, nil
}

// ParseFile loads an SLO file from disk.
func ParseFile(path string) ([]Def, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	defs, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return defs, nil
}

// Load parses a file and builds an engine in one step.
func Load(path string) (*Engine, error) {
	defs, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	return New(defs)
}
