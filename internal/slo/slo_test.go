package slo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/tseries"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		want Def
	}{
		{
			"delay: max(delay_p95) < 3 fast=5 slow=60",
			Def{Name: "delay", Agg: AggMax, Series: "delay_p95", Op: OpLT, Threshold: 3,
				FastWindow: 5, SlowWindow: 60, ClearFrames: DefaultClearFrames},
		},
		{
			"expired: frac(expired, served) < 1% clear=20",
			Def{Name: "expired", Agg: AggFrac, Series: "expired", Series2: "served", Op: OpLT,
				Threshold: 0.01, FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow, ClearFrames: 20},
		},
		{
			"degraded: delta(degraded_frames) == 0",
			Def{Name: "degraded", Agg: AggDelta, Series: "degraded_frames", Op: OpEQ, Threshold: 0,
				FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow, ClearFrames: DefaultClearFrames},
		},
		{
			"stability: stability_violations == 0",
			Def{Name: "stability", Agg: AggLast, Series: "stability_violations", Op: OpEQ, Threshold: 0,
				FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow, ClearFrames: DefaultClearFrames},
		},
		{
			"throughput: rate(served) >= 0.5",
			Def{Name: "throughput", Agg: AggRate, Series: "served", Op: OpGE, Threshold: 0.5,
				FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow, ClearFrames: DefaultClearFrames},
		},
	}
	for _, c := range cases {
		got, err := ParseLine(c.line)
		if err != nil {
			t.Errorf("ParseLine(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseLine(%q)\n got %+v\nwant %+v", c.line, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"no colon here",
		"x: bogus_series < 1",             // unknown series
		"x: wat(served) < 1",              // unknown aggregator
		"x: served ~ 1",                   // unknown operator
		"x: served < banana",              // bad threshold
		"x: served < 1 fast=0",            // non-positive window
		"x: served < 1 turbo=3",           // unknown option
		"x: frac(expired) < 1",            // frac arity
		"x: max(a, b) < 1",                // single-series agg with two
		"x: served < 1 fast=60 slow=5",    // slow < fast
		"two words: served < 1",           // bad name
		"x: frac(expired, bogus) < 1",     // unknown second series
		"x: frac(expired, served, x) < 1", // too many args
		"x: max(delay_p95 < 1",            // unbalanced parens
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted", line)
		}
	}
}

func TestParseFileCommentsAndErrors(t *testing.T) {
	defs, err := Parse(strings.NewReader(`
# delay objective
delay: max(delay_p95) < 3   # inline comment

expired: frac(expired, served) < 1%
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(defs) != 2 || defs[0].Name != "delay" || defs[1].Name != "expired" {
		t.Fatalf("defs = %+v", defs)
	}
	if _, err := Parse(strings.NewReader("ok: served >= 0\nbroken line\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("Parse error lacks line number: %v", err)
	}
	if _, err := New(nil); err == nil {
		t.Error("New accepted zero objectives")
	}
	if _, err := New([]Def{
		{Name: "d", Series: "served", Op: OpGE},
		{Name: "d", Series: "served", Op: OpGE},
	}); err == nil {
		t.Error("New accepted duplicate names")
	}
}

// feed pushes frames with a constant delay_p95 value.
func feed(e *Engine, from, n int64, delayP95 float64) {
	for f := from; f < from+n; f++ {
		e.Observe(tseries.Sample{Frame: f, DelayP95: delayP95, Served: f + 1})
	}
}

// TestHysteresisLifecycle walks one objective through
// ok → warning → breach → recovered → ok.
func TestHysteresisLifecycle(t *testing.T) {
	e, err := New([]Def{{
		Name: "delay", Agg: AggMax, Series: "delay_p95", Op: OpLT, Threshold: 3,
		FastWindow: 2, SlowWindow: 6, ClearFrames: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	feed(e, 0, 6, 1) // healthy
	if st := e.Status()[0]; st.State != StateOK {
		t.Fatalf("after healthy frames: %+v", st)
	}

	// Two bad frames violate the fast window (max over 2) but the slow
	// window's max is already 5... actually max poisons both windows at
	// once, so drive the slow window with mean instead? No — with Agg
	// max, one bad frame violates fast AND slow simultaneously. Use the
	// warning path via a def whose slow window stays healthy: mean.
	e2, err := New([]Def{{
		Name: "delay", Agg: AggMean, Series: "delay_p95", Op: OpLT, Threshold: 3,
		FastWindow: 2, SlowWindow: 10, ClearFrames: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	feed(e2, 0, 10, 1) // healthy baseline, slow mean = 1
	feed(e2, 10, 2, 6) // fast mean = 6 (violates); slow mean = 2 (ok)
	if st := e2.Status()[0]; st.State != StateWarning {
		t.Fatalf("want warning, got %+v", st)
	}
	feed(e2, 12, 6, 8) // slow mean climbs past 3 → breach
	st := e2.Status()[0]
	if st.State != StateBreach || st.Breaches != 1 {
		t.Fatalf("want breach with 1 breach, got %+v", st)
	}
	feed(e2, 18, 2, 0) // healthy again but slow window still poisoned
	if got := e2.Status()[0].State; got != StateBreach {
		t.Fatalf("left breach before clear streak: %s", got)
	}
	feed(e2, 20, 10, 0) // slow mean drains below 3, streak builds
	if got := e2.Status()[0].State; got != StateRecovered && got != StateOK {
		t.Fatalf("want recovered/ok after drain, got %s", got)
	}
	feed(e2, 30, 10, 0)
	st = e2.Status()[0]
	if st.State != StateOK {
		t.Fatalf("want ok after extended health, got %+v", st)
	}
	if st.Breaches != 1 {
		t.Errorf("breaches = %d, want 1", st.Breaches)
	}
}

// TestBreachTriggersFlightRecorder wires a real recorder and checks the
// breach transition produces exactly one bundle naming the SLO.
func TestBreachTriggersFlightRecorder(t *testing.T) {
	defer flightrec.Disable()
	dir := t.TempDir()
	rec, err := flightrec.Configure(flightrec.Config{Dir: dir, CooldownFrames: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New([]Def{{
		Name: "delay", Agg: AggMax, Series: "delay_p95", Op: OpLT, Threshold: 3,
		FastWindow: 2, SlowWindow: 4, ClearFrames: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 20; f++ {
		s := tseries.Sample{Frame: f, DelayP95: 10} // violates from frame 0
		rec.ObserveFrame(flightrec.FrameContext{Frame: f, KPI: s})
		e.Observe(s)
	}
	if got := rec.Bundles(); got != 1 {
		t.Fatalf("bundles = %d, want exactly 1 (breach fires once)", got)
	}
	// Find the bundle and check the manifest names the objective and
	// carries the SLO status section.
	entries := bundleDirs(t, dir)
	if len(entries) != 1 {
		t.Fatalf("bundle dirs = %v", entries)
	}
	m, err := flightrec.ReadManifest(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Trigger.Reason != flightrec.ReasonSLOBreach {
		t.Errorf("trigger reason = %q", m.Trigger.Reason)
	}
	if !strings.Contains(m.Trigger.Detail, "delay") {
		t.Errorf("trigger detail %q does not name the objective", m.Trigger.Detail)
	}
	if m.Sections["slo"] == nil {
		t.Error("manifest lacks the slo status section")
	}
}

func bundleDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), flightrec.DefaultBundlePrefix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestReportLine(t *testing.T) {
	e, err := New([]Def{
		{Name: "a", Series: "served", Op: OpGE, Threshold: 0},
		{Name: "b", Agg: AggMax, Series: "delay_p95", Op: OpLT, Threshold: 3, FastWindow: 1, SlowWindow: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(e, 0, 5, 10) // b violates immediately
	got := e.Report()
	if !strings.Contains(got, "1/2 ok") || !strings.Contains(got, "b BREACH") {
		t.Errorf("Report() = %q", got)
	}
}
