// Package slo evaluates declarative service-level objectives over the
// per-frame KPI series the simulator records into tseries. Each
// objective names a series aggregation, a comparison, and a threshold
// — "max(delay_p95) < 3", "frac(expired, served) < 1%",
// "delta(stability_violations) == 0" — and is re-evaluated every frame
// over two rolling windows: a fast window (default 5 frames) that
// catches sharp regressions quickly, and a slow window (default 60
// frames) that filters one-frame blips. This is the multi-window
// burn-rate pattern: a breach requires BOTH windows to violate, a
// fast-only violation is a warning.
//
// Each objective runs a hysteresis state machine:
//
//	ok ──fast+slow violate──▶ breach
//	ok ──fast violates────▶ warning ──slow follows──▶ breach
//	warning ──clear streak──▶ ok
//	breach ──clear streak──▶ recovered ──clear streak──▶ ok
//
// so a flapping signal cannot oscillate the alert every frame. The
// breach transition fires the flight recorder (one diagnostic bundle,
// rate-limited there) and increments slo_breaches_total; every state is
// exported as slo_state{slo="..."} gauges for scrapers.
//
// The engine is deliberately simulation-frame-clocked, not wall-
// clocked: windows are counted in dispatch frames so the same SLO file
// means the same thing in the daemon, the batch runner, and tests.
package slo

import (
	"fmt"
	"strings"
	"sync"

	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/tseries"
)

// Window and hysteresis defaults.
const (
	DefaultFastWindow  = 5
	DefaultSlowWindow  = 60
	DefaultClearFrames = 10
)

// State is one objective's alert state.
type State string

const (
	StateOK        State = "ok"
	StateWarning   State = "warning"
	StateBreach    State = "breach"
	StateRecovered State = "recovered"
)

// stateRank maps states to the numeric gauge scrapers alert on.
func stateRank(s State) float64 {
	switch s {
	case StateWarning:
		return 1
	case StateBreach:
		return 2
	case StateRecovered:
		return 3
	}
	return 0
}

// Agg names a window aggregator.
type Agg string

const (
	AggLast  Agg = "last"  // newest sample's value
	AggMean  Agg = "mean"  // mean over the window
	AggMax   Agg = "max"   // max over the window
	AggMin   Agg = "min"   // min over the window
	AggDelta Agg = "delta" // newest minus oldest (cumulative series)
	AggRate  Agg = "rate"  // delta per frame
	AggFrac  Agg = "frac"  // delta(a) / (delta(a) + delta(b))
)

// Op is a comparison operator; the condition holding means the
// objective is healthy.
type Op string

const (
	OpLT Op = "<"
	OpLE Op = "<="
	OpGT Op = ">"
	OpGE Op = ">="
	OpEQ Op = "=="
	OpNE Op = "!="
)

func (o Op) holds(v, threshold float64) bool {
	switch o {
	case OpLT:
		return v < threshold
	case OpLE:
		return v <= threshold
	case OpGT:
		return v > threshold
	case OpGE:
		return v >= threshold
	case OpEQ:
		return v == threshold
	case OpNE:
		return v != threshold
	}
	return false
}

// Def is one declarative objective.
type Def struct {
	// Name labels the objective in gauges, /v1/slo, and bundles.
	Name string
	// Agg aggregates Series over each window (AggLast when empty).
	Agg Agg
	// Series is the tseries name aggregated (frac's numerator).
	Series string
	// Series2 is frac's denominator partner; empty otherwise.
	Series2 string
	// Op compares the aggregate against Threshold; holding means healthy.
	Op Op
	// Threshold is the objective's bound.
	Threshold float64
	// FastWindow and SlowWindow are the burn windows in frames
	// (defaults DefaultFastWindow / DefaultSlowWindow).
	FastWindow int
	SlowWindow int
	// ClearFrames is the healthy streak required to leave warning,
	// breach, or recovered (default DefaultClearFrames).
	ClearFrames int
}

func (d Def) withDefaults() (Def, error) {
	if d.Name == "" {
		return d, fmt.Errorf("slo: objective without a name")
	}
	if d.Agg == "" {
		d.Agg = AggLast
	}
	switch d.Agg {
	case AggLast, AggMean, AggMax, AggMin, AggDelta, AggRate:
		if d.Series2 != "" {
			return d, fmt.Errorf("slo %s: aggregator %s takes one series", d.Name, d.Agg)
		}
	case AggFrac:
		if d.Series2 == "" {
			return d, fmt.Errorf("slo %s: frac needs two series", d.Name)
		}
		if !tseries.ValidSeries(d.Series2) {
			return d, fmt.Errorf("slo %s: unknown series %q", d.Name, d.Series2)
		}
	default:
		return d, fmt.Errorf("slo %s: unknown aggregator %q", d.Name, d.Agg)
	}
	if !tseries.ValidSeries(d.Series) {
		return d, fmt.Errorf("slo %s: unknown series %q", d.Name, d.Series)
	}
	switch d.Op {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
	default:
		return d, fmt.Errorf("slo %s: unknown operator %q", d.Name, d.Op)
	}
	if d.FastWindow <= 0 {
		d.FastWindow = DefaultFastWindow
	}
	if d.SlowWindow <= 0 {
		d.SlowWindow = DefaultSlowWindow
	}
	if d.SlowWindow < d.FastWindow {
		return d, fmt.Errorf("slo %s: slow window %d < fast window %d", d.Name, d.SlowWindow, d.FastWindow)
	}
	if d.ClearFrames <= 0 {
		d.ClearFrames = DefaultClearFrames
	}
	return d, nil
}

// Expr renders the objective's condition, the inverse of ParseLine.
func (d Def) Expr() string {
	var e string
	switch d.Agg {
	case AggLast:
		e = d.Series
	case AggFrac:
		e = fmt.Sprintf("frac(%s, %s)", d.Series, d.Series2)
	default:
		e = fmt.Sprintf("%s(%s)", d.Agg, d.Series)
	}
	return fmt.Sprintf("%s %s %g", e, d.Op, d.Threshold)
}

// Status is one objective's externally visible evaluation state.
type Status struct {
	Name string `json:"name"`
	Expr string `json:"expr"`
	// State is the hysteresis machine's current state.
	State State `json:"state"`
	// Fast and Slow are the current window aggregates; FastOK/SlowOK
	// whether each satisfies the condition.
	Fast   float64 `json:"fast"`
	Slow   float64 `json:"slow"`
	FastOK bool    `json:"fastOk"`
	SlowOK bool    `json:"slowOk"`
	// Breaches counts breach transitions this run.
	Breaches int64 `json:"breaches"`
	// LastTransitionFrame is the frame of the latest state change.
	LastTransitionFrame int64 `json:"lastTransitionFrame"`
	// Frames is how many samples the engine has observed.
	Frames int64 `json:"frames"`
}

// objective is one Def plus its live state.
type objective struct {
	def        Def
	state      State
	okStreak   int
	breaches   int64
	lastChange int64
	fast, slow float64
	fastOK     bool
	slowOK     bool
	stateG     *obs.Gauge
	fastG      *obs.Gauge
	slowG      *obs.Gauge
}

// Engine evaluates a set of objectives frame by frame. Safe for
// concurrent Observe/Status use.
type Engine struct {
	mu   sync.Mutex
	objs []*objective
	// ring holds the last maxWindow samples.
	ring   []tseries.Sample
	head   int
	n      int
	frames int64
	bound  bool // flight-recorder manifest section registered
}

// New validates defs and builds an engine. At least one objective is
// required.
func New(defs []Def) (*Engine, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("slo: no objectives defined")
	}
	maxWin := 0
	seen := make(map[string]bool, len(defs))
	e := &Engine{}
	for _, d := range defs {
		d, err := d.withDefaults()
		if err != nil {
			return nil, err
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", d.Name)
		}
		seen[d.Name] = true
		if d.SlowWindow > maxWin {
			maxWin = d.SlowWindow
		}
		label := fmt.Sprintf(`{slo=%q}`, d.Name)
		e.objs = append(e.objs, &objective{
			def:    d,
			state:  StateOK,
			stateG: obs.GetOrCreateGauge("slo_state" + label),
			fastG:  obs.GetOrCreateGauge("slo_value_fast" + label),
			slowG:  obs.GetOrCreateGauge("slo_value_slow" + label),
		})
	}
	e.ring = make([]tseries.Sample, maxWin)
	return e, nil
}

var obsBreaches = obs.GetOrCreateCounter("slo_breaches_total")

// Observe feeds one frame's sample and advances every objective's state
// machine. Breach transitions trigger the active flight recorder.
func (e *Engine) Observe(s tseries.Sample) {
	e.mu.Lock()
	if e.n < len(e.ring) {
		e.ring[(e.head+e.n)%len(e.ring)] = s
		e.n++
	} else {
		e.ring[e.head] = s
		e.head = (e.head + 1) % len(e.ring)
	}
	e.frames++

	// Lazily register the SLO section on the flight recorder so bundles
	// carry the alert table regardless of construction order.
	if !e.bound {
		if r := flightrec.Active(); r != nil {
			r.AddManifestSection("slo", func() any { return e.Status() })
			e.bound = true
		}
	}

	type breach struct{ name, detail string }
	var breaches []breach
	var transitions []Transition
	wantStream := stream.Wants(stream.TopicSLO)
	for _, o := range e.objs {
		o.fast, o.fastOK = e.evalLocked(o.def, o.def.FastWindow)
		o.slow, o.slowOK = e.evalLocked(o.def, o.def.SlowWindow)
		prev := o.state
		healthy := o.fastOK && o.slowOK
		if healthy {
			o.okStreak++
		} else {
			o.okStreak = 0
		}
		switch o.state {
		case StateOK, StateWarning, StateRecovered:
			switch {
			case !o.fastOK && !o.slowOK:
				o.state = StateBreach
			case !o.fastOK:
				o.state = StateWarning
			case o.state != StateOK && o.okStreak >= o.def.ClearFrames:
				o.state = StateOK
			}
		case StateBreach:
			if o.okStreak >= o.def.ClearFrames {
				o.state = StateRecovered
			}
		}
		if o.state != prev {
			o.lastChange = s.Frame
			if o.state == StateBreach {
				o.breaches++
				obsBreaches.Inc()
				breaches = append(breaches, breach{
					name:   o.def.Name,
					detail: fmt.Sprintf("%s: %s (fast=%g slow=%g)", o.def.Name, o.def.Expr(), o.fast, o.slow),
				})
			}
			if wantStream {
				transitions = append(transitions, Transition{
					Name:  o.def.Name,
					Expr:  o.def.Expr(),
					From:  prev,
					To:    o.state,
					Frame: s.Frame,
					Fast:  o.fast,
					Slow:  o.slow,
				})
			}
		}
		o.stateG.Set(stateRank(o.state))
		o.fastG.Set(o.fast)
		o.slowG.Set(o.slow)
	}
	frame := s.Frame
	e.mu.Unlock()

	// Trigger and publish outside the lock: the recorder's sections
	// callback calls back into Status, which takes e.mu, and the stream
	// hub's locks must never nest inside the engine's.
	for _, b := range breaches {
		flightrec.TriggerActive(frame, flightrec.ReasonSLOBreach, b.detail)
	}
	for _, tr := range transitions {
		stream.Publish(stream.TopicSLO, tr.Frame, tr)
	}
}

// Transition is one hysteresis state change, published on the live
// telemetry stream's slo topic the frame it happens.
type Transition struct {
	Name  string  `json:"slo"`
	Expr  string  `json:"expr"`
	From  State   `json:"from"`
	To    State   `json:"to"`
	Frame int64   `json:"frame"`
	Fast  float64 `json:"fast"`
	Slow  float64 `json:"slow"`
}

// evalLocked aggregates the newest min(win, n) samples for one def.
// ok reports whether the condition holds (vacuously true on an empty
// window).
func (e *Engine) evalLocked(d Def, win int) (float64, bool) {
	if win > e.n {
		win = e.n
	}
	if win == 0 {
		return 0, true
	}
	at := func(i int) tseries.Sample { // i in [0,win), oldest first
		return e.ring[(e.head+e.n-win+i)%len(e.ring)]
	}
	val := func(s tseries.Sample, name string) float64 {
		v, _ := s.Value(name)
		return v
	}
	var v float64
	switch d.Agg {
	case AggLast:
		v = val(at(win-1), d.Series)
	case AggMean:
		for i := 0; i < win; i++ {
			v += val(at(i), d.Series)
		}
		v /= float64(win)
	case AggMax:
		v = val(at(0), d.Series)
		for i := 1; i < win; i++ {
			if x := val(at(i), d.Series); x > v {
				v = x
			}
		}
	case AggMin:
		v = val(at(0), d.Series)
		for i := 1; i < win; i++ {
			if x := val(at(i), d.Series); x < v {
				v = x
			}
		}
	case AggDelta:
		v = val(at(win-1), d.Series) - val(at(0), d.Series)
	case AggRate:
		v = (val(at(win-1), d.Series) - val(at(0), d.Series)) / float64(win)
	case AggFrac:
		a := val(at(win-1), d.Series) - val(at(0), d.Series)
		b := val(at(win-1), d.Series2) - val(at(0), d.Series2)
		if a+b > 0 {
			v = a / (a + b)
		}
	}
	return v, d.Op.holds(v, d.Threshold)
}

// Status snapshots every objective, in definition order.
func (e *Engine) Status() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.objs))
	for _, o := range e.objs {
		out = append(out, Status{
			Name:                o.def.Name,
			Expr:                o.def.Expr(),
			State:               o.state,
			Fast:                o.fast,
			Slow:                o.slow,
			FastOK:              o.fastOK,
			SlowOK:              o.slowOK,
			Breaches:            o.breaches,
			LastTransitionFrame: o.lastChange,
			Frames:              e.frames,
		})
	}
	return out
}

// Breached reports whether any objective is currently in breach, and
// whether any breached at all this run.
func (e *Engine) Breached() (now, ever bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.state == StateBreach {
			now = true
		}
		if o.breaches > 0 {
			ever = true
		}
	}
	return now, ever
}

// Report renders the end-of-run one-liner taxisim prints per algorithm:
// "slo: 2/3 ok; delay_p95 BREACH (max(delay_p95) < 3, fast=4.2)".
func (e *Engine) Report() string {
	sts := e.Status()
	ok := 0
	var bad []string
	for _, s := range sts {
		if s.State == StateOK || s.State == StateRecovered {
			ok++
		}
		if s.State != StateOK {
			bad = append(bad, fmt.Sprintf("%s %s (%s, fast=%g)", s.Name, strings.ToUpper(string(s.State)), s.Expr, s.Fast))
		}
	}
	if len(bad) == 0 {
		return fmt.Sprintf("slo: %d/%d ok", ok, len(sts))
	}
	return fmt.Sprintf("slo: %d/%d ok; %s", ok, len(sts), strings.Join(bad, "; "))
}
