package dtrace

import (
	"fmt"

	"stabledispatch/internal/pref"
)

// MaxViolations caps the violating pairs stored in one certificate; the
// total count is still reported. A destabilized frame can have O(R·T)
// blocking pairs and one example with evidence is what an operator acts
// on, not ten thousand.
const MaxViolations = 64

// unmatched mirrors stable.Unmatched without importing package stable
// (stable is below dtrace in the dependency order).
const unmatched = -1

// BlockingPair is one stability violation with its rank evidence: a
// request and taxi that both prefer each other over their realized
// partners (Definition 1), or a pair whose realized match is
// individually irrational (behind a dummy).
type BlockingPair struct {
	RequestID int `json:"requestId"`
	TaxiID    int `json:"taxiId"`
	// Reason is "blocking_pair" or "irrational".
	Reason string `json:"reason"`
	// ReqRank is the taxi's rank on the request's preference list and
	// ReqPartnerRank the rank of the request's realized partner
	// (-1 = unmatched, i.e. the dummy). A blocking pair always has
	// ReqRank < ReqPartnerRank or an unmatched request.
	ReqRank        int `json:"reqRank"`
	ReqPartnerRank int `json:"reqPartnerRank"`
	// TaxiRank / TaxiPartnerRank are the mirror evidence on the taxi's
	// list.
	TaxiRank        int `json:"taxiRank"`
	TaxiPartnerRank int `json:"taxiPartnerRank"`
	// Detail spells the evidence out for humans.
	Detail string `json:"detail"`
}

// Certificate is the stability audit of one committed frame: a full
// blocking-pair scan (the same Definition 1 test as stable.IsStable)
// over the realized matching restricted to the frame's participants.
type Certificate struct {
	Frame  int  `json:"frame"`
	Stable bool `json:"stable"`
	// Requests and Taxis are the scan dimensions; Matched counts the
	// realized pairs among them.
	Requests int `json:"requests"`
	Taxis    int `json:"taxis"`
	Matched  int `json:"matched"`
	// Violations holds up to MaxViolations violating pairs with
	// evidence; ViolationsTotal is the uncapped count.
	Violations      []BlockingPair `json:"violations,omitempty"`
	ViolationsTotal int            `json:"violationsTotal"`
	// Notes carries frame-level annotations (degraded dispatch, no
	// pending requests, …).
	Notes []string `json:"notes,omitempty"`
}

// Trivial returns the certificate of a frame with nothing to match (no
// pending requests or no available taxis): vacuously stable.
func Trivial(frame, requests, taxis int, note string) *Certificate {
	c := &Certificate{Frame: frame, Stable: true, Requests: requests, Taxis: taxis}
	if note != "" {
		c.Notes = []string{note}
	}
	return c
}

// Certify runs the blocking-pair scan over a realized matching.
// reqPartner[j] is the market index of the taxi matched to request j
// (or -1), exactly the shape of stable.Matching.ReqPartner; reqIDs and
// taxiIDs map market indices to fleet IDs for the evidence. The test is
// Definition 1 with the same strict tie-breaks as stable.IsStable: an
// unmatched side (dummy partner) prefers any mutually acceptable
// counterparty.
func Certify(frame int, mk *pref.Market, reqPartner, reqIDs, taxiIDs []int) *Certificate {
	r, t := mk.NumRequests(), mk.NumTaxis()
	c := &Certificate{Frame: frame, Stable: true, Requests: r, Taxis: t}

	// taxiPartner inverts reqPartner so the taxi side of the scan is
	// O(1) per pair.
	taxiPartner := make([]int, t)
	for i := range taxiPartner {
		taxiPartner[i] = unmatched
	}
	for j := 0; j < r; j++ {
		i := reqPartner[j]
		if i == unmatched {
			continue
		}
		c.Matched++
		taxiPartner[i] = j
		if !mk.MutualOK(j, i) {
			c.addViolation(mk, reqPartner, taxiPartner, reqIDs, taxiIDs, j, i, "irrational")
		}
	}

	for j := 0; j < r; j++ {
		for i := 0; i < t; i++ {
			if reqPartner[j] == i || !mk.MutualOK(j, i) {
				continue
			}
			jWants := reqPartner[j] == unmatched || mk.ReqPrefers(j, i, reqPartner[j])
			if !jWants {
				continue
			}
			iWants := taxiPartner[i] == unmatched || mk.TaxiPrefers(i, j, taxiPartner[i])
			if iWants {
				c.addViolation(mk, reqPartner, taxiPartner, reqIDs, taxiIDs, j, i, "blocking_pair")
			}
		}
	}
	return c
}

// addViolation records one violating pair, computing the rank evidence
// lazily (only violations pay the O(R+T) rank scans).
func (c *Certificate) addViolation(mk *pref.Market, reqPartner, taxiPartner, reqIDs, taxiIDs []int, j, i int, reason string) {
	c.Stable = false
	c.ViolationsTotal++
	if len(c.Violations) >= MaxViolations {
		return
	}
	bp := BlockingPair{
		RequestID:       idOf(reqIDs, j),
		TaxiID:          idOf(taxiIDs, i),
		Reason:          reason,
		ReqRank:         reqRank(mk, j, i),
		ReqPartnerRank:  -1,
		TaxiRank:        taxiRank(mk, i, j),
		TaxiPartnerRank: -1,
	}
	if p := reqPartner[j]; p != unmatched {
		bp.ReqPartnerRank = reqRank(mk, j, p)
	}
	if p := taxiPartner[i]; p != unmatched {
		bp.TaxiPartnerRank = taxiRank(mk, i, p)
	}
	if reason == "irrational" {
		bp.Detail = fmt.Sprintf("request %d and taxi %d are matched but behind a dummy partner (individually irrational)",
			bp.RequestID, bp.TaxiID)
	} else {
		bp.Detail = fmt.Sprintf("request %d ranks taxi %d at %s (current partner at %s) and taxi %d ranks the request at %s (current partner at %s): both prefer each other",
			bp.RequestID, bp.TaxiID, rankWord(bp.ReqRank), rankWord(bp.ReqPartnerRank),
			bp.TaxiID, rankWord(bp.TaxiRank), rankWord(bp.TaxiPartnerRank))
	}
	c.Violations = append(c.Violations, bp)
}

// reqRank returns taxi i's rank on request j's preference list: the
// number of mutually acceptable taxis j strictly prefers over i
// (0 = most preferred), or -1 when the pair is not mutually acceptable.
func reqRank(mk *pref.Market, j, i int) int {
	if !mk.MutualOK(j, i) {
		return -1
	}
	rank := 0
	for k := 0; k < mk.NumTaxis(); k++ {
		if k != i && mk.MutualOK(j, k) && mk.ReqPrefers(j, k, i) {
			rank++
		}
	}
	return rank
}

// taxiRank mirrors reqRank on the taxi's list.
func taxiRank(mk *pref.Market, i, j int) int {
	if !mk.MutualOK(j, i) {
		return -1
	}
	rank := 0
	for k := 0; k < mk.NumRequests(); k++ {
		if k != j && mk.MutualOK(k, i) && mk.TaxiPrefers(i, k, j) {
			rank++
		}
	}
	return rank
}

func idOf(ids []int, idx int) int {
	if idx >= 0 && idx < len(ids) {
		return ids[idx]
	}
	return idx
}

func rankWord(rank int) string {
	if rank < 0 {
		return "dummy (unmatched)"
	}
	return fmt.Sprintf("#%d", rank)
}
