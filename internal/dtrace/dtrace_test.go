package dtrace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/stable"
)

func TestKillSwitchDefaultOff(t *testing.T) {
	if Enabled() {
		t.Fatal("tracing must default to off")
	}
	if Active() != nil {
		t.Fatal("Active() must be nil while disabled")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	if Active() != Default() {
		t.Fatal("Active() must return the default recorder while enabled")
	}
}

func TestRecordAndTrace(t *testing.T) {
	r := New(8, 4)
	r.SetFrame(7)
	e := Ev(KindPropose)
	e.TaxiID = 3
	e.ReqRank = 0
	e.Outcome = "accepted"
	r.Record(42, e)
	r.Lifecycle(42, 7, 3, "assign", "dispatched")

	tr, ok := r.Trace(42)
	if !ok {
		t.Fatal("trace 42 missing")
	}
	if len(tr.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.Events))
	}
	if tr.Events[0].Frame != 7 {
		t.Fatalf("frame not stamped: %+v", tr.Events[0])
	}
	if tr.Events[0].Seq >= tr.Events[1].Seq {
		t.Fatal("sequence numbers must be monotone")
	}
	if _, ok := r.Trace(99); ok {
		t.Fatal("unknown request must report !ok")
	}
}

func TestRingEvictionAndPerTraceCap(t *testing.T) {
	r := New(3, 2)
	for id := 1; id <= 5; id++ {
		r.Record(id, Ev(KindPropose))
	}
	ids := r.TraceIDs()
	if len(ids) != 3 || ids[0] != 3 || ids[2] != 5 {
		t.Fatalf("want oldest-first [3 4 5] after eviction, got %v", ids)
	}
	if _, ok := r.Trace(1); ok {
		t.Fatal("request 1 should have been evicted")
	}

	for k := 0; k < 5; k++ {
		r.Record(5, Ev(KindPropose))
	}
	tr, _ := r.Trace(5)
	if len(tr.Events) != 2 {
		t.Fatalf("per-trace cap: got %d events, want 2", len(tr.Events))
	}
	if tr.DroppedEvents != 4 {
		t.Fatalf("got %d dropped, want 4", tr.DroppedEvents)
	}
	st := r.Stats()
	if st.EvictedTraces != 2 || st.DroppedEvents != 4 {
		t.Fatalf("stats %+v: want 2 evicted, 4 dropped", st)
	}
}

func TestSetCapacityShrinks(t *testing.T) {
	r := New(10, 10)
	for id := 0; id < 6; id++ {
		r.Record(id, Ev(KindPropose))
	}
	r.SetCapacity(2)
	if ids := r.TraceIDs(); len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("want [4 5] after shrink, got %v", ids)
	}
}

func TestCertificateRing(t *testing.T) {
	r := New(4, 4)
	r.certCap = 2
	for f := 1; f <= 3; f++ {
		r.AddFrameNote(f, "note")
		r.PutCertificate(&Certificate{Frame: f, Stable: true})
	}
	if _, ok := r.Certificate(1); ok {
		t.Fatal("frame 1 certificate should have been evicted")
	}
	c, ok := r.Certificate(3)
	if !ok || !c.Stable {
		t.Fatalf("frame 3 certificate missing or wrong: %+v ok=%v", c, ok)
	}
	if len(c.Notes) != 1 || c.Notes[0] != "note" {
		t.Fatalf("frame note not attached: %+v", c.Notes)
	}
	if frames := r.CertifiedFrames(); len(frames) != 2 || frames[0] != 2 {
		t.Fatalf("want frames [2 3], got %v", frames)
	}
}

// TestConcurrentWritersAndSnapshots hammers one recorder from many
// writers while readers snapshot — run under -race this is the
// satellite's data-race check; without it, it still verifies the bounds
// hold under interleaving.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := New(64, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				e := Ev(KindPropose)
				e.TaxiID = k % 7
				r.Record(w*1000+k%100, e)
				if k%50 == 0 {
					r.SetFrame(k)
					r.PutCertificate(&Certificate{Frame: w*1000 + k})
					r.AddFrameNote(w*1000+k, "n")
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 200; k++ {
			for _, tr := range r.Snapshot() {
				if len(tr.Events) > 16 {
					t.Errorf("trace %d exceeds per-trace cap: %d", tr.RequestID, len(tr.Events))
					return
				}
			}
			r.Stats()
			r.CertifiedFrames()
		}
	}()
	wg.Wait()
	<-done
	if n := len(r.TraceIDs()); n > 64 {
		t.Fatalf("ring exceeds capacity: %d traces", n)
	}
}

// seededMarket builds a real non-sharing market from deterministic
// random requests and taxis.
func seededMarket(t *testing.T, seed int64, nReq, nTaxi int) *pref.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]fleet.Request, nReq)
	for j := range reqs {
		reqs[j] = fleet.Request{
			ID:      100 + j,
			Pickup:  geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
			Dropoff: geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
			Seats:   1,
		}
	}
	taxis := make([]fleet.Taxi, nTaxi)
	for i := range taxis {
		taxis[i] = fleet.Taxi{
			ID:    200 + i,
			Pos:   geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20},
			Seats: 3,
		}
	}
	inst, err := pref.NewInstance(reqs, taxis, geo.EuclidMetric, pref.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestCertifyAgreesWithIsStable is the satellite invariant: on seeded
// scenarios the certificate must agree with the offline blocking-pair
// checker, both on stable matchings (GS output) and on deliberately
// destabilized ones.
func TestCertifyAgreesWithIsStable(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		inst := seededMarket(t, seed, 12, 9)
		reqIDs := make([]int, len(inst.Requests))
		for j, rq := range inst.Requests {
			reqIDs[j] = rq.ID
		}
		taxiIDs := make([]int, len(inst.Taxis))
		for i, tx := range inst.Taxis {
			taxiIDs[i] = tx.ID
		}

		m := stable.PassengerOptimal(&inst.Market)
		c := Certify(int(seed), &inst.Market, m.ReqPartner, reqIDs, taxiIDs)
		err := stable.IsStable(&inst.Market, m)
		if (err == nil) != c.Stable {
			t.Fatalf("seed %d: IsStable err=%v but certificate stable=%v", seed, err, c.Stable)
		}
		if !c.Stable {
			t.Fatalf("seed %d: GS matching certified unstable: %+v", seed, c.Violations)
		}

		// Destabilize: swap two matched requests' partners. If both
		// matchings were matched, the passenger-optimal property means a
		// swap almost always creates a blocking pair; require the
		// certificate and IsStable to agree either way.
		perturbed := m.Clone()
		var matched []int
		for j, p := range perturbed.ReqPartner {
			if p != stable.Unmatched {
				matched = append(matched, j)
			}
		}
		if len(matched) < 2 {
			continue
		}
		a, b := matched[0], matched[1]
		ta, tb := perturbed.ReqPartner[a], perturbed.ReqPartner[b]
		perturbed.ReqPartner[a], perturbed.ReqPartner[b] = tb, ta
		perturbed.TaxiPartner[ta], perturbed.TaxiPartner[tb] = b, a

		c2 := Certify(int(seed), &inst.Market, perturbed.ReqPartner, reqIDs, taxiIDs)
		err2 := stable.IsStable(&inst.Market, perturbed)
		if (err2 == nil) != c2.Stable {
			t.Fatalf("seed %d perturbed: IsStable err=%v but certificate stable=%v", seed, err2, c2.Stable)
		}
		if !c2.Stable {
			v := c2.Violations[0]
			if v.Detail == "" || c2.ViolationsTotal < 1 {
				t.Fatalf("seed %d: violation lacks evidence: %+v", seed, v)
			}
		}
	}
}

// TestCertifyFlagsInjectedBlockingPair builds a 2x2 market with a known
// blocking pair and checks the certificate names it with correct ranks.
func TestCertifyFlagsInjectedBlockingPair(t *testing.T) {
	// Taxi 0 is closest to request 0 and both prefer each other, but we
	// match request 0 with taxi 1 and request 1 with taxi 0.
	reqs := []fleet.Request{
		{ID: 10, Pickup: geo.Point{X: 0, Y: 0}, Dropoff: geo.Point{X: 5, Y: 0}, Seats: 1},
		{ID: 11, Pickup: geo.Point{X: 9, Y: 0}, Dropoff: geo.Point{X: 5, Y: 5}, Seats: 1},
	}
	taxis := []fleet.Taxi{
		{ID: 20, Pos: geo.Point{X: 0, Y: 1}, Seats: 3},
		{ID: 21, Pos: geo.Point{X: 9, Y: 1}, Seats: 3},
	}
	inst, err := pref.NewInstance(reqs, taxis, geo.EuclidMetric, pref.Unbounded())
	if err != nil {
		t.Fatal(err)
	}
	c := Certify(1, &inst.Market, []int{1, 0}, []int{10, 11}, []int{20, 21})
	if c.Stable {
		t.Fatal("crossed matching must be unstable")
	}
	found := false
	for _, v := range c.Violations {
		if v.RequestID == 10 && v.TaxiID == 20 {
			found = true
			if v.ReqRank != 0 || v.TaxiRank != 0 {
				t.Fatalf("blocking pair ranks wrong: %+v", v)
			}
			if v.ReqPartnerRank != 1 || v.TaxiPartnerRank != 1 {
				t.Fatalf("partner ranks wrong: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("violation (r10, t20) not reported: %+v", c.Violations)
	}
	if err := stable.IsStable(&inst.Market, stable.Matching{
		ReqPartner:  []int{1, 0},
		TaxiPartner: []int{1, 0},
	}); err == nil {
		t.Fatal("IsStable disagrees: expected blocking pair")
	}
}

func TestTrivialCertificate(t *testing.T) {
	c := Trivial(5, 0, 3, "no pending requests")
	if !c.Stable || c.Frame != 5 || len(c.Notes) != 1 {
		t.Fatalf("bad trivial certificate: %+v", c)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New(8, 32)
	r.Lifecycle(1, 2, -1, "request", "")
	e := Ev(KindPropose)
	e.Frame = 2
	e.TaxiID = 9
	e.ReqRank = 0
	e.Outcome = "accepted"
	r.Record(1, e)
	r.Lifecycle(1, 2, 9, "assign", "")
	r.Lifecycle(1, 4, 9, "pickup", "")
	r.Lifecycle(1, 8, 9, "dropoff", "")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	var phases []string
	haveSlices := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
		if ph == "X" {
			name, _ := ev["name"].(string)
			haveSlices[name] = true
		}
	}
	if !strings.Contains(strings.Join(phases, ""), "M") {
		t.Fatal("missing metadata events")
	}
	for _, want := range []string{"waiting", "en-route", "riding"} {
		if !haveSlices[want] {
			t.Fatalf("missing %q lifecycle slice; slices=%v", want, haveSlices)
		}
	}
}

func TestReset(t *testing.T) {
	r := New(4, 4)
	r.Record(1, Ev(KindPropose))
	r.PutCertificate(&Certificate{Frame: 1})
	r.Reset()
	if len(r.TraceIDs()) != 0 || len(r.CertifiedFrames()) != 0 {
		t.Fatal("reset must clear traces and certificates")
	}
	if st := r.Stats(); st.Events != 0 {
		t.Fatalf("reset must clear counters: %+v", st)
	}
}
