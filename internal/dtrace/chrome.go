package dtrace

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace-event export: renders a recorder snapshot as the JSON
// array format understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). Each request becomes one track (tid);
// decision events render as instants and the request's waiting /
// en-route / riding lifecycle phases render as duration slices, with
// one simulated frame mapped to one millisecond of trace time so a
// day-long run spans a readable ~1.4 s timeline.

// frameMicros is the trace-time width of one simulation frame in µs.
const frameMicros = 1000

// chromeEvent is one entry of the trace-event array. Field names are
// fixed by the format: ph is the phase ("X" complete, "i" instant,
// "M" metadata), ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders every retained trace of the recorder as a
// Chrome trace-event JSON array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "stabledispatch"},
	}}
	for _, t := range r.Snapshot() {
		events = append(events, chromeEvents(t)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// chromeEvents renders one request's trace: lifecycle phases as "X"
// slices plus every decision event as an "i" instant. Within a frame,
// instants are offset by their sequence number so causal order survives
// the frame→millisecond quantisation.
func chromeEvents(t Trace) []chromeEvent {
	out := []chromeEvent{{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: t.RequestID,
		Args: map[string]any{"name": reqTrackName(t.RequestID)},
	}}

	// Lifecycle phase boundaries, in frame time.
	type boundary struct {
		frame int
		kind  Kind
	}
	var marks []boundary
	for _, e := range t.Events {
		ts := float64(e.Frame)*frameMicros + float64(e.Seq%frameMicros)
		args := map[string]any{"frame": e.Frame}
		if e.TaxiID >= 0 {
			args["taxi"] = e.TaxiID
		}
		if e.ReqRank >= 0 {
			args["reqRank"] = e.ReqRank
		}
		if e.TaxiRank >= 0 {
			args["taxiRank"] = e.TaxiRank
		}
		if e.RivalID >= 0 {
			args["rival"] = e.RivalID
		}
		if e.Outcome != "" {
			args["outcome"] = e.Outcome
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if len(e.Members) > 0 {
			args["members"] = e.Members
		}
		out = append(out, chromeEvent{
			Name: string(e.Kind), Cat: "decision", Ph: "i", Scope: "t",
			Ts: ts, Pid: 1, Tid: t.RequestID, Args: args,
		})
		switch e.Kind {
		case "request", "assign", "pickup", "dropoff", "abandon", "cancel", "requeue":
			marks = append(marks, boundary{e.Frame, e.Kind})
		}
	}

	// Slices between consecutive lifecycle boundaries: request→assign is
	// "waiting", assign→pickup "en-route", pickup→dropoff "riding"; a
	// requeue reopens "waiting". Terminal abandons/cancels close the
	// open phase.
	phase := map[Kind]string{
		"request": "waiting", "requeue": "waiting",
		"assign": "en-route", "pickup": "riding",
	}
	for k := 0; k < len(marks); k++ {
		name, ok := phase[marks[k].kind]
		if !ok || k+1 >= len(marks) {
			continue
		}
		dur := float64(marks[k+1].frame-marks[k].frame) * frameMicros
		if dur <= 0 {
			// Same-frame transitions still get a sliver of width so the
			// slice is visible.
			dur = frameMicros / 4
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "lifecycle", Ph: "X",
			Ts:  float64(marks[k].frame) * frameMicros,
			Dur: dur, Pid: 1, Tid: t.RequestID,
		})
	}
	return out
}

func reqTrackName(id int) string {
	return "request " + strconv.Itoa(id)
}
