// Package dtrace is the dispatch pipeline's decision-provenance layer:
// a concurrency-safe, bounded ring buffer of per-request traces, where
// each trace records the causally-ordered decisions that produced (or
// denied) a dispatch — Gale–Shapley proposals and refusals with both
// sides' preference ranks, dummy-partner threshold checks, share-group
// formation and rejection with the detour bound θ, set-packing swap
// decisions, and the request's assignment/revocation lifecycle from the
// simulator — plus a per-frame stability certificate (a blocking-pair
// scan over the realized matching, see certify.go).
//
// The paper's central claim is stability: no passenger-taxi pair prefers
// each other over their assigned partners. Aggregate metrics (package
// obs) can say how good a matching was; this package answers *why*
// passenger X got taxi Y, which taxis refused, and whether a live
// frame's matching is actually stable — the audit "Uber Stable" and the
// peer-to-peer ridesharing literature run post hoc, kept as an always-on
// runtime surface.
//
// Recording follows the obs conventions: a process-wide Default recorder
// the instrumented packages write into, gated by a kill switch. Tracing
// is OFF by default — hot paths pay exactly one atomic load via Active()
// until an operator (or cmd/dispatchd's -dtrace flag, or cmd/taxisim's
// -trace-out) switches it on. Memory is bounded twice over: the ring
// keeps at most Capacity request traces (oldest evicted first) and each
// trace keeps at most PerTraceCap events (later events counted, not
// stored).
package dtrace

import (
	"sync"
	"sync/atomic"
)

// enabled is the process-wide recording switch. Unlike obs, tracing is
// opt-in: the default is off, so the untraced dispatch path costs one
// atomic load per potential recording site.
var enabled atomic.Bool

// SetEnabled switches decision-trace recording on or off process-wide
// (the kill switch).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether decision tracing is on.
func Enabled() bool { return enabled.Load() }

var defaultRecorder = New(DefaultCapacity, DefaultPerTraceCap)

// Default returns the process-wide recorder the instrumented packages
// write into and cmd/dispatchd serves.
func Default() *Recorder { return defaultRecorder }

// Active returns the default recorder when tracing is enabled, nil
// otherwise. Hot paths guard every recording site with it:
//
//	if rec := dtrace.Active(); rec != nil { rec.Record(id, ev) }
func Active() *Recorder {
	if !enabled.Load() {
		return nil
	}
	return defaultRecorder
}

// Capacity defaults: how many request traces the ring retains, how many
// events one trace retains, and how many frame certificates are kept.
const (
	DefaultCapacity    = 4096
	DefaultPerTraceCap = 512
	DefaultCertCap     = 1024
)

// Kind labels one decision-trace event.
type Kind string

// Decision kinds recorded by the matching pipeline, plus the simulator
// lifecycle kinds (which reuse the sim event names verbatim: "request",
// "assign", "pickup", "dropoff", "abandon", "cancel", "requeue",
// "rescue").
const (
	// KindCandidates is the dummy-partner threshold check at preference-
	// build time: which taxis are ahead of the request's dummy, with the
	// top-ranked candidates' costs.
	KindCandidates Kind = "candidates"
	// KindPropose is one deferred-acceptance proposal (Algorithm 1 or
	// its taxi-proposing mirror) with its outcome.
	KindPropose Kind = "propose"
	// KindDisplaced marks a request losing its tentative taxi to a rival
	// the taxi prefers.
	KindDisplaced Kind = "displaced"
	// KindGroupFormed / KindGroupRejected are Algorithm 3's feasible-
	// group decisions under the detour bound θ.
	KindGroupFormed   Kind = "group_formed"
	KindGroupRejected Kind = "group_rejected"
	// KindPackPick marks a feasible group chosen by the set packing;
	// KindPackSwap records a local-search exchange move.
	KindPackPick Kind = "pack_pick"
	KindPackSwap Kind = "pack_swap"
)

// Candidate is one taxi ahead of a request's dummy partner at
// preference-build time.
type Candidate struct {
	TaxiID int `json:"taxiId"`
	// Rank is the taxi's position in the request's preference list
	// (0 = most preferred).
	Rank int `json:"rank"`
	// PickupKm is the request-side cost (D(t, r^s) non-sharing; the
	// §V-A average for shared units).
	PickupKm float64 `json:"pickupKm"`
	// NetKm is the taxi-side cost (D(t, r^s) − α·D(r^s, r^d)).
	NetKm float64 `json:"netKm"`
}

// Event is one causally-ordered step of a request's decision trace. Seq
// is a recorder-global monotone sequence number, so interleaving events
// of different requests within a frame stay ordered.
type Event struct {
	Seq   uint64 `json:"seq"`
	Frame int    `json:"frame"`
	Kind  Kind   `json:"kind"`
	// TaxiID is the taxi the decision concerns, or -1.
	TaxiID int `json:"taxiId"`
	// ReqRank is the taxi's rank in the request's preference list;
	// TaxiRank is the request's rank in the taxi's list (-1 = unknown
	// or not applicable).
	ReqRank  int `json:"reqRank"`
	TaxiRank int `json:"taxiRank"`
	// RivalID and RivalRank identify the competing request (or, for
	// taxi-proposing runs, the competing taxi) a refusal or displacement
	// was decided against, with its rank on the decider's list.
	RivalID   int `json:"rivalId"`
	RivalRank int `json:"rivalRank"`
	// Outcome is the decision result ("accepted", "refused",
	// "displaced", a rejection reason, …).
	Outcome string `json:"outcome,omitempty"`
	// Detail is a human-readable elaboration with the numeric evidence.
	Detail string `json:"detail,omitempty"`
	// Members lists the request IDs of a share group the event concerns.
	Members []int `json:"members,omitempty"`
	// Candidates carries the top-ranked acceptable taxis of a
	// KindCandidates event.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Acceptable and Pool are the dummy-threshold counts of a
	// KindCandidates event: how many of the frame's Pool taxis sit ahead
	// of the request's dummy partner.
	Acceptable int `json:"acceptable,omitempty"`
	Pool       int `json:"pool,omitempty"`
}

// Ev returns an Event of the given kind with every ID and rank field
// initialised to -1 (unknown), ready for call sites to fill in.
func Ev(kind Kind) Event {
	return Event{Kind: kind, TaxiID: -1, ReqRank: -1, TaxiRank: -1, RivalID: -1, RivalRank: -1}
}

// Trace is the snapshot of one request's decision history.
type Trace struct {
	RequestID int     `json:"requestId"`
	Events    []Event `json:"events"`
	// DroppedEvents counts events beyond the per-trace cap that were
	// recorded but not stored.
	DroppedEvents int `json:"droppedEvents,omitempty"`
}

// trace is the mutable store behind one Trace snapshot.
type trace struct {
	events  []Event
	dropped int
}

// Recorder is a bounded, concurrency-safe store of per-request decision
// traces and per-frame stability certificates. All methods may be called
// concurrently; recording sites should reach the process-wide instance
// through Active so a disabled recorder costs one atomic load.
type Recorder struct {
	frame atomic.Int64 // current simulation frame, set by the engine

	mu          sync.Mutex
	seq         uint64
	capacity    int
	perTraceCap int
	traces      map[int]*trace
	order       []int // request IDs in first-touch order, for FIFO eviction

	certCap   int
	certs     map[int]*Certificate
	certOrder []int
	notes     map[int][]string
	noteOrder []int // note frames in first-touch order, for FIFO eviction

	evictedTraces uint64
	droppedEvents uint64
}

// New returns an empty recorder retaining at most capacity request
// traces of at most perTraceCap events each. Non-positive arguments take
// the package defaults.
func New(capacity, perTraceCap int) *Recorder {
	r := &Recorder{
		traces:  make(map[int]*trace),
		certs:   make(map[int]*Certificate),
		notes:   make(map[int][]string),
		certCap: DefaultCertCap,
	}
	r.capacity = normCap(capacity, DefaultCapacity)
	r.perTraceCap = normCap(perTraceCap, DefaultPerTraceCap)
	return r
}

func normCap(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// SetCapacity bounds the number of retained request traces, evicting the
// oldest if the ring already holds more. Non-positive restores the
// default.
func (r *Recorder) SetCapacity(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.capacity = normCap(n, DefaultCapacity)
	r.evictLocked()
}

// SetPerTraceCap bounds the events retained per trace. Only future
// events are affected. Non-positive restores the default.
func (r *Recorder) SetPerTraceCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perTraceCap = normCap(n, DefaultPerTraceCap)
}

// SetFrame publishes the engine's current frame number; events recorded
// without an explicit frame are stamped with it.
func (r *Recorder) SetFrame(n int) { r.frame.Store(int64(n)) }

// Frame returns the last frame published by SetFrame.
func (r *Recorder) Frame() int { return int(r.frame.Load()) }

// Record appends one event to the request's trace, stamping the
// recorder-global sequence number and (if the event carries no frame)
// the current frame. A new request beyond the ring capacity evicts the
// oldest trace; an event beyond the per-trace cap is counted as dropped.
func (r *Recorder) Record(reqID int, e Event) {
	if e.Frame == 0 {
		e.Frame = r.Frame()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	t := r.traces[reqID]
	if t == nil {
		t = &trace{}
		r.traces[reqID] = t
		r.order = append(r.order, reqID)
		r.evictLocked()
	}
	if len(t.events) >= r.perTraceCap {
		t.dropped++
		r.droppedEvents++
		return
	}
	t.events = append(t.events, e)
}

// evictLocked drops oldest traces until the ring fits its capacity.
func (r *Recorder) evictLocked() {
	for len(r.order) > r.capacity {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.traces, old)
		r.evictedTraces++
	}
}

// Lifecycle records one simulator lifecycle event (assign, pickup,
// requeue, …) on the request's trace.
func (r *Recorder) Lifecycle(reqID, frame, taxiID int, kind Kind, detail string) {
	e := Ev(kind)
	e.Frame = frame
	e.TaxiID = taxiID
	e.Detail = detail
	r.Record(reqID, e)
}

// Trace returns a snapshot of one request's decision history.
func (r *Recorder) Trace(reqID int) (Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[reqID]
	if !ok {
		return Trace{}, false
	}
	return Trace{
		RequestID:     reqID,
		Events:        append([]Event(nil), t.events...),
		DroppedEvents: t.dropped,
	}, true
}

// TraceIDs returns the retained request IDs, oldest first.
func (r *Recorder) TraceIDs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.order...)
}

// Snapshot returns every retained trace, oldest request first.
func (r *Recorder) Snapshot() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.order))
	for _, id := range r.order {
		t := r.traces[id]
		out = append(out, Trace{
			RequestID:     id,
			Events:        append([]Event(nil), t.events...),
			DroppedEvents: t.dropped,
		})
	}
	return out
}

// AddFrameNote attaches a frame-level annotation (a degraded dispatch, a
// taxi breakdown, a failed certificate) surfaced with the frame's
// stability certificate.
func (r *Recorder) AddFrameNote(frame int, note string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.notes[frame]; !ok {
		r.noteOrder = append(r.noteOrder, frame)
		// Notes ride the certificate ring's bound: beyond certCap
		// annotated frames, the oldest frame's notes are evicted.
		// noteOrder may hold frames whose notes a certificate eviction
		// already removed; skip those.
		for len(r.notes) >= r.certCap && len(r.noteOrder) > 0 {
			old := r.noteOrder[0]
			r.noteOrder = r.noteOrder[1:]
			if old != frame {
				delete(r.notes, old)
			}
		}
	}
	r.notes[frame] = append(r.notes[frame], note)
}

// PutCertificate stores one frame's stability certificate, evicting the
// oldest beyond the certificate ring capacity.
func (r *Recorder) PutCertificate(c *Certificate) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.certs[c.Frame]; !ok {
		r.certOrder = append(r.certOrder, c.Frame)
		for len(r.certOrder) > r.certCap {
			old := r.certOrder[0]
			r.certOrder = r.certOrder[1:]
			delete(r.certs, old)
			delete(r.notes, old)
		}
	}
	r.certs[c.Frame] = c
}

// Certificate returns the stored certificate for one frame, with any
// frame notes attached, or false when the frame is unknown (not yet
// committed, evicted, or traced with recording off).
func (r *Recorder) Certificate(frame int) (Certificate, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.certs[frame]
	if !ok {
		return Certificate{}, false
	}
	out := *c
	out.Violations = append([]BlockingPair(nil), c.Violations...)
	out.Notes = append(append([]string(nil), c.Notes...), r.notes[frame]...)
	return out, true
}

// CertifiedFrames returns the frames holding a certificate, oldest
// first.
func (r *Recorder) CertifiedFrames() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.certOrder...)
}

// Stats summarises the recorder's occupancy for health surfaces.
type Stats struct {
	Traces        int    `json:"traces"`
	Events        uint64 `json:"events"`
	Certificates  int    `json:"certificates"`
	EvictedTraces uint64 `json:"evictedTraces"`
	DroppedEvents uint64 `json:"droppedEvents"`
}

// Stats returns the recorder's current occupancy and loss counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Traces:        len(r.traces),
		Events:        r.seq,
		Certificates:  len(r.certs),
		EvictedTraces: r.evictedTraces,
		DroppedEvents: r.droppedEvents,
	}
}

// Reset drops every trace, certificate, and note, keeping the configured
// capacities.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = 0
	r.traces = make(map[int]*trace)
	r.order = nil
	r.certs = make(map[int]*Certificate)
	r.certOrder = nil
	r.notes = make(map[int][]string)
	r.noteOrder = nil
	r.evictedTraces = 0
	r.droppedEvents = 0
}
