package flightrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stabledispatch/internal/prof"
)

// TestOverrunHandlerBundlesCapture feeds a synthetic prof capture
// through the handler and checks the bundle carries the attribution and
// pprof evidence under the frame_overrun reason.
func TestOverrunHandlerBundlesCapture(t *testing.T) {
	dir := t.TempDir()
	r, err := Configure(Config{Dir: dir, Frames: 8, Events: 16})
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer Disable()
	fillFrames(r, 5)

	var trig prof.FrameProfile
	trig.Frame = 412
	trig.WallNs = 90e6
	trig.Overrun = true
	trig.StageNs[prof.StageMatching] = 70e6
	trig.StageCalls[prof.StageMatching] = 1
	trig.StageNs[prof.StageCostPlane] = 10e6
	trig.StageCalls[prof.StageCostPlane] = 1

	OverrunHandler()(prof.Capture{
		Trigger:    trig,
		BudgetNs:   50e6,
		Frames:     3,
		Suppressed: 2,
		CPU:        []byte("cpu-profile-bytes"),
		HeapPre:    []byte("heap-pre-bytes"),
		Heap:       []byte("heap-post-bytes"),
	})

	bundles := listBundles(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly 1", bundles)
	}
	if !strings.Contains(bundles[0], "frame_overrun") {
		t.Fatalf("bundle dir %q does not carry the overrun reason", bundles[0])
	}
	bdir := filepath.Join(dir, bundles[0])
	m, err := ReadManifest(bdir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Trigger.Reason != ReasonOverrun || !m.Trigger.Forced || m.Trigger.Frame != 412 {
		t.Fatalf("manifest trigger = %+v", m.Trigger)
	}
	if !strings.Contains(m.Trigger.Detail, "78% in matching") {
		t.Fatalf("detail %q missing dominant-stage attribution", m.Trigger.Detail)
	}
	for kind, name := range map[string]string{
		"profile": "profile.json", "cpu": "cpu.pprof",
		"heap_pre": "heap_pre.pprof", "heap": "heap.pprof",
	} {
		if m.Files[kind] != name {
			t.Fatalf("manifest files[%q] = %q, want %q (files=%v)", kind, m.Files[kind], name, m.Files)
		}
		if _, err := os.Stat(filepath.Join(bdir, name)); err != nil {
			t.Fatalf("attachment %s: %v", name, err)
		}
	}

	raw, err := os.ReadFile(filepath.Join(bdir, "profile.json"))
	if err != nil {
		t.Fatalf("read profile.json: %v", err)
	}
	var oc OverrunCapture
	if err := json.Unmarshal(raw, &oc); err != nil {
		t.Fatalf("parse profile.json: %v", err)
	}
	if oc.Schema != OverrunCaptureSchema || oc.BudgetNs != 50e6 || oc.Suppressed != 2 {
		t.Fatalf("profile.json = %+v", oc)
	}
	if oc.Trigger.Frame != 412 || len(oc.Trigger.Stages) != 2 {
		t.Fatalf("profile.json trigger = %+v", oc.Trigger)
	}
}

// TestOverrunHandlerSkipsEmptyCPU checks a capture without a CPU
// profile (profiler was busy) still bundles the heap pair.
func TestOverrunHandlerSkipsEmptyCPU(t *testing.T) {
	dir := t.TempDir()
	if _, err := Configure(Config{Dir: dir}); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer Disable()

	var trig prof.FrameProfile
	trig.Frame = 9
	trig.WallNs = 10e6
	OverrunHandler()(prof.Capture{
		Trigger: trig, BudgetNs: 1e6, Frames: 1,
		HeapPre: []byte("pre"), Heap: []byte("post"),
	})
	bundles := listBundles(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want 1", bundles)
	}
	m, err := ReadManifest(filepath.Join(dir, bundles[0]))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if _, ok := m.Files["cpu"]; ok {
		t.Fatalf("cpu attachment listed despite empty capture: %v", m.Files)
	}
	if m.Files["heap"] != "heap.pprof" || m.Files["heap_pre"] != "heap_pre.pprof" {
		t.Fatalf("heap pair missing: %v", m.Files)
	}
}
