// Package flightrec is the dispatch pipeline's "black box": a bounded
// ring of rich per-frame context (the KPI sample, the lifecycle event
// tail, the frame's stability-certificate summary, and the
// fault-injection state) that is continuously overwritten while the run
// is healthy and frozen into a self-contained diagnostic bundle the
// moment something goes wrong.
//
// Triggers follow a small taxonomy (see Reason): an SLO breach from
// internal/slo, a dispatch.Resilient degrade, a recovered panic, a
// stability-certificate violation from dtrace.Certify, or a manual
// operator request (POST /v1/debug/bundle). On a trigger the recorder
// snapshots its rings under the lock and writes a bundle directory —
// manifest JSON, KPI window CSV, event tail JSONL, per-frame context
// JSONL, and optionally a Chrome decision trace and a pprof heap
// snapshot — so the frames that *caused* the incident survive even
// though the live rings keep rolling.
//
// Bundles are rate-limited (a cooldown in frames between automatic
// triggers; manual triggers may force) and retention-capped (oldest
// bundle directories are deleted beyond MaxBundles), so a flapping SLO
// cannot fill a disk.
//
// The recorder follows the obs/dtrace conventions: a process-wide
// default installed by Configure and reached through Active, costing
// the instrumented hot paths one atomic load while disabled.
package flightrec

import (
	"os"
	"sync"
	"sync/atomic"

	"stabledispatch/internal/obs"
	"stabledispatch/internal/tseries"
)

// Reason labels one trigger class. The taxonomy is closed on purpose:
// dashboards and tests match on these strings.
type Reason string

// Trigger taxonomy.
const (
	// ReasonSLOBreach marks an SLO entering the breach state.
	ReasonSLOBreach Reason = "slo_breach"
	// ReasonDegraded marks a dispatch.Resilient frame handed to the
	// fallback dispatcher (deadline overrun, panic, or error).
	ReasonDegraded Reason = "degraded_frame"
	// ReasonPanic marks a recovered panic outside the dispatch path
	// (e.g. an HTTP handler).
	ReasonPanic Reason = "panic"
	// ReasonStability marks a frame whose stability certificate found
	// blocking pairs.
	ReasonStability Reason = "stability_violation"
	// ReasonOverrun marks a frame that blew the frame-budget profiler's
	// deadline budget; the bundle carries the capture's pprof evidence.
	ReasonOverrun Reason = "frame_overrun"
	// ReasonManual marks an operator-requested bundle.
	ReasonManual Reason = "manual"
)

// Defaults for Config.
const (
	DefaultFrames       = 120
	DefaultEvents       = 4096
	DefaultCooldown     = 300
	DefaultMaxBundles   = 8
	DefaultBundlePrefix = "bundle-"
)

// Config parameterises a Recorder.
type Config struct {
	// Dir is the directory bundles are written into (created on
	// demand). Required.
	Dir string
	// Frames bounds the per-frame context ring (default DefaultFrames).
	Frames int
	// Events bounds the lifecycle event tail (default DefaultEvents).
	Events int
	// CooldownFrames is the minimum number of frames between two
	// automatic bundles (default DefaultCooldown). Forced (manual)
	// triggers ignore it.
	CooldownFrames int
	// MaxBundles caps retained bundle directories; beyond it the
	// oldest are deleted (default DefaultMaxBundles).
	MaxBundles int
	// Heap, when true, adds a pprof heap snapshot to every bundle.
	Heap bool
	// ChromeTrace, when true, adds the decision-trace ring as a Chrome
	// trace-event file when decision tracing is active at trigger time.
	ChromeTrace bool
}

func (c Config) withDefaults() Config {
	if c.Frames <= 0 {
		c.Frames = DefaultFrames
	}
	if c.Events <= 0 {
		c.Events = DefaultEvents
	}
	if c.CooldownFrames <= 0 {
		c.CooldownFrames = DefaultCooldown
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = DefaultMaxBundles
	}
	return c
}

// CertSummary condenses one frame's stability certificate for the ring
// (the full certificate lives in dtrace's own ring).
type CertSummary struct {
	Stable     bool `json:"stable"`
	Violations int  `json:"violations"`
	Matched    int  `json:"matched"`
	Requests   int  `json:"requests"`
	Taxis      int  `json:"taxis"`
}

// FaultInfo is the fault-injection state carried into the manifest.
type FaultInfo struct {
	Seed                int64   `json:"seed"`
	BreakdownRate       float64 `json:"breakdownRate"`
	DriverCancelRate    float64 `json:"driverCancelRate"`
	PassengerCancelRate float64 `json:"passengerCancelRate"`
	// ActiveOutages counts taxis offline this frame (configured
	// outages, chaos injections, and breakdown repairs).
	ActiveOutages int `json:"activeOutages"`
}

// FrameContext is one frame's rich context in the ring.
type FrameContext struct {
	Frame int64          `json:"frame"`
	KPI   tseries.Sample `json:"kpi"`
	// Cert is the frame's stability-certificate summary (nil when
	// decision tracing is off).
	Cert *CertSummary `json:"cert,omitempty"`
	// Fault is the fault-injection state (nil when no injector is
	// configured).
	Fault *FaultInfo `json:"fault,omitempty"`
}

// EventRecord is one lifecycle event in the tail. Payload is the
// sink-side event value (sim.Event in practice), marshalled verbatim
// into events.jsonl.
type EventRecord struct {
	Frame   int64 `json:"frame"`
	Payload any   `json:"event"`
}

// Recorder is the bounded black box. Safe for concurrent use.
type Recorder struct {
	cfg Config

	mu         sync.Mutex
	frames     []FrameContext // ring
	frameHead  int
	frameN     int
	events     []EventRecord // ring
	eventHead  int
	eventN     int
	seq        int   // bundles written so far (also the directory sequence)
	lastFrame  int64 // frame of the last automatic bundle
	hasBundled bool
	suppressed uint64
	// sections are extra manifest payloads registered by other layers
	// (the SLO engine registers its status here).
	sections map[string]func() any
	sectKeys []string
}

// Process-wide default recorder; nil while disabled.
var defaultRec atomic.Pointer[Recorder]

// Configure builds a recorder and installs it as the process-wide
// default returned by Active. The bundle directory is created lazily at
// first trigger.
func Configure(cfg Config) (*Recorder, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defaultRec.Store(r)
	return r, nil
}

// New builds a recorder without installing it (library use and tests).
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, errNoDir
	}
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		frames:   make([]FrameContext, cfg.Frames),
		events:   make([]EventRecord, cfg.Events),
		sections: make(map[string]func() any),
	}, nil
}

// Disable uninstalls the process-wide recorder; instrumented sites go
// back to one atomic load.
func Disable() { defaultRec.Store(nil) }

// Active returns the installed recorder, or nil while flight recording
// is disabled. Hot paths guard every recording site with it.
func Active() *Recorder { return defaultRec.Load() }

// Config returns the (default-filled) configuration in force.
func (r *Recorder) Config() Config { return r.cfg }

// Observability counters.
var (
	obsBundles    = obs.GetOrCreateCounter("flightrec_bundles_total")
	obsSuppressed = obs.GetOrCreateCounter("flightrec_suppressed_total")
	obsErrors     = obs.GetOrCreateCounter("flightrec_bundle_errors_total")
)

// ObserveFrame pushes one frame's context into the ring, evicting the
// oldest beyond capacity. O(1), no allocation beyond the caller's
// context value.
func (r *Recorder) ObserveFrame(fc FrameContext) {
	r.mu.Lock()
	if r.frameN < len(r.frames) {
		r.frames[(r.frameHead+r.frameN)%len(r.frames)] = fc
		r.frameN++
	} else {
		r.frames[r.frameHead] = fc
		r.frameHead = (r.frameHead + 1) % len(r.frames)
	}
	r.mu.Unlock()
}

// RecordEvent appends one lifecycle event to the tail ring.
func (r *Recorder) RecordEvent(frame int64, payload any) {
	r.mu.Lock()
	if r.eventN < len(r.events) {
		r.events[(r.eventHead+r.eventN)%len(r.events)] = EventRecord{Frame: frame, Payload: payload}
		r.eventN++
	} else {
		r.events[r.eventHead] = EventRecord{Frame: frame, Payload: payload}
		r.eventHead = (r.eventHead + 1) % len(r.events)
	}
	r.mu.Unlock()
}

// AddManifestSection registers an extra manifest payload under key,
// resolved at bundle time (the SLO engine registers its per-SLO status
// this way). Re-registering a key replaces it.
func (r *Recorder) AddManifestSection(key string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sections[key]; !ok {
		r.sectKeys = append(r.sectKeys, key)
	}
	r.sections[key] = fn
}

// FrameWindow copies out the retained frame contexts, oldest first.
func (r *Recorder) FrameWindow() []FrameContext {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frameWindowLocked()
}

func (r *Recorder) frameWindowLocked() []FrameContext {
	out := make([]FrameContext, 0, r.frameN)
	for i := 0; i < r.frameN; i++ {
		out = append(out, r.frames[(r.frameHead+i)%len(r.frames)])
	}
	return out
}

func (r *Recorder) eventTailLocked() []EventRecord {
	out := make([]EventRecord, 0, r.eventN)
	for i := 0; i < r.eventN; i++ {
		out = append(out, r.events[(r.eventHead+i)%len(r.events)])
	}
	return out
}

// Suppressed returns how many automatic triggers the cooldown swallowed.
func (r *Recorder) Suppressed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// Bundles returns how many bundles this recorder has written.
func (r *Recorder) Bundles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// TriggerActive fires a trigger on the installed recorder, if any; the
// dispatch and HTTP layers use it so a disabled flight recorder costs
// one atomic load.
func TriggerActive(frame int64, reason Reason, detail string) {
	if r := Active(); r != nil {
		r.Trigger(frame, reason, detail, false) //nolint:errcheck // counted in obsErrors
	}
}

// Trigger freezes the rings and writes one diagnostic bundle, returning
// its directory path. An automatic trigger (force=false) inside the
// cooldown window is suppressed and returns ("", nil); a forced trigger
// bypasses the cooldown but still counts toward retention. Write
// failures are counted in flightrec_bundle_errors_total and returned.
func (r *Recorder) Trigger(frame int64, reason Reason, detail string, force bool) (string, error) {
	return r.TriggerFiles(frame, reason, detail, force, nil)
}

// Attachment is one extra payload file a trigger site ships with its
// bundle (the frame-budget profiler attaches pprof captures this way).
// Kind is the manifest Files key, Name the filename, and Fill writes
// the contents.
type Attachment struct {
	Kind string
	Name string
	Fill func(*os.File) error
}

// TriggerFiles is Trigger with extra attachment files written into the
// bundle directory and indexed in the manifest's Files map.
func (r *Recorder) TriggerFiles(frame int64, reason Reason, detail string, force bool, attachments []Attachment) (string, error) {
	r.mu.Lock()
	// Cooldown: frames since the last automatic bundle. A frame counter
	// that went backwards (a new run reusing the recorder) re-arms it.
	if !force && r.hasBundled && frame >= r.lastFrame && frame-r.lastFrame < int64(r.cfg.CooldownFrames) {
		r.suppressed++
		r.mu.Unlock()
		obsSuppressed.Inc()
		return "", nil
	}
	r.seq++
	seq := r.seq
	r.lastFrame = frame
	r.hasBundled = true
	snap := bundleSnapshot{
		seq:        seq,
		frame:      frame,
		reason:     reason,
		detail:     detail,
		forced:     force,
		frames:     r.frameWindowLocked(),
		events:     r.eventTailLocked(),
		suppressed: r.suppressed,
		attached:   attachments,
	}
	for _, k := range r.sectKeys {
		snap.sections = append(snap.sections, manifestSection{key: k, fn: r.sections[k]})
	}
	r.mu.Unlock()

	dir, err := r.writeBundle(snap)
	if err != nil {
		obsErrors.Inc()
		return "", err
	}
	obsBundles.Inc()
	r.enforceRetention()
	return dir, nil
}
