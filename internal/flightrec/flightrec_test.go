package flightrec

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stabledispatch/internal/tseries"
)

func newTestRecorder(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func fillFrames(r *Recorder, n int) {
	for f := 0; f < n; f++ {
		r.ObserveFrame(FrameContext{
			Frame: int64(f),
			KPI:   tseries.Sample{Frame: int64(f), Served: int64(f * 2)},
		})
		r.RecordEvent(int64(f), map[string]any{"kind": "request_arrived", "frame": f})
	}
}

func listBundles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), DefaultBundlePrefix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestBundleContents triggers once and checks every payload file plus
// the manifest contract the CI watchdog depends on.
func TestBundleContents(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Config{Dir: dir, Frames: 8, Events: 16})
	fillFrames(r, 20) // overflows both rings
	r.AddManifestSection("slo", func() any { return map[string]string{"delay": "breach"} })

	path, err := r.Trigger(19, ReasonDegraded, "deadline 1ms exceeded", false)
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Schema != ManifestSchema {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.Trigger.Reason != ReasonDegraded || m.Trigger.Frame != 19 {
		t.Errorf("trigger = %+v", m.Trigger)
	}
	if m.Trigger.Detail != "deadline 1ms exceeded" {
		t.Errorf("detail = %q", m.Trigger.Detail)
	}
	// The 8-frame ring retained frames 12..19.
	if m.Window.Frames != 8 || m.Window.FirstFrame != 12 || m.Window.LastFrame != 19 {
		t.Errorf("window = %+v", m.Window)
	}
	if m.Window.Events != 16 {
		t.Errorf("events in window = %d, want 16", m.Window.Events)
	}
	if got := m.Sections["slo"]; got == nil {
		t.Error("registered manifest section missing")
	}

	// KPI CSV: header plus one row per retained frame.
	raw, err := os.ReadFile(filepath.Join(path, m.Files["kpi"]))
	if err != nil {
		t.Fatalf("read kpi.csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1+8 {
		t.Errorf("kpi.csv has %d lines, want 9", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,") {
		t.Errorf("kpi.csv header = %q", lines[0])
	}

	// Event tail and frame context are line-valid JSON.
	for _, file := range []string{m.Files["events"], m.Files["frames"]} {
		f, err := os.Open(filepath.Join(path, file))
		if err != nil {
			t.Fatalf("open %s: %v", file, err)
		}
		sc := bufio.NewScanner(f)
		n := 0
		for sc.Scan() {
			var v map[string]any
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				t.Errorf("%s line %d invalid JSON: %v", file, n, err)
			}
			n++
		}
		f.Close()
		if n == 0 {
			t.Errorf("%s is empty", file)
		}
	}
}

// TestCooldownSuppresses checks the automatic-trigger rate limit, the
// forced bypass, and the epoch reset when the frame counter restarts.
func TestCooldownSuppresses(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Config{Dir: dir, CooldownFrames: 100})
	fillFrames(r, 5)

	if path, err := r.Trigger(10, ReasonSLOBreach, "", false); err != nil || path == "" {
		t.Fatalf("first trigger: path=%q err=%v", path, err)
	}
	// Inside the cooldown: suppressed, no error, no new directory.
	if path, err := r.Trigger(50, ReasonSLOBreach, "", false); err != nil || path != "" {
		t.Fatalf("suppressed trigger: path=%q err=%v", path, err)
	}
	if got := r.Suppressed(); got != 1 {
		t.Errorf("suppressed = %d, want 1", got)
	}
	// Forced bypasses the cooldown.
	if path, err := r.Trigger(60, ReasonManual, "operator", true); err != nil || path == "" {
		t.Fatalf("forced trigger: path=%q err=%v", path, err)
	}
	// Past the cooldown (measured from the forced trigger's frame).
	if path, err := r.Trigger(200, ReasonSLOBreach, "", false); err != nil || path == "" {
		t.Fatalf("post-cooldown trigger: path=%q err=%v", path, err)
	}
	// Frame counter restarted (new run): cooldown re-arms rather than
	// suppressing forever.
	if path, err := r.Trigger(3, ReasonSLOBreach, "", false); err != nil || path == "" {
		t.Fatalf("epoch-reset trigger: path=%q err=%v", path, err)
	}
	if got := len(listBundles(t, dir)); got != 4 {
		t.Errorf("bundle count = %d, want 4", got)
	}
}

// TestRetentionPrunesOldest fills past MaxBundles and checks the oldest
// sequence directories are removed.
func TestRetentionPrunesOldest(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Config{Dir: dir, MaxBundles: 3, CooldownFrames: 1})
	fillFrames(r, 2)
	for i := 0; i < 6; i++ {
		if _, err := r.Trigger(int64(i*10), ReasonManual, "", true); err != nil {
			t.Fatalf("trigger %d: %v", i, err)
		}
	}
	bundles := listBundles(t, dir)
	if len(bundles) != 3 {
		t.Fatalf("retained %d bundles, want 3: %v", len(bundles), bundles)
	}
	// Survivors are the newest sequences (4, 5, 6).
	for _, name := range bundles {
		if strings.HasPrefix(name, DefaultBundlePrefix+"00000") &&
			(strings.Contains(name, "000001-") || strings.Contains(name, "000002-") || strings.Contains(name, "000003-")) {
			t.Errorf("old bundle %s survived retention", name)
		}
	}
}

// TestConfigureActiveDisable pins the process-global lifecycle.
func TestConfigureActiveDisable(t *testing.T) {
	defer Disable()
	if Active() != nil {
		t.Fatal("Active() non-nil before Configure")
	}
	TriggerActive(1, ReasonPanic, "no-op while disabled") // must not panic
	r, err := Configure(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if Active() != r {
		t.Fatal("Active() != configured recorder")
	}
	if got := r.Config().Frames; got != DefaultFrames {
		t.Errorf("default Frames = %d, want %d", got, DefaultFrames)
	}
	Disable()
	if Active() != nil {
		t.Fatal("Active() non-nil after Disable")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted empty Dir")
	}
}

// TestReasonSanitized keeps directory names shell-safe even for hostile
// detail strings routed into the reason.
func TestReasonSanitized(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Config{Dir: dir})
	path, err := r.Trigger(0, Reason("SLO/../breach !"), "", true)
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, "/ !.") && !strings.HasSuffix(base, "slo----breach--") {
		t.Errorf("unsanitised bundle name %q", base)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("bundle escaped its directory: %s", path)
	}
}
