package flightrec

import (
	"encoding/json"
	"fmt"
	"os"

	"stabledispatch/internal/prof"
)

// OverrunCapture is the profile.json payload of an overrun bundle: the
// triggering frame's attribution plus the capture parameters.
type OverrunCapture struct {
	Schema   string `json:"schema"`
	BudgetNs int64  `json:"budgetNs"`
	Frames   int    `json:"captureFrames"`
	// Suppressed counts overruns the profiler's own cooldown swallowed
	// since the previous capture (distinct from the recorder's).
	Suppressed int64            `json:"suppressed"`
	Trigger    prof.FrameReport `json:"trigger"`
}

// OverrunCaptureSchema versions profile.json.
const OverrunCaptureSchema = "prof-capture/v1"

// OverrunHandler returns a prof.Config.OnCapture callback that freezes
// each finalised overrun capture into a flight-recorder bundle on the
// installed recorder: manifest reason frame_overrun, the frame ring as
// usual, plus profile.json (attribution), cpu.pprof (absent when a live
// /debug/pprof session owned the profiler), and the heap_pre/heap pair
// bracketing the capture.
//
// The trigger is forced: the profiler's CooldownFrames is the single
// rate limiter for overrun bundles, so its "exactly one capture per
// cooldown" guarantee survives recorder cooldown interleaving with
// other trigger classes (see DESIGN.md).
func OverrunHandler() func(prof.Capture) {
	return func(c prof.Capture) {
		r := Active()
		if r == nil {
			return
		}
		report := c.Trigger.Report()
		stage, share := c.Trigger.Dominant()
		detail := fmt.Sprintf("frame %d ran %.2fms against a %.2fms budget",
			c.Trigger.Frame, float64(c.Trigger.WallNs)/1e6, float64(c.BudgetNs)/1e6)
		if stage != "" {
			detail += fmt.Sprintf("; %.0f%% in %s", share*100, stage)
		}
		files := []Attachment{{
			Kind: "profile",
			Name: "profile.json",
			Fill: func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(OverrunCapture{
					Schema:     OverrunCaptureSchema,
					BudgetNs:   c.BudgetNs,
					Frames:     c.Frames,
					Suppressed: c.Suppressed,
					Trigger:    report,
				})
			},
		}}
		files = append(files, rawAttachment("heap_pre", "heap_pre.pprof", c.HeapPre)...)
		files = append(files, rawAttachment("heap", "heap.pprof", c.Heap)...)
		files = append(files, rawAttachment("cpu", "cpu.pprof", c.CPU)...)
		r.TriggerFiles(c.Trigger.Frame, ReasonOverrun, detail, true, files) //nolint:errcheck // counted in obsErrors
	}
}

// rawAttachment wraps a byte payload as an attachment; empty payloads
// attach nothing.
func rawAttachment(kind, name string, data []byte) []Attachment {
	if len(data) == 0 {
		return nil
	}
	return []Attachment{{Kind: kind, Name: name, Fill: func(f *os.File) error {
		_, err := f.Write(data)
		return err
	}}}
}
