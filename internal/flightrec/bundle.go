package flightrec

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/tseries"
)

var errNoDir = errors.New("flightrec: Config.Dir is required")

// ManifestSchema versions the bundle manifest layout; readers check it
// before trusting field shapes.
const ManifestSchema = "flightrec/v1"

// Manifest is the machine-readable index of one bundle. It is written
// as manifest.json and is the contract the CI watchdog and the degrade-
// pipeline test validate.
type Manifest struct {
	Schema  string          `json:"schema"`
	Seq     int             `json:"seq"`
	Trigger ManifestTrigger `json:"trigger"`
	// Window spans the frames retained in the ring at trigger time.
	Window ManifestWindow `json:"window"`
	// Stages summarises the dispatch stage timers accumulated so far
	// (seconds, interpolated quantiles).
	Stages []StageSummary `json:"stages,omitempty"`
	// Suppressed counts automatic triggers the cooldown swallowed
	// before this bundle.
	Suppressed uint64 `json:"suppressed"`
	// Files lists the bundle's payload files, kind → filename.
	Files map[string]string `json:"files"`
	// Sections carries extra payloads registered by other layers under
	// their key (the SLO engine's per-SLO status lives here).
	Sections map[string]any `json:"sections,omitempty"`
}

// ManifestTrigger names what fired the bundle.
type ManifestTrigger struct {
	Reason Reason `json:"reason"`
	Detail string `json:"detail,omitempty"`
	Frame  int64  `json:"frame"`
	Forced bool   `json:"forced,omitempty"`
}

// ManifestWindow spans the retained frame ring.
type ManifestWindow struct {
	Frames     int   `json:"frames"`
	FirstFrame int64 `json:"firstFrame"`
	LastFrame  int64 `json:"lastFrame"`
	Events     int   `json:"events"`
}

// StageSummary is one dispatch stage timer in the manifest.
type StageSummary struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	SumS  float64 `json:"sumSeconds"`
	P50S  float64 `json:"p50Seconds"`
	P95S  float64 `json:"p95Seconds"`
	P99S  float64 `json:"p99Seconds"`
}

type manifestSection struct {
	key string
	fn  func() any
}

// bundleSnapshot is the frozen state handed from Trigger (under the
// lock) to the writer (outside it).
type bundleSnapshot struct {
	seq        int
	frame      int64
	reason     Reason
	detail     string
	forced     bool
	frames     []FrameContext
	events     []EventRecord
	suppressed uint64
	sections   []manifestSection
	attached   []Attachment
}

// sanitizeReason keeps bundle directory names shell-safe.
func sanitizeReason(r Reason) string {
	s := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
			return c
		case c >= 'A' && c <= 'Z':
			return c + ('a' - 'A')
		default:
			return '-'
		}
	}, string(r))
	if s == "" {
		s = "trigger"
	}
	return s
}

// writeBundle renders one snapshot as a bundle directory.
func (r *Recorder) writeBundle(snap bundleSnapshot) (string, error) {
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: create bundle dir: %w", err)
	}
	name := fmt.Sprintf("%s%06d-f%06d-%s", DefaultBundlePrefix, snap.seq, snap.frame, sanitizeReason(snap.reason))
	dir := filepath.Join(r.cfg.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: create bundle: %w", err)
	}

	m := Manifest{
		Schema: ManifestSchema,
		Seq:    snap.seq,
		Trigger: ManifestTrigger{
			Reason: snap.reason,
			Detail: snap.detail,
			Frame:  snap.frame,
			Forced: snap.forced,
		},
		Window: ManifestWindow{
			Frames: len(snap.frames),
			Events: len(snap.events),
		},
		Suppressed: snap.suppressed,
		Files:      map[string]string{"manifest": "manifest.json"},
	}
	if n := len(snap.frames); n > 0 {
		m.Window.FirstFrame = snap.frames[0].Frame
		m.Window.LastFrame = snap.frames[n-1].Frame
	}
	for _, s := range obs.HistogramSummaries("dispatch_stage_seconds") {
		m.Stages = append(m.Stages, StageSummary{
			Stage: s.Label("stage"),
			Count: s.Count,
			SumS:  s.Sum,
			P50S:  s.P50,
			P95S:  s.P95,
			P99S:  s.P99,
		})
	}
	for _, sect := range snap.sections {
		if sect.fn == nil {
			continue
		}
		if m.Sections == nil {
			m.Sections = make(map[string]any)
		}
		m.Sections[sect.key] = sect.fn()
	}

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// KPI window: the ring's samples rendered through the shared CSV
	// writer, every series.
	keep(writeFile(dir, "kpi.csv", func(f *os.File) error {
		samples := make([]tseries.Sample, 0, len(snap.frames))
		for _, fc := range snap.frames {
			samples = append(samples, fc.KPI)
		}
		return tseries.WriteCSV(f, samples, nil)
	}))
	m.Files["kpi"] = "kpi.csv"

	// Per-frame rich context (certificate summaries, fault state).
	keep(writeFile(dir, "frames.jsonl", func(f *os.File) error {
		enc := json.NewEncoder(f)
		for _, fc := range snap.frames {
			if err := enc.Encode(fc); err != nil {
				return err
			}
		}
		return nil
	}))
	m.Files["frames"] = "frames.jsonl"

	// Lifecycle event tail.
	keep(writeFile(dir, "events.jsonl", func(f *os.File) error {
		enc := json.NewEncoder(f)
		for _, ev := range snap.events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
		return nil
	}))
	m.Files["events"] = "events.jsonl"

	// Optional: decision traces as a Chrome trace-event file.
	if r.cfg.ChromeTrace {
		if tr := dtrace.Active(); tr != nil {
			keep(writeFile(dir, "trace.json", func(f *os.File) error {
				return tr.WriteChromeTrace(f)
			}))
			m.Files["trace"] = "trace.json"
		}
	}

	// Trigger-site attachments (pprof captures from the frame-budget
	// profiler). Attachments own their Files keys: a capture's
	// stop-time heap profile supersedes the generic Heap option's.
	for _, a := range snap.attached {
		if a.Kind == "" || a.Name == "" || a.Fill == nil {
			continue
		}
		keep(writeFile(dir, a.Name, a.Fill))
		m.Files[a.Kind] = a.Name
	}

	// Optional: heap profile.
	if r.cfg.Heap && m.Files["heap"] == "" {
		keep(writeFile(dir, "heap.pprof", func(f *os.File) error {
			return pprof.WriteHeapProfile(f)
		}))
		m.Files["heap"] = "heap.pprof"
	}

	keep(writeFile(dir, "manifest.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}))

	if firstErr != nil {
		return dir, fmt.Errorf("flightrec: write bundle %s: %w", name, firstErr)
	}
	return dir, nil
}

func writeFile(dir, name string, fill func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// enforceRetention deletes the oldest bundle directories beyond
// MaxBundles. Sequence numbers sort lexicographically (zero-padded), so
// name order is age order.
func (r *Recorder) enforceRetention() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), DefaultBundlePrefix) {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) <= r.cfg.MaxBundles {
		return
	}
	sort.Strings(bundles)
	for _, name := range bundles[:len(bundles)-r.cfg.MaxBundles] {
		if err := os.RemoveAll(filepath.Join(r.cfg.Dir, name)); err != nil {
			obsErrors.Inc()
		}
	}
}

// ReadManifest loads and validates one bundle's manifest (test and
// tooling helper).
func ReadManifest(bundleDir string) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(filepath.Join(bundleDir, "manifest.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("flightrec: parse manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return m, fmt.Errorf("flightrec: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	return m, nil
}
