package carpool

import (
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/trace"
)

func runSim(t *testing.T, d sim.Dispatcher, taxis []fleet.Taxi, reqs []fleet.Request) *sim.Report {
	t.Helper()
	s, err := sim.New(sim.Config{
		Dispatcher:  d,
		Params:      pref.DefaultParams(),
		DrainFrames: 600,
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run(%s): %v", d.Name(), err)
	}
	return rep
}

func smallWorld(t *testing.T, seed int64, taxis, frames int) ([]fleet.Taxi, []fleet.Request) {
	t.Helper()
	cfg := trace.BostonConfig(frames, seed)
	cfg.RequestsPerDay = 3000
	reqs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	fl, err := trace.Taxis(cfg.City, taxis, seed+1)
	if err != nil {
		t.Fatalf("Taxis: %v", err)
	}
	return fl, reqs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := (Config{Theta: -1}).Validate(); err == nil {
		t.Error("accepted negative theta")
	}
}

func TestNames(t *testing.T) {
	if got := NewRAII(DefaultConfig()).Name(); got != "RAII" {
		t.Errorf("Name = %q", got)
	}
	if got := NewSARP(DefaultConfig()).Name(); got != "SARP" {
		t.Errorf("Name = %q", got)
	}
	if got := NewILP(share.DefaultPackConfig()).Name(); got != "ILP" {
		t.Errorf("Name = %q", got)
	}
}

func TestBaselinesServeTraffic(t *testing.T) {
	taxis, reqs := smallWorld(t, 10, 12, 40)
	dispatchers := []sim.Dispatcher{
		NewRAII(DefaultConfig()),
		NewSARP(DefaultConfig()),
		NewILP(share.DefaultPackConfig()),
	}
	for _, d := range dispatchers {
		t.Run(d.Name(), func(t *testing.T) {
			rep := runSim(t, d, taxis, reqs)
			if rep.ServedCount() == 0 {
				t.Fatalf("%s served nothing out of %d", d.Name(), len(reqs))
			}
			if rep.ServedCount()*3 < len(reqs)*2 {
				t.Errorf("%s served only %d/%d", d.Name(), rep.ServedCount(), len(reqs))
			}
		})
	}
}

func TestInsertionBaselinesShareRides(t *testing.T) {
	// Overloaded fleet with aligned demand: insertion baselines must
	// produce at least one shared episode.
	var reqs []fleet.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, fleet.Request{
			ID:      i,
			Pickup:  geo.Point{X: float64(i % 3), Y: 0.2 * float64(i%5)},
			Dropoff: geo.Point{X: 8 + float64(i%3), Y: 0.2 * float64(i%5)},
			Frame:   i / 4,
		})
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{}},
		{ID: 1, Pos: geo.Point{X: 1}},
	}
	for _, d := range []sim.Dispatcher{NewRAII(DefaultConfig()), NewSARP(DefaultConfig())} {
		t.Run(d.Name(), func(t *testing.T) {
			rep := runSim(t, d, taxis, reqs)
			if rep.SharedRideCount() == 0 {
				t.Errorf("%s never shared a ride under saturation", d.Name())
			}
		})
	}
}

func TestBestInsertionIdleTaxi(t *testing.T) {
	v := sim.TaxiView{ID: 0, Pos: geo.Point{}, Idle: true}
	r := fleet.Request{ID: 1, Pickup: geo.Point{X: 2}, Dropoff: geo.Point{X: 5}}
	plan, ok := bestInsertion(v, r, geo.EuclidMetric, 5, 100, 1000)
	if !ok {
		t.Fatal("no insertion found for idle taxi")
	}
	if math.Abs(plan.added-5) > 1e-9 { // 2 km lead + 3 km trip
		t.Errorf("added = %v, want 5", plan.added)
	}
	if len(plan.route) != 2 {
		t.Errorf("route = %v", plan.route)
	}
}

func TestBestInsertionRespectsMaxAdded(t *testing.T) {
	v := sim.TaxiView{ID: 0, Pos: geo.Point{}, Idle: true}
	r := fleet.Request{ID: 1, Pickup: geo.Point{X: 50}, Dropoff: geo.Point{X: 60}}
	if _, ok := bestInsertion(v, r, geo.EuclidMetric, 5, 10, 1000); ok {
		t.Error("insertion accepted despite exceeding maxAdded")
	}
}

func TestBestInsertionRespectsTheta(t *testing.T) {
	// Busy taxi heading to x=10; the new rider goes the other way, so
	// any in-order insertion gives them a long on-board detour.
	v := sim.TaxiView{
		ID: 0, Pos: geo.Point{}, Load: 1,
		Route: []fleet.Stop{
			{RequestID: 9, Kind: fleet.StopDropoff, Pos: geo.Point{X: 10}},
		},
		SeatsByRequest: map[int]int{9: 1},
	}
	r := fleet.Request{ID: 1, Pickup: geo.Point{X: 0, Y: 1}, Dropoff: geo.Point{X: 0, Y: 3}}
	if plan, ok := bestInsertion(v, r, geo.EuclidMetric, 0.5, 1000, 1000); ok {
		if onBoard := onBoardDistance(v.Pos, plan.route, 1, geo.EuclidMetric); onBoard-2 > 0.5+1e-9 {
			t.Errorf("accepted insertion with detour: onboard %v vs solo 2", onBoard)
		}
	}
}

func TestBestInsertionRespectsCapacity(t *testing.T) {
	v := sim.TaxiView{
		ID: 0, Pos: geo.Point{}, Seats: 2, Load: 2,
		Route: []fleet.Stop{
			{RequestID: 9, Kind: fleet.StopDropoff, Pos: geo.Point{X: 10}},
		},
		SeatsByRequest: map[int]int{9: 2},
	}
	// Rider needs a seat before the current passenger leaves... any
	// insertion that picks up before x=10's drop-off busts capacity;
	// picking up after is allowed.
	r := fleet.Request{ID: 1, Pickup: geo.Point{X: 11}, Dropoff: geo.Point{X: 12}}
	plan, ok := bestInsertion(v, r, geo.EuclidMetric, 5, 100, 1000)
	if !ok {
		t.Fatal("no insertion found")
	}
	// The pickup must come after the existing drop-off.
	if plan.route[0].RequestID != 9 {
		t.Errorf("capacity-violating insertion chosen: %v", plan.route)
	}
}

func TestSpliceRoute(t *testing.T) {
	route := []fleet.Stop{
		{RequestID: 9, Kind: fleet.StopDropoff, Pos: geo.Point{X: 10}},
	}
	r := fleet.Request{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}
	out := spliceRoute(route, r, 0, 0)
	if len(out) != 3 || out[0].Kind != fleet.StopPickup || out[1].Kind != fleet.StopDropoff || out[1].RequestID != 1 {
		t.Errorf("spliceRoute(0,0) = %v", out)
	}
	out = spliceRoute(route, r, 0, 1)
	if len(out) != 3 || out[0].RequestID != 1 || out[1].RequestID != 9 || out[2].RequestID != 1 {
		t.Errorf("spliceRoute(0,1) = %v", out)
	}
	out = spliceRoute(route, r, 1, 1)
	if len(out) != 3 || out[0].RequestID != 9 {
		t.Errorf("spliceRoute(1,1) = %v", out)
	}
}

func TestILPUsesIdleTaxisOnly(t *testing.T) {
	frame := &sim.Frame{
		Requests: []fleet.Request{{ID: 0, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}},
		Taxis: []sim.TaxiView{
			{ID: 0, Pos: geo.Point{}, Idle: false},
		},
		Metric: geo.EuclidMetric,
		Params: pref.DefaultParams(),
	}
	out, err := NewILP(share.DefaultPackConfig()).Dispatch(frame)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if out != nil {
		t.Errorf("ILP assigned to a busy taxi: %v", out)
	}
}

func TestRAIIRadiusLimitsCandidates(t *testing.T) {
	// The only taxi is far outside the search radius: RAII must leave
	// the request pending even though SARP would take it.
	frame := &sim.Frame{
		Requests: []fleet.Request{{ID: 0, Pickup: geo.Point{}, Dropoff: geo.Point{X: 3}}},
		Taxis:    []sim.TaxiView{{ID: 0, Pos: geo.Point{X: 30}, Idle: true}},
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
	cfg := Config{Theta: 5, MaxAdded: 100, SearchRadius: 5, MaxWait: 100}
	out, err := NewRAII(cfg).Dispatch(frame)
	if err != nil {
		t.Fatalf("RAII: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("RAII assigned beyond its index radius: %v", out)
	}
	sarpOut, err := NewSARP(cfg).Dispatch(frame)
	if err != nil {
		t.Fatalf("SARP: %v", err)
	}
	if len(sarpOut) != 1 {
		t.Errorf("SARP should take the distant taxi: %v", sarpOut)
	}
}

func TestDeterministicBaselines(t *testing.T) {
	taxis, reqs := smallWorld(t, 11, 8, 25)
	for _, mk := range []func() sim.Dispatcher{
		func() sim.Dispatcher { return NewRAII(DefaultConfig()) },
		func() sim.Dispatcher { return NewSARP(DefaultConfig()) },
		func() sim.Dispatcher { return NewILP(share.DefaultPackConfig()) },
	} {
		a := runSim(t, mk(), taxis, reqs)
		b := runSim(t, mk(), taxis, reqs)
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				t.Fatalf("%s not deterministic at request %d", mk().Name(), i)
			}
		}
	}
}

// randomTaxiView builds a busy taxi with a consistent random route:
// onboard requests have a drop-off ahead; assigned ones have pickup then
// drop-off.
func randomTaxiView(rng *rand.Rand) sim.TaxiView {
	v := sim.TaxiView{
		ID:             0,
		Pos:            geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		Seats:          2 + rng.Intn(4),
		SeatsByRequest: map[int]int{},
	}
	nOnboard := rng.Intn(3)
	nAssigned := rng.Intn(2)
	id := 100
	var tail []fleet.Stop
	for k := 0; k < nOnboard; k++ {
		seats := 1 + rng.Intn(2)
		v.SeatsByRequest[id] = seats
		v.Load += seats
		v.Onboard = append(v.Onboard, id)
		tail = append(tail, fleet.Stop{
			RequestID: id, Kind: fleet.StopDropoff,
			Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		})
		id++
	}
	for k := 0; k < nAssigned; k++ {
		seats := 1 + rng.Intn(2)
		v.SeatsByRequest[id] = seats
		v.Assigned = append(v.Assigned, id)
		tail = append(tail,
			fleet.Stop{RequestID: id, Kind: fleet.StopPickup,
				Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}},
			fleet.Stop{RequestID: id, Kind: fleet.StopDropoff,
				Pos: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}},
		)
		id++
	}
	// Shuffle assigned pickups before their drop-offs is already
	// guaranteed by construction order; interleave lightly by rotating.
	v.Route = tail
	v.Idle = len(tail) == 0
	return v
}

// TestBestInsertionMatchesBruteForce pins the incremental insertion
// arithmetic to the materialise-and-measure reference on random busy
// taxis.
func TestBestInsertionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		v := randomTaxiView(rng)
		r := fleet.Request{
			ID:      1,
			Pickup:  geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Dropoff: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			Seats:   1 + rng.Intn(2),
		}
		theta := rng.Float64() * 6
		maxAdded := rng.Float64() * 12

		maxWait := rng.Float64() * 30
		fast, fastOK := bestInsertion(v, r, geo.EuclidMetric, theta, maxAdded, maxWait)
		slow, slowOK := bestInsertionBrute(v, r, geo.EuclidMetric, theta, maxAdded, maxWait)
		if fastOK != slowOK {
			t.Fatalf("trial %d: feasibility mismatch fast=%v slow=%v (route %v)",
				trial, fastOK, slowOK, v.Route)
		}
		if !fastOK {
			continue
		}
		if math.Abs(fast.added-slow.added) > 1e-9 {
			t.Fatalf("trial %d: added %v vs brute %v", trial, fast.added, slow.added)
		}
		if len(fast.route) != len(slow.route) {
			t.Fatalf("trial %d: route lengths differ", trial)
		}
		// The chosen routes must cost the same even if tie-broken
		// differently.
		fastLen := routeLengthFrom(v.Pos, fast.route, geo.EuclidMetric)
		slowLen := routeLengthFrom(v.Pos, slow.route, geo.EuclidMetric)
		if math.Abs(fastLen-slowLen) > 1e-9 {
			t.Fatalf("trial %d: route length %v vs %v", trial, fastLen, slowLen)
		}
	}
}
