// Package carpool implements the sharing comparison algorithms the paper
// evaluates against (§VI-B):
//
//   - RAII (Ma et al. [7]): a spatio-temporal grid index over taxis;
//     each request is inserted into the nearby candidate taxi that adds
//     the least total travel distance. The index only surfaces nearby
//     taxis, which the paper calls "information-lossy".
//   - SARP (Li et al. [8]): TSP-style insertion — every taxi is
//     considered and the new request's pickup and drop-off are spliced
//     into the existing route wherever they add the least distance.
//   - ILP ([6]): per frame, requests are packed into share groups and
//     the group-to-idle-taxi assignment problem is solved exactly as a
//     minimum-cost matching (the assignment polytope is integral, so the
//     LP solution is the ILP optimum for the frame).
//
// RAII and SARP may insert into busy taxis; the engine's route validator
// guarantees onboard passengers still reach their destinations.
package carpool

import (
	"math"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/sim"
)

// insertionPlan is a candidate modification of one taxi's route.
type insertionPlan struct {
	route []fleet.Stop
	// added is the extra travel distance relative to the current route.
	added float64
}

// routeLengthFrom measures a stop sequence from a position.
func routeLengthFrom(pos geo.Point, route []fleet.Stop, m geo.Metric) float64 {
	return fleet.RouteLength(pos, route, m)
}

// bestInsertion tries every way of splicing r's pickup and drop-off into
// the taxi's existing route (preserving the current stop order) and
// returns the cheapest feasible plan. Feasibility requires:
//
//   - seat capacity is never exceeded along the new route,
//   - the new rider's on-board detour stays within theta,
//   - the total added distance stays within maxAdded (existing riders'
//     detours are bounded through it),
//   - the along-route distance to the new rider's pickup stays within
//     maxWait (the pickup-deadline window of the cited systems; without
//     it, tail-of-chain insertions give absurd waits).
//
// Insertion costs are computed incrementally from precomputed leg
// distances — O(1) per (pickup, drop-off) position pair with no
// allocation — and only the winning plan materialises a route. The
// dispatch baselines evaluate this for every pending request against
// every candidate taxi each frame, so this is their hot path.
func bestInsertion(v sim.TaxiView, r fleet.Request, m geo.Metric, theta, maxAdded, maxWait float64) (insertionPlan, bool) {
	n := len(v.Route)
	solo := r.TripDistance(m)

	// Precompute the geometry the cost formulas need:
	//   at(i): stop position i, with at(-1) = taxi position;
	//   leg[i]: d(at(i-1), at(i)) — the existing legs;
	//   toPickup[i] = d(at(i-1), P), fromPickup[i] = d(P, at(i));
	//   toDrop/fromDrop likewise for the drop-off point.
	at := func(i int) geo.Point {
		if i < 0 {
			return v.Pos
		}
		return v.Route[i].Pos
	}
	leg := make([]float64, n)
	toPickup := make([]float64, n+1)
	fromPickup := make([]float64, n)
	toDrop := make([]float64, n+1)
	fromDrop := make([]float64, n)
	for i := 0; i < n; i++ {
		leg[i] = m.Distance(at(i-1), at(i))
		fromPickup[i] = m.Distance(r.Pickup, at(i))
		fromDrop[i] = m.Distance(r.Dropoff, at(i))
	}
	for i := 0; i <= n; i++ {
		toPickup[i] = m.Distance(at(i-1), r.Pickup)
		toDrop[i] = m.Distance(at(i-1), r.Dropoff)
	}
	pickupToDrop := m.Distance(r.Pickup, r.Dropoff)

	// span[i] = distance along the existing route from at(i) to at(j)
	// is span(j) - span(i), via the prefix sum of legs.
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + leg[i]
	}

	// loadBefore[i] = occupied seats while driving toward stop i;
	// loadBefore[n] = seats after the last stop.
	loadBefore := make([]int, n+1)
	loadBefore[0] = v.Load
	seats := func(id int) int {
		if s, ok := v.SeatsByRequest[id]; ok {
			return s
		}
		return 1
	}
	for i := 0; i < n; i++ {
		delta := seats(v.Route[i].RequestID)
		if v.Route[i].Kind == fleet.StopDropoff {
			delta = -delta
		}
		loadBefore[i+1] = loadBefore[i] + delta
	}
	capacity := v.Capacity()

	bestPi, bestDi := -1, -1
	bestAdded := math.Inf(1)
	for pi := 0; pi <= n; pi++ {
		// The rider occupies a seat from insertion point pi through
		// insertion point di; check capacity incrementally.
		if loadBefore[pi]+r.SeatCount() > capacity {
			continue
		}
		// Pickup deadline: the rider waits out the whole route prefix.
		if prefix[pi]+toPickup[pi] > maxWait {
			continue
		}
		for di := pi; di <= n; di++ {
			// The rider is aboard while the original stops pi..di-1
			// execute, i.e. over the load states [pi, di]; extend the
			// window one state at a time.
			if di > pi && loadBefore[di]+r.SeatCount() > capacity {
				break
			}
			var added, onBoard float64
			if pi == di {
				// Adjacent insertion: ... -> P -> D -> s_pi ...
				added = toPickup[pi] + pickupToDrop - legOrZero(leg, pi)
				if pi < n {
					added += fromDrop[pi]
				}
				onBoard = pickupToDrop
			} else {
				// ... -> P -> s_pi ... s_{di-1} -> D -> s_di ...
				addP := toPickup[pi] + fromPickup[pi] - legOrZero(leg, pi)
				addD := toDrop[di] - legOrZero(leg, di)
				if di < n {
					addD += fromDrop[di]
				}
				added = addP + addD
				onBoard = fromPickup[pi] + (prefix[di] - prefix[pi+1]) + toDrop[di]
			}
			if added > maxAdded || added >= bestAdded {
				continue
			}
			if onBoard-solo > theta {
				continue
			}
			bestPi, bestDi, bestAdded = pi, di, added
		}
	}
	if bestPi < 0 {
		return insertionPlan{}, false
	}
	return insertionPlan{
		route: spliceRoute(v.Route, r, bestPi, bestDi),
		added: bestAdded,
	}, true
}

// legOrZero returns leg[i], or 0 when inserting after the final stop
// (there is no displaced leg).
func legOrZero(leg []float64, i int) float64 {
	if i < len(leg) {
		return leg[i]
	}
	return 0
}

// bestInsertionBrute is the reference implementation: it materialises
// every candidate route and measures it from scratch. Kept for the
// differential tests that pin bestInsertion's incremental arithmetic.
func bestInsertionBrute(v sim.TaxiView, r fleet.Request, m geo.Metric, theta, maxAdded, maxWait float64) (insertionPlan, bool) {
	baseLen := routeLengthFrom(v.Pos, v.Route, m)
	solo := r.TripDistance(m)
	n := len(v.Route)

	best := insertionPlan{added: math.Inf(1)}
	found := false
	for pi := 0; pi <= n; pi++ {
		for di := pi; di <= n; di++ {
			route := spliceRoute(v.Route, r, pi, di)
			if !loadFeasible(route, v, r) {
				continue
			}
			newLen := routeLengthFrom(v.Pos, route, m)
			added := newLen - baseLen
			if added > maxAdded || added >= best.added {
				continue
			}
			if onBoard := onBoardDistance(v.Pos, route, r.ID, m); onBoard-solo > theta {
				continue
			}
			if waitDistance(v.Pos, route, r.ID, m) > maxWait {
				continue
			}
			best = insertionPlan{route: route, added: added}
			found = true
		}
	}
	return best, found
}

// spliceRoute inserts r's pickup before index pi and its drop-off before
// index di of the original route (pi <= di), preserving existing order.
func spliceRoute(route []fleet.Stop, r fleet.Request, pi, di int) []fleet.Stop {
	out := make([]fleet.Stop, 0, len(route)+2)
	pickup := fleet.Stop{RequestID: r.ID, Kind: fleet.StopPickup, Pos: r.Pickup}
	drop := fleet.Stop{RequestID: r.ID, Kind: fleet.StopDropoff, Pos: r.Dropoff}
	for i := 0; i <= len(route); i++ {
		if i == pi {
			out = append(out, pickup)
		}
		if i == di {
			out = append(out, drop)
		}
		if i < len(route) {
			out = append(out, route[i])
		}
	}
	return out
}

// loadFeasible walks the candidate route checking the seat capacity.
func loadFeasible(route []fleet.Stop, v sim.TaxiView, r fleet.Request) bool {
	seats := func(id int) int {
		if id == r.ID {
			return r.SeatCount()
		}
		if s, ok := v.SeatsByRequest[id]; ok {
			return s
		}
		return 1
	}
	load := v.Load
	capacity := v.Capacity()
	for _, stop := range route {
		if stop.Kind == fleet.StopPickup {
			load += seats(stop.RequestID)
			if load > capacity {
				return false
			}
		} else {
			load -= seats(stop.RequestID)
		}
	}
	return true
}

// waitDistance returns the along-route distance from the taxi position
// to request id's pickup stop.
func waitDistance(pos geo.Point, route []fleet.Stop, id int, m geo.Metric) float64 {
	dist := 0.0
	cur := pos
	for _, stop := range route {
		dist += m.Distance(cur, stop.Pos)
		cur = stop.Pos
		if stop.RequestID == id && stop.Kind == fleet.StopPickup {
			return dist
		}
	}
	return dist
}

// onBoardDistance returns the distance request id spends on board along
// the route (pickup stop to drop-off stop).
func onBoardDistance(pos geo.Point, route []fleet.Stop, id int, m geo.Metric) float64 {
	dist := 0.0
	cur := pos
	pickupAt := 0.0
	for _, stop := range route {
		dist += m.Distance(cur, stop.Pos)
		cur = stop.Pos
		if stop.RequestID != id {
			continue
		}
		if stop.Kind == fleet.StopPickup {
			pickupAt = dist
		} else {
			return dist - pickupAt
		}
	}
	return 0
}
