package carpool

import (
	"fmt"
	"math"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/match"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/spatial"
)

// Config holds the constraints shared by the insertion baselines.
type Config struct {
	// Theta bounds the new rider's on-board detour (km); matches the
	// paper's θ = 5.
	Theta float64
	// MaxAdded bounds the total extra driving an insertion may cost the
	// taxi, which also shields existing riders from long detours.
	MaxAdded float64
	// SearchRadius is how far RAII's spatio-temporal index looks for
	// candidate taxis around a pickup (km).
	SearchRadius float64
	// MaxWait bounds the along-route distance to an inserted rider's
	// pickup — the pickup-deadline window of the cited systems.
	MaxWait float64
}

// DefaultConfig mirrors the paper's sharing evaluation: θ = 5 km, with
// the added-distance bound, index radius, and pickup-wait window all at
// 2θ.
func DefaultConfig() Config {
	return Config{Theta: 5, MaxAdded: 10, SearchRadius: 10, MaxWait: 10}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Theta < 0 || c.MaxAdded < 0 || c.SearchRadius < 0 || c.MaxWait < 0 {
		return fmt.Errorf("carpool: negative constraint in config %+v", c)
	}
	return nil
}

// maxWait returns the pickup-deadline window, defaulting to 2θ when the
// config predates the field.
func (c Config) maxWait() float64 {
	if c.MaxWait <= 0 {
		return 2 * c.Theta
	}
	return c.MaxWait
}

// RAII is the spatio-temporal-index baseline [7]: candidate taxis come
// from a grid index around the request's pickup, and the request goes to
// the candidate whose route absorbs it with the least added distance.
type RAII struct {
	cfg Config
}

var _ sim.Dispatcher = (*RAII)(nil)

// NewRAII returns the RAII baseline dispatcher.
func NewRAII(cfg Config) *RAII { return &RAII{cfg: cfg} }

// Name implements sim.Dispatcher.
func (d *RAII) Name() string { return "RAII" }

// Dispatch implements sim.Dispatcher.
func (d *RAII) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	if err := d.cfg.Validate(); err != nil {
		return nil, err
	}
	if len(f.Taxis) == 0 {
		return nil, nil
	}
	// Build the spatial index over taxi positions for this frame.
	bounds := frameBounds(f)
	index := spatial.NewIndex(bounds, indexCell(bounds))
	for i, v := range f.Taxis {
		index.Insert(i, v.Pos)
	}

	views := append([]sim.TaxiView(nil), f.Taxis...)
	plans := make(map[int]insertionPlan) // taxi slice index -> plan
	reqsOf := make(map[int][]int)        // taxi slice index -> request IDs

	for _, r := range f.Requests {
		candidates := index.WithinRadius(r.Pickup, d.cfg.SearchRadius)
		bestTaxi, best := -1, insertionPlan{added: math.Inf(1)}
		for _, ti := range candidates {
			if _, taken := plans[ti]; taken {
				continue // one assignment per taxi per frame
			}
			if views[ti].Offline {
				continue
			}
			plan, ok := bestInsertion(views[ti], r, f.Metric, d.cfg.Theta, d.cfg.MaxAdded, d.cfg.maxWait())
			if ok && plan.added < best.added {
				bestTaxi, best = ti, plan
			}
		}
		if bestTaxi < 0 {
			continue // no nearby feasible taxi; the request waits
		}
		plans[bestTaxi] = best
		reqsOf[bestTaxi] = append(reqsOf[bestTaxi], r.ID)
	}
	return buildAssignments(views, plans, reqsOf), nil
}

// SARP is the TSP-insertion baseline [8]: every taxi is a candidate (no
// index), and the new request is spliced into the route with minimum
// additional travel distance.
type SARP struct {
	cfg Config
}

var _ sim.Dispatcher = (*SARP)(nil)

// NewSARP returns the SARP baseline dispatcher.
func NewSARP(cfg Config) *SARP { return &SARP{cfg: cfg} }

// Name implements sim.Dispatcher.
func (d *SARP) Name() string { return "SARP" }

// Dispatch implements sim.Dispatcher.
func (d *SARP) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	if err := d.cfg.Validate(); err != nil {
		return nil, err
	}
	views := append([]sim.TaxiView(nil), f.Taxis...)
	plans := make(map[int]insertionPlan)
	reqsOf := make(map[int][]int)

	for _, r := range f.Requests {
		bestTaxi, best := -1, insertionPlan{added: math.Inf(1)}
		for ti := range views {
			if _, taken := plans[ti]; taken {
				continue
			}
			if views[ti].Offline {
				continue
			}
			plan, ok := bestInsertion(views[ti], r, f.Metric, d.cfg.Theta, d.cfg.MaxAdded, d.cfg.maxWait())
			if ok && plan.added < best.added {
				bestTaxi, best = ti, plan
			}
		}
		if bestTaxi < 0 {
			continue
		}
		plans[bestTaxi] = best
		reqsOf[bestTaxi] = append(reqsOf[bestTaxi], r.ID)
	}
	return buildAssignments(views, plans, reqsOf), nil
}

// ILP is the integer-programming baseline [6]: requests are packed into
// share groups, and groups are assigned to idle taxis by an exact
// minimum-cost matching on total driving distance (the frame's
// assignment ILP, solved via its integral LP).
type ILP struct {
	packCfg share.PackConfig
}

var _ sim.Dispatcher = (*ILP)(nil)

// NewILP returns the ILP baseline dispatcher.
func NewILP(packCfg share.PackConfig) *ILP { return &ILP{packCfg: packCfg} }

// Name implements sim.Dispatcher.
func (d *ILP) Name() string { return "ILP" }

// Dispatch implements sim.Dispatcher.
func (d *ILP) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	var idle []sim.TaxiView
	for _, v := range f.Taxis {
		if v.Idle {
			idle = append(idle, v)
		}
	}
	if len(idle) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	// Bound the packing batch like the STD dispatchers do: the group
	// search is superlinear in the pending queue, and the ILP frame
	// optimum is over the batched units either way.
	const maxBatch = 100
	batch := f.Requests
	if len(batch) > maxBatch {
		batch = batch[:maxBatch]
	}
	res, err := share.Pack(batch, f.Metric, d.packCfg)
	if err != nil {
		return nil, fmt.Errorf("carpool: ILP: %w", err)
	}
	units := res.Units(f.Requests, f.Metric)
	for idx := len(batch); idx < len(f.Requests); idx++ {
		units = append(units, share.SingleUnit(idx, f.Requests, f.Metric))
	}

	// cost[k][i]: total driving distance for idle taxi i to serve unit
	// k (lead-in plus route), +Inf when the taxi lacks seats.
	cost := make([][]float64, len(units))
	for k, u := range units {
		cost[k] = make([]float64, len(idle))
		for i, v := range idle {
			if v.Capacity() < u.Plan.MaxLoad {
				cost[k][i] = math.Inf(1)
				continue
			}
			cost[k][i] = f.Metric.Distance(v.Pos, u.Start()) + u.Plan.Length
		}
	}
	partner, _, err := match.MinCost(cost)
	if err != nil {
		return nil, fmt.Errorf("carpool: ILP: %w", err)
	}
	var out []fleet.Assignment
	for k, i := range partner {
		if i != match.Unmatched {
			out = append(out, units[k].Assignment(idle[i].ID, f.Requests))
		}
	}
	return out, nil
}

// buildAssignments converts per-taxi insertion plans into assignments.
func buildAssignments(views []sim.TaxiView, plans map[int]insertionPlan, reqsOf map[int][]int) []fleet.Assignment {
	var out []fleet.Assignment
	for ti := range views {
		plan, ok := plans[ti]
		if !ok {
			continue
		}
		out = append(out, fleet.Assignment{
			TaxiID:   views[ti].ID,
			Requests: reqsOf[ti],
			Route:    plan.route,
		})
	}
	return out
}

func frameBounds(f *sim.Frame) geo.Rect {
	first := true
	var r geo.Rect
	grow := func(p geo.Point) {
		if first {
			r = geo.NewRect(p, p)
			first = false
			return
		}
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	for _, v := range f.Taxis {
		grow(v.Pos)
	}
	for _, req := range f.Requests {
		grow(req.Pickup)
	}
	if first {
		return geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1})
	}
	return r.Expand(1)
}

func indexCell(bounds geo.Rect) float64 {
	side := math.Max(bounds.Width(), bounds.Height())
	cell := side / 16
	if cell <= 0 {
		return 1
	}
	return cell
}
