// Package stream is the dispatcher's live-telemetry layer: a broadcast
// hub that fans per-frame telemetry — KPI samples, SLO state
// transitions, admission accepted/shed/queue-depth, the lifecycle event
// tail, and degrade/fault notices — out to any number of subscribers in
// real time. It is the push-based counterpart of the pull endpoints
// (/v1/metrics, /v1/timeseries): the moment queue depth climbs or an
// SLO goes warning, every subscriber sees it, instead of on its next
// poll.
//
// The contract with the frame loop (the producers' hot path):
//
//   - Publish NEVER blocks and never waits on a consumer. Each
//     subscriber owns a bounded ring; a full ring overwrites the
//     subscriber's own oldest entry and counts the drop. A stalled SSE
//     connection therefore costs itself history, never the frame loop
//     and never its sibling subscribers.
//   - Publish with no subscriber interested in the topic is one atomic
//     load — producers can publish unconditionally from the hot path.
//     The payload is JSON-encoded once per publish, not once per
//     subscriber.
//   - The hub takes only its own locks. It knows nothing about the
//     serving layer, so it cannot hold server.mu — the SSE handler
//     composes its snapshot separately and only then drains the ring.
//
// Drop accounting is two-level: each subscriber counts its own drops
// (Sub.Dropped, reported in the SSE terminal comment), and the
// process-wide stream_dropped_total obs counter sums drops across all
// subscribers, so "is anyone losing telemetry" is one scrape away.
package stream

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"stabledispatch/internal/obs"
)

// Topic labels one telemetry stream. Subscribers filter by topic; the
// taxonomy is closed so clients can match on the strings.
type Topic string

// Topics, in the order dispatchtop renders them.
const (
	// TopicKPI carries one tseries.Sample per dispatch frame.
	TopicKPI Topic = "kpi"
	// TopicSLO carries SLO hysteresis state transitions.
	TopicSLO Topic = "slo"
	// TopicAdmission carries front-door decisions: per-frame intake
	// summaries and shed notices.
	TopicAdmission Topic = "admission"
	// TopicEvents carries the simulator lifecycle event tail.
	TopicEvents Topic = "events"
	// TopicNotices carries exceptional conditions: dispatch degrades,
	// taxi breakdowns, flight-recorder triggers.
	TopicNotices Topic = "notice"
	// TopicProf carries the frame-budget profiler's per-frame stage
	// attribution (one prof.FrameReport per dispatch frame).
	TopicProf Topic = "prof"
)

// Topics lists every topic, in render order.
var Topics = []Topic{TopicKPI, TopicSLO, TopicAdmission, TopicEvents, TopicNotices, TopicProf}

// numTopics sizes the fixed per-topic arrays below.
const numTopics = 6

// topicIndex maps a topic to its slot in the per-topic subscriber
// counts; -1 for unknown topics.
func topicIndex(t Topic) int {
	for i, known := range Topics {
		if known == t {
			return i
		}
	}
	return -1
}

// ValidTopic reports whether t names a known topic.
func ValidTopic(t Topic) bool { return topicIndex(t) >= 0 }

// Msg is one published telemetry message. Data is the JSON-encoded
// payload, encoded exactly once at publish time and shared (read-only)
// by every subscriber's ring.
type Msg struct {
	Topic Topic
	// Seq is the hub-wide publish sequence number (1-based); gaps in a
	// subscriber's view are exactly its drops plus its topic filter.
	Seq uint64
	// Frame is the dispatch frame the message describes (-1 when the
	// producer is not frame-synchronous).
	Frame int64
	// Data is the JSON payload.
	Data []byte
}

// DefaultRingSize bounds a subscriber's ring when Subscribe is given a
// non-positive size: ten seconds of a busy event stream, a couple of
// minutes of per-frame samples.
const DefaultRingSize = 1024

// Hub is the broadcast fan-out point. Safe for concurrent use.
type Hub struct {
	mu   sync.Mutex
	subs map[*Sub]struct{}
	seq  atomic.Uint64
	// nsubs[i] counts subscribers interested in Topics[i]; Publish
	// reads it lock-free to skip encoding when nobody is listening.
	nsubs [numTopics]atomic.Int32

	published [numTopics]*obs.Counter
	dropped   *obs.Counter
	subsGauge *obs.Gauge
}

// NewHub builds an empty hub. The obs series are process-wide: two hubs
// in one process share them (the daemon runs exactly one).
func NewHub() *Hub {
	h := &Hub{
		subs:      make(map[*Sub]struct{}),
		dropped:   obs.GetOrCreateCounter("stream_dropped_total"),
		subsGauge: obs.GetOrCreateGauge("stream_subscribers"),
	}
	for i, t := range Topics {
		h.published[i] = obs.GetOrCreateCounter(`stream_published_total{topic="` + string(t) + `"}`)
	}
	return h
}

// Wants reports whether at least one subscriber is interested in the
// topic — one atomic load, so producers can gate payload construction
// on it from the hot path.
func (h *Hub) Wants(t Topic) bool {
	i := topicIndex(t)
	return i >= 0 && h.nsubs[i].Load() > 0
}

// Publish encodes payload once and offers it to every interested
// subscriber's ring. It never blocks: a full ring drops that
// subscriber's oldest entry. With no interested subscriber it returns
// after one atomic load, without encoding. Returns the message sequence
// number (0 when skipped or the payload failed to encode).
func (h *Hub) Publish(t Topic, frame int64, payload any) uint64 {
	ti := topicIndex(t)
	if ti < 0 || h.nsubs[ti].Load() == 0 {
		return 0
	}
	data, err := json.Marshal(payload)
	if err != nil {
		// Telemetry must never take the frame loop down; an unencodable
		// payload is a programming error surfaced by tests.
		return 0
	}
	seq := h.seq.Add(1)
	m := Msg{Topic: t, Seq: seq, Frame: frame, Data: data}
	h.published[ti].Inc()
	h.mu.Lock()
	for s := range h.subs {
		if s.topics[ti] {
			s.push(m)
		}
	}
	h.mu.Unlock()
	return seq
}

// Subscribe registers a subscriber for the given topics (all topics
// when none are given), with a ring of the given size (DefaultRingSize
// when non-positive). The returned Sub must be Closed when done.
func (h *Hub) Subscribe(ring int, topics ...Topic) *Sub {
	if ring <= 0 {
		ring = DefaultRingSize
	}
	s := &Sub{
		hub:    h,
		ring:   make([]Msg, ring),
		notify: make(chan struct{}, 1),
	}
	if len(topics) == 0 {
		topics = Topics
	}
	for _, t := range topics {
		if i := topicIndex(t); i >= 0 {
			s.topics[i] = true
		}
	}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	for i := range Topics {
		if s.topics[i] {
			h.nsubs[i].Add(1)
		}
	}
	h.subsGauge.Inc()
	return s
}

// unsubscribe detaches s; idempotent.
func (h *Hub) unsubscribe(s *Sub) {
	h.mu.Lock()
	_, present := h.subs[s]
	delete(h.subs, s)
	h.mu.Unlock()
	if !present {
		return
	}
	for i := range Topics {
		if s.topics[i] {
			h.nsubs[i].Add(-1)
		}
	}
	h.subsGauge.Dec()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Sub is one subscriber's bounded view of the stream. Producers push
// into the ring through the hub; the consumer drains with TakeBatch,
// waking on Wait. All methods are safe for concurrent use.
type Sub struct {
	hub    *Hub
	topics [numTopics]bool
	notify chan struct{}

	mu        sync.Mutex
	ring      []Msg
	head      int // index of the oldest entry
	n         int // live entries
	dropped   uint64
	delivered uint64
	closed    bool
}

// push offers one message; full rings overwrite the oldest entry and
// count the drop. Called by the hub with h.mu held; takes only s.mu, so
// a consumer holding nothing heavier than s.mu can never stall Publish
// for longer than one O(1) ring write.
func (s *Sub) push(m Msg) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n < len(s.ring) {
		s.ring[(s.head+s.n)%len(s.ring)] = m
		s.n++
	} else {
		s.ring[s.head] = m
		s.head = (s.head + 1) % len(s.ring)
		s.dropped++
		s.hub.dropped.Inc()
	}
	s.mu.Unlock()
	// Non-blocking wake: a pending wake already covers this message.
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Wait returns the channel the hub signals when the ring goes
// non-empty. One signal may cover many messages: drain with TakeBatch
// until it returns nothing.
func (s *Sub) Wait() <-chan struct{} { return s.notify }

// TakeBatch drains every buffered message, oldest first, appending to
// buf (pass a reusable slice to avoid allocation). Returns buf.
func (s *Sub) TakeBatch(buf []Msg) []Msg {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		buf = append(buf, s.ring[(s.head+i)%len(s.ring)])
	}
	s.delivered += uint64(s.n)
	s.head, s.n = 0, 0
	return buf
}

// Dropped returns how many messages this subscriber has lost to ring
// overwrites.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered returns how many messages the consumer has taken.
func (s *Sub) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Close detaches the subscriber from the hub and marks it closed;
// idempotent. Buffered messages remain readable via TakeBatch.
func (s *Sub) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.hub.unsubscribe(s)
}

// Process-wide default hub, nil until the serving layer installs one —
// the obs/dtrace/flightrec convention: producers pay one atomic load
// while streaming is disabled.
var active atomic.Pointer[Hub]

// SetActive installs h as the process-wide hub returned by Active (nil
// uninstalls).
func SetActive(h *Hub) {
	if h == nil {
		active.Store(nil)
		return
	}
	active.Store(h)
}

// Active returns the installed hub, or nil while streaming is disabled.
func Active() *Hub { return active.Load() }

// Wants reports whether the active hub has a subscriber for the topic;
// false while streaming is disabled. Producers building non-trivial
// payloads should gate on it.
func Wants(t Topic) bool {
	h := Active()
	return h != nil && h.Wants(t)
}

// Publish publishes to the active hub, if any. The payload is only
// encoded when a subscriber is interested in the topic.
func Publish(t Topic, frame int64, payload any) {
	if h := Active(); h != nil {
		h.Publish(t, frame, payload)
	}
}

// Notice is the TopicNotices payload: one exceptional condition.
type Notice struct {
	Kind   string `json:"kind"` // "degrade", "breakdown", ...
	Frame  int64  `json:"frame"`
	Detail string `json:"detail"`
}
