package stream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Server-sent-events framing: the wire format of GET /v1/stream. One
// Msg renders as
//
//	event: kpi
//	id: 42
//	data: {...}
//	<blank line>
//
// AppendSSE writes into a caller-owned buffer so a long-lived
// connection encodes every frame with zero allocations once the buffer
// has warmed up; the parser on the other side (ReadEvent) is shared by
// dispatchtop and loadgen.

// AppendSSE appends the SSE wire encoding of m to b and returns the
// extended buffer. Data is emitted as a single data: line — every
// payload the hub publishes is one JSON object with no interior
// newlines.
func AppendSSE(b []byte, m Msg) []byte {
	b = append(b, "event: "...)
	b = append(b, m.Topic...)
	b = append(b, "\nid: "...)
	b = strconv.AppendUint(b, m.Seq, 10)
	b = append(b, "\ndata: "...)
	b = append(b, m.Data...)
	b = append(b, '\n', '\n')
	return b
}

// AppendSSEComment appends an SSE comment line (": <text>") to b. SSE
// clients ignore comments, so they serve as heartbeats and terminal
// diagnostics without disturbing the event stream.
func AppendSSEComment(b []byte, text string) []byte {
	b = append(b, ':', ' ')
	b = append(b, text...)
	b = append(b, '\n', '\n')
	return b
}

// Event is one parsed server-sent event (or comment) on the client
// side.
type Event struct {
	// Name is the event: field ("kpi", "snapshot", ...); empty for
	// comment-only frames (heartbeats).
	Name string
	// ID is the id: field parsed as the hub sequence number (0 when
	// absent).
	ID uint64
	// Data is the data: payload. Multiple data lines are joined with
	// newlines per the SSE spec.
	Data []byte
	// Comment holds comment lines (": ..."), joined with newlines —
	// the server's heartbeats and the terminal drop-accounting line.
	Comment string
}

// Reader incrementally parses an SSE byte stream into Events.
type Reader struct {
	sc *bufio.Scanner
}

// NewReader wraps r in an SSE parser. Lines up to 1 MiB are supported
// (a snapshot with a large KPI window is the biggest frame we emit).
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// ReadEvent returns the next event, blocking until one dispatch-
// complete frame (terminated by a blank line) arrives. io.EOF reports a
// cleanly closed stream; a frame in progress at EOF is returned first.
func (r *Reader) ReadEvent() (Event, error) {
	var (
		ev       Event
		data     [][]byte
		comments []string
		seen     bool
	)
	finish := func() Event {
		ev.Data = bytes.Join(data, []byte("\n"))
		ev.Comment = strings.Join(comments, "\n")
		return ev
	}
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			if !seen {
				continue // stray blank line between frames
			}
			return finish(), nil
		}
		seen = true
		switch {
		case bytes.HasPrefix(line, []byte(":")):
			comments = append(comments, string(bytes.TrimPrefix(bytes.TrimPrefix(line, []byte(":")), []byte(" "))))
		case bytes.HasPrefix(line, []byte("event:")):
			ev.Name = string(bytes.TrimSpace(line[len("event:"):]))
		case bytes.HasPrefix(line, []byte("id:")):
			if id, err := strconv.ParseUint(string(bytes.TrimSpace(line[len("id:"):])), 10, 64); err == nil {
				ev.ID = id
			}
		case bytes.HasPrefix(line, []byte("data:")):
			d := line[len("data:"):]
			if len(d) > 0 && d[0] == ' ' {
				d = d[1:]
			}
			data = append(data, append([]byte(nil), d...))
		}
		// Unknown fields are ignored per the SSE spec.
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	if seen {
		return finish(), nil
	}
	return Event{}, io.EOF
}

// IsHeartbeat reports whether the event is a comment-only keepalive.
func (e Event) IsHeartbeat() bool { return e.Name == "" && len(e.Data) == 0 }

// ParseTopics parses a comma-separated topics= query value into a topic
// list (nil means "all topics"). Unknown topic names are an error so a
// typo fails loudly instead of silently streaming nothing.
func ParseTopics(q string) ([]Topic, error) {
	if q == "" {
		return nil, nil
	}
	var out []Topic
	for _, part := range strings.Split(q, ",") {
		t := Topic(strings.TrimSpace(part))
		if t == "" {
			continue
		}
		if !ValidTopic(t) {
			return nil, fmt.Errorf("stream: unknown topic %q", t)
		}
		out = append(out, t)
	}
	return out, nil
}
