package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"stabledispatch/internal/obs"
)

func drainAll(s *Sub) []Msg {
	var out []Msg
	for {
		got := s.TakeBatch(nil)
		if len(got) == 0 {
			return out
		}
		out = append(out, got...)
	}
}

func TestPublishSubscribe(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(16, TopicKPI)
	defer sub.Close()

	if !h.Wants(TopicKPI) {
		t.Fatal("Wants(kpi) = false with a kpi subscriber attached")
	}
	if h.Wants(TopicEvents) {
		t.Fatal("Wants(events) = true with no events subscriber")
	}

	seq := h.Publish(TopicKPI, 7, map[string]int{"frame": 7})
	if seq == 0 {
		t.Fatal("Publish returned 0 with a live subscriber")
	}
	if got := h.Publish(TopicEvents, 7, "ignored"); got != 0 {
		t.Fatalf("Publish to unwatched topic returned seq %d, want 0 (skip)", got)
	}

	msgs := sub.TakeBatch(nil)
	if len(msgs) != 1 {
		t.Fatalf("TakeBatch returned %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.Topic != TopicKPI || m.Seq != seq || m.Frame != 7 {
		t.Fatalf("unexpected message %+v", m)
	}
	var decoded map[string]int
	if err := json.Unmarshal(m.Data, &decoded); err != nil || decoded["frame"] != 7 {
		t.Fatalf("payload %q did not round-trip: %v", m.Data, err)
	}
}

func TestTopicFilter(t *testing.T) {
	h := NewHub()
	kpiOnly := h.Subscribe(8, TopicKPI)
	all := h.Subscribe(8)
	defer kpiOnly.Close()
	defer all.Close()

	h.Publish(TopicKPI, 1, "k")
	h.Publish(TopicEvents, 1, "e")
	h.Publish(TopicNotices, 1, "n")

	if got := kpiOnly.TakeBatch(nil); len(got) != 1 || got[0].Topic != TopicKPI {
		t.Fatalf("filtered subscriber got %v, want exactly the kpi message", got)
	}
	if got := all.TakeBatch(nil); len(got) != 3 {
		t.Fatalf("unfiltered subscriber got %d messages, want 3", len(got))
	}
}

func TestCloseDetaches(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(8, TopicKPI)
	sub.Close()
	sub.Close() // idempotent
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers() = %d after Close, want 0", h.Subscribers())
	}
	if h.Wants(TopicKPI) {
		t.Fatal("Wants(kpi) still true after the only subscriber closed")
	}
	if seq := h.Publish(TopicKPI, 1, "x"); seq != 0 {
		t.Fatalf("Publish after close returned seq %d, want 0", seq)
	}
}

func TestActiveHubGating(t *testing.T) {
	SetActive(nil)
	if Wants(TopicKPI) {
		t.Fatal("Wants true with no active hub")
	}
	Publish(TopicKPI, 1, "dropped") // must not panic

	h := NewHub()
	SetActive(h)
	defer SetActive(nil)
	sub := h.Subscribe(4, TopicKPI)
	defer sub.Close()
	if !Wants(TopicKPI) {
		t.Fatal("Wants false with active hub and subscriber")
	}
	Publish(TopicKPI, 2, "live")
	if got := sub.TakeBatch(nil); len(got) != 1 {
		t.Fatalf("package-level Publish delivered %d messages, want 1", len(got))
	}
}

// TestSlowSubscriberDropsOwnEntriesOnly is the backpressure contract
// pin, run under -race in CI: a stalled subscriber loses exactly its
// own oldest entries (its drop counter plus its deliveries balance
// against the feed), healthy subscribers concurrently draining see the
// complete feed in order, and Publish never blocks on the stalled ring.
func TestSlowSubscriberDropsOwnEntriesOnly(t *testing.T) {
	h := NewHub()
	const (
		total    = 5000
		stallCap = 32
	)
	dropped0 := obs.CounterValue("stream_dropped_total")

	stalled := h.Subscribe(stallCap, TopicEvents)
	defer stalled.Close()

	type healthyView struct {
		sub  *Sub
		msgs []Msg
	}
	// Healthy rings get full-feed capacity: they drain concurrently, but
	// the zero-drop pin must not depend on scheduler luck against a
	// publisher running flat out.
	healthy := make([]*healthyView, 3)
	for i := range healthy {
		healthy[i] = &healthyView{sub: h.Subscribe(total, TopicEvents)}
	}

	// Healthy consumers drain concurrently with the publisher.
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, hv := range healthy {
		wg.Add(1)
		go func(hv *healthyView) {
			defer wg.Done()
			for {
				hv.msgs = append(hv.msgs, hv.sub.TakeBatch(nil)...)
				select {
				case <-hv.sub.Wait():
				case <-done:
					hv.msgs = append(hv.msgs, hv.sub.TakeBatch(nil)...)
					return
				}
			}
		}(hv)
	}

	start := time.Now()
	for i := 0; i < total; i++ {
		if h.Publish(TopicEvents, int64(i), i) == 0 {
			t.Fatalf("publish %d skipped with live subscribers", i)
		}
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	// The stalled ring never blocked the publisher: 5000 publishes with
	// a wedged consumer must complete in interactive time (each is one
	// JSON encode plus four O(1) ring writes; a second is three orders
	// of magnitude of slack, not a perf assertion).
	if elapsed > 5*time.Second {
		t.Fatalf("publishing %d messages took %v: a stalled subscriber is back-pressuring Publish", total, elapsed)
	}

	// Healthy subscribers: complete feed, in order, zero drops.
	for i, hv := range healthy {
		hv.sub.Close()
		if hv.sub.Dropped() != 0 {
			t.Fatalf("healthy subscriber %d dropped %d messages", i, hv.sub.Dropped())
		}
		if len(hv.msgs) != total {
			t.Fatalf("healthy subscriber %d saw %d/%d messages", i, len(hv.msgs), total)
		}
		for j := 1; j < len(hv.msgs); j++ {
			if hv.msgs[j].Seq <= hv.msgs[j-1].Seq {
				t.Fatalf("healthy subscriber %d saw out-of-order seqs %d after %d", i, hv.msgs[j].Seq, hv.msgs[j-1].Seq)
			}
		}
	}

	// Stalled subscriber: everything it did not drop is still buffered,
	// and it holds exactly the newest stallCap entries — drops were its
	// own oldest, nobody else's.
	kept := drainAll(stalled)
	if len(kept) != stallCap {
		t.Fatalf("stalled ring holds %d entries, want exactly its capacity %d", len(kept), stallCap)
	}
	wantDropped := uint64(total - stallCap)
	if stalled.Dropped() != wantDropped {
		t.Fatalf("stalled subscriber dropped %d, want %d (drops must balance: published - capacity)", stalled.Dropped(), wantDropped)
	}
	for i, m := range kept {
		if wantFrame := int64(total - stallCap + i); m.Frame != wantFrame {
			t.Fatalf("stalled ring entry %d has frame %d, want %d (must keep the newest tail)", i, m.Frame, wantFrame)
		}
	}

	// Process-wide accounting: the obs counter grew by exactly the
	// stalled subscriber's drops.
	if got := obs.CounterValue("stream_dropped_total") - dropped0; got != wantDropped {
		t.Fatalf("stream_dropped_total grew by %d, want %d", got, wantDropped)
	}
}

func TestConcurrentPublishersAndSubscribers(t *testing.T) {
	h := NewHub()
	const (
		publishers = 4
		perPub     = 500
	)
	sub := h.Subscribe(publishers*perPub, TopicEvents)
	defer sub.Close()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				h.Publish(TopicEvents, int64(p), i)
			}
		}(p)
	}
	// Churn subscribers while publishing to race Subscribe/Close against
	// Publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := h.Subscribe(4, TopicEvents)
			s.TakeBatch(nil)
			s.Close()
		}
	}()
	wg.Wait()

	got := drainAll(sub)
	if len(got) != publishers*perPub {
		t.Fatalf("big subscriber saw %d messages, want %d", len(got), publishers*perPub)
	}
}

func TestSSEEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Topic: TopicKPI, Seq: 1, Frame: 10, Data: []byte(`{"frame":10,"delayMean":1.5}`)},
		{Topic: TopicEvents, Seq: 2, Frame: 10, Data: []byte(`{"kind":"assign","requestId":3}`)},
		{Topic: TopicNotices, Seq: 3, Frame: 11, Data: []byte(`{"kind":"degrade"}`)},
	}
	var wire []byte
	wire = AppendSSEComment(wire, "hb")
	for _, m := range msgs {
		wire = AppendSSE(wire, m)
	}
	wire = AppendSSEComment(wire, "closed dropped=4 delivered=9")

	r := NewReader(bytes.NewReader(wire))
	ev, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.IsHeartbeat() || ev.Comment != "hb" {
		t.Fatalf("first frame = %+v, want heartbeat comment", ev)
	}
	for i, want := range msgs {
		ev, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Name != string(want.Topic) || ev.ID != want.Seq || !bytes.Equal(ev.Data, want.Data) {
			t.Fatalf("event %d = %+v, want topic=%s seq=%d data=%s", i, ev, want.Topic, want.Seq, want.Data)
		}
	}
	ev, err = r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev.Comment, "dropped=4") {
		t.Fatalf("terminal comment %q missing drop accounting", ev.Comment)
	}
	if _, err := r.ReadEvent(); err != io.EOF {
		t.Fatalf("trailing read error = %v, want io.EOF", err)
	}
}

func TestSSEMultiLineData(t *testing.T) {
	wire := "event: snapshot\ndata: line1\ndata: line2\n\n"
	ev, err := NewReader(strings.NewReader(wire)).ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if string(ev.Data) != "line1\nline2" {
		t.Fatalf("multi-line data = %q", ev.Data)
	}
}

func TestParseTopics(t *testing.T) {
	if got, err := ParseTopics(""); err != nil || got != nil {
		t.Fatalf("ParseTopics(\"\") = %v, %v; want nil, nil", got, err)
	}
	got, err := ParseTopics("kpi, slo")
	if err != nil || len(got) != 2 || got[0] != TopicKPI || got[1] != TopicSLO {
		t.Fatalf("ParseTopics(\"kpi, slo\") = %v, %v", got, err)
	}
	if _, err := ParseTopics("kpi,bogus"); err == nil {
		t.Fatal("ParseTopics accepted an unknown topic")
	}
}

// TestAppendSSEZeroAlloc pins the per-frame SSE encoding cost on a
// warmed buffer: zero allocations, so a long-lived connection's encode
// path never touches the heap.
func TestAppendSSEZeroAlloc(t *testing.T) {
	m := Msg{Topic: TopicKPI, Seq: 123456, Frame: 42, Data: []byte(`{"frame":42,"delayMean":1.25,"served":10}`)}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendSSE(buf[:0], m)
	})
	if allocs != 0 {
		t.Fatalf("AppendSSE allocates %.1f times per call on a warmed buffer, want 0", allocs)
	}
}

func BenchmarkPublishFanout8(b *testing.B) {
	h := NewHub()
	subs := make([]*Sub, 8)
	for i := range subs {
		subs[i] = h.Subscribe(1024, TopicEvents)
		defer subs[i].Close()
	}
	// One consumer keeps a ring drained; the rest absorb drops — the
	// worst realistic mix.
	stop := make(chan struct{})
	go func() {
		for {
			subs[0].TakeBatch(nil)
			select {
			case <-subs[0].Wait():
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)
	payload := struct {
		Frame int64   `json:"frame"`
		V     float64 `json:"v"`
	}{1, 2.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload.Frame = int64(i)
		h.Publish(TopicEvents, int64(i), &payload)
	}
}

func BenchmarkAppendSSE(b *testing.B) {
	m := Msg{Topic: TopicKPI, Seq: 99, Frame: 7, Data: []byte(`{"frame":7,"delayMean":1.5,"served":100,"queued":3}`)}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendSSE(buf[:0], m)
	}
	_ = fmt.Sprint(len(buf))
}

// TestParseTopicsEdges pins the parser's tolerance: empty segments and
// stray whitespace are skipped, duplicates pass through verbatim (the
// subscriber's topic set dedupes them), and every registered topic —
// including prof — round-trips by name.
func TestParseTopicsEdges(t *testing.T) {
	got, err := ParseTopics("kpi,,  ,slo,")
	if err != nil || len(got) != 2 || got[0] != TopicKPI || got[1] != TopicSLO {
		t.Fatalf("ParseTopics with empty segments = %v, %v; want [kpi slo]", got, err)
	}
	got, err = ParseTopics("prof,prof")
	if err != nil || len(got) != 2 || got[0] != TopicProf || got[1] != TopicProf {
		t.Fatalf("ParseTopics(\"prof,prof\") = %v, %v; want duplicates preserved", got, err)
	}
	var all []string
	for _, tp := range Topics {
		all = append(all, string(tp))
	}
	got, err = ParseTopics(strings.Join(all, ","))
	if err != nil || len(got) != len(Topics) {
		t.Fatalf("ParseTopics(all) = %v, %v; want every registered topic", got, err)
	}
}

// TestSubscribeDuplicateTopics pins that subscribing with a repeated
// topic (as ParseTopics can produce) neither double-delivers messages
// nor corrupts the hub's per-topic subscriber counts on detach.
func TestSubscribeDuplicateTopics(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(16, TopicProf, TopicProf)
	h.Publish(TopicProf, 1, json.RawMessage(`{"frame":1}`))
	if got := drainAll(sub); len(got) != 1 {
		t.Fatalf("duplicate-topic subscriber saw %d copies, want 1", len(got))
	}
	if !h.Wants(TopicProf) {
		t.Fatal("hub should report a prof subscriber")
	}
	sub.Close()
	if h.Wants(TopicProf) {
		t.Fatal("prof subscriber count leaked after Close")
	}
}

// TestSSEReaderCRLF pins that the client parser accepts CRLF line
// endings: proxies and Windows-side tooling rewrite bare LF, and the
// SSE spec permits both.
func TestSSEReaderCRLF(t *testing.T) {
	wire := ": hb\r\n\r\nevent: kpi\r\nid: 7\r\ndata: {\"frame\":7}\r\n\r\n"
	r := NewReader(strings.NewReader(wire))
	ev, err := r.ReadEvent()
	if err != nil || !ev.IsHeartbeat() || ev.Comment != "hb" {
		t.Fatalf("CRLF heartbeat = %+v, %v", ev, err)
	}
	ev, err = r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "kpi" || ev.ID != 7 || string(ev.Data) != `{"frame":7}` {
		t.Fatalf("CRLF event = %+v, want kpi/7/{\"frame\":7}", ev)
	}
	if _, err := r.ReadEvent(); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

// TestSSEReaderCommentOnlyHeartbeats pins that a run of comment-only
// frames (idle-stream keepalives) parses as distinct heartbeats and
// never swallows the data event that follows them.
func TestSSEReaderCommentOnlyHeartbeats(t *testing.T) {
	var wire []byte
	for i := 0; i < 3; i++ {
		wire = AppendSSEComment(wire, "hb")
	}
	wire = AppendSSE(wire, Msg{Topic: TopicProf, Seq: 9, Frame: 2, Data: []byte(`{"frame":2}`)})
	r := NewReader(bytes.NewReader(wire))
	for i := 0; i < 3; i++ {
		ev, err := r.ReadEvent()
		if err != nil || !ev.IsHeartbeat() {
			t.Fatalf("heartbeat %d = %+v, %v", i, ev, err)
		}
	}
	ev, err := r.ReadEvent()
	if err != nil || ev.Name != string(TopicProf) || ev.ID != 9 {
		t.Fatalf("post-heartbeat event = %+v, %v", ev, err)
	}
}
