package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// This file converts real trip records in the NYC TLC yellow-cab CSV
// layout (the dataset behind the paper's New York trace) into the
// simulator's request format: timestamps become minute frames relative to
// the earliest pickup, and WGS84 coordinates are projected onto the
// kilometre plane with an equirectangular projection around the data's
// centroid — accurate to well under 1% at city scale.

// TLCColumns names the columns the converter needs. Defaults match the
// 2016-era yellow-cab schema.
type TLCColumns struct {
	PickupTime string
	PickupLon  string
	PickupLat  string
	DropoffLon string
	DropoffLat string
	Passengers string // optional; empty means "assume 1"
}

// DefaultTLCColumns returns the January 2016 yellow-cab column names the
// paper's trace uses.
func DefaultTLCColumns() TLCColumns {
	return TLCColumns{
		PickupTime: "tpep_pickup_datetime",
		PickupLon:  "pickup_longitude",
		PickupLat:  "pickup_latitude",
		DropoffLon: "dropoff_longitude",
		DropoffLat: "dropoff_latitude",
		Passengers: "passenger_count",
	}
}

// TLCOptions controls the conversion.
type TLCOptions struct {
	Columns TLCColumns
	// TimeLayout parses the pickup timestamp; defaults to
	// "2006-01-02 15:04:05" (the TLC export format).
	TimeLayout string
	// MaxRows caps how many data rows are converted (0 = all).
	MaxRows int
}

func (o *TLCOptions) applyDefaults() {
	if o.Columns == (TLCColumns{}) {
		o.Columns = DefaultTLCColumns()
	}
	if o.TimeLayout == "" {
		o.TimeLayout = "2006-01-02 15:04:05"
	}
}

const earthRadiusKm = 6371.0

// ConvertTLC reads a TLC-format CSV and returns simulator requests
// sorted by frame. Rows with unparsable fields or zero coordinates (the
// TLC's null encoding) are skipped; the error is non-nil only for
// structural problems (missing columns, broken CSV).
func ConvertTLC(r io.Reader, opts TLCOptions) ([]fleet.Request, error) {
	opts.applyDefaults()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate trailing columns
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read TLC header: %w", err)
	}
	col := func(name string) (int, error) {
		for i, h := range header {
			if strings.EqualFold(strings.TrimSpace(h), name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("trace: TLC column %q not found in %v", name, header)
	}
	var idx struct {
		time, plon, plat, dlon, dlat, pax int
	}
	if idx.time, err = col(opts.Columns.PickupTime); err != nil {
		return nil, err
	}
	if idx.plon, err = col(opts.Columns.PickupLon); err != nil {
		return nil, err
	}
	if idx.plat, err = col(opts.Columns.PickupLat); err != nil {
		return nil, err
	}
	if idx.dlon, err = col(opts.Columns.DropoffLon); err != nil {
		return nil, err
	}
	if idx.dlat, err = col(opts.Columns.DropoffLat); err != nil {
		return nil, err
	}
	idx.pax = -1
	if opts.Columns.Passengers != "" {
		if i, err := col(opts.Columns.Passengers); err == nil {
			idx.pax = i
		}
	}

	type rawTrip struct {
		at                     time.Time
		plat, plon, dlat, dlon float64
		seats                  int
	}
	var trips []rawTrip
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read TLC row: %w", err)
		}
		need := maxInt(idx.time, idx.plon, idx.plat, idx.dlon, idx.dlat)
		if len(row) <= need {
			continue
		}
		at, err := time.Parse(opts.TimeLayout, strings.TrimSpace(row[idx.time]))
		if err != nil {
			continue
		}
		coords, ok := parseCoords(row, idx.plat, idx.plon, idx.dlat, idx.dlon)
		if !ok {
			continue
		}
		seats := 1
		if idx.pax >= 0 && idx.pax < len(row) {
			if v, err := strconv.Atoi(strings.TrimSpace(row[idx.pax])); err == nil && v > 0 {
				seats = v
			}
		}
		trips = append(trips, rawTrip{
			at: at, plat: coords[0], plon: coords[1], dlat: coords[2], dlon: coords[3],
			seats: seats,
		})
		if opts.MaxRows > 0 && len(trips) >= opts.MaxRows {
			break
		}
	}
	if len(trips) == 0 {
		return nil, fmt.Errorf("trace: no usable TLC rows")
	}

	// Project around the centroid so the plane is locally accurate.
	var meanLat, meanLon float64
	start := trips[0].at
	for _, tr := range trips {
		meanLat += tr.plat
		meanLon += tr.plon
		if tr.at.Before(start) {
			start = tr.at
		}
	}
	meanLat /= float64(len(trips))
	meanLon /= float64(len(trips))
	project := func(lat, lon float64) geo.Point {
		return geo.Point{
			X: (lon - meanLon) * math.Pi / 180 * earthRadiusKm * math.Cos(meanLat*math.Pi/180),
			Y: (lat - meanLat) * math.Pi / 180 * earthRadiusKm,
		}
	}

	reqs := make([]fleet.Request, len(trips))
	for i, tr := range trips {
		reqs[i] = fleet.Request{
			ID:      i,
			Pickup:  project(tr.plat, tr.plon),
			Dropoff: project(tr.dlat, tr.dlon),
			Frame:   int(tr.at.Sub(start).Minutes()),
			Seats:   tr.seats,
		}
	}
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Frame < reqs[b].Frame })
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs, nil
}

// parseCoords extracts and sanity-checks the four coordinates; the TLC
// encodes missing GPS as zeros, which are rejected.
func parseCoords(row []string, plat, plon, dlat, dlon int) ([4]float64, bool) {
	var out [4]float64
	for i, c := range [4]int{plat, plon, dlat, dlon} {
		v, err := strconv.ParseFloat(strings.TrimSpace(row[c]), 64)
		if err != nil || v == 0 {
			return out, false
		}
		out[i] = v
	}
	if out[0] < -90 || out[0] > 90 || out[2] < -90 || out[2] > 90 {
		return out, false
	}
	if out[1] < -180 || out[1] > 180 || out[3] < -180 || out[3] > 180 {
		return out, false
	}
	return out, true
}

func maxInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
