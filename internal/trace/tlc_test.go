package trace

import (
	"math"
	"strings"
	"testing"

	"stabledispatch/internal/geo"
)

const tlcSample = `VendorID,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_count,trip_distance,pickup_longitude,pickup_latitude,RatecodeID,store_and_fwd_flag,dropoff_longitude,dropoff_latitude,payment_type,fare_amount
2,2016-01-01 00:00:00,2016-01-01 00:11:06,1,1.10,-73.990372,40.734695,1,N,-73.981842,40.732407,2,7.5
2,2016-01-01 00:05:30,2016-01-01 00:31:06,5,4.90,-73.980782,40.729912,1,N,-73.944473,40.716679,1,18
2,2016-01-01 00:07:15,2016-01-01 00:52:00,2,10.54,-73.984550,40.679565,1,N,-73.950272,40.788925,1,33
1,2016-01-01 00:03:00,2016-01-01 00:10:00,1,0.0,0,0,1,N,-73.95,40.78,1,5
bad-row
`

func TestConvertTLC(t *testing.T) {
	// The csv reader tolerates the short "bad-row" only because
	// FieldsPerRecord is -1; the row is skipped for missing columns.
	reqs, err := ConvertTLC(strings.NewReader(tlcSample), TLCOptions{})
	if err != nil {
		t.Fatalf("ConvertTLC: %v", err)
	}
	// Row 4 has zero coordinates (TLC null) and must be dropped.
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	// Frames are minutes since the earliest pickup, sorted.
	wantFrames := []int{0, 5, 7}
	for i, w := range wantFrames {
		if reqs[i].Frame != w {
			t.Errorf("request %d frame = %d, want %d", i, reqs[i].Frame, w)
		}
		if reqs[i].ID != i {
			t.Errorf("request %d ID = %d", i, reqs[i].ID)
		}
	}
	if reqs[1].SeatCount() != 5 {
		t.Errorf("seats = %d, want 5", reqs[1].SeatCount())
	}

	// Projection sanity: trip 1 is ~0.75 km east-ish; the TLC's own
	// odometer distance for row 1 is 1.10 miles of street driving, so
	// straight-line must be below that but same order.
	trip := reqs[0].TripDistance(geo.EuclidMetric)
	if trip < 0.3 || trip > 1.5 {
		t.Errorf("projected trip 1 = %v km, expected sub-mile straight line", trip)
	}
	// Trip 3 is a long haul (~12 km odometer): projection must agree on
	// the order of magnitude.
	trip3 := reqs[2].TripDistance(geo.EuclidMetric)
	if trip3 < 8 || trip3 > 16 {
		t.Errorf("projected trip 3 = %v km, want ~12", trip3)
	}
}

func TestConvertTLCProjectionIsLocallyAccurate(t *testing.T) {
	// Two points 0.01 degrees of latitude apart are ~1.11 km apart on
	// Earth; the projection must agree closely.
	csvData := "tpep_pickup_datetime,pickup_longitude,pickup_latitude,dropoff_longitude,dropoff_latitude\n" +
		"2016-01-01 00:00:00,-74.0,40.70,-74.0,40.71\n"
	reqs, err := ConvertTLC(strings.NewReader(csvData), TLCOptions{})
	if err != nil {
		t.Fatalf("ConvertTLC: %v", err)
	}
	trip := reqs[0].TripDistance(geo.EuclidMetric)
	if math.Abs(trip-1.112) > 0.02 {
		t.Errorf("0.01 degree latitude = %v km, want ~1.112", trip)
	}
}

func TestConvertTLCErrors(t *testing.T) {
	if _, err := ConvertTLC(strings.NewReader(""), TLCOptions{}); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := ConvertTLC(strings.NewReader("a,b,c\n1,2,3\n"), TLCOptions{}); err == nil {
		t.Error("accepted input without the TLC columns")
	}
	onlyHeader := "tpep_pickup_datetime,pickup_longitude,pickup_latitude,dropoff_longitude,dropoff_latitude\n"
	if _, err := ConvertTLC(strings.NewReader(onlyHeader), TLCOptions{}); err == nil {
		t.Error("accepted input with zero usable rows")
	}
}

func TestConvertTLCMaxRows(t *testing.T) {
	reqs, err := ConvertTLC(strings.NewReader(tlcSample), TLCOptions{MaxRows: 2})
	if err != nil {
		t.Fatalf("ConvertTLC: %v", err)
	}
	if len(reqs) != 2 {
		t.Errorf("got %d requests, want 2", len(reqs))
	}
}

func TestConvertTLCCustomColumns(t *testing.T) {
	csvData := "when,plon,plat,dlon,dlat\n" +
		"2020-05-05 10:00:00,-71.06,42.36,-71.05,42.37\n"
	reqs, err := ConvertTLC(strings.NewReader(csvData), TLCOptions{
		Columns: TLCColumns{
			PickupTime: "when",
			PickupLon:  "plon",
			PickupLat:  "plat",
			DropoffLon: "dlon",
			DropoffLat: "dlat",
		},
	})
	if err != nil {
		t.Fatalf("ConvertTLC: %v", err)
	}
	if len(reqs) != 1 || reqs[0].SeatCount() != 1 {
		t.Errorf("reqs = %+v", reqs)
	}
}
