package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// csvHeader is the column layout for trace files: one request per row.
var csvHeader = []string{"id", "frame", "pickup_x", "pickup_y", "dropoff_x", "dropoff_y", "seats"}

// WriteCSV streams the requests to w in the trace CSV format, so real
// traces (e.g. the NYC TLC data) can be converted once and replayed.
func WriteCSV(w io.Writer, reqs []fleet.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range reqs {
		row := []string{
			strconv.Itoa(r.ID),
			strconv.Itoa(r.Frame),
			strconv.FormatFloat(r.Pickup.X, 'f', -1, 64),
			strconv.FormatFloat(r.Pickup.Y, 'f', -1, 64),
			strconv.FormatFloat(r.Dropoff.X, 'f', -1, 64),
			strconv.FormatFloat(r.Dropoff.Y, 'f', -1, 64),
			strconv.Itoa(r.SeatCount()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write request %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace CSV produced by WriteCSV (or converted from a
// real dataset).
func ReadCSV(r io.Reader) ([]fleet.Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, rows[0][i], name)
		}
	}
	var reqs []fleet.Request
	for n, row := range rows[1:] {
		req, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", n+2, err)
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

func parseRow(row []string) (fleet.Request, error) {
	id, err := strconv.Atoi(row[0])
	if err != nil {
		return fleet.Request{}, fmt.Errorf("id: %w", err)
	}
	frame, err := strconv.Atoi(row[1])
	if err != nil {
		return fleet.Request{}, fmt.Errorf("frame: %w", err)
	}
	coords := make([]float64, 4)
	for i := 0; i < 4; i++ {
		coords[i], err = strconv.ParseFloat(row[2+i], 64)
		if err != nil {
			return fleet.Request{}, fmt.Errorf("coordinate %d: %w", i, err)
		}
	}
	seats, err := strconv.Atoi(row[6])
	if err != nil {
		return fleet.Request{}, fmt.Errorf("seats: %w", err)
	}
	return fleet.Request{
		ID:      id,
		Frame:   frame,
		Pickup:  geo.Point{X: coords[0], Y: coords[1]},
		Dropoff: geo.Point{X: coords[2], Y: coords[3]},
		Seats:   seats,
	}, nil
}
