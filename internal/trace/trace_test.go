package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"stabledispatch/internal/geo"
)

func TestCityValidate(t *testing.T) {
	tests := []struct {
		name    string
		city    City
		wantErr bool
	}{
		{name: "newyork", city: NewYork()},
		{name: "boston", city: Boston()},
		{name: "degenerate bounds", city: City{Bounds: geo.NewRect(geo.Point{}, geo.Point{})}, wantErr: true},
		{
			name: "no hotspots",
			city: City{
				Bounds:     geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1}),
				TaxiStdDev: 1,
			},
			wantErr: true,
		},
		{
			name: "bad hotspot",
			city: City{
				Bounds:     geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1}),
				Hotspots:   []Hotspot{{StdDev: 0, Weight: 1}},
				TaxiStdDev: 1,
			},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.city.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	good := BostonConfig(60, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := good
	bad.Frames = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero frames")
	}
	bad = good
	bad.RequestsPerDay = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero volume")
	}
	bad = good
	bad.Seats = 9
	if err := bad.Validate(); err == nil {
		t.Error("accepted 9 seats")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := BostonConfig(120, 7)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between runs", i)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	cfg := BostonConfig(1440, 3)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Volume within 15% of the calibrated daily count.
	if math.Abs(float64(len(reqs))-13500) > 13500*0.15 {
		t.Errorf("generated %d requests, want ~13500", len(reqs))
	}
	prevFrame := 0
	ids := make(map[int]bool, len(reqs))
	for _, r := range reqs {
		if ids[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		ids[r.ID] = true
		if r.Frame < prevFrame {
			t.Fatal("requests not sorted by frame")
		}
		prevFrame = r.Frame
		if !cfg.City.Bounds.Contains(r.Pickup) || !cfg.City.Bounds.Contains(r.Dropoff) {
			t.Fatalf("request %d outside city bounds", r.ID)
		}
		if r.SeatCount() < 1 || r.SeatCount() > 3 {
			t.Fatalf("request %d seats = %d", r.ID, r.Seats)
		}
	}
}

func TestGenerateRushHourPattern(t *testing.T) {
	cfg := BostonConfig(1440, 5)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	perHour := make([]int, 24)
	for _, r := range reqs {
		perHour[(r.Frame%1440)/60]++
	}
	// Rush hours must clearly dominate the small hours.
	if perHour[9] <= 2*perHour[4] {
		t.Errorf("9am hour (%d) not dominant over 4am (%d)", perHour[9], perHour[4])
	}
	if perHour[18] <= 2*perHour[4] {
		t.Errorf("6pm hour (%d) not dominant over 4am (%d)", perHour[18], perHour[4])
	}
}

func TestHourWeight(t *testing.T) {
	if HourWeight(9*60) <= HourWeight(4*60) {
		t.Error("9am weight not above 4am")
	}
	if HourWeight(18*60) <= HourWeight(3*60) {
		t.Error("6pm weight not above 3am")
	}
	// Wraps across days and handles negatives.
	if HourWeight(1440+30) != HourWeight(30) {
		t.Error("HourWeight does not wrap across days")
	}
	if HourWeight(-1) != HourWeight(1439) {
		t.Error("HourWeight mishandles negative frames")
	}
}

func TestNewYorkLargerThanBoston(t *testing.T) {
	ny, bos := NewYork(), Boston()
	if ny.Bounds.Width() <= bos.Bounds.Width() {
		t.Error("New York must span a larger area than Boston (the paper leans on this)")
	}
}

func TestTaxis(t *testing.T) {
	city := Boston()
	taxis, err := Taxis(city, 200, 1)
	if err != nil {
		t.Fatalf("Taxis: %v", err)
	}
	if len(taxis) != 200 {
		t.Fatalf("got %d taxis", len(taxis))
	}
	ids := make(map[int]bool)
	center := city.Bounds.Center()
	var meanDist float64
	for _, taxi := range taxis {
		if ids[taxi.ID] {
			t.Fatalf("duplicate taxi ID %d", taxi.ID)
		}
		ids[taxi.ID] = true
		if !city.Bounds.Contains(taxi.Pos) {
			t.Fatalf("taxi %d outside bounds", taxi.ID)
		}
		meanDist += geo.Euclid(taxi.Pos, center)
	}
	meanDist /= float64(len(taxis))
	// 2-D normal with sigma=3: mean radius = sigma*sqrt(pi/2) ≈ 3.76.
	if meanDist > 6 {
		t.Errorf("taxis not concentrated around center: mean radius %v", meanDist)
	}

	if _, err := Taxis(city, -1, 1); err == nil {
		t.Error("Taxis accepted negative count")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := BostonConfig(30, 9)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip %d -> %d requests", len(reqs), len(got))
	}
	for i := range reqs {
		want := reqs[i]
		want.Seats = reqs[i].SeatCount() // writer normalises seats
		if got[i] != want {
			t.Fatalf("request %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{name: "empty", data: ""},
		{name: "bad header", data: "a,b,c,d,e,f,g\n"},
		{name: "bad id", data: "id,frame,pickup_x,pickup_y,dropoff_x,dropoff_y,seats\nx,0,0,0,1,1,1\n"},
		{name: "bad coord", data: "id,frame,pickup_x,pickup_y,dropoff_x,dropoff_y,seats\n1,0,?,0,1,1,1\n"},
		{name: "short row", data: "id,frame,pickup_x,pickup_y,dropoff_x,dropoff_y,seats\n1,0,0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.data)); err == nil {
				t.Error("ReadCSV accepted malformed input")
			}
		})
	}
}
