// Package trace models passenger-request traces: CSV load/save for real
// data and synthetic generators calibrated to the two traces the paper
// evaluates on — New York (January 2016, 1,445,285 requests, 700 taxis)
// and Boston (September 2012, 406,247 requests, 200 taxis).
//
// The real datasets are not redistributable here, so the generators
// preserve the statistics the evaluation depends on: daily request
// volume, relative city extent (the New York trace covers a much larger
// area, which the paper uses to explain the taller dissatisfaction CDFs),
// clustered demand hotspots, a diurnal rate curve peaking at 9am and 6pm,
// and taxi seeding from a 2-D normal distribution around the city center.
package trace

import (
	"fmt"
	"math"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
)

// Hotspot is one demand cluster: trips start (and end) near hotspot
// centers with Gaussian spread.
type Hotspot struct {
	Center geo.Point
	StdDev float64
	// Weight is the relative share of demand this hotspot attracts.
	Weight float64
}

// City describes the spatial layout of a simulated city.
type City struct {
	Name string
	// Bounds clips all sampled locations.
	Bounds geo.Rect
	// Hotspots drive pickup and drop-off sampling. Must be non-empty
	// with positive total weight.
	Hotspots []Hotspot
	// TaxiStdDev is the spread of the 2-D normal taxi seeding around
	// the city center (the paper's taxi placement model).
	TaxiStdDev float64
	// LocalTripKm is the mean length of a local trip; most taxi rides
	// are short hops, which keeps the fleet's ride throughput at the
	// real traces' levels.
	LocalTripKm float64
	// CrossTownProb is the fraction of trips that run hotspot-to-
	// hotspot across the city instead of locally.
	CrossTownProb float64
}

// Validate reports malformed city descriptions.
func (c City) Validate() error {
	if c.Bounds.Width() <= 0 || c.Bounds.Height() <= 0 {
		return fmt.Errorf("trace: city %q has degenerate bounds", c.Name)
	}
	if len(c.Hotspots) == 0 {
		return fmt.Errorf("trace: city %q has no hotspots", c.Name)
	}
	total := 0.0
	for _, h := range c.Hotspots {
		if h.StdDev <= 0 || h.Weight < 0 {
			return fmt.Errorf("trace: city %q has invalid hotspot %+v", c.Name, h)
		}
		total += h.Weight
	}
	if total <= 0 {
		return fmt.Errorf("trace: city %q has zero total hotspot weight", c.Name)
	}
	if c.TaxiStdDev <= 0 {
		return fmt.Errorf("trace: city %q has invalid taxi spread %v", c.Name, c.TaxiStdDev)
	}
	if c.LocalTripKm <= 0 {
		return fmt.Errorf("trace: city %q has invalid local trip length %v", c.Name, c.LocalTripKm)
	}
	if c.CrossTownProb < 0 || c.CrossTownProb > 1 {
		return fmt.Errorf("trace: city %q has invalid cross-town probability %v", c.Name, c.CrossTownProb)
	}
	return nil
}

// NewYork returns the synthetic stand-in for the paper's New York trace:
// a 60×60 km region (the TLC trace spans the whole New York state side,
// much larger than Boston) with Manhattan-like concentration plus outer
// boroughs.
func NewYork() City {
	return City{
		Name:   "newyork",
		Bounds: geo.NewRect(geo.Point{}, geo.Point{X: 60, Y: 60}),
		Hotspots: []Hotspot{
			{Center: geo.Point{X: 30, Y: 32}, StdDev: 2.0, Weight: 6},   // Manhattan core
			{Center: geo.Point{X: 33, Y: 27}, StdDev: 2.5, Weight: 2},   // Brooklyn
			{Center: geo.Point{X: 38, Y: 34}, StdDev: 2.5, Weight: 1.5}, // Queens
			{Center: geo.Point{X: 28, Y: 40}, StdDev: 2.0, Weight: 1},   // Bronx
			{Center: geo.Point{X: 14, Y: 14}, StdDev: 4.0, Weight: 0.5}, // outer region
			{Center: geo.Point{X: 48, Y: 48}, StdDev: 4.0, Weight: 0.5}, // outer region
		},
		TaxiStdDev:    6,
		LocalTripKm:   1.6,
		CrossTownProb: 0.06,
	}
}

// Boston returns the synthetic stand-in for the Boston trace: a compact
// 20×20 km region with a strong downtown core.
func Boston() City {
	return City{
		Name:   "boston",
		Bounds: geo.NewRect(geo.Point{}, geo.Point{X: 20, Y: 20}),
		Hotspots: []Hotspot{
			{Center: geo.Point{X: 10, Y: 11}, StdDev: 1.0, Weight: 6},    // downtown
			{Center: geo.Point{X: 8, Y: 12}, StdDev: 1.0, Weight: 2},     // Cambridge
			{Center: geo.Point{X: 11.5, Y: 8.5}, StdDev: 1.2, Weight: 1}, // Dorchester
			{Center: geo.Point{X: 13, Y: 12}, StdDev: 1.4, Weight: 1},    // airport/east
		},
		TaxiStdDev:    2,
		LocalTripKm:   1.3,
		CrossTownProb: 0.10,
	}
}

// hourWeights is the diurnal demand profile: relative request intensity
// per clock hour, with morning (9am) and evening (6pm) rush peaks — the
// pattern Fig. 7 of the paper keys on.
var hourWeights = [24]float64{
	1.6, 1.2, 0.9, 0.8, 0.8, 0.9, // 12am-5am
	1.4, 2.2, 3.0, 3.3, 2.8, 2.6, // 6am-11am, peak at 9am
	2.6, 2.5, 2.5, 2.6, 2.8, 3.1, // 12pm-5pm
	3.5, 3.3, 2.9, 2.6, 2.3, 1.9, // 6pm-11pm, peak at 6pm
}

// HourWeight returns the relative demand intensity of the clock hour
// containing the given frame (minute of the day).
func HourWeight(frame int) float64 {
	minute := ((frame % 1440) + 1440) % 1440
	return hourWeights[minute/60]
}

// Config parameterises synthetic trace generation.
type Config struct {
	City City
	// Frames is the horizon in minutes (1440 for one day).
	Frames int
	// RequestsPerDay is the target daily volume. The paper's traces
	// average ~46,600/day (New York) and ~13,500/day (Boston).
	RequestsPerDay int
	// Seats, if positive, is the maximum party size; parties are drawn
	// 1..Seats with decaying probability. Zero means all parties of 1.
	Seats int
	Seed  int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.City.Validate(); err != nil {
		return err
	}
	if c.Frames <= 0 {
		return fmt.Errorf("trace: frames must be positive, got %d", c.Frames)
	}
	if c.RequestsPerDay <= 0 {
		return fmt.Errorf("trace: requests per day must be positive, got %d", c.RequestsPerDay)
	}
	if c.Seats < 0 || c.Seats > 6 {
		return fmt.Errorf("trace: seats must be in [0, 6], got %d", c.Seats)
	}
	return nil
}

// NewYorkConfig returns the calibrated New York generation config over
// the given horizon.
func NewYorkConfig(frames int, seed int64) Config {
	return Config{City: NewYork(), Frames: frames, RequestsPerDay: 46600, Seats: 3, Seed: seed}
}

// BostonConfig returns the calibrated Boston generation config.
func BostonConfig(frames int, seed int64) Config {
	return Config{City: Boston(), Frames: frames, RequestsPerDay: 13500, Seats: 3, Seed: seed}
}

// Generate produces a deterministic synthetic request trace: arrivals per
// frame are Poisson with the diurnal intensity, pickups follow the
// hotspot mixture, and drop-offs are drawn from the hotspot mixture
// excluding very short hops.
func Generate(cfg Config) ([]fleet.Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := geo.NewSampler(cfg.Seed)
	weightSum := 0.0
	for _, h := range cfg.City.Hotspots {
		weightSum += h.Weight
	}
	avgWeight := 0.0
	for _, w := range hourWeights {
		avgWeight += w
	}
	avgWeight /= 24

	var reqs []fleet.Request
	id := 0
	for frame := 0; frame < cfg.Frames; frame++ {
		// Per-minute Poisson intensity scaled so the day totals
		// RequestsPerDay in expectation.
		lambda := float64(cfg.RequestsPerDay) / 1440 * HourWeight(frame) / avgWeight
		n := poisson(s, lambda)
		for k := 0; k < n; k++ {
			pickup := samplePoint(s, cfg.City, weightSum)
			dropoff := sampleDropoff(s, cfg.City, pickup, weightSum)
			reqs = append(reqs, fleet.Request{
				ID:      id,
				Pickup:  pickup,
				Dropoff: dropoff,
				Frame:   frame,
				Seats:   sampleSeats(s, cfg.Seats),
			})
			id++
		}
	}
	return reqs, nil
}

// Taxis seeds n taxis from the city's 2-D normal distribution.
func Taxis(city City, n int, seed int64) ([]fleet.Taxi, error) {
	if err := city.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative taxi count %d", n)
	}
	s := geo.NewSampler(seed)
	taxis := make([]fleet.Taxi, n)
	for i := range taxis {
		taxis[i] = fleet.Taxi{
			ID:     i,
			Pos:    s.NormalIn(city.Bounds.Center(), city.TaxiStdDev, city.Bounds),
			Seats:  4,
			Status: fleet.TaxiIdle,
		}
	}
	return taxis, nil
}

// sampleDropoff draws a destination: usually a local hop with an
// exponentially distributed length around the city's mean trip, sometimes
// a cross-town trip to another hotspot. Tiny sub-500 m hops are
// stretched — nobody hails a taxi to cross the street.
func sampleDropoff(s *geo.Sampler, city City, pickup geo.Point, weightSum float64) geo.Point {
	if s.Float64() < city.CrossTownProb {
		dropoff := samplePoint(s, city, weightSum)
		for tries := 0; geo.Euclid(pickup, dropoff) < 0.5 && tries < 8; tries++ {
			dropoff = samplePoint(s, city, weightSum)
		}
		return dropoff
	}
	length := 0.5 + s.ExpFloat64()*city.LocalTripKm
	if limit := 4 * city.LocalTripKm; length > limit {
		length = limit
	}
	angle := s.Float64() * 2 * math.Pi
	dropoff := geo.Point{
		X: pickup.X + length*math.Cos(angle),
		Y: pickup.Y + length*math.Sin(angle),
	}
	return city.Bounds.Clamp(dropoff)
}

func samplePoint(s *geo.Sampler, city City, weightSum float64) geo.Point {
	pick := s.Float64() * weightSum
	for _, h := range city.Hotspots {
		pick -= h.Weight
		if pick <= 0 {
			return s.NormalIn(h.Center, h.StdDev, city.Bounds)
		}
	}
	last := city.Hotspots[len(city.Hotspots)-1]
	return s.NormalIn(last.Center, last.StdDev, city.Bounds)
}

func sampleSeats(s *geo.Sampler, maxSeats int) int {
	if maxSeats <= 1 {
		return 1
	}
	// Party sizes decay geometrically: 1 is ~4x as likely as 2, etc.
	seats := 1
	for seats < maxSeats && s.Float64() < 0.2 {
		seats++
	}
	return seats
}

// poisson draws a Poisson variate: Knuth's product method for small
// lambda, a clamped normal approximation for large.
func poisson(s *geo.Sampler, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*normSample(s)
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// normSample draws a standard normal via Box–Muller from the sampler's
// uniform stream (geo.Sampler exposes only uniforms and 2-D normals).
func normSample(s *geo.Sampler) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
