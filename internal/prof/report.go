package prof

import (
	"sort"

	"stabledispatch/internal/obs"
)

// StageCost is one stage's share of a frame (or of a run, in Summary):
// the JSON-friendly projection of the fixed ledger arrays.
type StageCost struct {
	Stage  string `json:"stage"`
	Ns     int64  `json:"ns"`
	Calls  int64  `json:"calls"`
	Allocs int64  `json:"allocs"`
	// CacheHits/CacheMisses are the Dijkstra-cache deltas attributed to
	// the stage (zero on grid metrics).
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`
	// Share is Ns over the frame (or run) wall-clock, in [0,1].
	Share float64 `json:"share"`
}

// FrameReport is one frame's attribution, ready for JSON: the slow-frame
// entries of /v1/profile and the per-frame payload of the prof stream
// topic. Stages are in pipeline order; zero-call stages are omitted.
type FrameReport struct {
	Frame      int64       `json:"frame"`
	WallNs     int64       `json:"wallNs"`
	Allocs     int64       `json:"allocs"`
	Overrun    bool        `json:"overrun,omitempty"`
	StageSumNs int64       `json:"stageSumNs"`
	Stages     []StageCost `json:"stages"`
}

// Report projects the ledger arrays into a FrameReport.
func (p *FrameProfile) Report() FrameReport {
	r := FrameReport{
		Frame:      p.Frame,
		WallNs:     p.WallNs,
		Allocs:     p.Allocs,
		Overrun:    p.Overrun,
		StageSumNs: p.StageSumNs(),
		Stages:     make([]StageCost, 0, NumStages),
	}
	for i := 0; i < NumStages; i++ {
		if p.StageCalls[i] == 0 {
			continue
		}
		sc := StageCost{
			Stage:       StageNames[i],
			Ns:          p.StageNs[i],
			Calls:       p.StageCalls[i],
			Allocs:      p.StageAllocs[i],
			CacheHits:   p.StageCacheHits[i],
			CacheMisses: p.StageCacheMisses[i],
		}
		if p.WallNs > 0 {
			sc.Share = float64(p.StageNs[i]) / float64(p.WallNs)
		}
		r.Stages = append(r.Stages, sc)
	}
	return r
}

// Summary is the run-cumulative view of the ledger.
type Summary struct {
	Frames     int64 `json:"frames"`
	BudgetNs   int64 `json:"budgetNs,omitempty"`
	Overruns   int64 `json:"overruns"`
	Captures   int64 `json:"captures"`
	Suppressed int64 `json:"suppressed"`
	AvgWallNs  int64 `json:"avgWallNs"`
	AvgAllocs  int64 `json:"avgAllocs"`
	// Stages carries cumulative per-stage cost; Share is against the
	// cumulative frame wall-clock.
	Stages []StageCost `json:"stages"`
}

// Summary snapshots the cumulative totals.
func (ld *Ledger) Summary() Summary {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	s := Summary{
		Frames:     ld.frames,
		BudgetNs:   ld.cfg.BudgetNs,
		Overruns:   ld.overruns,
		Captures:   ld.captures,
		Suppressed: ld.suppressed,
		Stages:     make([]StageCost, 0, NumStages),
	}
	if ld.frames > 0 {
		s.AvgWallNs = ld.totalWallNs / ld.frames
		s.AvgAllocs = ld.totalAllocs / ld.frames
	}
	for i := 0; i < NumStages; i++ {
		if ld.totalCalls[i] == 0 {
			continue
		}
		sc := StageCost{
			Stage:       StageNames[i],
			Ns:          ld.totalNs[i],
			Calls:       ld.totalCalls[i],
			Allocs:      ld.totalAllocn[i],
			CacheHits:   ld.totalHits[i],
			CacheMisses: ld.totalMisses[i],
		}
		if ld.totalWallNs > 0 {
			sc.Share = float64(ld.totalNs[i]) / float64(ld.totalWallNs)
		}
		s.Stages = append(s.Stages, sc)
	}
	return s
}

// TopFrames returns the slow-frame ring, slowest first.
func (ld *Ledger) TopFrames() []FrameReport {
	ld.mu.Lock()
	top := make([]FrameProfile, len(ld.top))
	copy(top, ld.top)
	ld.mu.Unlock()
	sort.Slice(top, func(i, j int) bool { return top[i].WallNs > top[j].WallNs })
	out := make([]FrameReport, len(top))
	for i := range top {
		out[i] = top[i].Report()
	}
	return out
}

// StageSummary is one stage's rolling distribution, read from the obs
// histograms: the shared aggregation behind dispatchd's /v1/report and
// /v1/profile and taxisim's end-of-run stage table.
type StageSummary struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"totalSeconds"`
	P50Seconds   float64 `json:"p50Seconds"`
	P95Seconds   float64 `json:"p95Seconds"`
	P99Seconds   float64 `json:"p99Seconds"`
}

// StageBreakdown reads the rolling per-stage percentiles from the
// dispatch_stage_seconds histogram family, plus the whole-frame
// distribution from sim_dispatch_frame_seconds (nil before the first
// dispatch). Stages with no observations are omitted.
func StageBreakdown() (frame *StageSummary, stages []StageSummary) {
	for _, hs := range obs.HistogramSummaries("dispatch_stage_seconds") {
		stages = append(stages, summaryToStage(hs.Label("stage"), hs))
	}
	for _, hs := range obs.HistogramSummaries("sim_dispatch_frame_seconds") {
		out := summaryToStage("frame", hs)
		frame = &out
	}
	return frame, stages
}

func summaryToStage(name string, hs obs.HistogramSummary) StageSummary {
	return StageSummary{
		Stage:        name,
		Count:        hs.Count,
		TotalSeconds: hs.Sum,
		P50Seconds:   hs.P50,
		P95Seconds:   hs.P95,
		P99Seconds:   hs.P99,
	}
}
