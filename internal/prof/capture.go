package prof

import (
	"bytes"
	"io"
	"runtime/pprof"
)

// startCPUProfile tries to start the process-wide CPU profiler into w,
// reporting success. It fails gracefully when a profile is already
// running (a live /debug/pprof/profile session owns the profiler); the
// capture then ships without a CPU profile rather than aborting.
func startCPUProfile(w io.Writer) bool {
	return pprof.StartCPUProfile(w) == nil
}

// stopCPUProfile stops a profile started by startCPUProfile.
func stopCPUProfile() { pprof.StopCPUProfile() }

// heapProfile renders the current heap profile in pprof protobuf
// format. A pre/post pair brackets a capture so the allocation delta is
// recoverable offline (`go tool pprof -base heap_pre.pprof heap.pprof`).
func heapProfile() []byte {
	p := pprof.Lookup("heap")
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil
	}
	return buf.Bytes()
}
