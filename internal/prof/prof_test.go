package prof

import (
	"testing"
	"time"
)

// configure installs a ledger for the test and uninstalls it afterwards.
func configure(t *testing.T, cfg Config) *Ledger {
	t.Helper()
	ld := Configure(cfg)
	t.Cleanup(Disable)
	return ld
}

// spin burns roughly d of wall-clock without sleeping, so stage spans
// measure real time even at microsecond scale.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestLedgerAttributesStages(t *testing.T) {
	ld := configure(t, Config{})
	ld.BeginFrame(7)
	sp := Begin(StageCostPlane)
	spin(200 * time.Microsecond)
	sp.End()
	sp = Begin(StageMatching)
	spin(400 * time.Microsecond)
	sp.End()
	sp = Begin(StageMatching)
	spin(100 * time.Microsecond)
	sp.End()
	ld.EndFrame(7, int64(time.Millisecond), 123)

	top := ld.TopFrames()
	if len(top) != 1 {
		t.Fatalf("TopFrames len = %d, want 1", len(top))
	}
	fr := top[0]
	if fr.Frame != 7 || fr.WallNs != int64(time.Millisecond) || fr.Allocs != 123 {
		t.Fatalf("frame header = %+v", fr)
	}
	if fr.StageSumNs <= 0 || fr.StageSumNs > fr.WallNs {
		t.Fatalf("stage sum %d outside (0, wall=%d]", fr.StageSumNs, fr.WallNs)
	}
	byStage := map[string]StageCost{}
	for _, sc := range fr.Stages {
		byStage[sc.Stage] = sc
	}
	if byStage["cost_plane"].Calls != 1 || byStage["matching"].Calls != 2 {
		t.Fatalf("stage calls = %+v", byStage)
	}
	if byStage["matching"].Ns < byStage["cost_plane"].Ns {
		t.Fatalf("matching %dns should dominate cost_plane %dns",
			byStage["matching"].Ns, byStage["cost_plane"].Ns)
	}

	sum := ld.Summary()
	if sum.Frames != 1 || sum.AvgWallNs != int64(time.Millisecond) || sum.AvgAllocs != 123 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSpansOutsideFrameDropped(t *testing.T) {
	ld := configure(t, Config{})
	sp := Begin(StageMatching)
	spin(50 * time.Microsecond)
	sp.End() // no frame open: dropped
	ld.BeginFrame(1)
	ld.EndFrame(1, 1000, 0)
	top := ld.TopFrames()
	if len(top) != 1 || top[0].StageSumNs != 0 {
		t.Fatalf("orphan span leaked into frame: %+v", top)
	}
}

func TestNoLedgerSpanIsFree(t *testing.T) {
	Disable()
	sp := Begin(StageMatching)
	sp.End() // must not panic
	var zero Span
	zero.End()
}

func TestTopNRingKeepsSlowest(t *testing.T) {
	ld := configure(t, Config{TopN: 3})
	for i := int64(0); i < 10; i++ {
		ld.BeginFrame(i)
		ld.EndFrame(i, (i+1)*1000, 0)
	}
	top := ld.TopFrames()
	if len(top) != 3 {
		t.Fatalf("TopFrames len = %d, want 3", len(top))
	}
	wantWall := []int64{10000, 9000, 8000}
	for i, fr := range top {
		if fr.WallNs != wantWall[i] {
			t.Fatalf("top[%d].WallNs = %d, want %d (top=%+v)", i, fr.WallNs, wantWall[i], top)
		}
	}
}

func TestOverrunCaptureRateLimited(t *testing.T) {
	var captures []Capture
	ld := configure(t, Config{
		BudgetNs:       1, // every frame overruns
		CaptureFrames:  2,
		CooldownFrames: 1000,
		OnCapture:      func(c Capture) { captures = append(captures, c) },
	})
	for i := int64(0); i < 40; i++ {
		ld.BeginFrame(i)
		sp := Begin(StageMatching)
		spin(20 * time.Microsecond)
		sp.End()
		overran := ld.EndFrame(i, int64(50*time.Microsecond), 1)
		if !overran {
			t.Fatalf("frame %d did not overrun a 1ns budget", i)
		}
	}
	if len(captures) != 1 {
		t.Fatalf("captures = %d, want exactly 1 (cooldown must rate-limit)", len(captures))
	}
	c := captures[0]
	if c.Trigger.Frame != 0 || !c.Trigger.Overrun {
		t.Fatalf("capture trigger = %+v", c.Trigger)
	}
	if len(c.CPU) == 0 {
		t.Fatalf("capture has no CPU profile")
	}
	if len(c.Heap) == 0 || len(c.HeapPre) == 0 {
		t.Fatalf("capture missing heap pair: pre=%d post=%d", len(c.HeapPre), len(c.Heap))
	}
	sum := ld.Summary()
	if sum.Overruns != 40 || sum.Captures != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Suppressed != 39 {
		t.Fatalf("suppressed = %d, want 39 (every later overrun swallowed)", sum.Suppressed)
	}
}

func TestDominant(t *testing.T) {
	var p FrameProfile
	p.WallNs = 1000
	if stage, share := p.Dominant(); stage != "" || share != 0 {
		t.Fatalf("empty frame dominant = %q/%v", stage, share)
	}
	p.StageNs[StageMatching] = 780
	p.StageNs[StageCostPlane] = 100
	stage, share := p.Dominant()
	if stage != "matching" || share != 0.78 {
		t.Fatalf("dominant = %q/%v, want matching/0.78", stage, share)
	}
}

func TestStageIndexRoundTrip(t *testing.T) {
	for i, name := range StageNames {
		if got := StageIndex(name); got != i {
			t.Fatalf("StageIndex(%q) = %d, want %d", name, got, i)
		}
	}
	if StageIndex("nope") != -1 {
		t.Fatalf("unknown stage should be -1")
	}
}

func TestRecordingPathDoesNotAllocate(t *testing.T) {
	ld := configure(t, Config{TopN: 2})
	// Warm the top ring so inserts replace in place.
	for i := int64(0); i < 4; i++ {
		ld.BeginFrame(i)
		ld.EndFrame(i, 1000, 0)
	}
	frame := int64(100)
	allocs := testing.AllocsPerRun(50, func() {
		ld.BeginFrame(frame)
		sp := Begin(StageCostPlane)
		sp.End()
		sp = Begin(StageMatching)
		sp.End()
		ld.EndFrame(frame, 500, 0)
		frame++
	})
	if allocs > 0 {
		t.Fatalf("recording path allocates %.1f objects/frame, want 0", allocs)
	}
}
