// Package prof is the continuous frame-budget profiler: a per-frame
// cost ledger that attributes each dispatch frame's wall-clock,
// allocations, and Dijkstra-cache traffic to the pipeline stage that
// spent them (costplane build/prune → preference construction → market
// build → matching/set-packing → commit), keeps the N slowest frames
// for post-hoc attribution ("frame 412: 78% in matching"), and — when a
// frame blows a configured deadline budget — captures pprof CPU/heap
// profiles, rate-limited flightrec-style, and hands them to a callback
// for bundling.
//
// The ledger is fed by the same stage spans that feed the
// dispatch_stage_seconds histograms (internal/dispatch wraps both in
// one timer), so the rolling per-stage percentiles remain the obs
// histograms' job; prof adds the per-frame attribution the histograms
// cannot express. StageBreakdown is the single read path over those
// histograms, shared by dispatchd's /v1/report and /v1/profile and
// taxisim's end-of-run stage table.
//
// Like dtrace, flightrec, and stream, the profiler is a process-wide
// singleton behind an atomic pointer: Configure installs it, Active
// loads it, Disable removes it. When no ledger is installed a span
// start is one atomic load; the simulator and dispatchers never pay
// for profiling they didn't ask for.
package prof

import (
	"bytes"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"stabledispatch/internal/obs"
	"stabledispatch/internal/stream"
)

// Stage indices of the fixed per-frame cost ledger, in pipeline order.
// The names match the dispatch_stage_seconds{stage=...} labels so the
// two views (per-frame ledger, rolling histogram) join on the stage.
const (
	StageIdleScan = iota
	StageCostPlane
	StagePrefBuild
	StageCostMatrix
	StageMatching
	StagePacking
	StageCommit
	NumStages
)

// StageNames maps stage indices to their histogram label values.
var StageNames = [NumStages]string{
	"idle_scan", "cost_plane", "pref_build", "cost_matrix",
	"matching", "packing", "commit",
}

// StageIndex resolves a stage label to its ledger index (-1 unknown).
func StageIndex(name string) int {
	for i, n := range StageNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Defaults for Config zero values.
const (
	// DefaultTopN is the slow-frame ring size.
	DefaultTopN = 8
	// DefaultCooldownFrames spaces overrun captures: after a capture
	// fires, this many frames of further overruns are only counted.
	// Matches the flight recorder's trigger cooldown.
	DefaultCooldownFrames = 300
	// DefaultCaptureFrames is how many frames the CPU profile spans
	// after the triggering overrun.
	DefaultCaptureFrames = 30
)

// allocMetric is the runtime/metrics cumulative heap-object counter the
// ledger samples at span boundaries for per-stage allocation counts.
const allocMetric = "/gc/heap/allocs:objects"

// Config parameterises a Ledger.
type Config struct {
	// BudgetNs is the per-frame deadline budget in nanoseconds. A frame
	// whose wall-clock exceeds it is an overrun; ≤ 0 disables overrun
	// detection (the ledger still attributes every frame).
	BudgetNs int64
	// TopN bounds the slow-frame ring (default DefaultTopN).
	TopN int
	// CooldownFrames is the minimum frame distance between overrun
	// captures (default DefaultCooldownFrames). Overruns inside the
	// cooldown are counted as suppressed, exactly like flightrec's
	// trigger cooldown — see DESIGN.md for how the two interact.
	CooldownFrames int64
	// CaptureFrames is how many frames after the trigger the CPU
	// profile runs before the capture is finalised (default
	// DefaultCaptureFrames).
	CaptureFrames int
	// OnCapture receives each finalised overrun capture. Nil disables
	// capturing (overruns are still detected and counted). The callback
	// runs synchronously on the simulator's step path — it should hand
	// off promptly (the flightrec bundler writes a bounded bundle).
	OnCapture func(Capture)
}

// FrameProfile is one frame's cost ledger: fixed-width arrays so the
// recording path never allocates.
type FrameProfile struct {
	Frame   int64
	WallNs  int64
	Allocs  int64
	Overrun bool

	StageNs     [NumStages]int64
	StageCalls  [NumStages]int64
	StageAllocs [NumStages]int64
	// Dijkstra-cache traffic attributed to the stage (deltas of the
	// roadnet cache counters across the span; zero on grid metrics).
	StageCacheHits   [NumStages]int64
	StageCacheMisses [NumStages]int64
}

// StageSumNs is the sum of all attributed stage time. It is ≤ WallNs up
// to unattributed frame work (event application, KPI recording) except
// when a Resilient fallback overlaps its abandoned primary, whose spans
// land on the same frame.
func (p *FrameProfile) StageSumNs() int64 {
	var sum int64
	for _, ns := range p.StageNs {
		sum += ns
	}
	return sum
}

// Dominant returns the costliest stage and its share of the frame
// wall-clock (0 shares on an empty frame).
func (p *FrameProfile) Dominant() (stage string, share float64) {
	best := 0
	for i := 1; i < NumStages; i++ {
		if p.StageNs[i] > p.StageNs[best] {
			best = i
		}
	}
	if p.StageNs[best] == 0 {
		return "", 0
	}
	if p.WallNs > 0 {
		share = float64(p.StageNs[best]) / float64(p.WallNs)
	}
	return StageNames[best], share
}

// Capture is one finalised overrun capture: the triggering frame's
// ledger plus pprof evidence. CPU is nil when the process-wide CPU
// profiler was already running (a live /debug/pprof/profile session);
// the heap pair is always present so an offline delta
// (`go tool pprof -base heap_pre.pprof heap.pprof`) is computable.
type Capture struct {
	Trigger  FrameProfile
	BudgetNs int64
	// Frames is how many frames the CPU profile spans.
	Frames int
	// Suppressed counts overruns swallowed by the cooldown since the
	// previous capture.
	Suppressed int64
	CPU        []byte
	HeapPre    []byte
	Heap       []byte
}

// pendingCapture is an armed overrun capture counting down its frames.
type pendingCapture struct {
	trigger    FrameProfile
	left       int
	suppressed int64
	cpu        bytes.Buffer
	cpuActive  bool
	heapPre    []byte
}

// Ledger is the frame-budget profiler. One per process, installed with
// Configure; all methods are safe for concurrent use (the Resilient
// dispatcher's abandoned primary may still be closing spans while the
// fallback runs).
type Ledger struct {
	cfg Config

	mu      sync.Mutex
	inFrame bool
	cur     FrameProfile

	frames      int64
	overruns    int64
	captures    int64
	suppressed  int64 // total cooldown-suppressed overruns
	sinceCap    int64 // suppressed since the last capture
	lastCapture int64 // frame of the last capture trigger
	totalWallNs int64
	totalAllocs int64
	totalNs     [NumStages]int64
	totalCalls  [NumStages]int64
	totalAllocn [NumStages]int64
	totalHits   [NumStages]int64
	totalMisses [NumStages]int64

	top     []FrameProfile // slow-frame ring, capacity TopN
	pending *pendingCapture

	allocMu     sync.Mutex
	allocSample [1]metrics.Sample

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

var active atomic.Pointer[Ledger]

// Configure installs a process-wide ledger and returns it, replacing
// any previous one.
func Configure(cfg Config) *Ledger {
	if cfg.TopN <= 0 {
		cfg.TopN = DefaultTopN
	}
	if cfg.CooldownFrames <= 0 {
		cfg.CooldownFrames = DefaultCooldownFrames
	}
	if cfg.CaptureFrames <= 0 {
		cfg.CaptureFrames = DefaultCaptureFrames
	}
	ld := &Ledger{
		cfg:         cfg,
		lastCapture: -1 << 62,
		top:         make([]FrameProfile, 0, cfg.TopN),
		cacheHits:   obs.GetOrCreateCounter("roadnet_cache_hits_total"),
		cacheMisses: obs.GetOrCreateCounter("roadnet_cache_misses_total"),
	}
	ld.allocSample[0].Name = allocMetric
	active.Store(ld)
	return ld
}

// Active returns the installed ledger, or nil.
func Active() *Ledger { return active.Load() }

// Disable removes the installed ledger. An in-flight CPU capture is
// abandoned without firing OnCapture.
func Disable() {
	ld := active.Swap(nil)
	if ld == nil {
		return
	}
	ld.mu.Lock()
	pc := ld.pending
	ld.pending = nil
	ld.mu.Unlock()
	if pc != nil && pc.cpuActive {
		stopCPUProfile()
	}
}

// readAllocs samples the cumulative heap-object allocation counter.
func (ld *Ledger) readAllocs() int64 {
	ld.allocMu.Lock()
	metrics.Read(ld.allocSample[:])
	v := ld.allocSample[0].Value
	ld.allocMu.Unlock()
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(v.Uint64())
}

// Span is one in-flight stage measurement. The zero Span (no ledger)
// ends for free.
type Span struct {
	ld      *Ledger
	stage   int
	start   time.Time
	allocs0 int64
	hits0   uint64
	misses0 uint64
}

// Begin opens a span against the installed ledger for a stage index
// (one of the Stage constants). With no ledger installed the cost is
// one atomic load.
func Begin(stage int) Span {
	ld := active.Load()
	if ld == nil || stage < 0 || stage >= NumStages {
		return Span{}
	}
	return Span{
		ld:      ld,
		stage:   stage,
		start:   time.Now(),
		allocs0: ld.readAllocs(),
		hits0:   ld.cacheHits.Value(),
		misses0: ld.cacheMisses.Value(),
	}
}

// End closes the span, attributing its cost to the current frame.
// Spans closing outside a frame (or after Disable) are dropped.
func (sp Span) End() {
	if sp.ld == nil {
		return
	}
	ld := sp.ld
	ns := time.Since(sp.start).Nanoseconds()
	allocs := ld.readAllocs() - sp.allocs0
	hits := int64(ld.cacheHits.Value() - sp.hits0)
	misses := int64(ld.cacheMisses.Value() - sp.misses0)
	ld.mu.Lock()
	if ld.inFrame {
		ld.cur.StageNs[sp.stage] += ns
		ld.cur.StageCalls[sp.stage]++
		ld.cur.StageAllocs[sp.stage] += allocs
		ld.cur.StageCacheHits[sp.stage] += hits
		ld.cur.StageCacheMisses[sp.stage] += misses
	}
	ld.mu.Unlock()
}

// BeginFrame opens frame's ledger entry; subsequent span ends attribute
// to it until EndFrame.
func (ld *Ledger) BeginFrame(frame int64) {
	ld.mu.Lock()
	ld.cur = FrameProfile{Frame: frame}
	ld.inFrame = true
	ld.mu.Unlock()
}

// EndFrame seals frame's entry with the simulator-measured wall-clock
// and allocation count — the same values recorded as the tseries
// sample's FrameNs/Allocs, so the ledger and the KPI ring agree by
// construction. It folds the frame into the cumulative totals and the
// slow-frame ring, runs overrun detection, and publishes the frame on
// the prof stream topic when someone is listening. Returns whether the
// frame overran its budget.
func (ld *Ledger) EndFrame(frame, wallNs, allocs int64) bool {
	ld.mu.Lock()
	if !ld.inFrame || ld.cur.Frame != frame {
		ld.mu.Unlock()
		return false
	}
	ld.inFrame = false
	ld.cur.WallNs = wallNs
	ld.cur.Allocs = allocs
	overrun := ld.cfg.BudgetNs > 0 && wallNs > ld.cfg.BudgetNs
	ld.cur.Overrun = overrun
	p := ld.cur

	ld.frames++
	ld.totalWallNs += wallNs
	ld.totalAllocs += allocs
	for i := 0; i < NumStages; i++ {
		ld.totalNs[i] += p.StageNs[i]
		ld.totalCalls[i] += p.StageCalls[i]
		ld.totalAllocn[i] += p.StageAllocs[i]
		ld.totalHits[i] += p.StageCacheHits[i]
		ld.totalMisses[i] += p.StageCacheMisses[i]
	}
	ld.noteTop(p)

	var done *pendingCapture
	if overrun {
		ld.overruns++
	}
	switch {
	case ld.pending != nil:
		ld.pending.left--
		if ld.pending.left <= 0 {
			done = ld.pending
			ld.pending = nil
		}
		if overrun {
			// Overruns during an in-flight capture are part of the
			// evidence being collected, not new triggers.
			ld.suppressed++
			ld.sinceCap++
		}
	case overrun && ld.cfg.OnCapture != nil:
		if frame-ld.lastCapture >= ld.cfg.CooldownFrames {
			ld.pending = &pendingCapture{
				trigger:    p,
				left:       ld.cfg.CaptureFrames,
				suppressed: ld.sinceCap,
			}
			ld.sinceCap = 0
			ld.lastCapture = frame
			ld.captures++
			ld.pending.heapPre = heapProfile()
			ld.pending.cpuActive = startCPUProfile(&ld.pending.cpu)
		} else {
			ld.suppressed++
			ld.sinceCap++
		}
	}
	ld.mu.Unlock()

	if done != nil {
		ld.finishCapture(done)
	}
	if stream.Wants(stream.TopicProf) {
		stream.Publish(stream.TopicProf, frame, p.Report())
	}
	return overrun
}

// noteTop inserts p into the slow-frame ring, evicting the fastest
// resident once full. Called under ld.mu; never allocates after the
// ring fills.
func (ld *Ledger) noteTop(p FrameProfile) {
	if len(ld.top) < cap(ld.top) {
		ld.top = append(ld.top, p)
		return
	}
	min := 0
	for i := 1; i < len(ld.top); i++ {
		if ld.top[i].WallNs < ld.top[min].WallNs {
			min = i
		}
	}
	if p.WallNs > ld.top[min].WallNs {
		ld.top[min] = p
	}
}

// finishCapture stops the profilers and fires OnCapture. Called off the
// ledger mutex: the callback writes a flight-recorder bundle.
func (ld *Ledger) finishCapture(pc *pendingCapture) {
	var cpu []byte
	if pc.cpuActive {
		stopCPUProfile()
		cpu = pc.cpu.Bytes()
	}
	ld.cfg.OnCapture(Capture{
		Trigger:    pc.trigger,
		BudgetNs:   ld.cfg.BudgetNs,
		Frames:     ld.cfg.CaptureFrames,
		Suppressed: pc.suppressed,
		CPU:        cpu,
		HeapPre:    pc.heapPre,
		Heap:       heapProfile(),
	})
}

// BudgetNs returns the configured frame budget (0 when detection is
// off).
func (ld *Ledger) BudgetNs() int64 { return ld.cfg.BudgetNs }
