// Package costplane builds the per-frame distance oracle every
// dispatcher queries: the taxi→pickup matrix, the solo trip distances,
// and (for the sharing pipeline) the pickup→pickup matrix, computed once
// per frame and then served to preference construction, the baselines'
// cost matrix, and share-group formation.
//
// Two things make the plane cheaper than the query-as-you-go pattern it
// replaces. First, spatial pruning: taxis farther than the pickup
// threshold from a pickup sit behind the passenger's dummy partner in
// every market built from the plane, so those cells are never computed —
// a spatial index over the frame's pickups keeps each taxi's candidate
// scan sub-linear. Second, batched parallel construction: each matrix
// row is one single-source job (served by geo.BatchMetric when the
// metric provides one, so a road-network row costs one Dijkstra
// traversal), and rows are computed by a bounded worker pool.
//
// Construction is bit-deterministic: every cell's value depends only on
// the inputs, never on worker count or scheduling, because workers write
// disjoint pre-allocated rows and the underlying metrics return
// cache-state-independent values.
package costplane

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/spatial"
)

// Plane-construction telemetry: planes built, cells actually computed,
// cells skipped by spatial pruning, and cells served again to an
// additional consumer (the reuse the shared plane exists for).
var (
	obsBuilds      = obs.GetOrCreateCounter("costplane_builds_total")
	obsCellsDone   = obs.GetOrCreateCounter("costplane_cells_computed_total")
	obsCellsPruned = obs.GetOrCreateCounter("costplane_cells_pruned_total")
	obsCellsReused = obs.GetOrCreateCounter("costplane_cells_reused_total")
)

// Config controls plane construction.
type Config struct {
	// Workers bounds the construction worker pool. Values ≤ 0 mean
	// runtime.GOMAXPROCS(0). The result is bit-identical for every
	// worker count.
	Workers int
	// PruneRadius, when positive and finite, skips taxi→pickup cells
	// whose straight-line distance exceeds it; skipped cells read as
	// +Inf. Safe whenever the metric never beats the straight line
	// (true for every metric in this repository) and consumers treat
	// cells beyond the radius as unacceptable — which is exactly the
	// passenger-side dummy threshold Params.MaxPickup.
	PruneRadius float64
	// Pairs additionally computes the pickup→pickup matrix the sharing
	// pipeline's group formation reads.
	Pairs bool
	// PairRadius, when positive, prunes pickup→pickup cells the same
	// way PruneRadius prunes taxi→pickup cells. Zero computes every
	// pair (share.PackConfig.PairRadius = 0 disables pruning there
	// too).
	PairRadius float64
}

// Key is the portion of a Config that determines the plane's contents:
// everything except Workers, which only changes how fast the identical
// values are produced. sim.Frame memoises planes by Key.
type Key struct {
	PruneRadius float64
	Pairs       bool
	PairRadius  float64
}

// Key returns the memoisation key of c.
func (c Config) Key() Key {
	return Key{PruneRadius: c.PruneRadius, Pairs: c.Pairs, PairRadius: c.PairRadius}
}

// Plane is an immutable per-frame distance oracle. Cells skipped by
// pruning read as +Inf; everything else is the metric's exact value.
type Plane struct {
	// Requests and Taxis are the frame slices the plane was built over;
	// matrix indices are positions in these slices.
	Requests []fleet.Request
	Taxis    []fleet.Taxi

	metric geo.Metric
	batch  geo.BatchMetric // metric when it batches (road network); nil otherwise
	pickup [][]float64     // [taxi][request] D(t_i, r_j^s)
	trip   []float64       // [request] D(r_j^s, r_j^d)
	pairs  [][]float64     // [request][request] D(r_j^s, r_k^s); nil without Pairs

	allPickups []geo.Point // build-time scratch: every request's pickup

	computed uint64
	pruned   uint64
}

// Metric returns the metric the plane was built with, for the residual
// queries a plane cannot serve (route permutations, walk legs).
func (p *Plane) Metric() geo.Metric { return p.metric }

// PickupDist returns D(t_i, r_j^s), or +Inf if the cell was pruned.
func (p *Plane) PickupDist(i, j int) float64 { return p.pickup[i][j] }

// PickupRow returns taxi i's distance row, indexed by request. The
// caller must not modify it.
func (p *Plane) PickupRow(i int) []float64 { return p.pickup[i] }

// PickupMatrix returns the full taxi-major matrix. The caller must not
// modify it.
func (p *Plane) PickupMatrix() [][]float64 { return p.pickup }

// Trip returns D(r_j^s, r_j^d). Trips are always computed, never pruned.
func (p *Plane) Trip(j int) float64 { return p.trip[j] }

// Trips returns all solo trip distances. The caller must not modify it.
func (p *Plane) Trips() []float64 { return p.trip }

// HasPairs reports whether the pickup→pickup matrix was built.
func (p *Plane) HasPairs() bool { return p.pairs != nil }

// PairDist returns D(r_j^s, r_k^s), or +Inf if the cell was pruned.
// Valid only when HasPairs.
func (p *Plane) PairDist(j, k int) float64 { return p.pairs[j][k] }

// Cells returns the number of addressable taxi→pickup cells.
func (p *Plane) Cells() int { return len(p.Taxis) * len(p.Requests) }

// CostMatrix returns a request-major copy of the pickup matrix —
// cost[j][i] = D(t_i, r_j^s) — the layout the baseline assignment
// solvers consume. The copy is the caller's to mutate.
func (p *Plane) CostMatrix() [][]float64 {
	r, t := len(p.Requests), len(p.Taxis)
	cost := make([][]float64, r)
	cells := make([]float64, r*t)
	for j := 0; j < r; j++ {
		row := cells[j*t : (j+1)*t : (j+1)*t]
		for i := 0; i < t; i++ {
			row[i] = p.pickup[i][j]
		}
		cost[j] = row
	}
	return cost
}

// MarkReuse records that the plane's cells were served to an additional
// consumer instead of being recomputed; sim.Frame calls this on every
// memo hit.
func (p *Plane) MarkReuse() { obsCellsReused.Add(uint64(p.Cells())) }

// autoSerialCells is the plane size below which auto worker sizing
// (Config.Workers ≤ 0) skips the pool: at a few thousand cells the
// goroutine spawn and join cost more than the distance work they would
// split. An explicit positive worker count is always honoured, so tests
// can force the pool onto arbitrarily small planes.
const autoSerialCells = 4096

// Build computes the plane for one frame. Jobs are rows — one per taxi,
// plus one per request when trips ride a batched traversal — executed by
// min(cfg.Workers, rows) goroutines pulling from an atomic counter. Each
// job writes only its own pre-allocated row, so the result is
// bit-identical for every worker count.
func Build(reqs []fleet.Request, taxis []fleet.Taxi, metric geo.Metric, cfg Config) *Plane {
	p := &Plane{
		Requests: reqs,
		Taxis:    taxis,
		metric:   metric,
		pickup:   make([][]float64, len(taxis)),
	}
	p.batch, _ = metric.(geo.BatchMetric)
	r, t := len(reqs), len(taxis)
	// Every row lives in one backing slab: workers still write disjoint
	// ranges, and a frame costs one cell allocation instead of one per
	// taxi and request.
	cellCount := t*r + r
	if cfg.Pairs {
		cellCount += r * r
	}
	cells := make([]float64, cellCount)
	for i := range p.pickup {
		p.pickup[i] = cells[i*r : (i+1)*r : (i+1)*r]
	}
	p.trip = cells[t*r : t*r+r : t*r+r]
	pruneTaxi := cfg.PruneRadius > 0 && !math.IsInf(cfg.PruneRadius, 1)
	prunePair := cfg.Pairs && cfg.PairRadius > 0 && !math.IsInf(cfg.PairRadius, 1)
	if cfg.Pairs {
		p.pairs = make([][]float64, r)
		base := t*r + r
		for j := range p.pairs {
			p.pairs[j] = cells[base+j*r : base+(j+1)*r : base+(j+1)*r]
		}
	}

	// The spatial index and the shared destination scratch only pay off
	// on batching metrics, where a row is one single-source traversal;
	// scalar metrics take the direct per-pair path below, which prunes
	// by the same straight-line rule without allocating.
	var pickups *spatial.Index
	if p.batch != nil && r > 0 {
		if pruneTaxi || prunePair {
			maxRadius := cfg.PruneRadius
			if prunePair && cfg.PairRadius > maxRadius {
				maxRadius = cfg.PairRadius
			}
			pickups = pickupIndex(reqs, maxRadius)
		}
		p.allPickups = make([]geo.Point, r)
		for j, rq := range reqs {
			p.allPickups[j] = rq.Pickup
		}
	}

	jobs := t + r
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if cellCount < autoSerialCells {
			workers = 1
		}
	}
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < t; i++ {
			p.buildPickupRow(i, pruneTaxi, cfg.PruneRadius, pickups)
		}
		for j := 0; j < r; j++ {
			p.buildRequestRow(j, cfg.Pairs, prunePair, cfg.PairRadius, pickups)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= jobs {
						return
					}
					if k < t {
						p.buildPickupRow(k, pruneTaxi, cfg.PruneRadius, pickups)
					} else {
						p.buildRequestRow(k-t, cfg.Pairs, prunePair, cfg.PairRadius, pickups)
					}
				}
			}()
		}
		wg.Wait()
	}

	p.allPickups = nil
	obsBuilds.Inc()
	obsCellsDone.Add(atomic.LoadUint64(&p.computed))
	obsCellsPruned.Add(atomic.LoadUint64(&p.pruned))
	return p
}

// pickupIndex builds the spatial index over request pickups used for
// candidate pruning. Cells a quarter of the query radius keep the ring
// scan small while the grid stays coarse enough to hold the frame's
// pickups in a handful of cells.
func pickupIndex(reqs []fleet.Request, radius float64) *spatial.Index {
	bounds := geo.NewRect(reqs[0].Pickup, reqs[0].Pickup)
	for _, rq := range reqs[1:] {
		p := rq.Pickup
		if p.X < bounds.Min.X {
			bounds.Min.X = p.X
		}
		if p.X > bounds.Max.X {
			bounds.Max.X = p.X
		}
		if p.Y < bounds.Min.Y {
			bounds.Min.Y = p.Y
		}
		if p.Y > bounds.Max.Y {
			bounds.Max.Y = p.Y
		}
	}
	cell := radius / 4
	if cell <= 0 {
		cell = 1
	}
	ix := spatial.NewIndex(bounds, cell)
	for j, rq := range reqs {
		ix.Insert(j, rq.Pickup)
	}
	return ix
}

// buildPickupRow fills taxi i's distance row. With pruning, only the
// pickups within the straight-line radius are computed — the straight
// line lower-bounds every metric here, so a pruned cell's true distance
// also exceeds the radius and sits behind the dummy partner regardless.
// Batching metrics go through the spatial index and one single-source
// traversal; scalar metrics apply the identical straight-line rule
// per pair, which allocates nothing.
func (p *Plane) buildPickupRow(i int, prune bool, radius float64, pickups *spatial.Index) {
	r := len(p.Requests)
	row := p.pickup[i]
	src := p.Taxis[i].Pos
	if p.batch == nil {
		computed := 0
		for j, rq := range p.Requests {
			if prune && geo.Euclid(src, rq.Pickup) > radius {
				row[j] = math.Inf(1)
				continue
			}
			row[j] = p.metric.Distance(src, rq.Pickup)
			computed++
		}
		atomic.AddUint64(&p.computed, uint64(computed))
		atomic.AddUint64(&p.pruned, uint64(r-computed))
		return
	}
	if !prune {
		copy(row, p.batch.DistancesFrom(src, p.allPickups))
		atomic.AddUint64(&p.computed, uint64(r))
		return
	}
	for j := range row {
		row[j] = math.Inf(1)
	}
	var cand []int
	if pickups != nil {
		cand = pickups.WithinRadius(src, radius)
	}
	if len(cand) > 0 {
		dsts := make([]geo.Point, len(cand))
		for x, j := range cand {
			dsts[x] = p.Requests[j].Pickup
		}
		vals := p.batch.DistancesFrom(src, dsts)
		for x, j := range cand {
			row[j] = vals[x]
		}
	}
	atomic.AddUint64(&p.computed, uint64(len(cand)))
	atomic.AddUint64(&p.pruned, uint64(r-len(cand)))
}

// buildRequestRow fills request j's solo trip distance and, when pairs
// are requested, its pickup→pickup row. The request's own dropoff rides
// the same batched traversal as the pair row, so a road-network request
// row costs one Dijkstra run total.
func (p *Plane) buildRequestRow(j int, pairs, prune bool, radius float64, pickups *spatial.Index) {
	rq := p.Requests[j]
	if !pairs {
		p.trip[j] = rq.TripDistance(p.metric)
		atomic.AddUint64(&p.computed, 1)
		return
	}
	r := len(p.Requests)
	row := p.pairs[j]
	if p.batch == nil {
		computed := 1 // the trip below
		for k, other := range p.Requests {
			switch {
			case k == j:
				row[k] = 0 // diagonal is exactly zero, no query needed
			case prune && geo.Euclid(rq.Pickup, other.Pickup) > radius:
				row[k] = math.Inf(1)
			default:
				row[k] = p.metric.Distance(rq.Pickup, other.Pickup)
				computed++
			}
		}
		p.trip[j] = p.metric.Distance(rq.Pickup, rq.Dropoff)
		atomic.AddUint64(&p.computed, uint64(computed))
		atomic.AddUint64(&p.pruned, uint64(r-computed))
		return
	}
	var cand []int
	if prune {
		for k := range row {
			row[k] = math.Inf(1)
		}
		cand = pickups.WithinRadius(rq.Pickup, radius)
	} else {
		cand = make([]int, r)
		for k := range cand {
			cand[k] = k
		}
	}
	// One batch: the near pickups plus the request's own dropoff.
	dsts := make([]geo.Point, 0, len(cand)+1)
	kept := cand[:0]
	for _, k := range cand {
		if k == j {
			continue // diagonal is exactly zero, no query needed
		}
		kept = append(kept, k)
		dsts = append(dsts, p.Requests[k].Pickup)
	}
	dsts = append(dsts, rq.Dropoff)
	vals := p.batch.DistancesFrom(rq.Pickup, dsts)
	for x, k := range kept {
		row[k] = vals[x]
	}
	row[j] = 0
	p.trip[j] = vals[len(vals)-1]
	atomic.AddUint64(&p.computed, uint64(len(kept)+1))
	atomic.AddUint64(&p.pruned, uint64(r-1-len(kept)))
}
