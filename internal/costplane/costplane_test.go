package costplane

import (
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/roadnet"
)

func world(t *testing.T, nReqs, nTaxis int, seed int64) ([]fleet.Request, []fleet.Taxi) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pt := func() geo.Point {
		return geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
	}
	reqs := make([]fleet.Request, nReqs)
	for j := range reqs {
		reqs[j] = fleet.Request{ID: j, Pickup: pt(), Dropoff: pt(), Seats: 1 + rng.Intn(3)}
	}
	taxis := make([]fleet.Taxi, nTaxis)
	for i := range taxis {
		taxis[i] = fleet.Taxi{ID: i, Pos: pt(), Seats: 4}
	}
	return reqs, taxis
}

func roadMetric(t *testing.T) *roadnet.Metric {
	t.Helper()
	g, err := roadnet.NewGrid(roadnet.GridConfig{Rows: 8, Cols: 8, Spacing: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	return roadnet.NewMetric(g, 16)
}

// TestBuildMatchesMetric checks every unpruned plane cell is exactly the
// metric's value, for both a plain and a batch-capable metric.
func TestBuildMatchesMetric(t *testing.T) {
	reqs, taxis := world(t, 23, 31, 1)
	metrics := map[string]geo.Metric{
		"euclid":  geo.EuclidMetric,
		"roadnet": roadMetric(t),
	}
	for name, m := range metrics {
		pl := Build(reqs, taxis, m, Config{Workers: 1, Pairs: true})
		for i, taxi := range taxis {
			for j, rq := range reqs {
				if got, want := pl.PickupDist(i, j), m.Distance(taxi.Pos, rq.Pickup); got != want {
					t.Fatalf("%s: PickupDist(%d,%d) = %v, want %v", name, i, j, got, want)
				}
			}
		}
		for j, rq := range reqs {
			if got, want := pl.Trip(j), rq.TripDistance(m); got != want {
				t.Fatalf("%s: Trip(%d) = %v, want %v", name, j, got, want)
			}
			for k, other := range reqs {
				want := m.Distance(rq.Pickup, other.Pickup)
				if k == j {
					want = 0
				}
				if got := pl.PairDist(j, k); got != want {
					t.Fatalf("%s: PairDist(%d,%d) = %v, want %v", name, j, k, got, want)
				}
			}
		}
	}
}

// TestPruning checks a cell is +Inf exactly when the straight-line
// distance exceeds the radius, and the metric's exact value otherwise.
func TestPruning(t *testing.T) {
	reqs, taxis := world(t, 30, 40, 2)
	const radius = 6.0
	m := geo.ManhattanMetric // strictly above the Euclid lower bound
	pl := Build(reqs, taxis, m, Config{Workers: 1, PruneRadius: radius, Pairs: true, PairRadius: radius})
	prunedSeen := false
	for i, taxi := range taxis {
		for j, rq := range reqs {
			got := pl.PickupDist(i, j)
			if geo.Euclid(taxi.Pos, rq.Pickup) > radius {
				prunedSeen = true
				if !math.IsInf(got, 1) {
					t.Fatalf("PickupDist(%d,%d) = %v, want +Inf (pruned)", i, j, got)
				}
			} else if want := m.Distance(taxi.Pos, rq.Pickup); got != want {
				t.Fatalf("PickupDist(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if !prunedSeen {
		t.Fatal("test world pruned nothing; shrink the radius")
	}
	for j, rq := range reqs {
		if math.IsInf(pl.Trip(j), 1) {
			t.Fatalf("Trip(%d) pruned; trips must always be computed", j)
		}
		for k, other := range reqs {
			got := pl.PairDist(j, k)
			switch {
			case k == j:
				if got != 0 {
					t.Fatalf("PairDist(%d,%d) = %v, want 0", j, j, got)
				}
			case geo.Euclid(rq.Pickup, other.Pickup) > radius:
				if !math.IsInf(got, 1) {
					t.Fatalf("PairDist(%d,%d) = %v, want +Inf (pruned)", j, k, got)
				}
			default:
				if want := m.Distance(rq.Pickup, other.Pickup); got != want {
					t.Fatalf("PairDist(%d,%d) = %v, want %v", j, k, got, want)
				}
			}
		}
	}
}

// TestWorkerCountInvariance is the package-level determinism guarantee:
// every cell is bit-identical across worker counts, with and without
// pruning, on both metric kinds.
func TestWorkerCountInvariance(t *testing.T) {
	reqs, taxis := world(t, 40, 60, 3)
	configs := []Config{
		{},
		{PruneRadius: 8},
		{Pairs: true, PairRadius: 8},
		{PruneRadius: 8, Pairs: true, PairRadius: 8},
	}
	metrics := map[string]geo.Metric{
		"euclid":  geo.EuclidMetric,
		"roadnet": roadMetric(t),
	}
	for name, m := range metrics {
		for _, cfg := range configs {
			base := cfg
			base.Workers = 1
			ref := Build(reqs, taxis, m, base)
			for _, workers := range []int{2, 4, 16} {
				c := cfg
				c.Workers = workers
				pl := Build(reqs, taxis, m, c)
				for i := range taxis {
					for j := range reqs {
						if pl.PickupDist(i, j) != ref.PickupDist(i, j) {
							t.Fatalf("%s workers=%d cfg=%+v: PickupDist(%d,%d) = %v, want %v",
								name, workers, cfg, i, j, pl.PickupDist(i, j), ref.PickupDist(i, j))
						}
					}
				}
				for j := range reqs {
					if pl.Trip(j) != ref.Trip(j) {
						t.Fatalf("%s workers=%d cfg=%+v: Trip(%d) differs", name, workers, cfg, j)
					}
					if cfg.Pairs {
						for k := range reqs {
							if pl.PairDist(j, k) != ref.PairDist(j, k) {
								t.Fatalf("%s workers=%d cfg=%+v: PairDist(%d,%d) differs", name, workers, cfg, j, k)
							}
						}
					}
				}
			}
		}
	}
}

// TestCostMatrixLayout checks the request-major copy against the
// taxi-major source, and that mutating the copy leaves the plane intact.
func TestCostMatrixLayout(t *testing.T) {
	reqs, taxis := world(t, 7, 11, 4)
	pl := Build(reqs, taxis, geo.EuclidMetric, Config{Workers: 2})
	cost := pl.CostMatrix()
	if len(cost) != len(reqs) {
		t.Fatalf("CostMatrix has %d rows, want %d", len(cost), len(reqs))
	}
	for j := range reqs {
		if len(cost[j]) != len(taxis) {
			t.Fatalf("CostMatrix row %d has %d cols, want %d", j, len(cost[j]), len(taxis))
		}
		for i := range taxis {
			if cost[j][i] != pl.PickupDist(i, j) {
				t.Fatalf("CostMatrix[%d][%d] = %v, want %v", j, i, cost[j][i], pl.PickupDist(i, j))
			}
		}
	}
	cost[0][0] = -1
	if pl.PickupDist(0, 0) == -1 {
		t.Fatal("CostMatrix aliases the plane's storage")
	}
}

// TestEmptyAndDegenerate covers zero-request and zero-taxi frames.
func TestEmptyAndDegenerate(t *testing.T) {
	reqs, taxis := world(t, 3, 2, 5)
	for _, cfg := range []Config{{}, {PruneRadius: 5, Pairs: true, PairRadius: 5}} {
		if pl := Build(nil, taxis, geo.EuclidMetric, cfg); pl.Cells() != 0 {
			t.Fatal("empty request frame has cells")
		}
		if pl := Build(reqs, nil, geo.EuclidMetric, cfg); pl.Cells() != 0 {
			t.Fatal("empty taxi frame has cells")
		} else if pl.Trip(0) != reqs[0].TripDistance(geo.EuclidMetric) {
			t.Fatal("trips missing on taxi-less frame")
		}
	}
}

// TestConfigKey pins that Workers is excluded from the memo key.
func TestConfigKey(t *testing.T) {
	a := Config{Workers: 1, PruneRadius: 3, Pairs: true, PairRadius: 7}
	b := Config{Workers: 16, PruneRadius: 3, Pairs: true, PairRadius: 7}
	if a.Key() != b.Key() {
		t.Fatal("worker count leaked into the plane key")
	}
	c := Config{Workers: 1, PruneRadius: 4, Pairs: true, PairRadius: 7}
	if a.Key() == c.Key() {
		t.Fatal("prune radius missing from the plane key")
	}
}
