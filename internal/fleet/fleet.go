// Package fleet defines the domain model shared by every dispatcher and
// the simulator: passenger requests, taxis, route stops, and assignments.
package fleet

import (
	"fmt"

	"stabledispatch/internal/geo"
)

// Request is a passenger request r_j = (r_j^s, r_j^d): a pickup and
// drop-off location, the frame it was issued in, and the number of seats
// it needs.
type Request struct {
	ID      int
	Pickup  geo.Point
	Dropoff geo.Point
	Frame   int // frame (minute) the request was issued
	Seats   int // passengers travelling together; 0 is treated as 1
}

// SeatCount returns the number of seats the request occupies (minimum 1).
func (r Request) SeatCount() int {
	if r.Seats < 1 {
		return 1
	}
	return r.Seats
}

// TripDistance returns D(r^s, r^d) under the metric.
func (r Request) TripDistance(m geo.Metric) float64 {
	return m.Distance(r.Pickup, r.Dropoff)
}

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("r%d[%v->%v @%d]", r.ID, r.Pickup, r.Dropoff, r.Frame)
}

// TaxiStatus describes what a taxi is currently doing.
type TaxiStatus int

// Taxi lifecycle states.
const (
	TaxiIdle TaxiStatus = iota + 1
	TaxiEnRoute
)

// String implements fmt.Stringer.
func (s TaxiStatus) String() string {
	switch s {
	case TaxiIdle:
		return "idle"
	case TaxiEnRoute:
		return "enroute"
	default:
		return fmt.Sprintf("TaxiStatus(%d)", int(s))
	}
}

// Taxi is a privately owned vehicle t_i with a current location.
type Taxi struct {
	ID     int
	Pos    geo.Point
	Seats  int // capacity; 0 is treated as the default of 4
	Status TaxiStatus
}

// Capacity returns the seat capacity of the taxi (default 4).
func (t Taxi) Capacity() int {
	if t.Seats < 1 {
		return 4
	}
	return t.Seats
}

// String implements fmt.Stringer.
func (t Taxi) String() string {
	return fmt.Sprintf("t%d[%v %v]", t.ID, t.Pos, t.Status)
}

// StopKind distinguishes pickup stops from drop-off stops on a route.
type StopKind int

// Stop kinds.
const (
	StopPickup StopKind = iota + 1
	StopDropoff
)

// String implements fmt.Stringer.
func (k StopKind) String() string {
	switch k {
	case StopPickup:
		return "pickup"
	case StopDropoff:
		return "dropoff"
	default:
		return fmt.Sprintf("StopKind(%d)", int(k))
	}
}

// Stop is one waypoint on a taxi route, tied to a request.
type Stop struct {
	RequestID int
	Kind      StopKind
	Pos       geo.Point
}

// String implements fmt.Stringer.
func (s Stop) String() string {
	return fmt.Sprintf("%v(r%d)@%v", s.Kind, s.RequestID, s.Pos)
}

// Assignment dispatches one taxi to serve one or more requests along the
// given stop sequence. Non-sharing dispatchers emit assignments with a
// single request (pickup then drop-off); sharing dispatchers may emit up
// to three requests with an interleaved stop order.
type Assignment struct {
	TaxiID   int
	Requests []int  // request IDs served, in preference-model order
	Route    []Stop // stop sequence the taxi will follow
}

// Validate checks structural invariants: every request appears exactly
// once as a pickup and once as a drop-off, and each pickup precedes its
// drop-off.
func (a Assignment) Validate() error {
	if len(a.Requests) == 0 {
		return fmt.Errorf("fleet: assignment for taxi %d has no requests", a.TaxiID)
	}
	pickupAt := make(map[int]int, len(a.Requests))
	dropAt := make(map[int]int, len(a.Requests))
	for i, s := range a.Route {
		switch s.Kind {
		case StopPickup:
			if _, dup := pickupAt[s.RequestID]; dup {
				return fmt.Errorf("fleet: duplicate pickup for request %d", s.RequestID)
			}
			pickupAt[s.RequestID] = i
		case StopDropoff:
			if _, dup := dropAt[s.RequestID]; dup {
				return fmt.Errorf("fleet: duplicate dropoff for request %d", s.RequestID)
			}
			dropAt[s.RequestID] = i
		default:
			return fmt.Errorf("fleet: stop %d has invalid kind %v", i, s.Kind)
		}
	}
	for _, id := range a.Requests {
		pi, ok := pickupAt[id]
		if !ok {
			return fmt.Errorf("fleet: request %d has no pickup stop", id)
		}
		di, ok := dropAt[id]
		if !ok {
			return fmt.Errorf("fleet: request %d has no dropoff stop", id)
		}
		if pi >= di {
			return fmt.Errorf("fleet: request %d drop-off precedes pickup", id)
		}
	}
	if len(pickupAt) != len(a.Requests) || len(dropAt) != len(a.Requests) {
		return fmt.Errorf("fleet: route serves %d pickups / %d dropoffs for %d requests",
			len(pickupAt), len(dropAt), len(a.Requests))
	}
	return nil
}

// SingleRide returns the canonical non-sharing assignment: drive to the
// request's pickup, then to its drop-off.
func SingleRide(taxiID int, r Request) Assignment {
	return Assignment{
		TaxiID:   taxiID,
		Requests: []int{r.ID},
		Route: []Stop{
			{RequestID: r.ID, Kind: StopPickup, Pos: r.Pickup},
			{RequestID: r.ID, Kind: StopDropoff, Pos: r.Dropoff},
		},
	}
}

// RouteLength returns the total travel distance of the route starting
// from the taxi position `from`, under metric m.
func RouteLength(from geo.Point, route []Stop, m geo.Metric) float64 {
	total := 0.0
	cur := from
	for _, s := range route {
		total += m.Distance(cur, s.Pos)
		cur = s.Pos
	}
	return total
}
