package fleet

import (
	"strings"
	"testing"

	"stabledispatch/internal/geo"
)

func TestRequestSeatCount(t *testing.T) {
	tests := []struct {
		seats int
		want  int
	}{
		{seats: 0, want: 1},
		{seats: -2, want: 1},
		{seats: 1, want: 1},
		{seats: 3, want: 3},
	}
	for _, tt := range tests {
		r := Request{Seats: tt.seats}
		if got := r.SeatCount(); got != tt.want {
			t.Errorf("SeatCount(%d) = %d, want %d", tt.seats, got, tt.want)
		}
	}
}

func TestTaxiCapacity(t *testing.T) {
	if got := (Taxi{}).Capacity(); got != 4 {
		t.Errorf("default Capacity = %d, want 4", got)
	}
	if got := (Taxi{Seats: 6}).Capacity(); got != 6 {
		t.Errorf("Capacity = %d, want 6", got)
	}
}

func TestTripDistance(t *testing.T) {
	r := Request{Pickup: geo.Point{}, Dropoff: geo.Point{X: 3, Y: 4}}
	if got := r.TripDistance(geo.EuclidMetric); got != 5 {
		t.Errorf("TripDistance = %v, want 5", got)
	}
}

func TestSingleRideValid(t *testing.T) {
	r := Request{ID: 9, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}}
	a := SingleRide(4, r)
	if a.TaxiID != 4 || len(a.Requests) != 1 || a.Requests[0] != 9 {
		t.Fatalf("SingleRide = %+v", a)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAssignmentValidate(t *testing.T) {
	pk := func(id int) Stop { return Stop{RequestID: id, Kind: StopPickup} }
	dr := func(id int) Stop { return Stop{RequestID: id, Kind: StopDropoff} }

	tests := []struct {
		name    string
		a       Assignment
		wantErr string
	}{
		{
			name:    "no requests",
			a:       Assignment{TaxiID: 1},
			wantErr: "no requests",
		},
		{
			name: "valid shared route",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1, 2},
				Route:    []Stop{pk(1), pk(2), dr(1), dr(2)},
			},
		},
		{
			name: "dropoff before pickup",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{dr(1), pk(1)},
			},
			wantErr: "drop-off precedes pickup",
		},
		{
			name: "missing dropoff",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{pk(1)},
			},
			wantErr: "no dropoff",
		},
		{
			name: "missing pickup",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{dr(1)},
			},
			wantErr: "no pickup",
		},
		{
			name: "duplicate pickup",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{pk(1), pk(1), dr(1)},
			},
			wantErr: "duplicate pickup",
		},
		{
			name: "stray request in route",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{pk(1), dr(1), pk(2), dr(2)},
			},
			wantErr: "route serves",
		},
		{
			name: "invalid stop kind",
			a: Assignment{
				TaxiID:   1,
				Requests: []int{1},
				Route:    []Stop{{RequestID: 1}},
			},
			wantErr: "invalid kind",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.a.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Errorf("Validate: %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Validate = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestRouteLength(t *testing.T) {
	route := []Stop{
		{RequestID: 1, Kind: StopPickup, Pos: geo.Point{X: 3}},
		{RequestID: 1, Kind: StopDropoff, Pos: geo.Point{X: 3, Y: 4}},
	}
	got := RouteLength(geo.Point{}, route, geo.EuclidMetric)
	if got != 7 {
		t.Errorf("RouteLength = %v, want 7", got)
	}
	if got := RouteLength(geo.Point{}, nil, geo.EuclidMetric); got != 0 {
		t.Errorf("empty RouteLength = %v, want 0", got)
	}
}

func TestStringers(t *testing.T) {
	if s := TaxiIdle.String(); s != "idle" {
		t.Errorf("TaxiIdle = %q", s)
	}
	if s := TaxiEnRoute.String(); s != "enroute" {
		t.Errorf("TaxiEnRoute = %q", s)
	}
	if s := TaxiStatus(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown status = %q", s)
	}
	if s := StopPickup.String(); s != "pickup" {
		t.Errorf("StopPickup = %q", s)
	}
	if s := StopDropoff.String(); s != "dropoff" {
		t.Errorf("StopDropoff = %q", s)
	}
	if s := StopKind(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown kind = %q", s)
	}
	r := Request{ID: 1}
	if s := r.String(); !strings.Contains(s, "r1") {
		t.Errorf("Request.String = %q", s)
	}
	taxi := Taxi{ID: 2, Status: TaxiIdle}
	if s := taxi.String(); !strings.Contains(s, "t2") {
		t.Errorf("Taxi.String = %q", s)
	}
	stop := Stop{RequestID: 3, Kind: StopPickup}
	if s := stop.String(); !strings.Contains(s, "r3") {
		t.Errorf("Stop.String = %q", s)
	}
}
