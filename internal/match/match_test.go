package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMinCost tries every assignment of rows to distinct columns (for
// tiny matrices) and returns the minimum total cost at maximum
// cardinality, skipping +Inf edges.
func bruteMinCost(cost [][]float64) (bestSize int, bestTotal float64) {
	r := len(cost)
	if r == 0 {
		return 0, 0
	}
	t := len(cost[0])
	usedCol := make([]bool, t)
	bestTotal = math.Inf(1)

	var rec func(j, matched int, total float64)
	rec = func(j, matched int, total float64) {
		if j == r {
			if matched > bestSize || (matched == bestSize && total < bestTotal) {
				bestSize, bestTotal = matched, total
			}
			return
		}
		rec(j+1, matched, total)
		for i := 0; i < t; i++ {
			if !usedCol[i] && !math.IsInf(cost[j][i], 1) {
				usedCol[i] = true
				rec(j+1, matched+1, total+cost[j][i])
				usedCol[i] = false
			}
		}
	}
	rec(0, 0, 0)
	return bestSize, bestTotal
}

// bruteBottleneck returns the minimum possible maximum edge cost over all
// maximum-cardinality matchings.
func bruteBottleneck(cost [][]float64) (bestSize int, bestMax float64) {
	r := len(cost)
	if r == 0 {
		return 0, 0
	}
	t := len(cost[0])
	usedCol := make([]bool, t)
	bestMax = math.Inf(1)

	var rec func(j, matched int, maxSoFar float64)
	rec = func(j, matched int, maxSoFar float64) {
		if j == r {
			if matched > bestSize || (matched == bestSize && maxSoFar < bestMax) {
				bestSize, bestMax = matched, maxSoFar
			}
			return
		}
		rec(j+1, matched, maxSoFar)
		for i := 0; i < t; i++ {
			if !usedCol[i] && !math.IsInf(cost[j][i], 1) {
				usedCol[i] = true
				rec(j+1, matched+1, math.Max(maxSoFar, cost[j][i]))
				usedCol[i] = false
			}
		}
	}
	rec(0, 0, 0)
	if bestSize == 0 {
		bestMax = 0
	}
	return bestSize, bestMax
}

func randomCost(rng *rand.Rand, r, t int, infProb float64) [][]float64 {
	cost := make([][]float64, r)
	for j := range cost {
		cost[j] = make([]float64, t)
		for i := range cost[j] {
			if rng.Float64() < infProb {
				cost[j][i] = math.Inf(1)
			} else {
				cost[j][i] = float64(rng.Intn(20))
			}
		}
	}
	return cost
}

func matchedSize(partner []int) int {
	n := 0
	for _, p := range partner {
		if p != Unmatched {
			n++
		}
	}
	return n
}

func assertValidMatching(t *testing.T, partner []int, cost [][]float64) {
	t.Helper()
	seen := make(map[int]bool)
	for j, i := range partner {
		if i == Unmatched {
			continue
		}
		if i < 0 || i >= len(cost[j]) {
			t.Fatalf("partner[%d] = %d out of range", j, i)
		}
		if seen[i] {
			t.Fatalf("taxi %d assigned twice", i)
		}
		seen[i] = true
		if math.IsInf(cost[j][i], 1) {
			t.Fatalf("pair (%d, %d) uses a forbidden edge", j, i)
		}
	}
}

func TestGreedy(t *testing.T) {
	cost := [][]float64{
		{1, 5, 3},
		{2, 1, 9},
		{1, 1, 1},
	}
	partner, err := Greedy(cost)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	// r0 takes t0 (cost 1); r1 takes t1 (cost 1); r2 takes t2.
	want := []int{0, 1, 2}
	for j, w := range want {
		if partner[j] != w {
			t.Errorf("partner[%d] = %d, want %d", j, partner[j], w)
		}
	}
}

func TestGreedyArrivalOrderMatters(t *testing.T) {
	// The greedy baseline is order-sensitive: the first request grabs
	// the shared nearest taxi.
	cost := [][]float64{
		{1, 10},
		{1, 2},
	}
	partner, err := Greedy(cost)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if partner[0] != 0 || partner[1] != 1 {
		t.Errorf("partner = %v, want [0 1]", partner)
	}
}

func TestGreedySkipsForbidden(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, inf},
		{inf, 3},
	}
	partner, err := Greedy(cost)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if partner[0] != Unmatched {
		t.Errorf("partner[0] = %d, want Unmatched", partner[0])
	}
	if partner[1] != 1 {
		t.Errorf("partner[1] = %d, want 1", partner[1])
	}
}

func TestGreedyMoreRequestsThanTaxis(t *testing.T) {
	cost := [][]float64{
		{1},
		{2},
		{3},
	}
	partner, err := Greedy(cost)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if partner[0] != 0 || partner[1] != Unmatched || partner[2] != Unmatched {
		t.Errorf("partner = %v", partner)
	}
}

func TestValidateErrors(t *testing.T) {
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := Greedy(ragged); err == nil {
		t.Error("Greedy accepted a ragged matrix")
	}
	if _, _, err := MinCost(ragged); err == nil {
		t.Error("MinCost accepted a ragged matrix")
	}
	if _, _, err := Bottleneck(ragged); err == nil {
		t.Error("Bottleneck accepted a ragged matrix")
	}
	nan := [][]float64{{math.NaN()}}
	if _, err := Greedy(nan); err == nil {
		t.Error("Greedy accepted NaN cost")
	}
}

func TestMinCostKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	partner, total, err := MinCost(cost)
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	assertValidMatching(t, partner, cost)
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5 (partner %v)", total, partner)
	}
}

func TestMinCostEmpty(t *testing.T) {
	partner, total, err := MinCost(nil)
	if err != nil || len(partner) != 0 || total != 0 {
		t.Errorf("MinCost(nil) = %v, %v, %v", partner, total, err)
	}
	partner, _, err = MinCost([][]float64{})
	if err != nil || len(partner) != 0 {
		t.Errorf("MinCost(empty) = %v, %v", partner, err)
	}
}

func TestMinCostMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		r, tt := 1+rng.Intn(5), 1+rng.Intn(5)
		cost := randomCost(rng, r, tt, 0.15)
		partner, total, err := MinCost(cost)
		if err != nil {
			t.Fatalf("MinCost: %v", err)
		}
		assertValidMatching(t, partner, cost)

		wantSize, wantTotal := bruteMinCost(cost)
		if matchedSize(partner) != wantSize {
			t.Fatalf("trial %d: size %d, want %d (cost %v)", trial, matchedSize(partner), wantSize, cost)
		}
		if wantSize > 0 && math.Abs(total-wantTotal) > 1e-9 {
			t.Fatalf("trial %d: total %v, want %v (cost %v, partner %v)",
				trial, total, wantTotal, cost, partner)
		}
	}
}

func TestMinCostNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 2},
		{3, -4},
	}
	partner, total, err := MinCost(cost)
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	assertValidMatching(t, partner, cost)
	if total != -9 {
		t.Errorf("total = %v, want -9", total)
	}
}

func TestMinCostRectangularBothWays(t *testing.T) {
	wide := [][]float64{
		{9, 1, 9, 9},
		{9, 9, 1, 9},
	}
	partner, total, err := MinCost(wide)
	if err != nil {
		t.Fatalf("MinCost wide: %v", err)
	}
	if total != 2 || partner[0] != 1 || partner[1] != 2 {
		t.Errorf("wide: partner %v total %v", partner, total)
	}

	tall := [][]float64{
		{9, 9},
		{1, 9},
		{9, 1},
		{9, 9},
	}
	partner, total, err = MinCost(tall)
	if err != nil {
		t.Fatalf("MinCost tall: %v", err)
	}
	if total != 2 || partner[1] != 0 || partner[2] != 1 {
		t.Errorf("tall: partner %v total %v", partner, total)
	}
	if matchedSize(partner) != 2 {
		t.Errorf("tall: size %d, want 2", matchedSize(partner))
	}
}

func TestBottleneckKnown(t *testing.T) {
	cost := [][]float64{
		{1, 100},
		{2, 100},
	}
	partner, maxCost, err := Bottleneck(cost)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	assertValidMatching(t, partner, cost)
	if maxCost != 100 {
		t.Errorf("maxCost = %v, want 100 (both must match)", maxCost)
	}

	cost = [][]float64{
		{1, 3},
		{2, 9},
	}
	_, maxCost, err = Bottleneck(cost)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	// r1 must take t0 (2), r0 takes t1 (3): bottleneck 3 beats {1,9}.
	if maxCost != 3 {
		t.Errorf("maxCost = %v, want 3", maxCost)
	}
}

func TestBottleneckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		r, tt := 1+rng.Intn(5), 1+rng.Intn(5)
		cost := randomCost(rng, r, tt, 0.2)
		partner, maxCost, err := Bottleneck(cost)
		if err != nil {
			t.Fatalf("Bottleneck: %v", err)
		}
		assertValidMatching(t, partner, cost)

		wantSize, wantMax := bruteBottleneck(cost)
		if matchedSize(partner) != wantSize {
			t.Fatalf("trial %d: size %d, want %d", trial, matchedSize(partner), wantSize)
		}
		if wantSize > 0 && math.Abs(maxCost-wantMax) > 1e-9 {
			t.Fatalf("trial %d: maxCost %v, want %v (cost %v)", trial, maxCost, wantMax, cost)
		}
	}
}

func TestBottleneckAllForbidden(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{{inf}, {inf}}
	partner, maxCost, err := Bottleneck(cost)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	if matchedSize(partner) != 0 || maxCost != 0 {
		t.Errorf("partner %v maxCost %v, want empty", partner, maxCost)
	}
}

func TestHopcroftKarpKnown(t *testing.T) {
	// Perfect matching exists on a 3x3 cycle-ish graph.
	adj := [][]int{
		{0, 1},
		{1, 2},
		{2, 0},
	}
	partner := HopcroftKarp(adj, 3)
	if matchedSize(partner) != 3 {
		t.Errorf("size = %d, want 3", matchedSize(partner))
	}
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		l, r := 1+rng.Intn(6), 1+rng.Intn(6)
		adj := make([][]int, l)
		cost := make([][]float64, l) // reuse brute force via 0/inf costs
		for j := 0; j < l; j++ {
			cost[j] = make([]float64, r)
			for i := 0; i < r; i++ {
				if rng.Float64() < 0.4 {
					adj[j] = append(adj[j], i)
				} else {
					cost[j][i] = math.Inf(1)
				}
			}
		}
		partner := HopcroftKarp(adj, r)
		wantSize, _ := bruteMinCost(cost)
		if matchedSize(partner) != wantSize {
			t.Fatalf("trial %d: size %d, want %d (adj %v)", trial, matchedSize(partner), wantSize, adj)
		}
		seen := make(map[int]bool)
		for _, p := range partner {
			if p == Unmatched {
				continue
			}
			if seen[p] {
				t.Fatalf("trial %d: right vertex %d matched twice", trial, p)
			}
			seen[p] = true
		}
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	if partner := HopcroftKarp(nil, 5); len(partner) != 0 {
		t.Errorf("HopcroftKarp(nil) = %v", partner)
	}
	partner := HopcroftKarp([][]int{nil, nil}, 0)
	if matchedSize(partner) != 0 {
		t.Errorf("no-edge graph matched %d", matchedSize(partner))
	}
}

func TestQuickMinCostNeverWorseThanGreedy(t *testing.T) {
	// At equal cardinality, the Hungarian solution's total can never
	// exceed greedy's.
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		cost := randomCost(rng, r, tt, 0.1)
		greedy, err := Greedy(cost)
		if err != nil {
			return false
		}
		opt, total, err := MinCost(cost)
		if err != nil {
			return false
		}
		if matchedSize(opt) < matchedSize(greedy) {
			return false // Hungarian is maximum-cardinality
		}
		if matchedSize(opt) != matchedSize(greedy) {
			return true // different cardinality: totals not comparable
		}
		greedyTotal := 0.0
		for j, i := range greedy {
			if i != Unmatched {
				greedyTotal += cost[j][i]
			}
		}
		return total <= greedyTotal+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBottleneckNeverWorseThanMinCostMax(t *testing.T) {
	// The bottleneck matching's max edge is a lower bound over all
	// maximum-cardinality matchings, so MinCost's largest matched edge
	// can never beat it.
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, tt := 1+rng.Intn(6), 1+rng.Intn(6)
		cost := randomCost(rng, r, tt, 0.1)
		bn, bnMax, err := Bottleneck(cost)
		if err != nil {
			return false
		}
		mc, _, err := MinCost(cost)
		if err != nil {
			return false
		}
		if matchedSize(bn) != matchedSize(mc) {
			return false // both must be maximum cardinality
		}
		mcMax := 0.0
		for j, i := range mc {
			if i != Unmatched && cost[j][i] > mcMax {
				mcMax = cost[j][i]
			}
		}
		return bnMax <= mcMax+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
