// Package match implements the non-sharing comparison algorithms the
// paper evaluates against (§VI-B):
//
//   - Greedy: dispatch the geometrically nearest idle taxi to each
//     request in arrival order (the greedy method of Hanna et al. [3]).
//   - MinCost: a minimum-cost bipartite matching between requests and
//     taxis (the paper's "Pair" baseline), computed with a
//     Jonker–Volgenant-style Hungarian algorithm.
//   - Bottleneck: a bipartite matching minimising the maximum cost of any
//     matched pair (the paper's "Worst" baseline, [3]), computed by
//     binary search over edge costs with Hopcroft–Karp feasibility
//     checks.
//
// All functions take a request-major cost matrix cost[j][i] — the cost of
// serving request j with taxi i — and return a partner slice where
// partner[j] is the chosen taxi index or Unmatched.
package match

import (
	"fmt"
	"math"
	"sort"
)

// Unmatched marks a request that received no taxi.
const Unmatched = -1

// validate checks that the cost matrix is rectangular and NaN-free.
func validate(cost [][]float64) (r, t int, err error) {
	r = len(cost)
	if r == 0 {
		return 0, 0, nil
	}
	t = len(cost[0])
	for j, row := range cost {
		if len(row) != t {
			return 0, 0, fmt.Errorf("match: row %d has %d entries, want %d", j, len(row), t)
		}
		for i, c := range row {
			if math.IsNaN(c) {
				return 0, 0, fmt.Errorf("match: cost[%d][%d] is NaN", j, i)
			}
		}
	}
	return r, t, nil
}

// Greedy assigns each request, in index (arrival) order, the cheapest
// still-unassigned taxi. Entries with +Inf cost are never assigned.
func Greedy(cost [][]float64) ([]int, error) {
	r, t, err := validate(cost)
	if err != nil {
		return nil, err
	}
	partner := make([]int, r)
	taken := make([]bool, t)
	for j := 0; j < r; j++ {
		best, bestCost := Unmatched, math.Inf(1)
		for i := 0; i < t; i++ {
			if !taken[i] && cost[j][i] < bestCost {
				best, bestCost = i, cost[j][i]
			}
		}
		partner[j] = best
		if best != Unmatched {
			taken[best] = true
		}
	}
	return partner, nil
}

// MinCost returns a minimum-total-cost matching of maximum cardinality
// min(r, t): every request is matched when taxis are plentiful, every
// taxi is busy when requests are. +Inf entries are treated as forbidden;
// if forbidden edges make full cardinality impossible, the affected
// requests are left unmatched.
func MinCost(cost [][]float64) (partner []int, total float64, err error) {
	r, t, err := validate(cost)
	if err != nil {
		return nil, 0, err
	}
	if r == 0 || t == 0 {
		return filled(r, Unmatched), 0, nil
	}
	if r <= t {
		partner = hungarian(cost, r, t)
	} else {
		// Transpose so the row side is the smaller one.
		tr := make([][]float64, t)
		for i := 0; i < t; i++ {
			tr[i] = make([]float64, r)
			for j := 0; j < r; j++ {
				tr[i][j] = cost[j][i]
			}
		}
		taxiPartner := hungarian(tr, t, r)
		partner = filled(r, Unmatched)
		for i, j := range taxiPartner {
			if j != Unmatched {
				partner[j] = i
			}
		}
	}
	for j, i := range partner {
		if i != Unmatched {
			total += cost[j][i]
		}
	}
	return partner, total, nil
}

// forbiddenCost substitutes for +Inf edges inside the Hungarian solver;
// pairs assigned at or above half this value are reported Unmatched.
const forbiddenCost = 1e15

// hungarian solves the rectangular assignment problem for n rows and m
// columns, n <= m, minimising total cost. It is the O(n^2 m) potentials
// formulation with shortest augmenting paths (Jonker–Volgenant family).
// +Inf edges are substituted with forbiddenCost and stripped from the
// result, so rows with no usable column stay unmatched.
func hungarian(cost [][]float64, n, m int) []int {
	edge := func(r, c int) float64 {
		e := cost[r][c]
		if math.IsInf(e, 1) || e > forbiddenCost {
			return forbiddenCost
		}
		return e
	}
	// Row and column potentials; colRow[c] is the row assigned to
	// column c; way[c] is the column preceding c on the shortest
	// augmenting path. Index 0 is a virtual root (1-based internally).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	colRow := make([]int, m+1)
	way := make([]int, m+1)
	minv := make([]float64, m+1)
	used := make([]bool, m+1)
	for r := 1; r <= n; r++ {
		colRow[0] = r
		j0 := 0
		for c := range minv {
			minv[c] = math.Inf(1)
			used[c] = false
		}
		for {
			used[j0] = true
			i0 := colRow[j0]
			delta := math.Inf(1)
			j1 := 0
			for c := 1; c <= m; c++ {
				if used[c] {
					continue
				}
				cur := edge(i0-1, c-1) - u[i0] - v[c]
				if cur < minv[c] {
					minv[c] = cur
					way[c] = j0
				}
				if minv[c] < delta {
					delta = minv[c]
					j1 = c
				}
			}
			for c := 0; c <= m; c++ {
				if used[c] {
					u[colRow[c]] += delta
					v[c] -= delta
				} else {
					minv[c] -= delta
				}
			}
			j0 = j1
			if colRow[j0] == 0 {
				break
			}
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			colRow[j0] = colRow[j1]
			j0 = j1
		}
	}
	partner := filled(n, Unmatched)
	for c := 1; c <= m; c++ {
		if r := colRow[c]; r > 0 && edge(r-1, c-1) < forbiddenCost/2 {
			partner[r-1] = c - 1
		}
	}
	return partner
}

// Bottleneck returns a maximum-cardinality matching minimising the
// largest matched cost (min-max). It binary-searches the sorted distinct
// finite costs, checking each candidate threshold with Hopcroft–Karp.
// The returned maxCost is the bottleneck value (0 when nothing matches).
func Bottleneck(cost [][]float64) (partner []int, maxCost float64, err error) {
	r, t, err := validate(cost)
	if err != nil {
		return nil, 0, err
	}
	if r == 0 || t == 0 {
		return filled(r, Unmatched), 0, nil
	}
	var values []float64
	for _, row := range cost {
		for _, c := range row {
			if !math.IsInf(c, 1) {
				values = append(values, c)
			}
		}
	}
	if len(values) == 0 {
		return filled(r, Unmatched), 0, nil
	}
	sort.Float64s(values)
	values = dedupe(values)

	// Maximum achievable cardinality uses every finite edge.
	full := matchingUnderThreshold(cost, values[len(values)-1])
	target := size(full)
	if target == 0 {
		return filled(r, Unmatched), 0, nil
	}

	lo, hi := 0, len(values)-1
	best := full
	bestVal := values[hi]
	for lo <= hi {
		mid := (lo + hi) / 2
		m := matchingUnderThreshold(cost, values[mid])
		if size(m) >= target {
			best, bestVal = m, values[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, bestVal, nil
}

func matchingUnderThreshold(cost [][]float64, threshold float64) []int {
	r := len(cost)
	t := len(cost[0])
	adj := make([][]int, r)
	for j := 0; j < r; j++ {
		for i := 0; i < t; i++ {
			if cost[j][i] <= threshold {
				adj[j] = append(adj[j], i)
			}
		}
	}
	return HopcroftKarp(adj, t)
}

func size(partner []int) int {
	n := 0
	for _, p := range partner {
		if p != Unmatched {
			n++
		}
	}
	return n
}

func filled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
