package match

// HopcroftKarp computes a maximum-cardinality bipartite matching in
// O(E·sqrt(V)). adj[j] lists the right-side vertices adjacent to left
// vertex j; nRight is the number of right-side vertices. It returns
// partner[j] — the right vertex matched to left vertex j, or Unmatched.
func HopcroftKarp(adj [][]int, nRight int) []int {
	nLeft := len(adj)
	const infDist = int(^uint(0) >> 1)

	matchL := filled(nLeft, Unmatched)
	matchR := filled(nRight, Unmatched)
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == Unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = infDist
			}
		}
		foundAugmenting := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == Unmatched {
					foundAugmenting = true
				} else if dist[w] == infDist {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return foundAugmenting
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == Unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = infDist
		return false
	}

	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == Unmatched {
				dfs(u)
			}
		}
	}
	return matchL
}
