package geo

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestEuclid(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{name: "same point", a: Point{X: 1, Y: 2}, b: Point{X: 1, Y: 2}, want: 0},
		{name: "unit x", a: Point{}, b: Point{X: 1}, want: 1},
		{name: "3-4-5", a: Point{}, b: Point{X: 3, Y: 4}, want: 5},
		{name: "negative coords", a: Point{X: -1, Y: -1}, b: Point{X: 2, Y: 3}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Euclid(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Euclid(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestManhattan(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{name: "same point", a: Point{X: 1, Y: 2}, b: Point{X: 1, Y: 2}, want: 0},
		{name: "diagonal", a: Point{}, b: Point{X: 3, Y: 4}, want: 7},
		{name: "negative", a: Point{X: -2, Y: 0}, b: Point{X: 2, Y: -1}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Manhattan(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Manhattan(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestMetricProperties(t *testing.T) {
	metrics := map[string]Metric{
		"euclid":    EuclidMetric,
		"manhattan": ManhattanMetric,
	}
	for name, m := range metrics {
		t.Run(name, func(t *testing.T) {
			symmetric := func(ax, ay, bx, by float64) bool {
				a := Point{X: math.Mod(ax, 100), Y: math.Mod(ay, 100)}
				b := Point{X: math.Mod(bx, 100), Y: math.Mod(by, 100)}
				return almostEqual(m.Distance(a, b), m.Distance(b, a))
			}
			if err := quick.Check(symmetric, nil); err != nil {
				t.Errorf("symmetry violated: %v", err)
			}
			nonNegative := func(ax, ay, bx, by float64) bool {
				a := Point{X: math.Mod(ax, 100), Y: math.Mod(ay, 100)}
				b := Point{X: math.Mod(bx, 100), Y: math.Mod(by, 100)}
				return m.Distance(a, b) >= 0
			}
			if err := quick.Check(nonNegative, nil); err != nil {
				t.Errorf("non-negativity violated: %v", err)
			}
			triangle := func(ax, ay, bx, by, cx, cy float64) bool {
				a := Point{X: math.Mod(ax, 100), Y: math.Mod(ay, 100)}
				b := Point{X: math.Mod(bx, 100), Y: math.Mod(by, 100)}
				c := Point{X: math.Mod(cx, 100), Y: math.Mod(cy, 100)}
				return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)+1e-9
			}
			if err := quick.Check(triangle, nil); err != nil {
				t.Errorf("triangle inequality violated: %v", err)
			}
		})
	}
}

func TestLerp(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 10, Y: -10}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(a, b, 0) = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(a, b, 1) = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if !almostEqual(mid.X, 5) || !almostEqual(mid.Y, -5) {
		t.Errorf("Lerp(a, b, 0.5) = %v, want (5, -5)", mid)
	}
}

func TestToward(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 10, Y: 0}

	got, left := Toward(a, b, 4)
	if !almostEqual(got.X, 4) || !almostEqual(got.Y, 0) || left != 0 {
		t.Errorf("Toward partial = %v leftover %v, want (4,0) leftover 0", got, left)
	}

	got, left = Toward(a, b, 15)
	if got != b || !almostEqual(left, 5) {
		t.Errorf("Toward overshoot = %v leftover %v, want %v leftover 5", got, left, b)
	}

	got, left = Toward(a, a, 3)
	if got != a || !almostEqual(left, 3) {
		t.Errorf("Toward zero-length = %v leftover %v, want %v leftover 3", got, left, a)
	}
}

func TestTowardNeverOvershoots(t *testing.T) {
	f := func(ax, ay, bx, by, rawDist float64) bool {
		a := Point{X: math.Mod(ax, 50), Y: math.Mod(ay, 50)}
		b := Point{X: math.Mod(bx, 50), Y: math.Mod(by, 50)}
		dist := math.Abs(math.Mod(rawDist, 100))
		got, left := Toward(a, b, dist)
		if left < 0 {
			return false
		}
		// Travelled distance plus leftover equals the budget.
		return almostEqual(Euclid(a, got)+left, dist) || Euclid(a, got) <= dist+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{X: 4, Y: -2}, Point{X: -1, Y: 6})
	if r.Min.X != -1 || r.Min.Y != -2 || r.Max.X != 4 || r.Max.Y != 6 {
		t.Fatalf("NewRect got %+v", r)
	}
	if !almostEqual(r.Width(), 5) || !almostEqual(r.Height(), 8) {
		t.Errorf("Width/Height = %v/%v, want 5/8", r.Width(), r.Height())
	}
	c := r.Center()
	if !almostEqual(c.X, 1.5) || !almostEqual(c.Y, 2) {
		t.Errorf("Center = %v, want (1.5, 2)", c)
	}
	if !r.Contains(Point{X: 0, Y: 0}) {
		t.Error("Contains(origin) = false, want true")
	}
	if r.Contains(Point{X: 5, Y: 0}) {
		t.Error("Contains((5,0)) = true, want false")
	}
	clamped := r.Clamp(Point{X: 100, Y: -100})
	if clamped.X != 4 || clamped.Y != -2 {
		t.Errorf("Clamp = %v, want (4, -2)", clamped)
	}
	grown := r.Expand(1)
	if grown.Min.X != -2 || grown.Max.Y != 7 {
		t.Errorf("Expand = %+v", grown)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{X: 1, Y: 2}
	q := Point{X: 3, Y: -4}
	if got := p.Add(q); got != (Point{X: 4, Y: -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{X: -2, Y: 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{X: 2, Y: 4}) {
		t.Errorf("Scale = %v", got)
	}
	if !almostEqual((Point{X: 3, Y: 4}).Norm(), 5) {
		t.Error("Norm(3,4) != 5")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	r := NewRect(Point{}, Point{X: 10, Y: 10})
	s1 := NewSampler(42)
	s2 := NewSampler(42)
	for i := 0; i < 100; i++ {
		if s1.Uniform(r) != s2.Uniform(r) {
			t.Fatal("same seed produced different uniform samples")
		}
		if s1.Normal(r.Center(), 2) != s2.Normal(r.Center(), 2) {
			t.Fatal("same seed produced different normal samples")
		}
	}
}

func TestSamplerUniformInRect(t *testing.T) {
	r := NewRect(Point{X: -5, Y: 3}, Point{X: 5, Y: 9})
	s := NewSampler(7)
	for i := 0; i < 1000; i++ {
		p := s.Uniform(r)
		if !r.Contains(p) {
			t.Fatalf("Uniform sample %v outside rect %+v", p, r)
		}
	}
}

func TestSamplerNormalIn(t *testing.T) {
	r := NewRect(Point{}, Point{X: 1, Y: 1})
	s := NewSampler(9)
	for i := 0; i < 1000; i++ {
		p := s.NormalIn(r.Center(), 10, r)
		if !r.Contains(p) {
			t.Fatalf("NormalIn sample %v outside rect", p)
		}
	}
}

func TestSamplerNormalSpread(t *testing.T) {
	s := NewSampler(11)
	center := Point{X: 5, Y: 5}
	const n = 20000
	var sumX, sumY float64
	for i := 0; i < n; i++ {
		p := s.Normal(center, 2)
		sumX += p.X
		sumY += p.Y
	}
	meanX, meanY := sumX/n, sumY/n
	if math.Abs(meanX-5) > 0.1 || math.Abs(meanY-5) > 0.1 {
		t.Errorf("normal sample mean = (%v, %v), want close to (5, 5)", meanX, meanY)
	}
}

func TestSamplerHelpers(t *testing.T) {
	s := NewSampler(3)
	for i := 0; i < 100; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := s.ExpFloat64(); v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
	}
	perm := s.Perm(10)
	seen := make(map[int]bool)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", perm)
		}
		seen[v] = true
	}
}

func TestNewSamplerFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSamplerFrom(rng)
	if v := s.Float64(); v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
}

func TestPointString(t *testing.T) {
	got := Point{X: 1.5, Y: -2}.String()
	if !strings.Contains(got, "1.500") || !strings.Contains(got, "-2.000") {
		t.Errorf("String = %q", got)
	}
}
