package geo

import "math/rand"

// Sampler draws deterministic pseudo-random points for trace generation
// and tests. It wraps a *rand.Rand so that every experiment is exactly
// reproducible from its seed.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a Sampler seeded with seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// NewSamplerFrom returns a Sampler that draws from rng.
func NewSamplerFrom(rng *rand.Rand) *Sampler {
	return &Sampler{rng: rng}
}

// Uniform draws a point uniformly from r.
func (s *Sampler) Uniform(r Rect) Point {
	return Point{
		X: r.Min.X + s.rng.Float64()*r.Width(),
		Y: r.Min.Y + s.rng.Float64()*r.Height(),
	}
}

// Normal draws a point from an isotropic 2-D normal distribution centred
// at center with the given standard deviation. The paper seeds taxi
// locations this way ("the locations of taxis follow a two-dimensional
// normal distribution from the center of the city").
func (s *Sampler) Normal(center Point, stddev float64) Point {
	return Point{
		X: center.X + s.rng.NormFloat64()*stddev,
		Y: center.Y + s.rng.NormFloat64()*stddev,
	}
}

// NormalIn draws from the 2-D normal and clamps the result to r, so that
// every sampled location stays inside the city limits.
func (s *Sampler) NormalIn(center Point, stddev float64, r Rect) Point {
	return r.Clamp(s.Normal(center, stddev))
}

// Float64 returns a uniform value in [0, 1).
func (s *Sampler) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n).
func (s *Sampler) Intn(n int) int { return s.rng.Intn(n) }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Sampler) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Sampler) Perm(n int) []int { return s.rng.Perm(n) }
