// Package geo provides planar geometry primitives for the dispatch
// simulator: points on a city plane (kilometre units), distance metrics,
// and deterministic spatial sampling helpers.
//
// The paper models the city as a Euclidean surface with a shortest-path
// distance function D(·,·). Every distance computation in this repository
// goes through the Metric interface so that the Euclidean plane, a
// Manhattan grid, or a road network (package roadnet) can be swapped
// freely.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the city plane. Coordinates are in kilometres.
type Point struct {
	X float64
	Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Add returns the componentwise sum p + q.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns the componentwise difference p - q.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	return Point{X: p.X * s, Y: p.Y * s}
}

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// Euclid returns the Euclidean distance between p and q.
func Euclid(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Manhattan returns the L1 distance between p and q.
func Manhattan(p, q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{
		X: p.X + (q.X-p.X)*t,
		Y: p.Y + (q.Y-p.Y)*t,
	}
}

// Toward returns the point reached by travelling dist from p straight
// toward q. If dist meets or exceeds the Euclidean distance to q, q is
// returned along with the leftover distance.
func Toward(p, q Point, dist float64) (Point, float64) {
	total := Euclid(p, q)
	if total <= dist || total == 0 {
		return q, dist - total
	}
	return Lerp(p, q, dist/total), 0
}

// Metric measures travel distance between two points, in kilometres.
// Implementations must be symmetric, non-negative, and safe for
// concurrent use.
type Metric interface {
	// Distance returns the travel distance from a to b.
	Distance(a, b Point) float64
}

// MetricFunc adapts a plain function to the Metric interface.
type MetricFunc func(a, b Point) float64

// Distance implements Metric.
func (f MetricFunc) Distance(a, b Point) float64 { return f(a, b) }

// BatchMetric is an optional Metric extension for single-source batch
// queries: one call answers the distance from src to every destination.
// Implementations backed by a graph traversal (package roadnet) amortise
// the traversal over the whole batch, so a batch of n queries costs one
// shortest-path tree instead of n cache probes. Results must be
// identical, bit for bit, to calling Distance per destination.
type BatchMetric interface {
	Metric
	// DistancesFrom returns the travel distance from src to each
	// destination, aligned by index.
	DistancesFrom(src Point, dsts []Point) []float64
}

// DistancesFrom computes src→dsts distances through m, using the
// BatchMetric fast path when m provides one and falling back to one
// Distance call per destination otherwise. The fallback makes every
// Metric usable where a batch is wanted (package costplane builds its
// per-frame planes through this helper).
func DistancesFrom(m Metric, src Point, dsts []Point) []float64 {
	if bm, ok := m.(BatchMetric); ok {
		return bm.DistancesFrom(src, dsts)
	}
	out := make([]float64, len(dsts))
	for i, d := range dsts {
		out[i] = m.Distance(src, d)
	}
	return out
}

var (
	_ Metric = MetricFunc(nil)

	// EuclidMetric measures straight-line distance.
	EuclidMetric Metric = MetricFunc(Euclid)
	// ManhattanMetric measures L1 (grid) distance.
	ManhattanMetric Metric = MetricFunc(Manhattan)
)

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	Min Point
	Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns p constrained to lie within r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Expand grows r by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - d, Y: r.Min.Y - d},
		Max: Point{X: r.Max.X + d, Y: r.Max.Y + d},
	}
}
