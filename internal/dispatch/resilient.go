package dispatch

import (
	"fmt"
	"log/slog"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stream"
)

// DefaultFrameDeadline bounds one frame's dispatch compute when
// NewResilient is given a non-positive deadline. The paper's frames are
// one minute; half a second leaves the engine far ahead of real time
// even on the New York workload.
const DefaultFrameDeadline = 500 * time.Millisecond

// Resilient wraps any Dispatcher with a per-frame compute deadline and
// panic recovery, degrading to a cheap fallback (Greedy by default)
// when the primary overruns, panics, or errors. A pathological frame —
// say a stable-matching enumeration blowing up on adversarial ties — is
// then a degraded frame and a counter increment instead of a stalled
// pipeline, so tail frame latency stays bounded by the deadline plus
// the fallback's (near-linear) cost.
type Resilient struct {
	primary  sim.Dispatcher
	fallback sim.Dispatcher
	deadline time.Duration
}

var _ sim.Dispatcher = (*Resilient)(nil)

// NewResilient wraps primary with deadline-bounded, panic-safe
// dispatch. A nil fallback defaults to Greedy; a non-positive deadline
// defaults to DefaultFrameDeadline.
func NewResilient(primary, fallback sim.Dispatcher, deadline time.Duration) *Resilient {
	if fallback == nil {
		fallback = NewGreedy()
	}
	if deadline <= 0 {
		deadline = DefaultFrameDeadline
	}
	return &Resilient{primary: primary, fallback: fallback, deadline: deadline}
}

// Name implements sim.Dispatcher.
func (d *Resilient) Name() string { return d.primary.Name() + "+failsafe" }

// dispatchResult carries one dispatcher outcome across the deadline
// boundary.
type dispatchResult struct {
	out      []fleet.Assignment
	err      error
	panicked bool
}

// Dispatch implements sim.Dispatcher. The primary runs in its own
// goroutine; if it misses the deadline its eventual result is discarded
// (the Frame is an immutable snapshot, so a straggler finishing late is
// harmless) and the fallback decides the frame instead.
func (d *Resilient) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	ch := make(chan dispatchResult, 1)
	go func() {
		ch <- safeDispatch(d.primary, f)
	}()
	timer := time.NewTimer(d.deadline)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err == nil {
			return res.out, nil
		}
		reason := "error"
		if res.panicked {
			reason = "panic"
		}
		return d.degrade(f, reason, res.err)
	case <-timer.C:
		return d.degrade(f, "deadline", fmt.Errorf("dispatch: %s exceeded %v", d.primary.Name(), d.deadline))
	}
}

// degrade counts the degraded frame, fires the flight recorder, and
// reruns the frame with the fallback.
func (d *Resilient) degrade(f *sim.Frame, reason string, cause error) ([]fleet.Assignment, error) {
	if c := obsDegraded[reason]; c != nil {
		c.Inc()
	}
	slog.Warn("dispatch: degraded frame",
		"frame", f.Number, "primary", d.primary.Name(),
		"fallback", d.fallback.Name(), "reason", reason, "err", cause)
	traceDegrade(f.Number, d.primary.Name(), d.fallback.Name(), reason, cause)
	flightrec.TriggerActive(int64(f.Number), flightrec.ReasonDegraded,
		fmt.Sprintf("%s degraded to %s (%s): %v", d.primary.Name(), d.fallback.Name(), reason, cause))
	if stream.Wants(stream.TopicNotices) {
		stream.Publish(stream.TopicNotices, int64(f.Number), stream.Notice{
			Kind:   "degrade",
			Frame:  int64(f.Number),
			Detail: fmt.Sprintf("%s degraded to %s (%s): %v", d.primary.Name(), d.fallback.Name(), reason, cause),
		})
	}
	res := safeDispatch(d.fallback, f)
	if res.err != nil {
		return nil, fmt.Errorf("dispatch: fallback %s after %s degrade: %w", d.fallback.Name(), reason, res.err)
	}
	return res.out, nil
}

// safeDispatch runs one dispatcher with panic recovery.
func safeDispatch(disp sim.Dispatcher, f *sim.Frame) (res dispatchResult) {
	defer func() {
		if r := recover(); r != nil {
			res = dispatchResult{err: fmt.Errorf("dispatch: %s panicked: %v", disp.Name(), r), panicked: true}
		}
	}()
	out, err := disp.Dispatch(f)
	return dispatchResult{out: out, err: err}
}
