// Package dispatch wires the paper's matching algorithms and the
// non-sharing comparison algorithms into sim.Dispatcher implementations:
//
//   - NSTD-P / NSTD-T — Algorithm 1 and its taxi-optimal counterpart
//     (stable matching with dummy partners, §IV).
//   - STD-P / STD-T — Algorithm 3 (set packing + stable matching, §V).
//   - Greedy, MinCost ("Pair"), Bottleneck ("Worst") — the literature
//     baselines of §VI-B, which consider only passenger-side cost.
//
// All non-sharing dispatchers assign idle taxis only and emit one
// single-ride assignment per matched pair.
package dispatch

import (
	"fmt"

	"stabledispatch/internal/costplane"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/match"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stable"
)

// idleFleet converts the idle taxis of a frame into fleet.Taxi values,
// returning also their IDs aligned by index.
func idleFleet(f *sim.Frame) []fleet.Taxi {
	defer stageTimer("idle_scan").ObserveDuration()
	views := f.IdleTaxis()
	taxis := make([]fleet.Taxi, len(views))
	for i, v := range views {
		taxis[i] = fleet.Taxi{ID: v.ID, Pos: v.Pos, Seats: v.Seats, Status: fleet.TaxiIdle}
	}
	return taxis
}

// prunedInstance builds the frame's non-sharing preference instance from
// a cost plane pruned at the passenger-side dummy threshold: taxis
// farther than MaxPickup from a pickup sit behind the dummy regardless,
// so skipping their cells leaves every preference list unchanged.
func prunedInstance(f *sim.Frame, taxis []fleet.Taxi) (*pref.Instance, error) {
	tm := stageTimer("cost_plane")
	pl := f.CostPlane(taxis, costplane.Config{PruneRadius: f.Params.MaxPickup})
	tm.ObserveDuration()
	tm = stageTimer("pref_build")
	defer tm.ObserveDuration()
	return pref.FromPlane(pl, f.Params)
}

// NSTD is the paper's non-sharing stable dispatcher. The passenger-
// optimal variant (NSTD-P) runs Algorithm 1 directly; the taxi-optimal
// variant (NSTD-T) selects the taxi-best stable matching (the paper
// derives it from Algorithms 1 and 2; the taxi-proposing mirror computes
// the same matching and is validated against the enumeration in tests).
type NSTD struct {
	taxiOptimal bool
}

var _ sim.Dispatcher = (*NSTD)(nil)

// NewNSTDP returns the passenger-optimal stable dispatcher.
func NewNSTDP() *NSTD { return &NSTD{} }

// NewNSTDT returns the taxi-optimal stable dispatcher.
func NewNSTDT() *NSTD { return &NSTD{taxiOptimal: true} }

// Name implements sim.Dispatcher.
func (d *NSTD) Name() string {
	if d.taxiOptimal {
		return "NSTD-T"
	}
	return "NSTD-P"
}

// Dispatch implements sim.Dispatcher.
func (d *NSTD) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	taxis := idleFleet(f)
	if len(taxis) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	inst, err := prunedInstance(f, taxis)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	ft := newFrameTracer(f.Number, &inst.Market, singleIDs(f.Requests), fleetIDs(taxis))
	tm := stageTimer("matching")
	var m stable.Matching
	if d.taxiOptimal {
		m = stable.TaxiOptimalObserved(&inst.Market, ft.observer(true))
	} else {
		m = stable.PassengerOptimalObserved(&inst.Market, ft.observer(false))
	}
	tm.ObserveDuration()
	out := singleRides(m, taxis, f.Requests)
	obsAssignments.Add(uint64(len(out)))
	return out, nil
}

// costMatrix returns the request-major pickup-distance matrix the
// baselines minimise — they model only the passenger's wait. The matrix
// is a view of the frame's unpruned cost plane: the baselines have no
// acceptability thresholds (a request beyond every radius still takes
// its nearest taxi), so every cell must hold a real distance.
func costMatrix(f *sim.Frame, taxis []fleet.Taxi) [][]float64 {
	tm := stageTimer("cost_plane")
	pl := f.CostPlane(taxis, costplane.Config{})
	tm.ObserveDuration()
	defer stageTimer("cost_matrix").ObserveDuration()
	return pl.CostMatrix()
}

// partnerFunc turns a cost matrix into a request→taxi assignment.
type partnerFunc func(cost [][]float64) ([]int, error)

// baseline is a generic non-sharing baseline dispatcher.
type baseline struct {
	name string
	run  partnerFunc
}

var _ sim.Dispatcher = (*baseline)(nil)

// NewGreedy returns the greedy baseline: each request takes the nearest
// idle taxi, in arrival order (Hanna et al. [3]).
func NewGreedy() sim.Dispatcher {
	return &baseline{name: "Greedy", run: match.Greedy}
}

// NewMinCost returns the minimum-cost bipartite matching baseline (the
// paper's "Pair"): minimise the total request-taxi distance.
func NewMinCost() sim.Dispatcher {
	return &baseline{name: "MinCost", run: func(cost [][]float64) ([]int, error) {
		partner, _, err := match.MinCost(cost)
		return partner, err
	}}
}

// NewBottleneck returns the bottleneck matching baseline (the paper's
// "Worst"): minimise the maximum matched request-taxi distance.
func NewBottleneck() sim.Dispatcher {
	return &baseline{name: "Bottleneck", run: func(cost [][]float64) ([]int, error) {
		partner, _, err := match.Bottleneck(cost)
		return partner, err
	}}
}

// Name implements sim.Dispatcher.
func (b *baseline) Name() string { return b.name }

// Dispatch implements sim.Dispatcher.
func (b *baseline) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	taxis := idleFleet(f)
	if len(taxis) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	cost := costMatrix(f, taxis)
	tm := stageTimer("matching")
	partner, err := b.run(cost)
	tm.ObserveDuration()
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", b.name, err)
	}
	var out []fleet.Assignment
	for j, i := range partner {
		if i != match.Unmatched {
			out = append(out, fleet.SingleRide(taxis[i].ID, f.Requests[j]))
		}
	}
	obsAssignments.Add(uint64(len(out)))
	return out, nil
}

// DefaultPackBatch bounds how many pending requests enter the packing
// stage per frame. Algorithm 3's feasible-group search is quadratic to
// cubic in the batch; at the paper's frame sizes (tens of requests) the
// cap never binds, but when a scarce fleet lets the queue grow, only the
// oldest DefaultPackBatch requests are considered for sharing and the
// rest ride the same stable matching as singles.
const DefaultPackBatch = 100

// STD is Algorithm 3: pack compatible requests into share groups by
// maximum set packing, then stably match the resulting units to idle
// taxis under the §V-A interest model.
type STD struct {
	taxiOptimal bool
	packCfg     share.PackConfig
	maxBatch    int
}

var _ sim.Dispatcher = (*STD)(nil)

// NewSTDP returns the packed passenger-optimal sharing dispatcher.
func NewSTDP(cfg share.PackConfig) *STD { return &STD{packCfg: cfg, maxBatch: DefaultPackBatch} }

// NewSTDT returns the packed taxi-optimal sharing dispatcher.
func NewSTDT(cfg share.PackConfig) *STD {
	return &STD{taxiOptimal: true, packCfg: cfg, maxBatch: DefaultPackBatch}
}

// Name implements sim.Dispatcher.
func (d *STD) Name() string {
	if d.taxiOptimal {
		return "STD-T"
	}
	return "STD-P"
}

// Dispatch implements sim.Dispatcher.
func (d *STD) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	taxis := idleFleet(f)
	if len(taxis) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	n := packBatchSize(len(f.Requests), d.maxBatch)
	tm := stageTimer("cost_plane")
	pl := f.CostPlane(taxis, costplane.Config{
		PruneRadius: f.Params.MaxPickup,
		// A singleton batch consults no pickup pair, so skip the R×R
		// pair matrix entirely — common at quiet frames.
		Pairs:      n >= 2,
		PairRadius: d.packCfg.PairRadius,
	})
	tm.ObserveDuration()
	tm = stageTimer("packing")
	units, err := packedUnits(f, pl, d.packCfg, n)
	tm.ObserveDuration()
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", d.Name(), err)
	}
	tm = stageTimer("pref_build")
	mk, err := share.BuildMarketPlane(units, taxis, pl, f.Params)
	tm.ObserveDuration()
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", d.Name(), err)
	}
	ft := newFrameTracer(f.Number, mk, unitMemberIDs(units, f.Requests), fleetIDs(taxis))
	tm = stageTimer("matching")
	var m stable.Matching
	if d.taxiOptimal {
		m = stable.TaxiOptimalObserved(mk, ft.observer(true))
	} else {
		m = stable.PassengerOptimalObserved(mk, ft.observer(false))
	}
	tm.ObserveDuration()
	var out []fleet.Assignment
	for k, i := range m.ReqPartner {
		if i != stable.Unmatched {
			out = append(out, units[k].Assignment(taxis[i].ID, f.Requests))
		}
	}
	obsAssignments.Add(uint64(len(out)))
	return out, nil
}

// packBatchSize is the number of oldest pending requests entering the
// packing stage: min(total, maxBatch), with maxBatch ≤ 0 meaning
// DefaultPackBatch.
func packBatchSize(total, maxBatch int) int {
	if maxBatch <= 0 {
		maxBatch = DefaultPackBatch
	}
	if total > maxBatch {
		return maxBatch
	}
	return total
}

// packedUnits runs Algorithm 3's first stage on the oldest n pending
// requests and appends the overflow as single-rider units, so a long
// queue still gets stable single dispatches while the packing stage
// stays frame-rate. Pair distances and solo trips come from the frame's
// cost plane.
func packedUnits(f *sim.Frame, pl *costplane.Plane, cfg share.PackConfig, n int) ([]share.Unit, error) {
	res, err := share.PackPlane(n, pl, cfg)
	if err != nil {
		return nil, err
	}
	units := res.UnitsPlane(pl)
	for idx := n; idx < len(f.Requests); idx++ {
		units = append(units, share.SingleUnitPlane(idx, pl))
	}
	return units, nil
}
