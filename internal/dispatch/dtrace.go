package dispatch

import (
	"fmt"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/stable"
)

// Decision tracing for the matching stage. Package stable reports
// decisions in market indices; frameTracer translates them into fleet
// IDs and preference ranks and records them on each affected request's
// trace. Everything here is built only when tracing is enabled — the
// rank tables cost O(R·T) per traced frame — and the untraced path pays
// one atomic load in newFrameTracer.

// traceTopCandidates bounds the per-request shortlist recorded at
// preference-build time.
const traceTopCandidates = 3

// frameTracer translates one frame's matching decisions into dtrace
// events. memberIDs[j] holds the fleet request IDs behind proposer-side
// index j — one ID for the non-sharing dispatchers, the group members
// for the sharing ones.
type frameTracer struct {
	rec       *dtrace.Recorder
	frame     int
	mk        *pref.Market
	memberIDs [][]int
	taxiIDs   []int
	// reqRank[j][i] is taxi i's rank on request j's list (-1 when not
	// mutually acceptable); taxiRank[i][j] mirrors it.
	reqRank  [][]int
	taxiRank [][]int
}

// newFrameTracer returns a tracer for the frame, or nil when tracing is
// disabled. Building it records each request's candidate shortlist (the
// dummy-partner threshold check: who is ahead of the dummy, and by how
// much).
func newFrameTracer(frame int, mk *pref.Market, memberIDs [][]int, taxiIDs []int) *frameTracer {
	rec := dtrace.Active()
	if rec == nil {
		return nil
	}
	t := &frameTracer{
		rec:       rec,
		frame:     frame,
		mk:        mk,
		memberIDs: memberIDs,
		taxiIDs:   taxiIDs,
		reqRank:   make([][]int, mk.NumRequests()),
		taxiRank:  make([][]int, mk.NumTaxis()),
	}
	for j := range t.reqRank {
		t.reqRank[j] = rankTable(mk.NumTaxis(), mk.ReqPrefList(j))
	}
	for i := range t.taxiRank {
		t.taxiRank[i] = rankTable(mk.NumRequests(), mk.TaxiPrefList(i))
	}
	t.recordCandidates()
	return t
}

// rankTable inverts a preference list into a rank lookup (-1 = behind a
// dummy).
func rankTable(n int, prefList []int) []int {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = -1
	}
	for rank, idx := range prefList {
		ranks[idx] = rank
	}
	return ranks
}

// membersOf returns the fleet request IDs behind proposer-side index j.
func (t *frameTracer) membersOf(j int) []int {
	if j < 0 || j >= len(t.memberIDs) {
		return nil
	}
	return t.memberIDs[j]
}

// firstMember returns the lead request ID of side index j, or -1.
func (t *frameTracer) firstMember(j int) int {
	if ids := t.membersOf(j); len(ids) > 0 {
		return ids[0]
	}
	return -1
}

// taxiID translates a market taxi index, tolerating Unmatched.
func (t *frameTracer) taxiID(i int) int {
	if i < 0 || i >= len(t.taxiIDs) {
		return -1
	}
	return t.taxiIDs[i]
}

// record stamps the frame and writes the event on every member of side
// index j.
func (t *frameTracer) record(j int, e dtrace.Event) {
	e.Frame = t.frame
	ids := t.membersOf(j)
	if len(ids) > 1 && e.Members == nil {
		e.Members = ids
	}
	for _, id := range ids {
		t.rec.Record(id, e)
	}
}

// recordCandidates writes each request's dummy-partner threshold check:
// how many taxis sit ahead of its dummy and the top few with both costs.
// This guarantees every traced request has at least one alternatives
// event for the explain surface even if its first proposal is accepted.
func (t *frameTracer) recordCandidates() {
	pool := t.mk.NumTaxis()
	for j := 0; j < t.mk.NumRequests(); j++ {
		list := t.mk.ReqPrefList(j)
		e := dtrace.Ev(dtrace.KindCandidates)
		e.Acceptable = len(list)
		e.Pool = pool
		if len(list) == 0 {
			e.Outcome = "no_acceptable_taxi"
			e.Detail = fmt.Sprintf("all %d taxis sit behind a dummy partner (too far, or the trip does not pay)", pool)
		} else {
			e.Outcome = "acceptable"
			e.Detail = fmt.Sprintf("%d of %d taxis ahead of the dummy partner", len(list), pool)
		}
		top := list
		if len(top) > traceTopCandidates {
			top = top[:traceTopCandidates]
		}
		for rank, i := range top {
			e.Candidates = append(e.Candidates, dtrace.Candidate{
				TaxiID:   t.taxiID(i),
				Rank:     rank,
				PickupKm: t.mk.ReqCost[j][i],
				NetKm:    t.mk.TaxiCost[i][j],
			})
		}
		t.record(j, e)
	}
}

// observer returns the stable.Observer recording this frame's
// deferred-acceptance decisions. taxiProposing selects the taxi-optimal
// mirror, where proposer indices are taxis. A nil tracer returns a nil
// observer (tracing disabled).
func (t *frameTracer) observer(taxiProposing bool) *stable.Observer {
	if t == nil {
		return nil
	}
	if taxiProposing {
		return &stable.Observer{
			Proposal:  t.taxiProposal,
			Exhausted: func(int) {}, // a taxi settling for its dummy is not a request-side event
		}
	}
	return &stable.Observer{
		Proposal:  t.reqProposal,
		Exhausted: t.reqExhausted,
	}
}

// reqProposal records one passenger-proposing step: request j proposes
// to taxi i whose tentative partner was rival (another request index).
func (t *frameTracer) reqProposal(j, i, rival int, outcome string) {
	e := dtrace.Ev(dtrace.KindPropose)
	e.TaxiID = t.taxiID(i)
	e.ReqRank = t.reqRank[j][i]
	e.TaxiRank = t.taxiRank[i][j]
	e.Outcome = outcome
	if rival != stable.Unmatched {
		e.RivalID = t.firstMember(rival)
		e.RivalRank = t.taxiRank[i][rival]
	}
	switch outcome {
	case "accepted":
		e.Detail = fmt.Sprintf("taxi %d was free and the pair is mutually acceptable (request rank #%d, taxi rank #%d)",
			e.TaxiID, e.ReqRank, e.TaxiRank)
	case "displaced":
		e.Detail = fmt.Sprintf("taxi %d upgraded: ranks this request #%d, displacing request %d ranked #%d",
			e.TaxiID, e.TaxiRank, e.RivalID, e.RivalRank)
	case "refused":
		e.Detail = fmt.Sprintf("taxi %d refused: prefers its tentative request %d (rank #%d) over this one (rank #%d)",
			e.TaxiID, e.RivalID, e.RivalRank, e.TaxiRank)
	}
	t.record(j, e)

	// The loser's trace gets the mirror event so its timeline explains
	// why it went back to proposing.
	if outcome == "displaced" && rival != stable.Unmatched {
		d := dtrace.Ev(dtrace.KindDisplaced)
		d.TaxiID = e.TaxiID
		d.ReqRank = t.reqRank[rival][i]
		d.TaxiRank = t.taxiRank[i][rival]
		d.RivalID = t.firstMember(j)
		d.RivalRank = t.taxiRank[i][j]
		d.Outcome = "displaced"
		d.Detail = fmt.Sprintf("lost taxi %d to request %d, which the taxi ranks #%d (this request ranked #%d); resuming proposals",
			d.TaxiID, d.RivalID, d.RivalRank, d.TaxiRank)
		t.record(rival, d)
	}
}

// reqExhausted records request j running out of acceptable taxis.
func (t *frameTracer) reqExhausted(j int) {
	e := dtrace.Ev(dtrace.KindPropose)
	e.Outcome = "exhausted"
	e.Detail = "every acceptable taxi refused; the request settles for its dummy partner (unserved this frame)"
	t.record(j, e)
}

// taxiProposal records one taxi-proposing step from the receiving
// request's perspective: taxi i proposed to request j whose tentative
// taxi was rival (a taxi index).
func (t *frameTracer) taxiProposal(i, j, rival int, outcome string) {
	e := dtrace.Ev(dtrace.KindPropose)
	e.TaxiID = t.taxiID(i)
	e.ReqRank = t.reqRank[j][i]
	e.TaxiRank = t.taxiRank[i][j]
	if rival != stable.Unmatched {
		e.RivalID = t.taxiID(rival)
		e.RivalRank = t.reqRank[j][rival]
	}
	switch outcome {
	case "accepted":
		e.Outcome = "accepted"
		e.Detail = fmt.Sprintf("taxi %d proposed and the request was free (request rank #%d, taxi rank #%d)",
			e.TaxiID, e.ReqRank, e.TaxiRank)
	case "displaced":
		e.Outcome = "upgraded"
		e.Detail = fmt.Sprintf("taxi %d proposed and the request upgraded from taxi %d (rank #%d) to it (rank #%d)",
			e.TaxiID, e.RivalID, e.RivalRank, e.ReqRank)
	case "refused":
		e.Outcome = "refused_taxi"
		e.Detail = fmt.Sprintf("taxi %d proposed but the request kept taxi %d (rank #%d vs #%d)",
			e.TaxiID, e.RivalID, e.RivalRank, e.ReqRank)
	}
	t.record(j, e)
}

// traceDegrade annotates the frame when Resilient hands it to the
// fallback dispatcher: every subsequent assignment of the frame came
// from the fallback, not the stable matching.
func traceDegrade(frame int, primary, fallback, reason string, cause error) {
	if rec := dtrace.Active(); rec != nil {
		rec.AddFrameNote(frame, fmt.Sprintf(
			"degraded dispatch: %s failed (%s: %v); frame decided by fallback %s", primary, reason, cause, fallback))
	}
}

// singleIDs builds the one-request-per-proposer member table for the
// non-sharing dispatchers.
func singleIDs(reqs []fleet.Request) [][]int {
	ids := make([][]int, len(reqs))
	for j, r := range reqs {
		ids[j] = []int{r.ID}
	}
	return ids
}

// unitMemberIDs builds the member table for the sharing dispatchers:
// proposer-side index k is a share unit, whose events land on every
// member's trace.
func unitMemberIDs(units []share.Unit, reqs []fleet.Request) [][]int {
	ids := make([][]int, len(units))
	for k, u := range units {
		ids[k] = u.RequestIDs(reqs)
	}
	return ids
}

// fleetIDs extracts the taxi IDs aligned with the market's taxi indices.
func fleetIDs(taxis []fleet.Taxi) []int {
	ids := make([]int, len(taxis))
	for i, tx := range taxis {
		ids[i] = tx.ID
	}
	return ids
}
