package dispatch

import (
	"stabledispatch/internal/obs"
	"stabledispatch/internal/prof"
)

// Stage timing for the dispatch pipeline, one histogram series per
// stage of Algorithm 1/3 and the baselines:
//
//	idle_scan   — collecting the frame's idle fleet
//	cost_plane  — building (or memo-hitting) the frame's shared
//	              distance plane: spatial candidate pruning plus the
//	              parallel batched distance computation
//	pref_build  — market construction from the plane (pref.FromPlane
//	              or share.BuildMarketPlane)
//	cost_matrix — the baselines' request-major view of the plane
//	matching    — the stable matching (or baseline assignment) solve
//	packing     — Algorithm 3's feasible-group + set-packing stage
//
// cmd/dispatchd folds these into /v1/report and cmd/taxisim into its
// summary table.
var stageHists = map[string]*obs.Histogram{
	"idle_scan":   obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="idle_scan"}`),
	"cost_plane":  obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="cost_plane"}`),
	"pref_build":  obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="pref_build"}`),
	"cost_matrix": obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="cost_matrix"}`),
	"matching":    obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="matching"}`),
	"packing":     obs.GetOrCreateHistogram(`dispatch_stage_seconds{stage="packing"}`),
}

var obsAssignments = obs.GetOrCreateCounter("dispatch_assignments_total")

// obsDegraded counts frames the Resilient wrapper handed to its
// fallback dispatcher, by cause.
var obsDegraded = map[string]*obs.Counter{
	"deadline": obs.GetOrCreateCounter(`dispatch_degraded_frames_total{reason="deadline"}`),
	"panic":    obs.GetOrCreateCounter(`dispatch_degraded_frames_total{reason="panic"}`),
	"error":    obs.GetOrCreateCounter(`dispatch_degraded_frames_total{reason="error"}`),
}

// stageIdx maps the stage names to their prof ledger indices once, so
// the hot path pays a map lookup it was already paying for the
// histogram, not a linear name scan.
var stageIdx = map[string]int{
	"idle_scan":   prof.StageIdleScan,
	"cost_plane":  prof.StageCostPlane,
	"pref_build":  prof.StagePrefBuild,
	"cost_matrix": prof.StageCostMatrix,
	"matching":    prof.StageMatching,
	"packing":     prof.StagePacking,
}

// stageSpan is one stage measurement feeding both views: the rolling
// dispatch_stage_seconds histogram and, when a prof ledger is
// installed, the current frame's cost ledger.
type stageSpan struct {
	t obs.Timer
	p prof.Span
}

// ObserveDuration closes both sides of the span.
func (s stageSpan) ObserveDuration() {
	s.t.ObserveDuration()
	s.p.End()
}

// stageTimer starts a span against one of the named pipeline stages.
func stageTimer(stage string) stageSpan {
	return stageSpan{t: obs.StartTimer(stageHists[stage]), p: prof.Begin(stageIdx[stage])}
}
