package dispatch

import (
	"testing"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stable"
	"stabledispatch/internal/trace"
)

func smallWorld(t *testing.T, seed int64, taxis int, frames int) ([]fleet.Taxi, []fleet.Request) {
	t.Helper()
	cfg := trace.BostonConfig(frames, seed)
	cfg.RequestsPerDay = 3000
	reqs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	fl, err := trace.Taxis(cfg.City, taxis, seed+1)
	if err != nil {
		t.Fatalf("Taxis: %v", err)
	}
	return fl, reqs
}

func runSim(t *testing.T, d sim.Dispatcher, taxis []fleet.Taxi, reqs []fleet.Request) *sim.Report {
	t.Helper()
	s, err := sim.New(sim.Config{
		Dispatcher:  d,
		Params:      pref.DefaultParams(),
		DrainFrames: 600,
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run(%s): %v", d.Name(), err)
	}
	return rep
}

func TestNames(t *testing.T) {
	tests := []struct {
		d    sim.Dispatcher
		want string
	}{
		{d: NewNSTDP(), want: "NSTD-P"},
		{d: NewNSTDT(), want: "NSTD-T"},
		{d: NewGreedy(), want: "Greedy"},
		{d: NewMinCost(), want: "MinCost"},
		{d: NewBottleneck(), want: "Bottleneck"},
		{d: NewSTDP(share.DefaultPackConfig()), want: "STD-P"},
		{d: NewSTDT(share.DefaultPackConfig()), want: "STD-T"},
	}
	for _, tt := range tests {
		if got := tt.d.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestAllNonSharingDispatchersServeTraffic(t *testing.T) {
	taxis, reqs := smallWorld(t, 1, 30, 60)
	dispatchers := []sim.Dispatcher{
		NewNSTDP(), NewNSTDT(), NewGreedy(), NewMinCost(), NewBottleneck(),
	}
	for _, d := range dispatchers {
		t.Run(d.Name(), func(t *testing.T) {
			rep := runSim(t, d, taxis, reqs)
			if rep.ServedCount() == 0 {
				t.Fatalf("%s served nothing out of %d requests", d.Name(), len(reqs))
			}
			// A majority of requests must be served in a healthy
			// small world.
			if rep.ServedCount()*2 < len(reqs) {
				t.Errorf("%s served only %d/%d", d.Name(), rep.ServedCount(), len(reqs))
			}
			for _, e := range rep.Episodes {
				if e.Requests != 1 {
					t.Errorf("%s produced a shared episode (%d requests)", d.Name(), e.Requests)
				}
			}
		})
	}
}

func TestSharingDispatchersServeTraffic(t *testing.T) {
	taxis, reqs := smallWorld(t, 2, 12, 40)
	for _, d := range []sim.Dispatcher{NewSTDP(share.DefaultPackConfig()), NewSTDT(share.DefaultPackConfig())} {
		t.Run(d.Name(), func(t *testing.T) {
			rep := runSim(t, d, taxis, reqs)
			if rep.ServedCount() == 0 {
				t.Fatalf("%s served nothing", d.Name())
			}
		})
	}
}

// frameMatchingIsStable dispatches one frame by hand and verifies the
// resulting assignment is a stable matching of the frame's market.
func TestNSTDFrameMatchingIsStable(t *testing.T) {
	taxis, reqs := smallWorld(t, 3, 15, 1)
	frame := &sim.Frame{
		Number:   0,
		Requests: reqs,
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
	for _, taxi := range taxis {
		frame.Taxis = append(frame.Taxis, sim.TaxiView{ID: taxi.ID, Pos: taxi.Pos, Seats: taxi.Seats, Idle: true})
	}
	for _, d := range []*NSTD{NewNSTDP(), NewNSTDT()} {
		assignments, err := d.Dispatch(frame)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		inst, err := pref.NewInstance(reqs, taxis, frame.Metric, frame.Params)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		m := stable.NewMatching(len(reqs), len(taxis))
		reqIdx := make(map[int]int, len(reqs))
		for j, r := range reqs {
			reqIdx[r.ID] = j
		}
		taxiIdx := make(map[int]int, len(taxis))
		for i, taxi := range taxis {
			taxiIdx[taxi.ID] = i
		}
		for _, a := range assignments {
			j := reqIdx[a.Requests[0]]
			i := taxiIdx[a.TaxiID]
			m.ReqPartner[j] = i
			m.TaxiPartner[i] = j
		}
		if err := stable.IsStable(&inst.Market, m); err != nil {
			t.Errorf("%s produced an unstable frame matching: %v", d.Name(), err)
		}
	}
}

// The defining trade-off of the paper: stable dispatchers must beat the
// passenger-only baselines on taxi dissatisfaction.
func TestStableDispatchImprovesTaxiDissatisfaction(t *testing.T) {
	taxis, reqs := smallWorld(t, 4, 20, 120)

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			t.Fatal("no episodes")
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	nstd := mean(runSim(t, NewNSTDP(), taxis, reqs).TaxiDissatisfactions())
	greedy := mean(runSim(t, NewGreedy(), taxis, reqs).TaxiDissatisfactions())
	if nstd >= greedy {
		t.Errorf("NSTD-P taxi dissatisfaction %v not better than Greedy %v", nstd, greedy)
	}
}

func TestDispatchersIgnoreEmptyFrames(t *testing.T) {
	frame := &sim.Frame{Metric: geo.EuclidMetric, Params: pref.DefaultParams()}
	dispatchers := []sim.Dispatcher{
		NewNSTDP(), NewNSTDT(), NewGreedy(), NewMinCost(), NewBottleneck(),
		NewSTDP(share.DefaultPackConfig()), NewSTDT(share.DefaultPackConfig()),
	}
	for _, d := range dispatchers {
		out, err := d.Dispatch(frame)
		if err != nil || out != nil {
			t.Errorf("%s on empty frame = %v, %v", d.Name(), out, err)
		}
	}
}

func TestSTDEmitsSharedAssignments(t *testing.T) {
	// Two near-identical itineraries and one taxi: sharing must pack
	// them into a single assignment.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 6}, Frame: 0},
		{ID: 1, Pickup: geo.Point{X: 1.2}, Dropoff: geo.Point{X: 6.2}, Frame: 0},
	}
	frame := &sim.Frame{
		Requests: reqs,
		Taxis:    []sim.TaxiView{{ID: 0, Pos: geo.Point{}, Idle: true}},
		Metric:   geo.EuclidMetric,
		Params:   pref.Unbounded(),
	}
	d := NewSTDP(share.PackConfig{Theta: 5, MaxGroupSize: 3})
	out, err := d.Dispatch(frame)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d assignments, want 1 shared", len(out))
	}
	if len(out[0].Requests) != 2 {
		t.Errorf("assignment carries %d requests, want 2", len(out[0].Requests))
	}
	if err := out[0].Validate(); err != nil {
		t.Errorf("assignment invalid: %v", err)
	}
}

func TestDeterministicDispatch(t *testing.T) {
	taxis, reqs := smallWorld(t, 5, 10, 30)
	for _, mk := range []func() sim.Dispatcher{
		func() sim.Dispatcher { return NewNSTDP() },
		func() sim.Dispatcher { return NewSTDP(share.DefaultPackConfig()) },
	} {
		a := runSim(t, mk(), taxis, reqs)
		b := runSim(t, mk(), taxis, reqs)
		if a.ServedCount() != b.ServedCount() || len(a.Episodes) != len(b.Episodes) {
			t.Fatalf("%s not deterministic", mk().Name())
		}
		for i := range a.Requests {
			if a.Requests[i] != b.Requests[i] {
				t.Fatalf("%s request outcome %d differs", mk().Name(), i)
			}
		}
	}
}

func TestExtensionDispatcherNames(t *testing.T) {
	if got := NewNSTDC().Name(); got != "NSTD-C" {
		t.Errorf("Name = %q", got)
	}
	if got := NewNSTDM().Name(); got != "NSTD-M" {
		t.Errorf("Name = %q", got)
	}
}

func TestExtensionDispatchersServeTraffic(t *testing.T) {
	taxis, reqs := smallWorld(t, 6, 20, 45)
	for _, d := range []sim.Dispatcher{NewNSTDC(), NewNSTDM()} {
		t.Run(d.Name(), func(t *testing.T) {
			rep := runSim(t, d, taxis, reqs)
			if rep.ServedCount()*2 < len(reqs) {
				t.Errorf("%s served only %d/%d", d.Name(), rep.ServedCount(), len(reqs))
			}
		})
	}
}

func TestExtensionFrameMatchingsAreStable(t *testing.T) {
	taxis, reqs := smallWorld(t, 7, 12, 1)
	frame := &sim.Frame{
		Requests: reqs,
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
	for _, taxi := range taxis {
		frame.Taxis = append(frame.Taxis, sim.TaxiView{ID: taxi.ID, Pos: taxi.Pos, Seats: taxi.Seats, Idle: true})
	}
	inst, err := pref.NewInstance(reqs, taxis, frame.Metric, frame.Params)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	for _, d := range []sim.Dispatcher{NewNSTDC(), NewNSTDM()} {
		assignments, err := d.Dispatch(frame)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		m := stable.NewMatching(len(reqs), len(taxis))
		reqIdx := make(map[int]int, len(reqs))
		for j, r := range reqs {
			reqIdx[r.ID] = j
		}
		taxiIdx := make(map[int]int, len(taxis))
		for i, taxi := range taxis {
			taxiIdx[taxi.ID] = i
		}
		for _, a := range assignments {
			j := reqIdx[a.Requests[0]]
			i := taxiIdx[a.TaxiID]
			m.ReqPartner[j] = i
			m.TaxiPartner[i] = j
		}
		if err := stable.IsStable(&inst.Market, m); err != nil {
			t.Errorf("%s produced an unstable matching: %v", d.Name(), err)
		}
	}
}

func TestNSTDCMinimisesPickupAmongStable(t *testing.T) {
	// Crossed 2x2 instance with two stable matchings: the company pick
	// must have the smaller total pickup distance.
	reqs := []fleet.Request{
		{ID: 0, Pickup: geo.Point{X: 0}, Dropoff: geo.Point{X: 30}},
		{ID: 1, Pickup: geo.Point{X: 10}, Dropoff: geo.Point{X: 40}},
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 1}},
		{ID: 1, Pos: geo.Point{X: 9}},
	}
	inst, err := pref.NewInstance(reqs, taxis, geo.EuclidMetric, pref.Unbounded())
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	all := stable.AllStableMatchings(&inst.Market, 0)
	best := stable.CompanyOptimal(&inst.Market, stable.TotalPickupDistance(inst), 0)
	objective := stable.TotalPickupDistance(inst)
	for _, m := range all {
		if objective(m) < objective(best)-1e-12 {
			t.Fatalf("company pick %v beaten by %v", best.ReqPartner, m.ReqPartner)
		}
	}
}
