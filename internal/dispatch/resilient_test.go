package dispatch

import (
	"errors"
	"testing"
	"time"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
)

// fakeDispatcher misbehaves on demand: sleeps past the deadline,
// panics, or fails — while recording whether it was invoked.
type fakeDispatcher struct {
	name   string
	sleep  time.Duration
	panics bool
	err    error
	out    []fleet.Assignment
	calls  int
}

func (d *fakeDispatcher) Name() string { return d.name }

func (d *fakeDispatcher) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	d.calls++
	if d.sleep > 0 {
		time.Sleep(d.sleep)
	}
	if d.panics {
		panic("synthetic dispatcher explosion")
	}
	return d.out, d.err
}

// resilientFrame is a one-request, one-idle-taxi frame on which Greedy
// deterministically assigns taxi 3 to request 1.
func resilientFrame() *sim.Frame {
	return &sim.Frame{
		Number:   0,
		Requests: []fleet.Request{{ID: 1, Pickup: geo.Point{X: 1}, Dropoff: geo.Point{X: 2}, Seats: 1}},
		Taxis:    []sim.TaxiView{{ID: 3, Pos: geo.Point{}, Seats: 3, Idle: true}},
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
}

func degradedCount(reason string) uint64 { return obsDegraded[reason].Value() }

func TestResilientHealthyPrimaryPassesThrough(t *testing.T) {
	want := []fleet.Assignment{{TaxiID: 99, Requests: []int{1}}}
	primary := &fakeDispatcher{name: "ok", out: want}
	fallback := &fakeDispatcher{name: "never"}
	r := NewResilient(primary, fallback, time.Second)
	before := degradedCount("deadline") + degradedCount("panic") + degradedCount("error")
	got, err := r.Dispatch(resilientFrame())
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if len(got) != 1 || got[0].TaxiID != 99 {
		t.Fatalf("got %+v, want the primary's assignment", got)
	}
	if fallback.calls != 0 {
		t.Error("fallback invoked on a healthy frame")
	}
	after := degradedCount("deadline") + degradedCount("panic") + degradedCount("error")
	if after != before {
		t.Errorf("degraded counter moved %d→%d on a healthy frame", before, after)
	}
	if r.Name() != "ok+failsafe" {
		t.Errorf("Name() = %q", r.Name())
	}
}

func TestResilientDeadlineDegradesToFallback(t *testing.T) {
	const deadline = 30 * time.Millisecond
	primary := &fakeDispatcher{name: "slow", sleep: 2 * time.Second}
	r := NewResilient(primary, nil, deadline) // nil fallback → Greedy
	before := degradedCount("deadline")
	start := time.Now()
	got, err := r.Dispatch(resilientFrame())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	// The frame still completes: Greedy assigns the only idle taxi.
	if len(got) != 1 || got[0].TaxiID != 3 || len(got[0].Requests) != 1 || got[0].Requests[0] != 1 {
		t.Fatalf("fallback assignments = %+v, want taxi 3 → request 1", got)
	}
	if degradedCount("deadline") != before+1 {
		t.Error("dispatch_degraded_frames_total{reason=\"deadline\"} not incremented")
	}
	// Frame latency is bounded by the deadline plus the fallback's
	// (near-instant on one taxi) cost — nowhere near the primary's 2s.
	if elapsed > deadline+500*time.Millisecond {
		t.Errorf("frame took %v, want ≈ deadline %v + fallback cost", elapsed, deadline)
	}
}

func TestResilientPanicDegradesToFallback(t *testing.T) {
	primary := &fakeDispatcher{name: "boom", panics: true}
	fallback := &fakeDispatcher{name: "safe", out: []fleet.Assignment{{TaxiID: 3, Requests: []int{1}}}}
	r := NewResilient(primary, fallback, time.Second)
	before := degradedCount("panic")
	got, err := r.Dispatch(resilientFrame())
	if err != nil {
		t.Fatalf("Dispatch after primary panic: %v", err)
	}
	if fallback.calls != 1 {
		t.Fatalf("fallback calls = %d, want 1", fallback.calls)
	}
	if len(got) != 1 || got[0].TaxiID != 3 {
		t.Fatalf("got %+v, want the fallback's assignment", got)
	}
	if degradedCount("panic") != before+1 {
		t.Error("dispatch_degraded_frames_total{reason=\"panic\"} not incremented")
	}
}

func TestResilientErrorDegradesToFallback(t *testing.T) {
	primary := &fakeDispatcher{name: "bad", err: errors.New("solver wedged")}
	fallback := &fakeDispatcher{name: "safe"}
	r := NewResilient(primary, fallback, time.Second)
	before := degradedCount("error")
	if _, err := r.Dispatch(resilientFrame()); err != nil {
		t.Fatalf("Dispatch after primary error: %v", err)
	}
	if fallback.calls != 1 {
		t.Fatalf("fallback calls = %d, want 1", fallback.calls)
	}
	if degradedCount("error") != before+1 {
		t.Error("dispatch_degraded_frames_total{reason=\"error\"} not incremented")
	}
}

func TestResilientFallbackPanicSurfacesAsError(t *testing.T) {
	primary := &fakeDispatcher{name: "boom", panics: true}
	fallback := &fakeDispatcher{name: "alsoboom", panics: true}
	r := NewResilient(primary, fallback, time.Second)
	if _, err := r.Dispatch(resilientFrame()); err == nil {
		t.Fatal("both dispatchers panicked but Dispatch returned nil error")
	}
}

// TestResilientFrameLatencyBounded runs many frames against a primary
// that alternates healthy and pathological behaviour and checks the
// p99 frame latency stays bounded by deadline + fallback cost.
func TestResilientFrameLatencyBounded(t *testing.T) {
	const deadline = 20 * time.Millisecond
	frame := resilientFrame()
	var latencies []time.Duration
	for i := 0; i < 30; i++ {
		var primary sim.Dispatcher
		switch i % 3 {
		case 0:
			primary = &fakeDispatcher{name: "ok", out: nil}
		case 1:
			primary = &fakeDispatcher{name: "slow", sleep: time.Second}
		default:
			primary = &fakeDispatcher{name: "boom", panics: true}
		}
		r := NewResilient(primary, &fakeDispatcher{name: "safe"}, deadline)
		start := time.Now()
		if _, err := r.Dispatch(frame); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		latencies = append(latencies, time.Since(start))
	}
	worst := time.Duration(0)
	for _, l := range latencies {
		if l > worst {
			worst = l
		}
	}
	if worst > deadline+500*time.Millisecond {
		t.Errorf("worst frame latency %v, want bounded by deadline %v + fallback cost", worst, deadline)
	}
}
