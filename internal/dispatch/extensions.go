package dispatch

import (
	"fmt"

	"stabledispatch/internal/fleet"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stable"
)

// enumerationCap bounds Algorithm 2's output inside per-frame
// dispatchers. Metric-derived markets almost always have a handful of
// stable matchings; the cap is a safety valve against adversarial ties.
const enumerationCap = 256

// NSTDC is the company-side extension the paper sketches in §IV-D: run
// Algorithm 2 to enumerate all stable matchings of the frame and let the
// platform pick the one it likes best. Since every stable matching serves
// the same requests (Theorem 2 and its mirror), commission revenue is
// fixed; the platform's remaining lever is fleet efficiency, so the
// default objective minimises the total idle (pickup) distance.
type NSTDC struct{}

var _ sim.Dispatcher = (*NSTDC)(nil)

// NewNSTDC returns the company-optimal stable dispatcher.
func NewNSTDC() *NSTDC { return &NSTDC{} }

// Name implements sim.Dispatcher.
func (d *NSTDC) Name() string { return "NSTD-C" }

// Dispatch implements sim.Dispatcher.
func (d *NSTDC) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	taxis := idleFleet(f)
	if len(taxis) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	inst, err := prunedInstance(f, taxis)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	// The enumeration has no per-proposal observer; building the tracer
	// still records each request's candidate shortlist for the explain
	// surface.
	_ = newFrameTracer(f.Number, &inst.Market, singleIDs(f.Requests), fleetIDs(taxis))
	tm := stageTimer("matching")
	m := stable.CompanyOptimal(&inst.Market, stable.TotalPickupDistance(inst), enumerationCap)
	tm.ObserveDuration()
	out := singleRides(m, taxis, f.Requests)
	obsAssignments.Add(uint64(len(out)))
	return out, nil
}

// NSTDM selects the median stable matching of each frame — the fairness
// compromise between the passenger-optimal and taxi-optimal extremes
// (the median-stable-matching line of work the paper cites as [13]).
type NSTDM struct{}

var _ sim.Dispatcher = (*NSTDM)(nil)

// NewNSTDM returns the median stable dispatcher.
func NewNSTDM() *NSTDM { return &NSTDM{} }

// Name implements sim.Dispatcher.
func (d *NSTDM) Name() string { return "NSTD-M" }

// Dispatch implements sim.Dispatcher.
func (d *NSTDM) Dispatch(f *sim.Frame) ([]fleet.Assignment, error) {
	taxis := idleFleet(f)
	if len(taxis) == 0 || len(f.Requests) == 0 {
		return nil, nil
	}
	inst, err := prunedInstance(f, taxis)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	_ = newFrameTracer(f.Number, &inst.Market, singleIDs(f.Requests), fleetIDs(taxis))
	tm := stageTimer("matching")
	m := stable.MedianStable(&inst.Market, enumerationCap)
	tm.ObserveDuration()
	out := singleRides(m, taxis, f.Requests)
	obsAssignments.Add(uint64(len(out)))
	return out, nil
}

// singleRides converts a non-sharing matching into assignments.
func singleRides(m stable.Matching, taxis []fleet.Taxi, reqs []fleet.Request) []fleet.Assignment {
	var out []fleet.Assignment
	for j, i := range m.ReqPartner {
		if i != stable.Unmatched {
			out = append(out, fleet.SingleRide(taxis[i].ID, reqs[j]))
		}
	}
	return out
}
