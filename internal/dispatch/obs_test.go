package dispatch

import (
	"testing"

	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
)

// TestDispatchRecordsStageSpans runs one NSTD and one STD frame and
// checks every pipeline stage histogram advanced.
func TestDispatchRecordsStageSpans(t *testing.T) {
	taxis, reqs := smallWorld(t, 11, 12, 30)
	if len(reqs) == 0 {
		t.Fatal("trace generated no requests")
	}
	frame := &sim.Frame{
		Number:   0,
		Requests: reqs,
		Metric:   geo.EuclidMetric,
		Params:   pref.DefaultParams(),
	}
	for _, taxi := range taxis {
		frame.Taxis = append(frame.Taxis, sim.TaxiView{ID: taxi.ID, Pos: taxi.Pos, Seats: taxi.Seats, Idle: true})
	}

	counts := func() map[string]uint64 {
		out := make(map[string]uint64, len(stageHists))
		for stage, h := range stageHists {
			out[stage] = h.Count()
		}
		return out
	}

	before := counts()
	if _, err := NewNSTDP().Dispatch(frame); err != nil {
		t.Fatalf("NSTD-P: %v", err)
	}
	if _, err := NewSTDP(share.DefaultPackConfig()).Dispatch(frame); err != nil {
		t.Fatalf("STD-P: %v", err)
	}
	if _, err := NewGreedy().Dispatch(frame); err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	after := counts()
	for _, stage := range []string{"idle_scan", "pref_build", "matching", "packing", "cost_matrix"} {
		if after[stage] <= before[stage] {
			t.Errorf("stage %q count did not advance: %d → %d", stage, before[stage], after[stage])
		}
	}

	proposals := obs.GetOrCreateCounter("stable_gs_proposals_total")
	if proposals.Value() == 0 {
		t.Error("stable_gs_proposals_total = 0 after stable dispatches")
	}
}
