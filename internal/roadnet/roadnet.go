// Package roadnet implements the road-network substrate the paper's
// distance function D(·,·) is defined over: a weighted undirected graph
// of road intersections with shortest-path queries.
//
// The package provides a perturbed-grid city generator (Manhattan-style
// street grids with randomly missing segments and jittered intersections),
// a binary-heap Dijkstra, path extraction for taxi movement, and an
// adapter that exposes the network as a geo.Metric.
package roadnet

import (
	"errors"
	"fmt"
	"math"

	"stabledispatch/internal/geo"
)

// ErrDisconnected is returned when no path exists between two nodes.
var ErrDisconnected = errors.New("roadnet: nodes are disconnected")

type edge struct {
	to     int
	weight float64
}

// Graph is an undirected road network. Nodes are intersections with
// planar coordinates; edges are road segments weighted by length.
type Graph struct {
	nodes []geo.Point
	adj   [][]edge
}

// NewGraph returns an empty graph with capacity for n nodes.
func NewGraph(n int) *Graph {
	return &Graph{
		nodes: make([]geo.Point, 0, n),
		adj:   make([][]edge, 0, n),
	}
}

// AddNode inserts an intersection and returns its index.
func (g *Graph) AddNode(p geo.Point) int {
	g.nodes = append(g.nodes, p)
	g.adj = append(g.adj, nil)
	return len(g.nodes) - 1
}

// AddEdge inserts an undirected road segment between nodes u and v with
// the given length. It returns an error if either endpoint is out of
// range or the weight is negative.
func (g *Graph) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		return fmt.Errorf("roadnet: edge (%d, %d) out of range [0, %d)", u, v, len(g.nodes))
	}
	if weight < 0 {
		return fmt.Errorf("roadnet: negative edge weight %v", weight)
	}
	g.adj[u] = append(g.adj[u], edge{to: v, weight: weight})
	g.adj[v] = append(g.adj[v], edge{to: u, weight: weight})
	return nil
}

// AddRoad inserts an edge weighted by the Euclidean distance between the
// two intersections.
func (g *Graph) AddRoad(u, v int) error {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		return fmt.Errorf("roadnet: road (%d, %d) out of range [0, %d)", u, v, len(g.nodes))
	}
	return g.AddEdge(u, v, geo.Euclid(g.nodes[u], g.nodes[v]))
}

// NumNodes returns the number of intersections.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected road segments.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Node returns the coordinates of intersection i.
func (g *Graph) Node(i int) geo.Point { return g.nodes[i] }

// Degree returns the number of segments incident to node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Nearest returns the index of the intersection closest to p, or -1 for
// an empty graph. It is a linear scan; callers on hot paths should keep a
// spatial index instead.
func (g *Graph) Nearest(p geo.Point) int {
	best, bestDist := -1, math.Inf(1)
	for i, n := range g.nodes {
		if d := geo.Euclid(p, n); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// ShortestDistances runs Dijkstra from src and returns the distance to
// every node (math.Inf(1) for unreachable nodes).
func (g *Graph) ShortestDistances(src int) []float64 {
	dist, _ := g.dijkstra(src, -1)
	return dist
}

// ShortestPath returns the node sequence of a shortest path from src to
// dst, inclusive of both endpoints, and its total length.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, error) {
	if src == dst {
		return []int{src}, 0, nil
	}
	dist, prev := g.dijkstra(src, dst)
	if math.IsInf(dist[dst], 1) {
		return nil, 0, ErrDisconnected
	}
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	path := make([]int, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path, dist[dst], nil
}

// dijkstra computes single-source shortest paths. If dst >= 0 the search
// stops as soon as dst is settled.
func (g *Graph) dijkstra(src, dst int) (dist []float64, prev []int) {
	n := len(g.nodes)
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0

	h := &minHeap{}
	h.push(heapItem{node: src, dist: 0})
	settled := make([]bool, n)
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == dst {
			return dist, prev
		}
		for _, e := range g.adj[u] {
			if alt := dist[u] + e.weight; alt < dist[e.to] {
				dist[e.to] = alt
				prev[e.to] = u
				h.push(heapItem{node: e.to, dist: alt})
			}
		}
	}
	return dist, prev
}

type heapItem struct {
	node int
	dist float64
}

// minHeap is a binary heap of (node, dist) keyed on dist. A hand-rolled
// heap avoids the interface boxing of container/heap on this hot path.
type minHeap struct {
	items []heapItem
}

func (h *minHeap) len() int { return len(h.items) }

func (h *minHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *minHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].dist < h.items[smallest].dist {
			smallest = l
		}
		if r < last && h.items[r].dist < h.items[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
