package roadnet

import (
	"math"

	"stabledispatch/internal/geo"
)

// AStarPath returns a shortest path between two nodes using A* with the
// straight-line distance as the heuristic. The heuristic is admissible —
// and the result guaranteed to match Dijkstra — when every segment is at
// least as long as the straight line between its endpoints, which AddRoad
// and the grid generator guarantee; graphs with hand-set shorter weights
// should use ShortestPath instead. On point-to-point queries A* settles
// far fewer nodes, which is what live routing wants.
func (g *Graph) AStarPath(src, dst int) ([]int, float64, error) {
	if src == dst {
		return []int{src}, 0, nil
	}
	n := len(g.nodes)
	gScore := make([]float64, n)
	prev := make([]int, n)
	settled := make([]bool, n)
	for i := range gScore {
		gScore[i] = math.Inf(1)
		prev[i] = -1
	}
	gScore[src] = 0
	target := g.nodes[dst]
	h := func(i int) float64 { return geo.Euclid(g.nodes[i], target) }

	open := &minHeap{}
	open.push(heapItem{node: src, dist: h(src)})
	for open.len() > 0 {
		it := open.pop()
		u := it.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == dst {
			var rev []int
			for at := dst; at != -1; at = prev[at] {
				rev = append(rev, at)
			}
			path := make([]int, len(rev))
			for i, node := range rev {
				path[len(rev)-1-i] = node
			}
			return path, gScore[dst], nil
		}
		for _, e := range g.adj[u] {
			if alt := gScore[u] + e.weight; alt < gScore[e.to] {
				gScore[e.to] = alt
				prev[e.to] = u
				open.push(heapItem{node: e.to, dist: alt + h(e.to)})
			}
		}
	}
	return nil, 0, ErrDisconnected
}
