package roadnet

import (
	"sync"
	"testing"

	"stabledispatch/internal/geo"
)

// TestCacheStatsFIFOEviction drives the sharded Dijkstra memo through
// its per-shard FIFO eviction policy and checks every counter. Capacity
// 2 splits into two shards (sources assigned by node id & 1) of one
// table each, so odd and even sources evict independently.
func TestCacheStatsFIFOEviction(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 3, Cols: 3, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetric(g, 2)
	if got := len(m.shards); got != 2 {
		t.Fatalf("capacity 2 split into %d shards, want 2", got)
	}
	node := func(i int) geo.Point { return g.Node(i) }

	if got := m.CacheStats(); got != (CacheStats{}) {
		t.Fatalf("fresh metric stats = %+v, want zero", got)
	}

	// Distinct sources 0, 1, 2: three misses. Sources 0 and 2 share the
	// even shard (capacity 1), so inserting source 2 evicts source 0;
	// source 1 sits alone in the odd shard.
	m.Distance(node(0), node(5))
	m.Distance(node(1), node(5))
	m.Distance(node(2), node(5))
	if got := m.CacheStats(); got.Misses != 3 || got.Hits != 0 || got.Evictions != 1 || got.Size != 2 {
		t.Errorf("after 3 sources: %+v, want 3 misses, 1 eviction, size 2", got)
	}

	// Source 1 is still cached: a hit. Source 8 maps to the even shard
	// and evicts source 2 — there is no reverse-table shortcut, so a
	// cached destination never counts as a hit.
	m.Distance(node(1), node(7))
	m.Distance(node(8), node(2))
	if got := m.CacheStats(); got.Hits != 1 || got.Misses != 4 || got.Evictions != 2 {
		t.Errorf("after mixed probes: %+v, want 1 hit, 4 misses, 2 evictions", got)
	}

	// Source 0 was evicted from the even shard (a miss, evicting source
	// 8); source 1 still occupies the odd shard (a hit).
	m.Distance(node(0), node(5))
	m.Distance(node(1), node(5))
	if got := m.CacheStats(); got.Hits != 2 || got.Misses != 5 || got.Evictions != 3 || got.Size != 2 {
		t.Errorf("after re-querying: %+v, want 2 hits, 5 misses, 3 evictions, size 2", got)
	}

	// Same-node queries short-circuit before the cache.
	before := m.CacheStats()
	m.Distance(node(4), node(4))
	if got := m.CacheStats(); got != before {
		t.Errorf("same-node query changed stats: %+v → %+v", before, got)
	}
}

// TestShardCountFor pins the shard-sizing policy: the largest power of
// two ≤ min(capacity, maxCacheShards).
func TestShardCountFor(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8},
		{15, 8}, {16, 16}, {100, 16}, {4096, 16},
	}
	for _, c := range cases {
		if got := shardCountFor(c.capacity); got != c.want {
			t.Errorf("shardCountFor(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
	// The per-shard budgets must sum to exactly the requested capacity.
	g, err := NewGrid(GridConfig{Rows: 2, Cols: 2, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{1, 3, 5, 17, 100} {
		m := NewMetric(g, capacity)
		total := 0
		for i := range m.shards {
			if m.shards[i].capacity < 1 {
				t.Errorf("capacity %d: shard %d has budget %d", capacity, i, m.shards[i].capacity)
			}
			total += m.shards[i].capacity
		}
		if total != capacity {
			t.Errorf("capacity %d: shard budgets sum to %d", capacity, total)
		}
	}
}

// TestDistancesFromMatchesDistance checks the batch API is bit-identical
// to per-pair Distance calls, including the off-graph Euclid fallback
// and the same-node short-circuit.
func TestDistancesFromMatchesDistance(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Spacing: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetric(g, 4)
	srcs := []geo.Point{
		g.Node(0),
		{X: 0.31, Y: 1.17},
		{X: 2.0, Y: 0.05},
	}
	dsts := []geo.Point{
		g.Node(0), g.Node(5), g.Node(15),
		{X: 0.31, Y: 1.17},
		{X: 1.44, Y: 1.44},
	}
	for _, src := range srcs {
		got := m.DistancesFrom(src, dsts)
		if len(got) != len(dsts) {
			t.Fatalf("DistancesFrom returned %d values for %d destinations", len(got), len(dsts))
		}
		for i, d := range dsts {
			want := m.Distance(src, d)
			if got[i] != want {
				t.Errorf("DistancesFrom(%v)[%d] = %v, Distance(%v, %v) = %v", src, i, got[i], src, d, want)
			}
		}
	}
}

// TestCacheConcurrentReaders hammers the sharded memo from many
// goroutines under -race: every concurrently observed distance must be
// bit-identical to the serially computed value, and the shard counters
// must add up (each probe is exactly one hit or one miss, with size
// never above capacity).
func TestCacheConcurrentReaders(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 5, Cols: 5, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 8 over 25 sources forces concurrent evictions too.
	m := NewMetric(g, 8)
	n := g.NumNodes()

	want := make([][]float64, n)
	serial := NewMetric(g, n)
	for u := 0; u < n; u++ {
		pts := make([]geo.Point, n)
		for v := 0; v < n; v++ {
			pts[v] = g.Node(v)
		}
		want[u] = serial.DistancesFrom(g.Node(u), pts)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for u := 0; u < n; u++ {
					src := (u + w*3) % n
					for v := 0; v < n; v++ {
						got := m.Distance(g.Node(src), g.Node(v))
						if got != want[src][v] {
							t.Errorf("concurrent Distance(%d,%d) = %v, want %v", src, v, got, want[src][v])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	s := m.CacheStats()
	if s.Size > 8 {
		t.Errorf("cache size %d exceeds capacity 8", s.Size)
	}
	// Each same-shard probe is exactly one hit or one miss; same-node
	// queries short-circuit. goroutines × reps × n sources × (n-1)
	// destinations, one probe each.
	wantProbes := uint64(goroutines * 3 * n * (n - 1))
	if s.Hits+s.Misses != wantProbes {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d probes", s.Hits, s.Misses, s.Hits+s.Misses, wantProbes)
	}
	if s.Misses < uint64(len(m.shards)) {
		t.Errorf("misses = %d, want at least one per shard", s.Misses)
	}
}
