package roadnet

import (
	"testing"

	"stabledispatch/internal/geo"
)

// TestCacheStatsFIFOEviction drives the Dijkstra memo through its FIFO
// eviction policy with a capacity of 2 and checks every counter.
func TestCacheStatsFIFOEviction(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 3, Cols: 3, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetric(g, 2)
	node := func(i int) geo.Point { return g.Node(i) }

	if got := m.CacheStats(); got != (CacheStats{}) {
		t.Fatalf("fresh metric stats = %+v, want zero", got)
	}

	// Distinct sources 0, 1, 2: three misses; inserting source 2 evicts
	// source 0 (FIFO).
	m.Distance(node(0), node(5))
	m.Distance(node(1), node(5))
	m.Distance(node(2), node(5))
	if got := m.CacheStats(); got.Misses != 3 || got.Hits != 0 || got.Evictions != 1 || got.Size != 2 {
		t.Errorf("after 3 sources: %+v, want 3 misses, 1 eviction, size 2", got)
	}

	// Sources 1 and 2 are still cached: two hits, no new eviction. The
	// reverse lookup (cached destination table) counts as a hit too.
	m.Distance(node(1), node(7))
	m.Distance(node(8), node(2))
	if got := m.CacheStats(); got.Hits != 2 || got.Misses != 3 || got.Evictions != 1 {
		t.Errorf("after cached sources: %+v, want 2 hits", got)
	}

	// Source 0 was evicted: a miss, and FIFO now evicts source 1.
	m.Distance(node(0), node(5))
	m.Distance(node(1), node(5))
	if got := m.CacheStats(); got.Misses != 5 || got.Evictions != 3 || got.Size != 2 {
		t.Errorf("after re-querying evicted sources: %+v, want 5 misses, 3 evictions", got)
	}

	// Same-node queries short-circuit before the cache.
	before := m.CacheStats()
	m.Distance(node(4), node(4))
	if got := m.CacheStats(); got != before {
		t.Errorf("same-node query changed stats: %+v → %+v", before, got)
	}
}
