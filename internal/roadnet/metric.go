package roadnet

import (
	"math"
	"sync"
	"sync/atomic"

	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/spatial"
)

// Cache telemetry shared by every Metric instance in the process; the
// per-instance breakdown is available through CacheStats.
var (
	obsCacheHits      = obs.GetOrCreateCounter("roadnet_cache_hits_total")
	obsCacheMisses    = obs.GetOrCreateCounter("roadnet_cache_misses_total")
	obsCacheEvictions = obs.GetOrCreateCounter("roadnet_cache_evictions_total")
	obsCacheSize      = obs.GetOrCreateGauge("roadnet_cache_size")
)

// maxCacheShards bounds the shard fan-out; sixteen shards is enough to
// take lock contention off the profile for any worker count the cost
// plane runs (Workers defaults to GOMAXPROCS).
const maxCacheShards = 16

// cacheShard is one slice of the Dijkstra memo: a source-node → distance
// table map with its own lock, FIFO order, and counters. Sources are
// assigned to shards by node id (u & shardMask), so concurrent queries
// from different sources rarely contend on the same lock.
type cacheShard struct {
	mu       sync.Mutex
	tables   map[int][]float64
	order    []int // FIFO eviction order of cached sources
	capacity int

	hits, misses, evictions uint64 // guarded by mu
}

// Metric adapts a Graph to the geo.Metric interface. Arbitrary points are
// snapped to their nearest intersection; the travel distance is the walk
// to the snap node, the shortest path between snap nodes, and the walk
// from the destination snap node.
//
// Single-source Dijkstra results are memoised per source node, so a batch
// of distance queries from the same origin (the common pattern when
// building preference lists) costs one graph traversal. The memo is
// sharded by source node — each shard has its own mutex and FIFO order —
// so concurrent readers (the cost-plane worker pool) do not serialise on
// a single lock. Lookups use only the forward table of the query's own
// source: a reverse-table shortcut (reading cache[v][u]) would return a
// value whose floating-point rounding depends on which tables happen to
// be resident, breaking the bit-determinism contract that distances are
// independent of cache state.
type Metric struct {
	graph *Graph
	snap  *spatial.Index

	shards    []cacheShard
	shardMask int
	size      atomic.Int64 // total cached tables across shards
}

// CacheStats is a point-in-time view of the Dijkstra memo: cumulative
// hits/misses/evictions and the current number of cached source tables,
// summed across shards.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
}

// CacheStats returns the metric's cache counters. Same-node queries
// short-circuit before the cache and are not counted.
func (m *Metric) CacheStats() CacheStats {
	var s CacheStats
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		s.Size += len(sh.tables)
		sh.mu.Unlock()
	}
	return s
}

var (
	_ geo.Metric      = (*Metric)(nil)
	_ geo.BatchMetric = (*Metric)(nil)
)

// shardCountFor returns the number of cache shards for a given table
// capacity: the largest power of two that is ≤ capacity and ≤
// maxCacheShards. A capacity-1 cache gets a single shard so FIFO
// behaviour degenerates to the unsharded design.
func shardCountFor(capacity int) int {
	n := 1
	for n*2 <= capacity && n*2 <= maxCacheShards {
		n *= 2
	}
	return n
}

// NewMetric returns a Metric over g caching up to cacheSources
// single-source shortest-path tables (minimum 1). The budget is split
// across power-of-two shards; shards earlier in index order absorb the
// remainder so the total capacity is exactly cacheSources.
func NewMetric(g *Graph, cacheSources int) *Metric {
	if cacheSources < 1 {
		cacheSources = 1
	}
	bounds := graphBounds(g)
	snap := spatial.NewIndex(bounds, snapCellSize(bounds, g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		snap.Insert(i, g.Node(i))
	}
	n := shardCountFor(cacheSources)
	shards := make([]cacheShard, n)
	base, extra := cacheSources/n, cacheSources%n
	for i := range shards {
		budget := base
		if i < extra {
			budget++
		}
		shards[i] = cacheShard{
			tables:   make(map[int][]float64, budget),
			capacity: budget,
		}
	}
	return &Metric{
		graph:     g,
		snap:      snap,
		shards:    shards,
		shardMask: n - 1,
	}
}

// Graph returns the underlying road network.
func (m *Metric) Graph() *Graph { return m.graph }

// Snap returns the nearest intersection to p, or -1 for an empty graph.
func (m *Metric) Snap(p geo.Point) int {
	id, _, ok := m.snap.Nearest(p)
	if !ok {
		return -1
	}
	return id
}

// Distance implements geo.Metric.
func (m *Metric) Distance(a, b geo.Point) float64 {
	u := m.Snap(a)
	v := m.Snap(b)
	if u < 0 || v < 0 {
		return geo.Euclid(a, b)
	}
	walkIn := geo.Euclid(a, m.graph.Node(u))
	walkOut := geo.Euclid(m.graph.Node(v), b)
	return walkIn + m.nodeDistance(u, v) + walkOut
}

// DistancesFrom implements geo.BatchMetric: the distance from src to
// every destination, bit-identical to calling Distance per pair, at the
// cost of a single cache probe (one Dijkstra traversal on a miss) for
// the whole batch.
func (m *Metric) DistancesFrom(src geo.Point, dsts []geo.Point) []float64 {
	out := make([]float64, len(dsts))
	u := m.Snap(src)
	if u < 0 {
		for i, d := range dsts {
			out[i] = geo.Euclid(src, d)
		}
		return out
	}
	walkIn := geo.Euclid(src, m.graph.Node(u))
	var table []float64 // fetched on the first destination that needs it
	for i, d := range dsts {
		v := m.Snap(d)
		if v < 0 {
			out[i] = geo.Euclid(src, d)
			continue
		}
		walkOut := geo.Euclid(m.graph.Node(v), d)
		nd := 0.0
		if v != u {
			if table == nil {
				table = m.sourceTable(u)
			}
			nd = table[v]
		}
		out[i] = walkIn + nd + walkOut
	}
	return out
}

// Path returns the intersection sequence of a shortest path between the
// snap nodes of a and b.
func (m *Metric) Path(a, b geo.Point) ([]geo.Point, error) {
	u := m.Snap(a)
	v := m.Snap(b)
	nodes, _, err := m.graph.ShortestPath(u, v)
	if err != nil {
		return nil, err
	}
	pts := make([]geo.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = m.graph.Node(n)
	}
	return pts, nil
}

func (m *Metric) nodeDistance(u, v int) float64 {
	if u == v {
		return 0
	}
	return m.sourceTable(u)[v]
}

// sourceTable returns the full shortest-distance table from u, memoised
// in u's shard. The Dijkstra run happens under the shard lock so a
// source is never computed twice; other shards stay available
// throughout. Cached tables are never mutated after insertion, so the
// returned slice is safe to read after the lock is released — even if
// the entry is evicted in the meantime.
func (m *Metric) sourceTable(u int) []float64 {
	sh := &m.shards[u&m.shardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d, ok := sh.tables[u]; ok {
		sh.hits++
		obsCacheHits.Inc()
		return d
	}
	sh.misses++
	obsCacheMisses.Inc()
	dist := m.graph.ShortestDistances(u)
	if len(sh.tables) >= sh.capacity {
		oldest := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.tables, oldest)
		sh.evictions++
		obsCacheEvictions.Inc()
		m.size.Add(-1)
	}
	sh.tables[u] = dist
	sh.order = append(sh.order, u)
	obsCacheSize.Set(float64(m.size.Add(1)))
	return dist
}

func graphBounds(g *Graph) geo.Rect {
	if g.NumNodes() == 0 {
		return geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1})
	}
	r := geo.NewRect(g.Node(0), g.Node(0))
	for i := 1; i < g.NumNodes(); i++ {
		p := g.Node(i)
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

func snapCellSize(bounds geo.Rect, n int) float64 {
	if n < 1 {
		n = 1
	}
	area := bounds.Width() * bounds.Height()
	if area <= 0 {
		return 1
	}
	// Aim for roughly one node per cell.
	size := area / float64(n)
	if size <= 0 {
		return 1
	}
	return math.Sqrt(size)
}
