package roadnet

import (
	"math"
	"sync"

	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/spatial"
)

// Cache telemetry shared by every Metric instance in the process; the
// per-instance breakdown is available through CacheStats.
var (
	obsCacheHits      = obs.GetOrCreateCounter("roadnet_cache_hits_total")
	obsCacheMisses    = obs.GetOrCreateCounter("roadnet_cache_misses_total")
	obsCacheEvictions = obs.GetOrCreateCounter("roadnet_cache_evictions_total")
	obsCacheSize      = obs.GetOrCreateGauge("roadnet_cache_size")
)

// Metric adapts a Graph to the geo.Metric interface. Arbitrary points are
// snapped to their nearest intersection; the travel distance is the walk
// to the snap node, the shortest path between snap nodes, and the walk
// from the destination snap node.
//
// Single-source Dijkstra results are memoised per source node, so a batch
// of distance queries from the same origin (the common pattern when
// building preference lists) costs one graph traversal. The cache is
// bounded and safe for concurrent use.
type Metric struct {
	graph *Graph
	snap  *spatial.Index

	mu       sync.Mutex
	cache    map[int][]float64
	order    []int // FIFO eviction order of cached sources
	capacity int

	hits, misses, evictions uint64 // guarded by mu
}

// CacheStats is a point-in-time view of the Dijkstra memo: cumulative
// hits/misses/evictions and the current number of cached source tables.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
}

// CacheStats returns the metric's cache counters. Same-node queries
// short-circuit before the cache and are not counted.
func (m *Metric) CacheStats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return CacheStats{
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
		Size:      len(m.cache),
	}
}

var _ geo.Metric = (*Metric)(nil)

// NewMetric returns a Metric over g caching up to cacheSources
// single-source shortest-path tables (minimum 1).
func NewMetric(g *Graph, cacheSources int) *Metric {
	if cacheSources < 1 {
		cacheSources = 1
	}
	bounds := graphBounds(g)
	snap := spatial.NewIndex(bounds, snapCellSize(bounds, g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		snap.Insert(i, g.Node(i))
	}
	return &Metric{
		graph:    g,
		snap:     snap,
		cache:    make(map[int][]float64, cacheSources),
		capacity: cacheSources,
	}
}

// Graph returns the underlying road network.
func (m *Metric) Graph() *Graph { return m.graph }

// Snap returns the nearest intersection to p, or -1 for an empty graph.
func (m *Metric) Snap(p geo.Point) int {
	id, _, ok := m.snap.Nearest(p)
	if !ok {
		return -1
	}
	return id
}

// Distance implements geo.Metric.
func (m *Metric) Distance(a, b geo.Point) float64 {
	u := m.Snap(a)
	v := m.Snap(b)
	if u < 0 || v < 0 {
		return geo.Euclid(a, b)
	}
	walkIn := geo.Euclid(a, m.graph.Node(u))
	walkOut := geo.Euclid(m.graph.Node(v), b)
	return walkIn + m.nodeDistance(u, v) + walkOut
}

// Path returns the intersection sequence of a shortest path between the
// snap nodes of a and b.
func (m *Metric) Path(a, b geo.Point) ([]geo.Point, error) {
	u := m.Snap(a)
	v := m.Snap(b)
	nodes, _, err := m.graph.ShortestPath(u, v)
	if err != nil {
		return nil, err
	}
	pts := make([]geo.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = m.graph.Node(n)
	}
	return pts, nil
}

func (m *Metric) nodeDistance(u, v int) float64 {
	if u == v {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.cache[u]; ok {
		m.hits++
		obsCacheHits.Inc()
		return d[v]
	}
	if d, ok := m.cache[v]; ok {
		m.hits++
		obsCacheHits.Inc()
		return d[u]
	}
	m.misses++
	obsCacheMisses.Inc()
	dist := m.graph.ShortestDistances(u)
	if len(m.cache) >= m.capacity {
		oldest := m.order[0]
		m.order = m.order[1:]
		delete(m.cache, oldest)
		m.evictions++
		obsCacheEvictions.Inc()
	}
	m.cache[u] = dist
	m.order = append(m.order, u)
	obsCacheSize.Set(float64(len(m.cache)))
	return dist[v]
}

func graphBounds(g *Graph) geo.Rect {
	if g.NumNodes() == 0 {
		return geo.NewRect(geo.Point{}, geo.Point{X: 1, Y: 1})
	}
	r := geo.NewRect(g.Node(0), g.Node(0))
	for i := 1; i < g.NumNodes(); i++ {
		p := g.Node(i)
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

func snapCellSize(bounds geo.Rect, n int) float64 {
	if n < 1 {
		n = 1
	}
	area := bounds.Width() * bounds.Height()
	if area <= 0 {
		return 1
	}
	// Aim for roughly one node per cell.
	size := area / float64(n)
	if size <= 0 {
		return 1
	}
	return math.Sqrt(size)
}
