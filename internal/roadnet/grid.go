package roadnet

import (
	"fmt"
	"math/rand"

	"stabledispatch/internal/geo"
)

// GridConfig describes a perturbed-grid city: rows × cols intersections
// spaced `Spacing` kilometres apart, with intersection positions jittered
// by up to Jitter·Spacing and each street segment independently removed
// with probability DropProb (while keeping the network connected).
type GridConfig struct {
	Rows     int
	Cols     int
	Spacing  float64 // block length in km
	Jitter   float64 // fraction of Spacing, in [0, 0.5)
	DropProb float64 // probability of removing a non-bridge segment
	Seed     int64
}

// Validate reports configuration errors.
func (c GridConfig) Validate() error {
	switch {
	case c.Rows < 1 || c.Cols < 1:
		return fmt.Errorf("roadnet: grid must be at least 1x1, got %dx%d", c.Rows, c.Cols)
	case c.Spacing <= 0:
		return fmt.Errorf("roadnet: spacing must be positive, got %v", c.Spacing)
	case c.Jitter < 0 || c.Jitter >= 0.5:
		return fmt.Errorf("roadnet: jitter must be in [0, 0.5), got %v", c.Jitter)
	case c.DropProb < 0 || c.DropProb >= 1:
		return fmt.Errorf("roadnet: drop probability must be in [0, 1), got %v", c.DropProb)
	}
	return nil
}

// NewGrid builds a perturbed-grid city per cfg. The result is always
// connected: a spanning tree of grid segments is protected from removal.
func NewGrid(cfg GridConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph(cfg.Rows * cfg.Cols)
	idx := func(r, c int) int { return r*cfg.Cols + c }

	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.Spacing
			g.AddNode(geo.Point{
				X: float64(c)*cfg.Spacing + jx,
				Y: float64(r)*cfg.Spacing + jy,
			})
		}
	}

	// Protect a spanning tree (a comb: full first column plus all rows)
	// so dropped segments can never disconnect the network.
	protected := make(map[[2]int]bool)
	for r := 1; r < cfg.Rows; r++ {
		protected[edgeKey(idx(r-1, 0), idx(r, 0))] = true
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 1; c < cfg.Cols; c++ {
			protected[edgeKey(idx(r, c-1), idx(r, c))] = true
		}
	}

	addMaybe := func(u, v int) error {
		if !protected[edgeKey(u, v)] && rng.Float64() < cfg.DropProb {
			return nil
		}
		return g.AddRoad(u, v)
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				if err := addMaybe(idx(r, c), idx(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < cfg.Rows {
				if err := addMaybe(idx(r, c), idx(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}
