package roadnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stabledispatch/internal/geo"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(3)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 3, Y: 0})
	g.AddNode(geo.Point{X: 0, Y: 4})
	mustEdge(t, g, 0, 1, 3)
	mustEdge(t, g, 1, 2, 5)
	mustEdge(t, g, 0, 2, 4)
	return g
}

func mustEdge(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatalf("AddEdge(%d, %d, %v): %v", u, v, w, err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2", g.Degree(0))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("AddEdge out of range: want error")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("AddEdge negative weight: want error")
	}
	if err := g.AddRoad(0, 9); err == nil {
		t.Error("AddRoad out of range: want error")
	}
}

func TestShortestDistances(t *testing.T) {
	g := buildTriangle(t)
	dist := g.ShortestDistances(0)
	want := []float64{0, 3, 4}
	for i, w := range want {
		if math.Abs(dist[i]-w) > 1e-9 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestShortestPath(t *testing.T) {
	// Path graph 0-1-2-3 with a shortcut 0-3 that is longer.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Point{X: float64(i)})
	}
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 2, 3, 1)
	mustEdge(t, g, 0, 3, 10)

	path, dist, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if dist != 3 {
		t.Errorf("dist = %v, want 3", dist)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := buildTriangle(t)
	path, dist, err := g.ShortestPath(1, 1)
	if err != nil || dist != 0 || len(path) != 1 || path[0] != 1 {
		t.Errorf("ShortestPath(1,1) = %v, %v, %v", path, dist, err)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	if _, _, err := g.ShortestPath(0, 1); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
	dist := g.ShortestDistances(0)
	if !math.IsInf(dist[1], 1) {
		t.Errorf("dist to disconnected node = %v, want +Inf", dist[1])
	}
}

func TestNearest(t *testing.T) {
	g := buildTriangle(t)
	if got := g.Nearest(geo.Point{X: 2.9, Y: 0.1}); got != 1 {
		t.Errorf("Nearest = %d, want 1", got)
	}
	empty := NewGraph(0)
	if got := empty.Nearest(geo.Point{}); got != -1 {
		t.Errorf("Nearest on empty graph = %d, want -1", got)
	}
}

func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			g.AddNode(geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
		}
		// Random edges; about 2.5 per node.
		fw := make([][]float64, n)
		for i := range fw {
			fw[i] = make([]float64, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = math.Inf(1)
				}
			}
		}
		for e := 0; e < n*5/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := rng.Float64() * 10
			mustEdge(t, g, u, v, w)
			if w < fw[u][v] {
				fw[u][v], fw[v][u] = w, w
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if alt := fw[i][k] + fw[k][j]; alt < fw[i][j] {
						fw[i][j] = alt
					}
				}
			}
		}
		for src := 0; src < n; src++ {
			dist := g.ShortestDistances(src)
			for dst := 0; dst < n; dst++ {
				if math.IsInf(fw[src][dst], 1) != math.IsInf(dist[dst], 1) {
					t.Fatalf("trial %d: reachability mismatch %d->%d", trial, src, dst)
				}
				if !math.IsInf(dist[dst], 1) && math.Abs(dist[dst]-fw[src][dst]) > 1e-9 {
					t.Fatalf("trial %d: dist %d->%d = %v, want %v", trial, src, dst, dist[dst], fw[src][dst])
				}
			}
		}
	}
}

func TestGridConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     GridConfig
		wantErr bool
	}{
		{name: "valid", cfg: GridConfig{Rows: 3, Cols: 3, Spacing: 1}, wantErr: false},
		{name: "zero rows", cfg: GridConfig{Rows: 0, Cols: 3, Spacing: 1}, wantErr: true},
		{name: "zero spacing", cfg: GridConfig{Rows: 3, Cols: 3, Spacing: 0}, wantErr: true},
		{name: "jitter too large", cfg: GridConfig{Rows: 3, Cols: 3, Spacing: 1, Jitter: 0.6}, wantErr: true},
		{name: "drop prob 1", cfg: GridConfig{Rows: 3, Cols: 3, Spacing: 1, DropProb: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewGridConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := NewGrid(GridConfig{
			Rows: 8, Cols: 10, Spacing: 0.5, Jitter: 0.2, DropProb: 0.3, Seed: seed,
		})
		if err != nil {
			t.Fatalf("NewGrid: %v", err)
		}
		if g.NumNodes() != 80 {
			t.Fatalf("NumNodes = %d, want 80", g.NumNodes())
		}
		dist := g.ShortestDistances(0)
		for i, d := range dist {
			if math.IsInf(d, 1) {
				t.Fatalf("seed %d: node %d unreachable; grid must stay connected", seed, i)
			}
		}
	}
}

func TestNewGridNoDropKeepsAllEdges(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 4, Cols: 5, Spacing: 1})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	// A full r x c grid has r(c-1) + c(r-1) edges.
	want := 4*4 + 5*3
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
}

func TestMetricBasics(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 5, Cols: 5, Spacing: 1})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMetric(g, 16)

	// Distance between two intersections equals grid shortest path.
	a := g.Node(0)  // (0, 0)
	b := g.Node(24) // (4, 4)
	if got := m.Distance(a, b); math.Abs(got-8) > 1e-9 {
		t.Errorf("Distance corner-to-corner = %v, want 8", got)
	}
	if got := m.Distance(a, a); got != 0 {
		t.Errorf("Distance(a, a) = %v, want 0", got)
	}
}

func TestMetricSymmetricAndTriangleOnGrid(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 6, Cols: 6, Spacing: 1, Jitter: 0.1, DropProb: 0.2, Seed: 3})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMetric(g, 8)
	rng := rand.New(rand.NewSource(4))
	sample := func() geo.Point {
		return geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
	}
	for i := 0; i < 50; i++ {
		a, b, c := sample(), sample(), sample()
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("asymmetric: d(a,b)=%v d(b,a)=%v", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		// Node-snapped distances satisfy the triangle inequality up
		// to the walk-in/walk-out slack of the middle point.
		slack := 2 * geo.Euclid(b, g.Node(m.Snap(b)))
		if m.Distance(a, c) > dab+m.Distance(b, c)+slack+1e-9 {
			t.Fatalf("triangle violated beyond snapping slack")
		}
	}
}

func TestMetricCacheEviction(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 4, Cols: 4, Spacing: 1})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMetric(g, 2)
	// Query from more sources than the cache holds; results must stay
	// correct after eviction.
	pts := []geo.Point{g.Node(0), g.Node(5), g.Node(10), g.Node(15), g.Node(0)}
	for _, p := range pts {
		for _, q := range pts {
			d1 := m.Distance(p, q)
			d2 := m.Distance(p, q)
			if d1 != d2 {
				t.Fatalf("unstable distance %v vs %v", d1, d2)
			}
		}
	}
}

func TestMetricPath(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 3, Cols: 3, Spacing: 1})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMetric(g, 4)
	path, err := m.Path(g.Node(0), g.Node(8))
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if len(path) != 5 { // 4 grid hops
		t.Errorf("path length = %d nodes, want 5", len(path))
	}
	if path[0] != g.Node(0) || path[len(path)-1] != g.Node(8) {
		t.Errorf("path endpoints wrong: %v", path)
	}
}

func TestMetricConcurrentUse(t *testing.T) {
	g, err := NewGrid(GridConfig{Rows: 6, Cols: 6, Spacing: 1, Seed: 1})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := NewMetric(g, 4)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a := geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
				b := geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
				if d := m.Distance(a, b); d < 0 {
					t.Errorf("negative distance %v", d)
					return
				}
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := NewGrid(GridConfig{
			Rows: 9, Cols: 9, Spacing: 1, Jitter: 0.2, DropProb: 0.25, Seed: seed,
		})
		if err != nil {
			t.Fatalf("NewGrid: %v", err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for q := 0; q < 40; q++ {
			src, dst := rng.Intn(g.NumNodes()), rng.Intn(g.NumNodes())
			_, wantDist, err := g.ShortestPath(src, dst)
			if err != nil {
				t.Fatalf("ShortestPath: %v", err)
			}
			path, gotDist, err := g.AStarPath(src, dst)
			if err != nil {
				t.Fatalf("AStarPath: %v", err)
			}
			if math.Abs(gotDist-wantDist) > 1e-9 {
				t.Fatalf("seed %d %d->%d: A* %v, Dijkstra %v", seed, src, dst, gotDist, wantDist)
			}
			// The returned path must actually cost its stated length.
			total := 0.0
			for i := 1; i < len(path); i++ {
				total += geo.Euclid(g.Node(path[i-1]), g.Node(path[i]))
			}
			if math.Abs(total-gotDist) > 1e-9 {
				t.Fatalf("path length %v != reported %v", total, gotDist)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("path endpoints %v for %d->%d", path, src, dst)
			}
		}
	}
}

func TestAStarSameNodeAndDisconnected(t *testing.T) {
	g := NewGraph(2)
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	path, dist, err := g.AStarPath(0, 0)
	if err != nil || dist != 0 || len(path) != 1 {
		t.Errorf("AStarPath(0,0) = %v, %v, %v", path, dist, err)
	}
	if _, _, err := g.AStarPath(0, 1); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}
