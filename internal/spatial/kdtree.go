package spatial

import (
	"math"
	"sort"

	"stabledispatch/internal/geo"
)

// KDTree is a static 2-d tree over a point set. It answers the same
// queries as Index but is built once per batch (the natural pattern for
// per-frame dispatch, where the fleet moves every frame anyway) and does
// not degrade when points cluster into few cells.
type KDTree struct {
	nodes []kdNode
	root  int
}

type kdNode struct {
	id          int
	p           geo.Point
	left, right int // node indices, -1 for none
	axis        uint8
}

// KDPoint is one input to NewKDTree.
type KDPoint struct {
	ID  int
	Pos geo.Point
}

// NewKDTree builds a balanced tree over the points in O(n log² n).
func NewKDTree(points []KDPoint) *KDTree {
	t := &KDTree{nodes: make([]kdNode, 0, len(points)), root: -1}
	pts := append([]KDPoint(nil), points...)
	t.root = t.build(pts, 0)
	return t
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.nodes) }

func (t *KDTree) build(pts []KDPoint, axis uint8) int {
	if len(pts) == 0 {
		return -1
	}
	sort.Slice(pts, func(a, b int) bool {
		if axis == 0 {
			return pts[a].Pos.X < pts[b].Pos.X
		}
		return pts[a].Pos.Y < pts[b].Pos.Y
	})
	mid := len(pts) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{id: pts[mid].ID, p: pts[mid].Pos, axis: axis, left: -1, right: -1})
	left := t.build(pts[:mid], 1-axis)
	right := t.build(pts[mid+1:], 1-axis)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Nearest returns the id and position of the point closest to q, or
// ok=false for an empty tree.
func (t *KDTree) Nearest(q geo.Point) (id int, pos geo.Point, ok bool) {
	if t.root < 0 {
		return 0, geo.Point{}, false
	}
	bestID, bestPos, bestDist := -1, geo.Point{}, math.Inf(1)
	t.nearest(t.root, q, &bestID, &bestPos, &bestDist)
	return bestID, bestPos, true
}

func (t *KDTree) nearest(ni int, q geo.Point, bestID *int, bestPos *geo.Point, bestDist *float64) {
	if ni < 0 {
		return
	}
	n := t.nodes[ni]
	if d := geo.Euclid(q, n.p); d < *bestDist {
		*bestDist, *bestID, *bestPos = d, n.id, n.p
	}
	delta := q.X - n.p.X
	if n.axis == 1 {
		delta = q.Y - n.p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	t.nearest(near, q, bestID, bestPos, bestDist)
	if math.Abs(delta) < *bestDist {
		t.nearest(far, q, bestID, bestPos, bestDist)
	}
}

// KNearest returns the ids of up to k points closest to q, ordered by
// increasing distance.
func (t *KDTree) KNearest(q geo.Point, k int) []int {
	if k <= 0 || t.root < 0 {
		return nil
	}
	// Max-heap of the best k candidates, via a small slice kept sorted
	// descending by distance (k is small in dispatch workloads).
	type cand struct {
		id   int
		dist float64
	}
	best := make([]cand, 0, k+1)
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[0].dist
	}
	insert := func(id int, dist float64) {
		best = append(best, cand{id: id, dist: dist})
		sort.Slice(best, func(a, b int) bool { return best[a].dist > best[b].dist })
		if len(best) > k {
			best = best[1:]
		}
	}

	var walk func(ni int)
	walk = func(ni int) {
		if ni < 0 {
			return
		}
		n := t.nodes[ni]
		if d := geo.Euclid(q, n.p); d < worst() {
			insert(n.id, d)
		}
		delta := q.X - n.p.X
		if n.axis == 1 {
			delta = q.Y - n.p.Y
		}
		near, far := n.left, n.right
		if delta > 0 {
			near, far = n.right, n.left
		}
		walk(near)
		if math.Abs(delta) < worst() {
			walk(far)
		}
	}
	walk(t.root)

	out := make([]int, len(best))
	for i := range best {
		out[len(best)-1-i] = best[i].id // ascending by distance
	}
	return out
}

// WithinRadius returns the ids of all points within radius of q.
func (t *KDTree) WithinRadius(q geo.Point, radius float64) []int {
	if radius < 0 || t.root < 0 {
		return nil
	}
	var out []int
	var walk func(ni int)
	walk = func(ni int) {
		if ni < 0 {
			return
		}
		n := t.nodes[ni]
		if geo.Euclid(q, n.p) <= radius {
			out = append(out, n.id)
		}
		delta := q.X - n.p.X
		if n.axis == 1 {
			delta = q.Y - n.p.Y
		}
		if delta <= radius {
			walk(n.left)
		}
		if -delta <= radius {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}
