package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"stabledispatch/internal/geo"
)

func cityBounds() geo.Rect {
	return geo.NewRect(geo.Point{}, geo.Point{X: 20, Y: 20})
}

func TestInsertRemove(t *testing.T) {
	ix := NewIndex(cityBounds(), 2)
	p := geo.Point{X: 3, Y: 4}
	ix.Insert(7, p)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if !ix.Remove(7, p) {
		t.Fatal("Remove = false, want true")
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", ix.Len())
	}
	if ix.Remove(7, p) {
		t.Fatal("second Remove = true, want false")
	}
}

func TestNearestEmpty(t *testing.T) {
	ix := NewIndex(cityBounds(), 2)
	if _, _, ok := ix.Nearest(geo.Point{X: 1, Y: 1}); ok {
		t.Error("Nearest on empty index: ok = true, want false")
	}
	if ids := ix.KNearest(geo.Point{}, 3); ids != nil {
		t.Errorf("KNearest on empty index = %v, want nil", ids)
	}
	if ids := ix.WithinRadius(geo.Point{}, 5); ids != nil {
		t.Errorf("WithinRadius on empty index = %v, want nil", ids)
	}
}

func TestNearestSimple(t *testing.T) {
	ix := NewIndex(cityBounds(), 2)
	ix.Insert(1, geo.Point{X: 1, Y: 1})
	ix.Insert(2, geo.Point{X: 10, Y: 10})
	ix.Insert(3, geo.Point{X: 19, Y: 19})

	id, pos, ok := ix.Nearest(geo.Point{X: 9, Y: 9})
	if !ok || id != 2 {
		t.Errorf("Nearest = (%d, %v, %v), want id 2", id, pos, ok)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		ix := NewIndex(cityBounds(), 1.5)
		n := 1 + rng.Intn(60)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			ix.Insert(i, pts[i])
		}
		for q := 0; q < 20; q++ {
			query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			bestID, bestDist := -1, math.Inf(1)
			for i, p := range pts {
				if d := geo.Euclid(query, p); d < bestDist {
					bestID, bestDist = i, d
				}
			}
			gotID, _, ok := ix.Nearest(query)
			if !ok {
				t.Fatalf("trial %d: Nearest returned !ok with %d points", trial, n)
			}
			gotDist := geo.Euclid(query, pts[gotID])
			if math.Abs(gotDist-bestDist) > 1e-9 {
				t.Fatalf("trial %d: Nearest dist %v, brute force %v (ids %d vs %d)",
					trial, gotDist, bestDist, gotID, bestID)
			}
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		ix := NewIndex(cityBounds(), 2)
		n := 1 + rng.Intn(50)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			ix.Insert(i, pts[i])
		}
		for q := 0; q < 10; q++ {
			query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			k := 1 + rng.Intn(8)

			got := ix.KNearest(query, k)

			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				return geo.Euclid(query, pts[order[a]]) < geo.Euclid(query, pts[order[b]])
			})
			wantLen := k
			if n < k {
				wantLen = n
			}
			if len(got) != wantLen {
				t.Fatalf("KNearest returned %d ids, want %d", len(got), wantLen)
			}
			for i, id := range got {
				wantDist := geo.Euclid(query, pts[order[i]])
				gotDist := geo.Euclid(query, pts[id])
				if math.Abs(gotDist-wantDist) > 1e-9 {
					t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i, gotDist, wantDist)
				}
			}
		}
	}
}

func TestWithinRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ix := NewIndex(cityBounds(), 2.5)
		n := rng.Intn(60)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			ix.Insert(i, pts[i])
		}
		query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		radius := rng.Float64() * 8

		got := ix.WithinRadius(query, radius)
		gotSet := make(map[int]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		for i, p := range pts {
			want := geo.Euclid(query, p) <= radius
			if gotSet[i] != want {
				t.Fatalf("trial %d: id %d in-radius = %v, want %v", trial, i, gotSet[i], want)
			}
		}
	}
}

func TestMove(t *testing.T) {
	ix := NewIndex(cityBounds(), 2)
	from := geo.Point{X: 1, Y: 1}
	to := geo.Point{X: 15, Y: 15}
	ix.Insert(1, from)
	ix.Move(1, from, to)

	id, pos, ok := ix.Nearest(geo.Point{X: 14, Y: 14})
	if !ok || id != 1 || pos != to {
		t.Errorf("after Move, Nearest = (%d, %v, %v)", id, pos, ok)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestOutOfBoundsPointsAreClamped(t *testing.T) {
	ix := NewIndex(cityBounds(), 2)
	outside := geo.Point{X: -50, Y: 300}
	ix.Insert(1, outside)
	id, _, ok := ix.Nearest(geo.Point{X: 0, Y: 20})
	if !ok || id != 1 {
		t.Errorf("Nearest = (%d, %v), want id 1 found", id, ok)
	}
	if !ix.Remove(1, outside) {
		t.Error("Remove of out-of-bounds point failed")
	}
}

func TestManyPointsSameCell(t *testing.T) {
	ix := NewIndex(cityBounds(), 10)
	for i := 0; i < 100; i++ {
		ix.Insert(i, geo.Point{X: 1 + float64(i)*0.01, Y: 1})
	}
	ids := ix.KNearest(geo.Point{X: 1, Y: 1}, 5)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("KNearest = %v, want %v", ids, want)
		}
	}
}
