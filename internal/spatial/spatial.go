// Package spatial provides a uniform grid index over planar points with
// nearest-neighbour and radius queries.
//
// The greedy dispatcher and the RAII carpool baseline both need "closest
// idle taxi" and "taxis within radius" queries against hundreds of moving
// taxis per frame; a cell grid keeps those queries sub-linear without the
// complexity of a rebalancing tree.
package spatial

import (
	"math"

	"stabledispatch/internal/geo"
)

// Index is a uniform grid over a bounding rectangle. Points outside the
// rectangle are clamped into the boundary cells, so the index never loses
// entries. The zero value is not usable; construct with NewIndex.
type Index struct {
	bounds   geo.Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]entry
	count    int
}

type entry struct {
	id int
	p  geo.Point
}

// NewIndex returns an index over bounds with approximately cellSize-sized
// square cells. cellSize is clamped so the grid has at least one cell.
func NewIndex(bounds geo.Rect, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Index{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]entry, cols*rows),
	}
}

// Len returns the number of points currently in the index.
func (ix *Index) Len() int { return ix.count }

func (ix *Index) cellOf(p geo.Point) (int, int) {
	c := int((p.X - ix.bounds.Min.X) / ix.cellSize)
	r := int((p.Y - ix.bounds.Min.Y) / ix.cellSize)
	if c < 0 {
		c = 0
	}
	if c >= ix.cols {
		c = ix.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= ix.rows {
		r = ix.rows - 1
	}
	return c, r
}

// Insert adds a point with an opaque id. Duplicate ids are allowed; the
// caller is responsible for removing stale entries.
func (ix *Index) Insert(id int, p geo.Point) {
	c, r := ix.cellOf(p)
	i := r*ix.cols + c
	ix.cells[i] = append(ix.cells[i], entry{id: id, p: p})
	ix.count++
}

// Remove deletes the entry with the given id at (or near) p. It reports
// whether an entry was removed. p must be the position the id was
// inserted with.
func (ix *Index) Remove(id int, p geo.Point) bool {
	c, r := ix.cellOf(p)
	i := r*ix.cols + c
	cell := ix.cells[i]
	for j, e := range cell {
		if e.id == id {
			cell[j] = cell[len(cell)-1]
			ix.cells[i] = cell[:len(cell)-1]
			ix.count--
			return true
		}
	}
	return false
}

// Move relocates id from its old position to a new one.
func (ix *Index) Move(id int, from, to geo.Point) {
	if ix.Remove(id, from) {
		ix.Insert(id, to)
	}
}

// Nearest returns the id and position of the indexed point closest to p
// (in Euclidean distance), or ok=false if the index is empty. It expands
// ring-by-ring from p's cell, stopping once the current best cannot be
// beaten by any unexplored ring.
func (ix *Index) Nearest(p geo.Point) (id int, pos geo.Point, ok bool) {
	if ix.count == 0 {
		return 0, geo.Point{}, false
	}
	pc, pr := ix.cellOf(p)
	bestDist := math.Inf(1)
	maxRing := ix.cols
	if ix.rows > maxRing {
		maxRing = ix.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Any point in a cell at this ring is at least
		// (ring-1)*cellSize away, so stop when that bound exceeds
		// the best found.
		if bestDist < float64(ring-1)*ix.cellSize {
			break
		}
		found := false
		for _, ci := range ix.ringCells(pc, pr, ring) {
			found = true
			for _, e := range ix.cells[ci] {
				if d := geo.Euclid(p, e.p); d < bestDist {
					bestDist = d
					id, pos, ok = e.id, e.p, true
				}
			}
		}
		if !found && ring > 0 && ok {
			break
		}
	}
	return id, pos, ok
}

// KNearest returns the ids of up to k points closest to p, ordered by
// increasing distance.
func (ix *Index) KNearest(p geo.Point, k int) []int {
	if k <= 0 || ix.count == 0 {
		return nil
	}
	var cands []cand
	pc, pr := ix.cellOf(p)
	maxRing := ix.cols
	if ix.rows > maxRing {
		maxRing = ix.rows
	}
	kthDist := math.Inf(1)
	for ring := 0; ring <= maxRing; ring++ {
		if len(cands) >= k && kthDist < float64(ring-1)*ix.cellSize {
			break
		}
		for _, ci := range ix.ringCells(pc, pr, ring) {
			for _, e := range ix.cells[ci] {
				cands = append(cands, cand{id: e.id, dist: geo.Euclid(p, e.p)})
			}
		}
		if len(cands) >= k {
			kthDist = kthSmallest(cands, k)
		}
	}
	sortCands(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	ids := make([]int, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	return ids
}

// WithinRadius returns the ids of all points within radius of p.
func (ix *Index) WithinRadius(p geo.Point, radius float64) []int {
	if radius < 0 || ix.count == 0 {
		return nil
	}
	var ids []int
	pc, pr := ix.cellOf(p)
	ringMax := int(math.Ceil(radius/ix.cellSize)) + 1
	for ring := 0; ring <= ringMax; ring++ {
		for _, ci := range ix.ringCells(pc, pr, ring) {
			for _, e := range ix.cells[ci] {
				if geo.Euclid(p, e.p) <= radius {
					ids = append(ids, e.id)
				}
			}
		}
	}
	return ids
}

// ringCells returns indices of cells on the square ring at Chebyshev
// distance `ring` from (pc, pr), clipped to the grid.
func (ix *Index) ringCells(pc, pr, ring int) []int {
	var out []int
	if ring == 0 {
		out = append(out, pr*ix.cols+pc)
		return out
	}
	for c := pc - ring; c <= pc+ring; c++ {
		if c < 0 || c >= ix.cols {
			continue
		}
		for _, r := range [2]int{pr - ring, pr + ring} {
			if r >= 0 && r < ix.rows {
				out = append(out, r*ix.cols+c)
			}
		}
	}
	for r := pr - ring + 1; r <= pr+ring-1; r++ {
		if r < 0 || r >= ix.rows {
			continue
		}
		for _, c := range [2]int{pc - ring, pc + ring} {
			if c >= 0 && c < ix.cols {
				out = append(out, r*ix.cols+c)
			}
		}
	}
	return out
}

// cand is a nearest-neighbour candidate during KNearest queries.
type cand struct {
	id   int
	dist float64
}

// sortCands insertion-sorts candidates by distance; candidate lists are
// small (k plus one ring's worth of points).
func sortCands(cands []cand) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// kthSmallest returns the k-th smallest candidate distance, or +Inf when
// fewer than k candidates exist.
func kthSmallest(cands []cand, k int) float64 {
	dists := make([]float64, len(cands))
	for i, c := range cands {
		dists[i] = c.dist
	}
	for i := 1; i < len(dists); i++ {
		for j := i; j > 0 && dists[j] < dists[j-1]; j-- {
			dists[j], dists[j-1] = dists[j-1], dists[j]
		}
	}
	if k-1 < len(dists) {
		return dists[k-1]
	}
	return math.Inf(1)
}
