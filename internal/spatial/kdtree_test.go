package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"stabledispatch/internal/geo"
)

func randomKDPoints(rng *rand.Rand, n int) []KDPoint {
	pts := make([]KDPoint, n)
	for i := range pts {
		pts[i] = KDPoint{ID: i, Pos: geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}}
	}
	return pts
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil)
	if tree.Len() != 0 {
		t.Errorf("Len = %d", tree.Len())
	}
	if _, _, ok := tree.Nearest(geo.Point{}); ok {
		t.Error("Nearest on empty tree: ok")
	}
	if got := tree.KNearest(geo.Point{}, 3); got != nil {
		t.Errorf("KNearest = %v", got)
	}
	if got := tree.WithinRadius(geo.Point{}, 1); got != nil {
		t.Errorf("WithinRadius = %v", got)
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		pts := randomKDPoints(rng, 1+rng.Intn(80))
		tree := NewKDTree(pts)
		for q := 0; q < 20; q++ {
			query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			bestDist := math.Inf(1)
			for _, p := range pts {
				if d := geo.Euclid(query, p.Pos); d < bestDist {
					bestDist = d
				}
			}
			id, pos, ok := tree.Nearest(query)
			if !ok {
				t.Fatal("Nearest !ok on non-empty tree")
			}
			if math.Abs(geo.Euclid(query, pos)-bestDist) > 1e-12 {
				t.Fatalf("trial %d: Nearest id %d dist %v, brute %v",
					trial, id, geo.Euclid(query, pos), bestDist)
			}
		}
	}
}

func TestKDTreeKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		pts := randomKDPoints(rng, 1+rng.Intn(60))
		tree := NewKDTree(pts)
		query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		k := 1 + rng.Intn(10)

		got := tree.KNearest(query, k)

		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return geo.Euclid(query, pts[order[a]].Pos) < geo.Euclid(query, pts[order[b]].Pos)
		})
		wantLen := k
		if len(pts) < k {
			wantLen = len(pts)
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: KNearest len %d, want %d", trial, len(got), wantLen)
		}
		for i, id := range got {
			wantDist := geo.Euclid(query, pts[order[i]].Pos)
			gotDist := geo.Euclid(query, pts[id].Pos)
			if math.Abs(gotDist-wantDist) > 1e-12 {
				t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i, gotDist, wantDist)
			}
		}
	}
}

func TestKDTreeWithinRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		pts := randomKDPoints(rng, rng.Intn(80))
		tree := NewKDTree(pts)
		query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		radius := rng.Float64() * 8

		got := tree.WithinRadius(query, radius)
		gotSet := make(map[int]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		for _, p := range pts {
			want := geo.Euclid(query, p.Pos) <= radius
			if gotSet[p.ID] != want {
				t.Fatalf("trial %d: id %d in-radius = %v, want %v", trial, p.ID, gotSet[p.ID], want)
			}
		}
	}
}

func TestKDTreeAgreesWithGridIndex(t *testing.T) {
	// The two spatial indexes must return identical nearest distances.
	rng := rand.New(rand.NewSource(54))
	pts := randomKDPoints(rng, 120)
	tree := NewKDTree(pts)
	grid := NewIndex(geo.NewRect(geo.Point{}, geo.Point{X: 20, Y: 20}), 2)
	for _, p := range pts {
		grid.Insert(p.ID, p.Pos)
	}
	for q := 0; q < 100; q++ {
		query := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		_, kdPos, ok1 := tree.Nearest(query)
		_, gridPos, ok2 := grid.Nearest(query)
		if !ok1 || !ok2 {
			t.Fatal("index returned !ok")
		}
		d1, d2 := geo.Euclid(query, kdPos), geo.Euclid(query, gridPos)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("kd %v vs grid %v at query %v", d1, d2, query)
		}
	}
}

func TestKDTreeDuplicatePositions(t *testing.T) {
	pts := []KDPoint{
		{ID: 0, Pos: geo.Point{X: 1, Y: 1}},
		{ID: 1, Pos: geo.Point{X: 1, Y: 1}},
		{ID: 2, Pos: geo.Point{X: 5, Y: 5}},
	}
	tree := NewKDTree(pts)
	ids := tree.KNearest(geo.Point{X: 1, Y: 1}, 2)
	if len(ids) != 2 {
		t.Fatalf("KNearest = %v", ids)
	}
	for _, id := range ids {
		if id == 2 {
			t.Errorf("far point ranked above duplicates: %v", ids)
		}
	}
}

func BenchmarkSpatialIndexes(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	for _, n := range []int{100, 700} {
		pts := randomKDPoints(rng, n)
		queries := make([]geo.Point, 256)
		for i := range queries {
			queries[i] = geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		b.Run(fmt.Sprintf("kdtree/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree := NewKDTree(pts)
				for _, q := range queries {
					tree.Nearest(q)
				}
			}
		})
		b.Run(fmt.Sprintf("grid/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grid := NewIndex(geo.NewRect(geo.Point{}, geo.Point{X: 20, Y: 20}), 1)
				for _, p := range pts {
					grid.Insert(p.ID, p.Pos)
				}
				for _, q := range queries {
					grid.Nearest(q)
				}
			}
		})
	}
}
