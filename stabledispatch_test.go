package stabledispatch

import (
	"errors"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README does:
// generate a workload, run the stable dispatcher, inspect the report.
func TestFacadeEndToEnd(t *testing.T) {
	city := Boston()
	reqs, err := GenerateTrace(BostonConfig(30, 1))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	taxis, err := GenerateTaxis(city, 40, 2)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}
	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     DefaultParams(),
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Algorithm != "NSTD-P" {
		t.Errorf("Algorithm = %q", rep.Algorithm)
	}
	if rep.ServedCount() == 0 {
		t.Error("nothing served")
	}
}

func TestFacadeMatchingCore(t *testing.T) {
	reqs := []Request{
		{ID: 0, Pickup: Point{X: 1}, Dropoff: Point{X: 5}},
		{ID: 1, Pickup: Point{X: 2}, Dropoff: Point{X: 9}},
	}
	taxis := []Taxi{
		{ID: 0, Pos: Point{}},
		{ID: 1, Pos: Point{X: 3}},
	}
	inst, err := NewInstance(reqs, taxis, EuclidMetric, UnboundedParams())
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	m := PassengerOptimal(&inst.Market)
	if err := IsStable(&inst.Market, m); err != nil {
		t.Fatalf("IsStable: %v", err)
	}
	all := AllStableMatchings(&inst.Market, 0)
	if len(all) == 0 || !all[0].Equal(m) {
		t.Errorf("AllStableMatchings = %v", all)
	}
	to := TaxiOptimal(&inst.Market)
	if err := IsStable(&inst.Market, to); err != nil {
		t.Fatalf("taxi-optimal unstable: %v", err)
	}
}

func TestFacadeSharing(t *testing.T) {
	reqs := []Request{
		{ID: 0, Pickup: Point{X: 0}, Dropoff: Point{X: 5}},
		{ID: 1, Pickup: Point{X: 0.3}, Dropoff: Point{X: 5.2}},
		{ID: 2, Pickup: Point{X: 15}, Dropoff: Point{X: 18}},
	}
	res, err := PackRequests(reqs, EuclidMetric, DefaultPackConfig())
	if err != nil {
		t.Fatalf("PackRequests: %v", err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("parallel riders not packed")
	}
	plan, err := BestSharedRoute(reqs[:2], EuclidMetric)
	if err != nil {
		t.Fatalf("BestSharedRoute: %v", err)
	}
	if plan.Length <= 0 {
		t.Errorf("plan length = %v", plan.Length)
	}
}

func TestFacadeRoadNetwork(t *testing.T) {
	g, err := NewRoadGrid(RoadGridConfig{Rows: 4, Cols: 4, Spacing: 1})
	if err != nil {
		t.Fatalf("NewRoadGrid: %v", err)
	}
	m := NewRoadMetric(g, 4)
	d := m.Distance(Point{}, Point{X: 3, Y: 3})
	if d < 6-1e-9 {
		t.Errorf("road distance = %v, want >= 6 (grid)", d)
	}

	// The road metric slots straight into the matching market.
	reqs := []Request{{ID: 0, Pickup: Point{X: 1}, Dropoff: Point{X: 3}}}
	taxis := []Taxi{{ID: 0, Pos: Point{}}}
	inst, err := NewInstance(reqs, taxis, m, UnboundedParams())
	if err != nil {
		t.Fatalf("NewInstance on road metric: %v", err)
	}
	if got := PassengerOptimal(&inst.Market).Size(); got != 1 {
		t.Errorf("matching size = %d, want 1", got)
	}
}

func TestFacadeDispatcherConstructors(t *testing.T) {
	names := map[string]Dispatcher{
		"NSTD-P":     NSTDP(),
		"NSTD-T":     NSTDT(),
		"Greedy":     GreedyDispatcher(),
		"MinCost":    MinCostDispatcher(),
		"Bottleneck": BottleneckDispatcher(),
		"STD-P":      STDP(DefaultPackConfig()),
		"STD-T":      STDT(DefaultPackConfig()),
		"RAII":       RAIIDispatcher(DefaultCarpoolConfig()),
		"SARP":       SARPDispatcher(DefaultCarpoolConfig()),
		"ILP":        ILPDispatcher(DefaultPackConfig()),
	}
	for want, d := range names {
		if got := d.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestRunFigure(t *testing.T) {
	o := QuickExpOptions()
	o.Frames = 40
	o.VolumeScale = 0.04
	o.TaxiScale = 0.04
	fig, err := RunFigure("fig5", o)
	if err != nil {
		t.Fatalf("RunFigure: %v", err)
	}
	if fig.ID != "fig5" || len(fig.Panels) != 3 {
		t.Errorf("figure = %+v", fig.ID)
	}

	_, err = RunFigure("fig99", o)
	var unknown *UnknownFigureError
	if !errors.As(err, &unknown) || unknown.ID != "fig99" {
		t.Errorf("err = %v, want UnknownFigureError", err)
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error text %q lacks figure id", err.Error())
	}
}

func TestFigureIDsStable(t *testing.T) {
	ids := FigureIDs()
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
	if len(ids) != len(want) {
		t.Fatalf("FigureIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("FigureIDs = %v, want %v", ids, want)
		}
	}
}

func TestFacadeLiveInjection(t *testing.T) {
	taxis, err := GenerateTaxis(Boston(), 5, 3)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}
	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     DefaultParams(),
	}, taxis, nil)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	// A long profitable trip from the city center, so the default
	// break-even taxi threshold accepts it.
	if err := s.Inject(Request{ID: 1, Pickup: Point{X: 10, Y: 10}, Dropoff: Point{X: 18, Y: 10}}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if err := s.Inject(Request{ID: 1}); err == nil {
		t.Error("duplicate Inject accepted")
	}
	for i := 0; i < 60 && !s.Done(); i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	snap := s.Snapshot()
	if snap.ServedCount() != 1 {
		t.Errorf("served = %d, want 1", snap.ServedCount())
	}
	if len(s.TaxiViews()) != 5 {
		t.Errorf("TaxiViews = %d", len(s.TaxiViews()))
	}
}

func TestFacadeExtensions(t *testing.T) {
	reqs := []Request{
		{ID: 0, Pickup: Point{X: 1}, Dropoff: Point{X: 5}},
		{ID: 1, Pickup: Point{X: 2}, Dropoff: Point{X: 9}},
	}
	taxis := []Taxi{
		{ID: 0, Pos: Point{}},
		{ID: 1, Pos: Point{X: 3}},
	}
	inst, err := NewInstance(reqs, taxis, EuclidMetric, UnboundedParams())
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	med := MedianStable(&inst.Market, 0)
	if err := IsStable(&inst.Market, med); err != nil {
		t.Fatalf("median unstable: %v", err)
	}
	if got := NSTDC().Name(); got != "NSTD-C" {
		t.Errorf("NSTDC name = %q", got)
	}
	if got := NSTDM().Name(); got != "NSTD-M" {
		t.Errorf("NSTDM name = %q", got)
	}
}

func TestFacadeOutagesAndEvents(t *testing.T) {
	taxis := []Taxi{{ID: 0, Pos: Point{X: 10, Y: 10}}}
	var kinds []string
	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     UnboundedParams(),
		SpeedKmH:   60,
		Outages:    []Outage{{TaxiID: 0, From: 0, To: 2}},
		Events: EventSinkFunc(func(e Event) {
			kinds = append(kinds, string(e.Kind))
		}),
	}, taxis, []Request{{ID: 1, Pickup: Point{X: 10.5, Y: 10}, Dropoff: Point{X: 12, Y: 10}}})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() != 1 {
		t.Fatalf("served = %d", rep.ServedCount())
	}
	if rep.Requests[0].AssignFrame < 2 {
		t.Errorf("assigned during outage at frame %d", rep.Requests[0].AssignFrame)
	}
	if len(kinds) == 0 || kinds[0] != "request" {
		t.Errorf("event kinds = %v", kinds)
	}
}

// TestFacadeDecisionTracing runs a traced simulation through the public
// API: traces accumulate for dispatched requests, frames certify stable,
// and CertifyStability flags a hand-crossed matching.
func TestFacadeDecisionTracing(t *testing.T) {
	SetDecisionTracing(true)
	DecisionTracer().Reset()
	defer func() {
		SetDecisionTracing(false)
		DecisionTracer().Reset()
	}()
	if !DecisionTracingEnabled() {
		t.Fatal("tracing did not enable")
	}

	reqs, err := GenerateTrace(BostonConfig(15, 3))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	taxis, err := GenerateTaxis(Boston(), 25, 4)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}
	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     DefaultParams(),
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ServedCount() == 0 {
		t.Fatal("nothing served")
	}

	rec := DecisionTracer()
	if len(rec.TraceIDs()) == 0 {
		t.Fatal("no traces recorded")
	}
	frames := rec.CertifiedFrames()
	if len(frames) == 0 {
		t.Fatal("no frames certified")
	}
	for _, fr := range frames {
		c, ok := rec.Certificate(fr)
		if !ok {
			t.Fatalf("certificate for frame %d vanished", fr)
		}
		if !c.Stable {
			t.Errorf("frame %d certified unstable: %+v", fr, c.Violations)
		}
	}

	// A deliberately crossed 2×2 matching is flagged with its blocking
	// pair.
	pair := []Request{
		{ID: 10, Pickup: Point{X: 1}, Dropoff: Point{X: 5}},
		{ID: 11, Pickup: Point{X: 8}, Dropoff: Point{X: 12}},
	}
	cabs := []Taxi{
		{ID: 20, Pos: Point{X: 1}},
		{ID: 21, Pos: Point{X: 8}},
	}
	inst, err := NewInstance(pair, cabs, EuclidMetric, UnboundedParams())
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	cert := CertifyStability(0, &inst.Market, []int{1, 0}, []int{10, 11}, []int{20, 21})
	if cert.Stable || len(cert.Violations) == 0 {
		t.Fatalf("crossed matching certified stable: %+v", cert)
	}
}

// TestFacadeKPISeries runs an instrumented simulation through the public
// API: one sample per frame, queryable by window, all series named.
func TestFacadeKPISeries(t *testing.T) {
	reqs, err := GenerateTrace(BostonConfig(15, 3))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	taxis, err := GenerateTaxis(Boston(), 25, 4)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}
	rec := NewKPIRecorder(KPIRecorderConfig{Capacity: 256})
	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     DefaultParams(),
		KPI:        rec,
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	samples := s.KPISeries()
	if len(samples) != rep.Frames {
		t.Fatalf("%d samples over %d frames", len(samples), rep.Frames)
	}
	last := samples[len(samples)-1]
	if int(last.Served) != rep.ServedCount() {
		t.Errorf("final served %d, report says %d", last.Served, rep.ServedCount())
	}
	for _, name := range KPISeriesNames() {
		if _, ok := last.Value(name); !ok {
			t.Errorf("series %q not readable from a sample", name)
		}
	}
	if win := s.KPIWindow(1, 3, 1); len(win) != 3 || win[0].Frame != 1 {
		t.Errorf("KPIWindow(1,3,1) = %d samples starting %v", len(win), win)
	}
}

// TestFacadeStreamHub installs the process-wide telemetry hub through
// the public API and proves a simulation's lifecycle events reach a
// subscriber's ring.
func TestFacadeStreamHub(t *testing.T) {
	reqs, err := GenerateTrace(BostonConfig(10, 5))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	taxis, err := GenerateTaxis(Boston(), 20, 6)
	if err != nil {
		t.Fatalf("GenerateTaxis: %v", err)
	}

	hub := NewStreamHub()
	SetActiveStreamHub(hub)
	defer SetActiveStreamHub(nil)
	if ActiveStreamHub() != hub {
		t.Fatal("ActiveStreamHub did not return the installed hub")
	}
	if topics := StreamTopics(); len(topics) != 6 {
		t.Fatalf("StreamTopics() = %v, want 6 topics", topics)
	}
	sub := hub.Subscribe(65536, "events")
	defer sub.Close()

	s, err := NewSimulator(SimConfig{
		Dispatcher: NSTDP(),
		Params:     DefaultParams(),
	}, taxis, reqs)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	msgs := sub.TakeBatch(nil)
	if len(msgs) == 0 {
		t.Fatalf("no stream messages after %d served rides", rep.ServedCount())
	}
	for _, m := range msgs {
		if m.Topic != StreamTopic("events") {
			t.Fatalf("subscribed to events, got topic %q", m.Topic)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("%d drops on an oversized ring", sub.Dropped())
	}
}
