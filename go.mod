module stabledispatch

go 1.22
