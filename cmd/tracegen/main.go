// Command tracegen generates a synthetic passenger-request trace
// calibrated to the paper's New York or Boston datasets and writes it as
// CSV:
//
//	tracegen -city newyork -frames 1440 -o newyork-day.csv
//
// It can also convert a real NYC TLC trip-record CSV into the same
// format (timestamps to minute frames, WGS84 to the kilometre plane):
//
//	tracegen -tlc yellow_tripdata_2016-01.csv -o newyork-real.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stabledispatch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		cityName = fs.String("city", "boston", "city model: boston or newyork")
		frames   = fs.Int("frames", 1440, "horizon in minutes")
		volume   = fs.Int("volume", 0, "requests per day (0 = paper default)")
		seats    = fs.Int("seats", 3, "maximum party size")
		seed     = fs.Int64("seed", 42, "random seed")
		outPath  = fs.String("o", "", "output file (default stdout)")
		tlcPath  = fs.String("tlc", "", "convert a NYC TLC trip-record CSV instead of generating")
		maxRows  = fs.Int("max-rows", 0, "cap converted TLC rows (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tlcPath != "" {
		return convertTLC(*tlcPath, *outPath, *maxRows, stdout)
	}

	var (
		city      trace.City
		defVolume int
	)
	switch strings.ToLower(*cityName) {
	case "boston":
		city, defVolume = trace.Boston(), 13500
	case "newyork", "nyc", "new-york":
		city, defVolume = trace.NewYork(), 46600
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	if *volume == 0 {
		*volume = defVolume
	}

	reqs, err := trace.Generate(trace.Config{
		City:           city,
		Frames:         *frames,
		RequestsPerDay: *volume,
		Seats:          *seats,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := trace.WriteCSV(out, reqs); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(stdout, "wrote %d requests to %s\n", len(reqs), *outPath)
	}
	return nil
}

// convertTLC converts a real TLC trip-record file to the trace format.
func convertTLC(inPath, outPath string, maxRows int, stdout io.Writer) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	reqs, err := trace.ConvertTLC(in, trace.TLCOptions{MaxRows: maxRows})
	if err != nil {
		return err
	}
	out := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := trace.WriteCSV(out, reqs); err != nil {
		return err
	}
	if outPath != "" {
		fmt.Fprintf(stdout, "converted %d requests to %s\n", len(reqs), outPath)
	}
	return nil
}
