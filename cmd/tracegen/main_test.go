package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-city", "boston", "-frames", "10", "-volume", "2880", "-seed", "1"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "id,frame,pickup_x") {
		t.Errorf("missing CSV header:\n%.200s", out)
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("suspiciously few rows:\n%s", out)
	}
}

func TestRunToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	var sb strings.Builder
	if err := run([]string{"-city", "newyork", "-frames", "5", "-o", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.HasPrefix(string(data), "id,frame") {
		t.Error("file missing CSV header")
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Errorf("stdout = %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-city", "atlantis"}, &sb); err == nil {
		t.Error("accepted unknown city")
	}
	if err := run([]string{"-frames", "0"}, &sb); err == nil {
		t.Error("accepted zero frames")
	}
	if err := run([]string{"-o", "/no/such/dir/out.csv", "-frames", "5"}, &sb); err == nil {
		t.Error("accepted unwritable output path")
	}
}

func TestRunConvertTLC(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "tlc.csv")
	tlc := "tpep_pickup_datetime,pickup_longitude,pickup_latitude,dropoff_longitude,dropoff_latitude\n" +
		"2016-01-01 00:00:00,-74.0,40.70,-74.0,40.71\n" +
		"2016-01-01 00:02:00,-74.01,40.71,-74.0,40.72\n"
	if err := os.WriteFile(in, []byte(tlc), 0o600); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	if err := run([]string{"-tlc", in, "-o", out}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "id,frame") {
		t.Error("converted file missing trace header")
	}
	if !strings.Contains(sb.String(), "converted 2 requests") {
		t.Errorf("stdout = %q", sb.String())
	}

	if err := run([]string{"-tlc", "/no/such/file"}, &sb); err == nil {
		t.Error("accepted missing TLC input")
	}
}
