package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stabledispatch/internal/admission"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stats"
	"stabledispatch/internal/stream"
)

// server wraps a live simulator behind a JSON HTTP API: the O2O platform
// view of the dispatcher. Passengers POST requests, an operator (or a
// timer) POSTs ticks to advance dispatch frames, and anyone can read the
// fleet and the running metrics.
//
// Ingestion is decoupled from the frame loop: POST /v1/requests runs
// admission control and enqueues under the controller's own mutex, never
// touching s.mu, so accepting a ride stays fast while a paper-scale
// frame is solving. Admitted requests are batch-injected at the next
// frame boundary (stepLocked), in admission order.
type server struct {
	mu     sync.Mutex
	sim    *sim.Simulator
	events *eventBuffer
	slo    *slo.Engine
	adm    *admission.Controller
	// hub is the live-telemetry broadcast hub behind GET /v1/stream
	// (nil = streaming disabled); streamRing and streamHeartbeat are the
	// per-connection ring capacity and keepalive interval.
	hub             *stream.Hub
	streamRing      int
	streamHeartbeat time.Duration
	// frameNow mirrors the simulator's frame counter so handlers that
	// only need an advisory frame number (the 201 response, healthz's
	// draining view) can read it without s.mu.
	frameNow atomic.Int64
	start    time.Time
}

func newServer(s *sim.Simulator) *server {
	return &server{sim: s, adm: admission.New(admission.Config{}), start: time.Now()}
}

// withEvents attaches the event buffer served at /v1/events.
func (s *server) withEvents(b *eventBuffer) *server {
	s.events = b
	return s
}

// withAdmission replaces the default admission controller. The caller
// is responsible for wiring admissionSink into the simulator's event
// stream so the in-flight ledger settles.
func (s *server) withAdmission(c *admission.Controller) *server {
	s.adm = c
	return s
}

// admissionSink forwards lifecycle transitions into the admission
// controller's in-flight ledger and enqueue→assignment histogram.
// Breakdown events carry RequestID -1 and fall through untouched.
func admissionSink(c *admission.Controller) sim.EventSink {
	return sim.EventSinkFunc(func(e sim.Event) {
		switch e.Kind {
		case sim.EventAssign:
			c.NoteAssigned(e.RequestID)
		case sim.EventDropoff, sim.EventAbandon, sim.EventCancel:
			c.NoteTerminal(e.RequestID)
		case sim.EventRequeue, sim.EventRescue:
			c.NoteRequeued(e.RequestID)
		}
	})
}

// step advances one frame under the server lock; the auto-ticker uses it.
func (s *server) step() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked()
}

// stepLocked injects every request admitted since the last boundary —
// in admission order, stamped with the current frame — then advances
// one frame. Callers hold s.mu. Injecting the whole batch before Step
// makes the batch indistinguishable from synchronous injection: the
// requests join this frame's pending queue in exactly the order they
// were admitted, so dispatch output per frame is unchanged.
func (s *server) stepLocked() error {
	for _, r := range s.adm.TakeBatch() {
		r.Frame = s.sim.Frame()
		if err := s.sim.Inject(r); err != nil {
			// Unreachable while the controller is the sole ID source;
			// release the slot so a bug cannot leak in-flight capacity.
			s.adm.NoteInjectFailure(r.ID)
		}
	}
	if err := s.sim.Step(); err != nil {
		return err
	}
	s.frameNow.Store(int64(s.sim.Frame()))
	return nil
}

// drainFinal flushes any still-queued admitted requests through one
// final dispatch frame, so a graceful shutdown never drops a request it
// already answered 201 for.
func (s *server) drainFinal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm.QueueDepth() == 0 {
		return nil
	}
	return s.stepLocked()
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", s.postRequest)
	mux.HandleFunc("POST /v1/tick", s.postTick)
	mux.HandleFunc("GET /v1/taxis", s.getTaxis)
	mux.HandleFunc("GET /v1/report", s.getReport)
	mux.HandleFunc("GET /v1/requests/{id}", s.getRequest)
	mux.HandleFunc("DELETE /v1/requests/{id}", s.deleteRequest)
	mux.HandleFunc("POST /v1/chaos", s.postChaos)
	mux.HandleFunc("GET /v1/events", s.getEvents)
	mux.HandleFunc("GET /v1/stream", s.getStream)
	mux.HandleFunc("GET /v1/metrics", s.getMetrics)
	mux.HandleFunc("GET /v1/timeseries", s.getTimeseries)
	mux.HandleFunc("GET /v1/traces/{id}", s.getTrace)
	mux.HandleFunc("GET /v1/explain/{id}", s.getExplain)
	mux.HandleFunc("GET /v1/frames/{n}/stability", s.getStability)
	mux.HandleFunc("GET /v1/slo", s.getSLO)
	mux.HandleFunc("GET /v1/profile", s.getProfile)
	mux.HandleFunc("POST /v1/debug/bundle", s.postBundle)
	mux.HandleFunc("GET /healthz", s.getHealth)
	return mux
}

// healthOut is the liveness payload: still "status":"ok", now with
// enough occupancy context to read fleet health at a glance.
type healthOut struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Frame         int     `json:"frame"`
	Pending       int     `json:"pendingRequests"`
	Active        int     `json:"activeRequests"`
	Taxis         int     `json:"taxis"`
	TaxisIdle     int     `json:"taxisIdle"`
	TaxisOffline  int     `json:"taxisOffline"`
	// IntakeQueue is the admission queue depth: requests accepted but
	// not yet injected into a frame.
	IntakeQueue int `json:"intakeQueue"`
	// Inflight counts admitted requests that have not reached a
	// terminal lifecycle state (queued + pending + assigned + riding).
	Inflight int `json:"inflightRequests"`
	// Draining reports a shutdown in progress: new requests shed 503
	// while the admitted tail flushes.
	Draining bool `json:"draining,omitempty"`
	// SLO is the condensed alert state (absent when no SLO file is
	// loaded). Status stays "ok" for liveness — an SLO breach is an
	// alert, not a dead process.
	SLO *sloHealth `json:"slo,omitempty"`
}

func (s *server) getHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	c := s.sim.Counts()
	s.mu.Unlock()
	status := "ok"
	if s.adm.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthOut{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Frame:         c.Frame,
		Pending:       c.Pending,
		Active:        c.Active,
		Taxis:         c.Taxis,
		TaxisIdle:     c.TaxisIdle,
		TaxisOffline:  c.TaxisOffline,
		IntakeQueue:   s.adm.QueueDepth(),
		Inflight:      s.adm.Inflight(),
		Draining:      s.adm.Draining(),
		SLO:           s.sloHealthOut(),
	})
}

// pointJSON is the wire form of a coordinate.
type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type requestIn struct {
	Pickup  pointJSON `json:"pickup"`
	Dropoff pointJSON `json:"dropoff"`
	Seats   int       `json:"seats"`
}

type requestOut struct {
	ID int `json:"id"`
	// Frame is the earliest dispatch frame the request can join: it is
	// queued now and injected at the next frame boundary.
	Frame int `json:"frame"`
}

// decodeBody decodes a JSON request body, mapping an over-limit body
// (the MaxBytesReader installed by withBodyLimit) to 413 and any other
// decode failure to 400. A zero status means success.
func decodeBody(r *http.Request, v any) (int, error) {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode: %w", err)
	}
	return 0, nil
}

func (s *server) postRequest(w http.ResponseWriter, r *http.Request) {
	var in requestIn
	if code, err := decodeBody(r, &in); code != 0 {
		writeError(w, code, fmt.Errorf("decode request: %w", err))
		return
	}
	if in.Seats < 0 || in.Seats > 6 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("seats %d out of range", in.Seats))
		return
	}
	// Admission control instead of the simulator lock: the controller
	// allocates the ID and queues the request for the next frame
	// boundary, or sheds. The handler never waits on a solving frame.
	id, err := s.adm.Admit(fleet.Request{
		Pickup:  geo.Point{X: in.Pickup.X, Y: in.Pickup.Y},
		Dropoff: geo.Point{X: in.Dropoff.X, Y: in.Dropoff.Y},
		Seats:   in.Seats,
	})
	if err != nil {
		var shed *admission.ShedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After", retrySeconds(shed.RetryAfter))
			code := http.StatusTooManyRequests
			if shed.Reason == admission.ReasonDraining {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Hand-rolled encoder: this is the hot ingest path (see encode.go).
	writeCreatedRequest(w, id, int(s.frameNow.Load()))
}

// retrySeconds renders a Retry-After hint in the header's non-negative
// integer-seconds form, rounding up so a sub-second hint never becomes
// "0" (which clients read as "immediately").
func retrySeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

type tickIn struct {
	Frames int `json:"frames"`
}

// tickChunkFrames bounds how long one /v1/tick batch holds the server
// lock: a 10000-frame batch used to pin s.mu for the whole run, starving
// /healthz and every read endpoint. Stepping in chunks and releasing the
// lock between them keeps the API responsive during long batches.
const tickChunkFrames = 64

func (s *server) postTick(w http.ResponseWriter, r *http.Request) {
	var in tickIn
	if r.ContentLength != 0 {
		if code, err := decodeBody(r, &in); code != 0 {
			writeError(w, code, fmt.Errorf("decode tick: %w", err))
			return
		}
	}
	if in.Frames <= 0 {
		in.Frames = 1
	}
	if in.Frames > 10000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("refusing to advance %d frames at once", in.Frames))
		return
	}
	frame, err := s.tick(in.Frames)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"frame": frame})
}

// tick advances the simulation by n frames in bounded chunks, releasing
// s.mu between chunks so concurrent handlers are never starved for the
// duration of a large batch.
func (s *server) tick(n int) (frame int, err error) {
	for n > 0 {
		chunk := n
		if chunk > tickChunkFrames {
			chunk = tickChunkFrames
		}
		n -= chunk
		s.mu.Lock()
		for i := 0; i < chunk; i++ {
			if err := s.stepLocked(); err != nil {
				s.mu.Unlock()
				return 0, err
			}
		}
		frame = s.sim.Frame()
		s.mu.Unlock()
	}
	return frame, nil
}

type taxiOut struct {
	ID       int       `json:"id"`
	Pos      pointJSON `json:"pos"`
	Idle     bool      `json:"idle"`
	Load     int       `json:"load"`
	Onboard  []int     `json:"onboard,omitempty"`
	Assigned []int     `json:"assigned,omitempty"`
}

func (s *server) getTaxis(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := s.sim.TaxiViews()
	s.mu.Unlock()
	out := make([]taxiOut, len(views))
	for i, v := range views {
		out[i] = taxiOut{
			ID:       v.ID,
			Pos:      pointJSON{X: v.Pos.X, Y: v.Pos.Y},
			Idle:     v.Idle,
			Load:     v.Load,
			Onboard:  v.Onboard,
			Assigned: v.Assigned,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type reportOut struct {
	Algorithm         string              `json:"algorithm"`
	Frame             int                 `json:"frame"`
	Requests          int                 `json:"requests"`
	Served            int                 `json:"served"`
	Episodes          int                 `json:"episodes"`
	SharedRides       int                 `json:"sharedRides"`
	MeanDelayMinutes  float64             `json:"meanDelayMinutes"`
	MeanPassengerDiss float64             `json:"meanPassengerDissKm"`
	MeanTaxiDiss      float64             `json:"meanTaxiDissKm"`
	FrameLatency      *prof.StageSummary  `json:"frameLatency,omitempty"`
	Stages            []prof.StageSummary `json:"stages,omitempty"`
}

func (s *server) getReport(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	rep := s.sim.Snapshot()
	frame := s.sim.Frame()
	s.mu.Unlock()
	// One read path for stage aggregation across the whole stack:
	// prof.StageBreakdown also feeds /v1/profile and taxisim's summary.
	frameLatency, stages := prof.StageBreakdown()
	writeJSON(w, http.StatusOK, reportOut{
		Algorithm:         rep.Algorithm,
		Frame:             frame,
		Requests:          len(rep.Requests),
		Served:            rep.ServedCount(),
		Episodes:          len(rep.Episodes),
		SharedRides:       rep.SharedRideCount(),
		MeanDelayMinutes:  nanToZero(stats.Mean(rep.DispatchDelays())),
		MeanPassengerDiss: nanToZero(stats.Mean(rep.PassengerDissatisfactions())),
		MeanTaxiDiss:      nanToZero(stats.Mean(rep.TaxiDissatisfactions())),
		FrameLatency:      frameLatency,
		Stages:            stages,
	})
}

// getMetrics exposes the obs registry in the Prometheus text format.
func (s *server) getMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w); err != nil {
		// The header is already out; the client sees a truncated body.
		return
	}
}

type requestStatusOut struct {
	ID           int    `json:"id"`
	Status       string `json:"status"`
	TaxiID       int    `json:"taxiId"`
	ArrivalFrame int    `json:"arrivalFrame"`
	AssignFrame  int    `json:"assignFrame"`
	PickupFrame  int    `json:"pickupFrame"`
	DropoffFrame int    `json:"dropoffFrame"`
	Rescued      bool   `json:"rescued,omitempty"`
	Requeues     int    `json:"requeues,omitempty"`
}

// requestStatus collapses a lifecycle record into one API status word.
func requestStatus(o sim.RequestOutcome) string {
	switch {
	case o.Cancelled:
		return "cancelled"
	case o.Abandoned:
		return "abandoned"
	case o.DropoffFrame >= 0:
		return "completed"
	case o.PickupFrame >= 0:
		return "riding"
	case o.Served:
		return "assigned"
	default:
		return "pending"
	}
}

// pathID parses the {id} path segment strictly: fmt.Sscanf("%d") would
// accept trailing junk ("/v1/requests/12abc" → 12), strconv.Atoi does
// not.
func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("bad request id %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *server) getRequest(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	o, ok := s.sim.RequestOutcome(id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("request %d not found", id))
		return
	}
	writeJSON(w, http.StatusOK, requestStatusOut{
		ID:           o.ID,
		Status:       requestStatus(o),
		TaxiID:       o.TaxiID,
		ArrivalFrame: o.ArrivalFrame,
		AssignFrame:  o.AssignFrame,
		PickupFrame:  o.PickupFrame,
		DropoffFrame: o.DropoffFrame,
		Rescued:      o.Rescued,
		Requeues:     o.Requeues,
	})
}

// deleteRequest is the passenger-cancellation endpoint: it withdraws a
// pending or assigned request, unwinding the assignment if one exists.
func (s *server) deleteRequest(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err = s.sim.CancelRequest(id)
	s.mu.Unlock()
	switch {
	case errors.Is(err, sim.ErrUnknownRequest):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, sim.ErrNotCancellable):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": "cancelled"})
	}
}

type chaosIn struct {
	// Kind is "outage" (taxi refuses new work for a window, finishing
	// its current fare) or "breakdown" (taxi dies on the spot: route
	// unwound, riders rescued).
	Kind   string `json:"kind"`
	TaxiID int    `json:"taxiId"`
	// From is the outage start frame (outages only; defaults to the
	// current frame).
	From int `json:"from"`
	// Frames is the fault duration (defaults to 30).
	Frames int `json:"frames"`
}

// postChaos injects an outage or breakdown into the live simulation, so
// operators can rehearse fleet failures against the running dispatcher.
func (s *server) postChaos(w http.ResponseWriter, r *http.Request) {
	var in chaosIn
	if code, err := decodeBody(r, &in); code != 0 {
		writeError(w, code, fmt.Errorf("decode chaos: %w", err))
		return
	}
	if in.Frames <= 0 {
		in.Frames = sim.DefaultRepairFrames
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	frame := s.sim.Frame()
	switch in.Kind {
	case "outage":
		from := in.From
		if from < frame {
			from = frame
		}
		if err := s.sim.InjectOutage(in.TaxiID, from, from+in.Frames); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"kind": "outage", "taxiId": in.TaxiID, "from": from, "to": from + in.Frames,
		})
	case "breakdown":
		if err := s.sim.InjectBreakdown(in.TaxiID, in.Frames); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"kind": "breakdown", "taxiId": in.TaxiID, "from": frame, "to": frame + in.Frames,
		})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown chaos kind %q (want outage or breakdown)", in.Kind))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already out; nothing more to do.
		return
	}
}

func nanToZero(x float64) float64 {
	if x != x {
		return 0
	}
	return x
}

// eventBuffer retains the most recent simulator events for the
// /v1/events endpoint.
type eventBuffer struct {
	mu     sync.Mutex
	events []sim.Event
	max    int
}

var _ sim.EventSink = (*eventBuffer)(nil)

func newEventBuffer(max int) *eventBuffer {
	if max <= 0 {
		max = 10000
	}
	return &eventBuffer{max: max}
}

// Record implements sim.EventSink.
func (b *eventBuffer) Record(e sim.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, e)
	if len(b.events) > b.max {
		b.events = b.events[len(b.events)-b.max:]
	}
}

// Since returns retained events at or after the given frame.
func (b *eventBuffer) Since(frame int) []sim.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []sim.Event
	for _, e := range b.events {
		if e.Frame >= frame {
			out = append(out, e)
		}
	}
	return out
}

func (s *server) getEvents(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		writeJSON(w, http.StatusOK, []sim.Event{})
		return
	}
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", q))
			return
		}
		since = n
	}
	limit := -1
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = n
	}
	out := s.events.Since(since)
	if limit >= 0 && len(out) > limit {
		// Keep the newest events: a poller asking for a bounded page
		// wants the tail of the stream.
		out = out[len(out)-limit:]
	}
	if out == nil {
		out = []sim.Event{}
	}
	writeJSON(w, http.StatusOK, out)
}
