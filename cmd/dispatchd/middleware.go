package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"stabledispatch/internal/obs"
)

// obsHTTPSeconds times every API request end to end, across all routes.
var obsHTTPSeconds = obs.GetOrCreateHistogram("http_request_seconds")

// statusWriter captures the status code a handler writes so the access
// log and the per-code request counter can report it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withObs wraps the API handler with request metrics
// (http_requests_total{code=...}, http_request_seconds) and, when logger
// is non-nil, one structured access-log line per request.
func withObs(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		obsHTTPSeconds.Observe(elapsed.Seconds())
		obs.GetOrCreateCounter(fmt.Sprintf(`http_requests_total{code="%d"}`, sw.status)).Inc()
		if logger != nil {
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", elapsed,
			)
		}
	})
}
