package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/obs"
)

// obsHTTPSeconds times every API request end to end, across all routes.
var obsHTTPSeconds = obs.GetOrCreateHistogram("http_request_seconds")

// obsHTTPPanics counts handler panics converted into JSON 500s.
var obsHTTPPanics = obs.GetOrCreateCounter("http_panics_total")

// maxBodyBytes caps request bodies; every API payload is a few hundred
// bytes, so a megabyte is generous and keeps a hostile client from
// streaming unbounded JSON into the decoder.
const maxBodyBytes = 1 << 20

// withRecovery converts a handler panic into a JSON 500 instead of
// letting net/http kill the connection, so one poisoned request cannot
// take down an operator's session mid-incident. If the handler already
// wrote a partial response the 500 header is lost, but the panic is
// still logged and counted.
func withRecovery(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				obsHTTPPanics.Inc()
				if logger != nil {
					logger.Error("handler panic",
						"method", r.Method, "path", r.URL.Path, "panic", rec)
				}
				flightrec.TriggerActive(-1, flightrec.ReasonPanic,
					fmt.Sprintf("HTTP handler panic on %s %s: %v", r.Method, r.URL.Path, rec))
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal server error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withBodyLimit installs http.MaxBytesReader on every request body;
// decodeBody maps the resulting error to 413.
func withBodyLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// statusWriter captures the status code a handler writes so the access
// log and the per-code request counter can report it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying connection's
// Flush and per-write deadline controls through the wrapper; the SSE
// stream handler depends on both.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObs wraps the API handler with request metrics
// (http_requests_total{code=...}, http_request_seconds) and, when logger
// is non-nil, one structured access-log line per request.
func withObs(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		obsHTTPSeconds.Observe(elapsed.Seconds())
		obs.GetOrCreateCounter(fmt.Sprintf(`http_requests_total{code="%d"}`, sw.status)).Inc()
		if logger != nil {
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", elapsed,
			)
		}
	})
}
