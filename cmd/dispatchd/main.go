// Command dispatchd is an O2O dispatch daemon: it keeps a live fleet
// simulation behind a JSON HTTP API, dispatching with the paper's stable
// matching (or any baseline). Passengers POST ride requests; each POST
// /v1/tick advances one one-minute dispatch frame.
//
//	dispatchd -addr :8080 -city boston -taxis 200 -algo nstd-p
//
// Ingestion is overload-safe: POST /v1/requests passes admission control
// (a bounded intake queue, -intake-queue, plus an in-flight cap,
// -max-inflight) and sheds 429 with Retry-After when either bound is
// hit. Admitted requests are injected at the next frame boundary in
// admission order. SIGTERM/SIGINT drains gracefully: new requests shed
// 503 while the admitted tail is flushed through a final frame.
//
// API:
//
//	POST   /v1/requests       {"pickup":{"x":1,"y":2},"dropoff":{"x":3,"y":4},"seats":1}
//	DELETE /v1/requests/{id}  passenger cancellation (before pickup)
//	POST   /v1/tick           {"frames":1}
//	POST   /v1/chaos          {"kind":"outage"|"breakdown","taxiId":3,"frames":30}
//	GET    /v1/taxis
//	GET    /v1/requests/{id}
//	GET    /v1/report
//	GET    /v1/events                  ?since=FRAME&limit=N
//	GET    /v1/traces/{id}             full decision trace of one request
//	GET    /v1/explain/{id}            why this taxi: ranks + rejected alternatives
//	GET    /v1/frames/{n}/stability    blocking-pair certificate of frame n
//	GET    /v1/timeseries              per-frame KPI series (?series=&from=&to=&step=&limit=&format=csv)
//	GET    /v1/slo                     per-objective SLO alert table (-slo-file)
//	GET    /v1/profile                 frame-budget profiler: stage breakdown, slow-frame attribution
//	POST   /v1/debug/bundle            force a flight-recorder diagnostic bundle (-bundle-dir)
//	GET    /v1/metrics        Prometheus text format
//	GET    /healthz           uptime, frame, occupancy counts, and SLO alert state
//
// Decision tracing is on by default (disable with -dtrace=false); the
// trace ring keeps the most recent -trace-capacity requests.
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/, kept off the public API address on purpose.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"stabledispatch/internal/admission"
	"stabledispatch/internal/carpool"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/prof"
	"stabledispatch/internal/share"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dispatchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dispatchd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cityName   = fs.String("city", "boston", "city model: boston or newyork")
		taxis      = fs.Int("taxis", 200, "fleet size")
		algo       = fs.String("algo", "nstd-p", "dispatch algorithm")
		seed       = fs.Int64("seed", 42, "random seed for taxi placement")
		theta      = fs.Float64("theta", 5, "sharing detour bound in km")
		auto       = fs.Duration("auto", 0, "advance one frame automatically at this interval (0 = manual /v1/tick only)")
		debug      = fs.String("debug-addr", "", "optional extra listener for net/http/pprof (e.g. localhost:6060; empty = disabled)")
		quiet      = fs.Bool("quiet", false, "suppress per-request access logging")
		frameDDL   = fs.Duration("frame-deadline", 0, "per-frame dispatch compute deadline; overruns and panics degrade to greedy (0 = unbounded)")
		dtraceOn   = fs.Bool("dtrace", true, "record per-request decision traces and frame stability certificates")
		traceCap   = fs.Int("trace-capacity", dtrace.DefaultCapacity, "max request traces retained in the decision-trace ring")
		kpiCap     = fs.Int("kpi-capacity", tseries.DefaultCapacity, "per-frame KPI samples retained for /v1/timeseries (0 disables recording)")
		workers    = fs.Int("workers", 0, "cost-plane worker pool size; 0 = GOMAXPROCS (results are identical for any value)")
		sloFile    = fs.String("slo-file", "", "SLO definitions file; objectives are evaluated every frame and served at /v1/slo (requires KPI recording)")
		bundleDir  = fs.String("bundle-dir", "", "flight-recorder bundle directory; enables diagnostic bundles on SLO breach, degrade, panic, certificate violation, or POST /v1/debug/bundle")
		intakeCap  = fs.Int("intake-queue", admission.DefaultQueueCap, "admission queue capacity: requests accepted but not yet injected into a frame; beyond it POST /v1/requests sheds 429")
		maxInfl    = fs.Int("max-inflight", 100000, "max admitted requests that have not reached a terminal state; beyond it POST /v1/requests sheds 429 (0 = unlimited)")
		streamBuf  = fs.Int("stream-buffer", stream.DefaultRingSize, "per-connection /v1/stream ring capacity; a consumer slower than the feed drops its own oldest entries beyond it")
		streamHB   = fs.Duration("stream-heartbeat", defaultStreamHeartbeat, "keepalive comment interval on idle /v1/stream connections")
		profBudget = fs.Duration("prof-budget", 0, "frame deadline budget for the frame-budget profiler; frames over it are overruns and, with -bundle-dir, capture pprof CPU/heap deltas into a flight-recorder bundle (0 = attribution only, no overrun detection)")
		profTopN   = fs.Int("prof-topn", prof.DefaultTopN, "slowest frames retained with per-stage attribution at /v1/profile")
		profCapt   = fs.Int("prof-capture-frames", prof.DefaultCaptureFrames, "frames the CPU profile spans after an overrun trigger")
		profCool   = fs.Int64("prof-cooldown", prof.DefaultCooldownFrames, "minimum frames between two overrun captures; overruns inside it are counted, not captured")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dtrace.SetEnabled(*dtraceOn)
	if *dtraceOn {
		dtrace.Default().SetCapacity(*traceCap)
	}

	var city trace.City
	switch *cityName {
	case "boston":
		city = trace.Boston()
	case "newyork":
		city = trace.NewYork()
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	fleetTaxis, err := trace.Taxis(city, *taxis, *seed)
	if err != nil {
		return err
	}
	d, err := daemonDispatcher(*algo, *theta)
	if err != nil {
		return err
	}
	if *frameDDL > 0 {
		d = dispatch.NewResilient(d, nil, *frameDDL)
	}
	events := newEventBuffer(10000)
	// The daemon's ring is a sliding window (no downsampling): operators
	// polling /v1/timeseries care about the recent trajectory, and the
	// memory bound is kpi-capacity fixed-width samples.
	var kpi *tseries.Recorder
	if *kpiCap > 0 {
		kpi = tseries.New(tseries.Config{Capacity: *kpiCap})
	}
	if *bundleDir != "" {
		if _, err := flightrec.Configure(flightrec.Config{Dir: *bundleDir, ChromeTrace: *dtraceOn}); err != nil {
			return err
		}
		defer flightrec.Disable()
	}
	// The frame-budget profiler is always on in the daemon: /v1/profile
	// and the prof stream topic need the ledger, and its disabled-overrun
	// cost is a few span reads per frame. Overrun captures only arm when
	// a budget is set; they bundle through the flight recorder when one
	// is configured.
	profCfg := prof.Config{
		BudgetNs:       profBudget.Nanoseconds(),
		TopN:           *profTopN,
		CaptureFrames:  *profCapt,
		CooldownFrames: *profCool,
	}
	if *profBudget > 0 && *bundleDir != "" {
		profCfg.OnCapture = flightrec.OverrunHandler()
	}
	prof.Configure(profCfg)
	defer prof.Disable()
	var sloEng *slo.Engine
	if *sloFile != "" {
		if kpi == nil {
			return fmt.Errorf("-slo-file requires KPI recording (-kpi-capacity > 0)")
		}
		sloEng, err = slo.Load(*sloFile)
		if err != nil {
			return err
		}
	}
	// The admission controller fronts POST /v1/requests; its Retry-After
	// hint is the auto-tick interval when one is set (the queue drains
	// once per frame), else the 1s default.
	adm := admission.New(admission.Config{
		QueueCap:    *intakeCap,
		MaxInflight: *maxInfl,
		RetryAfter:  *auto,
	})
	s, err := sim.New(sim.Config{
		Params:     pref.DefaultParams(),
		Dispatcher: d,
		Events:     sim.MultiSink(events, admissionSink(adm)),
		KPI:        kpi,
		SLO:        sloEng,
		Workers:    *workers,
	}, fleetTaxis, nil)
	if err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	accessLogger := logger
	if *quiet {
		accessLogger = nil
	}

	// The live-telemetry hub: producers (sim, slo, admission, dispatch)
	// publish through the process-wide handle, /v1/stream subscribes.
	// While no connection is up every publish gate is one atomic load.
	hub := stream.NewHub()
	stream.SetActive(hub)
	defer stream.SetActive(nil)

	// Middleware order: metrics/logging outermost (a recovered panic is
	// still logged with its 500), then panic recovery, then the body cap.
	server := newServer(s).withEvents(events).withSLO(sloEng).withAdmission(adm).
		withStream(hub, *streamBuf, *streamHB)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           withObs(accessLogger, withRecovery(logger, withBodyLimit(server.handler()))),
		ReadHeaderTimeout: 5 * time.Second,
		// Bound slow-loris reads and wedged writes; WriteTimeout leaves
		// room for a large manual /v1/tick batch on the paper-scale
		// fleet.
		ReadTimeout:  15 * time.Second,
		WriteTimeout: 120 * time.Second,
	}

	// Profiling stays on its own listener so it is never reachable
	// through the public API address.
	if *debug != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{
			Addr:              *debug,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("pprof listener up", "addr", *debug)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "err", err)
			}
		}()
		defer dbg.Close()
	}

	// Optional wall-clock frame advancement, with a managed lifetime:
	// stopAuto stops the ticker goroutine and waits for it, and is safe
	// to call more than once (the drain path stops it early, the defer
	// covers error exits).
	var (
		stopTicker = make(chan struct{})
		tickerDone = make(chan struct{})
		tickerOnce sync.Once
	)
	stopAuto := func() {
		tickerOnce.Do(func() { close(stopTicker) })
		<-tickerDone
	}
	if *auto > 0 {
		go func() {
			defer close(tickerDone)
			ticker := time.NewTicker(*auto)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := server.step(); err != nil {
						logger.Warn("auto tick failed", "err", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	} else {
		close(tickerDone)
	}
	defer stopAuto()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("dispatchd up",
			"algo", d.Name(), "addr", *addr, "taxis", *taxis, "city", city.Name)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		// Graceful drain: shed new work first (503 + Retry-After), let
		// in-flight handlers finish, stop the ticker, then flush any
		// already-admitted requests through one final dispatch frame so
		// every 201 the daemon issued reaches the dispatcher.
		logger.Info("shutdown signal: draining", "intakeQueue", adm.QueueDepth(), "inflight", adm.Inflight())
		adm.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr := srv.Shutdown(shutdownCtx)
		stopAuto()
		if err := server.drainFinal(); err != nil {
			logger.Warn("final drain frame failed", "err", err)
		}
		logger.Info("drained", "intakeQueue", adm.QueueDepth(), "accepted", adm.Accepted())
		return shutdownErr
	}
}

func daemonDispatcher(name string, theta float64) (sim.Dispatcher, error) {
	packCfg := share.PackConfig{Theta: theta, MaxGroupSize: 3, PairRadius: 2 * theta}
	carpoolCfg := carpool.Config{Theta: theta, MaxAdded: 2 * theta, SearchRadius: 2 * theta}
	switch name {
	case "nstd-p":
		return dispatch.NewNSTDP(), nil
	case "nstd-t":
		return dispatch.NewNSTDT(), nil
	case "greedy":
		return dispatch.NewGreedy(), nil
	case "mincost":
		return dispatch.NewMinCost(), nil
	case "bottleneck":
		return dispatch.NewBottleneck(), nil
	case "std-p":
		return dispatch.NewSTDP(packCfg), nil
	case "std-t":
		return dispatch.NewSTDT(packCfg), nil
	case "raii":
		return carpool.NewRAII(carpoolCfg), nil
	case "sarp":
		return carpool.NewSARP(carpoolCfg), nil
	case "ilp":
		return carpool.NewILP(packCfg), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
