package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	ts := httptest.NewServer(newServer(s).handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestRequestLifecycleOverHTTP(t *testing.T) {
	ts := testServer(t)

	// Submit a ride.
	resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 14, Y: 10},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	created := decode[requestOut](t, resp)

	// Tick a few minutes: the ride gets dispatched and eventually
	// completed (3.5 km at 1 km/min, pickup 0.5 km away).
	resp = postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status = %d", resp.StatusCode)
	}

	statusResp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", ts.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer statusResp.Body.Close()
	if statusResp.StatusCode != http.StatusOK {
		t.Fatalf("status code = %d", statusResp.StatusCode)
	}
	status := decode[requestStatusOut](t, statusResp)
	if status.Status != "completed" {
		t.Errorf("status = %q, want completed (%+v)", status.Status, status)
	}
	if status.TaxiID < 0 {
		t.Error("no taxi recorded")
	}

	// The report reflects the ride.
	repResp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer repResp.Body.Close()
	report := decode[reportOut](t, repResp)
	if report.Served != 1 || report.Requests != 1 {
		t.Errorf("report = %+v", report)
	}
	if report.Algorithm != "NSTD-P" {
		t.Errorf("algorithm = %q", report.Algorithm)
	}
	if report.Frame != 10 {
		t.Errorf("frame = %d, want 10", report.Frame)
	}
}

func TestGetTaxis(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/taxis")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	taxis := decode[[]taxiOut](t, resp)
	if len(taxis) != 2 {
		t.Fatalf("got %d taxis", len(taxis))
	}
	if !taxis[0].Idle || taxis[0].Load != 0 {
		t.Errorf("taxi 0 = %+v", taxis[0])
	}
}

func TestBadInputs(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/requests", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/requests", requestIn{Seats: 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seats status = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 99999})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge tick status = %d", resp.StatusCode)
	}

	statusResp, err := http.Get(ts.URL + "/v1/requests/xyz")
	if err != nil {
		t.Fatal(err)
	}
	statusResp.Body.Close()
	if statusResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", statusResp.StatusCode)
	}

	statusResp, err = http.Get(ts.URL + "/v1/requests/424242")
	if err != nil {
		t.Fatal(err)
	}
	statusResp.Body.Close()
	if statusResp.StatusCode != http.StatusNotFound {
		t.Errorf("missing id status = %d", statusResp.StatusCode)
	}
}

func TestDaemonDispatcherNames(t *testing.T) {
	for _, name := range []string{
		"nstd-p", "nstd-t", "greedy", "mincost", "bottleneck",
		"std-p", "std-t", "raii", "sarp", "ilp",
	} {
		if _, err := daemonDispatcher(name, 5); err != nil {
			t.Errorf("daemonDispatcher(%q): %v", name, err)
		}
	}
	if _, err := daemonDispatcher("nope", 5); err == nil {
		t.Error("accepted unknown dispatcher")
	}
}

func TestEmptyTickDefaultsToOne(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decode[map[string]int](t, resp)
	if out["frame"] != 1 {
		t.Errorf("frame = %d, want 1", out["frame"])
	}
}

func TestRunStartsAndShutsDown(t *testing.T) {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-taxis", "3"})
	}()
	// Give the server a moment to install its signal handler, then
	// interrupt the process; run must exit cleanly via Shutdown.
	time.Sleep(200 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down after interrupt")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-city", "gotham"}); err == nil {
		t.Error("accepted unknown city")
	}
	if err := run([]string{"-algo", "magic"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if err := run([]string{"-taxis", "-5"}); err == nil {
		t.Error("accepted negative fleet")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestEventsEndpoint(t *testing.T) {
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{X: 10, Y: 10}}}
	buffer := newEventBuffer(100)
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		Events:     buffer,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	ts := httptest.NewServer(newServer(s).withEvents(buffer).handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 5})

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := decode[[]sim.Event](t, resp)
	if len(events) < 3 {
		t.Fatalf("got %d events, want request+assign+pickup at least", len(events))
	}
	if events[0].Kind != sim.EventRequest {
		t.Errorf("first event = %v", events[0].Kind)
	}

	// Filtering by frame.
	resp2, err := http.Get(ts.URL + "/v1/events?since=99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if late := decode[[]sim.Event](t, resp2); len(late) != 0 {
		t.Errorf("since=99 returned %v", late)
	}

	resp3, err := http.Get(ts.URL + "/v1/events?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since status = %d", resp3.StatusCode)
	}
}

func TestEventsEndpointWithoutBuffer(t *testing.T) {
	ts := testServer(t) // no withEvents
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if events := decode[[]sim.Event](t, resp); len(events) != 0 {
		t.Errorf("events = %v, want empty", events)
	}
}

func TestEventBufferEviction(t *testing.T) {
	b := newEventBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(sim.Event{Frame: i})
	}
	got := b.Since(0)
	if len(got) != 3 || got[0].Frame != 2 {
		t.Errorf("Since = %v, want frames 2..4", got)
	}
}

func TestServerStep(t *testing.T) {
	taxis := []fleet.Taxi{{ID: 0}}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	srv := newServer(s)
	for i := 0; i < 3; i++ {
		if err := srv.step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if got := s.Frame(); got != 3 {
		t.Errorf("frame = %d, want 3", got)
	}
}

func TestRunAutoTick(t *testing.T) {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-taxis", "2", "-auto", "5ms"})
	}()
	time.Sleep(300 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run with auto ticker did not shut down")
	}
}
