package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
)

// withTracing flips the process-wide decision-trace layer on for one
// test, with a clean recorder before and after. The dispatchd tests
// share dtrace's process-wide state, so every tracing test goes through
// here to stay order-independent.
func withTracing(t *testing.T) {
	t.Helper()
	prev := dtrace.Enabled()
	dtrace.SetEnabled(true)
	dtrace.Default().Reset()
	t.Cleanup(func() {
		dtrace.SetEnabled(prev)
		dtrace.Default().Reset()
	})
}

// tracingServer builds a 3-taxi server for the provenance tests.
func tracingServer(t *testing.T) *httptest.Server {
	t.Helper()
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
		{ID: 2, Pos: geo.Point{X: 12, Y: 10}},
	}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	ts := httptest.NewServer(newServer(s).handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON[T any](t *testing.T, url string) (T, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var v T
	if resp.StatusCode == http.StatusOK {
		v = decode[T](t, resp)
	}
	return v, resp.StatusCode
}

// TestExplainEveryRequestE2E drives a multi-frame run and demands the
// acceptance bar: every request's /v1/explain answers with the assigned
// taxi, both preference ranks, and at least one rejected alternative
// with a reason.
func TestExplainEveryRequestE2E(t *testing.T) {
	withTracing(t)
	ts := tracingServer(t)

	// Frame 1: three rivals for three taxis. Frame 2: two more requests
	// while some taxis are still busy.
	var ids []int
	post := func(x float64) {
		resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
			Pickup:  pointJSON{X: x, Y: 10},
			Dropoff: pointJSON{X: x + 2, Y: 10},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create status = %d", resp.StatusCode)
		}
		ids = append(ids, decode[requestOut](t, resp).ID)
	}
	post(10.2)
	post(10.9)
	post(12.1)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 1})
	post(10.4)
	post(11.6)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 8})

	for _, id := range ids {
		status, code := getJSON[requestStatusOut](t, fmt.Sprintf("%s/v1/requests/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("request %d status code = %d", id, code)
		}
		ex, code := getJSON[explainOut](t, fmt.Sprintf("%s/v1/explain/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("explain %d status code = %d", id, code)
		}
		if ex.RequestID != id || ex.Status != status.Status {
			t.Errorf("explain %d = %+v, want status %q", id, ex, status.Status)
		}
		if ex.TaxiID != status.TaxiID {
			t.Errorf("explain %d taxi = %d, engine says %d", id, ex.TaxiID, status.TaxiID)
		}
		if status.TaxiID >= 0 {
			if ex.RequestRank < 0 || ex.TaxiRank < 0 {
				t.Errorf("explain %d lacks ranks: %+v", id, ex)
			}
			if ex.AssignFrame < 0 {
				t.Errorf("explain %d lacks assign frame", id)
			}
		}
		if len(ex.Alternatives) == 0 {
			t.Errorf("explain %d has no rejected alternative (3-taxi fleet): %+v", id, ex)
		}
		for _, a := range ex.Alternatives {
			if a.Reason == "" || a.TaxiID < 0 {
				t.Errorf("explain %d alternative lacks reason: %+v", id, a)
			}
			if a.TaxiID == ex.TaxiID {
				t.Errorf("explain %d lists its own taxi as an alternative", id)
			}
		}
		if ex.Summary == "" {
			t.Errorf("explain %d has empty summary", id)
		}

		// The raw trace behind it is also served.
		tr, code := getJSON[dtrace.Trace](t, fmt.Sprintf("%s/v1/traces/%d", ts.URL, id))
		if code != http.StatusOK {
			t.Fatalf("trace %d status code = %d", id, code)
		}
		if tr.RequestID != id || len(tr.Events) == 0 {
			t.Errorf("trace %d = %+v, want events", id, tr)
		}
	}
}

// TestStabilityEndpointE2E checks the per-frame certificate surface: the
// dispatched frame certifies stable with the right shape, idle frames
// certify trivially, and an injected destabilized matching is served
// with its violating pair.
func TestStabilityEndpointE2E(t *testing.T) {
	withTracing(t)
	ts := tracingServer(t)

	for _, x := range []float64{10.2, 11.4} {
		postJSON(t, ts.URL+"/v1/requests", requestIn{
			Pickup:  pointJSON{X: x, Y: 10},
			Dropoff: pointJSON{X: x + 1, Y: 10},
		})
	}
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 2})

	// Frame 0 dispatched two requests over three idle taxis.
	cert, code := getJSON[dtrace.Certificate](t, ts.URL+"/v1/frames/0/stability")
	if code != http.StatusOK {
		t.Fatalf("stability status code = %d", code)
	}
	if !cert.Stable || len(cert.Violations) != 0 {
		t.Errorf("dispatch frame certified unstable: %+v", cert)
	}
	if cert.Frame != 0 || cert.Requests != 2 || cert.Taxis != 3 || cert.Matched != 2 {
		t.Errorf("certificate shape = %+v", cert)
	}

	// Frame 1 had nothing pending: vacuously stable.
	cert, code = getJSON[dtrace.Certificate](t, ts.URL+"/v1/frames/1/stability")
	if code != http.StatusOK {
		t.Fatalf("idle frame status code = %d", code)
	}
	if !cert.Stable || cert.Matched != 0 {
		t.Errorf("idle frame certificate = %+v", cert)
	}

	// A destabilized matching (injected, as the engine never commits
	// one) is served verbatim with its violating pair.
	dtrace.Default().PutCertificate(&dtrace.Certificate{
		Frame: 77, Requests: 2, Taxis: 2, Matched: 2,
		Violations: []dtrace.BlockingPair{{
			RequestID: 4, TaxiID: 1, Reason: "blocking_pair",
			ReqRank: 0, ReqPartnerRank: 1, TaxiRank: 0, TaxiPartnerRank: 1,
			Detail: "request 4 and taxi 1 prefer each other over their partners",
		}},
		ViolationsTotal: 1,
	})
	cert, code = getJSON[dtrace.Certificate](t, ts.URL+"/v1/frames/77/stability")
	if code != http.StatusOK {
		t.Fatalf("injected frame status code = %d", code)
	}
	if cert.Stable || len(cert.Violations) != 1 {
		t.Fatalf("injected certificate = %+v, want unstable with one pair", cert)
	}
	if v := cert.Violations[0]; v.RequestID != 4 || v.TaxiID != 1 || v.Reason != "blocking_pair" {
		t.Errorf("violating pair = %+v", v)
	}
}

// TestTraceEndpointErrors pins the 400/404 contract of the new routes.
func TestTraceEndpointErrors(t *testing.T) {
	withTracing(t)
	ts := tracingServer(t)

	for path, want := range map[string]int{
		"/v1/traces/xyz":            http.StatusBadRequest,
		"/v1/traces/9999":           http.StatusNotFound,
		"/v1/explain/xyz":           http.StatusBadRequest,
		"/v1/explain/9999":          http.StatusNotFound,
		"/v1/frames/xyz/stability":  http.StatusBadRequest,
		"/v1/frames/9999/stability": http.StatusNotFound,
		"/v1/frames/-1/stability":   http.StatusNotFound, // valid int, no certificate
		"/v1/frames/1e3/stability":  http.StatusBadRequest,
		"/v1/traces/12abc":          http.StatusBadRequest,
		"/v1/explain/%20":           http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestTraceDisabledHint checks the operator hint when the layer is off.
func TestTraceDisabledHint(t *testing.T) {
	withTracing(t)
	dtrace.SetEnabled(false)
	ts := tracingServer(t)

	resp, err := http.Get(ts.URL + "/v1/traces/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["error"] == "" || !containsStr(body["error"], "tracing is disabled") {
		t.Errorf("error = %q, want disabled hint", body["error"])
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHealthzCounts checks the extended liveness payload.
func TestHealthzCounts(t *testing.T) {
	ts := tracingServer(t)
	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.2, Y: 10},
		Dropoff: pointJSON{X: 15, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 1})

	h, code := getJSON[healthOut](t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %f", h.UptimeSeconds)
	}
	if h.Frame != 1 {
		t.Errorf("frame = %d, want 1", h.Frame)
	}
	if h.Taxis != 3 {
		t.Errorf("taxis = %d, want 3", h.Taxis)
	}
	if h.Active != 1 {
		t.Errorf("active = %d, want 1 (one en-route rider)", h.Active)
	}
	if h.TaxisIdle != 2 {
		t.Errorf("idle = %d, want 2", h.TaxisIdle)
	}
}

// TestEventsLimit pins the limit query parameter: tail paging, zero, and
// strict parsing.
func TestEventsLimit(t *testing.T) {
	taxis := []fleet.Taxi{{ID: 0, Pos: geo.Point{X: 10, Y: 10}}}
	buffer := newEventBuffer(100)
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		Events:     buffer,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	ts := httptest.NewServer(newServer(s).withEvents(buffer).handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 5})

	all, code := getJSON[[]sim.Event](t, ts.URL+"/v1/events")
	if code != http.StatusOK || len(all) < 3 {
		t.Fatalf("events = %d items, code %d", len(all), code)
	}

	// limit keeps the newest tail.
	two, code := getJSON[[]sim.Event](t, ts.URL+"/v1/events?limit=2")
	if code != http.StatusOK || len(two) != 2 {
		t.Fatalf("limit=2 returned %d items, code %d", len(two), code)
	}
	if two[1] != all[len(all)-1] || two[0] != all[len(all)-2] {
		t.Errorf("limit=2 = %v, want tail of %v", two, all)
	}

	// A limit larger than the stream is a no-op.
	big, _ := getJSON[[]sim.Event](t, ts.URL+"/v1/events?limit=1000")
	if len(big) != len(all) {
		t.Errorf("limit=1000 returned %d items, want %d", len(big), len(all))
	}

	// limit=0 means no events.
	zero, code := getJSON[[]sim.Event](t, ts.URL+"/v1/events?limit=0")
	if code != http.StatusOK || len(zero) != 0 {
		t.Errorf("limit=0 returned %d items, code %d", len(zero), code)
	}

	// Junk and negatives are 400s, strictly parsed.
	for _, q := range []string{"bogus", "-1", "2.5", "1e2", "07x", ""} {
		if q == "" {
			continue
		}
		resp, err := http.Get(ts.URL + "/v1/events?limit=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("limit=%q status = %d, want 400", q, resp.StatusCode)
		}
	}
}
