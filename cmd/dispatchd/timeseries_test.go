package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/tseries"
)

// kpiServer builds a test server whose simulation carries a KPI recorder
// and has already run a few frames, so /v1/timeseries has samples.
func kpiServer(t *testing.T, frames int) *httptest.Server {
	t.Helper()
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		KPI:        tseries.New(tseries.Config{Capacity: 256}),
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	srv := newServer(s)
	for i := 0; i < frames; i++ {
		if err := srv.step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

func getTS(t *testing.T, base, query string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/timeseries" + query)
	if err != nil {
		t.Fatalf("GET /v1/timeseries%s: %v", query, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTimeseriesJSON(t *testing.T) {
	ts := kpiServer(t, 5)
	resp := getTS(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	out := decode[timeseriesOut](t, resp)
	if out.Count != 5 || len(out.Frames) != 5 {
		t.Fatalf("count %d / %d frames, want 5", out.Count, len(out.Frames))
	}
	if out.Stride != 1 {
		t.Errorf("stride %d, want 1", out.Stride)
	}
	// Default query returns every known series, each the full length.
	if len(out.Series) != len(tseries.SeriesNames) {
		t.Errorf("got %d series, want %d", len(out.Series), len(tseries.SeriesNames))
	}
	for name, vals := range out.Series {
		if len(vals) != 5 {
			t.Errorf("series %s has %d values, want 5", name, len(vals))
		}
	}
	for i, f := range out.Frames {
		if f != int64(i) {
			t.Errorf("frame[%d] = %d", i, f)
		}
	}
	// An idle simulation still burns wall clock each frame.
	for i, v := range out.Series["frame_ns"] {
		if v <= 0 {
			t.Errorf("frame_ns[%d] = %v, want > 0", i, v)
		}
	}
}

func TestTimeseriesSeriesSelection(t *testing.T) {
	ts := kpiServer(t, 3)
	resp := getTS(t, ts.URL, "?series=served,queued")
	out := decode[timeseriesOut](t, resp)
	if len(out.Series) != 2 {
		t.Fatalf("got %d series, want 2: %v", len(out.Series), out.Series)
	}
	for _, name := range []string{"served", "queued"} {
		if _, ok := out.Series[name]; !ok {
			t.Errorf("missing series %s", name)
		}
	}
}

func TestTimeseriesBadParams(t *testing.T) {
	ts := kpiServer(t, 2)
	cases := []struct {
		name, query string
	}{
		{"unknown series", "?series=bogus"},
		{"non-numeric from", "?from=abc"},
		{"negative from", "?from=-1"},
		{"to precedes from", "?from=5&to=2"},
		{"zero step", "?step=0"},
		{"non-numeric step", "?step=x"},
		{"zero limit", "?limit=0"},
		{"bad format", "?format=xml"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := getTS(t, ts.URL, tc.query)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			body := decode[map[string]string](t, resp)
			if body["error"] == "" {
				t.Errorf("missing error message in %v", body)
			}
		})
	}
}

func TestTimeseriesWindowAndStep(t *testing.T) {
	ts := kpiServer(t, 10)
	resp := getTS(t, ts.URL, "?from=2&to=7&step=2&series=served")
	out := decode[timeseriesOut](t, resp)
	want := []int64{2, 4, 6}
	if len(out.Frames) != len(want) {
		t.Fatalf("frames %v, want %v", out.Frames, want)
	}
	for i, f := range out.Frames {
		if f != want[i] {
			t.Errorf("frame[%d] = %d, want %d", i, f, want[i])
		}
	}
}

func TestTimeseriesLimitClamp(t *testing.T) {
	ts := kpiServer(t, 10)
	// Explicit small limit keeps the newest samples.
	resp := getTS(t, ts.URL, "?limit=3&series=served")
	out := decode[timeseriesOut](t, resp)
	if out.Count != 3 {
		t.Fatalf("count %d, want 3", out.Count)
	}
	if out.Frames[0] != 7 || out.Frames[2] != 9 {
		t.Errorf("frames %v, want [7 8 9]", out.Frames)
	}
	// A limit beyond the cap is accepted and clamped, not rejected.
	resp = getTS(t, ts.URL, fmt.Sprintf("?limit=%d&series=served", maxTimeseriesLimit*10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversized limit: status %d, want 200", resp.StatusCode)
	}
	out = decode[timeseriesOut](t, resp)
	if out.Count != 10 {
		t.Errorf("count %d, want all 10 samples", out.Count)
	}
}

func TestTimeseriesCSV(t *testing.T) {
	ts := kpiServer(t, 4)
	resp := getTS(t, ts.URL, "?format=csv&series=served,frame_ns")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("Content-Type %q, want text/csv; charset=utf-8", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d CSV lines, want header + 4 rows: %q", len(lines), lines)
	}
	if lines[0] != "frame,served,frame_ns" {
		t.Errorf("header %q", lines[0])
	}
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, fmt.Sprintf("%d,", i)) {
			t.Errorf("row %d = %q, want frame %d first", i, line, i)
		}
	}
}

// TestTimeseriesNoRecorder keeps the endpoint well-formed when the
// daemon runs with -kpi-capacity=0: empty series, not an error.
func TestTimeseriesNoRecorder(t *testing.T) {
	ts := testServer(t) // testServer configures no KPI recorder
	resp := getTS(t, ts.URL, "?series=served")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	out := decode[timeseriesOut](t, resp)
	if out.Count != 0 || len(out.Frames) != 0 {
		t.Errorf("count %d frames %v, want empty", out.Count, out.Frames)
	}
}
