package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/tseries"
)

// sloTestServer wires a two-taxi simulator with a KPI recorder and one
// backlog objective tight enough to breach the moment requests queue
// and recover two clean frames later.
func sloTestServer(t *testing.T) (*httptest.Server, *slo.Engine) {
	t.Helper()
	def, err := slo.ParseLine("backlog: queued == 0 fast=1 slow=1 clear=2")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slo.New([]slo.Def{def})
	if err != nil {
		t.Fatal(err)
	}
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		KPI:        tseries.New(tseries.Config{Capacity: 64}),
		SLO:        eng,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	ts := httptest.NewServer(newServer(s).withSLO(eng).handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// getSLOStatus fetches /v1/slo and returns the single objective.
func getSLOStatus(t *testing.T, url string) (sloOut, slo.Status) {
	t.Helper()
	resp, err := http.Get(url + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/slo status = %d", resp.StatusCode)
	}
	out := decode[sloOut](t, resp)
	if !out.Enabled || len(out.Objectives) != 1 {
		t.Fatalf("slo payload = %+v, want enabled with 1 objective", out)
	}
	return out, out.Objectives[0]
}

func TestSLOEndpointBreachThenRecover(t *testing.T) {
	ts, _ := sloTestServer(t)

	if _, st := getSLOStatus(t, ts.URL); st.State != slo.StateOK {
		t.Fatalf("initial state = %q, want ok", st.State)
	}

	// Four requests onto two taxis: the first tick leaves a backlog, so
	// the objective breaches (fast and slow windows are both 1 frame).
	for i := 0; i < 4; i++ {
		resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
			Pickup:  pointJSON{X: 10.5, Y: 10},
			Dropoff: pointJSON{X: 12, Y: 10},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 1})
	_, st := getSLOStatus(t, ts.URL)
	if st.State != slo.StateBreach || st.Breaches != 1 {
		t.Fatalf("after backlog: state = %q breaches = %d, want breach/1", st.State, st.Breaches)
	}

	// /healthz carries the alert without going unhealthy.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	h := decode[healthOut](t, resp)
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok (a breach is an alert, not death)", h.Status)
	}
	if h.SLO == nil || h.SLO.State != slo.StateBreach || h.SLO.Breaching != 1 {
		t.Errorf("healthz slo = %+v, want breach with 1 breaching", h.SLO)
	}

	// Draining the queue for clear=2 consecutive frames moves the
	// objective to recovered; clear more healthy frames settle it back
	// to ok. Tick one frame at a time so the endpoint is observed in
	// the recovered state before it fades.
	sawRecovered := false
	for i := 0; i < 20 && !sawRecovered; i++ {
		postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 1})
		_, st = getSLOStatus(t, ts.URL)
		switch st.State {
		case slo.StateRecovered:
			sawRecovered = true
		case slo.StateOK:
			t.Fatalf("objective went breach → ok without passing recovered (frame %d)", i)
		}
	}
	if !sawRecovered {
		t.Fatalf("objective never recovered: state = %q fast = %g", st.State, st.Fast)
	}
}

func TestSLOEndpointDisabled(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decode[sloOut](t, resp)
	if out.Enabled || len(out.Objectives) != 0 {
		t.Errorf("no-engine payload = %+v, want disabled and empty", out)
	}
}

func TestDebugBundleEndpoint(t *testing.T) {
	ts := testServer(t)

	// Without a flight recorder the endpoint degrades to 503, not 500.
	resp := postJSON(t, ts.URL+"/v1/debug/bundle", bundleIn{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-recorder status = %d, want 503", resp.StatusCode)
	}

	dir := t.TempDir()
	if _, err := flightrec.Configure(flightrec.Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	defer flightrec.Disable()

	resp = postJSON(t, ts.URL+"/v1/debug/bundle", bundleIn{Detail: "during incident 42"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	out := decode[bundleOut](t, resp)
	m, err := flightrec.ReadManifest(out.Path)
	if err != nil {
		t.Fatalf("ReadManifest(%s): %v", out.Path, err)
	}
	if m.Trigger.Reason != flightrec.ReasonManual || !m.Trigger.Forced {
		t.Errorf("trigger = %+v, want forced manual", m.Trigger)
	}
	if !strings.Contains(m.Trigger.Detail, "incident 42") {
		t.Errorf("detail %q lost the operator note", m.Trigger.Detail)
	}

	// Manual triggers bypass the cooldown: a second POST bundles too.
	resp = postJSON(t, ts.URL+"/v1/debug/bundle", bundleIn{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second bundle status = %d, want 201", resp.StatusCode)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bundles := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), flightrec.DefaultBundlePrefix) {
			bundles++
		}
	}
	if bundles != 2 {
		t.Errorf("bundle count = %d, want 2", bundles)
	}
}
