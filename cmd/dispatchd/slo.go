package main

// SLO and flight-recorder surfaces: GET /v1/slo exposes the engine's
// per-objective alert table, POST /v1/debug/bundle forces a diagnostic
// bundle out of the flight recorder, and /healthz carries the worst
// alert state so load balancers see a breach without parsing the table.

import (
	"fmt"
	"net/http"

	"stabledispatch/internal/flightrec"
	"stabledispatch/internal/slo"
)

// withSLO attaches the SLO engine served at /v1/slo.
func (s *server) withSLO(e *slo.Engine) *server {
	s.slo = e
	return s
}

// sloOut is the /v1/slo payload.
type sloOut struct {
	Enabled    bool         `json:"enabled"`
	Objectives []slo.Status `json:"objectives"`
}

func (s *server) getSLO(w http.ResponseWriter, _ *http.Request) {
	if s.slo == nil {
		writeJSON(w, http.StatusOK, sloOut{Enabled: false, Objectives: []slo.Status{}})
		return
	}
	writeJSON(w, http.StatusOK, sloOut{Enabled: true, Objectives: s.slo.Status()})
}

// sloHealth condenses the alert table for /healthz: the worst state
// plus the counts a dashboard needs at a glance.
type sloHealth struct {
	// State is the worst objective state (breach > warning > recovered
	// > ok).
	State     slo.State `json:"state"`
	Breaching int       `json:"breaching"`
	Warning   int       `json:"warning"`
	Total     int       `json:"total"`
}

// sloHealthOut summarises the engine's status, or nil when no SLO file
// is loaded.
func (s *server) sloHealthOut() *sloHealth {
	if s.slo == nil {
		return nil
	}
	sts := s.slo.Status()
	out := &sloHealth{State: slo.StateOK, Total: len(sts)}
	rank := func(st slo.State) int {
		switch st {
		case slo.StateBreach:
			return 3
		case slo.StateWarning:
			return 2
		case slo.StateRecovered:
			return 1
		}
		return 0
	}
	for _, st := range sts {
		switch st.State {
		case slo.StateBreach:
			out.Breaching++
		case slo.StateWarning:
			out.Warning++
		}
		if rank(st.State) > rank(out.State) {
			out.State = st.State
		}
	}
	return out
}

type bundleIn struct {
	// Detail is an optional operator note carried into the manifest.
	Detail string `json:"detail"`
}

type bundleOut struct {
	Path string `json:"path"`
}

// postBundle forces one diagnostic bundle (bypassing the trigger
// cooldown, not the retention cap). 503 when no flight recorder is
// configured.
func (s *server) postBundle(w http.ResponseWriter, r *http.Request) {
	rec := flightrec.Active()
	if rec == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("flight recorder disabled: start with -bundle-dir"))
		return
	}
	var in bundleIn
	if r.ContentLength != 0 {
		if code, err := decodeBody(r, &in); code != 0 {
			writeError(w, code, fmt.Errorf("decode bundle request: %w", err))
			return
		}
	}
	detail := in.Detail
	if detail == "" {
		detail = "operator-requested bundle"
	}
	s.mu.Lock()
	frame := s.sim.Frame()
	s.mu.Unlock()
	path, err := rec.Trigger(int64(frame), flightrec.ReasonManual, detail, true)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, bundleOut{Path: path})
}
