package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stabledispatch/internal/admission"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/trace"
	"stabledispatch/internal/tseries"
)

// admissionHarness is a dispatchd wired the way main() wires it: the
// admission controller in front, its event sink settling the ledger.
type admissionHarness struct {
	srv *server
	adm *admission.Controller
	ts  *httptest.Server
	sim *sim.Simulator
}

func newAdmissionHarness(t *testing.T, cfg sim.Config, taxis []fleet.Taxi, admCfg admission.Config) *admissionHarness {
	t.Helper()
	adm := admission.New(admCfg)
	cfg.Events = sim.MultiSink(cfg.Events, admissionSink(adm))
	s, err := sim.New(cfg, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	srv := newServer(s).withAdmission(adm)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return &admissionHarness{srv: srv, adm: adm, ts: ts, sim: s}
}

// qualityKPIs projects a sample onto its dispatch-quality fields,
// dropping runtime cost (FrameNs, Allocs), process-global cache and
// degrade counters, and the admission series — everything that can
// legitimately differ between a batch run and a daemon run of the same
// trace.
type qualityKPIs struct {
	Frame                               int64
	DelayMean, DelayP95                 float64
	Served, Queued, Expired, SharedOnes int64
	PassDissMean, TaxiDissMean          float64
	StabilityViolations                 int64
}

func quality(s tseries.Sample) qualityKPIs {
	return qualityKPIs{
		Frame:               s.Frame,
		DelayMean:           s.DelayMean,
		DelayP95:            s.DelayP95,
		Served:              s.Served,
		Queued:              s.Queued,
		Expired:             s.Expired,
		SharedOnes:          s.SharedRides,
		PassDissMean:        s.PassDissMean,
		TaxiDissMean:        s.TaxiDissMean,
		StabilityViolations: s.StabilityViolations,
	}
}

// TestAdmissionDeterminismPin is the PR's core correctness claim: a
// trace replayed through the HTTP front door — admission queue, batch
// injection at the frame boundary — produces frame-for-frame identical
// dispatch KPIs to the same trace run directly against the engine. The
// admission layer must be invisible to the dispatch output.
func TestAdmissionDeterminismPin(t *testing.T) {
	traceCfg := trace.Config{City: trace.Boston(), Frames: 30, RequestsPerDay: 6000, Seats: 3, Seed: 42}
	reqs, err := trace.Generate(traceCfg)
	if err != nil {
		t.Fatalf("trace.Generate: %v", err)
	}
	if len(reqs) == 0 {
		t.Fatal("empty trace")
	}
	const taxiCount, frames = 30, 90
	simCfg := func(kpi *tseries.Recorder) sim.Config {
		return sim.Config{
			Params:     pref.DefaultParams(),
			Dispatcher: dispatch.NewNSTDP(),
			KPI:        kpi,
		}
	}
	newTaxis := func() []fleet.Taxi {
		taxis, err := trace.Taxis(traceCfg.City, taxiCount, 7)
		if err != nil {
			t.Fatalf("trace.Taxis: %v", err)
		}
		return taxis
	}

	// Reference: direct injection, the taxisim path.
	kpiDirect := tseries.New(tseries.Config{Capacity: frames})
	direct, err := sim.New(simCfg(kpiDirect), newTaxis(), nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	next := 0
	for f := 0; f < frames; f++ {
		for next < len(reqs) && reqs[next].Frame == f {
			if err := direct.Inject(reqs[next]); err != nil {
				t.Fatalf("direct inject %d: %v", reqs[next].ID, err)
			}
			next++
		}
		if err := direct.Step(); err != nil {
			t.Fatalf("direct step %d: %v", f, err)
		}
	}

	// Candidate: the same trace POSTed over HTTP in arrival order, one
	// tick per frame.
	kpiHTTP := tseries.New(tseries.Config{Capacity: frames})
	h := newAdmissionHarness(t, simCfg(kpiHTTP), newTaxis(),
		admission.Config{QueueCap: len(reqs) + 1})
	next = 0
	for f := 0; f < frames; f++ {
		for next < len(reqs) && reqs[next].Frame == f {
			resp := postJSON(t, h.ts.URL+"/v1/requests", requestIn{
				Pickup:  pointJSON{X: reqs[next].Pickup.X, Y: reqs[next].Pickup.Y},
				Dropoff: pointJSON{X: reqs[next].Dropoff.X, Y: reqs[next].Dropoff.Y},
				Seats:   reqs[next].Seats,
			})
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("frame %d: create status = %d", f, resp.StatusCode)
			}
			created := decode[requestOut](t, resp)
			// The controller is the daemon's sole ID allocator and must
			// reproduce the trace's sequential IDs.
			if created.ID != reqs[next].ID {
				t.Fatalf("admitted ID %d, trace ID %d", created.ID, reqs[next].ID)
			}
			next++
		}
		resp := postJSON(t, h.ts.URL+"/v1/tick", tickIn{Frames: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tick status = %d", resp.StatusCode)
		}
	}

	ds, hs := kpiDirect.Snapshot(), kpiHTTP.Snapshot()
	if len(ds) != frames || len(hs) != frames {
		t.Fatalf("snapshot lengths %d/%d, want %d", len(ds), len(hs), frames)
	}
	for i := range ds {
		if quality(ds[i]) != quality(hs[i]) {
			t.Errorf("frame %d KPIs diverge:\n direct %+v\n http   %+v", i, quality(ds[i]), quality(hs[i]))
		}
	}
}

// TestConcurrentIngestionNoSilentDrop hammers the front door from many
// goroutines while the frame loop runs, then checks the zero-loss
// contract: every 201 the daemon issued reaches a terminal outcome,
// the intake queue is empty, and the in-flight ledger balances to zero.
func TestConcurrentIngestionNoSilentDrop(t *testing.T) {
	taxis, err := trace.Taxis(trace.Boston(), 10, 1)
	if err != nil {
		t.Fatalf("trace.Taxis: %v", err)
	}
	h := newAdmissionHarness(t, sim.Config{
		Params:         pref.DefaultParams(),
		Dispatcher:     dispatch.NewGreedy(),
		PatienceFrames: 5,
	}, taxis, admission.Config{QueueCap: 64, RetryAfter: time.Second})

	// Frame loop, racing the senders like -auto does.
	stop := make(chan struct{})
	stepperDone := make(chan struct{})
	go func() {
		defer close(stepperDone)
		for {
			select {
			case <-stop:
				return
			default:
				if err := h.srv.step(); err != nil {
					t.Errorf("step: %v", err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	const workers, perWorker = 8, 50
	var (
		mu       sync.Mutex
		accepted []int
		shed     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				x := 2 + float64((worker*perWorker+i)%16)
				resp := postJSON(t, h.ts.URL+"/v1/requests", requestIn{
					Pickup:  pointJSON{X: x, Y: 10},
					Dropoff: pointJSON{X: x + 1, Y: 11},
					Seats:   1,
				})
				switch resp.StatusCode {
				case http.StatusCreated:
					out := decode[requestOut](t, resp)
					mu.Lock()
					accepted = append(accepted, out.ID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-stepperDone

	if len(accepted)+shed != workers*perWorker {
		t.Fatalf("accepted %d + shed %d != sent %d", len(accepted), shed, workers*perWorker)
	}
	if got := h.adm.Accepted(); got != len(accepted) {
		t.Fatalf("controller accepted %d, client saw %d", got, len(accepted))
	}

	// Drive the simulation until every accepted request is terminal:
	// with 5-frame patience the pending tail abandons, and assigned
	// rides finish their routes.
	terminal := func(id int) bool {
		resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", h.ts.URL, id))
		if err != nil {
			t.Fatalf("status %d: %v", id, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accepted request %d: status endpoint answered %d", id, resp.StatusCode)
		}
		switch decode[requestStatusOut](t, resp).Status {
		case "completed", "abandoned", "cancelled":
			return true
		}
		return false
	}
	deadline := time.Now().Add(30 * time.Second)
	outstanding := append([]int(nil), accepted...)
	for len(outstanding) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d accepted requests never reached a terminal state (first: %d)",
				len(outstanding), outstanding[0])
		}
		if err := h.srv.step(); err != nil {
			t.Fatalf("drain step: %v", err)
		}
		live := outstanding[:0]
		for _, id := range outstanding {
			if !terminal(id) {
				live = append(live, id)
			}
		}
		outstanding = live
	}

	if depth := h.adm.QueueDepth(); depth != 0 {
		t.Errorf("intake queue depth %d after drain, want 0", depth)
	}
	if inflight := h.adm.Inflight(); inflight != 0 {
		t.Errorf("in-flight ledger %d after all terminal, want 0", inflight)
	}
}

// TestDrainShedsAndFlushes checks the SIGTERM path piecewise: draining
// sheds 503 with Retry-After, health reports it, and drainFinal pushes
// the already-admitted tail through a final frame.
func TestDrainShedsAndFlushes(t *testing.T) {
	taxis, err := trace.Taxis(trace.Boston(), 2, 1)
	if err != nil {
		t.Fatalf("trace.Taxis: %v", err)
	}
	h := newAdmissionHarness(t, sim.Config{
		Params:     pref.DefaultParams(),
		Dispatcher: dispatch.NewGreedy(),
	}, taxis, admission.Config{})

	resp := postJSON(t, h.ts.URL+"/v1/requests", requestIn{
		Pickup: pointJSON{X: 10, Y: 10}, Dropoff: pointJSON{X: 11, Y: 11}, Seats: 1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	admitted := decode[requestOut](t, resp)

	h.adm.BeginDrain()

	resp = postJSON(t, h.ts.URL+"/v1/requests", requestIn{
		Pickup: pointJSON{X: 10, Y: 10}, Dropoff: pointJSON{X: 11, Y: 11}, Seats: 1,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining create status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	hres, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	health := decode[healthOut](t, hres)
	if health.Status != "draining" || !health.Draining {
		t.Errorf("health = %q draining=%v, want draining", health.Status, health.Draining)
	}
	if health.IntakeQueue != 1 {
		t.Errorf("intake queue %d, want the admitted request", health.IntakeQueue)
	}

	if err := h.srv.drainFinal(); err != nil {
		t.Fatalf("drainFinal: %v", err)
	}
	if depth := h.adm.QueueDepth(); depth != 0 {
		t.Errorf("queue depth %d after final drain, want 0", depth)
	}
	sres, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", h.ts.URL, admitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	if sres.StatusCode != http.StatusOK {
		t.Fatalf("flushed request unknown to the engine: status %d", sres.StatusCode)
	}
}

// TestQueueFullSheds429 pins the bounded-queue contract at capacity 1.
func TestQueueFullSheds429(t *testing.T) {
	taxis, err := trace.Taxis(trace.Boston(), 1, 1)
	if err != nil {
		t.Fatalf("trace.Taxis: %v", err)
	}
	h := newAdmissionHarness(t, sim.Config{
		Params:     pref.DefaultParams(),
		Dispatcher: dispatch.NewGreedy(),
	}, taxis, admission.Config{QueueCap: 1, RetryAfter: 2 * time.Second})

	in := requestIn{Pickup: pointJSON{X: 10, Y: 10}, Dropoff: pointJSON{X: 11, Y: 11}, Seats: 1}
	if resp := postJSON(t, h.ts.URL+"/v1/requests", in); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create status = %d", resp.StatusCode)
	}
	resp := postJSON(t, h.ts.URL+"/v1/requests", in)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}

	// A tick drains the queue; the next request is accepted again.
	postJSON(t, h.ts.URL+"/v1/tick", tickIn{Frames: 1})
	if resp := postJSON(t, h.ts.URL+"/v1/requests", in); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-drain create status = %d", resp.StatusCode)
	}
}

// TestOverloadSLOFileLoads keeps ci/overload.slo parseable and bound to
// series the KPI samples actually carry.
func TestOverloadSLOFileLoads(t *testing.T) {
	eng, err := slo.Load("../../ci/overload.slo")
	if err != nil {
		t.Fatalf("slo.Load: %v", err)
	}
	st := eng.Status()
	if len(st) != 3 {
		t.Fatalf("got %d objectives, want 3", len(st))
	}
	names := map[string]bool{}
	for _, s := range st {
		names[s.Name] = true
	}
	for _, want := range []string{"shed_rate", "backlog", "pending_backlog"} {
		if !names[want] {
			t.Errorf("objective %q missing (have %v)", want, names)
		}
	}
}
