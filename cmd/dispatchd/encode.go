package main

// Hot-path response encoding. The generic writeJSON (reflection-driven
// encoding/json through a fresh encoder) is fine for operator reads,
// but three paths run at ingest rate and deserve hand-rolled encoders:
// the POST /v1/requests 201 body, the writeError envelope every shed
// response carries, and the SSE frame framing (stream.AppendSSE). All
// three build their bytes with append/strconv into pooled buffers — no
// reflection, no intermediate allocations — and the string escaper is
// pinned byte-for-byte against encoding/json by tests.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"
)

// bufPool recycles response-encoding buffers across requests. Pooled
// as *[]byte so Put does not allocate to box the slice header.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// setJSONContentType sets the Content-Type header unless the handler
// already did — the Get-first dance keeps the warmed hot path from
// allocating a fresh header slice per response.
func setJSONContentType(w http.ResponseWriter) {
	h := w.Header()
	if h.Get("Content-Type") == "" {
		h.Set("Content-Type", "application/json")
	}
}

// writeCreatedRequest writes the 201 response of POST /v1/requests —
// {"id":N,"frame":M} — without encoding/json. This is the daemon's
// hottest write path: every admitted ride renders one.
func writeCreatedRequest(w http.ResponseWriter, id, frame int) {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, `,"frame":`...)
	b = strconv.AppendInt(b, int64(frame), 10)
	b = append(b, '}', '\n')
	setJSONContentType(w)
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(b)
	*bp = b
	bufPool.Put(bp)
}

// writeError emits the uniform JSON error envelope, hand-encoded: shed
// responses (429/503) are exactly the path that runs hot under
// overload, when allocating the least matters most. Backpressure-class
// statuses always carry a Retry-After so clients can pace themselves;
// handlers that computed a sharper hint set the header before calling
// and the default does not overwrite it.
func writeError(w http.ResponseWriter, code int, err error) {
	switch code {
	case http.StatusRequestEntityTooLarge, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"error":`...)
	b = appendJSONString(b, err.Error())
	b = append(b, '}', '\n')
	setJSONContentType(w)
	w.WriteHeader(code)
	_, _ = w.Write(b)
	*bp = b
	bufPool.Put(bp)
}

// appendJSON appends the JSON encoding of v to b: the cold-path
// complement of the hand-rolled encoders (one allocation for the
// marshal, none for the framing). Used for one-shot payloads like the
// SSE connect snapshot.
func appendJSON(b []byte, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Snapshot payloads are plain structs; an encode failure is a
		// programming error surfaced by tests, not worth a 500 here.
		return append(b, '{', '}')
	}
	return append(b, data...)
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks ASCII bytes that pass through a JSON string literal
// unescaped, matching encoding/json's default (HTML-escaping) encoder:
// printable ASCII minus quote, backslash, and the HTML trio <, >, &.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		t[c] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// appendJSONString appends s as a JSON string literal, byte-for-byte
// identical to encoding/json's output (HTML escaping on, invalid UTF-8
// replaced with U+FFFD, U+2028/U+2029 escaped for JS embedding).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if jsonSafe[c] {
				b = append(b, c)
				i++
				continue
			}
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control characters and the HTML trio.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// encoding/json writes the escape sequence, not the raw
			// replacement character.
			b = append(b, `\ufffd`...)
			i++
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}
