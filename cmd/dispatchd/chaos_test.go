package main

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
)

// hardenedServer builds the same handler chain main() installs:
// recovery → body limit → mux, with an event buffer attached.
func hardenedServer(t *testing.T) *httptest.Server {
	t.Helper()
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	events := newEventBuffer(1000)
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		Events:     events,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	srv := newServer(s).withEvents(events)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := httptest.NewServer(withRecovery(logger, withBodyLimit(srv.handler())))
	t.Cleanup(ts.Close)
	return ts
}

func doRequest(t *testing.T, method, url string, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestDeleteRequestCancels(t *testing.T) {
	ts := hardenedServer(t)

	// Pickup 10 km out so a couple of ticks leave it assigned, not done.
	resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 20, Y: 10},
		Dropoff: pointJSON{X: 25, Y: 10},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	created := decode[requestOut](t, resp)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 2})

	url := fmt.Sprintf("%s/v1/requests/%d", ts.URL, created.ID)
	resp = doRequest(t, http.MethodDelete, url, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	out := decode[map[string]any](t, resp)
	if out["status"] != "cancelled" {
		t.Errorf("delete body = %v", out)
	}

	// The status endpoint agrees, and a second delete conflicts.
	resp = doRequest(t, http.MethodGet, url, "")
	if st := decode[requestStatusOut](t, resp); st.Status != "cancelled" {
		t.Errorf("status after delete = %q, want cancelled", st.Status)
	}
	if resp = doRequest(t, http.MethodDelete, url, ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("double delete status = %d, want 409", resp.StatusCode)
	}
}

func TestDeleteRequestErrors(t *testing.T) {
	ts := hardenedServer(t)
	if resp := doRequest(t, http.MethodDelete, ts.URL+"/v1/requests/404", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown = %d, want 404", resp.StatusCode)
	}

	// A completed ride is no longer cancellable.
	resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	created := decode[requestOut](t, resp)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 10})
	url := fmt.Sprintf("%s/v1/requests/%d", ts.URL, created.ID)
	if resp := doRequest(t, http.MethodDelete, url, ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("delete completed = %d, want 409", resp.StatusCode)
	}
}

func TestChaosEndpoint(t *testing.T) {
	ts := hardenedServer(t)

	resp := postJSON(t, ts.URL+"/v1/chaos", chaosIn{Kind: "outage", TaxiID: 0, Frames: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outage status = %d", resp.StatusCode)
	}
	out := decode[map[string]any](t, resp)
	if out["kind"] != "outage" || out["to"].(float64) != 5 {
		t.Errorf("outage body = %v", out)
	}

	resp = postJSON(t, ts.URL+"/v1/chaos", chaosIn{Kind: "breakdown", TaxiID: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breakdown status = %d", resp.StatusCode)
	}
	// Both taxis are now dark: a new request must stay pending.
	resp = postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	created := decode[requestOut](t, resp)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 3})
	resp = doRequest(t, http.MethodGet, fmt.Sprintf("%s/v1/requests/%d", ts.URL, created.ID), "")
	if st := decode[requestStatusOut](t, resp); st.Status != "pending" {
		t.Errorf("status with whole fleet dark = %q, want pending", st.Status)
	}

	if resp := postJSON(t, ts.URL+"/v1/chaos", chaosIn{Kind: "meteor", TaxiID: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/chaos", chaosIn{Kind: "breakdown", TaxiID: 42}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown taxi status = %d, want 404", resp.StatusCode)
	}
}

// TestStrictPathIDs pins the strconv.Atoi parsing: trailing junk after
// the numeric ID is a 400, not a silent truncation to the prefix.
func TestStrictPathIDs(t *testing.T) {
	ts := hardenedServer(t)
	for _, tt := range []struct{ method, path string }{
		{http.MethodGet, "/v1/requests/12abc"},
		{http.MethodGet, "/v1/requests/0x1f"},
		{http.MethodDelete, "/v1/requests/12abc"},
	} {
		if resp := doRequest(t, tt.method, ts.URL+tt.path, ""); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s = %d, want 400", tt.method, tt.path, resp.StatusCode)
		}
	}
	if resp := doRequest(t, http.MethodGet, ts.URL+"/v1/events?since=abc", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", resp.StatusCode)
	}
}

func TestRecoveryMiddlewareConvertsPanics(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	h := withRecovery(logger, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	before := obsHTTPPanics.Value()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/taxis", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Errorf("body = %q", rec.Body.String())
	}
	if obsHTTPPanics.Value() != before+1 {
		t.Error("http_panics_total not incremented")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := hardenedServer(t)
	// One giant JSON string token: syntactically fine, so the decoder
	// keeps reading until MaxBytesReader cuts it off.
	huge := append(append([]byte(`{"pickup":"`), bytes.Repeat([]byte("x"), maxBodyBytes+1)...), '"', '}')
	resp, err := http.Post(ts.URL+"/v1/requests", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}
