package main

// GET /v1/stream: the live telemetry feed over server-sent events. One
// long-lived GET replaces a polling loop over /v1/timeseries, /v1/slo,
// /v1/events, and /healthz: the connection subscribes to the broadcast
// hub, receives a coherent snapshot of current state, then gets every
// subsequent KPI sample, SLO transition, admission decision, lifecycle
// event, and operator notice the moment it is published.
//
// Wire protocol (text/event-stream):
//
//	event: snapshot          once, immediately after connect
//	data: {...}
//
//	event: kpi|slo|admission|events|notice|prof
//	id: <hub sequence number>
//	data: {...}
//
//	: heartbeat seq=<n>      every -stream-heartbeat of silence
//	: closed dropped=<n> delivered=<m>   terminal accounting comment
//
// Coherence: the handler subscribes BEFORE building the snapshot, so a
// message published during snapshot construction is buffered and
// delivered after it — a client may see a frame twice (snapshot and
// live), never a gap. Messages carry frame numbers and hub sequence
// numbers, so duplicates are trivially collapsed.
//
// Backpressure: each connection owns a bounded ring (-stream-buffer).
// A consumer slower than the feed drops its own oldest entries — the
// drops are counted in the terminal comment and in the process-wide
// stream_dropped_total counter — and can never block the frame loop,
// the hub, or any other connection.

import (
	"fmt"
	"net/http"
	"time"

	"stabledispatch/internal/prof"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/tseries"
)

const (
	// defaultStreamHeartbeat keeps idle connections alive through
	// proxies; comments are invisible to SSE clients.
	defaultStreamHeartbeat = 10 * time.Second
	// streamWriteTimeout bounds one SSE write+flush. The server's global
	// WriteTimeout would kill the long-lived connection, so the handler
	// manages its own per-write deadline instead.
	streamWriteTimeout = 15 * time.Second
	// snapshotKPIWindow is how many trailing KPI samples the connect
	// snapshot seeds a console with: enough for an 80-column sparkline.
	snapshotKPIWindow = 120
	// snapshotEventTail bounds the lifecycle-event tail in the snapshot.
	snapshotEventTail = 100
)

// withStream attaches the broadcast hub served at /v1/stream. ring is
// the per-connection buffer capacity (DefaultRingSize when
// non-positive); heartbeat the keepalive interval.
func (s *server) withStream(h *stream.Hub, ring int, heartbeat time.Duration) *server {
	s.hub = h
	s.streamRing = ring
	if heartbeat <= 0 {
		heartbeat = defaultStreamHeartbeat
	}
	s.streamHeartbeat = heartbeat
	return s
}

// streamSnapshot is the snapshot event's payload: enough current state
// to render a full console before the first live message arrives. Each
// section is present only when its topic is subscribed.
type streamSnapshot struct {
	Frame  int64          `json:"frame"`
	Topics []stream.Topic `json:"topics"`
	// KPI is the trailing per-frame sample window, oldest first.
	KPI []tseries.Sample `json:"kpi,omitempty"`
	// SLO is the full per-objective alert table (nil when no SLO file
	// is loaded, [] when loaded with the topic subscribed).
	SLO []slo.Status `json:"slo,omitempty"`
	// Admission is the front-door gauge set at connect time.
	Admission *admissionSnapshot `json:"admission,omitempty"`
	// Events is the retained lifecycle-event tail, oldest first.
	Events []sim.Event `json:"events,omitempty"`
	// Prof is the frame-budget profiler's run-cumulative stage ledger
	// (absent when the ledger is not installed).
	Prof *prof.Summary `json:"prof,omitempty"`
}

// admissionSnapshot mirrors the admission controller's gauges.
type admissionSnapshot struct {
	QueueDepth int  `json:"queueDepth"`
	Inflight   int  `json:"inflight"`
	Accepted   int  `json:"accepted"`
	Draining   bool `json:"draining,omitempty"`
}

// snapshot assembles the connect-time state for the subscribed topics.
// It takes s.mu only for the two simulator reads (frame and recorder
// pointer) — never while touching the hub, which has its own locks.
func (s *server) snapshot(topics map[stream.Topic]bool) streamSnapshot {
	s.mu.Lock()
	frame := int64(s.sim.Frame())
	rec := s.sim.KPIRecorder()
	s.mu.Unlock()

	snap := streamSnapshot{Frame: frame}
	for _, t := range stream.Topics {
		if topics[t] {
			snap.Topics = append(snap.Topics, t)
		}
	}
	if topics[stream.TopicKPI] && rec != nil {
		snap.KPI = rec.LastN(snapshotKPIWindow)
	}
	if topics[stream.TopicSLO] && s.slo != nil {
		snap.SLO = s.slo.Status()
	}
	if topics[stream.TopicAdmission] && s.adm != nil {
		snap.Admission = &admissionSnapshot{
			QueueDepth: s.adm.QueueDepth(),
			Inflight:   s.adm.Inflight(),
			Accepted:   s.adm.Accepted(),
			Draining:   s.adm.Draining(),
		}
	}
	if topics[stream.TopicEvents] && s.events != nil {
		tail := s.events.Since(0)
		if len(tail) > snapshotEventTail {
			tail = tail[len(tail)-snapshotEventTail:]
		}
		snap.Events = tail
	}
	if topics[stream.TopicProf] {
		if ld := prof.Active(); ld != nil {
			sum := ld.Summary()
			snap.Prof = &sum
		}
	}
	return snap
}

// getStream serves one SSE connection: subscribe, snapshot, then relay
// hub batches until the client goes away or a write fails.
func (s *server) getStream(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("live streaming disabled"))
		return
	}
	topics, err := stream.ParseTopics(r.URL.Query().Get("topics"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	want := make(map[stream.Topic]bool, len(stream.Topics))
	if len(topics) == 0 {
		for _, t := range stream.Topics {
			want[t] = true
		}
	} else {
		for _, t := range topics {
			want[t] = true
		}
	}

	// Subscribe before snapshotting: anything published while the
	// snapshot is being built lands in the ring and is delivered after
	// it. Duplicates are possible, gaps are not.
	sub := s.hub.Subscribe(s.streamRing, topics...)
	defer sub.Close()
	snap := s.snapshot(want)

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// send writes one encoded chunk under a fresh write deadline (the
	// handler opted out of the server-wide WriteTimeout, which would
	// otherwise kill the stream two minutes in) and flushes it.
	send := func(b []byte) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if _, err := w.Write(b); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	buf := make([]byte, 0, 16*1024)
	buf = append(buf, "event: snapshot\ndata: "...)
	buf = appendJSON(buf, snap)
	buf = append(buf, '\n', '\n')
	if !send(buf) {
		return
	}

	heartbeat := time.NewTicker(s.streamHeartbeat)
	defer heartbeat.Stop()
	var batch []stream.Msg
	for {
		select {
		case <-r.Context().Done():
			// Best-effort terminal accounting; the client may already be
			// gone.
			buf = stream.AppendSSEComment(buf[:0], fmt.Sprintf(
				"closed dropped=%d delivered=%d", sub.Dropped(), sub.Delivered()))
			send(buf)
			return
		case <-heartbeat.C:
			buf = stream.AppendSSEComment(buf[:0], fmt.Sprintf("heartbeat seq=%d", sub.Delivered()))
			if !send(buf) {
				return
			}
		case <-sub.Wait():
			batch = sub.TakeBatch(batch[:0])
			if len(batch) == 0 {
				continue
			}
			buf = buf[:0]
			for _, m := range batch {
				buf = stream.AppendSSE(buf, m)
			}
			if !send(buf) {
				return
			}
		}
	}
}
