package main

import (
	"net/http"
	"testing"

	"stabledispatch/internal/prof"
)

// TestProfileEndpoint drives frames with the cost ledger installed and
// checks GET /v1/profile serves a consistent attribution: the summary
// frame count matches the frames run, every retained slow frame's
// attributed stage time stays within its wall-clock, and the rolling
// stage distributions are present.
func TestProfileEndpoint(t *testing.T) {
	prof.Configure(prof.Config{TopN: 16})
	defer prof.Disable()
	ts := testServer(t)
	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 3})

	resp, err := http.Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[profileOut](t, resp)
	if !out.Enabled {
		t.Fatal("ledger installed but profile reports enabled=false")
	}
	if out.Summary == nil || out.Summary.Frames != 3 {
		t.Fatalf("summary = %+v, want 3 frames", out.Summary)
	}
	if len(out.TopFrames) != 3 {
		t.Fatalf("topFrames = %d, want 3 (TopN exceeds run length)", len(out.TopFrames))
	}
	for i, fr := range out.TopFrames {
		if fr.StageSumNs > fr.WallNs {
			t.Errorf("frame %d: stage sum %dns exceeds wall %dns", fr.Frame, fr.StageSumNs, fr.WallNs)
		}
		if i > 0 && fr.WallNs > out.TopFrames[i-1].WallNs {
			t.Errorf("topFrames not sorted slowest-first at index %d", i)
		}
	}
	if len(out.Stages) == 0 {
		t.Fatal("no rolling stage distributions")
	}
	seen := make(map[string]bool, len(out.Stages))
	for _, st := range out.Stages {
		seen[st.Stage] = true
	}
	for _, want := range []string{"idle_scan", "matching"} {
		if !seen[want] {
			t.Errorf("stage %q missing from rolling distributions (got %v)", want, out.Stages)
		}
	}
}

// TestProfileEndpointWithoutLedger checks the endpoint degrades to the
// rolling histogram view when no ledger is installed.
func TestProfileEndpointWithoutLedger(t *testing.T) {
	ts := testServer(t)
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 1})
	resp, err := http.Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decode[profileOut](t, resp)
	if out.Enabled || out.Summary != nil || out.TopFrames != nil {
		t.Fatalf("ledger sections present without a ledger: %+v", out)
	}
	if out.Stages == nil {
		t.Fatal("stages must be [] even without a ledger")
	}
}
