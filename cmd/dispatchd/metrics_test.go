package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"stabledispatch/internal/obs"
	"stabledispatch/internal/prof"
)

// interruptAfterStartup sends SIGINT once run has had time to install
// its signal handler and waits for a clean exit.
func interruptAfterStartup(t *testing.T, errCh <-chan error) {
	t.Helper()
	time.Sleep(200 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down after interrupt")
	}
}

// promSample matches one Prometheus text-format sample line:
// name, optional {label="value",...} block, and a numeric value.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_:][a-zA-Z0-9_:]*="[^"]*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="[^"]*")*\})? (\S+)$`)

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	ts := testServer(t)

	// Generate some traffic so the registry has dispatch series.
	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 3})

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}

	// Every line must be a TYPE comment or a well-formed sample whose
	// value parses as a float.
	names := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(m[4], 64); err != nil {
			t.Errorf("non-numeric value in %q: %v", line, err)
		}
		names[m[1]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("empty metrics body")
	}
	for _, want := range []string{
		"sim_frames_total",
		"sim_dispatch_frame_seconds_bucket",
		"sim_dispatch_frame_seconds_count",
		"dispatch_stage_seconds_bucket",
		"sim_events_total",
	} {
		if !names[want] {
			t.Errorf("metric family %q missing from exposition", want)
		}
	}
}

func TestWithObsCountsRequests(t *testing.T) {
	handler := withObs(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	ts := httptest.NewServer(handler)
	defer ts.Close()

	okCounter := obs.GetOrCreateCounter(`http_requests_total{code="200"}`)
	missCounter := obs.GetOrCreateCounter(`http_requests_total{code="404"}`)
	okBefore, missBefore := okCounter.Value(), missCounter.Value()
	secondsBefore := obsHTTPSeconds.Count()

	for _, path := range []string{"/", "/boom"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if got := okCounter.Value(); got != okBefore+1 {
		t.Errorf("200 counter = %d, want %d", got, okBefore+1)
	}
	if got := missCounter.Value(); got != missBefore+1 {
		t.Errorf("404 counter = %d, want %d", got, missBefore+1)
	}
	if got := obsHTTPSeconds.Count(); got != secondsBefore+2 {
		t.Errorf("http_request_seconds count = %d, want %d", got, secondsBefore+2)
	}
}

func TestReportIncludesStageBreakdown(t *testing.T) {
	ts := testServer(t)
	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup:  pointJSON{X: 10.5, Y: 10},
		Dropoff: pointJSON{X: 12, Y: 10},
	})
	postJSON(t, ts.URL+"/v1/tick", tickIn{Frames: 2})

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	report := decode[reportOut](t, resp)
	if report.FrameLatency == nil || report.FrameLatency.Count == 0 {
		t.Errorf("frame latency missing: %+v", report.FrameLatency)
	}
	stages := make(map[string]prof.StageSummary)
	for _, st := range report.Stages {
		stages[st.Stage] = st
	}
	for _, want := range []string{"idle_scan", "pref_build", "matching"} {
		if stages[want].Count == 0 {
			t.Errorf("stage %q missing from report (got %v)", want, report.Stages)
		}
	}
}

func TestRunWithDebugListener(t *testing.T) {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-addr", "127.0.0.1:0", "-taxis", "2", "-quiet",
			"-debug-addr", "127.0.0.1:0",
		})
	}()
	interruptAfterStartup(t, errCh)
}
