package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"stabledispatch/internal/tseries"
)

// GET /v1/timeseries — the per-frame KPI trajectory of the live run.
//
// Query parameters (all optional, all strictly parsed):
//
//	series  comma-separated series names (default: all of
//	        tseries.SeriesNames)
//	from    first frame, inclusive (default 0)
//	to      last frame, inclusive (default: latest)
//	step    keep every step-th retained sample (default 1)
//	limit   max samples returned, newest kept (default and cap 10000)
//	format  json (default) or csv
//
// The JSON payload is column-oriented — one frames array plus one value
// array per requested series — so plotting clients can feed it straight
// to a chart without pivoting; CSV serves the same columns for
// spreadsheet and gnuplot workflows.

// maxTimeseriesLimit caps one response's sample count.
const maxTimeseriesLimit = 10000

// timeseriesOut is the JSON wire shape of one time-series query.
type timeseriesOut struct {
	// Stride is the ring's current recording stride (frames between
	// retained samples once downsampling has compacted).
	Stride int `json:"stride"`
	// Count is the number of samples returned.
	Count  int                  `json:"count"`
	Frames []int64              `json:"frames"`
	Series map[string][]float64 `json:"series"`
}

// parseSeriesParam validates the comma-separated series list, defaulting
// to every known series.
func parseSeriesParam(raw string) ([]string, error) {
	if raw == "" {
		return tseries.SeriesNames, nil
	}
	names := strings.Split(raw, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		if !tseries.ValidSeries(names[i]) {
			return nil, fmt.Errorf("unknown series %q (want one of %s)",
				names[i], strings.Join(tseries.SeriesNames, ", "))
		}
	}
	return names, nil
}

// queryInt strictly parses one integer query parameter, returning def
// when absent.
func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, raw)
	}
	return n, nil
}

func (s *server) getTimeseries(w http.ResponseWriter, r *http.Request) {
	series, err := parseSeriesParam(r.URL.Query().Get("series"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	from, err := queryInt(r, "from", 0)
	if err == nil && from < 0 {
		err = fmt.Errorf("bad from %d: must be non-negative", from)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	to, err := queryInt(r, "to", -1)
	if err == nil && to >= 0 && to < from {
		err = fmt.Errorf("bad window [%d,%d]: to precedes from", from, to)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	step, err := queryInt(r, "step", 1)
	if err == nil && step < 1 {
		err = fmt.Errorf("bad step %d: must be at least 1", step)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := queryInt(r, "limit", maxTimeseriesLimit)
	if err == nil && limit < 1 {
		err = fmt.Errorf("bad limit %d: must be at least 1", limit)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if limit > maxTimeseriesLimit {
		limit = maxTimeseriesLimit
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad format %q (want json or csv)", format))
		return
	}

	// The recorder carries its own lock; no server lock needed.
	var samples []tseries.Sample
	stride := 1
	s.mu.Lock()
	rec := s.sim.KPIRecorder()
	s.mu.Unlock()
	if rec != nil {
		samples = rec.Window(int64(from), int64(to), step)
		stride = rec.Stride()
	} else {
		samples = []tseries.Sample{}
	}
	if len(samples) > limit {
		// Keep the newest: a bounded page wants the tail of the run.
		samples = samples[len(samples)-limit:]
	}

	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := tseries.WriteCSV(w, samples, series); err != nil {
			// Header already out; the client sees a truncated body.
			return
		}
		return
	}
	out := timeseriesOut{
		Stride: stride,
		Count:  len(samples),
		Frames: make([]int64, len(samples)),
		Series: make(map[string][]float64, len(series)),
	}
	for _, name := range series {
		out.Series[name] = make([]float64, len(samples))
	}
	for i, smp := range samples {
		out.Frames[i] = smp.Frame
		for _, name := range series {
			v, _ := smp.Value(name)
			out.Series[name][i] = v
		}
	}
	writeJSON(w, http.StatusOK, out)
}
