package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"stabledispatch/internal/dtrace"
	"stabledispatch/internal/sim"
)

// Decision-provenance surface: /v1/traces/{id} returns a request's raw
// causal timeline, /v1/explain/{id} folds it into a "why this taxi"
// answer with ranks and rejected alternatives, and
// /v1/frames/{n}/stability serves the frame's blocking-pair certificate.
// All three read the process-wide dtrace recorder, which dispatchd
// enables at startup unless -dtrace=false.

// getTrace serves the full causal timeline of one request.
func (s *server) getTrace(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tr, ok := dtrace.Default().Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, traceMiss(fmt.Errorf("no trace for request %d", id)))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// traceMiss annotates a trace lookup failure when the whole layer is
// switched off — the common operator mistake.
func traceMiss(err error) error {
	if !dtrace.Enabled() {
		return fmt.Errorf("%w (decision tracing is disabled; restart without -dtrace=false)", err)
	}
	return err
}

// getStability serves the stability certificate of one committed frame.
func (s *server) getStability(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad frame number %q", r.PathValue("n")))
		return
	}
	c, ok := dtrace.Default().Certificate(n)
	if !ok {
		writeError(w, http.StatusNotFound, traceMiss(fmt.Errorf("no certificate for frame %d (not yet committed, or evicted)", n)))
		return
	}
	writeJSON(w, http.StatusOK, c)
}

// explainOut is the compact human-readable answer to "why did request X
// get taxi Y".
type explainOut struct {
	RequestID int    `json:"requestId"`
	Status    string `json:"status"`
	TaxiID    int    `json:"taxiId"`
	// RequestRank is the assigned taxi's rank on the request's
	// preference list (0 = the request's first choice); TaxiRank is the
	// request's rank on the taxi's list. −1 when unassigned.
	RequestRank int `json:"requestRank"`
	TaxiRank    int `json:"taxiRank"`
	// AssignFrame is the frame the decisive dispatch happened in (−1
	// when unassigned).
	AssignFrame int `json:"assignFrame"`
	// SharedWith lists co-riders when the request rides in a share
	// group.
	SharedWith []int  `json:"sharedWith,omitempty"`
	Summary    string `json:"summary"`
	// Alternatives are the taxis the request did not get, best-ranked
	// first, each with the reason.
	Alternatives []alternativeOut `json:"alternatives"`
	// Proposals counts the deferred-acceptance proposals the request's
	// side made in the decisive frame.
	Proposals int `json:"proposals"`
}

// alternativeOut is one rejected (or forgone) taxi with its reason.
type alternativeOut struct {
	TaxiID int `json:"taxiId"`
	// RequestRank is the taxi's rank on the request's list.
	RequestRank int    `json:"requestRank"`
	Reason      string `json:"reason"`
}

// getExplain folds a request's trace into the compact explanation.
func (s *server) getExplain(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tr, ok := dtrace.Default().Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, traceMiss(fmt.Errorf("no trace for request %d", id)))
		return
	}
	s.mu.Lock()
	o, known := s.sim.RequestOutcome(id)
	s.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("request %d not found", id))
		return
	}
	writeJSON(w, http.StatusOK, buildExplain(tr, o))
}

// buildExplain derives the explanation from the causal timeline plus the
// engine's lifecycle record. The decisive frame is the one holding the
// request's last assignment (all matching events of a dispatch land in
// the same frame); for unassigned requests it is the last frame with
// matching events.
func buildExplain(tr dtrace.Trace, o sim.RequestOutcome) explainOut {
	out := explainOut{
		RequestID:   tr.RequestID,
		Status:      requestStatus(o),
		TaxiID:      o.TaxiID,
		RequestRank: -1,
		TaxiRank:    -1,
		AssignFrame: -1,
	}

	// Locate the decisive frame: the last assignment's frame wins.
	for _, e := range tr.Events {
		if e.Kind == "assign" {
			out.AssignFrame = e.Frame
		}
	}
	decisive := out.AssignFrame
	if decisive < 0 {
		for _, e := range tr.Events {
			if e.Kind == dtrace.KindPropose || e.Kind == dtrace.KindCandidates {
				decisive = e.Frame
			}
		}
	}

	var candidates *dtrace.Event
	altByTaxi := map[int]alternativeOut{}
	exhausted := false
	for k := range tr.Events {
		e := &tr.Events[k]
		if e.Frame != decisive {
			continue
		}
		switch e.Kind {
		case dtrace.KindCandidates:
			candidates = e
		case dtrace.KindPropose:
			out.Proposals++
			switch e.Outcome {
			case "accepted", "displaced", "upgraded":
				if e.TaxiID == o.TaxiID {
					out.RequestRank = e.ReqRank
					out.TaxiRank = e.TaxiRank
				}
			case "refused":
				altByTaxi[e.TaxiID] = alternativeOut{
					TaxiID:      e.TaxiID,
					RequestRank: e.ReqRank,
					Reason: fmt.Sprintf("taxi %d refused: it prefers request %d (its rank #%d) over this request (its rank #%d)",
						e.TaxiID, e.RivalID, e.RivalRank, e.TaxiRank),
				}
			case "refused_taxi":
				altByTaxi[e.TaxiID] = alternativeOut{
					TaxiID:      e.TaxiID,
					RequestRank: e.ReqRank,
					Reason: fmt.Sprintf("request declined: taxi %d (rank #%d) proposed but the request held taxi %d (rank #%d)",
						e.TaxiID, e.ReqRank, e.RivalID, e.RivalRank),
				}
			case "exhausted":
				exhausted = true
			}
		case dtrace.KindDisplaced:
			altByTaxi[e.TaxiID] = alternativeOut{
				TaxiID:      e.TaxiID,
				RequestRank: e.ReqRank,
				Reason: fmt.Sprintf("displaced: held taxi %d until request %d (the taxi's rank #%d, vs #%d for this request) took it",
					e.TaxiID, e.RivalID, e.RivalRank, e.TaxiRank),
			}
		case "assign":
			if len(e.Members) > 1 {
				for _, m := range e.Members {
					if m != tr.RequestID {
						out.SharedWith = append(out.SharedWith, m)
					}
				}
			}
		}
	}
	// Share-group membership also shows on matching events.
	if out.SharedWith == nil {
		for k := range tr.Events {
			e := &tr.Events[k]
			if e.Frame == decisive && e.Kind == dtrace.KindPropose && len(e.Members) > 1 {
				for _, m := range e.Members {
					if m != tr.RequestID {
						out.SharedWith = append(out.SharedWith, m)
					}
				}
				break
			}
		}
	}

	// Forgone candidates: taxis the request ranked below its assigned
	// one never saw a proposal — the request preferred what it got. They
	// complete the alternatives list so even a first-choice match
	// explains what was left on the table.
	if candidates != nil {
		for _, c := range candidates.Candidates {
			if c.TaxiID == o.TaxiID {
				continue
			}
			if _, seen := altByTaxi[c.TaxiID]; seen {
				continue
			}
			reason := fmt.Sprintf("not needed: the request ranked it #%d and was matched at rank #%d before proposing to it",
				c.Rank, out.RequestRank)
			if out.TaxiID < 0 {
				reason = fmt.Sprintf("ranked #%d by the request (%.2f km pickup) but the matching ended before a proposal was decided",
					c.Rank, c.PickupKm)
			} else if out.RequestRank >= 0 && c.Rank < out.RequestRank {
				// A better-ranked taxi with no refusal on record (e.g.
				// enumeration-based dispatchers record no proposals).
				reason = fmt.Sprintf("ranked #%d by the request but matched elsewhere in the chosen stable matching", c.Rank)
			}
			altByTaxi[c.TaxiID] = alternativeOut{TaxiID: c.TaxiID, RequestRank: c.Rank, Reason: reason}
		}
	}
	for _, a := range altByTaxi {
		out.Alternatives = append(out.Alternatives, a)
	}
	sort.Slice(out.Alternatives, func(a, b int) bool {
		ra, rb := out.Alternatives[a].RequestRank, out.Alternatives[b].RequestRank
		if ra < 0 {
			ra = 1 << 30
		}
		if rb < 0 {
			rb = 1 << 30
		}
		if ra != rb {
			return ra < rb
		}
		return out.Alternatives[a].TaxiID < out.Alternatives[b].TaxiID
	})

	out.Summary = explainSummary(out, candidates, exhausted)
	return out
}

// explainSummary renders the one-line human answer.
func explainSummary(out explainOut, candidates *dtrace.Event, exhausted bool) string {
	if out.TaxiID >= 0 {
		shared := ""
		if len(out.SharedWith) > 0 {
			shared = fmt.Sprintf(" sharing the ride with %d other request(s)", len(out.SharedWith))
		}
		return fmt.Sprintf("matched to taxi %d — the request's #%d choice, and the taxi ranks it #%d%s; %d better-or-considered alternative(s) explained below",
			out.TaxiID, out.RequestRank, out.TaxiRank, shared, len(out.Alternatives))
	}
	switch {
	case candidates != nil && candidates.Acceptable == 0:
		return fmt.Sprintf("unserved: all %d taxis in the frame sat behind a dummy partner (too far, or the trip does not pay)", candidates.Pool)
	case exhausted:
		return "unserved: every acceptable taxi refused in favour of a request it ranks higher; the request settled for its dummy partner"
	case out.AssignFrame < 0 && len(out.Alternatives) == 0:
		return "no dispatch decision traced yet (the request has not been through a dispatch frame with tracing enabled)"
	default:
		return "unserved so far: see alternatives for the taxis that went elsewhere"
	}
}
