package main

import (
	"net/http"

	"stabledispatch/internal/prof"
)

// profileOut is the GET /v1/profile payload: the frame-budget
// profiler's view of the serve path. Stages carries the rolling
// per-stage percentile distributions (present whenever frames have
// run, ledger or not); Summary and TopFrames come from the per-frame
// cost ledger and are absent until -prof is enabled.
type profileOut struct {
	// Enabled reports whether the per-frame cost ledger is installed.
	Enabled  bool  `json:"enabled"`
	BudgetNs int64 `json:"budgetNs,omitempty"`
	// Summary is the run-cumulative ledger: per-stage time/alloc/cache
	// attribution, overrun and capture counts.
	Summary *prof.Summary `json:"summary,omitempty"`
	// FrameLatency is the whole-frame wall-clock distribution.
	FrameLatency *prof.StageSummary `json:"frameLatency,omitempty"`
	// Stages are the rolling per-stage distributions.
	Stages []prof.StageSummary `json:"stages"`
	// TopFrames are the N slowest frames with per-frame attribution,
	// slowest first.
	TopFrames []prof.FrameReport `json:"topFrames,omitempty"`
}

func (s *server) getProfile(w http.ResponseWriter, _ *http.Request) {
	frameLatency, stages := prof.StageBreakdown()
	if stages == nil {
		stages = []prof.StageSummary{}
	}
	out := profileOut{FrameLatency: frameLatency, Stages: stages}
	if ld := prof.Active(); ld != nil {
		sum := ld.Summary()
		out.Enabled = true
		out.BudgetNs = sum.BudgetNs
		out.Summary = &sum
		out.TopFrames = ld.TopFrames()
	}
	writeJSON(w, http.StatusOK, out)
}
