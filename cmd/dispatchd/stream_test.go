package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stabledispatch/internal/admission"
	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/obs"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/tseries"
)

// streamServer builds a full daemon stack — simulator with KPI
// recording and event buffering, admission controller, broadcast hub —
// behind an httptest server, with the hub installed process-wide the
// way main() does it.
func streamServer(t *testing.T, ring int, heartbeat time.Duration) (*httptest.Server, *server) {
	t.Helper()
	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	events := newEventBuffer(1000)
	kpi := tseries.New(tseries.Config{Capacity: 512})
	adm := admission.New(admission.Config{})
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewNSTDP(),
		SpeedKmH:   60,
		Events:     sim.MultiSink(events, admissionSink(adm)),
		KPI:        kpi,
	}, taxis, nil)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	hub := stream.NewHub()
	stream.SetActive(hub)
	t.Cleanup(func() { stream.SetActive(nil) })
	srv := newServer(s).withEvents(events).withAdmission(adm).withStream(hub, ring, heartbeat)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestStreamRejectsUnknownTopic(t *testing.T) {
	ts, _ := streamServer(t, 64, time.Minute)
	resp, err := http.Get(ts.URL + "/v1/stream?topics=kpi,bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestStreamSnapshotThenLive(t *testing.T) {
	ts, srv := streamServer(t, 256, time.Minute)

	// Pre-stream state the snapshot must carry: one admitted request,
	// one dispatched frame.
	resp := postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup: pointJSON{X: 10.5, Y: 10}, Dropoff: pointJSON{X: 14, Y: 10},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if err := srv.step(); err != nil {
		t.Fatal(err)
	}

	conn, err := http.Get(ts.URL + "/v1/stream?topics=kpi,events,admission")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Body.Close()
	if conn.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", conn.StatusCode)
	}
	if ct := conn.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := stream.NewReader(conn.Body)

	ev, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", ev.Name)
	}
	var snap streamSnapshot
	if err := json.Unmarshal(ev.Data, &snap); err != nil {
		t.Fatalf("snapshot decode: %v (data %s)", err, ev.Data)
	}
	if snap.Frame != 1 {
		t.Fatalf("snapshot frame = %d, want 1", snap.Frame)
	}
	if len(snap.Topics) != 3 {
		t.Fatalf("snapshot topics = %v, want the 3 subscribed", snap.Topics)
	}
	if len(snap.KPI) != 1 {
		t.Fatalf("snapshot carries %d kpi samples, want the 1 recorded frame", len(snap.KPI))
	}
	if snap.Admission == nil || snap.Admission.Accepted != 1 {
		t.Fatalf("snapshot admission = %+v, want accepted=1", snap.Admission)
	}
	if len(snap.Events) == 0 {
		t.Fatal("snapshot carries no lifecycle events despite a dispatched request")
	}

	// Live phase: another request and frame must arrive as admission,
	// events, and kpi messages.
	postJSON(t, ts.URL+"/v1/requests", requestIn{
		Pickup: pointJSON{X: 10.2, Y: 10}, Dropoff: pointJSON{X: 13, Y: 10},
	})
	if err := srv.step(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(seen["kpi"] && seen["events"] && seen["admission"]) {
		select {
		case <-deadline:
			t.Fatalf("live events not all seen: %v", seen)
		default:
		}
		ev, err := r.ReadEvent()
		if err != nil {
			t.Fatalf("live read: %v (seen %v)", err, seen)
		}
		if ev.Name != "" {
			seen[ev.Name] = true
			if ev.ID == 0 {
				t.Fatalf("live event %q missing hub sequence id", ev.Name)
			}
		}
	}
}

func TestStreamHeartbeat(t *testing.T) {
	ts, _ := streamServer(t, 64, 30*time.Millisecond)
	conn, err := http.Get(ts.URL + "/v1/stream?topics=notice")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Body.Close()
	r := stream.NewReader(conn.Body)
	if ev, err := r.ReadEvent(); err != nil || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v, %v", ev, err)
	}
	ev, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.IsHeartbeat() || !strings.Contains(ev.Comment, "heartbeat") {
		t.Fatalf("idle stream produced %+v, want a heartbeat comment", ev)
	}
}

// gateRW is a ResponseWriter whose writes block until the gate opens:
// the server-side stand-in for a consumer that stopped reading.
type gateRW struct {
	h    http.Header
	gate chan struct{}

	mu  sync.Mutex
	buf strings.Builder
}

func (g *gateRW) Header() http.Header { return g.h }
func (g *gateRW) WriteHeader(int)     {}
func (g *gateRW) Flush()              {}
func (g *gateRW) Write(p []byte) (int, error) {
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func (g *gateRW) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.String()
}

// TestStreamStalledConnectionDropsAndAccounts pins the backpressure
// contract at the HTTP layer: a connection that stops reading fills its
// own ring, drops its own oldest entries (visible in
// stream_dropped_total), never blocks the publisher, and its terminal
// comment carries the drop count.
func TestStreamStalledConnectionDropsAndAccounts(t *testing.T) {
	_, srv := streamServer(t, 8, time.Minute)
	hub := srv.hub
	dropped0 := obs.CounterValue("stream_dropped_total")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &gateRW{h: make(http.Header), gate: make(chan struct{})}
	req := httptest.NewRequest("GET", "/v1/stream?topics=events", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.getStream(w, req)
	}()

	// Wait for the subscription, then flood: the handler is wedged in
	// its first write (the snapshot), so the ring (capacity 8) must
	// overwrite and count drops without ever delaying Publish.
	waitFor(t, func() bool { return hub.Subscribers() == 1 })
	const total = 500
	start := time.Now()
	for i := 0; i < total; i++ {
		hub.Publish(stream.TopicEvents, int64(i), map[string]int{"i": i})
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("publishing %d messages against a stalled connection took %v", total, elapsed)
	}
	waitFor(t, func() bool { return obs.CounterValue("stream_dropped_total") > dropped0 })

	// Release the connection and let it die; the terminal comment must
	// account the drops.
	close(w.gate)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not exit after context cancel")
	}
	out := w.String()
	if !strings.Contains(out, "closed dropped=") {
		t.Fatalf("terminal comment missing from output tail %q", tail(out, 200))
	}
	var gotDropped, gotDelivered uint64
	if _, err := fmt.Sscanf(out[strings.LastIndex(out, "closed dropped="):],
		"closed dropped=%d delivered=%d", &gotDropped, &gotDelivered); err != nil {
		t.Fatalf("terminal comment unparsable: %v (tail %q)", err, tail(out, 200))
	}
	if gotDropped == 0 {
		t.Fatal("stalled connection reports zero drops after flooding an 8-slot ring")
	}
	if got := obs.CounterValue("stream_dropped_total") - dropped0; got < gotDropped {
		t.Fatalf("stream_dropped_total grew by %d, less than the connection's own %d", got, gotDropped)
	}
}

// TestStreamFanout8OneStalled is the acceptance scenario: eight
// concurrent subscribers, one of them wedged, while the frame loop
// ticks — every healthy subscriber sees every frame's kpi sample, and
// stepping stays fast.
func TestStreamFanout8OneStalled(t *testing.T) {
	ts, srv := streamServer(t, 256, time.Minute)

	// The stalled subscriber: connects, never reads. Its ring is its
	// problem; everyone else's feed and the frame loop must not notice.
	stalledCtx, stalledCancel := context.WithCancel(context.Background())
	defer stalledCancel()
	stalledReq, _ := http.NewRequestWithContext(stalledCtx, "GET", ts.URL+"/v1/stream", nil)
	stalledResp, err := http.DefaultClient.Do(stalledReq)
	if err != nil {
		t.Fatal(err)
	}
	defer stalledResp.Body.Close()

	const healthyN = 7
	const frames = 20
	var wg sync.WaitGroup
	errs := make(chan error, healthyN)
	for i := 0; i < healthyN; i++ {
		conn, err := http.Get(ts.URL + "/v1/stream?topics=kpi")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Body.Close()
		wg.Add(1)
		go func(i int, body *stream.Reader) {
			defer wg.Done()
			got := 0
			for got < frames {
				ev, err := body.ReadEvent()
				if err != nil {
					errs <- fmt.Errorf("subscriber %d after %d frames: %w", i, got, err)
					return
				}
				if ev.Name == "kpi" {
					got++
				}
			}
		}(i, stream.NewReader(conn.Body))
	}

	start := time.Now()
	for f := 0; f < frames; f++ {
		if err := srv.step(); err != nil {
			t.Fatal(err)
		}
	}
	stepTime := time.Since(start)

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatalf("healthy subscribers did not all see %d kpi frames", frames)
	}
	// The tiny 2-taxi sim steps in microseconds; a generous bound still
	// catches a publisher blocking on the stalled connection.
	if stepTime > 5*time.Second {
		t.Fatalf("%d frames took %v with a stalled subscriber attached", frames, stepTime)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}
