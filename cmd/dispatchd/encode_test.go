package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestAppendJSONStringMatchesEncodingJSON pins the hand-rolled escaper
// byte-for-byte against encoding/json across the tricky corpus: the
// hot-path encoders must never produce a body the stdlib would not.
func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	corpus := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"newline\nand\ttab\rand\x00control\x1f",
		"html <b>&amp;</b> trio",
		"unicode: π ≈ 3.14159, 出租车, emoji 🚕",
		"line sep \u2028 and para sep \u2029",
		"invalid utf8: \xff\xfe partial \xc3",
		"mixed \x07bell π\n<& \xffend",
	}
	for _, s := range corpus {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := appendJSONString(nil, s)
		if string(got) != string(want) {
			t.Errorf("appendJSONString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestWriteCreatedRequestBody(t *testing.T) {
	rec := httptest.NewRecorder()
	writeCreatedRequest(rec, 42, 17)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The hand-rolled body must be exactly what the old
	// writeJSON(requestOut{...}) produced: wire compatibility is the
	// whole point.
	want, _ := json.Marshal(requestOut{ID: 42, Frame: 17})
	if got := rec.Body.String(); got != string(want)+"\n" {
		t.Fatalf("body = %q, want %q", got, string(want)+"\n")
	}
}

func TestWriteErrorBody(t *testing.T) {
	cases := []struct {
		code int
		err  error
	}{
		{http.StatusBadRequest, errors.New("decode request: bad json")},
		{http.StatusTooManyRequests, errors.New(`queue full <retry "soon" & back off>`)},
		{http.StatusServiceUnavailable, errors.New("draining\nnow")},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.code, tc.err)
		if rec.Code != tc.code {
			t.Fatalf("status = %d, want %d", rec.Code, tc.code)
		}
		want, _ := json.Marshal(map[string]string{"error": tc.err.Error()})
		if got := rec.Body.String(); got != string(want)+"\n" {
			t.Fatalf("body = %q, want %q", got, string(want)+"\n")
		}
		switch tc.code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if rec.Header().Get("Retry-After") == "" {
				t.Fatalf("code %d missing Retry-After", tc.code)
			}
		}
	}
}

func TestWriteErrorKeepsSharperRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	rec.Header().Set("Retry-After", "7")
	writeError(rec, http.StatusTooManyRequests, errors.New("shed"))
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the handler's sharper 7", got)
	}
}

// discardRW is a ResponseWriter with no body buffer, for allocation
// accounting of the encoders themselves.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardRW) WriteHeader(int)             {}

// TestWriteCreatedRequestZeroAlloc pins the 201 hot path at zero
// allocations once the buffer pool and the header map are warm.
func TestWriteCreatedRequestZeroAlloc(t *testing.T) {
	w := &discardRW{h: make(http.Header)}
	writeCreatedRequest(w, 1, 1) // warm the pool and the header
	allocs := testing.AllocsPerRun(200, func() {
		writeCreatedRequest(w, 123456, 789)
	})
	if allocs != 0 {
		t.Fatalf("writeCreatedRequest allocates %.1f times per call, want 0", allocs)
	}
}

// TestWriteErrorLowAlloc bounds the shed path: the envelope encoding
// itself must not allocate (the error string already exists).
func TestWriteErrorLowAlloc(t *testing.T) {
	w := &discardRW{h: make(http.Header)}
	err := errors.New("intake queue full")
	writeError(w, http.StatusTooManyRequests, err)
	allocs := testing.AllocsPerRun(200, func() {
		writeError(w, http.StatusTooManyRequests, err)
	})
	if allocs != 0 {
		t.Fatalf("writeError allocates %.1f times per call on a warm pool, want 0", allocs)
	}
}

func BenchmarkWriteCreatedRequest(b *testing.B) {
	w := &discardRW{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		writeCreatedRequest(w, i, i/10)
	}
}

// BenchmarkWriteCreatedRequestJSON is the before: the generic
// encoding/json path the hand-rolled encoder replaced.
func BenchmarkWriteCreatedRequestJSON(b *testing.B) {
	w := &discardRW{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusCreated, requestOut{ID: i, Frame: i / 10})
	}
}

func BenchmarkWriteError(b *testing.B) {
	w := &discardRW{h: make(http.Header)}
	err := fmt.Errorf("intake queue full")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		writeError(w, http.StatusTooManyRequests, err)
	}
}
