package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"stabledispatch/internal/dispatch"
	"stabledispatch/internal/fleet"
	"stabledispatch/internal/geo"
	"stabledispatch/internal/pref"
	"stabledispatch/internal/sim"
)

// FuzzRequestDecode drives arbitrary bytes through the POST
// /v1/requests decoder behind the production middleware chain. The
// handler must never panic and must answer only 201 (accepted), 400
// (malformed), 413 (over the body cap), or 429 (admission queue full —
// nothing drains it during the fuzz run).
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"pickup":{"x":1,"y":2},"dropoff":{"x":3,"y":4},"seats":1}`))
	f.Add([]byte(`{"pickup":{"x":1e308,"y":-1e308},"dropoff":{},"seats":6}`))
	f.Add([]byte(`{"seats":-1}`))
	f.Add([]byte(`{"seats":7}`))
	f.Add([]byte(`{"pickup":`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"pickup":{"x":"NaN"}}`))
	f.Add(bytes.Repeat([]byte(`{"pickup":{"x":1}}`), 1000))

	taxis := []fleet.Taxi{
		{ID: 0, Pos: geo.Point{X: 10, Y: 10}},
		{ID: 1, Pos: geo.Point{X: 11, Y: 10}},
	}
	s, err := sim.New(sim.Config{
		Params:     pref.Unbounded(),
		Dispatcher: dispatch.NewGreedy(),
		SpeedKmH:   60,
	}, taxis, nil)
	if err != nil {
		f.Fatalf("sim.New: %v", err)
	}
	handler := withBodyLimit(newServer(s).handler())

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // a panic fails the fuzz run
		switch rec.Code {
		case http.StatusCreated, http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}
