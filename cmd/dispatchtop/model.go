package main

import (
	"encoding/json"
	"fmt"
	"sync"

	"stabledispatch/internal/prof"
	"stabledispatch/internal/sim"
	"stabledispatch/internal/slo"
	"stabledispatch/internal/stream"
	"stabledispatch/internal/tseries"
)

// Wire mirrors of the daemon's payloads. dispatchtop is a separate
// binary talking JSON over SSE, so it declares the shapes it consumes
// instead of importing the server's internals; the shared types
// (tseries.Sample, slo.Status, sim.Event, stream.Notice) come from the
// same module and pin the field names.

// snapshot is the connect-time state event (event: snapshot).
type snapshot struct {
	Frame     int64            `json:"frame"`
	Topics    []stream.Topic   `json:"topics"`
	KPI       []tseries.Sample `json:"kpi"`
	SLO       []slo.Status     `json:"slo"`
	Admission *admissionGauges `json:"admission"`
	Events    []sim.Event      `json:"events"`
	Prof      *prof.Summary    `json:"prof"`
}

// admissionGauges mirrors the snapshot's admission section.
type admissionGauges struct {
	QueueDepth int  `json:"queueDepth"`
	Inflight   int  `json:"inflight"`
	Accepted   int  `json:"accepted"`
	Draining   bool `json:"draining"`
}

// admissionDecision mirrors admission.Decision on the live topic.
type admissionDecision struct {
	Kind       string `json:"kind"`
	ID         int    `json:"id"`
	Reason     string `json:"reason"`
	Batch      int    `json:"batch"`
	QueueDepth int    `json:"queueDepth"`
	Inflight   int    `json:"inflight"`
}

// sloTransition mirrors slo.Transition on the live topic.
type sloTransition struct {
	Name  string    `json:"slo"`
	Expr  string    `json:"expr"`
	From  slo.State `json:"from"`
	To    slo.State `json:"to"`
	Frame int64     `json:"frame"`
	Fast  float64   `json:"fast"`
	Slow  float64   `json:"slow"`
}

// eventTailLen bounds the rendered lifecycle-event and notice tails.
const eventTailLen = 10

// model is dispatchtop's entire state: everything on screen comes from
// here, and everything here comes from SSE events via apply. Guarded by
// mu because the reader goroutine applies while the UI ticker renders.
type model struct {
	mu sync.Mutex

	frame  int64
	topics []stream.Topic
	// kpi is the trailing sample window driving the sparklines.
	kpi    []tseries.Sample
	kpiCap int
	// slos holds per-objective state, render-ordered by first sight.
	slos       map[string]slo.Status
	sloOrder   []string
	adm        admissionGauges
	shed       map[string]int // live shed counts by reason
	lastIntake int
	events     []sim.Event
	notices    []stream.Notice
	// prof is the latest frame's per-stage cost attribution from the
	// prof topic; profSum the run-cumulative ledger from the snapshot.
	prof     *prof.FrameReport
	profSum  *prof.Summary
	overruns int64

	// Connection accounting for the status line.
	seq        uint64
	applied    uint64
	heartbeats uint64
	lastErr    string
}

func newModel(kpiWindow int) *model {
	if kpiWindow <= 0 {
		kpiWindow = 120
	}
	return &model{
		kpiCap: kpiWindow,
		slos:   make(map[string]slo.Status),
		shed:   make(map[string]int),
	}
}

// apply folds one SSE event into the model. Unknown event names and
// undecodable payloads are counted, not fatal: the console must survive
// a newer daemon.
func (m *model) apply(ev stream.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.IsHeartbeat() {
		m.heartbeats++
		return
	}
	if ev.ID > m.seq {
		m.seq = ev.ID
	}
	switch ev.Name {
	case "snapshot":
		var s snapshot
		if m.decode(ev.Data, &s) {
			m.frame = s.Frame
			m.topics = s.Topics
			m.kpi = append(m.kpi[:0], s.KPI...)
			m.trimKPI()
			for _, st := range s.SLO {
				m.upsertSLO(st)
			}
			if s.Admission != nil {
				m.adm = *s.Admission
			}
			m.events = append(m.events[:0], s.Events...)
			m.trimTails()
			if s.Prof != nil {
				m.profSum = s.Prof
				m.overruns = s.Prof.Overruns
			}
		}
	case "kpi":
		var s tseries.Sample
		if m.decode(ev.Data, &s) {
			m.frame = s.Frame
			m.kpi = append(m.kpi, s)
			m.trimKPI()
		}
	case "slo":
		var tr sloTransition
		if m.decode(ev.Data, &tr) {
			st := m.slos[tr.Name]
			if st.Name == "" {
				st.Name = tr.Name
			}
			st.Expr = tr.Expr
			st.State = tr.To
			st.Fast, st.Slow = tr.Fast, tr.Slow
			st.LastTransitionFrame = tr.Frame
			if tr.To == slo.StateBreach {
				st.Breaches++
			}
			m.upsertSLO(st)
		}
	case "admission":
		var d admissionDecision
		if m.decode(ev.Data, &d) {
			switch d.Kind {
			case "accepted":
				m.adm.Accepted++
				m.adm.QueueDepth = d.QueueDepth
				m.adm.Inflight = d.Inflight
			case "shed":
				m.shed[d.Reason]++
				m.adm.QueueDepth = d.QueueDepth
				m.adm.Inflight = d.Inflight
				if d.Reason == "draining" {
					m.adm.Draining = true
				}
			case "intake":
				m.lastIntake = d.Batch
				m.adm.QueueDepth = 0
				m.adm.Inflight = d.Inflight
			}
		}
	case "events":
		var e sim.Event
		if m.decode(ev.Data, &e) {
			m.events = append(m.events, e)
			m.trimTails()
		}
	case "notice":
		var n stream.Notice
		if m.decode(ev.Data, &n) {
			m.notices = append(m.notices, n)
			m.trimTails()
		}
	case "prof":
		var fr prof.FrameReport
		if m.decode(ev.Data, &fr) {
			m.prof = &fr
			if fr.Frame > m.frame {
				m.frame = fr.Frame
			}
			if fr.Overrun {
				m.overruns++
			}
		}
	}
}

// decode unmarshals and counts; a failure records the error for the
// status line instead of crashing the console.
func (m *model) decode(data []byte, v any) bool {
	if err := json.Unmarshal(data, v); err != nil {
		m.lastErr = fmt.Sprintf("decode: %v", err)
		return false
	}
	m.applied++
	return true
}

func (m *model) upsertSLO(st slo.Status) {
	if _, seen := m.slos[st.Name]; !seen {
		m.sloOrder = append(m.sloOrder, st.Name)
	}
	m.slos[st.Name] = st
}

func (m *model) trimKPI() {
	if len(m.kpi) > m.kpiCap {
		m.kpi = m.kpi[len(m.kpi)-m.kpiCap:]
	}
}

func (m *model) trimTails() {
	if len(m.events) > eventTailLen {
		m.events = m.events[len(m.events)-eventTailLen:]
	}
	if len(m.notices) > eventTailLen {
		m.notices = m.notices[len(m.notices)-eventTailLen:]
	}
}

// series extracts one named KPI series from the sample window.
func (m *model) series(name string) []float64 {
	out := make([]float64, 0, len(m.kpi))
	for _, s := range m.kpi {
		if v, ok := s.Value(name); ok {
			out = append(out, v)
		}
	}
	return out
}
