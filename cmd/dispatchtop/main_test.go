package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stabledispatch/internal/stream"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 5); got != "     " {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3}, 4)
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("sparkline width = %d, want 4", len(runes))
	}
	if runes[0] != sparkRunes[0] || runes[3] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("sparkline %q: min/max not at rune extremes", got)
	}
	// Longer than width: keeps the newest tail.
	got = sparkline([]float64{9, 9, 9, 0, 1}, 2)
	if []rune(got)[1] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("tailed sparkline %q should end at the max of the kept window", got)
	}
	// Flat series renders mid-height, padded on the left.
	got = sparkline([]float64{5}, 3)
	if !strings.HasPrefix(got, "  ") {
		t.Fatalf("short series %q not left-padded", got)
	}
}

// feed builds the SSE byte stream a daemon would send.
func feed(events ...string) string { return strings.Join(events, "") }

func sse(name string, id int, data string) string {
	return fmt.Sprintf("event: %s\nid: %d\ndata: %s\n\n", name, id, data)
}

const testSnapshot = `{"frame":5,"topics":["kpi","slo","admission","events","notice"],` +
	`"kpi":[{"frame":4,"delayMean":1.5,"delayP95":3,"served":10,"queued":2,"frameNs":1200000},` +
	`{"frame":5,"delayMean":1.2,"delayP95":2.5,"served":12,"queued":1,"frameNs":1100000}],` +
	`"slo":[{"name":"p95-delay","expr":"p95(delay) <= 8","state":"ok","fast":3,"slow":2.8}],` +
	`"admission":{"queueDepth":3,"inflight":7,"accepted":42},` +
	`"events":[{"frame":5,"kind":"assign","requestId":9,"taxiId":1}],` +
	`"prof":{"frames":5,"budgetNs":50000000,"overruns":1,"captures":1,"suppressed":0,` +
	`"avgWallNs":1150000,"avgAllocs":900,"stages":[]}}`

func TestModelApplyAndRender(t *testing.T) {
	m := newModel(16)
	r := stream.NewReader(strings.NewReader(feed(
		sse("snapshot", 0, testSnapshot),
		sse("kpi", 11, `{"frame":6,"delayMean":1.8,"delayP95":3.2,"served":15,"queued":4,"frameNs":900000}`),
		sse("slo", 12, `{"slo":"p95-delay","expr":"p95(delay) <= 8","from":"ok","to":"warning","frame":6,"fast":9,"slow":4}`),
		sse("admission", 13, `{"kind":"shed","id":-1,"reason":"queue_full","queueDepth":64,"inflight":80}`),
		sse("events", 14, `{"frame":6,"kind":"pickup","requestId":9,"taxiId":1}`),
		sse("notice", 15, `{"kind":"degrade","frame":6,"detail":"nstd-p degraded to greedy (deadline)"}`),
		sse("prof", 16, `{"frame":6,"wallNs":90000000,"allocs":1200,"overrun":true,"stageSumNs":85000000,`+
			`"stages":[{"stage":"matching","ns":70000000,"calls":1,"share":0.78},`+
			`{"stage":"cost_plane","ns":15000000,"calls":1,"share":0.17}]}`),
		": heartbeat seq=16\n\n",
	)))
	for {
		ev, err := r.ReadEvent()
		if err != nil {
			break
		}
		m.apply(ev)
	}

	if m.frame != 6 {
		t.Fatalf("frame = %d, want 6 after live kpi", m.frame)
	}
	if len(m.kpi) != 3 {
		t.Fatalf("kpi window = %d samples, want 3 (2 snapshot + 1 live)", len(m.kpi))
	}
	if st := m.slos["p95-delay"]; string(st.State) != "warning" || st.Fast != 9 {
		t.Fatalf("slo state after transition = %+v", st)
	}
	if m.adm.QueueDepth != 64 || m.shed["queue_full"] != 1 {
		t.Fatalf("admission after shed = %+v shed=%v", m.adm, m.shed)
	}
	if m.heartbeats != 1 {
		t.Fatalf("heartbeats = %d, want 1", m.heartbeats)
	}
	if m.seq != 16 {
		t.Fatalf("seq = %d, want 16", m.seq)
	}
	if m.prof == nil || m.prof.Frame != 6 {
		t.Fatalf("prof frame report = %+v, want frame 6", m.prof)
	}
	// 1 overrun from the snapshot summary + 1 live overrun frame.
	if m.overruns != 2 {
		t.Fatalf("overruns = %d, want 2", m.overruns)
	}

	out := render(m, 100, palette{on: false})
	for _, want := range []string{
		"frame 6", "delay mean", "p95-delay", "warning",
		"queue_full=1", "pickup", "degrade", "nstd-p degraded",
		"stages", "matching", "OVERRUN", "overruns 2", "captures 1", "budget 50.00ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("plain palette output contains ANSI escapes")
	}
}

func TestModelSurvivesGarbage(t *testing.T) {
	m := newModel(8)
	m.apply(stream.Event{Name: "kpi", ID: 1, Data: []byte("not json")})
	m.apply(stream.Event{Name: "mystery-topic", ID: 2, Data: []byte(`{}`)})
	if m.lastErr == "" {
		t.Fatal("decode failure not surfaced")
	}
	// Render must still work with a poisoned model.
	if out := render(m, 80, palette{on: false}); !strings.Contains(out, "decode") {
		t.Fatalf("render hides the decode error:\n%s", out)
	}
}

// TestRunOnceAgainstStubDaemon drives the full binary path (flag
// parsing, HTTP connect, SSE parse, render) against a canned daemon:
// the same contract the CI smoke exercises against a real one.
func TestRunOnceAgainstStubDaemon(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stream" {
			http.NotFound(w, r)
			return
		}
		if got := r.URL.Query().Get("topics"); got != "kpi,events" {
			t.Errorf("topics query = %q, want kpi,events", got)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sse("snapshot", 0, testSnapshot))
	}))
	defer ts.Close()

	var out strings.Builder
	err := run([]string{"-once", "-url", ts.URL, "-topics", "kpi,events"}, &out)
	if err != nil {
		t.Fatalf("run -once: %v", err)
	}
	for _, want := range []string{"dispatchtop", "frame 5", "delay mean", "assign"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-once output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunOnceConnectFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	if err := run([]string{"-once", "-url", ts.URL}, &strings.Builder{}); err == nil {
		t.Fatal("run succeeded against a 400 endpoint")
	}
}

// TestRenderStagePanelFromSnapshot pins the -once path: with a profiler
// summary from the snapshot but no live prof event yet, the stage panel
// renders the cumulative per-frame averages instead of disappearing.
func TestRenderStagePanelFromSnapshot(t *testing.T) {
	m := newModel(16)
	snap := `{"frame":5,"topics":["prof"],` +
		`"prof":{"frames":4,"budgetNs":50000000,"overruns":0,"captures":0,"suppressed":0,` +
		`"avgWallNs":2000000,"avgAllocs":100,` +
		`"stages":[{"stage":"matching","ns":4000000,"calls":4,"share":0.5}]}}`
	r := stream.NewReader(strings.NewReader(sse("snapshot", 0, snap)))
	ev, err := r.ReadEvent()
	if err != nil {
		t.Fatal(err)
	}
	m.apply(ev)
	if m.prof != nil {
		t.Fatal("no live prof event was fed, but model has one")
	}
	out := render(m, 100, palette{})
	if !strings.Contains(out, "4 frames  avg wall 2.00ms") {
		t.Fatalf("snapshot stage header missing:\n%s", out)
	}
	// 4ms cumulative over 4 frames = 1ms per frame.
	if !strings.Contains(out, "matching") || !strings.Contains(out, "1.000ms") {
		t.Fatalf("per-frame stage row missing:\n%s", out)
	}
	if !strings.Contains(out, "budget 50.00ms") {
		t.Fatalf("budget summary line missing:\n%s", out)
	}
}
