// Command dispatchtop is an htop-style live console for a running
// dispatchd: one SSE connection to /v1/stream drives sparklines of the
// per-frame KPIs, the per-stage frame-budget attribution with overrun
// flags, the SLO alert table with fast/slow burn values, admission
// gauges with shed counts, and a rolling tail of lifecycle events and
// operator notices.
//
//	dispatchtop                          # console against localhost:8080
//	dispatchtop -url http://host:8080
//	dispatchtop -topics kpi,slo          # subscribe a subset
//	dispatchtop -once                    # render one frame to stdout, exit 0
//	dispatchtop -once -wait 2s           # ...after consuming 2s of live feed
//
// -once renders without cursor control or color, so CI can archive the
// frame as a build artifact and humans can pipe it to a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stabledispatch/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dispatchtop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dispatchtop", flag.ContinueOnError)
	var (
		base      = fs.String("url", "http://localhost:8080", "dispatchd base URL")
		topics    = fs.String("topics", "", "comma-separated topic filter (kpi,slo,admission,events,notice,prof; empty = all)")
		once      = fs.Bool("once", false, "render one frame to stdout and exit (headless/CI mode)")
		wait      = fs.Duration("wait", 0, "with -once: consume the live feed this long before rendering")
		refresh   = fs.Duration("refresh", 500*time.Millisecond, "live-mode repaint interval")
		width     = fs.Int("width", 100, "render width in columns")
		kpiWindow = fs.Int("kpi-window", 120, "KPI samples kept for sparklines")
		noColor   = fs.Bool("no-color", false, "disable ANSI colors in live mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	streamURL := strings.TrimSuffix(*base, "/") + "/v1/stream"
	if *topics != "" {
		streamURL += "?topics=" + url.QueryEscape(*topics)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	req, err := http.NewRequestWithContext(ctx, "GET", streamURL, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("connect %s: %w", streamURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("connect %s: %s: %s", streamURL, resp.Status, strings.TrimSpace(string(body)))
	}

	m := newModel(*kpiWindow)
	r := stream.NewReader(resp.Body)
	if *once {
		return runOnce(m, r, *wait, *width, out)
	}
	return runLive(ctx, m, r, *refresh, *width, !*noColor, out)
}

// runOnce consumes the snapshot (plus wait's worth of live feed) and
// renders a single plain frame: the CI and scripting mode.
func runOnce(m *model, r *stream.Reader, wait time.Duration, width int, out io.Writer) error {
	ev, err := r.ReadEvent()
	if err != nil {
		return fmt.Errorf("read snapshot: %w", err)
	}
	m.apply(ev)
	if wait > 0 {
		events, errs := readLoop(r)
		deadline := time.After(wait)
	drain:
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					break drain
				}
				m.apply(ev)
			case <-errs:
				// A mid-drain disconnect still renders what arrived.
				break drain
			case <-deadline:
				break drain
			}
		}
	}
	_, err = io.WriteString(out, render(m, width, palette{on: false}))
	return err
}

// runLive paints the alternate screen until the stream ends or the user
// interrupts.
func runLive(ctx context.Context, m *model, r *stream.Reader, refresh time.Duration, width int, color bool, out io.Writer) error {
	events, errs := readLoop(r)
	p := palette{on: color}

	// Alternate screen + hidden cursor; restored on every exit path.
	fmt.Fprint(out, "\x1b[?1049h\x1b[?25l")
	defer fmt.Fprint(out, "\x1b[?25h\x1b[?1049l")
	paint := func() {
		fmt.Fprint(out, "\x1b[H\x1b[2J"+render(m, width, p))
	}
	paint()

	ticker := time.NewTicker(refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-errs:
			if err == nil || err == io.EOF {
				return nil
			}
			return fmt.Errorf("stream closed: %w", err)
		case ev, ok := <-events:
			if !ok {
				return nil
			}
			m.apply(ev)
		case <-ticker.C:
			paint()
		}
	}
}

// readLoop pumps SSE events into a channel; the terminal error (or EOF)
// lands on errs and both channels close.
func readLoop(r *stream.Reader) (<-chan stream.Event, <-chan error) {
	events := make(chan stream.Event, 64)
	errs := make(chan error, 1)
	go func() {
		defer close(events)
		for {
			ev, err := r.ReadEvent()
			if err != nil {
				errs <- err
				return
			}
			events <- ev
		}
	}()
	return events, errs
}
