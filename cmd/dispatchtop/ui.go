package main

// Terminal rendering: plain ANSI, no dependencies. render produces one
// complete frame as a string; live mode repaints it on the alternate
// screen, -once prints it to stdout verbatim (minus cursor control),
// and CI archives it as an artifact.

import (
	"fmt"
	"strings"

	"stabledispatch/internal/slo"
)

// sparkRunes are the eight block heights of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled into width cells. A flat series renders
// mid-height; missing data renders spaces.
func sparkline(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	if len(vals) == 0 {
		return strings.Repeat(" ", width)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	b.Grow(width * 3)
	if pad := width - len(vals); pad > 0 {
		b.WriteString(strings.Repeat(" ", pad))
	}
	for _, v := range vals {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// shareBar renders a 0..1 share as a fixed-width solid bar: the stage
// panel's at-a-glance view of where the frame's budget went.
func shareBar(share float64, width int) string {
	if width <= 0 {
		return ""
	}
	n := int(share*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// ANSI helpers; colors degrade to plain text when disabled (-no-color
// and -once default to plain so artifacts and pipes stay readable).
type palette struct{ on bool }

func (p palette) paint(code, s string) string {
	if !p.on {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

func (p palette) state(st slo.State) string {
	s := string(st)
	switch st {
	case slo.StateBreach:
		return p.paint("31;1", s) // bold red
	case slo.StateWarning:
		return p.paint("33", s) // yellow
	case slo.StateRecovered:
		return p.paint("36", s) // cyan
	default:
		return p.paint("32", s) // green
	}
}

func (p palette) dim(s string) string  { return p.paint("2", s) }
func (p palette) bold(s string) string { return p.paint("1", s) }

// kpiRow is one sparkline line in the KPI panel.
type kpiRow struct {
	label  string
	series string
	format string // Printf verb for the current value
}

var kpiRows = []kpiRow{
	{"delay mean", "delay_mean", "%.2f"},
	{"delay p95", "delay_p95", "%.2f"},
	{"queued", "queued", "%.0f"},
	{"served", "served", "%.0f"},
	{"frame ms", "frame_ns", "%.2f"},
	{"intake queue", "admission_queue", "%.0f"},
}

// render draws the whole console frame from the model at the given
// width. It takes the model lock once.
func render(m *model, width int, p palette) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if width < 40 {
		width = 40
	}
	sparkW := width - 30
	if sparkW > 60 {
		sparkW = 60
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  frame %d  ·  %d msgs  ·  seq %d  ·  %d heartbeats\n",
		p.bold("dispatchtop"), m.frame, m.applied, m.seq, m.heartbeats)
	if m.lastErr != "" {
		fmt.Fprintf(&b, "%s\n", p.paint("31", "! "+m.lastErr))
	}
	b.WriteString(strings.Repeat("─", width) + "\n")

	// KPI sparklines.
	if len(m.kpi) > 0 {
		for _, row := range kpiRows {
			vals := m.series(row.series)
			if len(vals) == 0 {
				continue
			}
			cur := vals[len(vals)-1]
			if row.series == "frame_ns" {
				for i := range vals {
					vals[i] /= 1e6
				}
				cur = vals[len(vals)-1]
			}
			fmt.Fprintf(&b, "  %-13s %s %s\n",
				row.label, sparkline(vals, sparkW), fmt.Sprintf(row.format, cur))
		}
	} else {
		b.WriteString(p.dim("  no KPI samples yet (daemon started with -kpi-capacity 0?)") + "\n")
	}

	// Stage-latency panel: the latest frame's per-stage cost attribution
	// from the frame-budget profiler; before the first live prof event
	// (e.g. -once right after connect) the snapshot's cumulative shares
	// stand in.
	if m.prof != nil || m.profSum != nil {
		if fr := m.prof; fr != nil {
			tag := ""
			if fr.Overrun {
				tag = "  " + p.paint("31;1", "OVERRUN")
			}
			fmt.Fprintf(&b, "\n%s  f%d  wall %.2fms%s\n",
				p.bold("  stages"), fr.Frame, float64(fr.WallNs)/1e6, tag)
			for _, st := range fr.Stages {
				fmt.Fprintf(&b, "  %-13s %s %8.3fms %4.0f%%\n",
					st.Stage, shareBar(st.Share, 20), float64(st.Ns)/1e6, st.Share*100)
			}
		} else {
			sum := m.profSum
			fmt.Fprintf(&b, "\n%s  %d frames  avg wall %.2fms\n",
				p.bold("  stages"), sum.Frames, float64(sum.AvgWallNs)/1e6)
			for _, st := range sum.Stages {
				perFrame := float64(st.Ns)
				if sum.Frames > 0 {
					perFrame /= float64(sum.Frames)
				}
				fmt.Fprintf(&b, "  %-13s %s %8.3fms %4.0f%%\n",
					st.Stage, shareBar(st.Share, 20), perFrame/1e6, st.Share*100)
			}
		}
		if sum := m.profSum; sum != nil || m.overruns > 0 {
			line := fmt.Sprintf("  overruns %d", m.overruns)
			if sum != nil {
				if sum.BudgetNs > 0 {
					line += fmt.Sprintf("  budget %.2fms", float64(sum.BudgetNs)/1e6)
				}
				line += fmt.Sprintf("  captures %d  suppressed %d", sum.Captures, sum.Suppressed)
			}
			b.WriteString(p.dim(line) + "\n")
		}
	}

	// SLO table: state with fast/slow burn values.
	if len(m.sloOrder) > 0 {
		b.WriteString("\n" + p.bold("  SLO") + "\n")
		for _, name := range m.sloOrder {
			st := m.slos[name]
			fmt.Fprintf(&b, "  %-20s %-10s fast %-10.3f slow %-10.3f %s\n",
				st.Name, p.state(st.State), st.Fast, st.Slow, p.dim(st.Expr))
		}
	}

	// Admission gauges.
	b.WriteString("\n" + p.bold("  admission") + "\n")
	drain := ""
	if m.adm.Draining {
		drain = "  " + p.paint("33", "DRAINING")
	}
	fmt.Fprintf(&b, "  queue %-6d inflight %-7d accepted %-8d last batch %-5d%s\n",
		m.adm.QueueDepth, m.adm.Inflight, m.adm.Accepted, m.lastIntake, drain)
	if len(m.shed) > 0 {
		b.WriteString("  shed: ")
		first := true
		for _, reason := range []string{"queue_full", "inflight_cap", "draining"} {
			if n, ok := m.shed[reason]; ok {
				if !first {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%s=%d", reason, n)
				first = false
			}
		}
		b.WriteString("\n")
	}

	// Lifecycle event tail.
	if len(m.events) > 0 {
		b.WriteString("\n" + p.bold("  events") + "\n")
		for _, e := range m.events {
			taxi := ""
			if e.TaxiID >= 0 {
				taxi = fmt.Sprintf(" taxi %d", e.TaxiID)
			}
			req := ""
			if e.RequestID >= 0 {
				req = fmt.Sprintf(" req %d", e.RequestID)
			}
			fmt.Fprintf(&b, "  f%-6d %-10s%s%s\n", e.Frame, e.Kind, req, taxi)
		}
	}

	// Notices: degrades, breakdowns.
	if len(m.notices) > 0 {
		b.WriteString("\n" + p.bold("  notices") + "\n")
		for _, n := range m.notices {
			fmt.Fprintf(&b, "  f%-6d %s %s\n", n.Frame, p.paint("33", n.Kind), n.Detail)
		}
	}
	return b.String()
}
