package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func quickArgs(fig string) []string {
	return []string{
		"-fig", fig, "-quick",
		"-frames", "30", "-volume-scale", "0.04", "-taxi-scale", "0.04",
	}
}

func TestRunOneFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("fig5"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"fig5", "dispatch delay CDF", "NSTD-P", "Bottleneck", "regenerated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSharingFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(quickArgs("fig9"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"STD-P", "RAII", "SARP", "ILP"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "fig42"}, &sb); err == nil {
		t.Error("accepted unknown figure")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestRunPlotMode(t *testing.T) {
	var sb strings.Builder
	args := append(quickArgs("fig5"), "-plot")
	if err := run(args, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "+---") && !strings.Contains(out, "+----") {
		t.Errorf("plot mode produced no chart axis:\n%.400s", out)
	}
	if !strings.Contains(out, "* NSTD-P") {
		t.Errorf("plot legend missing:\n%.400s", out)
	}
}

func TestRunJSONMode(t *testing.T) {
	var sb strings.Builder
	args := append(quickArgs("fig5"), "-json")
	if err := run(args, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var figures []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &figures); err != nil {
		t.Fatalf("output is not JSON: %v\n%.300s", err, sb.String())
	}
	if len(figures) != 1 || figures[0]["id"] != "fig5" {
		t.Errorf("figures = %v", figures)
	}
}
