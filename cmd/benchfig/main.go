// Command benchfig regenerates the paper's evaluation figures (Figs.
// 4–9) and the extra ablation experiments as aligned text tables:
//
//	benchfig -fig fig5            # one figure at paper scale (one day)
//	benchfig -fig all -quick      # everything, shrunken for a fast pass
//	benchfig -fig fig8 -frames 360 -volume-scale 0.25
//	benchfig -fig extras -quick       # ablation sweeps (maxnet, theta, variants)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"stabledispatch/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "all", "figure to regenerate: fig4..fig9 or all")
		quick       = fs.Bool("quick", false, "use the shrunken quick configuration")
		frames      = fs.Int("frames", 0, "override horizon in minutes")
		volumeScale = fs.Float64("volume-scale", 0, "override request volume scale")
		taxiScale   = fs.Float64("taxi-scale", 0, "override fleet size scale")
		seed        = fs.Int64("seed", 42, "random seed")
		plot        = fs.Bool("plot", false, "render ASCII charts instead of tables")
		asJSON      = fs.Bool("json", false, "emit figures as JSON for downstream plotting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *frames > 0 {
		o.Frames = *frames
	}
	if *volumeScale > 0 {
		o.VolumeScale = *volumeScale
	}
	if *taxiScale > 0 {
		o.TaxiScale = *taxiScale
	}
	o.Seed = *seed

	runners := exp.Figures()
	var extraIDs []string
	for id, runner := range exp.Extras() {
		runners[id] = runner
		extraIDs = append(extraIDs, id)
	}
	sort.Strings(extraIDs)

	var ids []string
	switch *fig {
	case "all":
		ids = exp.FigureIDs()
	case "extras":
		ids = extraIDs
	default:
		ids = []string{*fig}
	}
	var figures []exp.Figure
	for _, id := range ids {
		runner, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (want fig4..fig9, %v, all, or extras)", id, extraIDs)
		}
		start := time.Now()
		figure, err := runner(o)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asJSON {
			figures = append(figures, figure)
			continue
		}
		render := figure.Render
		if *plot {
			render = figure.RenderPlots
		}
		if err := render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(figures)
	}
	return nil
}
