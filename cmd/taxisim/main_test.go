package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-city", "boston", "-algo", "nstd-p",
		"-taxis", "15", "-frames", "30", "-volume", "2000", "-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"NSTD-P", "dispatch delay", "taxi dissatisfaction", "served"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{
		"nstd-p", "nstd-t", "greedy", "mincost", "bottleneck",
		"std-p", "std-t", "raii", "sarp", "ilp",
	} {
		t.Run(algo, func(t *testing.T) {
			var sb strings.Builder
			err := run([]string{
				"-algo", algo, "-taxis", "8", "-frames", "15",
				"-volume", "1500", "-seed", "4",
			}, &sb)
			if err != nil {
				t.Fatalf("run(%s): %v", algo, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-city", "gotham"}, &sb); err == nil {
		t.Error("accepted unknown city")
	}
	if err := run([]string{"-algo", "magic"}, &sb); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if err := run([]string{"-trace", "/no/such/file.csv"}, &sb); err == nil {
		t.Error("accepted missing trace file")
	}
	if err := run([]string{"-not-a-flag"}, &sb); err == nil {
		t.Error("accepted bad flag")
	}
}

func TestRunWithCSVTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	csv := "id,frame,pickup_x,pickup_y,dropoff_x,dropoff_y,seats\n" +
		"0,0,10,10,12,10,1\n" +
		"1,1,9,10,6,10,1\n"
	if err := os.WriteFile(path, []byte(csv), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-trace", path, "-taxis", "3", "-algo", "greedy"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "over 2 requests") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunComparisonMode(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p,greedy", "-taxis", "10", "-frames", "20",
		"-volume", "1500", "-seed", "5",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"comparison", "NSTD-P", "Greedy", "taxi diss"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExtensionAlgorithms(t *testing.T) {
	for _, algo := range []string{"nstd-c", "nstd-m"} {
		var sb strings.Builder
		err := run([]string{
			"-algo", algo, "-taxis", "8", "-frames", "12",
			"-volume", "1500", "-seed", "6",
		}, &sb)
		if err != nil {
			t.Fatalf("run(%s): %v", algo, err)
		}
	}
}

func TestRunWritesEventLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	var sb strings.Builder
	err := run([]string{
		"-algo", "greedy", "-taxis", "6", "-frames", "10",
		"-volume", "1500", "-seed", "7", "-events", path,
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !strings.Contains(string(data), `"kind":"assign"`) {
		t.Errorf("event log missing assign events:\n%.300s", data)
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.json")
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p", "-taxis", "6", "-frames", "10",
		"-volume", "1500", "-seed", "7", "-trace-out", path,
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph != "" {
			kinds[ph] = true
		}
	}
	// Metadata, decision instants, and lifecycle slices must all appear.
	for _, ph := range []string{"M", "i", "X"} {
		if !kinds[ph] {
			t.Errorf("trace has no %q events (phases seen: %v)", ph, kinds)
		}
	}
}

func TestTraceOutRejectsMultiAlgorithm(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p,greedy", "-taxis", "4", "-frames", "5",
		"-trace-out", filepath.Join(t.TempDir(), "x.json"),
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "single algorithm") {
		t.Errorf("err = %v, want single-algorithm rejection", err)
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p", "-taxis", "15", "-frames", "40",
		"-volume", "2000", "-seed", "3", "-patience", "30",
		"-fault-seed", "7", "-breakdown-rate", "0.01",
		"-cancel-rate", "0.1", "-driver-cancel-rate", "0.05",
	}, &sb)
	if err != nil {
		t.Fatalf("run with faults: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "faults:") {
		t.Errorf("summary missing faults line:\n%s", out)
	}

	// The same seeded chaos run twice produces the same summary.
	var sb2 strings.Builder
	if err := run([]string{
		"-algo", "nstd-p", "-taxis", "15", "-frames", "40",
		"-volume", "2000", "-seed", "3", "-patience", "30",
		"-fault-seed", "7", "-breakdown-rate", "0.01",
		"-cancel-rate", "0.1", "-driver-cancel-rate", "0.05",
	}, &sb2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	// The stage-timing table is wall-clock and differs run to run;
	// compare only up to it.
	cut := func(s string) string {
		if i := strings.Index(s, "dispatch pipeline stage timings"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if cut(sb.String()) != cut(sb2.String()) {
		t.Errorf("seeded fault runs diverged:\n%s\n----\n%s", cut(sb.String()), cut(sb2.String()))
	}
}

func TestRunWithFrameDeadline(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p", "-taxis", "8", "-frames", "15",
		"-volume", "1000", "-seed", "4", "-frame-deadline", "5s",
	}, &sb)
	if err != nil {
		t.Fatalf("run with frame deadline: %v", err)
	}
	if !strings.Contains(sb.String(), "NSTD-P+failsafe") {
		t.Errorf("summary missing failsafe algorithm name:\n%s", sb.String())
	}
}

func TestRunRejectsBadFaultConfig(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-breakdown-rate", "1.5"}, &sb); err == nil {
		t.Error("accepted breakdown rate > 1")
	}
	if err := run([]string{"-cancel-rate", "-0.1"}, &sb); err == nil {
		t.Error("accepted negative cancel rate")
	}
}

func TestRunWritesKPISeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kpi.csv")
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p", "-taxis", "6", "-frames", "10",
		"-volume", "1500", "-seed", "7", "-kpi-out", path,
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header plus at least the requested horizon of frames (the run may
	// extend past -frames to drain onboard passengers).
	if len(lines) < 11 {
		t.Fatalf("%d CSV lines, want header + >=10 frames", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,delay_mean,") {
		t.Errorf("header %q", lines[0])
	}
	cols := strings.Count(lines[0], ",")
	for i, line := range lines[1:] {
		if strings.Count(line, ",") != cols {
			t.Errorf("row %d has %d columns, header has %d", i, strings.Count(line, ","), cols)
		}
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first row %q, want frame 0", lines[1])
	}
}

// TestKPIOutMultiAlgorithm checks a comparison run writes one suffixed
// CSV per algorithm instead of erroring or overwriting.
func TestKPIOutMultiAlgorithm(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{
		"-algo", "nstd-p,greedy", "-taxis", "4", "-frames", "5",
		"-volume", "800", "-seed", "7",
		"-kpi-out", filepath.Join(dir, "kpi.csv"),
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "kpi.csv")); err == nil {
		t.Error("unsuffixed kpi.csv written on a multi-algorithm run")
	}
	for _, name := range []string{"kpi.nstd-p.csv", "kpi.greedy.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("per-algorithm CSV missing: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 6 {
			t.Errorf("%s has %d lines, want header + >=5 frames", name, len(lines))
		}
		if !strings.HasPrefix(lines[0], "frame,delay_mean,") {
			t.Errorf("%s header %q", name, lines[0])
		}
	}
}

func TestKPIOutPath(t *testing.T) {
	cases := []struct{ base, algo, want string }{
		{"kpi.csv", "nstd-p", "kpi.nstd-p.csv"},
		{"out/day.csv", "Greedy", "out/day.greedy.csv"},
		{"noext", "ilp", "noext.ilp"},
	}
	for _, c := range cases {
		if got := kpiOutPath(c.base, c.algo); got != c.want {
			t.Errorf("kpiOutPath(%q, %q) = %q, want %q", c.base, c.algo, got, c.want)
		}
	}
}

// TestRunProfBudgetCapturesOverrun runs with an impossible 1ns frame
// budget so every frame overruns, and checks the profiler prints its
// accounting line and ships exactly one rate-limited pprof capture into
// a flight-recorder bundle.
func TestRunProfBudgetCapturesOverrun(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{
		"-algo", "greedy", "-taxis", "8", "-frames", "30",
		"-volume", "1000", "-seed", "4",
		"-prof-budget", "1ns", "-prof-capture-frames", "2",
		"-prof-cooldown", "100000", "-bundle-dir", dir,
	}, &sb)
	if err != nil {
		t.Fatalf("run with prof budget: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "frame budget") || !strings.Contains(out, "1 pprof captures") {
		t.Errorf("summary missing profiler accounting:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var overruns []string
	for _, e := range entries {
		if strings.Contains(e.Name(), "frame_overrun") {
			overruns = append(overruns, e.Name())
		}
	}
	if len(overruns) != 1 {
		t.Fatalf("overrun bundles = %v, want exactly 1 (cooldown rate limit)", overruns)
	}
	bdir := filepath.Join(dir, overruns[0])
	raw, err := os.ReadFile(filepath.Join(bdir, "profile.json"))
	if err != nil {
		t.Fatalf("capture profile.json: %v", err)
	}
	var oc struct {
		Schema  string `json:"schema"`
		Trigger struct {
			WallNs int64 `json:"wallNs"`
		} `json:"trigger"`
	}
	if err := json.Unmarshal(raw, &oc); err != nil {
		t.Fatalf("parse profile.json: %v", err)
	}
	if oc.Schema != "prof-capture/v1" || oc.Trigger.WallNs <= 0 {
		t.Fatalf("profile.json = %+v", oc)
	}
	if _, err := os.Stat(filepath.Join(bdir, "heap.pprof")); err != nil {
		t.Fatalf("heap delta missing from bundle: %v", err)
	}
}
